// ablation_cache.cpp — ablations for the design choices DESIGN.md calls
// out (not a paper figure; supports §3.4-3.6 and the C++-port decisions):
//
//   A. cache level: adaptive sampling vs. pinned levels — how much does
//      placing the cache at the "wrong" level cost, and does the sampler
//      find the right one? (§3.6's motivation.)
//   B. miss threshold: how sensitive is performance to MAX_MISSES (the
//      paper's experimentally chosen 2048)?
//   C. reclamation backend: epoch-based reclamation vs. leaking (the
//      closest analogue to the JVM's out-of-band GC) — the cost of manual
//      safe memory reclamation on the write path.
#include "common.hpp"
#include "mr/leak.hpp"

namespace {

using cachetrie::Config;
using cachetrie::harness::Summary;
using cachetrie::harness::Table;

template <typename Trie>
Summary lookup_throughput(Trie& map, const std::vector<bench::Key>& keys) {
  for (auto k : keys) map.insert(k, k);
  for (auto k : keys) (void)map.lookup(k);  // warm the cache
  volatile std::uint64_t sink = 0;
  return cachetrie::harness::measure(
      [&]() -> double {
        return cachetrie::harness::time_ms([&] {
          std::uint64_t acc = 0;
          for (auto k : keys) acc += map.lookup(k).value_or(0);
          sink = acc;
        });
      },
      bench::bench_options());
}

}  // namespace

int main() {
  bench::print_preamble(
      "Ablations: cache level, miss threshold, reclamation backend",
      "Lookup time for N keys (every key once) under modified cache-trie\n"
      "configurations.");

  const std::size_t n =
      cachetrie::harness::by_scale<std::size_t>(50000, 1000000, 1000000);
  const auto keys = cachetrie::harness::shuffled_sequential_keys(n);
  // Most keys sit on the adjacent depths around log16(n) (Theorem 4.3);
  // e.g. 1M keys concentrate on levels 20/24, so the cache targets 20.
  const std::uint32_t ideal = static_cast<std::uint32_t>(std::lround(
                                  std::log(static_cast<double>(n)) /
                                  std::log(16.0))) *
                              4;

  {
    // Throwaway pass: fault in allocator arenas and pages so the first
    // measured configuration is not penalized by process cold start.
    bench::CacheTrieMap warm;
    for (auto k : keys) warm.insert(k, k);
    std::uint64_t acc = 0;
    for (auto k : keys) acc += warm.lookup(k).value_or(0);
    volatile std::uint64_t sink = acc;
    (void)sink;
  }

  cachetrie::harness::BenchReport report{"ablation_cache"};

  {
    std::printf("--- A: cache level (N = %zu; sampled optimum ~level %u) ---\n",
                n, ideal);
    Table table{{"configuration", "lookup ms", "vs adaptive"}};
    Summary adaptive;
    {
      bench::CacheTrieMap trie;
      adaptive = lookup_throughput(trie, keys);
      report.add("cachetrie",
                 {{"op", "ablation_cache_level"},
                  {"n", std::to_string(n)},
                  {"config", "adaptive"}},
                 adaptive, n);
      table.add_row({"adaptive (paper)", Table::fmt(adaptive.mean_ms),
                     "1.00x"});
    }
    for (const std::uint32_t lvl :
         {ideal >= 8 ? ideal - 8 : 8u, ideal >= 4 ? ideal - 4 : 8u, ideal,
          ideal + 4}) {
      Config cfg;
      cfg.min_cache_level = lvl;
      cfg.max_cache_level = lvl;
      cfg.cache_init_level = lvl;
      cachetrie::CacheTrie<bench::Key, bench::Val> trie(cfg);
      const Summary s = lookup_throughput(trie, keys);
      report.add("cachetrie",
                 {{"op", "ablation_cache_level"},
                  {"n", std::to_string(n)},
                  {"config", "pinned_" + std::to_string(lvl)}},
                 s, n);
      table.add_row({"pinned level " + std::to_string(lvl),
                     Table::fmt(s.mean_ms),
                     Table::fmt_ratio(s.mean_ms, adaptive.mean_ms)});
    }
    {
      Config cfg;
      cfg.use_cache = false;
      cachetrie::CacheTrie<bench::Key, bench::Val> trie(cfg);
      const Summary s = lookup_throughput(trie, keys);
      report.add("cachetrie_nocache",
                 {{"op", "ablation_cache_level"},
                  {"n", std::to_string(n)},
                  {"config", "no_cache"}},
                 s, n);
      table.add_row({"no cache", Table::fmt(s.mean_ms),
                     Table::fmt_ratio(s.mean_ms, adaptive.mean_ms)});
    }
    table.print();
    std::printf("\n");
  }

  {
    std::printf("--- B: miss threshold (MAX_MISSES; paper uses 2048) ---\n");
    Table table{{"max_misses", "lookup ms"}};
    for (const std::uint32_t mm : {64u, 512u, 2048u, 16384u}) {
      Config cfg;
      cfg.max_misses = mm;
      cachetrie::CacheTrie<bench::Key, bench::Val> trie(cfg);
      const Summary s = lookup_throughput(trie, keys);
      report.add("cachetrie",
                 {{"op", "ablation_miss_threshold"},
                  {"n", std::to_string(n)},
                  {"max_misses", std::to_string(mm)}},
                 s, n);
      table.add_row({std::to_string(mm), Table::fmt(s.mean_ms)});
    }
    table.print();
    std::printf("\n");
  }

  {
    std::printf(
        "--- C: reclamation backend on the write path (insert+remove %zu "
        "keys) ---\n",
        n / 2);
    const auto half =
        cachetrie::harness::shuffled_sequential_keys(n / 2, /*seed=*/77);
    Table table{{"reclaimer", "churn ms"}};
    {
      const Summary s = cachetrie::harness::measure(
          [&]() -> double {
            cachetrie::CacheTrie<bench::Key, bench::Val> trie;
            return cachetrie::harness::time_ms([&] {
              for (auto k : half) trie.insert(k, k);
              for (auto k : half) (void)trie.remove(k);
            });
          },
          bench::bench_options());
      report.add("cachetrie",
                 {{"op", "ablation_reclaimer"},
                  {"n", std::to_string(n / 2)},
                  {"reclaimer", "epoch"}},
                 s, n);
      table.add_row({"epoch (EBR, default)", Table::fmt(s.mean_ms)});
    }
    {
      const Summary s = cachetrie::harness::measure(
          [&]() -> double {
            cachetrie::CacheTrie<bench::Key, bench::Val,
                                 cachetrie::util::DefaultHash<bench::Key>,
                                 cachetrie::mr::LeakReclaimer>
                trie;
            return cachetrie::harness::time_ms([&] {
              for (auto k : half) trie.insert(k, k);
              for (auto k : half) (void)trie.remove(k);
            });
          },
          bench::bench_options());
      report.add("cachetrie",
                 {{"op", "ablation_reclaimer"},
                  {"n", std::to_string(n / 2)},
                  {"reclaimer", "leak"}},
                 s, n);
      table.add_row({"leak (GC-like upper bound)", Table::fmt(s.mean_ms)});
    }
    table.print();
  }
  // Tail-latency cells (stat=p50/p90/p99/p999, unit=ns) in the artifact.
  bench::add_latency_rows(
      report, cachetrie::harness::by_scale<std::size_t>(20000, 50000, 200000));
  return bench::finish_report(report);
}
