// common.hpp — shared scaffolding for the figure-reproduction binaries:
// the five competitor configurations of the paper's evaluation (§5), plus
// small helpers to run one workload across all of them.
//
//   CHM        — chm::ConcurrentHashMap      (the paper's baseline)
//   cachetrie  — CacheTrie, cache enabled    (the contribution)
//   w/o cache  — CacheTrie, cache disabled   (paper's ablation variant)
//   ctrie      — ctrie::Ctrie                (previous hash-trie design)
//   skiplist   — csl::ConcurrentSkipList     (ConcurrentSkipListMap)
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "chashmap/chashmap.hpp"
#include "ctrie/ctrie.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/thread_team.hpp"
#include "harness/workload.hpp"
#include "mr/epoch.hpp"
#include "skiplist/skiplist.hpp"

namespace bench {

using Key = std::uint64_t;
using Val = std::uint64_t;

using CacheTrieMap = cachetrie::CacheTrie<Key, Val>;
using CtrieMap = cachetrie::ctrie::Ctrie<Key, Val>;
using ChmMap = cachetrie::chm::ConcurrentHashMap<Key, Val>;
using SkipListMap = cachetrie::csl::ConcurrentSkipList<Key, Val>;

inline CacheTrieMap make_cachetrie() { return CacheTrieMap{}; }

inline CacheTrieMap make_cachetrie_nocache() {
  cachetrie::Config cfg;
  cfg.use_cache = false;
  return CacheTrieMap{cfg};
}

/// Runs `body(map)` for a freshly constructed map, under the measurement
/// protocol; `make()` constructs the map, body returns elapsed ms.
template <typename Make, typename Body>
cachetrie::harness::Summary measure_structure(
    Make&& make, Body&& body,
    const cachetrie::harness::MeasureOptions& opts) {
  return cachetrie::harness::measure(
      [&]() -> double {
        auto map = make();
        return body(map);
      },
      opts);
}

/// Default measurement options tuned per scale so the whole suite finishes
/// in minutes on a small container and in ScalaMeter-like fidelity at
/// REPRO_SCALE=paper.
inline cachetrie::harness::MeasureOptions bench_options() {
  cachetrie::harness::MeasureOptions opts;
  using cachetrie::harness::by_scale;
  opts.min_warmup = by_scale<std::size_t>(1, 1, 3);
  opts.max_warmup = by_scale<std::size_t>(2, 4, 12);
  opts.reps = by_scale<std::size_t>(2, 3, 5);
  opts.cov_threshold = 0.10;
  return opts;
}

inline void print_preamble(const char* figure, const char* description) {
  std::printf("=== %s ===\n%s\n", figure, description);
  const char* scale = std::getenv("REPRO_SCALE");
  std::printf("scale profile: %s (set REPRO_SCALE=smoke|default|paper)\n",
              scale ? scale : "default");
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
}

/// Canonical structure names used in the JSON artifacts — the same order
/// the figure helpers return their Summary vectors in (CHM first: it is the
/// baseline every table's ratios divide by).
inline constexpr const char* kStructureNames[5] = {
    "chm", "cachetrie", "cachetrie_nocache", "ctrie", "skiplist"};

/// Adds one table row's five structure cells to the JSON report. `threads`
/// 0 means single-threaded (the param is omitted); `ops_per_rep` is the
/// operation count one rep performs (0 = not applicable).
inline void report_row(cachetrie::harness::BenchReport& report,
                       const std::string& op, std::size_t n, int threads,
                       const std::vector<cachetrie::harness::Summary>& cells,
                       std::uint64_t ops_per_rep = 0) {
  for (std::size_t i = 0; i < cells.size() && i < 5; ++i) {
    cachetrie::harness::BenchParams params{{"op", op},
                                           {"n", std::to_string(n)}};
    if (threads > 0) params.emplace_back("threads", std::to_string(threads));
    report.add(kStructureNames[i], std::move(params), cells[i], ops_per_rep);
  }
}

/// Adds per-op lookup tail-latency rows (p50/p90/p99/p999 cells, unit=ns)
/// for all five structures to the report. Each structure gets a fresh map
/// pre-filled with n keys, one warm pass over every key, then `passes`
/// measured passes on the TSC clock (see harness::measure_latency). Runs
/// single-threaded on purpose: the cells gate the *structure's* lookup tail
/// (cache-depth effects, pathological probe chains), not scheduler jitter.
inline void add_latency_rows(cachetrie::harness::BenchReport& report,
                             std::size_t n, std::size_t passes = 3) {
  using cachetrie::harness::measure_latency;
  const cachetrie::harness::BenchParams params{
      {"op", "lookup_latency"}, {"n", std::to_string(n)}};
  const auto run = [&](const char* name, auto make) {
    auto map = make();
    for (std::size_t i = 0; i < n; ++i) map.insert(i, i);
    volatile std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (auto v = map.lookup(i)) sink = sink + *v;
    }
    const auto ls = measure_latency(
        [&](std::uint64_t i) {
          if (auto v = map.lookup(i % n)) sink = sink + *v;
        },
        n, passes);
    report.add_latency(name, params, ls);
  };
  run(kStructureNames[0], [] { return ChmMap{}; });
  run(kStructureNames[1], make_cachetrie);
  run(kStructureNames[2], make_cachetrie_nocache);
  run(kStructureNames[3], [] { return CtrieMap{}; });
  run(kStructureNames[4], [] { return SkipListMap{}; });
}

/// Writes the artifact; exits non-zero on I/O failure so CI never mistakes
/// a dropped artifact for a clean run.
inline int finish_report(const cachetrie::harness::BenchReport& report) {
  return report.write() ? 0 : 1;
}

/// Thread counts swept by the parallel figures (paper: 1..8 on a 4c/8t i7).
inline std::vector<int> thread_sweep() {
  return cachetrie::harness::by_scale<std::vector<int>>(
      {1, 2, 4}, {1, 2, 4, 8}, {1, 2, 3, 4, 5, 6, 7, 8});
}

/// Snapshot of the epoch domain's reclamation counters, for reporting the
/// limbo (retired-not-yet-freed) overhead next to live-structure footprints
/// — the paper's JVM numbers fold this cost into the GC, ours is explicit.
struct ReclaimSnapshot {
  std::uint64_t retired = 0;
  std::uint64_t freed = 0;
  std::size_t limbo_bytes = 0;
  std::size_t limbo_bytes_hwm = 0;

  static ReclaimSnapshot take() {
    auto& dom = cachetrie::mr::EpochDomain::instance();
    return ReclaimSnapshot{dom.retired_count(), dom.freed_count(),
                           dom.retired_bytes(),
                           dom.retired_bytes_high_water()};
  }

  /// Prints the delta since `before` (counters are process-wide and
  /// monotonic, except limbo_bytes which is a level, not a counter).
  void print_delta(const ReclaimSnapshot& before, const char* label) const {
    std::printf(
        "reclamation [%s]: retired %llu, freed %llu, limbo now %.2f MB, "
        "limbo high-water %.2f MB\n",
        label, static_cast<unsigned long long>(retired - before.retired),
        static_cast<unsigned long long>(freed - before.freed),
        static_cast<double>(limbo_bytes) / 1e6,
        static_cast<double>(limbo_bytes_hwm) / 1e6);
  }
};

}  // namespace bench
