// fig09_footprint.cpp — reproduces Figure 9 (memory footprint comparison)
// and the appendix A.5.2 numbers.
//
// Paper's findings, which the multipliers below should mirror in shape:
//   * skip lists consume the least memory (the normalization baseline);
//   * cache-tries and Ctries are roughly equal, ~50% above CHM;
//   * the cache adds typically <10% over the cache-less variant.
//
// Footprints are exact traversal-based byte counts of live structure
// (malloc overhead excluded — it shifts every structure equally).
#include "common.hpp"

int main() {
  bench::print_preamble(
      "Figure 9 + A.5.2: memory footprint",
      "N keys inserted into each structure; footprint in MB and as a\n"
      "multiplier over the skip list (the paper's baseline for this figure).");

  using cachetrie::harness::Table;
  using cachetrie::harness::by_scale;

  const auto sizes = by_scale<std::vector<std::size_t>>(
      {50000, 200000}, {50000, 500000, 1000000, 2000000},
      {50000, 500000, 1000000, 1500000, 2000000});

  cachetrie::harness::BenchReport report{"fig09_footprint"};
  // Footprints are exact single measurements (byte counts), not timings:
  // the Summary carries bytes in mean_ms with zero spread, and the cell's
  // params mark the unit so perf_gate.py and plotting scripts don't treat
  // them as milliseconds.
  auto bytes_summary = [](double bytes) {
    cachetrie::harness::Summary s;
    s.mean_ms = bytes;
    s.min_ms = bytes;
    s.max_ms = bytes;
    s.reps = 1;
    return s;
  };

  Table table{{"size", "skiplist", "chm", "ctrie", "cachetrie w/o cache",
               "cachetrie"}};
  const auto reclaim0 = bench::ReclaimSnapshot::take();
  for (const std::size_t n : sizes) {
    const auto keys = cachetrie::harness::random_keys(n);
    auto fill = [&](auto& map) {
      for (auto k : keys) map.insert(k, k);
      return static_cast<double>(map.footprint_bytes());
    };

    bench::SkipListMap slist;
    bench::ChmMap chm;
    bench::CtrieMap ctrie;
    auto trie_nc = bench::make_cachetrie_nocache();
    auto trie = bench::make_cachetrie();
    const double sl = fill(slist);
    const double hm = fill(chm);
    const double ct = fill(ctrie);
    const double tnc = fill(trie_nc);
    double tc = fill(trie);
    // Footprint includes the cache only once lookups created it; warm it.
    for (std::size_t i = 0; i < keys.size(); ++i) (void)trie.lookup(keys[i]);
    tc = static_cast<double>(trie.footprint_bytes());

    {
      const double by_structure[5] = {hm, tc, tnc, ct, sl};
      for (int i = 0; i < 5; ++i) {
        report.add(bench::kStructureNames[i],
                   {{"op", "footprint"},
                    {"n", std::to_string(n)},
                    {"unit", "bytes"}},
                   bytes_summary(by_structure[i]));
      }
    }

    auto cell = [&](double bytes) {
      return Table::fmt(bytes / 1e6) + " MB (" + Table::fmt_ratio(bytes, sl) +
             ")";
    };
    table.add_row({std::to_string(n), cell(sl), cell(hm), cell(ct),
                   cell(tnc), cell(tc)});
  }
  table.print();

  // Footprints above count live structure only; this line makes the EBR
  // limbo overhead visible (the high-water mark bounds how far retired
  // bytes ever outran the frees during the fills).
  bench::ReclaimSnapshot::take().print_delta(reclaim0, "fig09 fills");

  std::printf(
      "\nexpected shape (paper): skiplist lowest; ctrie ~= cachetrie;\n"
      "tries ~1.3-1.5x CHM; cache adds <10%% over w/o-cache.\n");
  // Tail-latency cells (stat=p50/p90/p99/p999, unit=ns) in the artifact.
  bench::add_latency_rows(
      report, cachetrie::harness::by_scale<std::size_t>(20000, 50000, 200000));
  return bench::finish_report(report);
}
