// perf_smoke.cpp — a fast, fixed-size performance canary for the CI gate.
//
// Unlike the figure binaries, sizes here do NOT scale with REPRO_SCALE: the
// point is a stable, comparable JSON artifact (BENCH_smoke.json) that
// scripts/perf_gate.py can diff across two runs or against the committed
// baseline. Three ops (insert, lookup, churn) x the five structures,
// ~100k keys, three reps — whole binary finishes in well under a minute on
// a small container.
#include "common.hpp"

namespace {

using cachetrie::harness::Summary;
using cachetrie::harness::Table;

constexpr std::size_t kN = 100000;

cachetrie::harness::MeasureOptions smoke_options() {
  // Fixed regardless of REPRO_SCALE — see the file comment.
  cachetrie::harness::MeasureOptions opts;
  opts.min_warmup = 1;
  opts.max_warmup = 3;
  opts.reps = 3;
  opts.cov_threshold = 0.10;
  return opts;
}

template <typename Make>
Summary smoke_insert(Make&& make, const std::vector<bench::Key>& keys) {
  return bench::measure_structure(
      make,
      [&](auto& map) {
        return cachetrie::harness::time_ms([&] {
          for (auto k : keys) map.insert(k, k);
        });
      },
      smoke_options());
}

template <typename Make>
Summary smoke_lookup(Make&& make, const std::vector<bench::Key>& keys) {
  auto map = make();
  for (auto k : keys) map.insert(k, k);
  for (auto k : keys) (void)map.lookup(k);  // warm any cache
  volatile std::uint64_t sink = 0;
  return cachetrie::harness::measure(
      [&]() -> double {
        return cachetrie::harness::time_ms([&] {
          std::uint64_t acc = 0;
          for (auto k : keys) acc += map.lookup(k).value_or(0);
          sink = acc;
        });
      },
      smoke_options());
}

template <typename Make>
Summary smoke_churn(Make&& make, const std::vector<bench::Key>& keys) {
  auto map = make();
  for (auto k : keys) map.insert(k, k);
  return cachetrie::harness::measure(
      [&]() -> double {
        return cachetrie::harness::time_ms([&] {
          for (auto k : keys) {
            (void)map.remove(k);
            map.insert(k, k);
          }
        });
      },
      smoke_options());
}

template <typename Bench>
void smoke_row(cachetrie::harness::BenchReport& report, Table& table,
               const char* op, const std::vector<bench::Key>& keys,
               std::uint64_t ops_per_rep, Bench bench_one) {
  const std::vector<Summary> cells{
      bench_one([] { return bench::ChmMap{}; }),
      bench_one(bench::make_cachetrie),
      bench_one(bench::make_cachetrie_nocache),
      bench_one([] { return bench::CtrieMap{}; }),
      bench_one([] { return bench::SkipListMap{}; }),
  };
  bench::report_row(report, op, keys.size(), /*threads=*/0, cells,
                    ops_per_rep);
  table.add_row({op, Table::fmt_mean_std(cells[0].mean_ms, cells[0].stddev_ms),
                 Table::fmt(cells[1].mean_ms), Table::fmt(cells[2].mean_ms),
                 Table::fmt(cells[3].mean_ms), Table::fmt(cells[4].mean_ms)});
}

}  // namespace

int main() {
  bench::print_preamble(
      "Perf smoke: fixed-size canary for the regression gate",
      "Fixed 100k-key single-threaded insert/lookup/churn across all five\n"
      "structures; sizes ignore REPRO_SCALE so artifacts stay comparable.");

  const auto keys = cachetrie::harness::shuffled_sequential_keys(kN);
  cachetrie::harness::BenchReport report{"smoke"};

  Table table{{"op", "chm (ms)", "cachetrie", "w/o cache", "ctrie",
               "skiplist"}};
  smoke_row(report, table, "insert", keys, kN,
            [&](auto make) { return smoke_insert(make, keys); });
  smoke_row(report, table, "lookup", keys, kN,
            [&](auto make) { return smoke_lookup(make, keys); });
  smoke_row(report, table, "churn", keys, 2 * kN,
            [&](auto make) { return smoke_churn(make, keys); });
  table.print();

  // Tail-latency cells ride in the same artifact (stat=p50/p90/p99/p999,
  // unit=ns) so the perf gate can watch tails, not just means.
  bench::add_latency_rows(report, kN);

  return bench::finish_report(report);
}
