// ablation_mixed.cpp — mixed read/write workloads (ours; the paper
// benchmarks pure phases, but its motivation — "lookup is a predominantly
// used dictionary operation" — is about mixes). Sweeps read fractions over
// all competitors at a fixed population, multi-threaded.
//
// Workload: each thread performs ops on keys drawn uniformly from a
// pre-populated working set; writes alternate remove/re-insert so the
// population stays stable around N.
#include "common.hpp"

#include "util/rng.hpp"

namespace {

using cachetrie::harness::Summary;
using cachetrie::harness::Table;

template <typename Make>
Summary bench_mix(Make&& make, const std::vector<bench::Key>& keys,
                  int threads, unsigned read_pct, std::size_t ops_per_thread) {
  auto map = make();
  for (auto k : keys) map.insert(k, k);
  for (auto k : keys) (void)map.lookup(k);  // warm any cache
  std::atomic<std::uint64_t> sink{0};
  return cachetrie::harness::measure(
      [&]() -> double {
        return cachetrie::harness::run_team_ms(threads, [&](int t) {
          cachetrie::util::XorShift64Star rng{
              static_cast<std::uint64_t>(t) * 7919 + 13};
          std::uint64_t acc = 0;
          const std::size_t n = keys.size();
          for (std::size_t op = 0; op < ops_per_thread; ++op) {
            const bench::Key k = keys[rng.next_below(n)];
            if (rng.next_below(100) < read_pct) {
              acc += map.lookup(k).value_or(0);
            } else if ((op & 1) == 0) {
              (void)map.remove(k);
            } else {
              map.insert(k, k);
            }
          }
          sink.fetch_add(acc, std::memory_order_relaxed);
        });
      },
      bench::bench_options());
}

}  // namespace

int main() {
  bench::print_preamble(
      "Ablation: mixed read/write workloads",
      "Each thread draws keys uniformly from an N-key working set; writes\n"
      "alternate remove/insert. Makespan in ms, ratio vs CHM.");

  const std::size_t n = cachetrie::harness::by_scale<std::size_t>(
      20000, 300000, 1000000);
  const std::size_t ops = cachetrie::harness::by_scale<std::size_t>(
      50000, 300000, 1000000);
  const auto keys = cachetrie::harness::shuffled_sequential_keys(n);
  const int threads = cachetrie::harness::by_scale<int>(2, 4, 8);
  std::printf("--- N = %zu, %d threads, %zu ops/thread ---\n", n, threads,
              ops);

  cachetrie::harness::BenchReport report{"ablation_mixed"};

  Table table{{"read%", "chm (ms)", "cachetrie", "w/o cache", "ctrie",
               "skiplist"}};
  for (const unsigned read_pct : {95u, 70u, 50u}) {
    const Summary chm = bench_mix([] { return bench::ChmMap{}; }, keys,
                                  threads, read_pct, ops);
    const Summary trie =
        bench_mix(bench::make_cachetrie, keys, threads, read_pct, ops);
    const Summary trie_nc = bench_mix(bench::make_cachetrie_nocache, keys,
                                      threads, read_pct, ops);
    const Summary ctrie = bench_mix([] { return bench::CtrieMap{}; }, keys,
                                    threads, read_pct, ops);
    const Summary slist = bench_mix([] { return bench::SkipListMap{}; },
                                    keys, threads, read_pct, ops);
    {
      const Summary cells[5] = {chm, trie, trie_nc, ctrie, slist};
      for (int i = 0; i < 5; ++i) {
        report.add(bench::kStructureNames[i],
                   {{"op", "mixed"},
                    {"n", std::to_string(n)},
                    {"threads", std::to_string(threads)},
                    {"read_pct", std::to_string(read_pct)}},
                   cells[i], static_cast<std::uint64_t>(ops) * threads);
      }
    }
    auto cell = [&](const Summary& s) {
      return Table::fmt(s.mean_ms) + " (" +
             Table::fmt_ratio(s.mean_ms, chm.mean_ms) + ")";
    };
    table.add_row({std::to_string(read_pct),
                   Table::fmt_mean_std(chm.mean_ms, chm.stddev_ms),
                   cell(trie), cell(trie_nc), cell(ctrie), cell(slist)});
  }
  table.print();
  std::printf(
      "\nexpected: the cache-trie's advantage grows with the write share\n"
      "(no resize stalls), while CHM leads in read-dominated mixes.\n");
  // Tail-latency cells (stat=p50/p90/p99/p999, unit=ns) in the artifact.
  bench::add_latency_rows(
      report, cachetrie::harness::by_scale<std::size_t>(20000, 50000, 200000));
  return bench::finish_report(report);
}
