// appendix_level_histogram.cpp — reproduces appendix A.5.1 ("level
// occupancy histograms" / the artifact's BirthdaySimulations): grows
// cache-tries of increasing sizes and prints, for each, the distribution of
// keys across trie levels, the share of the two most populated adjacent
// levels (Theorem 4.2 claims >= ~87%), and the closed-form prediction of
// Theorem 4.1 next to the measured fraction.
#include <cmath>

#include "common.hpp"

namespace {

double p_of_depth(int d, double n) {
  const double a = 1.0 - std::pow(16.0, -(d + 1));
  const double b = 1.0 - std::pow(16.0, -d);
  return std::pow(a, n) - std::pow(b, n);
}

}  // namespace

int main() {
  bench::print_preamble(
      "Appendix A.5.1: level occupancy histograms",
      "Distribution of keys across cache-trie levels (levels advance by 4\n"
      "bits); Theorem 4.2 predicts >=87% of keys on two adjacent levels.");

  const auto sizes = cachetrie::harness::by_scale<std::vector<std::size_t>>(
      {100000}, {100000, 200000, 400000, 800000},
      {100000, 200000, 400000, 800000, 1600000});

  cachetrie::harness::BenchReport report{"appendix_level_histogram"};
  // Not a timing benchmark: the JSON cell carries the measured
  // two-adjacent-level share (a fraction, Theorem 4.2's >=0.8745 bound) in
  // mean_ms, with the unit recorded in params.
  auto share_summary = [](double share) {
    cachetrie::harness::Summary s;
    s.mean_ms = share;
    s.min_ms = share;
    s.max_ms = share;
    s.reps = 1;
    return s;
  };

  for (const std::size_t n : sizes) {
    bench::CacheTrieMap trie;
    for (auto k : cachetrie::harness::random_keys(n)) trie.insert(k, k);
    const auto hist = trie.level_histogram();

    std::printf(":: size %zu ::\n", n);
    for (std::size_t d = 0; d < hist.counts.size(); ++d) {
      if (d > 2 && hist.counts[d] == 0 &&
          (d + 1 >= hist.counts.size() || hist.counts[d + 1] == 0) &&
          d * 4 > 28) {
        break;  // trailing empty levels
      }
      const double frac = static_cast<double>(hist.counts[d]) /
                          static_cast<double>(hist.total);
      const double predicted =
          d == 0 ? 0.0
                 : p_of_depth(static_cast<int>(d) - 1,
                              static_cast<double>(n - 1));
      std::printf("  %2zu: %9llu (%5.1f%%, thm4.1 predicts %5.1f%%) ",
                  d * 4, static_cast<unsigned long long>(hist.counts[d]),
                  100.0 * frac, 100.0 * predicted);
      const int stars = static_cast<int>(frac * 40.0 + 0.5);
      for (int s = 0; s < stars; ++s) std::printf("*");
      std::printf("\n");
    }
    std::printf("  two-adjacent-level share: %.2f%% (Theorem 4.2: >=87.45%% "
                "as n grows)\n\n",
                100.0 * hist.top_pair_share());
    report.add("cachetrie",
               {{"op", "two_adjacent_level_share"},
                {"n", std::to_string(n)},
                {"unit", "fraction"}},
               share_summary(hist.top_pair_share()));
  }
  // Tail-latency cells (stat=p50/p90/p99/p999, unit=ns) in the artifact.
  bench::add_latency_rows(
      report, cachetrie::harness::by_scale<std::size_t>(20000, 50000, 200000));
  return bench::finish_report(report);
}
