// fig10_single_thread.cpp — reproduces Figure 10 (single-threaded lookup
// and insert running times vs. number of keys).
//
// Paper's findings (shapes to mirror):
//   lookup: CHM fastest; cache-trie 1.6-2.1x slower than CHM but well ahead
//           of ctrie (up to 7.5x slower than CHM) and skip lists (up to 36x);
//   insert: cache-trie within +-20% of CHM; w/o-cache close behind;
//           ctrie ~1.5x; skip list ~6x slower.
#include "common.hpp"

namespace {

using cachetrie::harness::Summary;
using cachetrie::harness::Table;

template <typename Make>
Summary bench_lookup(Make&& make, const std::vector<bench::Key>& keys) {
  auto map = make();
  for (auto k : keys) map.insert(k, k);
  volatile std::uint64_t sink = 0;
  return cachetrie::harness::measure(
      [&]() -> double {
        return cachetrie::harness::time_ms([&] {
          std::uint64_t acc = 0;
          for (auto k : keys) acc += map.lookup(k).value_or(0);
          sink = acc;
        });
      },
      bench::bench_options());
}

template <typename Make>
Summary bench_insert(Make&& make, const std::vector<bench::Key>& keys) {
  return bench::measure_structure(
      make,
      [&](auto& map) {
        return cachetrie::harness::time_ms([&] {
          for (auto k : keys) map.insert(k, k);
        });
      },
      bench::bench_options());
}

template <typename RunAll>
void print_figure(const char* title, const std::vector<std::size_t>& sizes,
                  cachetrie::harness::BenchReport& report, RunAll run_all) {
  std::printf("--- %s ---\n", title);
  Table table{{"N", "chm (ms)", "cachetrie", "w/o cache", "ctrie",
               "skiplist"}};
  for (const std::size_t n : sizes) {
    const auto keys = cachetrie::harness::shuffled_sequential_keys(n);
    const auto r = run_all(keys);
    bench::report_row(report, title, n, /*threads=*/0, r, n);
    auto cell = [&](const Summary& s) {
      return Table::fmt(s.mean_ms) + " (" +
             Table::fmt_ratio(s.mean_ms, r[0].mean_ms) + ")";
    };
    table.add_row({std::to_string(n), Table::fmt_mean_std(r[0].mean_ms,
                                                          r[0].stddev_ms),
                   cell(r[1]), cell(r[2]), cell(r[3]), cell(r[4])});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_preamble(
      "Figure 10: single-threaded lookup and insert",
      "Times to look up / insert every one of N keys once; multipliers are\n"
      "relative to CHM (the paper's baseline).");

  const auto sizes = cachetrie::harness::by_scale<std::vector<std::size_t>>(
      {20000, 50000}, {50000, 150000, 300000, 500000},
      {50000, 100000, 200000, 300000, 400000, 500000});

  cachetrie::harness::BenchReport report{"fig10_single_thread"};

  print_figure("lookup", sizes, report,
               [](const std::vector<bench::Key>& keys) {
    return std::vector<Summary>{
        bench_lookup([] { return bench::ChmMap{}; }, keys),
        bench_lookup(bench::make_cachetrie, keys),
        bench_lookup(bench::make_cachetrie_nocache, keys),
        bench_lookup([] { return bench::CtrieMap{}; }, keys),
        bench_lookup([] { return bench::SkipListMap{}; }, keys),
    };
  });

  print_figure("insert", sizes, report,
               [](const std::vector<bench::Key>& keys) {
    return std::vector<Summary>{
        bench_insert([] { return bench::ChmMap{}; }, keys),
        bench_insert(bench::make_cachetrie, keys),
        bench_insert(bench::make_cachetrie_nocache, keys),
        bench_insert([] { return bench::CtrieMap{}; }, keys),
        bench_insert([] { return bench::SkipListMap{}; }, keys),
    };
  });

  std::printf(
      "expected shape (paper): lookup CHM < cachetrie (1.6-2.1x) << ctrie\n"
      "(<=7.5x) << skiplist (<=36x); insert cachetrie within +-20%% of CHM.\n");
  // Tail-latency cells (stat=p50/p90/p99/p999, unit=ns) in the artifact.
  bench::add_latency_rows(
      report, cachetrie::harness::by_scale<std::size_t>(20000, 50000, 200000));
  return bench::finish_report(report);
}
