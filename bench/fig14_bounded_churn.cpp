// fig14_bounded_churn.cpp — the bounded-memory production cache mode under
// the two workloads its design targets (DESIGN.md §3, EXPERIMENTS.md §fig14):
//
//   * working-set churn: four writers stream ~10x the ceiling's worth of
//     fresh keys through a 1 MiB-ceiling cache while the main thread samples
//     the resident-bytes high-water mark. The bench HARD-FAILS (exit 1) if
//     the high-water mark escapes ceiling + 50% slack — the slack covers
//     per-writer overshoot between the publish that crosses the ceiling and
//     the backpressure scan it triggers, not reclamation limbo (resident
//     bytes are published-minus-retired, so limbo never counts).
//   * zipfian hit-rate: a skewed (s=1.0) read-mostly cache workload over a
//     keyspace ~4x what fits under the ceiling; the miss rate measures how
//     well lazy clock-hand eviction approximates LRU (an ideal top-k cache
//     of equal capacity would miss ~12%).
//
// Both run for the trie (exact double-entry byte ledger) and the CHM
// baseline (derived footprint estimate). Like perf_smoke, sizes are fixed —
// REPRO_SCALE is ignored so BENCH_fig14_bounded_churn.json stays comparable
// across runs and scripts/perf_gate.py can diff it against the committed
// baseline. Byte and rate cells carry a unit param (exact counts: relative
// budget, no stddev allowance); the churn/zipf wall-clock cells are normal
// timing cells.
#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "cachetrie/evict.hpp"
#include "common.hpp"

namespace {

using cachetrie::harness::Summary;
using cachetrie::harness::Table;

using BoundedTrie = cachetrie::evict::BoundedCacheTrie<bench::Key, bench::Val>;
using BoundedChm = cachetrie::evict::BoundedChm<bench::Key, bench::Val>;

constexpr std::size_t kCeiling = 1u << 20;        // 1 MiB byte ceiling
constexpr std::size_t kSlack = kCeiling / 2;      // in-flight overshoot slack
constexpr std::size_t kChurnThreads = 4;
constexpr std::size_t kKeysPerThread = 50000;     // 200k keys ~ 11 MiB of pairs
constexpr std::size_t kChurnKeys = kChurnThreads * kKeysPerThread;
constexpr std::size_t kZipfRanks = 60000;         // ~4x what the ceiling holds
constexpr std::size_t kZipfWarm = 150000;
constexpr std::size_t kZipfOps = 300000;

cachetrie::evict::BoundedConfig bounded_config() {
  cachetrie::evict::BoundedConfig cfg;
  cfg.ceiling_bytes = kCeiling;
  cfg.ttl_ticks = 0;  // pure LRU-pressure mode; TTL is covered by the tests
  return cfg;
}

cachetrie::harness::MeasureOptions fig14_options() {
  cachetrie::harness::MeasureOptions opts;  // fixed regardless of REPRO_SCALE
  opts.min_warmup = 1;
  opts.max_warmup = 2;
  opts.reps = 2;
  opts.cov_threshold = 0.10;
  return opts;
}

/// Exact single measurements (byte counts, rates) ride in the timing schema
/// with zero spread and a unit param — the fig09 convention.
Summary exact_summary(double value) {
  Summary s;
  s.mean_ms = value;
  s.min_ms = value;
  s.max_ms = value;
  s.reps = 1;
  return s;
}

struct ChurnStats {
  std::size_t hwm = 0;             // max over warmup + measured reps
  std::size_t final_resident = 0;  // after the last rep's stream
  std::uint64_t evictions = 0;
  std::uint64_t scans = 0;
};

/// One full churn pass: kChurnThreads writers each stream kKeysPerThread
/// fresh (never-repeated) keys; the calling thread samples resident bytes
/// until the writers drain. Returns elapsed ms, accumulates into `stats`.
template <typename MakeMap>
Summary run_churn(MakeMap&& make, ChurnStats& stats) {
  return cachetrie::harness::measure(
      [&]() -> double {
        auto map = make();
        std::atomic<std::size_t> running{kChurnThreads};
        const double ms = cachetrie::harness::time_ms([&] {
          std::vector<std::thread> writers;
          for (std::size_t t = 0; t < kChurnThreads; ++t) {
            writers.emplace_back([&map, &running, t] {
              const bench::Key base = (t + 1) * (1ull << 32);
              for (std::size_t i = 0; i < kKeysPerThread; ++i) {
                map.insert(base + i, i);
              }
              running.fetch_sub(1, std::memory_order_release);
            });
          }
          while (running.load(std::memory_order_acquire) != 0) {
            stats.hwm = std::max(stats.hwm, map.resident_bytes());
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          for (auto& w : writers) w.join();
        });
        stats.hwm = std::max(stats.hwm, map.resident_bytes());
        stats.final_resident = map.resident_bytes();
        const auto counts = map.eviction_counts();
        stats.evictions = counts.lru_evictions;
        stats.scans = counts.backpressure_scans;
        return ms;
      },
      fig14_options());
}

struct ZipfStats {
  double miss_pct = 0.0;
  std::size_t resident = 0;
};

/// Inverse-CDF zipf(s=1.0) sampler over kZipfRanks ranks, deterministic
/// (splitmix64, fixed seed) so the miss-rate cells are reproducible.
class ZipfSampler {
 public:
  explicit ZipfSampler(std::uint64_t seed) : state_(seed) {
    cdf_.reserve(kZipfRanks);
    double sum = 0.0;
    for (std::size_t r = 1; r <= kZipfRanks; ++r) {
      sum += 1.0 / static_cast<double>(r);
      cdf_.push_back(sum);
    }
    for (double& c : cdf_) c /= sum;
  }

  std::size_t next_rank() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    return static_cast<std::size_t>(
        std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  std::uint64_t state_;
};

/// Read-mostly cache usage: lookup, insert on miss. Warm phase populates the
/// hot set; the measured window reports the miss percentage. Single-threaded
/// on purpose — the cell gates the eviction *policy* (what the cache kept),
/// not scheduler jitter.
template <typename MakeMap>
Summary run_zipf(MakeMap&& make, ZipfStats& stats) {
  auto map = make();
  ZipfSampler zipf(0x5eedull);
  const auto step = [&](bench::Key k) {
    if (map.lookup(k).has_value()) return true;
    map.insert(k, k);
    return false;
  };
  for (std::size_t i = 0; i < kZipfWarm; ++i) {
    (void)step(static_cast<bench::Key>(zipf.next_rank()) + 1);
  }
  std::uint64_t hits = 0;
  const Summary timing = cachetrie::harness::measure(
      [&]() -> double {
        hits = 0;
        return cachetrie::harness::time_ms([&] {
          for (std::size_t i = 0; i < kZipfOps; ++i) {
            hits += step(static_cast<bench::Key>(zipf.next_rank()) + 1) ? 1 : 0;
          }
        });
      },
      fig14_options());
  stats.miss_pct = 100.0 * static_cast<double>(kZipfOps - hits) /
                   static_cast<double>(kZipfOps);
  stats.resident = map.resident_bytes();
  return timing;
}

}  // namespace

int main() {
  bench::print_preamble(
      "Figure 14: bounded-memory mode — churn ceiling + zipf hit rate",
      "1 MiB-ceiling caches under (a) a 10x-ceiling fresh-key churn stream\n"
      "(4 writers; resident high-water mark must hold under ceiling+slack)\n"
      "and (b) a single-threaded zipf(1.0) lookup/insert-on-miss workload\n"
      "(miss rate measures the lazy eviction's LRU fidelity). Fixed sizes;\n"
      "REPRO_SCALE is ignored so artifacts stay comparable.");

  cachetrie::harness::BenchReport report{"fig14_bounded_churn"};
  const auto reclaim0 = bench::ReclaimSnapshot::take();
  bool ceiling_held = true;

  Table table{{"structure", "churn (ms)", "resident hwm", "final", "evicted",
               "zipf (ms)", "miss %"}};
  const auto run_structure = [&](const char* name, auto make) {
    ChurnStats churn;
    const Summary churn_ms = run_churn(make, churn);
    ZipfStats zipf;
    const Summary zipf_ms = run_zipf(make, zipf);

    const std::string n = std::to_string(kChurnKeys);
    report.add(name,
               {{"op", "bounded_churn"},
                {"n", n},
                {"threads", std::to_string(kChurnThreads)}},
               churn_ms, kChurnKeys);
    report.add(name,
               {{"op", "churn_resident_hwm"}, {"n", n}, {"unit", "bytes"}},
               exact_summary(static_cast<double>(churn.hwm)));
    report.add(name,
               {{"op", "churn_resident_final"}, {"n", n}, {"unit", "bytes"}},
               exact_summary(static_cast<double>(churn.final_resident)));
    report.add(name,
               {{"op", "zipf_mixed"},
                {"n", std::to_string(kZipfOps)},
                {"ranks", std::to_string(kZipfRanks)}},
               zipf_ms, kZipfOps);
    report.add(name,
               {{"op", "zipf_miss_rate"},
                {"ranks", std::to_string(kZipfRanks)},
                {"unit", "percent"}},
               exact_summary(zipf.miss_pct));

    table.add_row(
        {name, Table::fmt_mean_std(churn_ms.mean_ms, churn_ms.stddev_ms),
         Table::fmt(static_cast<double>(churn.hwm) / 1e6) + " MB",
         Table::fmt(static_cast<double>(churn.final_resident) / 1e6) + " MB",
         std::to_string(churn.evictions),
         Table::fmt_mean_std(zipf_ms.mean_ms, zipf_ms.stddev_ms),
         Table::fmt(zipf.miss_pct)});

    if (churn.hwm > kCeiling + kSlack) {
      ceiling_held = false;
      std::fprintf(stderr,
                   "FAIL [%s]: churn resident high-water %zu escaped "
                   "ceiling %zu + slack %zu (evictions=%llu scans=%llu)\n",
                   name, churn.hwm, kCeiling, kSlack,
                   static_cast<unsigned long long>(churn.evictions),
                   static_cast<unsigned long long>(churn.scans));
    }
  };

  run_structure("bounded_cachetrie", [] { return BoundedTrie{bounded_config()}; });
  run_structure("bounded_chm", [] { return BoundedChm{bounded_config()}; });
  table.print();

  // The ceiling governs live structure; this line shows how far the EBR
  // limbo (retired-not-yet-freed) ever outran the frees during the churn.
  bench::ReclaimSnapshot::take().print_delta(reclaim0, "fig14 churn");

  std::printf(
      "\nexpected shape: both high-water marks hold under %.2f MB;\n"
      "trie's final resident tracks the ceiling exactly (double-entry\n"
      "ledger), chm's is a derived estimate; zipf miss rate well under the\n"
      "%.0f%% an uncached pass would pay.\n",
      static_cast<double>(kCeiling + kSlack) / 1e6, 100.0);

  const int report_rc = bench::finish_report(report);
  if (!ceiling_held) return 1;  // the acceptance criterion is the ceiling
  return report_rc;
}
