// micro_ops.cpp — google-benchmark microbenchmarks of individual
// operations (per-op latency rather than the figure binaries' whole-run
// times). Complements the figure reproductions: these are the numbers a
// downstream user comparing dictionaries cares about.
//
// Run a subset:  ./build/bench/micro_ops --benchmark_filter=Lookup
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "chashmap/chashmap.hpp"
#include "ctrie/ctrie.hpp"
#include "harness/workload.hpp"
#include "skiplist/skiplist.hpp"

namespace {

using Key = std::uint64_t;

template <typename Map>
void bm_lookup_hit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  static Map* map = nullptr;
  static std::size_t filled = 0;
  if (map == nullptr || filled != n) {
    delete map;
    map = new Map();
    for (auto k : cachetrie::harness::shuffled_sequential_keys(n)) {
      map->insert(k, k);
    }
    for (std::size_t k = 0; k < n; ++k) (void)map->lookup(k);  // warm cache
    filled = n;
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->lookup((i * 0x9e3779b9u) % n));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <typename Map>
void bm_lookup_miss(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Map map;
  for (auto k : cachetrie::harness::shuffled_sequential_keys(n)) {
    map.insert(k, k);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.lookup(n + (i * 0x9e3779b9u)));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <typename Map>
void bm_insert_grow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = cachetrie::harness::shuffled_sequential_keys(n);
  for (auto _ : state) {
    Map map;
    for (auto k : keys) map.insert(k, k);
    benchmark::DoNotOptimize(map.lookup(keys[0]));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * n));
}

template <typename Map>
void bm_churn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Map map;
  for (std::uint64_t k = 0; k < n; ++k) map.insert(k, k);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t k = (i * 0x9e3779b9u) % n;
    map.remove(k);
    map.insert(k, i);
    ++i;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 2));
}

using CacheTrieMap = cachetrie::CacheTrie<Key, Key>;
using CtrieMap = cachetrie::ctrie::Ctrie<Key, Key>;
using ChmMap = cachetrie::chm::ConcurrentHashMap<Key, Key>;
using SkipListMap = cachetrie::csl::ConcurrentSkipList<Key, Key>;

}  // namespace

BENCHMARK(bm_lookup_hit<CacheTrieMap>)->Arg(100000)->Arg(1000000);
BENCHMARK(bm_lookup_hit<ChmMap>)->Arg(100000)->Arg(1000000);
BENCHMARK(bm_lookup_hit<CtrieMap>)->Arg(100000)->Arg(1000000);
BENCHMARK(bm_lookup_hit<SkipListMap>)->Arg(100000)->Arg(1000000);

BENCHMARK(bm_lookup_miss<CacheTrieMap>)->Arg(100000);
BENCHMARK(bm_lookup_miss<ChmMap>)->Arg(100000);
BENCHMARK(bm_lookup_miss<CtrieMap>)->Arg(100000);
BENCHMARK(bm_lookup_miss<SkipListMap>)->Arg(100000);

BENCHMARK(bm_insert_grow<CacheTrieMap>)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_insert_grow<ChmMap>)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_insert_grow<CtrieMap>)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_insert_grow<SkipListMap>)->Arg(100000)->Unit(benchmark::kMillisecond);

BENCHMARK(bm_churn<CacheTrieMap>)->Arg(100000);
BENCHMARK(bm_churn<ChmMap>)->Arg(100000);
BENCHMARK(bm_churn<CtrieMap>)->Arg(100000);
BENCHMARK(bm_churn<SkipListMap>)->Arg(100000);

// Expanded BENCHMARK_MAIN(), plus a default JSON artifact: unless the
// caller passes their own --benchmark_out, results also land in
// BENCH_micro_ops.json (honoring $CACHETRIE_BENCH_OUT like the figure
// binaries' BenchReport) so every bench binary leaves a machine-readable
// trace.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    std::string path;
    if (const char* dir = std::getenv("CACHETRIE_BENCH_OUT")) {
      path = dir;
      if (!path.empty() && path.back() != '/') path += '/';
    }
    path += "BENCH_micro_ops.json";
    out_flag = "--benchmark_out=" + path;
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
    std::printf("writing %s (google-benchmark JSON)\n", path.c_str());
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
