// fig13_parallel_lookup.cpp — reproduces Figure 13 (multi-threaded lookup,
// 1M keys): the structure is pre-filled, then each thread looks up every
// key once.
//
// Paper's findings: CHM fastest; cache-trie up to 60% slower than CHM (the
// extra pointer hop after the cache read — Theorem 4.2 spreads keys over
// two adjacent levels); both far ahead of ctrie and skip lists.
#include "common.hpp"

namespace {

using cachetrie::harness::Summary;
using cachetrie::harness::Table;

template <typename Make>
Summary bench_parallel_lookup(Make&& make,
                              const std::vector<bench::Key>& keys,
                              int threads) {
  auto map = make();
  for (auto k : keys) map.insert(k, k);
  // Warm the cache-trie's cache (slow lookups inhabit it).
  for (auto k : keys) (void)map.lookup(k);
  std::atomic<std::uint64_t> sink{0};
  return cachetrie::harness::measure(
      [&]() -> double {
        return cachetrie::harness::run_team_ms(threads, [&](int) {
          std::uint64_t acc = 0;
          for (auto k : keys) acc += map.lookup(k).value_or(0);
          sink.fetch_add(acc, std::memory_order_relaxed);
        });
      },
      bench::bench_options());
}

}  // namespace

int main() {
  bench::print_preamble(
      "Figure 13: multi-threaded lookup",
      "Pre-filled with N keys; every thread looks up all N keys once;\n"
      "makespan in ms, ratio vs CHM.");

  const std::size_t n = cachetrie::harness::by_scale<std::size_t>(
      50000, 1000000, 1000000);
  const auto keys = cachetrie::harness::shuffled_sequential_keys(n);
  std::printf("--- N = %zu ---\n", n);

  cachetrie::harness::BenchReport report{"fig13_parallel_lookup"};

  Table table{{"threads", "chm (ms)", "cachetrie", "w/o cache", "ctrie",
               "skiplist"}};
  for (const int threads : bench::thread_sweep()) {
    const Summary chm = bench_parallel_lookup(
        [] { return bench::ChmMap{}; }, keys, threads);
    const Summary trie =
        bench_parallel_lookup(bench::make_cachetrie, keys, threads);
    const Summary trie_nc =
        bench_parallel_lookup(bench::make_cachetrie_nocache, keys, threads);
    const Summary ctrie = bench_parallel_lookup(
        [] { return bench::CtrieMap{}; }, keys, threads);
    const Summary slist = bench_parallel_lookup(
        [] { return bench::SkipListMap{}; }, keys, threads);
    bench::report_row(report, "parallel_lookup", n, threads,
                      {chm, trie, trie_nc, ctrie, slist},
                      static_cast<std::uint64_t>(n) * threads);
    auto cell = [&](const Summary& s) {
      return Table::fmt(s.mean_ms) + " (" +
             Table::fmt_ratio(s.mean_ms, chm.mean_ms) + ")";
    };
    table.add_row({std::to_string(threads),
                   Table::fmt_mean_std(chm.mean_ms, chm.stddev_ms),
                   cell(trie), cell(trie_nc), cell(ctrie), cell(slist)});
  }
  table.print();
  std::printf(
      "\nexpected shape (paper): CHM < cachetrie (<=1.6x) << w/o-cache ~\n"
      "ctrie << skiplist; cachetrie 2-3x faster than ctrie at 100k-1M.\n");
  // Tail-latency cells (stat=p50/p90/p99/p999, unit=ns) in the artifact.
  bench::add_latency_rows(
      report, cachetrie::harness::by_scale<std::size_t>(20000, 50000, 200000));
  return bench::finish_report(report);
}
