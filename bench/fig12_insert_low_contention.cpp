// fig12_insert_low_contention.cpp — reproduces Figure 12 (multi-threaded
// insert, LOW contention): threads insert disjoint key ranges.
//
// Paper's findings: cache-tries beat CHM by 30-50% at 100k and 1M total
// keys and by up to 20% at 10M — the trie grows without CHM's table-resize
// stalls ("unlike hash tables, cache-tries do not require resizing a large
// underlying array").
//
// The paper's 10M-key point is scaled to 2M by default (10M at
// REPRO_SCALE=paper).
#include "common.hpp"

namespace {

using cachetrie::harness::DisjointKeys;
using cachetrie::harness::Summary;
using cachetrie::harness::Table;

template <typename Make>
Summary bench_disjoint(Make&& make, const DisjointKeys& workload,
                       int threads) {
  return bench::measure_structure(
      make,
      [&](auto& map) {
        return cachetrie::harness::run_team_ms(threads, [&](int t) {
          for (auto k : workload.for_thread(t)) map.insert(k, k);
        });
      },
      bench::bench_options());
}

}  // namespace

int main() {
  bench::print_preamble(
      "Figure 12: multi-threaded insert, low contention",
      "Threads insert disjoint key ranges (N total keys split evenly);\n"
      "makespan in ms, ratio vs CHM.");

  const auto totals = cachetrie::harness::by_scale<std::vector<std::size_t>>(
      {40000}, {100000, 1000000, 2000000}, {100000, 1000000, 10000000});

  cachetrie::harness::BenchReport report{"fig12_insert_low_contention"};

  for (const std::size_t total : totals) {
    std::printf("--- N = %zu total ---\n", total);
    Table table{{"threads", "chm (ms)", "cachetrie", "w/o cache", "ctrie",
                 "skiplist"}};
    for (const int threads : bench::thread_sweep()) {
      const DisjointKeys workload{threads, total / threads};
      const Summary chm =
          bench_disjoint([] { return bench::ChmMap{}; }, workload, threads);
      const Summary trie =
          bench_disjoint(bench::make_cachetrie, workload, threads);
      const Summary trie_nc =
          bench_disjoint(bench::make_cachetrie_nocache, workload, threads);
      const Summary ctrie = bench_disjoint(
          [] { return bench::CtrieMap{}; }, workload, threads);
      const Summary slist = bench_disjoint(
          [] { return bench::SkipListMap{}; }, workload, threads);
      bench::report_row(report, "insert_low_contention", total, threads,
                        {chm, trie, trie_nc, ctrie, slist}, total);
      auto cell = [&](const Summary& s) {
        return Table::fmt(s.mean_ms) + " (" +
               Table::fmt_ratio(s.mean_ms, chm.mean_ms) + ")";
      };
      table.add_row({std::to_string(threads),
                     Table::fmt_mean_std(chm.mean_ms, chm.stddev_ms),
                     cell(trie), cell(trie_nc), cell(ctrie), cell(slist)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper): cachetrie 1.3-1.5x FASTER than CHM at\n"
      "100k/1M, up to 1.2x faster at the largest size.\n");
  // Tail-latency cells (stat=p50/p90/p99/p999, unit=ns) in the artifact.
  bench::add_latency_rows(
      report, cachetrie::harness::by_scale<std::size_t>(20000, 50000, 200000));
  return bench::finish_report(report);
}
