// fig15_served_load.cpp — the serving layer under an open-loop load
// generator (DESIGN.md §4, EXPERIMENTS.md §fig15).
//
// Open-loop is the load shape that distinguishes a server that sheds from
// one that queues: requests fire on a FIXED arrival schedule, and each
// latency is measured from the request's *scheduled* send time, not from
// when the generator got around to writing it. Falling behind schedule
// therefore shows up in the tail instead of silently thinning the arrival
// rate — the coordinated-omission correction, measured rather than ignored.
//
// Five phases against one 2-shard loopback server over the bounded trie:
//   * steady      — arrival rate comfortably under capacity; the reference
//                   tail every other phase is compared against.
//   * overload    — 2x the steady rate plus a slow-reader connection that
//                   writes requests and never reads replies (the
//                   backpressure victim). Accepted-request tail only; shed
//                   replies are counted, not timed — refusing work IS the
//                   mechanism under test.
//   * conn_churn  — clients disconnect and reconnect mid-schedule; the
//                   accept/adopt/close path runs inside the measured
//                   window.
//   * hotkey      — every request hits one key (70/30 get/put): single-bucket
//                   contention through the full socket path.
//   * zipf_tenants— four tenants, each a zipf(1.0) keyspace, interleaved on
//                   the schedule — the multi-tenant cache shape.
//
// Sizes and rates are fixed — REPRO_SCALE is ignored so the artifact stays
// comparable across runs and scripts/perf_gate.py can diff the p50–p999
// cells against the committed baseline (only `stat` cells are emitted:
// shed/accepted counts are load-dependent and volatile, so they print in
// the table but never become gated cells). The bench HARD-FAILS (exit 1)
// if a shard dies, a protocol error appears, or buffered reply bytes
// escape write_buf_cap + one frame — the backpressure invariant.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "cachetrie/evict.hpp"
#include "common.hpp"
#include "net/client.hpp"
#include "net/proto.hpp"
#include "net/reactor.hpp"
#include "obs/latency.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace {

namespace net = cachetrie::net;
namespace proto = cachetrie::net::proto;
using cachetrie::harness::BenchParams;
using cachetrie::harness::LatencyQuantile;
using cachetrie::harness::LatencySummary;
using cachetrie::harness::RunningStats;
using cachetrie::harness::Table;

using BoundedTrie =
    cachetrie::evict::BoundedCacheTrie<std::uint64_t, std::uint64_t>;

constexpr std::size_t kShards = 2;
constexpr std::size_t kConns = 2;          // generator connections per phase
constexpr std::size_t kRequests = 6000;    // per pass
constexpr std::size_t kPasses = 2;         // stddev for the gate
constexpr std::uint64_t kSteadyGapUs = 60; // ~16.7k req/s
constexpr std::uint64_t kOverloadGapUs = kSteadyGapUs / 2;  // the "2x"
constexpr std::size_t kChurnEvery = 1000;  // reconnect cadence (conn_churn)
constexpr std::size_t kTenants = 4;
constexpr std::size_t kZipfRanks = 4096;
// In-flight ids a generator connection may have outstanding before it
// force-drains the oldest. Stays under the client's 1024 reply slots so a
// backlog can never alias a slot; the drain is a (counted) departure from
// pure open-loop that only engages when the server is far behind.
constexpr std::size_t kMaxInflight = 900;

std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Inverse-CDF zipf(s=1.0) over kZipfRanks ranks (fig14's sampler, sized
/// for a serving keyspace).
class ZipfSampler {
 public:
  explicit ZipfSampler(std::uint64_t seed) : state_(seed) {
    cdf_.reserve(kZipfRanks);
    double sum = 0.0;
    for (std::size_t r = 1; r <= kZipfRanks; ++r) {
      sum += 1.0 / static_cast<double>(r);
      cdf_.push_back(sum);
    }
    for (double& c : cdf_) c /= sum;
  }
  std::size_t next_rank() {
    const double u =
        static_cast<double>(splitmix(state_) >> 11) * 0x1.0p-53;
    return static_cast<std::size_t>(
        std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  std::uint64_t state_;
};

/// One scheduled arrival: fire `op(key,value)` at `offset_us` past phase
/// start on connection `conn`.
struct Arrival {
  std::uint64_t offset_us;
  proto::Op op;
  std::uint64_t key;
  std::uint64_t value;
  std::size_t conn;
};

enum class Phase { kSteady, kOverload, kConnChurn, kHotkey, kZipfTenants };

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kSteady: return "steady";
    case Phase::kOverload: return "overload";
    case Phase::kConnChurn: return "conn_churn";
    case Phase::kHotkey: return "hotkey";
    case Phase::kZipfTenants: return "zipf_tenants";
  }
  return "?";
}

/// Deterministic fixed-gap schedule for one phase (seeded per pass so the
/// key draws differ across passes but never across runs).
std::vector<Arrival> make_schedule(Phase phase, std::uint64_t seed) {
  const std::uint64_t gap =
      phase == Phase::kOverload ? kOverloadGapUs : kSteadyGapUs;
  std::uint64_t rng = seed;
  ZipfSampler zipf(seed ^ 0x5eedull);
  std::vector<Arrival> out;
  out.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    Arrival a;
    a.offset_us = gap * i;
    a.conn = i % kConns;
    const std::uint64_t r = splitmix(rng);
    switch (phase) {
      case Phase::kHotkey:
        a.key = 42;
        a.op = (r % 10) < 7 ? proto::Op::kGet : proto::Op::kPut;
        a.value = i;
        break;
      case Phase::kZipfTenants: {
        const std::uint64_t tenant = r % kTenants;
        a.key = (tenant << 32) | zipf.next_rank();
        a.op = (r % 10) < 8 ? proto::Op::kGet : proto::Op::kPut;
        a.value = i;
        break;
      }
      default:  // steady / overload / conn_churn: zipf get-or-put mix
        a.key = zipf.next_rank();
        a.op = (r % 10) < 8 ? proto::Op::kGet : proto::Op::kPut;
        a.value = i;
        break;
    }
    out.push_back(a);
  }
  return out;
}

struct PassResult {
  std::vector<double> accepted_ns;  // completion - *scheduled* send, kOk/kNotFound
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t lost = 0;        // timeout/closed/send-failed
  std::uint64_t forced_waits = 0;  // open-loop violations (backlog > slots)
  std::uint64_t reconnects = 0;
};

/// Runs one pass of one phase's schedule against the server. Single
/// dispatcher thread; per-connection pipelining with non-blocking poll
/// between sends, blocking drain at the end.
PassResult run_pass(std::uint16_t port, Phase phase,
                    const std::vector<Arrival>& schedule) {
  PassResult res;
  net::ClientConfig ccfg;
  ccfg.op_timeout_us = 5'000'000;
  ccfg.max_retries = 0;  // open loop: a shed is a data point, not a retry

  struct Conn {
    std::unique_ptr<net::Client> client;
    std::deque<std::pair<std::uint64_t, std::uint64_t>> inflight;  // id, sched_us
    std::size_t sent_on_conn = 0;
  };
  std::vector<Conn> conns(kConns);
  for (auto& c : conns) {
    c.client = std::make_unique<net::Client>(port, ccfg);
    if (!c.client->ok()) return res;
  }

  const auto settle = [&](proto::Status st, std::uint64_t sched_us,
                          std::uint64_t done_us) {
    if (st == proto::Status::kOk || st == proto::Status::kNotFound) {
      ++res.accepted;
      res.accepted_ns.push_back(
          static_cast<double>(done_us - sched_us) * 1e3);
    } else if (st == proto::Status::kShed) {
      ++res.shed;
    } else {
      ++res.lost;
    }
  };

  const std::uint64_t start_us = proto::now_us();
  for (const Arrival& a : schedule) {
    const std::uint64_t sched_us = start_us + a.offset_us;
    // Hold to the schedule: sleep only for the long gaps, spin the tail.
    while (true) {
      const std::uint64_t now = proto::now_us();
      if (now >= sched_us) break;
      if (sched_us - now > 200) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(sched_us - now - 100));
      }
    }

    Conn& c = conns[a.conn];
    // Connection churn: tear the connection down mid-schedule and dial a
    // fresh one; outstanding ids on the old connection drain first.
    if (phase == Phase::kConnChurn && c.sent_on_conn == kChurnEvery) {
      for (const auto& [id, s_us] : c.inflight) {
        settle(c.client->wait(id).status, s_us, proto::now_us());
      }
      c.inflight.clear();
      c.client->close();
      c.client = std::make_unique<net::Client>(port, ccfg);
      if (!c.client->ok()) return res;
      c.sent_on_conn = 0;
      ++res.reconnects;
    }

    std::uint64_t id = 0;
    if (!c.client->send(a.op, a.key, a.value, &id, /*deadline_us=*/0)) {
      ++res.lost;
      continue;
    }
    c.inflight.emplace_back(id, sched_us);
    ++c.sent_on_conn;

    // Opportunistic completion between arrivals (non-blocking).
    net::Client::Result r;
    while (!c.inflight.empty() &&
           c.client->poll(c.inflight.front().first, &r)) {
      settle(r.status, c.inflight.front().second, proto::now_us());
      c.inflight.pop_front();
    }
    // Slot guard: block on the oldest rather than alias a reply slot.
    if (c.inflight.size() >= kMaxInflight) {
      const auto [oid, o_us] = c.inflight.front();
      c.inflight.pop_front();
      settle(c.client->wait(oid).status, o_us, proto::now_us());
      ++res.forced_waits;
    }
  }

  for (auto& c : conns) {
    for (const auto& [id, s_us] : c.inflight) {
      settle(c.client->wait(id).status, s_us, proto::now_us());
    }
    c.client->close();
  }
  return res;
}

LatencyQuantile pack(const RunningStats& rs) {
  return LatencyQuantile{rs.mean(), rs.stddev(), rs.min(), rs.max()};
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(p * static_cast<double>(v.size() - 1))];
}

}  // namespace

int main() {
  bench::print_preamble(
      "Figure 15: served load — open-loop tails through the serving layer",
      "Fixed arrival schedules (coordinated omission measured: latency is\n"
      "taken from the scheduled send time) against a 2-shard loopback\n"
      "server over the bounded trie. Phases: steady, 2x overload with a\n"
      "non-reading slow client, connection churn, single-hot-key storm,\n"
      "4-tenant zipf. Accepted-request p50-p999 cells are gated; shed and\n"
      "loss counts print below but are load-dependent and never gated.\n"
      "Fixed sizes; REPRO_SCALE is ignored.");

  cachetrie::evict::BoundedConfig bcfg;
  bcfg.ceiling_bytes = 8u << 20;
  bcfg.ttl_ticks = 0;
  BoundedTrie map{bcfg};

  net::ServerConfig scfg;
  scfg.shards = kShards;
  scfg.shard.max_inflight = 128;
  scfg.shard.max_queue_age_us = 50'000;
  scfg.shard.write_buf_cap = 256 * 1024;
  scfg.conn_sndbuf = 16 * 1024;  // keeps the slow-reader phase cheap
  net::Server<BoundedTrie> server{map, scfg};
  if (!server.ok() || !server.start()) {
    std::fprintf(stderr, "FAIL: server did not start\n");
    return 1;
  }

  cachetrie::harness::BenchReport report{"fig15_served_load"};
  const auto reclaim0 = bench::ReclaimSnapshot::take();
  Table table{{"phase", "rate (rps)", "accepted", "shed", "lost",
               "p50 (us)", "p99 (us)", "p999 (us)", "notes"}};

  constexpr Phase kPhases[] = {Phase::kSteady, Phase::kOverload,
                               Phase::kConnChurn, Phase::kHotkey,
                               Phase::kZipfTenants};
  for (const Phase phase : kPhases) {
    RunningStats q50, q90, q99, q999;
    PassResult last;
    std::uint64_t reconnects = 0;
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
      // The overload phase's slow reader: floods requests, reads nothing,
      // gets backpressure-killed by the server mid-phase.
      std::thread slow_writer;
      net::Fd slow;
      if (phase == Phase::kOverload) {
        slow = net::connect_loopback(server.port(), 4096, 4096);
        slow_writer = std::thread([fd = slow.get()] {
          std::vector<unsigned char> wire;
          proto::RequestFrame req;
          req.op = static_cast<std::uint8_t>(proto::Op::kPing);
          for (std::uint64_t i = 0; i < 20000; ++i) {
            req.request_id = i + 1;
            wire.clear();
            proto::append_frame(wire, req);
            if (!net::write_all(fd, wire.data(), wire.size())) break;
          }
        });
      }

      PassResult res =
          run_pass(server.port(), phase, make_schedule(phase, pass + 1));
      if (slow_writer.joinable()) slow_writer.join();
      slow.reset();

      q50.add(percentile(res.accepted_ns, 0.50));
      q90.add(percentile(res.accepted_ns, 0.90));
      q99.add(percentile(res.accepted_ns, 0.99));
      q999.add(percentile(res.accepted_ns, 0.999));
      reconnects += res.reconnects;
      last = std::move(res);
    }

    LatencySummary ls;
    ls.p50 = pack(q50);
    ls.p90 = pack(q90);
    ls.p99 = pack(q99);
    ls.p999 = pack(q999);
    ls.ops_per_pass = kRequests;
    ls.passes = kPasses;
    const std::uint64_t gap =
        phase == Phase::kOverload ? kOverloadGapUs : kSteadyGapUs;
    report.add_latency("served_trie",
                       {{"op", phase_name(phase)},
                        {"n", std::to_string(kRequests)},
                        {"rate_rps", std::to_string(1'000'000 / gap)},
                        {"conns", std::to_string(kConns)}},
                       ls);

    std::string notes;
    if (phase == Phase::kOverload) notes = "+1 slow reader";
    if (phase == Phase::kConnChurn) {
      notes = std::to_string(reconnects) + " reconnects";
    }
    if (last.forced_waits > 0) {
      notes += (notes.empty() ? "" : ", ") +
               std::to_string(last.forced_waits) + " forced waits";
    }
    table.add_row({phase_name(phase), std::to_string(1'000'000 / gap),
                   std::to_string(last.accepted), std::to_string(last.shed),
                   std::to_string(last.lost),
                   Table::fmt(ls.p50.mean_ns / 1e3),
                   Table::fmt(ls.p99.mean_ns / 1e3),
                   Table::fmt(ls.p999.mean_ns / 1e3), notes});
  }

  server.stop();
  const auto totals = server.totals();
  // Per-phase decomposition of every served request's shard-side lifetime
  // (PhaseLatency, shard.hpp), merged over both shards — valid to read now
  // that stop() joined the shard threads. Each phase lands as gated
  // p50-p999 stat cells so a tail regression names the phase that moved.
  const net::PhaseLatency phases = server.phase_latency();
  table.print();
  std::printf(
      "\nserver totals: served=%llu shed=%llu deadline=%llu "
      "backpressure_kills=%llu proto_errors=%llu wbuf_hwm=%llu "
      "queue_hwm=%llu degraded=%llu\n",
      static_cast<unsigned long long>(totals.served),
      static_cast<unsigned long long>(totals.shed),
      static_cast<unsigned long long>(totals.deadline_expired),
      static_cast<unsigned long long>(totals.backpressure_kills),
      static_cast<unsigned long long>(totals.proto_errors),
      static_cast<unsigned long long>(totals.wbuf_hwm_bytes),
      static_cast<unsigned long long>(totals.queue_hwm),
      static_cast<unsigned long long>(totals.degraded_replies));
  bench::ReclaimSnapshot::take().print_delta(reclaim0, "fig15 load");

  // Phase histograms are in us; cells convert to ns to match every other
  // latency cell. One merged distribution over the whole run, so the
  // stddev the gate sees is 0 (the gate treats that as "no noise floor",
  // which is right: these are exact per-request stamps, not timer reps).
  const auto phase_summary = [](const cachetrie::obs::LatencyHistogram& h) {
    const auto q = [&h](double p) {
      const double ns = h.quantile(p) * 1e3;
      return LatencyQuantile{ns, 0.0, ns, ns};
    };
    LatencySummary ls;
    ls.p50 = q(0.50);
    ls.p90 = q(0.90);
    ls.p99 = q(0.99);
    ls.p999 = q(0.999);
    ls.ops_per_pass = h.count();
    ls.passes = 1;
    return ls;
  };
  const std::pair<const char*, const cachetrie::obs::LatencyHistogram*>
      phase_cells[] = {{"queue", &phases.queue},
                       {"execute", &phases.execute},
                       {"flush", &phases.flush},
                       {"total", &phases.total}};
  std::printf("\nphase decomposition (us, all served requests):\n");
  for (const auto& [name, hist] : phase_cells) {
    report.add_latency("served_phase", {{"op", name}}, phase_summary(*hist));
    std::printf("  %-8s n=%llu  p50 %.1f  p90 %.1f  p99 %.1f  p999 %.1f\n",
                name, static_cast<unsigned long long>(hist->count()),
                hist->quantile(0.50), hist->quantile(0.90),
                hist->quantile(0.99), hist->quantile(0.999));
  }

  std::printf(
      "\nexpected shape: steady p99 in the low hundreds of us on an idle\n"
      "box; overload sheds (shed > 0) instead of letting the accepted tail\n"
      "run away; churn and hotkey tails stay the same order of magnitude\n"
      "as steady; buffered replies never escape the write cap.\n");

  // The robustness invariants the serving layer exists for — hard failures,
  // not gated cells.
  bool ok = true;
  if (server.killed_shards() != 0) {
    ok = false;
    std::fprintf(stderr, "FAIL: %zu shard(s) died under load\n",
                 server.killed_shards());
  }
  if (totals.proto_errors != 0) {
    ok = false;
    std::fprintf(stderr, "FAIL: %llu protocol errors on a clean generator\n",
                 static_cast<unsigned long long>(totals.proto_errors));
  }
  if (totals.wbuf_hwm_bytes > scfg.shard.write_buf_cap + proto::kReplyWire) {
    ok = false;
    std::fprintf(
        stderr,
        "FAIL: buffered reply bytes %llu escaped write_buf_cap %zu + %zu\n",
        static_cast<unsigned long long>(totals.wbuf_hwm_bytes),
        scfg.shard.write_buf_cap, proto::kReplyWire);
  }
  if (!map.underlying().debug_validate().empty()) {
    ok = false;
    std::fprintf(stderr, "FAIL: served map failed debug_validate\n");
  }
  // Phase self-consistency: per request the stamps reuse the serving path's
  // own clock reads, so queue + execute + flush == total exactly; at the
  // histogram level the p50s must still agree within 10% (plus a small
  // absolute floor for bucket interpolation — sub-bucket error is ~1/16).
  const double sum_p50 = phases.queue.quantile(0.50) +
                         phases.execute.quantile(0.50) +
                         phases.flush.quantile(0.50);
  const double total_p50 = phases.total.quantile(0.50);
  const double tol_us = std::max(0.10 * total_p50, 5.0);
  if (phases.total.count() == 0) {
    ok = false;
    std::fprintf(stderr, "FAIL: no served request completed a flush stamp\n");
  } else if (std::abs(sum_p50 - total_p50) > tol_us) {
    ok = false;
    std::fprintf(stderr,
                 "FAIL: phase p50s (%.1f + %.1f + %.1f = %.1f us) drifted "
                 "from total p50 %.1f us by more than %.1f us\n",
                 phases.queue.quantile(0.50), phases.execute.quantile(0.50),
                 phases.flush.quantile(0.50), sum_p50, total_p50, tol_us);
  }

  // Post-run flight-recorder dump: check.sh's plain stage runs the
  // phase-attribution summarizer view over this file.
  if (cachetrie::obs::trace::enabled()) {
    cachetrie::obs::trace::dump_to_file("fig15_served_load");
  }

  const int report_rc = bench::finish_report(report);
  return ok ? report_rc : 1;
}
