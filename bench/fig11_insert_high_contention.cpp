// fig11_insert_high_contention.cpp — reproduces Figure 11 (multi-threaded
// insert, HIGH contention): every thread inserts the same N keys in the
// same order, so threads collide on every single slot.
//
// Paper's findings: at N=50k cache-tries beat CHM by ~10% up to 4 threads;
// at 200k/600k they are 10-30% slower (more slow-path restarts under
// contention). Skip lists and ctries trail both.
//
// NOTE (single-core containers): with one hardware thread this measures
// contention overhead under preemptive interleaving, not parallel speedup;
// the relative ordering of structures is still informative.
#include "common.hpp"

namespace {

using cachetrie::harness::SharedKeys;
using cachetrie::harness::Summary;
using cachetrie::harness::Table;

template <typename Make>
Summary bench_contended(Make&& make, const SharedKeys& workload,
                        int threads) {
  return bench::measure_structure(
      make,
      [&](auto& map) {
        return cachetrie::harness::run_team_ms(threads, [&](int t) {
          for (auto k : workload.for_thread(t)) map.insert(k, k);
        });
      },
      bench::bench_options());
}

}  // namespace

int main() {
  bench::print_preamble(
      "Figure 11: multi-threaded insert, high contention",
      "All threads insert the same keys in the same order (paper: \"we\n"
      "expect a high contention\"); makespan in ms, ratio vs CHM.");

  const auto sizes = cachetrie::harness::by_scale<std::vector<std::size_t>>(
      {20000}, {50000, 200000, 600000}, {50000, 200000, 600000});

  cachetrie::harness::BenchReport report{"fig11_insert_high_contention"};

  for (const std::size_t n : sizes) {
    const SharedKeys workload{n};
    std::printf("--- N = %zu ---\n", n);
    Table table{{"threads", "chm (ms)", "cachetrie", "w/o cache", "ctrie",
                 "skiplist"}};
    for (const int threads : bench::thread_sweep()) {
      const Summary chm =
          bench_contended([] { return bench::ChmMap{}; }, workload, threads);
      const Summary trie =
          bench_contended(bench::make_cachetrie, workload, threads);
      const Summary trie_nc =
          bench_contended(bench::make_cachetrie_nocache, workload, threads);
      const Summary ctrie =
          bench_contended([] { return bench::CtrieMap{}; }, workload,
                          threads);
      const Summary slist = bench_contended(
          [] { return bench::SkipListMap{}; }, workload, threads);
      bench::report_row(report, "insert_high_contention", n, threads,
                        {chm, trie, trie_nc, ctrie, slist},
                        static_cast<std::uint64_t>(n) * threads);
      auto cell = [&](const Summary& s) {
        return Table::fmt(s.mean_ms) + " (" +
               Table::fmt_ratio(s.mean_ms, chm.mean_ms) + ")";
      };
      table.add_row({std::to_string(threads),
                     Table::fmt_mean_std(chm.mean_ms, chm.stddev_ms),
                     cell(trie), cell(trie_nc), cell(ctrie), cell(slist)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper): cachetrie ~CHM at 50k (<=4T even ~10%%\n"
      "faster), 1.1-1.3x slower at 200k/600k; ctrie and skiplist slower.\n");
  // Tail-latency cells (stat=p50/p90/p99/p999, unit=ns) in the artifact.
  bench::add_latency_rows(
      report, cachetrie::harness::by_scale<std::size_t>(20000, 50000, 200000));
  return bench::finish_report(report);
}
