// reclamation_discipline_test.cpp — failure-injection-style validation of
// the reclamation protocol: every structure is run under a diagnostic
// reclaimer that never frees but records every retired pointer. Because
// memory is never reused, a pointer retired twice is an exact double-retire
// detection (the bug class behind most lock-free use-after-frees: two
// "winners" both believing they unlinked a node).
#include <gtest/gtest.h>

#include <barrier>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "chashmap/chashmap.hpp"
#include "ctrie/ctrie.hpp"
#include "skiplist/skiplist.hpp"
#include "util/rng.hpp"

namespace {

/// Defers all frees until free_all(); detects double retirement exactly
/// because no retired pointer's memory is ever reused while recorded.
struct AuditReclaimer {
  struct Guard {};
  static Guard pin() noexcept { return {}; }

  template <typename T>
  static void retire(T* p) {
    record(static_cast<void*>(p), &cachetrie::mr::delete_as<T>);
  }
  static void retire_raw(void* p, cachetrie::mr::Deleter d) { record(p, d); }
  static void retire_raw_sized(void* p, cachetrie::mr::Deleter d,
                               std::size_t) {
    record(p, d);
  }

  static void record(void* p, cachetrie::mr::Deleter d) {
    std::lock_guard<std::mutex> lock{mu_};
    const bool fresh = seen_.emplace(p, d).second;
    if (!fresh) ++double_retires_;
  }

  static void reset() {
    std::lock_guard<std::mutex> lock{mu_};
    seen_.clear();
    double_retires_ = 0;
  }

  /// Frees every recorded object. Call after the owning structure is
  /// destroyed (and thus holds no references into the audit set).
  static void free_all() {
    std::lock_guard<std::mutex> lock{mu_};
    for (const auto& [p, d] : seen_) d(p);
    seen_.clear();
  }

  static std::size_t double_retires() {
    std::lock_guard<std::mutex> lock{mu_};
    return double_retires_;
  }

  static inline std::mutex mu_;
  static inline std::unordered_map<void*, cachetrie::mr::Deleter> seen_;
  static inline std::size_t double_retires_ = 0;
};

constexpr int kThreads = 8;
constexpr int kPerThread = 1200;
constexpr int kOps = 25000;

template <typename Map>
void churn(Map& map) {
  std::barrier start{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      cachetrie::util::XorShift64Star rng{static_cast<std::uint64_t>(t) + 1};
      for (int op = 0; op < kOps; ++op) {
        // Threads deliberately overlap key ranges to maximize contention on
        // the retire-owning CAS winners.
        const std::uint64_t key = rng.next_below(kPerThread * 2);
        switch (rng.next_below(3)) {
          case 0:
            map.insert(key, key);
            break;
          case 1:
            (void)map.lookup(key);
            break;
          case 2:
            (void)map.remove(key);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(ReclamationDiscipline, CacheTrieNeverDoubleRetires) {
  AuditReclaimer::reset();
  {
    cachetrie::Config cfg;
    cfg.max_misses = 32;  // force frequent cache adjustment too
    cachetrie::CacheTrie<std::uint64_t, std::uint64_t,
                         cachetrie::util::DefaultHash<std::uint64_t>,
                         AuditReclaimer>
        map(cfg);
    churn(map);
    EXPECT_TRUE(map.debug_validate().empty());
  }
  EXPECT_EQ(AuditReclaimer::double_retires(), 0u);
  AuditReclaimer::free_all();
}

TEST(ReclamationDiscipline, CacheTrieDegradedHashNeverDoubleRetires) {
  AuditReclaimer::reset();
  {
    // Narrow hashes force expansion/compression/LNode storms.
    cachetrie::CacheTrie<std::uint64_t, std::uint64_t,
                         cachetrie::util::DegradedHash<10>, AuditReclaimer>
        map;
    churn(map);
  }
  EXPECT_EQ(AuditReclaimer::double_retires(), 0u);
  AuditReclaimer::free_all();
}

TEST(ReclamationDiscipline, CtrieNeverDoubleRetires) {
  AuditReclaimer::reset();
  {
    cachetrie::ctrie::Ctrie<std::uint64_t, std::uint64_t,
                            cachetrie::util::DegradedHash<12>, AuditReclaimer>
        map;
    churn(map);
    EXPECT_TRUE(map.debug_validate().empty());
  }
  EXPECT_EQ(AuditReclaimer::double_retires(), 0u);
  AuditReclaimer::free_all();
}

TEST(ReclamationDiscipline, CHashMapNeverDoubleRetires) {
  AuditReclaimer::reset();
  {
    cachetrie::chm::ConcurrentHashMap<std::uint64_t, std::uint64_t,
                                      cachetrie::util::DefaultHash<std::uint64_t>,
                                      AuditReclaimer>
        map(16);  // small initial table: many cooperative resizes
    churn(map);
  }
  EXPECT_EQ(AuditReclaimer::double_retires(), 0u);
  AuditReclaimer::free_all();
}

TEST(ReclamationDiscipline, SkipListNeverDoubleRetires) {
  AuditReclaimer::reset();
  {
    cachetrie::csl::ConcurrentSkipList<std::uint64_t, std::uint64_t,
                                       std::less<std::uint64_t>,
                                       AuditReclaimer>
        map;
    churn(map);
    EXPECT_TRUE(map.debug_validate().empty());
  }
  EXPECT_EQ(AuditReclaimer::double_retires(), 0u);
  AuditReclaimer::free_all();
}

}  // namespace
