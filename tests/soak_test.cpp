// soak_test.cpp — randomized soak/fuzz runs: long mixed workloads with
// randomized thread counts, key distributions and configuration, checked
// against per-thread bookkeeping and the structural validators. Iteration
// counts scale with CACHETRIE_SOAK (default keeps CI fast; set it higher
// for an overnight soak).
#include <gtest/gtest.h>

#include <barrier>
#include <cstdlib>
#include <thread>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "util/rng.hpp"

namespace {

using cachetrie::CacheTrie;
using cachetrie::Config;

int soak_factor() {
  const char* env = std::getenv("CACHETRIE_SOAK");
  const int f = env != nullptr ? std::atoi(env) : 1;
  return f > 0 ? f : 1;
}

/// One soak round: every thread owns a key stripe (ownership makes results
/// exactly checkable even under full concurrency) but all threads also
/// hammer a shared read-only region to keep the cache hot and contended.
void soak_round(std::uint64_t seed, int threads, std::uint64_t per_thread,
                const Config& cfg) {
  CacheTrie<std::uint64_t, std::uint64_t> trie(cfg);
  constexpr std::uint64_t kSharedKeys = 512;
  for (std::uint64_t s = 0; s < kSharedKeys; ++s) {
    trie.insert(~s, s);  // high keys: the shared always-present region
  }
  std::vector<std::vector<std::uint8_t>> present(
      threads, std::vector<std::uint8_t>(per_thread, 0));
  std::atomic<std::uint64_t> shared_misses{0};
  std::barrier start{threads};
  std::vector<std::thread> team;
  for (int t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      start.arrive_and_wait();
      cachetrie::util::XorShift64Star rng{seed * 977 +
                                          static_cast<std::uint64_t>(t)};
      auto& mine = present[t];
      const std::uint64_t base = static_cast<std::uint64_t>(t) * per_thread;
      const std::uint64_t ops = per_thread * 12;
      for (std::uint64_t op = 0; op < ops; ++op) {
        const std::uint64_t idx = rng.next_below(per_thread);
        const std::uint64_t key = base + idx;
        switch (rng.next_below(8)) {
          case 0:
          case 1:
          case 2: {
            const bool was_new = trie.insert(key, op);
            if (was_new == (mine[idx] != 0)) shared_misses.fetch_add(1 << 16);
            mine[idx] = 1;
            break;
          }
          case 3: {
            const bool removed = trie.remove(key).has_value();
            if (removed != (mine[idx] != 0)) shared_misses.fetch_add(1 << 16);
            mine[idx] = 0;
            break;
          }
          case 4: {
            const bool got = trie.lookup(key).has_value();
            if (got != (mine[idx] != 0)) shared_misses.fetch_add(1 << 16);
            break;
          }
          default: {
            // Shared region reads must always hit.
            const std::uint64_t s = rng.next_below(kSharedKeys);
            if (!trie.contains(~s)) shared_misses.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& th : team) th.join();
  ASSERT_EQ(shared_misses.load(), 0u)
      << "low 16 bits: shared-region misses; high bits: ownership errors";
  for (int t = 0; t < threads; ++t) {
    const std::uint64_t base = static_cast<std::uint64_t>(t) * per_thread;
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      ASSERT_EQ(trie.contains(base + i), present[t][i] != 0);
    }
  }
  const auto issues = trie.debug_validate();
  ASSERT_TRUE(issues.empty()) << issues.front();
}

TEST(Soak, RandomizedRounds) {
  const int rounds = 4 * soak_factor();
  cachetrie::util::XorShift64Star meta{20260707};
  for (int r = 0; r < rounds; ++r) {
    const int threads = 2 + static_cast<int>(meta.next_below(7));
    const std::uint64_t per_thread = 200 + meta.next_below(1800);
    Config cfg;
    cfg.use_cache = meta.next_below(4) != 0;  // mostly on
    cfg.compress = meta.next_below(4) != 0;
    cfg.compress_singletons = cfg.compress && meta.next_below(2) != 0;
    cfg.max_misses = 16u << meta.next_below(8);
    SCOPED_TRACE("round " + std::to_string(r) + " threads " +
                 std::to_string(threads) + " per_thread " +
                 std::to_string(per_thread));
    soak_round(meta.next(), threads, per_thread, cfg);
  }
}

TEST(Soak, DegradedHashRounds) {
  const int rounds = 2 * soak_factor();
  cachetrie::util::XorShift64Star meta{31337};
  for (int r = 0; r < rounds; ++r) {
    CacheTrie<std::uint64_t, std::uint64_t,
              cachetrie::util::DegradedHash<14>>
        trie;
    const int threads = 4;
    const std::uint64_t per = 600;
    std::barrier start{threads};
    std::vector<std::vector<std::uint8_t>> present(
        threads, std::vector<std::uint8_t>(per, 0));
    std::vector<std::thread> team;
    for (int t = 0; t < threads; ++t) {
      team.emplace_back([&, t, r] {
        start.arrive_and_wait();
        cachetrie::util::XorShift64Star rng{
            static_cast<std::uint64_t>(r * 131 + t)};
        auto& mine = present[t];
        for (int op = 0; op < 8000; ++op) {
          const std::uint64_t idx = rng.next_below(per);
          const std::uint64_t key = static_cast<std::uint64_t>(t) * per + idx;
          if (rng.next_below(2) == 0) {
            ASSERT_EQ(trie.insert(key, key), mine[idx] == 0);
            mine[idx] = 1;
          } else {
            ASSERT_EQ(trie.remove(key).has_value(), mine[idx] != 0);
            mine[idx] = 0;
          }
        }
      });
    }
    for (auto& th : team) th.join();
    const auto issues = trie.debug_validate();
    ASSERT_TRUE(issues.empty()) << issues.front();
  }
}

}  // namespace
