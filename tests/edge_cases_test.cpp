// edge_cases_test.cpp — cross-cutting edge cases that earlier suites do not
// pin down: deep branch creation from long shared prefixes, guard/reentrancy
// semantics, conditional-op winners on every structure, and traversal under
// concurrent mutation.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <set>
#include <thread>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "chashmap/chashmap.hpp"
#include "ctrie/ctrie.hpp"
#include "mr/epoch.hpp"
#include "skiplist/skiplist.hpp"
#include "util/rng.hpp"

namespace {

// Hashes sharing the low 56 bits force the deepest possible ANode chains
// (14 shared nibbles) before the keys separate in the top byte.
struct DeepPrefixHash {
  std::uint64_t operator()(const std::uint64_t& k) const noexcept {
    return (k << 56) | 0x00FFFFFFFFFFFFFFull >> 8;
  }
};

TEST(EdgeCases, DeepestPossibleBranching) {
  cachetrie::CacheTrie<std::uint64_t, std::uint64_t, DeepPrefixHash> trie;
  // Only 256 distinct hashes exist (top byte); all pairs share 14 nibbles.
  for (std::uint64_t k = 0; k < 256; ++k) {
    ASSERT_TRUE(trie.insert(k, k * 3));
  }
  // Keys 256.. collide fully with keys k%256 -> LNode chains at the bottom.
  for (std::uint64_t k = 256; k < 512; ++k) {
    ASSERT_TRUE(trie.insert(k, k * 3));
  }
  EXPECT_EQ(trie.size(), 512u);
  for (std::uint64_t k = 0; k < 512; ++k) {
    ASSERT_EQ(trie.lookup(k).value(), k * 3) << k;
  }
  const auto hist = trie.level_histogram();
  // Everything sits at the maximum depth the 64-bit hash allows.
  EXPECT_GE(hist.counts[14] + hist.counts[15] + hist.counts[16], 512u);
  auto issues = trie.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
  // Remove everything; compression must unwind the deep spine.
  for (std::uint64_t k = 0; k < 512; ++k) {
    ASSERT_TRUE(trie.remove(k).has_value()) << k;
  }
  EXPECT_EQ(trie.size(), 0u);
  // Near-empty trie again; the (retained) cache arrays dominate what's left.
  EXPECT_LT(trie.footprint_bytes(), 16384u);
}

TEST(EdgeCases, EpochGuardIsMovable) {
  auto& dom = cachetrie::mr::EpochDomain::instance();
  auto g1 = dom.pin();
  auto g2 = std::move(g1);  // must transfer, not double-unpin
  {
    auto g3 = dom.pin();  // nested while moved-to guard alive
  }
  SUCCEED();
}

TEST(EdgeCases, RetireUnderNestedGuards) {
  auto& dom = cachetrie::mr::EpochDomain::instance();
  struct Obj {
    int x = 42;
  };
  {
    auto outer = dom.pin();
    {
      auto inner = dom.pin();
      dom.retire(new Obj());
    }
    dom.retire(new Obj());
  }
  dom.drain_for_testing();
  SUCCEED();
}

template <typename Map>
void put_if_absent_one_winner() {
  Map map;
  constexpr int kThreads = 8;
  constexpr int kKeys = 4000;
  std::atomic<int> wins{0};
  std::barrier start{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      int local = 0;
      for (int i = 0; i < kKeys; ++i) {
        if (map.put_if_absent(i, t)) ++local;
      }
      wins.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(wins.load(), kKeys);
  for (int i = 0; i < kKeys; ++i) {
    const auto v = map.lookup(i);
    ASSERT_TRUE(v.has_value());
    ASSERT_LT(*v, kThreads);
  }
}

TEST(EdgeCases, PutIfAbsentOneWinnerCHashMap) {
  put_if_absent_one_winner<
      cachetrie::chm::ConcurrentHashMap<int, int>>();
}

TEST(EdgeCases, PutIfAbsentOneWinnerSkipList) {
  put_if_absent_one_winner<
      cachetrie::csl::ConcurrentSkipList<int, int>>();
}

TEST(EdgeCases, PutIfAbsentOneWinnerCtrie) {
  put_if_absent_one_winner<cachetrie::ctrie::Ctrie<int, int>>();
}

TEST(EdgeCases, SkipListSingleKeyInsertRemoveStorm) {
  cachetrie::csl::ConcurrentSkipList<int, std::uint64_t> list;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> anomalies{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 15000; ++i) {
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(w) << 32) |
            static_cast<std::uint32_t>(i);
        list.insert(7, tag);
        list.remove(7);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto v = list.lookup(7);
        if (v.has_value() && (*v >> 32) >= 4) anomalies.fetch_add(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(anomalies.load(), 0u);
  auto issues = list.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(EdgeCases, ForEachDuringConcurrentWritesIsSafe) {
  cachetrie::CacheTrie<int, int> trie;
  for (int k = 0; k < 30000; ++k) trie.insert(k, k);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    cachetrie::util::XorShift64Star rng{5};
    while (!stop.load(std::memory_order_acquire)) {
      const int k = static_cast<int>(rng.next_below(30000));
      trie.remove(k);
      trie.insert(k, k);
    }
  });
  for (int round = 0; round < 20; ++round) {
    std::size_t seen = 0;
    trie.for_each([&](const int& k, const int& v) {
      // Values are always key-consistent, even mid-churn.
      ASSERT_EQ(k, v);
      ++seen;
    });
    // At most one key is mid-flight at any time.
    ASSERT_GE(seen, 30000u - 4);
    ASSERT_LE(seen, 30000u);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

TEST(EdgeCases, MoveOnlyCallsAreNotRequired) {
  // Values must be copyable but keys/values needn't be default-constructible.
  struct NonDefault {
    explicit NonDefault(int x) : v(x) {}
    int v;
    bool operator==(const NonDefault& o) const { return v == o.v; }
  };
  cachetrie::CacheTrie<int, NonDefault> trie;
  trie.insert(1, NonDefault{10});
  const auto got = trie.lookup(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->v, 10);
}

TEST(EdgeCases, ZeroAndMaxKeys) {
  cachetrie::CacheTrie<std::uint64_t, int> trie;
  const std::uint64_t min_k = 0;
  const std::uint64_t max_k = ~std::uint64_t{0};
  EXPECT_TRUE(trie.insert(min_k, 1));
  EXPECT_TRUE(trie.insert(max_k, 2));
  EXPECT_EQ(trie.lookup(min_k).value(), 1);
  EXPECT_EQ(trie.lookup(max_k).value(), 2);
  EXPECT_TRUE(trie.remove(min_k).has_value());
  EXPECT_TRUE(trie.remove(max_k).has_value());
}

}  // namespace
