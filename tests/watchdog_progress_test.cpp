// watchdog_progress_test.cpp — the lock-freedom watchdog under injected
// faults, on all four structures.
//
// Part A (StallStorm.*): a seed-randomized plan derives a finite stall for
// every (registered protocol site x victim) pair; two victims and four
// survivors churn a shared key range through grow/mixed/deplete phases so
// expansion, compression, freeze/ENode, clean, transfer, and mark/unlink
// paths all execute. The watchdog asserts survivor throughput never hits
// zero across any tick. The plan seed is printed (and overridable via
// CACHETRIE_FAULT_SEED) so a failure replays from the log.
//
// Part B (LockFreedom.*): the strong claim — victims stall FOREVER at
// protocol decision points, one right after pinning its guard and one deep
// inside the protocol, and survivors must still make progress for the
// whole window while the stall-tolerant reclaimer keeps their garbage
// draining (byte cap + declared-stall fallback). Run only on the
// lock-free structures: the chashmap is the repo's lock-BASED baseline
// (JDK-style bin locks), where a thread parked forever inside a bin lock
// blocks that bin's writers by design — it gets Part A's finite stalls
// only, and that asymmetry is the point of having the baseline (see
// DESIGN.md "Reclamation under faults").
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "chashmap/chashmap.hpp"
#include "ctrie/ctrie.hpp"
#include "mr/epoch.hpp"
#include "skiplist/skiplist.hpp"
#include "testkit/chaos.hpp"
#include "testkit/fault.hpp"
#include "testkit/watchdog.hpp"

namespace {

namespace tk = cachetrie::testkit;
namespace fault = cachetrie::testkit::fault;
using cachetrie::mr::EpochDomain;
using namespace std::chrono_literals;

using Trie = cachetrie::CacheTrie<std::uint64_t, std::uint64_t>;
using Ctrie = cachetrie::ctrie::Ctrie<std::uint64_t, std::uint64_t>;
using Chm = cachetrie::chm::ConcurrentHashMap<std::uint64_t, std::uint64_t>;
using Csl = cachetrie::csl::ConcurrentSkipList<std::uint64_t, std::uint64_t>;

// Every chaos site each structure registers (PR 1's decision points plus
// this PR's post-pin site). Keep in sync with the chaos_point calls in the
// structure headers; the *Storm tests print per-site hits so a drifted
// list shows up in the log.
constexpr const char* kTrieSites[] = {
    "cachetrie.pinned",        "cachetrie.txn_announce",
    "cachetrie.txn_commit",    "cachetrie.expand_announce",
    "cachetrie.compress_announce", "cachetrie.freeze_slot",
    "cachetrie.enode_complete",    "cachetrie.enode_publish",
    "cachetrie.enode_commit"};
constexpr const char* kCtrieSites[] = {"ctrie.pinned", "ctrie.gcas",
                                       "ctrie.clean_commit",
                                       "ctrie.clean_parent"};
constexpr const char* kChmSites[] = {
    "chm.pinned",        "chm.bin_lock",      "chm.bin_locked",
    "chm.bin_cas",       "chm.transfer_help", "chm.table_publish",
    "chm.transfer_plant"};
constexpr const char* kCslSites[] = {"csl.pinned",     "csl.link_bottom",
                                     "csl.mark_bottom", "csl.unlink",
                                     "csl.mark_upper",  "csl.link_upper"};

std::uint64_t plan_seed() {
  if (const char* s = std::getenv("CACHETRIE_FAULT_SEED")) {
    if (*s != '\0') return std::strtoull(s, nullptr, 10);
  }
  return 0x5eed1234ULL;
}

/// Grow / mixed / deplete over a shared key range: exercises the expansion,
/// compression, and cleanup protocols, not just leaf updates. Returns ops
/// completed before `stop`.
template <typename Map>
void churn_phases(Map& map, std::atomic<bool>& stop,
                  std::atomic<std::uint64_t>* ops) {
  constexpr std::uint64_t kRange = 512;
  const auto done = [&] { return stop.load(std::memory_order_acquire); };
  while (!done()) {
    for (std::uint64_t k = 0; k < kRange && !done(); ++k) {
      map.insert(k, k + 1);
      if (ops != nullptr) ops->fetch_add(1, std::memory_order_relaxed);
    }
    for (std::uint64_t k = 0; k < kRange && !done(); ++k) {
      map.lookup(k);
      if ((k & 1) != 0) map.remove(k);
      if (ops != nullptr) ops->fetch_add(2, std::memory_order_relaxed);
    }
    for (std::uint64_t k = 0; k < kRange && !done(); ++k) {
      map.remove(k);
      if (ops != nullptr) ops->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

/// Part A body: randomized finite stalls at every site, for both victims.
template <typename Map>
void run_stall_storm(const char* const* sites, std::size_t n_sites) {
  const std::uint64_t seed = plan_seed();
  auto plan = fault::Plan::randomized(seed, sites, n_sites, /*n_victims=*/2,
                                      1ms, 8ms);
  // Replay recipe: CACHETRIE_FAULT_SEED=<seed> re-derives this exact plan.
  std::fputs(plan.describe().c_str(), stdout);

  tk::chaos::set_global_seed(seed);
  tk::chaos::reset_counters();
  fault::reset_counters();
  tk::chaos::enable(true);
  fault::install(plan);

  Map map;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> survivor_ops{0};
  tk::ProgressWatchdog watchdog(survivor_ops, 250ms);
  watchdog.start();

  std::vector<std::thread> workers;
  for (std::uint64_t t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      tk::chaos::bind_thread(t);
      // Threads 0-1 are the stall victims; they churn too, just slowed.
      churn_phases(map, stop, t >= 2 ? &survivor_ops : nullptr);
    });
  }

  std::this_thread::sleep_for(1200ms);
  watchdog.stop();
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  fault::clear();
  tk::chaos::enable(false);

  EXPECT_GE(watchdog.ticks(), 3u);
  EXPECT_EQ(watchdog.violations(), 0u)
      << "survivor throughput hit zero during randomized stalls, seed="
      << seed;
  EXPECT_GT(survivor_ops.load(), 0u);
  EXPECT_GT(fault::parked_total(), 0u) << "no stall ever fired";
  for (std::size_t i = 0; i < n_sites; ++i) {
    std::printf("  site %-28s hits=%llu\n", sites[i],
                static_cast<unsigned long long>(tk::chaos::site_hits(sites[i])));
  }
  // The post-pin site guards every operation, so it must always fire.
  EXPECT_GT(tk::chaos::site_hits(sites[0]), 0u);
}

/// Part B body: two victims stalled forever — one at the post-pin site, one
/// at a deep protocol site — with the byte cap forcing their declaration so
/// survivor garbage keeps draining.
template <typename Map>
void run_forever_stall(const char* pinned_site, const char* deep_site) {
  auto& dom = EpochDomain::instance();
  dom.drain_for_testing();
  constexpr std::size_t kCap = 1u << 20;  // 1 MiB
  dom.set_limbo_cap_bytes(kCap);
  dom.set_stall_lag_epochs(8);
  const std::uint64_t scans0 = dom.fallback_scans();

  tk::chaos::set_global_seed(11);
  tk::chaos::enable(true);
  fault::install(fault::Plan(11)
                     .stall(pinned_site, fault::kForever, /*thread=*/0)
                     .stall(deep_site, fault::kForever, /*thread=*/1));

  Map map;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> survivor_ops{0};

  std::vector<std::thread> workers;
  for (std::uint64_t t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      tk::chaos::bind_thread(t);
      try {
        churn_phases(map, stop, t >= 2 ? &survivor_ops : nullptr);
      } catch (const fault::ThreadKilled&) {
        // Released victim that a fallback sweep had declared stalled: the
        // resume fence converts its resumption into a death-unwind.
      }
    });
  }

  // Both victims must actually be parked before the window counts.
  const auto park_deadline = std::chrono::steady_clock::now() + 10s;
  while (fault::parked_now() < 2 &&
         std::chrono::steady_clock::now() < park_deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(fault::parked_now(), 2u)
      << "victims never reached their sites (" << pinned_site << ", "
      << deep_site << ")";

  // Let the churn actually blow the cap before the measured window starts:
  // on a loaded box the survivors may need a while to retire 1 MiB, and the
  // whole point of the window is survivor progress *after* the fallback
  // sweep has had to declare the parked victims.
  const auto scan_deadline = std::chrono::steady_clock::now() + 30s;
  while (dom.fallback_scans() == scans0 &&
         std::chrono::steady_clock::now() < scan_deadline) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_GT(dom.fallback_scans(), scans0)
      << "limbo never exceeded the cap; churn too slow for the window";

  tk::ProgressWatchdog watchdog(survivor_ops, 250ms);
  watchdog.start();
  std::this_thread::sleep_for(1500ms);
  watchdog.stop();

  EXPECT_GE(watchdog.ticks(), 5u);
  EXPECT_EQ(watchdog.violations(), 0u)
      << "survivors stopped while victims were parked forever at "
      << pinned_site << " / " << deep_site;
  EXPECT_GT(survivor_ops.load(), 0u);

  stop.store(true, std::memory_order_release);
  fault::clear();  // wakes the victims: resume or die, then exit
  for (auto& w : workers) w.join();
  tk::chaos::enable(false);

  dom.set_limbo_cap_bytes(EpochDomain::kNoLimboCap);
  dom.set_stall_lag_epochs(EpochDomain::kDefaultStallLagEpochs);
}

TEST(StallStorm, CacheTrie) { run_stall_storm<Trie>(kTrieSites, 9); }
TEST(StallStorm, Ctrie) { run_stall_storm<Ctrie>(kCtrieSites, 4); }
TEST(StallStorm, Chashmap) { run_stall_storm<Chm>(kChmSites, 7); }
TEST(StallStorm, Skiplist) { run_stall_storm<Csl>(kCslSites, 6); }

TEST(LockFreedom, CacheTrieSurvivesForeverStalls) {
  run_forever_stall<Trie>("cachetrie.pinned", "cachetrie.txn_announce");
}
TEST(LockFreedom, CtrieSurvivesForeverStalls) {
  run_forever_stall<Ctrie>("ctrie.pinned", "ctrie.gcas");
}
TEST(LockFreedom, SkiplistSurvivesForeverStalls) {
  run_forever_stall<Csl>("csl.pinned", "csl.mark_bottom");
}

}  // namespace
