// stalled_reclaimer_test.cpp — the PR's acceptance scenario: one thread is
// killed by the fault engine while it holds an EBR guard inside a CacheTrie
// operation, four churners keep inserting/removing for two seconds, and the
// stall-tolerant epoch domain must (a) keep limbo bytes bounded near the
// configured cap and (b) never stop survivor throughput. A companion test
// shows the same stall with the cap left unlimited: classic EBR, limbo
// grows with the churn — that contrast is what the cap buys.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "mr/epoch.hpp"
#include "testkit/chaos.hpp"
#include "testkit/fault.hpp"
#include "testkit/watchdog.hpp"

namespace {

namespace tk = cachetrie::testkit;
namespace fault = cachetrie::testkit::fault;
using cachetrie::mr::EpochDomain;
using namespace std::chrono_literals;

using Trie = cachetrie::CacheTrie<std::uint64_t, std::uint64_t>;

TEST(StalledReclaimer, DeadGuardHolderCannotUnboundLimbo) {
  auto& dom = EpochDomain::instance();
  dom.drain_for_testing();

  constexpr std::size_t kCap = 2u << 20;  // 2 MiB
  dom.set_limbo_cap_bytes(kCap);
  dom.set_stall_lag_epochs(8);
  const std::uint64_t scans0 = dom.fallback_scans();
  const std::uint64_t stalled0 = dom.stalled_records();

  tk::chaos::set_global_seed(7);
  tk::chaos::enable(true);
  // Thread 0 dies at its first pinned-site crossing: parked holding the
  // guard, then unwound via ThreadKilled when released at teardown.
  fault::install(fault::Plan(7).die("cachetrie.pinned", /*thread=*/0));

  Trie trie;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> survivor_ops{0};
  std::atomic<bool> victim_killed{false};

  std::thread victim([&] {
    tk::chaos::bind_thread(0);
    try {
      trie.insert(0xdead0001, 1);
      ADD_FAILURE() << "victim completed its op instead of dying";
    } catch (const fault::ThreadKilled&) {
      victim_killed.store(true, std::memory_order_release);
    }
  });

  std::vector<std::thread> churners;
  for (std::uint64_t t = 1; t <= 4; ++t) {
    churners.emplace_back([&, t] {
      tk::chaos::bind_thread(t);
      std::uint64_t k = t * 100000;
      while (!stop.load(std::memory_order_acquire)) {
        trie.insert(k, k);
        trie.remove(k);
        k = t * 100000 + (k + 1) % 4096;
        survivor_ops.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }

  // Wait until the victim is parked inside its guard before measuring.
  const auto park_deadline = std::chrono::steady_clock::now() + 10s;
  while (fault::parked_now() == 0 &&
         std::chrono::steady_clock::now() < park_deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(fault::parked_now(), 1u) << "victim never reached the site";

  // Don't start the measured window until the churn has actually exceeded
  // the cap once — on a loaded box the survivors may take a while to retire
  // 2 MiB, and the criterion is about behaviour *after* the fallback path
  // engages, not about how fast this machine churns.
  const auto scan_deadline = std::chrono::steady_clock::now() + 30s;
  while (dom.fallback_scans() == scans0 &&
         std::chrono::steady_clock::now() < scan_deadline) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_GT(dom.fallback_scans(), scans0)
      << "limbo never exceeded the cap; churn too slow for the window";

  tk::ProgressWatchdog watchdog(survivor_ops, 250ms);
  watchdog.start();

  // The measurement window the acceptance criterion names: >= 2 s of churn
  // against a dead guard holder, sampling limbo bytes throughout.
  std::size_t max_bytes = 0;
  const auto end = std::chrono::steady_clock::now() + 2100ms;
  while (std::chrono::steady_clock::now() < end) {
    max_bytes = std::max(max_bytes, dom.retired_bytes());
    std::this_thread::sleep_for(2ms);
  }

  watchdog.stop();
  stop.store(true, std::memory_order_release);
  for (auto& c : churners) c.join();

  // (a) Bounded garbage: the fallback declared the dead reader and kept
  // limbo near the cap. The slack is the declaration window — the handful
  // of over-cap retirements it takes the sweep to reach the threshold.
  EXPECT_GE(dom.stalled_records(), stalled0 + 1);
  EXPECT_LT(max_bytes, kCap + (512u << 10))
      << "limbo bytes escaped the cap despite the stall fallback";

  // (b) Lock-freedom held: survivors completed work in every watchdog tick.
  EXPECT_GE(watchdog.ticks(), 7u);
  EXPECT_EQ(watchdog.violations(), 0u)
      << "a watchdog tick saw zero completed survivor ops";
  EXPECT_GT(survivor_ops.load(), 0u);

  fault::clear();  // releases the victim; its guard unwinds via ThreadKilled
  victim.join();
  EXPECT_TRUE(victim_killed.load(std::memory_order_acquire));
  tk::chaos::enable(false);

  dom.set_limbo_cap_bytes(EpochDomain::kNoLimboCap);
  dom.set_stall_lag_epochs(EpochDomain::kDefaultStallLagEpochs);
}

TEST(StalledReclaimer, UncappedLimboGrowsPastTheCapForContrast) {
  // Same stall, cap left at the default (unlimited): classic EBR. The limbo
  // provably exceeds the bound the capped test enforced, which is what
  // makes the previous test's ceiling meaningful. Count-based churn so the
  // garbage volume is deterministic regardless of machine speed.
  auto& dom = EpochDomain::instance();
  dom.drain_for_testing();
  ASSERT_EQ(dom.limbo_cap_bytes(), EpochDomain::kNoLimboCap);

  tk::chaos::set_global_seed(8);
  tk::chaos::enable(true);
  fault::install(
      fault::Plan(8).stall("cachetrie.pinned", fault::kForever, /*thread=*/0));

  Trie trie;
  std::atomic<bool> victim_done{false};
  std::thread victim([&] {
    tk::chaos::bind_thread(0);
    try {
      trie.insert(0xdead0002, 1);
    } catch (const fault::ThreadKilled&) {
      // Tolerated: a sweep from a concurrent test could have declared us.
    }
    victim_done.store(true, std::memory_order_release);
  });
  const auto park_deadline = std::chrono::steady_clock::now() + 10s;
  while (fault::parked_now() == 0 &&
         std::chrono::steady_clock::now() < park_deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(fault::parked_now(), 1u);

  // ~50k removals x ~tens of bytes per retired node: well over 1 MiB of
  // garbage, none of it collectable while the victim pins the epoch.
  tk::chaos::bind_thread(9);
  std::size_t max_bytes = 0;
  for (std::uint64_t i = 0; i < 50000; ++i) {
    const std::uint64_t k = i % 8192;
    trie.insert(k, i);
    trie.remove(k);
    max_bytes = std::max(max_bytes, dom.retired_bytes());
  }
  EXPECT_GT(max_bytes, 1u << 20)
      << "uncapped EBR should have accumulated limbo behind the stall";

  fault::clear();
  victim.join();
  EXPECT_TRUE(victim_done.load(std::memory_order_acquire));
  tk::chaos::enable(false);
}

}  // namespace
