// Unit tests for the linearizability testkit itself: the Wing–Gong checker
// on hand-crafted histories, the history recorder, the chaos layer's
// determinism, and the mutation smoke test (a deliberately broken map must
// be rejected — a checker that never fails is testing nothing).
//
// This target compiles with CACHETRIE_TESTKIT=1 (see tests/CMakeLists.txt),
// so the chaos hooks are live here.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "testkit/adapter.hpp"
#include "testkit/chaos.hpp"
#include "testkit/driver.hpp"
#include "testkit/history.hpp"
#include "testkit/lin_check.hpp"

namespace tk = cachetrie::testkit;

static_assert(tk::kChaosCompiled,
              "testkit_test must build with CACHETRIE_TESTKIT=1");

namespace {

// --- hand-crafted history helpers -----------------------------------------

tk::Event ev(std::uint32_t thread, std::uint64_t invoke, std::uint64_t response,
             tk::Op op, std::uint64_t key) {
  tk::Event e;
  e.thread = thread;
  e.invoke = invoke;
  e.response = response;
  e.op = op;
  e.key = key;
  return e;
}

tk::Event insert_ev(std::uint32_t t, std::uint64_t i, std::uint64_t r,
                    std::uint64_t k, std::uint64_t v, bool was_new) {
  tk::Event e = ev(t, i, r, tk::Op::kInsert, k);
  e.arg = v;
  e.ok = was_new;
  return e;
}

tk::Event lookup_ev(std::uint32_t t, std::uint64_t i, std::uint64_t r,
                    std::uint64_t k, std::optional<std::uint64_t> found) {
  tk::Event e = ev(t, i, r, tk::Op::kLookup, k);
  e.has_result = found.has_value();
  if (found) e.result = *found;
  return e;
}

tk::Event remove_ev(std::uint32_t t, std::uint64_t i, std::uint64_t r,
                    std::uint64_t k, std::optional<std::uint64_t> victim) {
  tk::Event e = ev(t, i, r, tk::Op::kRemove, k);
  e.has_result = victim.has_value();
  if (victim) e.result = *victim;
  return e;
}

tk::Event pia_ev(std::uint32_t t, std::uint64_t i, std::uint64_t r,
                 std::uint64_t k, std::uint64_t v, bool inserted) {
  tk::Event e = ev(t, i, r, tk::Op::kPutIfAbsent, k);
  e.arg = v;
  e.ok = inserted;
  return e;
}

// --- checker: legal histories ---------------------------------------------

TEST(LinCheck, EmptyAndSequentialHistoriesPass) {
  EXPECT_FALSE(tk::check_history({}).has_value());
  std::vector<tk::Event> h{
      insert_ev(0, 0, 1, 7, 42, true),
      lookup_ev(0, 2, 3, 7, 42),
      remove_ev(0, 4, 5, 7, 42),
      lookup_ev(0, 6, 7, 7, std::nullopt),
  };
  EXPECT_FALSE(tk::check_history(h).has_value());
}

TEST(LinCheck, ConcurrentHistoryNeedingReorderPasses) {
  // The lookup starts before the insert responds but observes its value —
  // legal only if the insert linearizes first, which their overlapping
  // intervals permit. A naive invoke-order replay would reject this.
  std::vector<tk::Event> h{
      lookup_ev(0, 0, 5, 3, 42),
      insert_ev(1, 1, 4, 3, 42, true),
  };
  EXPECT_FALSE(tk::check_history(h).has_value());
}

TEST(LinCheck, IndependentKeysCheckedIndependently) {
  // Keys 1 and 2 interleave arbitrarily; each key's subhistory is legal.
  std::vector<tk::Event> h{
      insert_ev(0, 0, 3, 1, 10, true),
      insert_ev(1, 1, 4, 2, 20, true),
      lookup_ev(0, 5, 6, 2, 20),
      lookup_ev(1, 7, 8, 1, 10),
  };
  EXPECT_FALSE(tk::check_history(h).has_value());
}

// --- checker: illegal histories -------------------------------------------

TEST(LinCheck, StaleReadRejected) {
  // insert completes strictly before the lookup begins, yet the lookup
  // misses it: no linearization order can explain that.
  std::vector<tk::Event> h{
      insert_ev(0, 0, 1, 7, 42, true),
      lookup_ev(1, 2, 3, 7, std::nullopt),
  };
  auto v = tk::check_history(h);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->key, 7u);
  EXPECT_EQ(v->subhistory.size(), 2u);
}

TEST(LinCheck, DoublePutIfAbsentRejectedEvenWhenConcurrent) {
  // Two overlapping put_if_absent on one key both claiming "inserted":
  // whichever linearizes second must have seen the key present.
  std::vector<tk::Event> h{
      pia_ev(0, 0, 3, 5, 1, true),
      pia_ev(1, 1, 4, 5, 2, true),
  };
  EXPECT_TRUE(tk::check_history(h).has_value());
}

TEST(LinCheck, DoubleRemoveOfOneInsertRejected) {
  std::vector<tk::Event> h{
      insert_ev(0, 0, 1, 9, 5, true),
      remove_ev(0, 2, 5, 9, 5),
      remove_ev(1, 3, 6, 9, 5),
  };
  EXPECT_TRUE(tk::check_history(h).has_value());
}

TEST(LinCheck, WrongValueReadRejected) {
  std::vector<tk::Event> h{
      insert_ev(0, 0, 1, 4, 10, true),
      lookup_ev(1, 2, 3, 4, 99),
  };
  EXPECT_TRUE(tk::check_history(h).has_value());
}

TEST(LinCheck, TraceCarriesSeedHistoryAndEvents) {
  std::vector<tk::Event> h{
      insert_ev(0, 0, 1, 7, 42, true),
      lookup_ev(1, 2, 3, 7, std::nullopt),
  };
  auto v = tk::check_history(h);
  ASSERT_TRUE(v.has_value());
  const std::string trace = tk::format_trace(*v, 1234, 56);
  EXPECT_NE(trace.find("chaos seed: 1234"), std::string::npos);
  EXPECT_NE(trace.find("history #56"), std::string::npos);
  EXPECT_NE(trace.find("key: 7"), std::string::npos);
  EXPECT_NE(trace.find("insert(k=7, v=42) -> new"), std::string::npos);
  EXPECT_NE(trace.find("lookup(k=7) -> absent"), std::string::npos);
}

// --- history recorder ------------------------------------------------------

TEST(HistoryRecorder, TicketsAreUniqueAndMergedIsSorted) {
  tk::HistoryRecorder rec(2, 8);
  tk::Event a = insert_ev(0, rec.ticket(), rec.ticket(), 1, 1, true);
  tk::Event b = insert_ev(1, rec.ticket(), rec.ticket(), 2, 2, true);
  rec.append(1, b);
  rec.append(0, a);
  auto merged = rec.merged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_LT(merged[0].invoke, merged[1].invoke);
  EXPECT_EQ(merged[0].key, 1u);
  rec.reset();
  EXPECT_TRUE(rec.merged().empty());
  EXPECT_EQ(rec.ticket(), 0u);  // clock rewound
}

// --- chaos layer -----------------------------------------------------------

TEST(Chaos, DisabledPointsHaveNoEffect) {
  tk::chaos::enable(false);
  tk::chaos::reset_counters();
  for (int i = 0; i < 100; ++i) tk::chaos_point("test.site");
  EXPECT_EQ(tk::chaos::totals().points, 0u);
}

TEST(Chaos, DecisionStreamIsAPureFunctionOfSeedAndThread) {
  auto run = [](std::uint64_t seed) {
    tk::chaos::set_global_seed(seed);
    tk::chaos::enable(true);
    tk::chaos::reset_counters();
    tk::chaos::bind_thread(0);
    for (int i = 0; i < 4096; ++i) tk::chaos_point("test.stream");
    tk::chaos::enable(false);
    return tk::chaos::totals();
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.yields, b.yields);
  EXPECT_EQ(a.spins, b.spins);
  // Different seeds explore different streams (equal yield AND spin counts
  // over 4096 draws for two random seeds would be astronomically unlucky).
  const auto c = run(43);
  EXPECT_TRUE(a.yields != c.yields || a.spins != c.spins);
}

TEST(Chaos, SiteHitsAttributeToTheRightSite) {
  tk::chaos::set_global_seed(7);
  tk::chaos::enable(true);
  tk::chaos::reset_counters();
  tk::chaos::bind_thread(0);
  for (int i = 0; i < 10; ++i) tk::chaos_point("test.site_a");
  tk::chaos_point("test.site_b");
  tk::chaos::enable(false);
  EXPECT_GE(tk::chaos::site_hits("test.site_a"), 10u);
  EXPECT_GE(tk::chaos::site_hits("test.site_b"), 1u);
}

TEST(Chaos, SiteHashIsCompileTimeAndStable) {
  static_assert(tk::site_hash("cachetrie.txn_commit") !=
                tk::site_hash("cachetrie.txn_announce"));
  constexpr std::uint64_t h = tk::site_hash("x");
  EXPECT_EQ(h, tk::site_hash("x"));
}

// --- mutation smoke: the checker must have teeth ---------------------------

TEST(MutationSmoke, BrokenMapIsRejected) {
  // BrokenMap's mutations are non-atomic read-modify-writes with a forced
  // reschedule in the window; under 4 contending threads the checker must
  // catch it quickly. If this test ever passes 2000 histories clean, the
  // checker (or the recorder) has lost its teeth.
  tk::DriverConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 12;
  cfg.key_range = 2;  // maximize same-key collisions
  cfg.histories = 2000;
  cfg.seed = 1;
  auto result = tk::run_histories(
      [] { return std::make_unique<tk::MapAdapter<tk::BrokenMap>>(); }, cfg);
  ASSERT_TRUE(result.violation.has_value())
      << "non-linearizable BrokenMap survived " << result.histories_checked
      << " histories undetected";
  EXPECT_FALSE(result.trace.empty());
  EXPECT_NE(result.trace.find("chaos seed: 1"), std::string::npos);
}

TEST(MutationSmoke, ViolationReproducesFromPrintedSeed) {
  tk::DriverConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 12;
  cfg.key_range = 2;
  cfg.histories = 2000;
  cfg.seed = 99;
  auto make = [] {
    return std::make_unique<tk::MapAdapter<tk::BrokenMap>>();
  };
  auto first = tk::run_histories(make, cfg);
  ASSERT_TRUE(first.violation.has_value());
  // Re-running the identical (seed, config) replays the identical workload
  // and chaos streams; the bug must resurface, and the trace must again
  // carry the seed that provokes it.
  auto second = tk::run_histories(make, cfg);
  ASSERT_TRUE(second.violation.has_value());
  EXPECT_NE(second.trace.find("chaos seed: 99"), std::string::npos);
}

}  // namespace
