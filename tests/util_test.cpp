// util_test.cpp — unit tests for the utility substrate: bit tricks, hash
// mixers (avalanche sanity), RNG streams, padding, thread ids.
#include <gtest/gtest.h>

#include <bitset>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/bits.hpp"
#include "util/hashing.hpp"
#include "util/padded.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"

namespace {

using namespace cachetrie::util;

TEST(Bits, CountTrailingZeros) {
  EXPECT_EQ(count_trailing_zeros(1u), 0);
  EXPECT_EQ(count_trailing_zeros(2u), 1);
  EXPECT_EQ(count_trailing_zeros(256u), 8);
  EXPECT_EQ(count_trailing_zeros(std::uint64_t{1} << 40), 40);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(Hashing, Mix64IsInjectiveOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    outputs.insert(mix64(i));
  }
  EXPECT_EQ(outputs.size(), 100000u);
}

// Avalanche sanity: flipping one input bit should flip roughly half of the
// output bits, on average. We accept a generous [24, 40] band out of 64.
TEST(Hashing, Mix64Avalanche) {
  SplitMix64 seed_gen{42};
  double total_flips = 0;
  int trials = 0;
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t x = seed_gen.next();
    for (int bit = 0; bit < 64; bit += 7) {
      const std::uint64_t y = x ^ (std::uint64_t{1} << bit);
      total_flips += std::bitset<64>(mix64(x) ^ mix64(y)).count();
      ++trials;
    }
  }
  const double avg = total_flips / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Hashing, Fmix64Avalanche) {
  SplitMix64 seed_gen{7};
  double total_flips = 0;
  int trials = 0;
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t x = seed_gen.next();
    for (int bit = 0; bit < 64; bit += 7) {
      const std::uint64_t y = x ^ (std::uint64_t{1} << bit);
      total_flips += std::bitset<64>(fmix64(x) ^ fmix64(y)).count();
      ++trials;
    }
  }
  const double avg = total_flips / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Hashing, Fnv1aDistinguishesStrings) {
  EXPECT_NE(fnv1a("hello"), fnv1a("world"));
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
}

TEST(Hashing, DefaultHashStringsDiffer) {
  DefaultHash<std::string> h;
  EXPECT_NE(h("alpha"), h("beta"));
}

TEST(Hashing, DegradedHashLimitsEntropy) {
  DegradedHash<4> h4;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(h4(i), 16u);
  }
  DegradedHash<0> h0;
  EXPECT_EQ(h0(1), 0u);
  EXPECT_EQ(h0(999), 0u);
}

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a{1}, b{1};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XorShiftNonZeroAndSpread) {
  XorShift64Star rng{99};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next();
    EXPECT_NE(v, 0u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Rng, NextBelowRespectsBound) {
  XorShift64Star rng{5};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(37), 37u);
  }
}

TEST(Rng, ThreadRngsAreIndependentStreams) {
  std::uint64_t main_val = thread_rng().next();
  std::uint64_t worker_val = 0;
  std::thread t([&] { worker_val = thread_rng().next(); });
  t.join();
  EXPECT_NE(main_val, worker_val);
}

TEST(Padded, CounterOccupiesFullCacheLine) {
  EXPECT_GE(sizeof(PaddedCounter), kCacheLineSize);
  PaddedCounter counters[2];
  const auto a = reinterpret_cast<std::uintptr_t>(&counters[0]);
  const auto b = reinterpret_cast<std::uintptr_t>(&counters[1]);
  EXPECT_GE(b - a, kCacheLineSize);
}

TEST(ThreadId, StableWithinThreadDistinctAcross) {
  const std::uint32_t id0 = current_thread_id();
  EXPECT_EQ(current_thread_id(), id0);
  std::uint32_t worker_id = id0;
  std::thread t([&] { worker_id = current_thread_id(); });
  t.join();
  EXPECT_NE(worker_id, id0);
}

}  // namespace
