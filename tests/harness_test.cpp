// harness_test.cpp — tests for the benchmark substrate: statistics,
// warmup detection, workload generators, thread teams and table output.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/thread_team.hpp"
#include "harness/workload.hpp"

namespace {

using namespace cachetrie::harness;

TEST(Stats, RunningStatsBasics) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_EQ(rs.count(), 8u);
}

TEST(Stats, StddevIsSampleNotPopulation) {
  // Regression lock: variance() must divide by n-1 (Bessel-corrected
  // sample variance), not n. Bench reps are a sample of the run-time
  // distribution, and perf_gate.py's noise allowance is calibrated for
  // the sample estimator. {1, 5}: sample variance 8 (stddev 2*sqrt(2)),
  // population variance would be 4 (stddev 2).
  RunningStats rs;
  rs.add(1.0);
  rs.add(5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 8.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0 * std::sqrt(2.0));
  // A single observation has no spread estimate; by convention 0, not NaN.
  RunningStats one;
  one.add(3.0);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);
}

TEST(Stats, CovOfConstantSeriesIsZero) {
  RunningStats rs;
  for (int i = 0; i < 10; ++i) rs.add(3.5);
  EXPECT_DOUBLE_EQ(rs.cov(), 0.0);
}

TEST(Stats, SlidingCovConverges) {
  SlidingCov sc{3};
  sc.add(100.0);
  sc.add(10.0);
  EXPECT_FALSE(sc.full());
  sc.add(10.0);
  EXPECT_TRUE(sc.full());
  EXPECT_GT(sc.cov(), 0.5);  // still noisy
  sc.add(10.0);
  sc.add(10.0);
  sc.add(10.0);
  EXPECT_DOUBLE_EQ(sc.cov(), 0.0);  // old outlier aged out
}

TEST(Runner, WarmupStopsWhenStable) {
  int calls = 0;
  MeasureOptions opts;
  opts.min_warmup = 2;
  opts.max_warmup = 50;
  opts.cov_threshold = 0.05;
  opts.cov_window = 3;
  opts.reps = 4;
  auto body = [&]() -> double {
    ++calls;
    return calls < 3 ? 100.0 : 10.0;  // stabilizes after 2 noisy iterations
  };
  const Summary s = measure(body, opts);
  EXPECT_EQ(s.reps, 4u);
  EXPECT_LT(s.warmup_iters, 50u);  // converged before the budget
  EXPECT_DOUBLE_EQ(s.mean_ms, 10.0);
  EXPECT_DOUBLE_EQ(s.stddev_ms, 0.0);
}

TEST(Runner, WarmupBudgetBoundsNoisyBodies) {
  int calls = 0;
  MeasureOptions opts;
  opts.max_warmup = 6;
  opts.reps = 2;
  auto body = [&]() -> double {
    ++calls;
    return (calls % 2 == 0) ? 100.0 : 1.0;  // never stabilizes
  };
  const Summary s = measure(body, opts);
  EXPECT_EQ(s.warmup_iters, 6u);
  EXPECT_EQ(s.reps, 2u);
}

TEST(Runner, TimeMsMeasuresSomething) {
  volatile std::uint64_t sink = 0;
  const double ms = time_ms([&] {
    for (int i = 0; i < 1000000; ++i) sink = sink + 1;
  });
  EXPECT_GE(ms, 0.0);
}

TEST(Workload, RandomKeysDistinct) {
  auto keys = random_keys(10000, 7);
  std::set<std::uint64_t> uniq(keys.begin(), keys.end());
  EXPECT_EQ(uniq.size(), keys.size());
  // Deterministic per seed.
  auto again = random_keys(10000, 7);
  EXPECT_EQ(keys, again);
  EXPECT_NE(keys, random_keys(10000, 8));
}

TEST(Workload, ShuffledSequentialIsAPermutation) {
  auto keys = shuffled_sequential_keys(5000, 3);
  std::set<std::uint64_t> uniq(keys.begin(), keys.end());
  EXPECT_EQ(uniq.size(), 5000u);
  EXPECT_EQ(*uniq.begin(), 0u);
  EXPECT_EQ(*uniq.rbegin(), 4999u);
  // Actually shuffled.
  bool any_moved = false;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] != i) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

TEST(Workload, SharedKeysIdenticalAcrossThreads) {
  SharedKeys w{1000};
  EXPECT_EQ(&w.for_thread(0), &w.for_thread(5));
  EXPECT_EQ(w.total_distinct(), 1000u);
}

TEST(Workload, DisjointKeysAreDisjointAndComplete) {
  DisjointKeys w{4, 1000};
  std::set<std::uint64_t> all;
  for (int t = 0; t < 4; ++t) {
    for (auto k : w.for_thread(t)) all.insert(k);
  }
  EXPECT_EQ(all.size(), 4000u);
  EXPECT_EQ(*all.rbegin(), 3999u);
}

TEST(ThreadTeam, AllBodiesRunAndMakespanPositive) {
  std::atomic<int> ran{0};
  const double ms = run_team_ms(4, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
  EXPECT_GE(ms, 0.0);
}

TEST(TablePrinter, AlignsAndNormalizes) {
  Table t{{"size", "skiplist", "chm"}};
  t.add_row({"100k", Table::fmt(1.5), Table::fmt_ratio(3.0, 1.5)});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("size"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("2.00x"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Scale, DefaultsWhenUnset) {
  // REPRO_SCALE is not set in the test environment.
  if (std::getenv("REPRO_SCALE") == nullptr) {
    EXPECT_EQ(by_scale(1, 2, 3), 2);
  }
}

}  // namespace
