// integration_test.cpp — cross-module integration: all four concurrent
// maps driven through identical workloads must agree with each other (and
// with a sequential reference) at every checkpoint; plus whole-repo
// workflows combining the harness generators with the structures.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "chashmap/chashmap.hpp"
#include "ctrie/ctrie.hpp"
#include "harness/workload.hpp"
#include "skiplist/skiplist.hpp"
#include "util/rng.hpp"

namespace {

using Key = std::uint64_t;
using Val = std::uint64_t;

template <typename M1, typename M2>
void expect_equal_content(const M1& a, const M2& b) {
  ASSERT_EQ(a.size(), b.size());
  std::map<Key, Val> av;
  a.for_each([&](const Key& k, const Val& v) { av[k] = v; });
  std::map<Key, Val> bv;
  b.for_each([&](const Key& k, const Val& v) { bv[k] = v; });
  ASSERT_EQ(av, bv);
}

TEST(Integration, AllFourStructuresAgreeUnderChurn) {
  cachetrie::CacheTrie<Key, Val> trie;
  cachetrie::ctrie::Ctrie<Key, Val> ctrie;
  cachetrie::chm::ConcurrentHashMap<Key, Val> chm;
  cachetrie::csl::ConcurrentSkipList<Key, Val> slist;
  std::map<Key, Val> ref;

  cachetrie::util::XorShift64Star rng{2024};
  for (int step = 0; step < 60000; ++step) {
    const Key key = rng.next_below(3000);
    if (rng.next_below(5) < 3) {
      const bool expect_new = ref.find(key) == ref.end();
      ASSERT_EQ(trie.insert(key, step), expect_new);
      ASSERT_EQ(ctrie.insert(key, step), expect_new);
      ASSERT_EQ(chm.insert(key, step), expect_new);
      ASSERT_EQ(slist.insert(key, step), expect_new);
      ref[key] = static_cast<Val>(step);
    } else {
      const bool expect_removed = ref.erase(key) == 1;
      ASSERT_EQ(trie.remove(key).has_value(), expect_removed);
      ASSERT_EQ(ctrie.remove(key).has_value(), expect_removed);
      ASSERT_EQ(chm.remove(key).has_value(), expect_removed);
      ASSERT_EQ(slist.remove(key).has_value(), expect_removed);
    }
    if (step % 20000 == 19999) {
      expect_equal_content(trie, ctrie);
      expect_equal_content(trie, chm);
      expect_equal_content(trie, slist);
    }
  }
  ASSERT_EQ(trie.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_EQ(trie.lookup(k).value(), v);
    ASSERT_EQ(ctrie.lookup(k).value(), v);
    ASSERT_EQ(chm.lookup(k).value(), v);
    ASSERT_EQ(slist.lookup(k).value(), v);
  }
}

TEST(Integration, WorkloadGeneratorsDriveAllStructures) {
  const cachetrie::harness::DisjointKeys workload{4, 5000};
  cachetrie::CacheTrie<Key, Val> trie;
  cachetrie::chm::ConcurrentHashMap<Key, Val> chm;
  for (int t = 0; t < 4; ++t) {
    for (auto k : workload.for_thread(t)) {
      trie.insert(k, k * 2);
      chm.insert(k, k * 2);
    }
  }
  expect_equal_content(trie, chm);
  EXPECT_EQ(trie.size(), 20000u);
}

TEST(Integration, StringKeysAcrossTrieAndChm) {
  cachetrie::CacheTrie<std::string, std::string> trie;
  cachetrie::chm::ConcurrentHashMap<std::string, std::string> chm;
  std::vector<std::string> keys;
  for (int i = 0; i < 20000; ++i) {
    keys.push_back("user:" + std::to_string(i * 7919) + ":session");
  }
  for (const auto& k : keys) {
    trie.insert(k, k + "!");
    chm.insert(k, k + "!");
  }
  for (const auto& k : keys) {
    ASSERT_EQ(trie.lookup(k).value(), k + "!");
    ASSERT_EQ(chm.lookup(k).value(), k + "!");
  }
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(trie.remove(keys[i]).has_value());
    ASSERT_TRUE(chm.remove(keys[i]).has_value());
  }
  ASSERT_EQ(trie.size(), chm.size());
}

TEST(Integration, FootprintOrderingMatchesFigure9) {
  // The cross-structure property Figure 9 reports: skip list leanest, the
  // tries heaviest, CHM in between; the cache adds a modest overhead.
  constexpr std::size_t kN = 200000;
  const auto keys = cachetrie::harness::random_keys(kN);
  cachetrie::csl::ConcurrentSkipList<Key, Val> slist;
  cachetrie::chm::ConcurrentHashMap<Key, Val> chm;
  cachetrie::ctrie::Ctrie<Key, Val> ctrie;
  cachetrie::CacheTrie<Key, Val> trie;
  cachetrie::Config nc;
  nc.use_cache = false;
  cachetrie::CacheTrie<Key, Val> trie_nocache{nc};
  for (auto k : keys) {
    slist.insert(k, k);
    chm.insert(k, k);
    ctrie.insert(k, k);
    trie.insert(k, k);
    trie_nocache.insert(k, k);
  }
  for (auto k : keys) (void)trie.lookup(k);  // materialize the cache

  const auto sl = slist.footprint_bytes();
  const auto hm = chm.footprint_bytes();
  const auto ct = ctrie.footprint_bytes();
  const auto tn = trie_nocache.footprint_bytes();
  const auto tc = trie.footprint_bytes();
  EXPECT_LT(sl, hm);
  EXPECT_LT(hm, tn);
  EXPECT_LT(tn, tc);
  // Cache overhead stays well below 25% (paper: typically <10%).
  EXPECT_LT(static_cast<double>(tc),
            static_cast<double>(tn) * 1.25);
  // Everything within sane absolute bounds (40-120 bytes/key).
  for (const std::size_t fp : {sl, hm, ct, tn, tc}) {
    EXPECT_GT(fp, kN * 16);
    EXPECT_LT(fp, kN * 120);
  }
}

TEST(Integration, MultipleTriesAreIndependent) {
  // Sentinel nodes (FVNode/FSNode/NoTxn) are process-wide singletons shared
  // by every CacheTrie instantiation; instances must still be fully
  // independent.
  cachetrie::CacheTrie<int, int> a;
  cachetrie::CacheTrie<int, int> b;
  cachetrie::CacheTrie<int, std::string> c;  // different instantiation
  for (int k = 0; k < 5000; ++k) {
    a.insert(k, k);
    b.insert(k, -k);
    c.insert(k, std::to_string(k));
  }
  for (int k = 0; k < 5000; k += 2) a.remove(k);
  for (int k = 0; k < 5000; ++k) {
    ASSERT_EQ(a.contains(k), k % 2 == 1);
    ASSERT_EQ(b.lookup(k).value(), -k);
    ASSERT_EQ(c.lookup(k).value(), std::to_string(k));
  }
  EXPECT_TRUE(a.debug_validate().empty());
  EXPECT_TRUE(b.debug_validate().empty());
}

TEST(Integration, EpochDomainSharedAcrossStructures) {
  // All structures retire through one process-wide domain; a drain after
  // heavy churn in all of them must leave nothing in limbo.
  auto& dom = cachetrie::mr::EpochDomain::instance();
  {
    cachetrie::CacheTrie<Key, Val> trie;
    cachetrie::ctrie::Ctrie<Key, Val> ctrie;
    cachetrie::chm::ConcurrentHashMap<Key, Val> chm;
    cachetrie::csl::ConcurrentSkipList<Key, Val> slist;
    for (int round = 0; round < 3; ++round) {
      for (Key k = 0; k < 4000; ++k) {
        trie.insert(k, k);
        ctrie.insert(k, k);
        chm.insert(k, k);
        slist.insert(k, k);
      }
      for (Key k = 0; k < 4000; ++k) {
        trie.remove(k);
        ctrie.remove(k);
        chm.remove(k);
        slist.remove(k);
      }
    }
  }
  dom.drain_for_testing();
  EXPECT_EQ(dom.retired_count(), dom.freed_count());
}

}  // namespace
