// nodes_layout_test.cpp — whitebox tests of the node and cache-array
// memory layouts: exact allocation sizes (the footprint benches depend on
// them), slot alignment, sentinel identity, and construction/destruction of
// the flexible-array nodes.
#include <gtest/gtest.h>

#include <cstdint>

#include "cachetrie/cache.hpp"
#include "cachetrie/nodes.hpp"

namespace {

using namespace cachetrie::detail;

TEST(NodeLayout, SentinelsAreDistinctSingletons) {
  EXPECT_EQ(Sentinels::fv(), Sentinels::fv());
  EXPECT_EQ(Sentinels::fs(), Sentinels::fs());
  EXPECT_NE(Sentinels::fv(), Sentinels::fs());
  EXPECT_NE(Sentinels::no_txn(), Sentinels::pending());
  EXPECT_EQ(Sentinels::fv()->kind, Kind::kFVNode);
  EXPECT_EQ(Sentinels::fs()->kind, Kind::kFSNode);
  EXPECT_EQ(Sentinels::no_txn()->kind, Kind::kNoTxn);
  EXPECT_EQ(Sentinels::pending()->kind, Kind::kPending);
}

TEST(NodeLayout, ANodeExactSizes) {
  // Narrow node: header + 4 slots; wide: header + 16 slots.
  EXPECT_EQ(ANode::alloc_size(4), sizeof(ANode) + 4 * sizeof(void*));
  EXPECT_EQ(ANode::alloc_size(16), sizeof(ANode) + 16 * sizeof(void*));
  // The header must stay lean — the paper's footprint story depends on it.
  EXPECT_LE(sizeof(ANode), 8u);
}

TEST(NodeLayout, ANodeSlotsZeroInitializedAndAligned) {
  ANode* a = ANode::make(16);
  EXPECT_EQ(a->kind, Kind::kANode);
  EXPECT_EQ(a->length, 16u);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a->slots()[i].load(), nullptr);
  }
  const auto addr = reinterpret_cast<std::uintptr_t>(a->slots());
  EXPECT_EQ(addr % alignof(std::atomic<NodeBase*>), 0u);
  // Slots start immediately after the header (no padding holes).
  EXPECT_EQ(addr, reinterpret_cast<std::uintptr_t>(a) + sizeof(ANode));
  ANode::destroy(a);
}

TEST(NodeLayout, SNodeCarriesPairAndIdleTxn) {
  auto* s = SNode<int, int>::make(0xABCDull, 7, 70);
  EXPECT_EQ(s->kind, Kind::kSNode);
  EXPECT_EQ(s->hash, 0xABCDull);
  EXPECT_EQ(s->key, 7);
  EXPECT_EQ(s->value, 70);
  EXPECT_EQ(s->txn.load(), Sentinels::no_txn());
  // Unbounded tries never write the stamp; it must default to 0 so the
  // bounded-mode horizon checks are vacuous for them.
  EXPECT_EQ(s->stamp.load(), 0u);
  delete s;
}

TEST(NodeLayout, StampWordCarriedByBothLeafKinds) {
  // The bounded mode (DESIGN.md §3) stores the last-use tick inline in the
  // leaf: one extra word per pair, atomic on SNodes (hits refresh it
  // concurrently), plain on LNodes (chains are immutable — a rebuild copies
  // the stamp forward instead).
  auto* s = SNode<int, int>::make(0x1ull, 1, 10, /*stamp=*/42);
  EXPECT_EQ(s->stamp.load(), 42u);
  auto* l = LNode<int, int>::make(0x2ull, 2, 20, nullptr, /*stamp=*/43);
  EXPECT_EQ(l->stamp, 43u);
  delete l;
  delete s;
}

TEST(NodeLayout, ENodeStartsPending) {
  ANode* parent = ANode::make(16);
  ANode* target = ANode::make(4);
  ENode* e = ENode::make(parent, 3, target, 0x123ull, 8, false);
  EXPECT_EQ(e->kind, Kind::kENode);
  EXPECT_EQ(e->parent, parent);
  EXPECT_EQ(e->parentpos, 3u);
  EXPECT_EQ(e->target, target);
  EXPECT_EQ(e->level, 8u);
  EXPECT_FALSE(e->compress);
  EXPECT_EQ(e->result.load(), Sentinels::pending());
  delete e;
  ANode::destroy(target);
  ANode::destroy(parent);
}

TEST(NodeLayout, LNodeChainLinks) {
  auto* l1 = LNode<int, int>::make(5, 1, 10, nullptr);
  auto* l2 = LNode<int, int>::make(5, 2, 20, l1);
  EXPECT_EQ(l2->next, l1);
  EXPECT_EQ(l2->hash, l1->hash);
  EXPECT_EQ(l1->stamp, 0u);  // default: unbounded tries never stamp
  delete l2;
  delete l1;
}

TEST(CacheLayout, EntryCountAndIndexing) {
  CacheArray* c = CacheArray::make(8, 4, nullptr);
  EXPECT_EQ(c->level, 8u);
  EXPECT_EQ(c->entry_count(), 256u);
  EXPECT_EQ(c->index_of(0xABCDEFull), 0xEFull);  // low 8 bits
  EXPECT_EQ(c->index_of(0x100ull), 0x00ull);
  CacheArray::destroy(c);
}

TEST(CacheLayout, MissCountersOnDistinctCacheLines) {
  CacheArray* c = CacheArray::make(8, 4, nullptr);
  const auto a0 = reinterpret_cast<std::uintptr_t>(&c->misses()[0]);
  const auto a1 = reinterpret_cast<std::uintptr_t>(&c->misses()[1]);
  EXPECT_GE(a1 - a0, cachetrie::util::kCacheLineSize);
  EXPECT_EQ(a0 % cachetrie::util::kCacheLineSize, 0u);
  CacheArray::destroy(c);
}

TEST(CacheLayout, EntriesZeroInitialized) {
  CacheArray* c = CacheArray::make(12, 2, nullptr);
  for (std::size_t i = 0; i < c->entry_count(); i += 97) {
    EXPECT_EQ(c->entries()[i].load(), nullptr);
  }
  CacheArray::destroy(c);
}

TEST(CacheLayout, ParentChainAndFootprint) {
  CacheArray* p = CacheArray::make(8, 2, nullptr);
  CacheArray* c = CacheArray::make(12, 2, p);
  EXPECT_EQ(c->parent, p);
  EXPECT_GT(c->footprint_bytes(), p->footprint_bytes());
  EXPECT_GE(c->footprint_bytes(),
            (std::size_t{1} << 12) * sizeof(void*));
  CacheArray::destroy(c);
  CacheArray::destroy(p);
}

}  // namespace
