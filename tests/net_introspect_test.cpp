// net_introspect_test.cpp — live wire introspection (net label, RUN_SERIAL):
// kStats must hand back a parse-valid JSON document (registry snapshot +
// the shard's interval delta) while data traffic hammers the same server,
// and kTraceCtl must flip the flight recorder and trigger a dump over the
// wire. Lives in the net label because it wants the machine to itself —
// the concurrent-load pass makes latency-ish claims about a shared server.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "cachetrie/evict.hpp"
#include "net/client.hpp"
#include "net/proto.hpp"
#include "net/reactor.hpp"
#include "net/serve_map.hpp"
#include "obs/trace.hpp"

namespace {

namespace net = cachetrie::net;
namespace proto = cachetrie::net::proto;
using BoundedTrie = cachetrie::evict::BoundedCacheTrie<std::uint64_t,
                                                       std::uint64_t>;

// ---- a deliberately tiny JSON validator ----------------------------------
// Recursive-descent over the full grammar (objects, arrays, strings with
// escapes, numbers, literals). Accepts iff the whole input is exactly one
// JSON value. ~60 lines so the test does not grow a dependency; this is a
// validator, not a parser — it keeps no tree.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}
  bool valid() {
    ws();
    if (!value(0)) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;
  const std::string& s_;
  std::size_t i_ = 0;

  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  bool eat(char c) {
    if (i_ < s_.size() && s_[i_] == c) { ++i_; return true; }
    return false;
  }
  bool lit(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (i_ >= s_.size() || s_[i_] != *p) return false;
      ++i_;
    }
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (i_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[i_]);
      if (c == '"') { ++i_; return true; }
      if (c < 0x20) return false;  // raw control byte — must be escaped
      if (c == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
        const char e = s_[i_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i_;
            if (i_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[i_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++i_;
    }
    return false;  // unterminated
  }
  bool digits() {
    if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_])))
      return false;
    while (i_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
    return true;
  }
  bool number() {
    eat('-');
    if (!digits()) return false;
    if (eat('.') && !digits()) return false;
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (!digits()) return false;
    }
    return true;
  }
  bool value(int depth) {
    if (depth > kMaxDepth || i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '{') {
      ++i_;
      ws();
      if (eat('}')) return true;
      while (true) {
        ws();
        if (!string()) return false;
        ws();
        if (!eat(':')) return false;
        ws();
        if (!value(depth + 1)) return false;
        ws();
        if (eat('}')) return true;
        if (!eat(',')) return false;
      }
    }
    if (c == '[') {
      ++i_;
      ws();
      if (eat(']')) return true;
      while (true) {
        ws();
        if (!value(depth + 1)) return false;
        ws();
        if (eat(']')) return true;
        if (!eat(',')) return false;
      }
    }
    if (c == '"') return string();
    if (c == 't') return lit("true");
    if (c == 'f') return lit("false");
    if (c == 'n') return lit("null");
    return number();
  }
};

bool json_valid(const std::string& s) { return JsonValidator{s}.valid(); }

TEST(JsonValidator, SelfTest) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid(R"({"a":[1,2.5,-3e+2],"b":{"c":"x\n\"yé"}})"));
  EXPECT_TRUE(json_valid("[true,false,null]"));
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid(R"({"a":})"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_FALSE(json_valid(R"({"a":01x})"));
  EXPECT_FALSE(json_valid("\"unterminated"));
  EXPECT_FALSE(json_valid("{\"raw\":\"\x01\"}"));
}

// kStats under concurrent data load: every pull must come back kOk with a
// document that parses, names this PR's envelope keys, and embeds the
// registry snapshot sections — while writers churn the same shards.
TEST(NetIntrospect, StatsParseValidUnderConcurrentLoad) {
  BoundedTrie map{{}};
  net::ServerConfig scfg;
  scfg.shards = 2;
  net::Server<BoundedTrie> server{map, scfg};
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> data_failures{0};
  constexpr std::size_t kWriters = 2;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      net::Client c{server.port()};
      if (!c.ok()) {
        data_failures.fetch_add(1000);
        return;
      }
      const std::uint64_t base = (t + 1) << 24;
      for (std::uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        if (!c.put(base + (i & 1023), i).ok()) data_failures.fetch_add(1);
        if (!c.get(base + (i & 1023)).ok()) data_failures.fetch_add(1);
      }
    });
  }

  {
    net::Client puller{server.port()};
    ASSERT_TRUE(puller.ok());
    constexpr int kPulls = 40;
    for (int i = 0; i < kPulls; ++i) {
      const auto s = puller.stats();
      ASSERT_TRUE(s.ok()) << "pull " << i << " status "
                          << proto::status_name(s.status);
      EXPECT_TRUE(json_valid(s.json)) << "pull " << i << ": " << s.json;
      EXPECT_NE(s.json.find("\"shard\":"), std::string::npos);
      EXPECT_NE(s.json.find("\"snapshot\":"), std::string::npos);
      EXPECT_NE(s.json.find("\"delta\":"), std::string::npos);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  stop.store(true);
  for (auto& w : writers) w.join();
  server.stop();
  EXPECT_EQ(data_failures.load(), 0u);
  EXPECT_EQ(server.totals().proto_errors, 0u);
  EXPECT_EQ(server.killed_shards(), 0u);
}

// kTraceCtl over the wire: enable → the recorder is live and the reply
// echoes 1; dump → a TRACE_trace_ctl.json lands where $CACHETRIE_TRACE_OUT
// points and the reply echoes 1; disable → recorder off, echo 0. An
// out-of-range action draws kBadRequest without disturbing the state.
TEST(NetIntrospect, TraceCtlRoundTrip) {
  if (!cachetrie::obs::trace::kTraceCompiled) {
    GTEST_SKIP() << "flight recorder compiled out";
  }
  const std::string out_dir =
      ::testing::TempDir() + "net_introspect_trace_out";
  ::mkdir(out_dir.c_str(), 0755);
  // Set before the server spawns a dump: the shard thread reads this
  // environment variable only inside dump_to_file(), which we alone
  // trigger below — no concurrent getenv in flight.
  ::setenv("CACHETRIE_TRACE_OUT", out_dir.c_str(), 1);
  cachetrie::obs::trace::enable(false);

  BoundedTrie map{{}};
  net::Server<BoundedTrie> server{map, {}};
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.start());
  {
    net::Client client{server.port()};
    ASSERT_TRUE(client.ok());

    auto r = client.trace_ctl(proto::TraceCtl::kEnable);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, 1u);
    EXPECT_TRUE(cachetrie::obs::trace::enabled());

    // Put some traffic through so the rings have events to dump.
    for (std::uint64_t i = 0; i < 64; ++i) {
      ASSERT_TRUE(client.put(i, i * 3).ok());
    }

    r = client.trace_ctl(proto::TraceCtl::kDump);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, 1u) << "dump reported failure";
    struct ::stat st{};
    const std::string dumped = out_dir + "/TRACE_trace_ctl.json";
    EXPECT_EQ(::stat(dumped.c_str(), &st), 0) << dumped << " missing";
    EXPECT_GT(st.st_size, 0);

    r = client.trace_ctl(proto::TraceCtl::kDisable);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, 0u);
    EXPECT_FALSE(cachetrie::obs::trace::enabled());

    // Unknown action: rejected, recorder state untouched.
    std::uint64_t id = 0;
    ASSERT_TRUE(client.send(proto::Op::kTraceCtl, 0, 0xdead, &id, 0));
    EXPECT_EQ(client.wait(id).status, proto::Status::kBadRequest);
    EXPECT_FALSE(cachetrie::obs::trace::enabled());
  }
  server.stop();
  ::unsetenv("CACHETRIE_TRACE_OUT");
}

}  // namespace
