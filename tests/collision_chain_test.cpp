// collision_chain_test — LNode chains under forced full-hash collisions.
//
// A hash functor that maps every key to one constant drives all keys down
// the same slot path until the trie bottoms out into LNode collision
// chains (§3.2's list nodes). These tests exercise chain insert, in-chain
// replacement, chain shrink on remove, and the chain under concurrent
// insert/remove churn, checking structural invariants via debug_validate().

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "testkit/chaos.hpp"

namespace {

#ifndef CACHETRIE_TESTKIT
// This target builds without the testkit: the chaos hooks compiled into
// the structures must be constexpr no-ops (the zero-overhead contract).
static_assert(!cachetrie::testkit::kChaosCompiled);
constexpr bool chaos_is_free = (cachetrie::testkit::chaos_point("x"), true);
static_assert(chaos_is_free);
#endif

/// Every key hashes to the same value: maximal collisions, pure LNode load.
struct CollideAllHash {
  std::uint64_t operator()(const std::uint64_t&) const noexcept {
    return 0x5a5a5a5a5a5a5a5aULL;
  }
};

using CollidingTrie =
    cachetrie::CacheTrie<std::uint64_t, std::uint64_t, CollideAllHash>;

TEST(CollisionChain, SequentialInsertLookupRemove) {
  CollidingTrie trie;
  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(trie.insert(k, k * 10));
  }
  {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    auto v = trie.lookup(k);
    ASSERT_TRUE(v.has_value()) << "key " << k;
    EXPECT_EQ(*v, k * 10);
  }
  // Remove the odd keys; the chain must shrink without losing the rest.
  for (std::uint64_t k = 1; k < kKeys; k += 2) {
    auto v = trie.remove(k);
    ASSERT_TRUE(v.has_value()) << "key " << k;
    EXPECT_EQ(*v, k * 10);
  }
  {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(trie.lookup(k).has_value(), k % 2 == 0) << "key " << k;
  }
}

TEST(CollisionChain, ConditionalOpsInsideTheChain) {
  CollidingTrie trie;
  for (std::uint64_t k = 0; k < 8; ++k) trie.insert(k, 1);

  EXPECT_FALSE(trie.put_if_absent(3, 2));       // present -> no-op
  EXPECT_EQ(trie.lookup(3), std::optional<std::uint64_t>(1));
  EXPECT_TRUE(trie.put_if_absent(100, 7));      // absent -> chain grows
  EXPECT_TRUE(trie.replace(5, 9));
  EXPECT_EQ(trie.lookup(5), std::optional<std::uint64_t>(9));
  EXPECT_FALSE(trie.replace(200, 9));           // absent -> no-op
  EXPECT_TRUE(trie.replace_if_equals(5, 9, 11));
  EXPECT_FALSE(trie.replace_if_equals(5, 9, 13));  // stale comparand
  EXPECT_EQ(trie.lookup(5), std::optional<std::uint64_t>(11));
  EXPECT_TRUE(trie.remove_if_equals(5, 11));
  EXPECT_FALSE(trie.lookup(5).has_value());
  {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
}

TEST(CollisionChain, ReinsertAfterChainDrain) {
  // Drain the chain completely (compression kicks in), then rebuild it.
  CollidingTrie trie;
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t k = 0; k < 16; ++k) EXPECT_TRUE(trie.insert(k, k));
    for (std::uint64_t k = 0; k < 16; ++k) {
      EXPECT_TRUE(trie.remove(k).has_value());
    }
    {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
  }
  EXPECT_FALSE(trie.lookup(0).has_value());
}

TEST(CollisionChain, ConcurrentDisjointChurnKeepsChainConsistent) {
  // Each thread owns a disjoint key stripe but every key collides into the
  // same chain, so all structural updates contend on the same LNode list.
  CollidingTrie trie;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 32;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trie, t] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) * kPerThread;
      for (int r = 0; r < kRounds; ++r) {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          ASSERT_TRUE(trie.insert(base + i, base + i + r));
        }
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          auto v = trie.lookup(base + i);
          ASSERT_TRUE(v.has_value());
          ASSERT_EQ(*v, base + i + r);
        }
        // Leave the even keys of the final round in place.
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          if (r == kRounds - 1 && i % 2 == 0) continue;
          ASSERT_TRUE(trie.remove(base + i).has_value());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
  for (std::uint64_t k = 0; k < kThreads * kPerThread; ++k) {
    EXPECT_EQ(trie.lookup(k).has_value(), k % 2 == 0) << "key " << k;
  }
}

TEST(CollisionChain, ConcurrentSharedKeyRaceLosesNothing) {
  // All threads fight over the same small colliding key set; per-key
  // success counts must balance (inserts - removes == final presence).
  CollidingTrie trie;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeys = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<std::int64_t> balance[kKeys] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t x = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        const std::uint64_t k = x % kKeys;
        if ((x >> 32) & 1) {
          if (trie.put_if_absent(k, t)) {
            balance[k].fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          if (trie.remove(k).has_value()) {
            balance[k].fetch_sub(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::int64_t b = balance[k].load(std::memory_order_relaxed);
    ASSERT_TRUE(b == 0 || b == 1) << "key " << k << " balance " << b;
    EXPECT_EQ(trie.lookup(k).has_value(), b == 1) << "key " << k;
  }
}

}  // namespace
