// obs_chaos_test.cpp — the observability layer under seeded schedule
// perturbation (TESTKIT build): retry/help counters must stay monotone
// while chaos storms force the slow paths, no recording may be lost when
// worker threads exit, and snapshot totals must balance per-op invariants
// (successful inserts minus removes == final size on a fresh trie).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "chashmap/chashmap.hpp"
#include "obs/inventory.hpp"
#include "obs/metrics.hpp"
#include "testkit/chaos.hpp"

namespace obs = cachetrie::obs;
namespace chaos = cachetrie::testkit::chaos;

namespace {

constexpr std::uint64_t kSeeds[] = {11, 42, 1234};

class ObsChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kMetricsCompiled) {
      GTEST_SKIP() << "metrics compiled out (CACHETRIE_METRICS=0)";
    }
    chaos::enable(false);
  }
  void TearDown() override { chaos::enable(false); }
};

// Counters the storm below is expected to exercise; each must never be
// observed decreasing while worker threads hammer the structures.
const char* const kMonotoneCounters[] = {
    "cachetrie.txn.retry",    "cachetrie.cache.hit",
    "cachetrie.cache.miss",   "cachetrie.op.insert_new",
    "cachetrie.op.remove",    "chm.bin_lock",
    "ctrie.gcas.retry",       "csl.help_mark",
};

TEST_F(ObsChaosTest, CountersAreMonotoneUnderPerturbation) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    obs::registry().reset();  // single-threaded: totals start exact at 0
    chaos::set_global_seed(seed);
    chaos::enable(true);

    constexpr int kWorkers = 4;
    constexpr std::uint64_t kOpsPerWorker = 4000;
    std::atomic<bool> done{false};
    std::atomic<bool> violation{false};

    // The monitor races real recorders on purpose: each striped counter is
    // monotone per stripe, so any merged total it reads twice must be
    // non-decreasing regardless of the interleaving.
    std::thread monitor{[&] {
      std::uint64_t last[std::size(kMonotoneCounters)] = {};
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = obs::registry().snapshot();
        for (std::size_t i = 0; i < std::size(kMonotoneCounters); ++i) {
          const std::uint64_t now = snap.counter_value(kMonotoneCounters[i]);
          if (now < last[i]) violation.store(true);
          last[i] = now;
        }
        std::this_thread::yield();
      }
    }};

    {
      cachetrie::CacheTrie<std::uint64_t, std::uint64_t> trie;
      cachetrie::chm::ConcurrentHashMap<std::uint64_t, std::uint64_t> chm;
      std::vector<std::thread> team;
      team.reserve(kWorkers);
      for (int w = 0; w < kWorkers; ++w) {
        team.emplace_back([&, w] {
          chaos::bind_thread(static_cast<std::uint64_t>(w));
          // Overlapping key range across workers -> contended slow paths.
          for (std::uint64_t i = 0; i < kOpsPerWorker; ++i) {
            const std::uint64_t k = i % 512;
            trie.insert(k, i);
            (void)trie.lookup(k);
            if ((i & 3) == 0) (void)trie.remove(k);
            chm.insert(k, i);
          }
        });
      }
      for (auto& th : team) th.join();
    }

    done.store(true, std::memory_order_release);
    monitor.join();
    chaos::enable(false);
    EXPECT_FALSE(violation.load()) << "a merged counter total decreased";

    // The storm's contended inserts must actually have exercised the
    // instrumented paths (deterministic: every worker inserts and locks).
    const auto snap = obs::registry().snapshot();
    EXPECT_GT(snap.counter_value("cachetrie.op.insert_new"), 0u);
    EXPECT_GT(snap.counter_value("chm.bin_lock"), 0u);
  }
}

TEST_F(ObsChaosTest, InsertMinusRemoveEqualsFinalSize) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    obs::registry().reset();
    chaos::set_global_seed(seed);
    chaos::enable(true);

    constexpr int kWorkers = 4;
    constexpr std::uint64_t kKeys = 2048;
    cachetrie::CacheTrie<std::uint64_t, std::uint64_t> trie;
    {
      std::vector<std::thread> team;
      team.reserve(kWorkers);
      for (int w = 0; w < kWorkers; ++w) {
        team.emplace_back([&, w] {
          chaos::bind_thread(static_cast<std::uint64_t>(w));
          // All workers fight over the same keys; some inserts land as
          // replaces, some removes miss — only the *successful* ones bump
          // their counters, which is exactly what the balance checks.
          for (std::uint64_t i = 0; i < kKeys; ++i) {
            const std::uint64_t k = (i * 7 + static_cast<std::uint64_t>(w)) %
                                    kKeys;
            trie.insert(k, i);
            if ((k & 7) == static_cast<std::uint64_t>(w & 7)) {
              (void)trie.remove(k);
            }
          }
        });
      }
      for (auto& th : team) th.join();
    }
    chaos::enable(false);

    // Workers have exited; their stripes persist in the registry, so the
    // totals below include every completed op (nothing lost at exit).
    const auto snap = obs::registry().snapshot();
    const std::uint64_t inserted =
        snap.counter_value("cachetrie.op.insert_new");
    const std::uint64_t removed = snap.counter_value("cachetrie.op.remove");
    ASSERT_GE(inserted, removed);
    std::size_t size = 0;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      if (trie.lookup(k).has_value()) ++size;
    }
    EXPECT_EQ(inserted - removed, size);
  }
}

TEST_F(ObsChaosTest, RecordingsSurviveThreadExit) {
  obs::registry().reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1000;
  obs::Counter c{"test.obs_chaos.exit"};
  {
    std::vector<std::thread> team;
    team.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      team.emplace_back([&c] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
      });
    }
    for (auto& th : team) th.join();
  }
  // Every recorder thread is gone; the striped cells are registry-owned,
  // not thread-local, so the total is still exact.
  EXPECT_EQ(obs::registry().snapshot().counter_value("test.obs_chaos.exit"),
            kThreads * kPerThread);
}

}  // namespace
