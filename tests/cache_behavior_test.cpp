// cache_behavior_test.cpp — targeted tests of the cache subsystem
// (paper §3.4-3.6): creation trigger, inhabitation, fast hits, automatic
// eviction of stale entries, miss counting, depth sampling, and level
// adaptation in both directions.
#include <gtest/gtest.h>

#include <cstdint>

#include "cachetrie/cache_trie.hpp"
#include "harness/workload.hpp"
#include "obs/metrics.hpp"

namespace {

using cachetrie::CacheTrie;
using cachetrie::Config;

using Trie = CacheTrie<std::uint64_t, std::uint64_t>;

Config stats_config() {
  Config cfg;
  cfg.collect_stats = true;
  cfg.max_misses = 64;  // sample aggressively so tests converge fast
  return cfg;
}

TEST(CacheBehavior, NoCacheWhileTrieIsShallow) {
  // The cache is created only once some key reaches
  // cache_init_trigger_level (12). Grow the trie key by key and check the
  // cache appears exactly when the histogram says depth >= 3 exists.
  Trie trie{stats_config()};
  for (std::uint64_t k = 0; k < 3000; ++k) {
    trie.insert(k, k);
    (void)trie.lookup(k);
    const auto hist = trie.level_histogram();
    bool deep = false;
    for (std::size_t d = 3; d < hist.counts.size(); ++d) {
      if (hist.counts[d] != 0) deep = true;
    }
    if (!deep) {
      ASSERT_EQ(trie.cache_level(), -1) << "cache created too early at key "
                                        << k;
    } else {
      return;  // trigger depth reached; creation may now happen any time
    }
  }
}

TEST(CacheBehavior, CacheCreatedWhenTrieDeepens) {
  Trie trie{stats_config()};
  const auto keys = cachetrie::harness::random_keys(300000);
  for (auto k : keys) trie.insert(k, k);
  for (auto k : keys) (void)trie.lookup(k);
  EXPECT_GE(trie.cache_level(), 8);
  EXPECT_GE(trie.stats().cache_installs.load(), 1u);
}

TEST(CacheBehavior, LookupsHitTheCacheAfterWarmup) {
  Trie trie{stats_config()};
  const auto keys = cachetrie::harness::random_keys(300000);
  for (auto k : keys) trie.insert(k, k);
  for (auto k : keys) (void)trie.lookup(k);  // create + adapt + warm
  for (auto k : keys) (void)trie.lookup(k);  // warm at the settled level
  const auto hits0 = trie.stats().cache_fast_hits.load();
  for (auto k : keys) {
    ASSERT_EQ(trie.lookup(k).value(), k);
  }
  const auto hits = trie.stats().cache_fast_hits.load() - hits0;
  // The vast majority of lookups must be served through the cache.
  EXPECT_GT(hits, keys.size() * 9 / 10);
}

TEST(CacheBehavior, SamplingMovesCacheToPopulatedLevel) {
  Trie trie{stats_config()};
  const std::size_t n = 1000000;  // most keys at levels 16/20 (16^5 = n)
  const auto keys = cachetrie::harness::random_keys(n);
  for (auto k : keys) trie.insert(k, k);
  for (int round = 0; round < 3; ++round) {
    for (auto k : keys) (void)trie.lookup(k);
    if (trie.cache_level() >= 16) break;
  }
  EXPECT_GE(trie.cache_level(), 16);
  EXPECT_LE(trie.cache_level(), 20);
  EXPECT_GE(trie.stats().sampling_passes.load(), 1u);
}

TEST(CacheBehavior, CacheLevelShrinksWhenPopulationShrinks) {
  // Note: removing only a fraction of the keys does NOT move the cache —
  // survivors keep their depth (compression collapses empty/singleton
  // nodes, it does not rebalance). The downward adjustment shows when the
  // deep population is replaced by a shallow one.
  Config cfg = stats_config();
  Trie trie{cfg};
  const auto big = cachetrie::harness::random_keys(1000000, 1);
  for (auto k : big) trie.insert(k, k);
  for (int round = 0; round < 3 && trie.cache_level() < 16; ++round) {
    for (auto k : big) (void)trie.lookup(k);
  }
  const auto deep_level = trie.cache_level();
  ASSERT_GE(deep_level, 16);
  for (auto k : big) (void)trie.remove(k);
  const auto small = cachetrie::harness::random_keys(20000, 2);
  for (auto k : small) trie.insert(k, k);
  for (int round = 0;
       round < 10 && trie.cache_level() >= deep_level; ++round) {
    for (auto k : small) (void)trie.lookup(k);
  }
  EXPECT_LT(trie.cache_level(), deep_level);
  // Lookups remain exact across the shrink.
  for (std::size_t i = 0; i < small.size(); i += 17) {
    ASSERT_EQ(trie.lookup(small[i]).value(), small[i]);
  }
}

TEST(CacheBehavior, RemovedKeysInvisibleThroughWarmCache) {
  // The automatic-eviction property (§3.4): after a removal, a lookup that
  // goes through a stale cache entry must still answer "absent".
  Trie trie{stats_config()};
  const auto keys = cachetrie::harness::random_keys(300000);
  for (auto k : keys) trie.insert(k, k);
  for (auto k : keys) (void)trie.lookup(k);  // warm cache with SNodes
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(trie.remove(keys[i]).has_value());
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(trie.lookup(keys[i]).has_value(), i % 2 == 1) << i;
  }
}

TEST(CacheBehavior, ReplacedValueVisibleThroughWarmCache) {
  Trie trie{stats_config()};
  const auto keys = cachetrie::harness::random_keys(300000);
  for (auto k : keys) trie.insert(k, 1);
  for (auto k : keys) (void)trie.lookup(k);  // warm
  for (auto k : keys) trie.insert(k, 2);     // replace every pair
  for (auto k : keys) {
    ASSERT_EQ(trie.lookup(k).value(), 2u);
  }
}

TEST(CacheBehavior, MissCounterTriggersSampling) {
  Config cfg = stats_config();
  cfg.max_misses = 16;
  Trie trie{cfg};
  const auto keys = cachetrie::harness::random_keys(400000);
  for (auto k : keys) trie.insert(k, k);
  const auto samples0 = trie.stats().sampling_passes.load();
  for (auto k : keys) (void)trie.lookup(k);
  EXPECT_GT(trie.stats().sampling_passes.load(), samples0);
  EXPECT_GT(trie.stats().cache_misses_recorded.load(), 0u);
}

TEST(CacheBehavior, WithoutCacheNoStatsAccumulate) {
  Config cfg = stats_config();
  cfg.use_cache = false;
  Trie trie{cfg};
  const auto keys = cachetrie::harness::random_keys(200000);
  for (auto k : keys) trie.insert(k, k);
  for (auto k : keys) (void)trie.lookup(k);
  EXPECT_EQ(trie.cache_level(), -1);
  EXPECT_EQ(trie.stats().cache_fast_hits.load(), 0u);
  EXPECT_EQ(trie.stats().cache_installs.load(), 0u);
}

// --- telemetry-based invariants (obs/ layer; paper §3.4 + Theorem 4.2) -----
//
// The two tests below verify the paper's cache claims through the external
// metrics layer rather than the trie's internal Stats — exercising the same
// counters operators would watch in production.

TEST(CacheBehaviorTelemetry, HitRateRisesTowardOneOnWarmReadOnlyPhase) {
  if (!cachetrie::obs::kMetricsCompiled) {
    GTEST_SKIP() << "metrics compiled out (CACHETRIE_METRICS=0)";
  }
  auto& reg = cachetrie::obs::registry();
  Trie trie{stats_config()};
  const auto keys = cachetrie::harness::random_keys(300000);
  constexpr std::size_t kProbe = 200;  // fixed probe set, re-looked-up later

  auto probe_hit_rate = [&] {
    const auto before = reg.snapshot().counter_value("cachetrie.cache.hit");
    for (std::size_t i = 0; i < kProbe; ++i) (void)trie.lookup(keys[i]);
    const auto after = reg.snapshot().counter_value("cachetrie.cache.hit");
    return static_cast<double>(after - before) / kProbe;
  };

  // Cold: only the probe keys are inserted. The trie is shallow, so the
  // cache either does not exist yet or covers almost none of these keys —
  // probing them goes through the slow path.
  for (std::size_t i = 0; i < kProbe; ++i) trie.insert(keys[i], keys[i]);
  const double cold = probe_hit_rate();

  // Warm-up: grow to full size (inserts deepen the trie and create the
  // cache), then read-only passes settle the level and inhabit entries.
  for (std::size_t i = kProbe; i < keys.size(); ++i) {
    trie.insert(keys[i], keys[i]);
  }
  for (int round = 0; round < 3; ++round) {
    for (auto k : keys) (void)trie.lookup(k);
  }
  const double warm = probe_hit_rate();

  EXPECT_LT(cold, warm);
  EXPECT_GT(warm, 0.9) << "warm read-only phase should be nearly all cache "
                          "hits (paper §3.4)";
}

TEST(CacheBehaviorTelemetry, SampledDepthAtMostTwoAfterCacheGrowth) {
  if (!cachetrie::obs::kMetricsCompiled) {
    GTEST_SKIP() << "metrics compiled out (CACHETRIE_METRICS=0)";
  }
  auto& reg = cachetrie::obs::registry();
  Trie trie{stats_config()};
  // Population size matters for the 90% bound: 50k random keys concentrate
  // on levels 16/20 (Theorem 4.2's two adjacent levels), exactly the pair
  // a settled level-16 cache serves in 1-2 dereferences. A population
  // straddling 20/24 instead (e.g. 300k keys) legitimately takes a third
  // dereference for the deeper level while the cache sits at 16 — that is
  // the theorem's shape, not a cache defect.
  const auto keys = cachetrie::harness::random_keys(50000);
  for (auto k : keys) trie.insert(k, k);
  // Warm until the cache has grown and every key's entry is inhabited —
  // four full passes settle level adaptation on this population.
  for (int round = 0; round < 4; ++round) {
    for (auto k : keys) (void)trie.lookup(k);
  }
  ASSERT_GE(trie.cache_level(), 8);

  const auto before = reg.snapshot();
  const auto* h0 = before.find_histogram("cachetrie.lookup.depth");
  ASSERT_NE(h0, nullptr);
  const auto hit0 = before.counter_value("cachetrie.cache.hit");
  // Two measured passes just to double the ~1/64 depth sample count.
  for (int round = 0; round < 2; ++round) {
    for (auto k : keys) (void)trie.lookup(k);
  }
  const auto after = reg.snapshot();
  const auto* h1 = after.find_histogram("cachetrie.lookup.depth");
  ASSERT_NE(h1, nullptr);
  const std::uint64_t hits = after.counter_value("cachetrie.cache.hit") - hit0;
  const double lookups = 2.0 * static_cast<double>(keys.size());

  // Delta histogram of just the measured passes. Every lookup entry point
  // (fast SNode hit, one-hop ANode hit, root walk) samples its depth with
  // the same 1-in-64 counter-return trick, so the delta is an unbiased
  // systematic sample of the per-lookup depth distribution and its CDF can
  // be read off directly. ~1560 samples expected; at this population the
  // true <=2 fraction is ~0.95, putting the 0.9 threshold several binomial
  // standard deviations away.
  cachetrie::obs::Snapshot::Histogram delta = *h1;
  for (std::size_t b = 0; b < cachetrie::obs::kHistBuckets; ++b) {
    delta.buckets[b] -= h0->buckets[b];
  }
  delta.count -= h0->count;
  delta.sum -= h0->sum;
  ASSERT_GT(delta.count, lookups / 64.0 * 0.5);
  // Sanity on the companion signal: a settled cache serves essentially
  // every lookup on this read-only workload.
  EXPECT_GT(static_cast<double>(hits), 0.95 * lookups);
  EXPECT_GE(delta.fraction_at_most(2), 0.9)
      << "after cache growth, >=90% of lookups should resolve within 2 "
         "dereferences (Theorem 4.2 / paper §3.4); sampled=" << delta.count
      << " hits=" << hits;
}

TEST(CacheBehavior, PinnedCacheLevelStaysPinned) {
  Config cfg = stats_config();
  cfg.cache_init_level = 12;
  cfg.min_cache_level = 12;
  cfg.max_cache_level = 12;
  Trie trie{cfg};
  const auto keys = cachetrie::harness::random_keys(1000000);
  for (auto k : keys) trie.insert(k, k);
  for (int round = 0; round < 3; ++round) {
    for (auto k : keys) (void)trie.lookup(k);
  }
  EXPECT_EQ(trie.cache_level(), 12);
  // Lookups remain exact even at a suboptimal pinned level.
  for (std::size_t i = 0; i < keys.size(); i += 1000) {
    ASSERT_EQ(trie.lookup(keys[i]).value(), keys[i]);
  }
}

}  // namespace
