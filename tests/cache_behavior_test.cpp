// cache_behavior_test.cpp — targeted tests of the cache subsystem
// (paper §3.4-3.6): creation trigger, inhabitation, fast hits, automatic
// eviction of stale entries, miss counting, depth sampling, and level
// adaptation in both directions.
#include <gtest/gtest.h>

#include <cstdint>

#include "cachetrie/cache_trie.hpp"
#include "harness/workload.hpp"

namespace {

using cachetrie::CacheTrie;
using cachetrie::Config;

using Trie = CacheTrie<std::uint64_t, std::uint64_t>;

Config stats_config() {
  Config cfg;
  cfg.collect_stats = true;
  cfg.max_misses = 64;  // sample aggressively so tests converge fast
  return cfg;
}

TEST(CacheBehavior, NoCacheWhileTrieIsShallow) {
  // The cache is created only once some key reaches
  // cache_init_trigger_level (12). Grow the trie key by key and check the
  // cache appears exactly when the histogram says depth >= 3 exists.
  Trie trie{stats_config()};
  for (std::uint64_t k = 0; k < 3000; ++k) {
    trie.insert(k, k);
    (void)trie.lookup(k);
    const auto hist = trie.level_histogram();
    bool deep = false;
    for (std::size_t d = 3; d < hist.counts.size(); ++d) {
      if (hist.counts[d] != 0) deep = true;
    }
    if (!deep) {
      ASSERT_EQ(trie.cache_level(), -1) << "cache created too early at key "
                                        << k;
    } else {
      return;  // trigger depth reached; creation may now happen any time
    }
  }
}

TEST(CacheBehavior, CacheCreatedWhenTrieDeepens) {
  Trie trie{stats_config()};
  const auto keys = cachetrie::harness::random_keys(300000);
  for (auto k : keys) trie.insert(k, k);
  for (auto k : keys) (void)trie.lookup(k);
  EXPECT_GE(trie.cache_level(), 8);
  EXPECT_GE(trie.stats().cache_installs.load(), 1u);
}

TEST(CacheBehavior, LookupsHitTheCacheAfterWarmup) {
  Trie trie{stats_config()};
  const auto keys = cachetrie::harness::random_keys(300000);
  for (auto k : keys) trie.insert(k, k);
  for (auto k : keys) (void)trie.lookup(k);  // create + adapt + warm
  for (auto k : keys) (void)trie.lookup(k);  // warm at the settled level
  const auto hits0 = trie.stats().cache_fast_hits.load();
  for (auto k : keys) {
    ASSERT_EQ(trie.lookup(k).value(), k);
  }
  const auto hits = trie.stats().cache_fast_hits.load() - hits0;
  // The vast majority of lookups must be served through the cache.
  EXPECT_GT(hits, keys.size() * 9 / 10);
}

TEST(CacheBehavior, SamplingMovesCacheToPopulatedLevel) {
  Trie trie{stats_config()};
  const std::size_t n = 1000000;  // most keys at levels 16/20 (16^5 = n)
  const auto keys = cachetrie::harness::random_keys(n);
  for (auto k : keys) trie.insert(k, k);
  for (int round = 0; round < 3; ++round) {
    for (auto k : keys) (void)trie.lookup(k);
    if (trie.cache_level() >= 16) break;
  }
  EXPECT_GE(trie.cache_level(), 16);
  EXPECT_LE(trie.cache_level(), 20);
  EXPECT_GE(trie.stats().sampling_passes.load(), 1u);
}

TEST(CacheBehavior, CacheLevelShrinksWhenPopulationShrinks) {
  // Note: removing only a fraction of the keys does NOT move the cache —
  // survivors keep their depth (compression collapses empty/singleton
  // nodes, it does not rebalance). The downward adjustment shows when the
  // deep population is replaced by a shallow one.
  Config cfg = stats_config();
  Trie trie{cfg};
  const auto big = cachetrie::harness::random_keys(1000000, 1);
  for (auto k : big) trie.insert(k, k);
  for (int round = 0; round < 3 && trie.cache_level() < 16; ++round) {
    for (auto k : big) (void)trie.lookup(k);
  }
  const auto deep_level = trie.cache_level();
  ASSERT_GE(deep_level, 16);
  for (auto k : big) (void)trie.remove(k);
  const auto small = cachetrie::harness::random_keys(20000, 2);
  for (auto k : small) trie.insert(k, k);
  for (int round = 0;
       round < 10 && trie.cache_level() >= deep_level; ++round) {
    for (auto k : small) (void)trie.lookup(k);
  }
  EXPECT_LT(trie.cache_level(), deep_level);
  // Lookups remain exact across the shrink.
  for (std::size_t i = 0; i < small.size(); i += 17) {
    ASSERT_EQ(trie.lookup(small[i]).value(), small[i]);
  }
}

TEST(CacheBehavior, RemovedKeysInvisibleThroughWarmCache) {
  // The automatic-eviction property (§3.4): after a removal, a lookup that
  // goes through a stale cache entry must still answer "absent".
  Trie trie{stats_config()};
  const auto keys = cachetrie::harness::random_keys(300000);
  for (auto k : keys) trie.insert(k, k);
  for (auto k : keys) (void)trie.lookup(k);  // warm cache with SNodes
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(trie.remove(keys[i]).has_value());
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(trie.lookup(keys[i]).has_value(), i % 2 == 1) << i;
  }
}

TEST(CacheBehavior, ReplacedValueVisibleThroughWarmCache) {
  Trie trie{stats_config()};
  const auto keys = cachetrie::harness::random_keys(300000);
  for (auto k : keys) trie.insert(k, 1);
  for (auto k : keys) (void)trie.lookup(k);  // warm
  for (auto k : keys) trie.insert(k, 2);     // replace every pair
  for (auto k : keys) {
    ASSERT_EQ(trie.lookup(k).value(), 2u);
  }
}

TEST(CacheBehavior, MissCounterTriggersSampling) {
  Config cfg = stats_config();
  cfg.max_misses = 16;
  Trie trie{cfg};
  const auto keys = cachetrie::harness::random_keys(400000);
  for (auto k : keys) trie.insert(k, k);
  const auto samples0 = trie.stats().sampling_passes.load();
  for (auto k : keys) (void)trie.lookup(k);
  EXPECT_GT(trie.stats().sampling_passes.load(), samples0);
  EXPECT_GT(trie.stats().cache_misses_recorded.load(), 0u);
}

TEST(CacheBehavior, WithoutCacheNoStatsAccumulate) {
  Config cfg = stats_config();
  cfg.use_cache = false;
  Trie trie{cfg};
  const auto keys = cachetrie::harness::random_keys(200000);
  for (auto k : keys) trie.insert(k, k);
  for (auto k : keys) (void)trie.lookup(k);
  EXPECT_EQ(trie.cache_level(), -1);
  EXPECT_EQ(trie.stats().cache_fast_hits.load(), 0u);
  EXPECT_EQ(trie.stats().cache_installs.load(), 0u);
}

TEST(CacheBehavior, PinnedCacheLevelStaysPinned) {
  Config cfg = stats_config();
  cfg.cache_init_level = 12;
  cfg.min_cache_level = 12;
  cfg.max_cache_level = 12;
  Trie trie{cfg};
  const auto keys = cachetrie::harness::random_keys(1000000);
  for (auto k : keys) trie.insert(k, k);
  for (int round = 0; round < 3; ++round) {
    for (auto k : keys) (void)trie.lookup(k);
  }
  EXPECT_EQ(trie.cache_level(), 12);
  // Lookups remain exact even at a suboptimal pinned level.
  for (std::size_t i = 0; i < keys.size(); i += 1000) {
    ASSERT_EQ(trie.lookup(keys[i]).value(), keys[i]);
  }
}

}  // namespace
