// eviction_lin_test.cpp — linearizability of the bounded-memory cache mode.
//
// Two hazards distinguish the bounded mode from the plain trie:
//   1. evict() is a remove that runs through the eviction bookkeeping — it
//      must linearize exactly like remove() when raced against every other
//      operation (evict-racing-remove, evict-racing-upsert, ...).
//   2. Lazy corpse eviction fires *inside other operations' traversals*
//      (try_evict_snode: the same two-CAS announce/commit the remove path
//      uses). A protocol bug there would corrupt neighbouring live pairs.
//
// A spontaneous eviction of a checker-visible key would be an unrecorded
// remove — the checker would (rightly) reject the history, but that tells
// us nothing. So the sweeps are split:
//   * EvictApiRacesUserOps keeps horizons inert (huge TTL, no ceiling) and
//     drives eviction through explicit evict(k) calls, recorded as removes.
//   * CorpseEvictionUnderneathLiveKeys plants TTL-expired "ballast" pairs
//     in a disjoint key range before each history (via the injectable
//     clock), so the real lazy-eviction CAS path fires constantly beneath
//     the checker's keys while the recorded history stays closed: ballast
//     keys are never operated on, checker keys never expire.
//
// Compiled with CACHETRIE_TESTKIT=1, labeled `bounded`. The per-seed
// history count honours CACHETRIE_BOUNDED_LIN_HISTORIES (check.sh shrinks
// it under tsan); the default 8 seeds x 1250 histories meet the >= 10k
// acceptance bar.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>

#include "cachetrie/evict.hpp"
#include "testkit/chaos.hpp"
#include "testkit/driver.hpp"

namespace tk = cachetrie::testkit;

static_assert(tk::kChaosCompiled,
              "eviction_lin_test must build with CACHETRIE_TESTKIT=1");

namespace {

constexpr std::uint64_t kSeeds = 8;

std::uint32_t histories_per_seed() {
  if (const char* s = std::getenv("CACHETRIE_BOUNDED_LIN_HISTORIES")) {
    const unsigned long v = std::strtoul(s, nullptr, 10);
    if (v != 0) return static_cast<std::uint32_t>(v);
  }
  return 1250;  // 8 seeds x 1250 = 10k histories
}

// Injectable clock shared by every trie in this file: histories run at a
// frozen `now`, so horizons are deterministic and checker keys (stamped
// `now` on insert) can never expire mid-history.
std::atomic<std::uint64_t> g_clock{0};
std::uint64_t test_clock() { return g_clock.load(std::memory_order_relaxed); }

constexpr std::uint64_t kTtl = 1000;
constexpr std::uint64_t kNow = 1u << 20;  // ttl_floor = kNow - kTtl
constexpr std::uint64_t kBallastBase = 1u << 16;  // disjoint from checker keys

std::atomic<std::uint64_t> g_evict_successes{0};
std::atomic<std::uint64_t> g_ttl_expiries{0};

/// Adapter over the BoundedCacheTrie facade. remove() alternates (per
/// thread) between user remove(k) and forced evict(k): both are
/// linearizable removes, so the checker treats them identically — any
/// divergence in the eviction path's linearization shows up as a violation.
class BoundedTrieAdapter {
 public:
  using Map = cachetrie::evict::BoundedCacheTrie<std::uint64_t, std::uint64_t>;

  static constexpr bool kHasPutIfAbsent = true;
  static constexpr bool kHasReplace = true;
  static constexpr bool kHasReplaceIfEquals = true;
  static constexpr bool kHasRemoveIfEquals = true;

  explicit BoundedTrieAdapter(cachetrie::evict::BoundedConfig cfg,
                              bool plant_ballast)
      : map_(cfg) {
    if (plant_ballast) {
      // Stamp the ballast at tick 1, then jump the clock: every ballast
      // pair is a corpse for the whole history, every checker key is live.
      g_clock.store(1, std::memory_order_relaxed);
      for (std::uint64_t i = 0; i < 16; ++i) {
        map_.insert(kBallastBase + i, i);
      }
    }
    g_clock.store(kNow, std::memory_order_relaxed);
  }

  ~BoundedTrieAdapter() {
    const auto c = map_.eviction_counts();
    g_evict_successes.fetch_add(c.lru_evictions, std::memory_order_relaxed);
    g_ttl_expiries.fetch_add(c.ttl_expiries, std::memory_order_relaxed);
  }

  bool insert(std::uint64_t k, std::uint64_t v) { return map_.insert(k, v); }
  bool put_if_absent(std::uint64_t k, std::uint64_t v) {
    return map_.put_if_absent(k, v);
  }
  bool replace(std::uint64_t k, std::uint64_t v) { return map_.replace(k, v); }
  bool replace_if_equals(std::uint64_t k, std::uint64_t expected,
                         std::uint64_t v) {
    return map_.replace_if_equals(k, expected, v);
  }
  std::optional<std::uint64_t> lookup(std::uint64_t k) const {
    return map_.lookup(k);
  }
  std::optional<std::uint64_t> remove(std::uint64_t k) {
    thread_local std::uint64_t flip = 0;
    return (++flip & 1) != 0 ? map_.evict(k) : map_.remove(k);
  }
  bool remove_if_equals(std::uint64_t k, std::uint64_t expected) {
    return map_.remove_if_equals(k, expected);
  }

 private:
  Map map_;
};

template <typename Factory>
void sweep(Factory&& make, const char* what) {
  tk::DriverConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 12;
  cfg.key_range = 6;
  cfg.histories = histories_per_seed();
  std::uint64_t total = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    cfg.seed = seed;
    auto result = tk::run_histories(make, cfg);
    ASSERT_FALSE(result.violation.has_value())
        << what << " produced a non-linearizable history\n"
        << result.trace;
    total += result.histories_checked;
  }
  EXPECT_GE(total, kSeeds * histories_per_seed()) << what;
}

cachetrie::evict::BoundedConfig inert_bounded_config() {
  cachetrie::evict::BoundedConfig cfg;
  // Bounded mode active (stamps written, horizons computed) but inert: the
  // TTL is astronomically larger than any tick the sweep reaches, and no
  // ceiling means no backpressure — nothing ever expires spontaneously.
  cfg.ttl_ticks = 1ull << 40;
  cfg.ceiling_bytes = 0;
  cfg.tick = &test_clock;
  return cfg;
}

TEST(EvictionLinSweep, EvictApiRacesUserOps) {
  tk::chaos::reset_counters();
  g_evict_successes.store(0, std::memory_order_relaxed);
  sweep(
      [] {
        return std::make_unique<BoundedTrieAdapter>(inert_bounded_config(),
                                                    /*plant_ballast=*/false);
      },
      "bounded cache-trie (evict vs user ops)");
  // The alternation actually exercised the eviction-counted remove path
  // and the perturbation reached the txn decision windows.
  EXPECT_GT(g_evict_successes.load(std::memory_order_relaxed), 0u);
  EXPECT_GT(tk::chaos::site_hits("cachetrie.txn_announce"), 0u);
  EXPECT_GT(tk::chaos::totals().yields, 0u);
}

TEST(EvictionLinSweep, CorpseEvictionUnderneathLiveKeys) {
  cachetrie::evict::BoundedConfig cfg;
  cfg.ttl_ticks = kTtl;
  cfg.ceiling_bytes = 0;
  cfg.tick = &test_clock;
  tk::chaos::reset_counters();
  g_ttl_expiries.store(0, std::memory_order_relaxed);
  sweep(
      [cfg] {
        return std::make_unique<BoundedTrieAdapter>(cfg,
                                                    /*plant_ballast=*/true);
      },
      "bounded cache-trie (ballast corpses)");
  // The lazy-eviction CAS path (announce on the corpse's txn word) really
  // fired under perturbation, and corpses were counted as TTL expiries.
  EXPECT_GT(tk::chaos::site_hits("cachetrie.evict_announce"), 0u);
  EXPECT_GT(g_ttl_expiries.load(std::memory_order_relaxed), 0u);
}

TEST(EvictionLinSweep, BoundedChmInertHorizons) {
  // The baseline wrapper re-routes every operation (lookup_refresh, stamp
  // threading, remove mirrors); this sweep proves the re-routing preserved
  // the chm's linearizability. Horizons inert for the same reason as above.
  using A = tk::MapAdapter<
      cachetrie::evict::BoundedChm<std::uint64_t, std::uint64_t>>;
  cachetrie::evict::BoundedConfig cfg;
  cfg.ttl_ticks = 1ull << 40;
  cfg.ceiling_bytes = 0;
  tk::chaos::reset_counters();
  sweep([cfg] { return std::make_unique<A>(cfg); },
        "bounded chashmap (inert horizons)");
  EXPECT_GT(tk::chaos::site_hits("chm.bin_locked"), 0u);
}

}  // namespace
