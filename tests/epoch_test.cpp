// epoch_test.cpp — unit and stress tests for epoch-based reclamation.
//
// Note: EpochDomain is a process-wide singleton, so tests share it; each
// test only asserts deltas of the retired/freed counters it caused, or
// properties that hold regardless of other tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "mr/epoch.hpp"
#include "mr/leak.hpp"

namespace {

using cachetrie::mr::EpochDomain;
using cachetrie::mr::EpochReclaimer;

struct Tracked {
  static inline std::atomic<int> live{0};
  Tracked() { live.fetch_add(1, std::memory_order_relaxed); }
  ~Tracked() { live.fetch_sub(1, std::memory_order_relaxed); }
};

TEST(Epoch, GuardPinAndUnpin) {
  auto& dom = EpochDomain::instance();
  {
    auto g = dom.pin();
    // Nested pins are allowed and counted.
    auto g2 = dom.pin();
  }
  SUCCEED();
}

TEST(Epoch, RetireEventuallyFrees) {
  auto& dom = EpochDomain::instance();
  Tracked::live.store(0);
  {
    auto g = dom.pin();
    for (int i = 0; i < 1000; ++i) dom.retire(new Tracked());
  }
  EXPECT_EQ(Tracked::live.load(), 1000);  // nothing freed while possibly held
  // Force advances from a quiescent state; everything must drain.
  for (int i = 0; i < 10 && Tracked::live.load() != 0; ++i) {
    auto g = dom.pin();
    dom.try_advance();
  }
  dom.drain_for_testing();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Epoch, PinnedReaderBlocksAdvance) {
  auto& dom = EpochDomain::instance();
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    auto g = dom.pin();
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  const std::uint64_t e0 = dom.epoch();
  {
    auto g = dom.pin();
    // The reader pinned epoch e0; after one possible advance the reader's
    // epoch goes stale and further advances must fail.
    dom.try_advance();
    const std::uint64_t e1 = dom.epoch();
    EXPECT_LE(e1, e0 + 1);
    EXPECT_FALSE(dom.try_advance());
    EXPECT_EQ(dom.epoch(), e1);
  }
  release.store(true);
  reader.join();
  {
    auto g = dom.pin();
    EXPECT_TRUE(dom.try_advance());
  }
}

TEST(Epoch, GracePeriodProtectsReaders) {
  // A reader that pinned before retirement must never observe a freed node.
  // We model this with a shared atomic pointer that the writer swaps and
  // retires while readers dereference under guards.
  auto& dom = EpochDomain::instance();
  struct Box {
    std::atomic<std::uint64_t> canary{0xDEADBEEFCAFEBABEULL};
  };
  std::atomic<Box*> shared{new Box()};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto g = dom.pin();
        Box* b = shared.load(std::memory_order_acquire);
        if (b->canary.load(std::memory_order_relaxed) !=
            0xDEADBEEFCAFEBABEULL) {
          bad_reads.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      auto g = dom.pin();
      Box* fresh = new Box();
      Box* old = shared.exchange(fresh, std::memory_order_acq_rel);
      // Poison on destruction so a use-after-free trips the canary (best
      // effort; ASan builds catch it outright).
      old->canary.store(0, std::memory_order_relaxed);  // logically dead
      old->canary.store(0xDEADBEEFCAFEBABEULL, std::memory_order_relaxed);
      dom.retire(old);
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  {
    auto g = dom.pin();
    delete shared.load();
  }
  dom.drain_for_testing();
}

TEST(Epoch, ManyThreadsRetireConcurrently) {
  auto& dom = EpochDomain::instance();
  Tracked::live.store(0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto g = dom.pin();
        dom.retire(new Tracked());
      }
    });
  }
  for (auto& t : threads) t.join();
  dom.drain_for_testing();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Epoch, RetiredAndFreedCountersAdvance) {
  auto& dom = EpochDomain::instance();
  const auto retired0 = dom.retired_count();
  {
    auto g = dom.pin();
    for (int i = 0; i < 100; ++i) dom.retire(new Tracked());
  }
  EXPECT_EQ(dom.retired_count(), retired0 + 100);
  dom.drain_for_testing();
  EXPECT_GE(dom.freed_count() + 0, 100u);
}

TEST(Epoch, ThreadRecordsAreRecycled) {
  // Spawning many short-lived threads must not grow the registry without
  // bound (records are reused after thread exit). Indirectly verified:
  // retirements from dead threads still drain.
  auto& dom = EpochDomain::instance();
  Tracked::live.store(0);
  for (int round = 0; round < 50; ++round) {
    std::thread t([&] {
      auto g = dom.pin();
      dom.retire(new Tracked());
    });
    t.join();
  }
  dom.drain_for_testing();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Epoch, OrphanedLimboFreedBySurvivors) {
  // A thread that exits with a non-empty limbo orphans its items; surviving
  // threads must free them through ordinary advances — no drain_for_testing,
  // which a real deployment never calls.
  auto& dom = EpochDomain::instance();
  dom.drain_for_testing();  // start from an empty limbo
  Tracked::live.store(0);
  std::thread t([&] {
    auto g = dom.pin();
    for (int i = 0; i < 100; ++i) dom.retire(new Tracked());
  });
  t.join();  // records orphaned on thread exit
  for (int i = 0; i < 10 && Tracked::live.load() != 0; ++i) {
    auto g = dom.pin();
    dom.try_advance();  // successful advances collect orphans
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Epoch, ByteAccountingTracksLimbo) {
  auto& dom = EpochDomain::instance();
  dom.drain_for_testing();
  const std::size_t bytes0 = dom.retired_bytes();
  const std::size_t hwm0 = dom.retired_bytes_high_water();
  constexpr std::size_t kEach = 512;
  constexpr int kCount = 32;
  {
    auto g = dom.pin();
    for (int i = 0; i < kCount; ++i) {
      dom.retire(static_cast<void*>(new Tracked()),
                 &cachetrie::mr::delete_as<Tracked>, kEach);
    }
    EXPECT_GE(dom.retired_bytes(), bytes0 + kEach * kCount);
  }
  EXPECT_GE(dom.retired_bytes_high_water(), hwm0);
  EXPECT_GE(dom.retired_bytes_high_water(), kEach * kCount);
  dom.drain_for_testing();
  // Every byte accounted in must be accounted back out when freed.
  EXPECT_LE(dom.retired_bytes(), bytes0);
}

TEST(Epoch, StalledReaderFallbackKeepsGarbageBounded) {
  // One reader parks forever inside a guard — classic EBR would pin the
  // epoch and let limbo grow for as long as the churn lasts. With a byte
  // cap and the stall fallback, the reader must get declared stalled, the
  // epoch must move past it, and limbo bytes must stay near the cap.
  auto& dom = EpochDomain::instance();
  dom.drain_for_testing();
  Tracked::live.store(0);

  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread victim([&] {
    auto g = dom.pin();
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // Benign model violation: the "stalled" reader wakes and exits its
    // guard without touching shared memory. Counted, not crashed.
  });
  while (!pinned.load(std::memory_order_acquire)) std::this_thread::yield();

  constexpr std::size_t kCap = 64 * 1024;
  constexpr std::size_t kEach = 64;
  dom.set_limbo_cap_bytes(kCap);
  dom.set_stall_lag_epochs(4);
  const std::uint64_t scans0 = dom.fallback_scans();
  const std::uint64_t stalled0 = dom.stalled_records();
  const std::uint64_t exits0 = dom.stalled_guard_exits();
  const std::uint64_t epoch0 = dom.epoch();

  std::size_t max_seen = 0;
  for (int i = 0; i < 5000; ++i) {
    auto g = dom.pin();
    dom.retire(static_cast<void*>(new Tracked()),
               &cachetrie::mr::delete_as<Tracked>, kEach);
    max_seen = std::max(max_seen, dom.retired_bytes());
  }

  // The fallback ran, declared the victim, and the epoch moved past it.
  EXPECT_GT(dom.fallback_scans(), scans0);
  EXPECT_EQ(dom.stalled_records(), stalled0 + 1);
  EXPECT_GE(dom.epoch(), epoch0 + 2);
  // Bounded garbage: the brief overshoot is the handful of retirements it
  // takes the fallback to declare the victim, not the whole churn.
  EXPECT_LT(max_seen, kCap + 8 * 1024);

  release.store(true, std::memory_order_release);
  victim.join();
  // The benign resume above is the one permitted declared-reader exit.
  EXPECT_EQ(dom.stalled_guard_exits(), exits0 + 1);
  EXPECT_EQ(dom.stalled_records(), stalled0);

  dom.set_limbo_cap_bytes(EpochDomain::kNoLimboCap);
  dom.set_stall_lag_epochs(EpochDomain::kDefaultStallLagEpochs);
  dom.drain_for_testing();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(LeakReclaimer, CountsButNeverFrees) {
  using cachetrie::mr::LeakReclaimer;
  Tracked::live.store(0);
  const auto leaked0 = LeakReclaimer::leaked_count();
  auto* t1 = new Tracked();
  auto* t2 = new Tracked();
  {
    [[maybe_unused]] auto g = LeakReclaimer::pin();
    LeakReclaimer::retire(t1);
    LeakReclaimer::retire(t2);
  }
  EXPECT_EQ(LeakReclaimer::leaked_count(), leaked0 + 2);
  EXPECT_EQ(Tracked::live.load(), 2);  // still alive: never freed
  delete t1;                            // manual cleanup for the test
  delete t2;
}

}  // namespace
