// trace_smoke_test.cpp — the PR's acceptance scenario for the flight
// recorder: replay the stalled-reader fault seed from
// stalled_reclaimer_test (seed 7, victim killed while pinned inside a
// CacheTrie insert, churners driving limbo over a 2 MiB cap) with tracing
// enabled, then assert the drained timeline shows the protocol story —
// fault park, stall-declare, and an epoch advance *after* the declaration —
// and that the exported Chrome-trace JSON (the file EXPERIMENTS.md says to
// load into Perfetto) round-trips with those events in it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "mr/epoch.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "testkit/chaos.hpp"
#include "testkit/fault.hpp"

namespace {

namespace tk = cachetrie::testkit;
namespace fault = cachetrie::testkit::fault;
namespace trace = cachetrie::obs::trace;
using cachetrie::mr::EpochDomain;
using trace::EventId;
using namespace std::chrono_literals;

using Trie = cachetrie::CacheTrie<std::uint64_t, std::uint64_t>;

TEST(TraceSmoke, StalledReaderTimelineShowsDeclareThenEpochAdvance) {
  if (!trace::kTraceCompiled) {
    GTEST_SKIP() << "tracing compiled out (CACHETRIE_TRACE=0)";
  }
  auto& dom = EpochDomain::instance();
  dom.drain_for_testing();

  // Churners emit ~one event per operation (txn commits), so the window
  // between the stall declaration and the stop flag must fit in the ring
  // or the declare event scrolls away. 128k slots per ring plus a tight
  // post-declare window keeps it with a wide margin.
  trace::registry().set_ring_capacity_for_testing(1u << 17);
  trace::registry().reset_for_testing();
  trace::enable(true);

  constexpr std::size_t kCap = 2u << 20;  // 2 MiB, as in stalled_reclaimer
  dom.set_limbo_cap_bytes(kCap);
  dom.set_stall_lag_epochs(8);
  const std::uint64_t stalled0 = dom.stalled_records();

  tk::chaos::set_global_seed(7);
  tk::chaos::enable(true);
  fault::install(fault::Plan(7).die("cachetrie.pinned", /*thread=*/0));

  Trie trie;
  std::atomic<bool> stop{false};
  std::atomic<bool> victim_killed{false};

  std::thread victim([&] {
    tk::chaos::bind_thread(0);
    try {
      trie.insert(0xdead0001, 1);
      ADD_FAILURE() << "victim completed its op instead of dying";
    } catch (const fault::ThreadKilled&) {
      victim_killed.store(true, std::memory_order_release);
    }
  });

  std::vector<std::thread> churners;
  for (std::uint64_t t = 1; t <= 2; ++t) {
    churners.emplace_back([&, t] {
      tk::chaos::bind_thread(t);
      std::uint64_t k = t * 100000;
      while (!stop.load(std::memory_order_acquire)) {
        trie.insert(k, k);
        trie.remove(k);
        k = t * 100000 + (k + 1) % 4096;
      }
    });
  }

  const auto park_deadline = std::chrono::steady_clock::now() + 10s;
  while (fault::parked_now() == 0 &&
         std::chrono::steady_clock::now() < park_deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(fault::parked_now(), 1u) << "victim never reached the site";

  // Churn until the over-cap sweep actually declares the dead reader
  // stalled — the event the timeline is about.
  const auto stall_deadline = std::chrono::steady_clock::now() + 60s;
  while (dom.stalled_records() == stalled0 &&
         std::chrono::steady_clock::now() < stall_deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_GT(dom.stalled_records(), stalled0)
      << "the fallback sweep never declared the victim stalled";

  // Keep churning just long enough that epoch flips *after* the
  // declaration land in the rings (that advance past a dead reader is the
  // protocol's payoff) — but short enough that the flood of txn-commit
  // events cannot scroll the declaration itself out of its ring.
  std::this_thread::sleep_for(10ms);
  stop.store(true, std::memory_order_release);
  for (auto& c : churners) c.join();
  fault::clear();  // releases the victim; it unwinds via ThreadKilled
  victim.join();
  EXPECT_TRUE(victim_killed.load(std::memory_order_acquire));
  tk::chaos::enable(false);

  // --- timeline assertions on the drained events ---------------------------
  const auto events = trace::registry().drain();
  std::uint64_t park_ts = 0, declare_ts = 0, kill_ts = 0;
  bool flip_after_declare = false;
  std::uint64_t scan_begins = 0;
  for (const auto& ev : events) {
    switch (ev.id) {
      case EventId::kFaultPark:
        if (park_ts == 0) park_ts = ev.ts;
        break;
      case EventId::kMrStallDeclare:
        if (declare_ts == 0) declare_ts = ev.ts;
        break;
      case EventId::kMrFallbackScanBegin:
        ++scan_begins;
        break;
      case EventId::kMrEpochFlip:
        if (declare_ts != 0 && ev.ts >= declare_ts) {
          flip_after_declare = true;
        }
        break;
      case EventId::kFaultKill:
        kill_ts = ev.ts;
        break;
      default:
        break;
    }
  }
  ASSERT_NE(declare_ts, 0u) << "no mr.epoch.stall_declare event recorded";
  EXPECT_GT(scan_begins, 0u) << "no fallback scan span recorded";
  EXPECT_TRUE(flip_after_declare)
      << "no epoch flip after the stall declaration — the domain never "
         "advanced past the dead reader";
  if (park_ts != 0) {  // park may scroll out of a busy ring; order if kept
    EXPECT_LE(park_ts, declare_ts);
  }
  EXPECT_NE(kill_ts, 0u) << "victim unwind left no testkit.fault.kill";

  // --- exported artifact (the Perfetto-loadable file) ----------------------
  // Honor an externally-set CACHETRIE_TRACE_OUT (check.sh points it into
  // the build tree so the summarizer smoke can digest this very dump).
  const char* preset = std::getenv("CACHETRIE_TRACE_OUT");
  const std::string dir = preset != nullptr ? preset : ::testing::TempDir();
  if (preset == nullptr) {
    ASSERT_EQ(setenv("CACHETRIE_TRACE_OUT", dir.c_str(), 1), 0);
  }
  const std::string path = trace::dump_to_file("stalled_reader");
  if (preset == nullptr) unsetenv("CACHETRIE_TRACE_OUT");
  ASSERT_FALSE(path.empty());

  std::ifstream is{path};
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string out = ss.str();
  std::int64_t braces = 0, brackets = 0;
  for (char ch : out) {
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(out.find("\"schema\":\"cachetrie-trace-v1\""), std::string::npos);
  EXPECT_NE(out.find("mr.epoch.stall_declare"), std::string::npos);
  EXPECT_NE(out.find("mr.epoch.flip"), std::string::npos);
  EXPECT_NE(out.find("mr.epoch.fallback_scan"), std::string::npos);
  EXPECT_NE(out.find("testkit.fault.kill"), std::string::npos);

  // --- restore ------------------------------------------------------------
  trace::enable(false);
  trace::registry().set_ring_capacity_for_testing(4096);
  trace::registry().reset_for_testing();
  dom.set_limbo_cap_bytes(EpochDomain::kNoLimboCap);
  dom.set_stall_lag_epochs(EpochDomain::kDefaultStallLagEpochs);
}

}  // namespace
