// hazard_test.cpp — unit and stress tests for hazard-pointer reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mr/hazard.hpp"

namespace {

using cachetrie::mr::HazardDomain;

struct Tracked {
  static inline std::atomic<int> live{0};
  std::uint64_t canary = 0xABCDEF0123456789ULL;
  Tracked() { live.fetch_add(1, std::memory_order_relaxed); }
  ~Tracked() { live.fetch_sub(1, std::memory_order_relaxed); }
};

TEST(Hazard, ProtectReturnsCurrentPointer) {
  auto& dom = HazardDomain::instance();
  std::atomic<Tracked*> shared{new Tracked()};
  {
    auto hp = dom.make_hazard();
    Tracked* p = hp.protect(shared);
    EXPECT_EQ(p, shared.load());
    EXPECT_EQ(p->canary, 0xABCDEF0123456789ULL);
  }
  delete shared.load();
}

TEST(Hazard, ProtectedNodeSurvivesScan) {
  auto& dom = HazardDomain::instance();
  Tracked::live.store(0);
  auto* node = new Tracked();
  std::atomic<Tracked*> shared{node};
  auto hp = dom.make_hazard();
  Tracked* p = hp.protect(shared);
  ASSERT_EQ(p, node);
  dom.retire(node);
  dom.scan();
  // Still protected: must not have been freed.
  EXPECT_EQ(Tracked::live.load(), 1);
  EXPECT_EQ(p->canary, 0xABCDEF0123456789ULL);
  hp.reset();
  dom.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Hazard, UnprotectedNodesAreFreedOnScan) {
  auto& dom = HazardDomain::instance();
  Tracked::live.store(0);
  for (int i = 0; i < 100; ++i) dom.retire(new Tracked());
  dom.scan();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Hazard, SlotsAreLifoRecycled) {
  auto& dom = HazardDomain::instance();
  for (int round = 0; round < 100; ++round) {
    auto h1 = dom.make_hazard();
    auto h2 = dom.make_hazard();
    auto h3 = dom.make_hazard();
    // Destruction in reverse declaration order satisfies the LIFO rule.
  }
  SUCCEED();
}

TEST(Hazard, ConcurrentReadersNeverSeeFreedMemory) {
  auto& dom = HazardDomain::instance();
  std::atomic<Tracked*> shared{new Tracked()};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto hp = dom.make_hazard();
        Tracked* p = hp.protect(shared);
        if (p->canary != 0xABCDEF0123456789ULL) bad.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      Tracked* fresh = new Tracked();
      Tracked* old = shared.exchange(fresh, std::memory_order_acq_rel);
      dom.retire(old);
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u);
  delete shared.load();
  dom.drain_for_testing();
}

TEST(Hazard, DrainFreesEverythingWhenQuiescent) {
  auto& dom = HazardDomain::instance();
  Tracked::live.store(0);
  for (int i = 0; i < 300; ++i) dom.retire(new Tracked());
  dom.drain_for_testing();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Hazard, RetirementsFromExitedThreadsDrain) {
  auto& dom = HazardDomain::instance();
  Tracked::live.store(0);
  for (int round = 0; round < 20; ++round) {
    std::thread t([&] { dom.retire(new Tracked()); });
    t.join();
  }
  dom.drain_for_testing();
  EXPECT_EQ(Tracked::live.load(), 0);
}

}  // namespace
