// net_fault_test.cpp — connection-fault battery for the serving layer
// (ctest label `net`, RUN_SERIAL, plain + tsan).
//
// Each scenario drives one robustness path deterministically by parking or
// killing the shard thread at a net.* chaos site and controlling what is in
// the kernel socket buffers when it resumes:
//   * deadline: requests buffered behind a stalled shard are already past
//     their send-time budget when parsed, so every one draws
//     kDeadlineExceeded — none executes;
//   * shed: a post-stall flood exceeds max_inflight in one parse batch, so
//     exactly max_inflight requests execute and the rest draw kShed;
//   * die-mid-request: the fault engine kills a shard between admission and
//     map execution; the lock-free maps stay valid (debug_validate), the
//     surviving shard keeps serving under a progress watchdog, and the
//     server drains cleanly around the corpse — the ISSUE's acceptance
//     scenario;
//   * stalled reader: a shard killed while pinned inside a map operation is
//     declared stalled by the PR-2 epoch fallback once limbo crosses the
//     cap, instead of unbounding memory;
//   * backpressure: a client that never reads accumulates replies to the
//     write-buffer cap and is disconnected; resident reply bytes never
//     exceed cap + one frame;
//   * drain: requests arriving after stop() draw kShed|kFlagDraining, then
//     the connection closes — the drain handshake refuses work, it does
//     not drop it silently;
//   * overload: 2x open-loop burst pressure with a 25% slow-client mix
//     sheds rather than queues — accepted-request p99 stays within 5x the
//     unloaded p99 (floored against scheduler noise on the 1-core CI box).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "cachetrie/evict.hpp"
#include "mr/epoch.hpp"
#include "net/client.hpp"
#include "net/proto.hpp"
#include "net/reactor.hpp"
#include "testkit/chaos.hpp"
#include "testkit/fault.hpp"
#include "testkit/watchdog.hpp"

namespace {

namespace tk = cachetrie::testkit;
namespace fault = cachetrie::testkit::fault;
namespace net = cachetrie::net;
namespace proto = cachetrie::net::proto;
using cachetrie::mr::EpochDomain;
using namespace std::chrono_literals;

using BoundedTrie =
    cachetrie::evict::BoundedCacheTrie<std::uint64_t, std::uint64_t>;

// Chaos stream ids (reactor.hpp): acceptor = kChaosBase, shard i = base+1+i.
constexpr std::uint64_t kChaosBase = 100;
constexpr std::uint64_t kShard0 = kChaosBase + 1;

net::ServerConfig one_shard_config() {
  net::ServerConfig cfg;
  cfg.shards = 1;
  cfg.chaos_thread_base = kChaosBase;
  return cfg;
}

struct ChaosSession {
  explicit ChaosSession(std::uint64_t seed) {
    tk::chaos::set_global_seed(seed);
    tk::chaos::enable(true);
  }
  ~ChaosSession() {
    fault::clear();
    tk::chaos::enable(false);
  }
};

void wait_parked(std::uint64_t n) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (fault::parked_now() < n &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_GE(fault::parked_now(), n) << "victim never reached the site";
}

// Requests buffered behind a stalled shard expire against their send-time
// budget: the stall is charged to the requests, not hidden from them.
TEST(NetFault, DeadlineExpiredDeterministicallyBehindStall) {
  ChaosSession chaos{41};
  fault::install(fault::Plan(41).stall("net.request_execute", 700ms,
                                       /*thread=*/kShard0));

  BoundedTrie map{{}};
  net::Server<BoundedTrie> server{map, one_shard_config()};
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.start());

  net::ClientConfig ccfg;
  ccfg.op_timeout_us = 15'000'000;
  net::Client client{server.port(), ccfg};
  ASSERT_TRUE(client.ok());

  // Trips the stall at its execution chaos point.
  std::uint64_t trigger_id = 0;
  ASSERT_TRUE(client.send(proto::Op::kPing, 0, 1, &trigger_id, 0));
  wait_parked(1);

  // Sent while the shard is parked, with a 50 ms budget from send time —
  // by resume (>= ~650 ms later) every budget is long gone.
  std::uint64_t ids[3] = {};
  for (auto& id : ids) {
    ASSERT_TRUE(client.send(proto::Op::kPut, 99, 1, &id, 50'000));
  }

  EXPECT_EQ(client.wait(trigger_id).status, proto::Status::kOk);
  for (const auto id : ids) {
    const auto r = client.wait(id);
    EXPECT_EQ(r.status, proto::Status::kDeadlineExceeded)
        << proto::status_name(r.status);
  }
  // kDeadlineExceeded means NOT executed: the put never landed.
  EXPECT_FALSE(map.lookup(99).has_value());

  client.close();
  server.stop();
  const auto totals = server.totals();
  EXPECT_EQ(totals.deadline_expired, 3u);
  EXPECT_EQ(totals.served, 1u);
  EXPECT_EQ(server.killed_shards(), 0u);
  EXPECT_TRUE(map.underlying().debug_validate().empty());
}

// A post-stall flood is parsed in one batch: exactly max_inflight requests
// are admitted, the remainder is shed at admission — the queue cannot grow
// past the cap no matter how much the kernel buffered.
TEST(NetFault, ShedsDeterministicallyPastInflightCap) {
  ChaosSession chaos{42};
  fault::install(fault::Plan(42).stall("net.request_execute", 500ms,
                                       /*thread=*/kShard0));

  BoundedTrie map{{}};
  auto scfg = one_shard_config();
  scfg.shard.max_inflight = 4;
  net::Server<BoundedTrie> server{map, scfg};
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.start());

  net::ClientConfig ccfg;
  ccfg.op_timeout_us = 15'000'000;
  net::Client client{server.port(), ccfg};
  ASSERT_TRUE(client.ok());

  std::uint64_t trigger_id = 0;
  ASSERT_TRUE(client.send(proto::Op::kPing, 0, 1, &trigger_id, 0));
  wait_parked(1);

  constexpr std::size_t kFlood = 12;
  std::uint64_t ids[kFlood] = {};
  for (auto& id : ids) {
    ASSERT_TRUE(client.send(proto::Op::kPing, 0, 2, &id, 0));
  }

  EXPECT_EQ(client.wait(trigger_id).status, proto::Status::kOk);
  std::size_t ok = 0, shed = 0;
  for (const auto id : ids) {
    const auto r = client.wait(id);
    if (r.status == proto::Status::kOk) ++ok;
    if (r.status == proto::Status::kShed) ++shed;
  }
  EXPECT_EQ(ok, 4u);     // exactly max_inflight admitted
  EXPECT_EQ(shed, 8u);   // the rest refused, not queued

  // The sync API retries sheds with jittered backoff; with the storm over
  // it must land.
  EXPECT_TRUE(client.ping(3).ok());

  client.close();
  server.stop();
  const auto totals = server.totals();
  EXPECT_EQ(totals.shed, 8u);
  EXPECT_LE(totals.queue_hwm, 4u);
  EXPECT_EQ(server.killed_shards(), 0u);
}

// The ISSUE's acceptance scenario: die mid-request. One shard is killed
// between admission and execution; the other keeps serving under a
// watchdog, the map validates clean, and the server drains around the
// corpse.
TEST(NetFault, DieMidRequestLeavesMapValidAndSurvivorsGreen) {
  ChaosSession chaos{43};
  fault::install(fault::Plan(43).die("net.request_execute",
                                     /*thread=*/kShard0));

  BoundedTrie map{{}};
  net::ServerConfig scfg;
  scfg.shards = 2;
  scfg.chaos_thread_base = kChaosBase;
  scfg.least_loaded = false;  // round-robin: conn 1 -> shard 0, conn 2 -> 1
  net::Server<BoundedTrie> server{map, scfg};
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.start());

  net::ClientConfig doomed_cfg;
  doomed_cfg.op_timeout_us = 400'000;  // its shard is about to die
  net::Client doomed{server.port(), doomed_cfg};
  ASSERT_TRUE(doomed.ok());
  net::Client survivor{server.port()};
  ASSERT_TRUE(survivor.ok());

  // Shard 0 parks executing this (a die() victim parks until released, then
  // unwinds via ThreadKilled). No reply ever comes.
  const auto dead = doomed.put(0xdead, 1);
  EXPECT_EQ(dead.status, proto::Status::kTimeout);
  wait_parked(1);
  fault::release_all();  // now the kill lands mid-request
  const auto death_deadline = std::chrono::steady_clock::now() + 10s;
  while (fault::injected_deaths() == 0 &&
         std::chrono::steady_clock::now() < death_deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(fault::injected_deaths(), 1u);

  // The surviving shard serves on, watched for per-tick progress.
  std::atomic<std::uint64_t> survivor_ops{0};
  tk::ProgressWatchdog watchdog(survivor_ops, 250ms);
  std::atomic<bool> stop_churn{false};
  std::thread churn([&] {
    std::uint64_t k = 0;
    while (!stop_churn.load(std::memory_order_acquire)) {
      if (survivor.put(1000 + (k % 256), k).ok()) {
        survivor_ops.fetch_add(1, std::memory_order_relaxed);
      }
      if (survivor.get(1000 + (k % 256)).ok()) {
        survivor_ops.fetch_add(1, std::memory_order_relaxed);
      }
      ++k;
    }
  });
  watchdog.start();
  std::this_thread::sleep_for(1200ms);
  watchdog.stop();
  stop_churn.store(true, std::memory_order_release);
  churn.join();

  EXPECT_GE(watchdog.ticks(), 3u);
  EXPECT_EQ(watchdog.violations(), 0u)
      << "survivor shard stopped making progress after the kill";
  EXPECT_GT(survivor_ops.load(), 0u);

  doomed.close();
  survivor.close();
  server.stop();
  EXPECT_EQ(server.killed_shards(), 1u);
  EXPECT_GT(server.totals().served, 0u);
  // The kill unwound through lock-free map code: structure still valid and
  // directly usable.
  EXPECT_TRUE(map.underlying().debug_validate().empty());
  EXPECT_TRUE(map.insert(0xbeef, 2));
  EXPECT_EQ(map.lookup(0xbeef).value_or(0), 2u);
}

// A shard killed while pinned inside a map operation is a stalled reader to
// the epoch domain: once limbo crosses the cap, the fallback scan declares
// it and reclamation proceeds — the PR-2 contract holds for connection-
// driven work, not just raw threads.
TEST(NetFault, KilledShardIsDeclaredStalledReader) {
  auto& dom = EpochDomain::instance();
  dom.drain_for_testing();
  dom.set_limbo_cap_bytes(2u << 20);
  dom.set_stall_lag_epochs(8);
  const std::uint64_t scans0 = dom.fallback_scans();
  const std::uint64_t stalled0 = dom.stalled_records();

  ChaosSession chaos{44};
  // Park-then-die at the trie's own pinned site, but only on the shard
  // thread: the shard is parked holding an EBR guard mid-request.
  fault::install(fault::Plan(44).die("cachetrie.pinned",
                                     /*thread=*/kShard0));

  BoundedTrie map{{}};
  net::Server<BoundedTrie> server{map, one_shard_config()};
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.start());

  net::ClientConfig ccfg;
  ccfg.op_timeout_us = 200'000;
  net::Client client{server.port(), ccfg};
  ASSERT_TRUE(client.ok());
  (void)client.put(1, 1);  // shard parks inside this op, guard pinned
  wait_parked(1);

  // Direct churn (not via net — the only shard is parked) drives limbo
  // over the cap and keeps the global epoch advancing past the parked
  // shard's pin. Declaration needs both: the first fallback scan engages
  // at the cap, and the stall verdict lands once the shard lags by
  // stall_lag_epochs — so churn continues until the record appears.
  std::uint64_t k = 1 << 20;
  const auto scan_deadline = std::chrono::steady_clock::now() + 30s;
  while (dom.fallback_scans() == scans0 &&
         std::chrono::steady_clock::now() < scan_deadline) {
    map.insert(k, k);
    map.remove(k);
    ++k;
  }
  ASSERT_GT(dom.fallback_scans(), scans0) << "limbo never crossed the cap";
  const auto stall_deadline = std::chrono::steady_clock::now() + 30s;
  while (dom.stalled_records() == stalled0 &&
         std::chrono::steady_clock::now() < stall_deadline) {
    map.insert(k, k);
    map.remove(k);
    ++k;
  }
  EXPECT_GE(dom.stalled_records(), stalled0 + 1)
      << "parked shard was not declared a stalled reader";

  fault::clear();  // releases the parked shard; it unwinds as killed
  client.close();
  server.stop();
  EXPECT_EQ(server.killed_shards(), 1u);
  EXPECT_TRUE(map.underlying().debug_validate().empty());

  dom.set_limbo_cap_bytes(EpochDomain::kNoLimboCap);
  dom.set_stall_lag_epochs(EpochDomain::kDefaultStallLagEpochs);
}

// A client that writes requests but never reads replies hits the
// write-buffer cap and is disconnected; buffered reply bytes stay bounded
// by cap + one frame.
TEST(NetFault, BackpressureCapsAndKillsNonReadingClient) {
  BoundedTrie map{{}};
  auto scfg = one_shard_config();
  scfg.shard.max_inflight = 4096;        // isolate backpressure from shed
  scfg.shard.max_queue_age_us = 1'000'000;
  scfg.shard.write_buf_cap = 16 * 1024;
  scfg.conn_sndbuf = 4096;               // small kernel buffers server-side
  net::Server<BoundedTrie> server{map, scfg};
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.start());

  // Raw non-reading client with a tiny receive window, so replies back up
  // into the shard's write buffer fast.
  net::Fd conn = net::connect_loopback(server.port(), 4096, 4096);
  ASSERT_TRUE(conn.valid());

  std::vector<unsigned char> wire;
  proto::RequestFrame req;
  req.op = static_cast<std::uint8_t>(proto::Op::kPing);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    req.request_id = i + 1;
    wire.clear();
    proto::append_frame(wire, req);
    if (!net::write_all(conn.get(), wire.data(), wire.size())) {
      break;  // server killed the connection mid-flood — expected
    }
  }

  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (server.totals().backpressure_kills == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  server.stop();

  const auto totals = server.totals();
  EXPECT_EQ(totals.backpressure_kills, 1u);
  EXPECT_GT(totals.wbuf_hwm_bytes, scfg.shard.write_buf_cap);
  EXPECT_LE(totals.wbuf_hwm_bytes,
            scfg.shard.write_buf_cap + proto::kReplyWire)
      << "resident reply bytes escaped the cap by more than one frame";
  EXPECT_EQ(totals.conns_adopted, totals.conns_closed);
}

// Requests that arrive once the drain has begun are refused with
// kShed|kFlagDraining — the shutdown handshake answers, then closes.
TEST(NetFault, DrainShedsLateRequestsWithDrainingFlag) {
  ChaosSession chaos{45};
  fault::install(fault::Plan(45).stall("net.drain", 400ms,
                                       /*thread=*/kShard0));

  BoundedTrie map{{}};
  auto scfg = one_shard_config();
  scfg.shard.drain_timeout_us = 2'000'000;
  net::Server<BoundedTrie> server{map, scfg};
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.start());

  net::ClientConfig ccfg;
  ccfg.op_timeout_us = 10'000'000;
  ccfg.max_retries = 0;  // a drain shed must surface, not retry
  net::Client client{server.port(), ccfg};
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.ping(1).ok());  // connection is live pre-drain

  std::thread stopper([&] { server.stop(); });
  wait_parked(1);  // shard parked at the net.drain chaos point

  // Lands in the kernel buffer while parked; parsed after resume, when the
  // shard is draining.
  std::uint64_t id = 0;
  ASSERT_TRUE(client.send(proto::Op::kPing, 0, 2, &id, 0));
  const auto r = client.wait(id);
  stopper.join();

  EXPECT_EQ(r.status, proto::Status::kShed) << proto::status_name(r.status);
  EXPECT_NE(r.flags & proto::kFlagDraining, 0u);
  for (std::size_t i = 0; i < server.shard_count(); ++i) {
    EXPECT_TRUE(server.shard(i).drained());
  }
  EXPECT_EQ(server.totals().conns_adopted, server.totals().conns_closed);
}

// The acceptance criterion: ~2x open-loop burst overload with a 25%
// slow-client mix sheds rather than queues. Accepted-request p99 stays
// within 5x the unloaded p99 (floored — on the 1-core CI box, scheduler
// quanta dwarf an unloaded loopback ping), reply bytes stay under the cap,
// and the map survives validation.
TEST(NetFault, OverloadShedsRatherThanQueues) {
  BoundedTrie map{{}};
  auto scfg = one_shard_config();
  scfg.shard.max_inflight = 64;
  scfg.shard.write_buf_cap = 64 * 1024;
  scfg.conn_sndbuf = 4096;
  net::Server<BoundedTrie> server{map, scfg};
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.start());

  const auto percentile = [](std::vector<std::uint64_t>& v, double p) {
    std::sort(v.begin(), v.end());
    return v[static_cast<std::size_t>(p * static_cast<double>(v.size() - 1))];
  };

  // Phase 1: unloaded p99 over sequential pings.
  std::vector<std::uint64_t> unloaded;
  {
    net::Client client{server.port()};
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t t0 = proto::now_us();
      ASSERT_TRUE(client.ping(i).ok());
      unloaded.push_back(proto::now_us() - t0);
    }
  }
  const std::uint64_t p99_unloaded = percentile(unloaded, 0.99);

  // Phase 2: 4 connections, 1 of them (25%) a slow client that never
  // reads; 3 normal clients fire pipelined bursts of 2x the admission cap.
  net::Fd slow = net::connect_loopback(server.port(), 4096, 4096);
  ASSERT_TRUE(slow.valid());
  std::thread slow_writer([&] {
    std::vector<unsigned char> wire;
    proto::RequestFrame req;
    req.op = static_cast<std::uint8_t>(proto::Op::kPing);
    for (std::uint64_t i = 0; i < 3000; ++i) {
      req.request_id = i + 1;
      wire.clear();
      proto::append_frame(wire, req);
      if (!net::write_all(slow.get(), wire.data(), wire.size())) break;
    }
  });

  const std::size_t kBurst = 2 * scfg.shard.max_inflight;  // the "2x"
  std::atomic<std::uint64_t> accepted{0}, shed{0}, other{0};
  std::vector<std::uint64_t> loaded;
  std::mutex loaded_mu;
  std::vector<std::thread> normals;
  for (int t = 0; t < 3; ++t) {
    normals.emplace_back([&, t] {
      net::ClientConfig ccfg;
      ccfg.op_timeout_us = 30'000'000;
      ccfg.seed = static_cast<std::uint64_t>(t) + 1;
      net::Client client{server.port(), ccfg};
      if (!client.ok()) return;
      std::vector<std::uint64_t> local;
      for (int burst = 0; burst < 5; ++burst) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> inflight;
        inflight.reserve(kBurst);
        for (std::size_t i = 0; i < kBurst; ++i) {
          std::uint64_t id = 0;
          if (client.send(proto::Op::kPut, (t << 16) + i, i, &id, 0)) {
            inflight.emplace_back(id, proto::now_us());
          }
        }
        for (const auto& [id, t0] : inflight) {
          const auto r = client.wait(id);
          if (r.status == proto::Status::kOk) {
            accepted.fetch_add(1);
            local.push_back(proto::now_us() - t0);
          } else if (r.status == proto::Status::kShed) {
            shed.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
        }
      }
      std::lock_guard<std::mutex> lk(loaded_mu);
      loaded.insert(loaded.end(), local.begin(), local.end());
    });
  }
  for (auto& n : normals) n.join();
  slow_writer.join();
  slow.reset();
  server.stop();

  const auto totals = server.totals();
  ASSERT_GT(loaded.size(), 100u);
  const std::uint64_t p99_loaded = percentile(loaded, 0.99);

  // Shed rather than queued: refusals happened, the queue never escaped
  // the admission cap, and reply bytes never escaped the write cap.
  EXPECT_GT(totals.shed, 0u);
  EXPECT_LE(totals.queue_hwm, scfg.shard.max_inflight);
  EXPECT_LE(totals.wbuf_hwm_bytes,
            scfg.shard.write_buf_cap + proto::kReplyWire);
  EXPECT_GE(totals.backpressure_kills, 1u);  // the slow client's fate
  EXPECT_EQ(other.load(), 0u);

  // Accepted-request tail: within 5x unloaded p99, floored at 5 ms against
  // 1-core scheduler noise (a single quantum is 4 ms).
  const std::uint64_t floor_us = 5'000;
  EXPECT_LE(p99_loaded, 5 * std::max(p99_unloaded, floor_us))
      << "p99 accepted " << p99_loaded << "us vs unloaded " << p99_unloaded
      << "us — the server queued instead of shedding";

  EXPECT_TRUE(map.underlying().debug_validate().empty());
}

}  // namespace
