// net_proto_test.cpp — serving-layer unit coverage that needs no fault
// engine: wire-format round trips and stream discipline (proto.hpp), the
// retry backoff curve (client.hpp), the op dispatch of the map adapter
// (serve_map.hpp), and one end-to-end loopback serve pass. The end-to-end
// test lives here, in the fast label, deliberately: check.sh runs `fast`
// under ASan while the `net` fault label is plain+tsan only (killed-victim
// tests leak by design), so this is the pass that sweeps the reactor,
// shard, and client under ASan.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cachetrie/evict.hpp"
#include "net/client.hpp"
#include "net/proto.hpp"
#include "net/reactor.hpp"
#include "net/serve_map.hpp"
#include "net/socket.hpp"

namespace {

namespace net = cachetrie::net;
namespace proto = cachetrie::net::proto;
using BoundedTrie = cachetrie::evict::BoundedCacheTrie<std::uint64_t,
                                                       std::uint64_t>;

TEST(NetProto, RequestRoundTrip) {
  proto::RequestFrame req;
  req.op = static_cast<std::uint8_t>(proto::Op::kPut);
  req.request_id = 42;
  req.key = 7;
  req.value = 99;
  req.send_ts_us = 123456;
  req.deadline_us = 5000;

  std::vector<unsigned char> wire;
  proto::append_frame(wire, req);
  ASSERT_EQ(wire.size(), proto::kRequestWire);

  proto::RequestFrame out;
  std::size_t consumed = 0;
  ASSERT_EQ(proto::parse_request(wire.data(), wire.size(), &out, &consumed),
            proto::ParseResult::kFrame);
  EXPECT_EQ(consumed, proto::kRequestWire);
  EXPECT_EQ(out.op, req.op);
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.key, 7u);
  EXPECT_EQ(out.value, 99u);
  EXPECT_EQ(out.send_ts_us, 123456u);
  EXPECT_EQ(out.deadline_us, 5000u);
}

TEST(NetProto, ReplyRoundTrip) {
  proto::ReplyFrame rep;
  rep.status = static_cast<std::uint8_t>(proto::Status::kShed);
  rep.flags = proto::kFlagDegraded | proto::kFlagDraining;
  rep.request_id = 17;
  rep.value = 3;
  rep.queue_us = 250;

  std::vector<unsigned char> wire;
  proto::append_frame(wire, rep);
  ASSERT_EQ(wire.size(), proto::kReplyWire);

  proto::ReplyFrame out;
  std::size_t consumed = 0;
  ASSERT_EQ(proto::parse_reply(wire.data(), wire.size(), &out, &consumed),
            proto::ParseResult::kFrame);
  EXPECT_EQ(static_cast<proto::Status>(out.status), proto::Status::kShed);
  EXPECT_EQ(out.flags, proto::kFlagDegraded | proto::kFlagDraining);
  EXPECT_EQ(out.request_id, 17u);
  EXPECT_EQ(out.queue_us, 250u);
}

TEST(NetProto, TruncatedStreamNeedsMore) {
  proto::RequestFrame req;
  std::vector<unsigned char> wire;
  proto::append_frame(wire, req);
  proto::RequestFrame out;
  std::size_t consumed = 0;
  // Every strict prefix of a frame parses as kNeedMore, never as an error.
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_EQ(proto::parse_request(wire.data(), n, &out, &consumed),
              proto::ParseResult::kNeedMore)
        << "prefix " << n;
  }
}

TEST(NetProto, TwoFramesParseBackToBack) {
  proto::RequestFrame a, b;
  a.request_id = 1;
  b.request_id = 2;
  std::vector<unsigned char> wire;
  proto::append_frame(wire, a);
  proto::append_frame(wire, b);

  proto::RequestFrame out;
  std::size_t consumed = 0;
  ASSERT_EQ(proto::parse_request(wire.data(), wire.size(), &out, &consumed),
            proto::ParseResult::kFrame);
  EXPECT_EQ(out.request_id, 1u);
  ASSERT_EQ(proto::parse_request(wire.data() + consumed,
                                 wire.size() - consumed, &out, &consumed),
            proto::ParseResult::kFrame);
  EXPECT_EQ(out.request_id, 2u);
}

TEST(NetProto, BadMagicAndBadLengthAreProtocolErrors) {
  proto::RequestFrame req;
  std::vector<unsigned char> wire;
  proto::append_frame(wire, req);

  auto corrupted = wire;
  corrupted[proto::kLenPrefix] ^= 0xff;  // first magic byte
  proto::RequestFrame out;
  std::size_t consumed = 0;
  EXPECT_EQ(proto::parse_request(corrupted.data(), corrupted.size(), &out,
                                 &consumed),
            proto::ParseResult::kProtocolError);

  auto huge = wire;
  huge[0] = 0xff;  // length prefix now absurd — must not buffer 4 GiB
  huge[3] = 0xff;
  EXPECT_EQ(proto::parse_request(huge.data(), huge.size(), &out, &consumed),
            proto::ParseResult::kProtocolError);
}

// ---- variable-length stats replies (the "CDP2" frame) -------------------

// Convenience: run the dual-kind stream parser over a buffer.
struct StreamParse {
  proto::ParseResult result = proto::ParseResult::kNeedMore;
  proto::ReplyFrame rep;
  proto::StatsReplyHeader stats;
  const unsigned char* payload = nullptr;
  bool is_stats = false;
  std::size_t consumed = 0;
};

StreamParse parse_stream(const unsigned char* data, std::size_t size) {
  StreamParse p;
  p.result = proto::parse_reply_stream(data, size, &p.rep, &p.stats,
                                       &p.payload, &p.is_stats, &p.consumed);
  return p;
}

TEST(NetProto, StatsReplyRoundTrip) {
  proto::StatsReplyHeader hdr;
  hdr.status = static_cast<std::uint8_t>(proto::Status::kOk);
  hdr.flags = proto::kFlagDegraded;
  hdr.request_id = 91;
  const std::string json = R"({"shard":0,"counters":{"a":1}})";

  std::vector<unsigned char> wire;
  proto::append_stats_frame(wire, hdr, json);
  ASSERT_EQ(wire.size(), proto::kLenPrefix + sizeof(proto::StatsReplyHeader) +
                             json.size());

  const auto p = parse_stream(wire.data(), wire.size());
  ASSERT_EQ(p.result, proto::ParseResult::kFrame);
  ASSERT_TRUE(p.is_stats);
  EXPECT_EQ(p.consumed, wire.size());
  EXPECT_EQ(static_cast<proto::Status>(p.stats.status), proto::Status::kOk);
  EXPECT_EQ(p.stats.flags, proto::kFlagDegraded);
  EXPECT_EQ(p.stats.request_id, 91u);
  ASSERT_EQ(p.stats.payload_len, json.size());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(p.payload),
                        p.stats.payload_len),
            json);
}

TEST(NetProto, ReplyStreamMixesFixedAndStatsFrames) {
  // Fixed reply, stats reply, fixed reply — back to back on one stream, the
  // way a pipelined connection interleaves them. Dispatch is by magic.
  proto::ReplyFrame a;
  a.request_id = 1;
  proto::StatsReplyHeader s;
  s.request_id = 2;
  const std::string json = "{}";
  proto::ReplyFrame b;
  b.request_id = 3;

  std::vector<unsigned char> wire;
  proto::append_frame(wire, a);
  proto::append_stats_frame(wire, s, json);
  proto::append_frame(wire, b);

  std::size_t off = 0;
  auto p = parse_stream(wire.data() + off, wire.size() - off);
  ASSERT_EQ(p.result, proto::ParseResult::kFrame);
  EXPECT_FALSE(p.is_stats);
  EXPECT_EQ(p.rep.request_id, 1u);
  off += p.consumed;

  p = parse_stream(wire.data() + off, wire.size() - off);
  ASSERT_EQ(p.result, proto::ParseResult::kFrame);
  ASSERT_TRUE(p.is_stats);
  EXPECT_EQ(p.stats.request_id, 2u);
  EXPECT_EQ(p.stats.payload_len, json.size());
  off += p.consumed;

  p = parse_stream(wire.data() + off, wire.size() - off);
  ASSERT_EQ(p.result, proto::ParseResult::kFrame);
  EXPECT_FALSE(p.is_stats);
  EXPECT_EQ(p.rep.request_id, 3u);
  off += p.consumed;
  EXPECT_EQ(off, wire.size());
}

TEST(NetProto, StatsReplyIncrementalNeedsMore) {
  proto::StatsReplyHeader hdr;
  hdr.request_id = 5;
  const std::string json = R"({"gauges":{"g":42},"histograms":{}})";
  std::vector<unsigned char> wire;
  proto::append_stats_frame(wire, hdr, json);

  // Every strict prefix — mid-prefix, mid-header, mid-payload — parses as
  // kNeedMore, never as an error and never as a short frame.
  for (std::size_t n = 0; n < wire.size(); ++n) {
    const auto p = parse_stream(wire.data(), n);
    EXPECT_EQ(p.result, proto::ParseResult::kNeedMore) << "prefix " << n;
  }
  const auto p = parse_stream(wire.data(), wire.size());
  EXPECT_EQ(p.result, proto::ParseResult::kFrame);
}

TEST(NetProto, TruncatedStatsFrameIsRejected) {
  proto::StatsReplyHeader hdr;
  const std::string json = "{\"x\":1}";
  std::vector<unsigned char> wire;
  proto::append_stats_frame(wire, hdr, json);

  // payload_len disagreeing with the frame length (a truncated or padded
  // frame) must be rejected, not mis-split. payload_len sits at header
  // offset 16 (after magic, status, op, flags, request_id).
  auto corrupted = wire;
  corrupted[proto::kLenPrefix + 16] += 1;
  auto p = parse_stream(corrupted.data(), corrupted.size());
  EXPECT_EQ(p.result, proto::ParseResult::kProtocolError);

  // An unknown magic on the reply stream fails as soon as the first four
  // body bytes arrive.
  auto garbage = wire;
  garbage[proto::kLenPrefix] ^= 0xff;
  p = parse_stream(garbage.data(), garbage.size());
  EXPECT_EQ(p.result, proto::ParseResult::kProtocolError);

  // A fixed-reply magic announcing a non-fixed length is a protocol error
  // too (frames are told apart by magic, lengths are per-kind contracts).
  std::vector<unsigned char> bad;
  proto::append_frame(bad, proto::ReplyFrame{});
  bad[0] += 1;  // length prefix now 33 with kReplyMagic body
  bad.push_back(0);
  p = parse_stream(bad.data(), bad.size());
  EXPECT_EQ(p.result, proto::ParseResult::kProtocolError);
}

TEST(NetProto, OversizedStatsPayloadRejectedOnPrefixAlone) {
  // The cap must fire before the peer can make us buffer the body it
  // announces: four prefix bytes are enough to reject.
  const std::uint32_t len =
      static_cast<std::uint32_t>(proto::kMaxReplyBody) + 1;
  unsigned char prefix[proto::kLenPrefix];
  std::memcpy(prefix, &len, sizeof(len));
  const auto p = parse_stream(prefix, sizeof(prefix));
  EXPECT_EQ(p.result, proto::ParseResult::kProtocolError);

  // And a prefix below the minimum body is equally dead on arrival.
  const std::uint32_t tiny = static_cast<std::uint32_t>(proto::kMinBody) - 1;
  std::memcpy(prefix, &tiny, sizeof(tiny));
  EXPECT_EQ(parse_stream(prefix, sizeof(prefix)).result,
            proto::ParseResult::kProtocolError);
}

TEST(NetClient, SeversConnectionOnCorruptReplyStream) {
  // A bare listener stands in for a malicious/broken server: it accepts the
  // client and answers with an oversized length prefix. The client must
  // classify that as a protocol error, sever the connection, and fail
  // waiters with kClosed — not buffer 1 MiB+ or spin forever.
  std::uint16_t port = 0;
  net::Fd lst = net::listen_loopback(0, &port);
  ASSERT_TRUE(lst.valid());

  net::ClientConfig ccfg;
  ccfg.max_retries = 0;
  net::Client client{port, ccfg};
  ASSERT_TRUE(client.ok());

  int sfd = -1;
  for (int i = 0; i < 2000 && sfd < 0; ++i) {
    sfd = ::accept(lst.get(), nullptr, nullptr);
    if (sfd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(sfd, 0);

  const std::uint32_t len =
      static_cast<std::uint32_t>(proto::kMaxReplyBody) + 1;
  ASSERT_TRUE(net::write_all(sfd, &len, sizeof(len)));

  for (int i = 0; i < 5000 && !client.closed(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(client.closed());
  // The severed socket refuses further traffic outright.
  EXPECT_EQ(client.get(1).status, proto::Status::kSendFailed);
  ::close(sfd);
}

TEST(NetClient, BackoffCurveIsCappedExponentialWithJitter) {
  // Zero jitter word: exactly half the exponential step.
  EXPECT_EQ(net::retry_backoff_us(0, 200, 50'000, 0), 100u);
  EXPECT_EQ(net::retry_backoff_us(1, 200, 50'000, 0), 200u);
  EXPECT_EQ(net::retry_backoff_us(2, 200, 50'000, 0), 400u);
  // Cap: huge attempts saturate at cap/2 + jitter%(cap/2) < cap.
  for (std::size_t a = 0; a < 64; ++a) {
    const std::uint64_t d = net::retry_backoff_us(a, 200, 50'000, 0x123456);
    EXPECT_LT(d, 50'000u);
  }
  // Jitter moves the delay but stays within [half, full).
  const std::uint64_t j = net::retry_backoff_us(3, 200, 50'000, 777);
  EXPECT_GE(j, 800u);
  EXPECT_LT(j, 1600u);
  // Degenerate base: no sleep.
  EXPECT_EQ(net::retry_backoff_us(5, 0, 50'000, 999), 0u);
}

TEST(NetServeMap, DispatchesOpsAndSensesCeiling) {
  cachetrie::evict::BoundedConfig cfg;
  cfg.ceiling_bytes = 1u << 20;
  BoundedTrie map{cfg};
  net::ServeMap<BoundedTrie> sm{map};

  proto::RequestFrame req;
  std::uint64_t v = 0;

  req.op = static_cast<std::uint8_t>(proto::Op::kPut);
  req.key = 5;
  req.value = 50;
  EXPECT_EQ(sm.execute(req, &v), proto::Status::kOk);

  req.op = static_cast<std::uint8_t>(proto::Op::kGet);
  EXPECT_EQ(sm.execute(req, &v), proto::Status::kOk);
  EXPECT_EQ(v, 50u);

  req.op = static_cast<std::uint8_t>(proto::Op::kRemoveIfEquals);
  req.value = 49;  // wrong expected value
  EXPECT_EQ(sm.execute(req, &v), proto::Status::kNotFound);
  req.value = 50;
  EXPECT_EQ(sm.execute(req, &v), proto::Status::kOk);

  req.op = static_cast<std::uint8_t>(proto::Op::kRemove);
  EXPECT_EQ(sm.execute(req, &v), proto::Status::kNotFound);

  req.op = 0xee;  // unknown op — reply, don't kill the connection
  EXPECT_EQ(sm.execute(req, &v), proto::Status::kBadRequest);

  EXPECT_FALSE(sm.near_ceiling(0.9));
  EXPECT_GT(sm.resident_headroom_bytes(), 0u);
}

// One full serve pass over a real loopback socket: every op, both outcome
// statuses, bad-request survival, and a clean drain. This is the ASan
// sweep of the reactor (see file comment).
TEST(NetServe, EndToEndBasics) {
  cachetrie::evict::BoundedConfig bcfg;
  bcfg.ceiling_bytes = 8u << 20;
  BoundedTrie map{bcfg};

  net::ServerConfig scfg;
  scfg.shards = 2;
  net::Server<BoundedTrie> server{map, scfg};
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.start());

  {
    net::Client client{server.port()};
    ASSERT_TRUE(client.ok());

    EXPECT_EQ(client.get(1).status, proto::Status::kNotFound);
    EXPECT_TRUE(client.put(1, 100).ok());
    const auto g = client.get(1);
    EXPECT_TRUE(g.ok());
    EXPECT_EQ(g.value, 100u);
    EXPECT_EQ(client.remove_if_equals(1, 99).status,
              proto::Status::kNotFound);
    EXPECT_TRUE(client.remove_if_equals(1, 100).ok());
    EXPECT_EQ(client.remove(1).status, proto::Status::kNotFound);
    EXPECT_TRUE(client.ping(7).ok());

    // An unknown op draws kBadRequest and the connection keeps working.
    std::uint64_t id = 0;
    ASSERT_TRUE(client.send(static_cast<proto::Op>(0x7e), 0, 0, &id, 0));
    EXPECT_EQ(client.wait(id).status, proto::Status::kBadRequest);
    EXPECT_TRUE(client.ping(8).ok());

    // Live introspection over the same connection: kStats hands back the
    // shard's JSON snapshot+delta and the stream keeps its discipline —
    // data ops after the variable-length frame still work.
    const auto s = client.stats();
    EXPECT_TRUE(s.ok());
    ASSERT_FALSE(s.json.empty());
    EXPECT_EQ(s.json.front(), '{');
    EXPECT_EQ(s.json.back(), '}');
    EXPECT_NE(s.json.find("\"snapshot\""), std::string::npos);
    EXPECT_NE(s.json.find("\"delta\""), std::string::npos);
    EXPECT_TRUE(client.ping(9).ok());

    // The map the server serves is the caller's map.
    EXPECT_TRUE(client.put(2, 222).ok());
    EXPECT_EQ(map.lookup(2).value_or(0), 222u);
  }

  server.stop();
  const auto totals = server.totals();
  EXPECT_GE(totals.served, 10u);
  EXPECT_EQ(totals.proto_errors, 0u);
  EXPECT_EQ(server.killed_shards(), 0u);
  EXPECT_EQ(totals.conns_adopted, totals.conns_closed);
  EXPECT_TRUE(map.underlying().debug_validate().empty());
}

// Multiple client threads through one server, each on its own connection —
// the shard-per-core claim is that this needs no cross-shard coordination.
TEST(NetServe, ConcurrentClients) {
  BoundedTrie map{{}};
  net::ServerConfig scfg;
  scfg.shards = 2;
  net::Server<BoundedTrie> server{map, scfg};
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.start());

  constexpr std::size_t kThreads = 3;
  constexpr std::uint64_t kOps = 200;
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> failures{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      net::Client c{server.port()};
      if (!c.ok()) {
        failures.fetch_add(1000);
        return;
      }
      const std::uint64_t base = (t + 1) << 20;
      for (std::uint64_t i = 0; i < kOps; ++i) {
        if (!c.put(base + i, i).ok()) failures.fetch_add(1);
      }
      for (std::uint64_t i = 0; i < kOps; ++i) {
        const auto r = c.get(base + i);
        if (!r.ok() || r.value != i) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  server.stop();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(map.size(), kThreads * kOps);
  EXPECT_TRUE(map.underlying().debug_validate().empty());
}

}  // namespace
