// eviction_fault_test.cpp — the bounded mode under injected faults.
//
// The design claim under test: there is no eviction thread to lose. Ceiling
// enforcement is run by *every* writer (maybe_backpressure), so killing the
// one thread that happens to be mid-scan must neither unbound the footprint
// nor stall survivors. Plus two deterministic regressions for the
// value-compare-after-announce window of remove_if_equals/evict (the audit
// in DESIGN.md §3: the compare is revalidated because the txn CAS fails if
// anything replaced the pair after the compare), and a randomized stall
// storm over the new eviction chaos sites that must leave the structure
// valid and the byte ledger exact.
//
// Labeled `fault` (RUN_SERIAL): the watchdog asserts per-tick survivor
// progress, which sharing the machine would starve.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "cachetrie/evict.hpp"
#include "mr/epoch.hpp"
#include "testkit/chaos.hpp"
#include "testkit/fault.hpp"
#include "testkit/watchdog.hpp"

namespace {

namespace tk = cachetrie::testkit;
namespace fault = cachetrie::testkit::fault;
using cachetrie::mr::EpochDomain;
using namespace std::chrono_literals;

using Bounded =
    cachetrie::evict::BoundedCacheTrie<std::uint64_t, std::uint64_t>;

cachetrie::evict::BoundedConfig ceiling_config(std::size_t ceiling) {
  cachetrie::evict::BoundedConfig cfg;
  cfg.ceiling_bytes = ceiling;
  cfg.ttl_ticks = 0;  // pure LRU-pressure mode
  return cfg;
}

TEST(EvictionFault, DeadEvictorCeilingHolds) {
  auto& dom = EpochDomain::instance();
  dom.drain_for_testing();
  // The parked victim pins its epoch, so survivor garbage parks in limbo;
  // cap it so the PR-2 stall fallback keeps *that* bounded too — this test
  // measures the resident (published-minus-retired) footprint.
  dom.set_limbo_cap_bytes(4u << 20);
  dom.set_stall_lag_epochs(8);

  constexpr std::size_t kCeiling = 256u << 10;  // 256 KiB
  tk::chaos::set_global_seed(21);
  tk::chaos::enable(true);
  // The first thread to run an over-ceiling backpressure scan dies inside
  // it. If enforcement were delegated to a dedicated evictor, this kill
  // would unbound the footprint.
  fault::install(fault::Plan(21).die("cachetrie.evict_scan", /*thread=*/0));

  Bounded trie(ceiling_config(kCeiling));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> survivor_ops{0};
  std::atomic<bool> victim_killed{false};

  std::thread victim([&] {
    tk::chaos::bind_thread(0);
    try {
      // Fill past the ceiling: the insert that first observes
      // resident > ceiling enters evict_scan and is killed there.
      for (std::uint64_t i = 0; i < 200000; ++i) {
        trie.insert(0xdead000000ull + i, i);
      }
      ADD_FAILURE() << "victim never entered a backpressure scan";
    } catch (const fault::ThreadKilled&) {
      victim_killed.store(true, std::memory_order_release);
    }
  });

  const auto park_deadline = std::chrono::steady_clock::now() + 30s;
  while (fault::parked_now() == 0 &&
         std::chrono::steady_clock::now() < park_deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(fault::parked_now(), 1u) << "victim never reached evict_scan";

  // Survivors churn a stream of fresh keys many times the ceiling while the
  // evictor-of-record is dead mid-scan.
  std::vector<std::thread> churners;
  for (std::uint64_t t = 1; t <= 4; ++t) {
    churners.emplace_back([&, t] {
      tk::chaos::bind_thread(t);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        trie.insert(t * 100000000ull + i, i);
        ++i;
        survivor_ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  tk::ProgressWatchdog watchdog(survivor_ops, 250ms);
  watchdog.start();

  std::size_t hwm = 0;
  const auto end = std::chrono::steady_clock::now() + 1700ms;
  while (std::chrono::steady_clock::now() < end) {
    hwm = std::max(hwm, trie.resident_bytes());
    std::this_thread::sleep_for(1ms);
  }

  watchdog.stop();
  stop.store(true, std::memory_order_release);
  for (auto& c : churners) c.join();

  const auto counts = trie.eviction_counts();
  const std::uint64_t ops = survivor_ops.load(std::memory_order_relaxed);
  // (a) The ceiling held as observed footprint: the high-water mark stays
  // within the cap plus a slack of in-flight per-writer overshoot.
  EXPECT_LT(hwm, kCeiling + kCeiling / 2)
      << "resident bytes escaped the ceiling with the evictor dead "
      << "(ops=" << ops << ", scans=" << counts.backpressure_scans << ")";
  // (b) Enforcement really ran, from the surviving writers.
  EXPECT_GT(counts.backpressure_scans, 0u);
  EXPECT_GT(counts.lru_evictions, 0u);
  // (c) Lock-freedom held: survivors completed work in every tick.
  EXPECT_GE(watchdog.ticks(), 4u);
  EXPECT_EQ(watchdog.violations(), 0u)
      << "a watchdog tick saw zero completed survivor ops";
  EXPECT_GT(ops, 0u);

  fault::clear();  // victim unwinds via ThreadKilled
  victim.join();
  EXPECT_TRUE(victim_killed.load(std::memory_order_acquire));
  tk::chaos::enable(false);
  dom.set_limbo_cap_bytes(EpochDomain::kNoLimboCap);
  dom.set_stall_lag_epochs(EpochDomain::kDefaultStallLagEpochs);
}

TEST(EvictionFault, RemoveIfEqualsRevalidatesAfterCompare) {
  // Regression for the value-compare window (satellite audit): the remover
  // compares the value, then parks *before* its txn announcement; a racer
  // replaces the value in that window. The remover's announce CAS must fail
  // (the racer's replacement won the txn word), forcing a re-read that sees
  // the new value — remove_if_equals(k, old) returns false and the new pair
  // survives. A stale "true" here would be the linearization bug the audit
  // looked for.
  tk::chaos::set_global_seed(33);
  tk::chaos::enable(true);
  fault::install(
      fault::Plan(33).stall("cachetrie.txn_announce", fault::kForever,
                            /*thread=*/0));

  cachetrie::CacheTrie<std::uint64_t, std::uint64_t> trie;
  ASSERT_TRUE(trie.insert(42, 1));

  std::atomic<bool> victim_result{true};
  std::thread victim([&] {
    tk::chaos::bind_thread(0);
    victim_result.store(trie.remove_if_equals(42, 1),
                        std::memory_order_release);
  });
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (fault::parked_now() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(fault::parked_now(), 1u) << "victim never reached the announce";

  tk::chaos::bind_thread(1);
  EXPECT_TRUE(trie.replace(42, 2));  // lands inside the victim's window

  fault::clear();
  victim.join();
  EXPECT_FALSE(victim_result.load(std::memory_order_acquire))
      << "remove_if_equals removed a pair whose value it never saw";
  EXPECT_EQ(trie.lookup(42), std::optional<std::uint64_t>(2));
  tk::chaos::enable(false);
}

TEST(EvictionFault, EvictRacingRemoveHasOneWinner) {
  // evict() is a linearizable remove: racing it against remove() on the
  // same key yields exactly one winner, and only a *successful* eviction
  // moves the eviction counters. Both directions, deterministically.
  cachetrie::evict::BoundedConfig cfg;
  cfg.ttl_ticks = 1ull << 40;  // bounded mode on, horizons inert
  Bounded trie(cfg);

  tk::chaos::set_global_seed(34);
  tk::chaos::enable(true);

  {  // evict stalls, remove wins
    ASSERT_TRUE(trie.insert(99, 7));
    fault::install(
        fault::Plan(34).stall("cachetrie.txn_announce", fault::kForever,
                              /*thread=*/0));
    std::optional<std::uint64_t> evicted;
    std::thread victim([&] {
      tk::chaos::bind_thread(0);
      evicted = trie.evict(99);
    });
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (fault::parked_now() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    ASSERT_EQ(fault::parked_now(), 1u);
    tk::chaos::bind_thread(1);
    EXPECT_EQ(trie.remove(99), std::optional<std::uint64_t>(7));
    fault::clear();
    victim.join();
    EXPECT_EQ(evicted, std::nullopt);
    EXPECT_EQ(trie.eviction_counts().lru_evictions, 0u)
        << "a failed eviction must not count";
  }

  {  // remove stalls, evict wins
    ASSERT_TRUE(trie.insert(99, 8));
    fault::install(
        fault::Plan(35).stall("cachetrie.txn_announce", fault::kForever,
                              /*thread=*/0));
    std::optional<std::uint64_t> removed;
    std::thread victim([&] {
      tk::chaos::bind_thread(0);
      removed = trie.remove(99);
    });
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (fault::parked_now() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    ASSERT_EQ(fault::parked_now(), 1u);
    tk::chaos::bind_thread(1);
    EXPECT_EQ(trie.evict(99), std::optional<std::uint64_t>(8));
    fault::clear();
    victim.join();
    EXPECT_EQ(removed, std::nullopt);
    EXPECT_EQ(trie.eviction_counts().lru_evictions, 1u);
  }
  tk::chaos::enable(false);
}

TEST(EvictionFault, StallStormLeavesStructureValidAndLedgerExact) {
  // Randomized finite stalls at every eviction chaos site (plus the txn
  // sites they race), four churn threads, ceiling pressure on. Afterwards
  // the trie must pass the structural validator and the double-entry byte
  // ledger must equal a footprint walk — any publish/retire path that
  // miscounts under the perturbed schedules shows up here.
  static const char* const kSites[] = {
      "cachetrie.evict_announce", "cachetrie.evict_commit",
      "cachetrie.evict_scan",     "cachetrie.txn_announce",
      "cachetrie.txn_commit",
  };
  tk::chaos::set_global_seed(55);
  tk::chaos::enable(true);
  fault::install(fault::Plan::randomized(55, kSites, std::size(kSites),
                                         /*n_victims=*/4, 1us, 200us));

  Bounded trie(ceiling_config(128u << 10));
  std::vector<std::thread> workers;
  for (std::uint64_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      tk::chaos::bind_thread(t);
      try {
        for (std::uint64_t i = 0; i < 20000; ++i) {
          const std::uint64_t k = t * 1000000ull + i;
          trie.insert(k, i);
          if (i % 3 == 0) trie.lookup(k - (i % 64));
          if (i % 5 == 0) trie.remove(k - (i % 32));
        }
      } catch (const fault::ThreadKilled&) {
        // Tolerated: the resume fence may convert a stall into a death if
        // a concurrent sweep declared us; survivors carry the assertions.
      }
    });
  }
  for (auto& w : workers) w.join();
  fault::clear();
  tk::chaos::enable(false);

  EXPECT_GT(fault::injected_stalls(), 0u) << "the storm never engaged";
  const auto issues = trie.underlying().debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
  EXPECT_EQ(trie.resident_bytes(),
            trie.footprint_bytes() - sizeof(Bounded::Trie))
      << "byte ledger diverged from the live structure";
  EXPECT_GT(trie.eviction_counts().lru_evictions, 0u);
}

}  // namespace
