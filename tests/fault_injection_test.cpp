// fault_injection_test.cpp — unit tests for the fault-injection engine
// itself (src/testkit/fault.hpp): verdict firing, thread filters, crossing
// ordinals, die/release semantics, and seed reproducibility. The engine is
// exercised through bare chaos points; the structure-level scenarios live
// in stalled_reclaimer_test.cpp and watchdog_progress_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "testkit/chaos.hpp"
#include "testkit/fault.hpp"

namespace {

namespace tk = cachetrie::testkit;
namespace fault = cachetrie::testkit::fault;
using namespace std::chrono_literals;

/// Per-test RAII: enables chaos (the hook only fires while enabled) and
/// tears the plan down even on assertion failure.
struct FaultSession {
  explicit FaultSession(std::uint64_t seed = 42) {
    tk::chaos::set_global_seed(seed);
    tk::chaos::enable(true);
  }
  ~FaultSession() {
    fault::clear();
    tk::chaos::enable(false);
  }
};

TEST(FaultEngine, StallDelaysTheCrossingThread) {
  FaultSession session;
  fault::reset_counters();
  fault::install(fault::Plan(1).stall("fi.stall_site", 30ms));
  tk::chaos::bind_thread(0);

  const auto t0 = std::chrono::steady_clock::now();
  tk::chaos_point("fi.stall_site");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, 30ms);
  EXPECT_EQ(fault::injected_stalls(), 1u);

  // max_fires = 1: further crossings pass through unharmed.
  tk::chaos_point("fi.stall_site");
  EXPECT_EQ(fault::injected_stalls(), 1u);
}

TEST(FaultEngine, SiteAndThreadFiltersSelectTheVictim) {
  FaultSession session;
  fault::reset_counters();
  fault::install(
      fault::Plan(2).stall("fi.victim_site", 1ms, /*thread=*/1));

  // Wrong site, right thread; right site, wrong thread: no verdicts.
  tk::chaos::bind_thread(1);
  tk::chaos_point("fi.other_site");
  tk::chaos::bind_thread(0);
  tk::chaos_point("fi.victim_site");
  EXPECT_EQ(fault::injected_stalls(), 0u);

  std::thread victim([] {
    tk::chaos::bind_thread(1);
    tk::chaos_point("fi.victim_site");
  });
  victim.join();
  EXPECT_EQ(fault::injected_stalls(), 1u);
}

TEST(FaultEngine, FireOnHitCountsCrossingsPerThread) {
  FaultSession session;
  fault::reset_counters();
  fault::install(fault::Plan(3).stall("fi.nth", 1ms, fault::kAnyThread,
                                      /*fire_on_hit=*/3, /*max_fires=*/2));
  tk::chaos::bind_thread(0);
  for (int i = 0; i < 8; ++i) tk::chaos_point("fi.nth");
  // Crossings 3 and 4 fire; 1-2 are before the window, 5+ after it.
  EXPECT_EQ(fault::injected_stalls(), 2u);
}

TEST(FaultEngine, DieParksUntilReleaseThenThrows) {
  FaultSession session;
  fault::reset_counters();
  fault::install(fault::Plan(4).die("fi.die_site"));

  std::atomic<bool> killed{false};
  std::atomic<bool> resumed{false};
  std::thread victim([&] {
    tk::chaos::bind_thread(0);
    try {
      tk::chaos_point("fi.die_site");
      resumed.store(true);  // must be unreachable
    } catch (const fault::ThreadKilled&) {
      killed.store(true);
    }
  });

  // The victim parks at the site and stays parked until released.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (fault::parked_now() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(fault::parked_now(), 1u);
  EXPECT_EQ(fault::injected_deaths(), 1u);
  EXPECT_FALSE(killed.load());

  fault::release_all();
  victim.join();
  EXPECT_TRUE(killed.load());
  EXPECT_FALSE(resumed.load());
  EXPECT_EQ(fault::parked_now(), 0u);
}

TEST(FaultEngine, ForeverStallResumesOnRelease) {
  FaultSession session;
  fault::reset_counters();
  fault::install(fault::Plan(5).stall("fi.forever", fault::kForever));

  std::atomic<bool> resumed{false};
  std::thread victim([&] {
    tk::chaos::bind_thread(0);
    try {
      tk::chaos_point("fi.forever");
      resumed.store(true);
    } catch (const fault::ThreadKilled&) {
      // Only possible if a reclaimer sweep declared us stalled; this test
      // retires nothing, so it must not happen.
      ADD_FAILURE() << "undeclared victim was killed on resume";
    }
  });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (fault::parked_now() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(fault::parked_now(), 1u);
  fault::release_all();
  victim.join();
  EXPECT_TRUE(resumed.load());
}

TEST(FaultEngine, NoVerdictsWhileChaosDisabledOrPlanCleared) {
  FaultSession session;
  fault::reset_counters();
  fault::install(fault::Plan(6).stall("fi.gated", 1ms));
  tk::chaos::bind_thread(0);

  tk::chaos::enable(false);
  tk::chaos_point("fi.gated");  // chaos off: the whole point is inert
  EXPECT_EQ(fault::injected_stalls(), 0u);

  tk::chaos::enable(true);
  fault::clear();
  tk::chaos_point("fi.gated");  // plan gone: crossing passes through
  EXPECT_EQ(fault::injected_stalls(), 0u);
}

TEST(FaultEngine, RandomizedPlanIsAPureFunctionOfTheSeed) {
  const char* sites[] = {"fi.a", "fi.b", "fi.c"};
  const auto a = fault::Plan::randomized(0xfeedULL, sites, 3, 2, 1ms, 10ms);
  const auto b = fault::Plan::randomized(0xfeedULL, sites, 3, 2, 1ms, 10ms);
  ASSERT_EQ(a.specs().size(), 6u);  // one spec per (site, victim)
  ASSERT_EQ(a.specs().size(), b.specs().size());
  for (std::size_t i = 0; i < a.specs().size(); ++i) {
    EXPECT_EQ(a.specs()[i].site, b.specs()[i].site);
    EXPECT_EQ(a.specs()[i].duration, b.specs()[i].duration);
    EXPECT_EQ(a.specs()[i].thread, b.specs()[i].thread);
    EXPECT_EQ(a.specs()[i].fire_on_hit, b.specs()[i].fire_on_hit);
    EXPECT_EQ(a.specs()[i].max_fires, b.specs()[i].max_fires);
  }
  for (const auto& s : a.specs()) {
    EXPECT_GE(s.duration, 1ms);
    EXPECT_LE(s.duration, 10ms);
    EXPECT_LT(s.thread, 2u);
  }
  EXPECT_NE(a.describe().find("seed=65261"), std::string::npos);
}

}  // namespace
