// depth_distribution_test.cpp — property tests for the paper's statistical
// analysis (§4.1):
//
//   Theorem 4.1: with a universal hash, the probability that a key sits at
//     separation depth d in a trie of n+1 keys is
//       p(d, n) = (1 - 16^{-d-1})^n - (1 - 16^{-d})^n.
//   Theorem 4.2: as n grows, some pair of adjacent levels holds 87.45% to
//     97.46% of the keys.
//   Theorem 4.3: the expected key depth is log16(n) + O(1).
//
// Depth convention: our histogram indexes SNodes by level/4 (an SNode
// directly under the root has index 1); the paper's depth d corresponds to
// index d+1 (its p(0, n) is the probability that no other key shares the
// first nibble — exactly our index 1).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "cachetrie/cache_trie.hpp"
#include "harness/workload.hpp"

namespace {

using cachetrie::CacheTrie;
using cachetrie::LevelHistogram;

double p_of_depth(int d, double n) {
  const double a = 1.0 - std::pow(16.0, -(d + 1));
  const double b = 1.0 - std::pow(16.0, -d);
  return std::pow(a, n) - std::pow(b, n);
}

class DepthDistribution : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DepthDistribution, MatchesTheorem41ClosedForm) {
  const std::size_t n = GetParam();
  CacheTrie<std::uint64_t, std::uint64_t> trie;
  for (auto k : cachetrie::harness::random_keys(n, /*seed=*/1234 + n)) {
    trie.insert(k, k);
  }
  const LevelHistogram hist = trie.level_histogram();
  ASSERT_EQ(hist.total, n);
  // Compare the empirical fraction at every depth with the closed form.
  for (int idx = 1; idx < 12; ++idx) {
    const double expected = p_of_depth(idx - 1, static_cast<double>(n - 1));
    const double actual =
        static_cast<double>(hist.counts[static_cast<std::size_t>(idx)]) /
        static_cast<double>(n);
    // Binomial noise: generous 3-sigma-ish band plus an absolute floor.
    const double sigma =
        std::sqrt(expected * (1 - expected) / static_cast<double>(n));
    EXPECT_NEAR(actual, expected, 5 * sigma + 0.01)
        << "depth index " << idx << " n " << n;
  }
}

TEST_P(DepthDistribution, Theorem42TwoAdjacentLevelsDominate) {
  const std::size_t n = GetParam();
  CacheTrie<std::uint64_t, std::uint64_t> trie;
  for (auto k : cachetrie::harness::random_keys(n, /*seed=*/99 + n)) {
    trie.insert(k, k);
  }
  const auto hist = trie.level_histogram();
  // The paper proves the asymptotic share is in (0.8745, 0.9746); finite n
  // fluctuates, so assert a slightly relaxed lower bound.
  EXPECT_GE(hist.top_pair_share(), 0.85) << "n = " << n;
  EXPECT_LE(hist.top_pair_share(), 1.0);
}

TEST_P(DepthDistribution, Theorem43ExpectedDepthIsLog16N) {
  const std::size_t n = GetParam();
  CacheTrie<std::uint64_t, std::uint64_t> trie;
  for (auto k : cachetrie::harness::random_keys(n, /*seed=*/7 + n)) {
    trie.insert(k, k);
  }
  const auto hist = trie.level_histogram();
  double mean_idx = 0;
  for (std::size_t d = 0; d < hist.counts.size(); ++d) {
    mean_idx += static_cast<double>(d) * hist.counts[d];
  }
  mean_idx /= static_cast<double>(hist.total);
  const double log16n = std::log(static_cast<double>(n)) / std::log(16.0);
  // E[depth] = log16(n) + O(1): the constant is provably small.
  EXPECT_NEAR(mean_idx, log16n, 1.5) << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, DepthDistribution,
                         ::testing::Values(1000, 10000, 100000, 400000,
                                           800000));

// The flip side of Theorem 4.1's assumption: a non-universal hash can make
// the trie deep (the paper's introduction notes depth can reach O(n)
// without uniformity). A hash whose low 32 bits are constant forces every
// key through 8 shared nibbles before any separation is possible.
struct LowBitsSharedHash {
  std::uint64_t operator()(const std::uint64_t& k) const noexcept {
    return k << 32;  // low 8 nibbles identical for all keys
  }
};

TEST(DepthDistributionAdversarial, SharedLowBitsDeepenTheTrie) {
  CacheTrie<std::uint64_t, std::uint64_t> good;
  CacheTrie<std::uint64_t, std::uint64_t, LowBitsSharedHash> bad;
  constexpr std::size_t kN = 20000;
  for (std::uint64_t k = 0; k < kN; ++k) {
    good.insert(k, k);
    bad.insert(k, k);
  }
  auto mean_depth = [](const LevelHistogram& h) {
    double m = 0;
    for (std::size_t d = 0; d < h.counts.size(); ++d) {
      m += static_cast<double>(d) * h.counts[d];
    }
    return m / static_cast<double>(h.total);
  };
  // Every key must descend past the 8 shared nibbles.
  EXPECT_GE(mean_depth(bad.level_histogram()), 8.0);
  EXPECT_GT(mean_depth(bad.level_histogram()),
            mean_depth(good.level_histogram()) + 3.0);
  // Correctness is unaffected by the adversarial hash.
  for (std::uint64_t k = 0; k < kN; k += 97) {
    ASSERT_TRUE(bad.contains(k));
  }
}

// Saturating the hash the other way (only 12 low bits of entropy) caps the
// trie at depth 3 and piles keys into collision chains — depth must stay
// bounded and lookups exact.
TEST(DepthDistributionAdversarial, LowEntropySaturatesIntoChains) {
  CacheTrie<std::uint64_t, std::uint64_t, cachetrie::util::DegradedHash<12>>
      trie;
  constexpr std::size_t kN = 20000;
  for (std::uint64_t k = 0; k < kN; ++k) trie.insert(k, k);
  const auto hist = trie.level_histogram();
  for (std::size_t d = 5; d < hist.counts.size(); ++d) {
    EXPECT_EQ(hist.counts[d], 0u) << "depth " << d;
  }
  EXPECT_EQ(hist.total, kN);
  for (std::uint64_t k = 0; k < kN; k += 37) {
    ASSERT_EQ(trie.lookup(k).value(), k);
  }
}

}  // namespace
