// trace_test.cpp — unit tests of the obs/trace flight recorder: ring
// wrap/overwrite semantics, per-slot seqlock validation under a concurrent
// drain, TSC calibration sanity, the Chrome-trace exporter's unmatched-end
// demotion, and the static zero-size guarantee the OFF configuration
// relies on (mirroring metrics_test.cpp's Null* checks).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/trace_export.hpp"
#include "obs/tsc.hpp"
#include "util/thread_id.hpp"

namespace trace = cachetrie::obs::trace;
namespace tsc = cachetrie::obs::tsc;
using trace::EventId;

namespace {

// --- OFF configuration: zero-size, constexpr no-op trace points ------------

// A trace point in a trace-off build must cost literally nothing; NullSpan
// is unconditional, so a trace-ON test run still guards the OFF contract.
static_assert(std::is_empty_v<trace::NullSpan>);
static_assert(std::is_trivially_destructible_v<trace::NullSpan>);

constexpr bool null_span_probe() {
  trace::NullSpan s{EventId::kCtrieGcasBegin, EventId::kCtrieGcasEnd, 1, 2};
  (void)s;
  return true;
}
static_assert(null_span_probe());

#if !CACHETRIE_TRACE
static_assert(!trace::kTraceCompiled);
static_assert(std::is_same_v<trace::Span, trace::NullSpan>);
// emit/enable must be usable in constant expressions when compiled out.
constexpr bool off_emit_probe() {
  trace::emit(EventId::kCachetrieFreeze, 1, 2);
  trace::enable(true);
  return !trace::enabled();
}
static_assert(off_emit_probe());
#else
static_assert(trace::kTraceCompiled);
#endif

// The event-info table is total: every id below kCount has a name and a
// phase the exporter understands, and out-of-range ids fall back to "none".
TEST(TraceEvents, InfoTableIsTotal) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(EventId::kCount);
       ++i) {
    const auto& info = trace::event_info(static_cast<EventId>(i));
    ASSERT_NE(info.name, nullptr);
    ASSERT_NE(info.category, nullptr);
    EXPECT_TRUE(info.phase == 'i' || info.phase == 'B' || info.phase == 'E')
        << info.name;
  }
  EXPECT_STREQ(trace::event_info(EventId::kCount).name, "none");
  EXPECT_STREQ(trace::event_info(static_cast<EventId>(0xffff)).name, "none");
}

// --- live recorder (trace-on builds only) ----------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!trace::kTraceCompiled) {
      GTEST_SKIP() << "tracing compiled out (CACHETRIE_TRACE=0)";
    }
    trace::registry().set_ring_capacity_for_testing(4096);
    trace::registry().reset_for_testing();
    trace::enable(true);
  }

  void TearDown() override {
    if (!trace::kTraceCompiled) return;
    trace::enable(false);
    trace::registry().set_ring_capacity_for_testing(4096);
    trace::registry().reset_for_testing();
  }
};

TEST_F(TraceTest, DisabledEmitRecordsNothing) {
  trace::enable(false);
  trace::emit(EventId::kCachetrieFreeze, 1, 2);
  { trace::Span s{EventId::kCtrieGcasBegin, EventId::kCtrieGcasEnd}; }
  EXPECT_EQ(trace::registry().total_emitted(), 0u);
  EXPECT_TRUE(trace::registry().drain().empty());
}

TEST_F(TraceTest, EmitRecordsPayloadThreadIdAndOrder) {
  trace::emit(EventId::kCachetrieFreeze, 10, 11);
  trace::emit(EventId::kMrEpochFlip, 20);
  trace::emit(EventId::kCslMarkBottom, 30, 31);

  const auto events = trace::registry().drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].id, EventId::kCachetrieFreeze);
  EXPECT_EQ(events[0].a0, 10u);
  EXPECT_EQ(events[0].a1, 11u);
  EXPECT_EQ(events[1].id, EventId::kMrEpochFlip);
  EXPECT_EQ(events[1].a0, 20u);
  EXPECT_EQ(events[1].a1, 0u);
  EXPECT_EQ(events[2].id, EventId::kCslMarkBottom);
  const std::uint32_t self = cachetrie::util::current_thread_id();
  for (const auto& ev : events) {
    EXPECT_EQ(ev.tid, self);
  }
  EXPECT_LE(events[0].ts, events[1].ts);
  EXPECT_LE(events[1].ts, events[2].ts);
  EXPECT_EQ(trace::registry().total_emitted(), 3u);
  EXPECT_EQ(trace::registry().total_overwritten(), 0u);
}

TEST_F(TraceTest, RingWrapKeepsTheLatestWindow) {
  constexpr std::uint64_t kCap = 64;
  constexpr std::uint64_t kEmit = 1000;
  trace::registry().set_ring_capacity_for_testing(kCap);
  trace::registry().reset_for_testing();

  for (std::uint64_t i = 0; i < kEmit; ++i) {
    trace::emit(EventId::kCachetrieFreeze, i, i ^ 0xff);
  }

  const auto events = trace::registry().drain();
  ASSERT_EQ(events.size(), kCap);  // exactly one full ring survives
  std::uint64_t min_a0 = ~0ull, max_a0 = 0;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.id, EventId::kCachetrieFreeze);
    EXPECT_EQ(ev.a1, ev.a0 ^ 0xff);  // payload fields stay coherent
    min_a0 = std::min(min_a0, ev.a0);
    max_a0 = std::max(max_a0, ev.a0);
  }
  // A flight recorder keeps the *latest* window: the last kCap events.
  EXPECT_EQ(min_a0, kEmit - kCap);
  EXPECT_EQ(max_a0, kEmit - 1);
  EXPECT_EQ(trace::registry().total_emitted(), kEmit);
  EXPECT_EQ(trace::registry().total_overwritten(), kEmit - kCap);
}

TEST_F(TraceTest, SpanEmitsMatchingBeginAndEnd) {
  {
    trace::Span s{EventId::kCtrieGcasBegin, EventId::kCtrieGcasEnd, 7, 8};
    trace::emit(EventId::kCtrieClean, 1);
  }
  const auto events = trace::registry().drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].id, EventId::kCtrieGcasBegin);
  EXPECT_EQ(events[1].id, EventId::kCtrieClean);
  EXPECT_EQ(events[2].id, EventId::kCtrieGcasEnd);
  // Begin and end carry the same payload so consumers can pair them.
  EXPECT_EQ(events[0].a0, 7u);
  EXPECT_EQ(events[2].a0, 7u);
  EXPECT_EQ(events[0].a1, 8u);
  EXPECT_EQ(events[2].a1, 8u);
  EXPECT_LE(events[0].ts, events[2].ts);
}

TEST_F(TraceTest, ConcurrentDrainSeesOnlyWellFormedEvents) {
  // Writers keep the rings wrapping while the main thread drains; the
  // per-slot seqlock must drop torn slots, never surface them. Detection
  // is the a0/a1 invariant: both words are written in one seq window.
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  trace::registry().set_ring_capacity_for_testing(256);
  trace::registry().reset_for_testing();

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(t) << 32) | i;
        trace::emit(EventId::kCachetrieFreeze, v, ~v);
      }
    });
  }
  go.store(true, std::memory_order_release);

  do {
    for (const auto& ev : trace::registry().drain()) {
      ASSERT_EQ(ev.id, EventId::kCachetrieFreeze);
      ASSERT_EQ(ev.a1, ~ev.a0);
    }
  } while (trace::registry().total_emitted() <
           static_cast<std::uint64_t>(kWriters) * kPerWriter);
  for (auto& w : writers) w.join();

  // Each ring retains its last 256 events. A writer that finished before
  // another started may have had its ring recycled (thread exit releases
  // it), so between 1 and kWriters rings carry events at the end.
  const auto final_events = trace::registry().drain();
  EXPECT_GE(final_events.size(), 256u);
  EXPECT_LE(final_events.size(), 256u * kWriters);
  EXPECT_EQ(final_events.size() % 256u, 0u);
  for (const auto& ev : final_events) {
    EXPECT_EQ(ev.a1, ~ev.a0);
  }
  EXPECT_EQ(trace::registry().total_emitted(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

// --- TSC clock -------------------------------------------------------------

TEST_F(TraceTest, TscIsMonotonicOnOneThread) {
  std::uint64_t prev = tsc::now();
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t t = tsc::now();
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST_F(TraceTest, TscOrdersJoinSynchronizedThreads) {
  // Cross-thread ordering claim kept minimal: a timestamp taken before a
  // join happens-before one taken after it, and the clock must agree.
  for (int round = 0; round < 16; ++round) {
    std::uint64_t in_thread = 0;
    std::thread t([&in_thread] { in_thread = tsc::now(); });
    t.join();
    EXPECT_GE(tsc::now(), in_thread);
  }
}

TEST_F(TraceTest, CalibrationConvertsTicksToWallClockNanoseconds) {
  const auto wall0 = std::chrono::steady_clock::now();
  const std::uint64_t t0 = tsc::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::uint64_t t1 = tsc::now();
  const auto wall1 = std::chrono::steady_clock::now();
  const double traced_ns = tsc::to_ns(t1 - t0);
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0)
          .count());
  // Generous window: CI boxes oversleep, but a calibration that is off by
  // 2x would make every exported timeline useless.
  EXPECT_GT(traced_ns, wall_ns * 0.5);
  EXPECT_LT(traced_ns, wall_ns * 2.0);
}

// --- Chrome-trace exporter -------------------------------------------------

namespace {
void expect_balanced(const std::string& out) {
  std::int64_t braces = 0, brackets = 0;
  for (char ch : out) {
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}
}  // namespace

TEST_F(TraceTest, ExporterPairsSpansAndDemotesUnmatchedEnds) {
  // Synthesized timeline: an 'E' whose 'B' was overwritten (ts=10), then a
  // well-formed B/E pair. The orphan must demote to an instant or the
  // viewer's per-thread span stack corrupts.
  std::vector<trace::Event> events;
  events.push_back({10, 5, EventId::kChmBinLockBegin, 1, 0});
  events.push_back({20, 5, EventId::kChmBinLockEnd, 1, 0});
  events.push_back({30, 5, EventId::kChmBinLockEnd, 2, 0});

  std::ostringstream os;
  trace::write_chrome_json(os, events, "unit_test");
  const std::string out = os.str();
  expect_balanced(out);
  EXPECT_NE(out.find("\"schema\":\"cachetrie-trace-v1\""), std::string::npos);
  EXPECT_NE(out.find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(out.find("chm.bin_lock (unmatched)"), std::string::npos);
  // Exactly one demotion: the matched pair survives as B/E.
  EXPECT_EQ(out.find("(unmatched)"), out.rfind("(unmatched)"));
  // Instants carry the scope Chrome requires.
  EXPECT_NE(out.find("\"s\":\"t\""), std::string::npos);
}

TEST_F(TraceTest, ExporterTimestampsAreRelativeMicroseconds) {
  std::vector<trace::Event> events;
  events.push_back({1000, 1, EventId::kMrEpochFlip, 1, 0});
  events.push_back({5000, 1, EventId::kMrEpochFlip, 2, 0});
  std::ostringstream os;
  trace::write_chrome_json(os, events, "ts_test");
  const std::string out = os.str();
  // First event is the origin regardless of its absolute tick count.
  EXPECT_NE(out.find("\"ts\":0.000"), std::string::npos);
  expect_balanced(out);
}

TEST_F(TraceTest, DumpToFileWritesLoadableJsonUnderTraceOut) {
  // check.sh points CACHETRIE_TRACE_OUT into the build tree so the
  // summarizer smoke can find the dumps; only fall back to TempDir when
  // running standalone.
  const char* preset = std::getenv("CACHETRIE_TRACE_OUT");
  const std::string dir = preset != nullptr ? preset : ::testing::TempDir();
  if (preset == nullptr) {
    ASSERT_EQ(setenv("CACHETRIE_TRACE_OUT", dir.c_str(), 1), 0);
  }
  trace::emit(EventId::kMrEpochFlip, 1);
  trace::emit(EventId::kMrStallDeclare, 2);

  const std::string path = trace::dump_to_file("trace_unit");
  if (preset == nullptr) unsetenv("CACHETRIE_TRACE_OUT");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.find(dir), 0u) << path;
  EXPECT_NE(path.find("TRACE_trace_unit.json"), std::string::npos);

  std::ifstream is{path};
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string out = ss.str();
  expect_balanced(out);
  EXPECT_NE(out.find("mr.epoch.flip"), std::string::npos);
  EXPECT_NE(out.find("mr.epoch.stall_declare"), std::string::npos);
}

TEST_F(TraceTest, PostMortemDumpIsOncePerProcess) {
  const char* preset = std::getenv("CACHETRIE_TRACE_OUT");
  const std::string dir = preset != nullptr ? preset : ::testing::TempDir();
  if (preset == nullptr) {
    ASSERT_EQ(setenv("CACHETRIE_TRACE_OUT", dir.c_str(), 1), 0);
  }
  trace::emit(EventId::kWatchdogViolation, 1);
  const std::string first = trace::post_mortem_dump("first_failure");
  const std::string second = trace::post_mortem_dump("second_failure");
  if (preset == nullptr) unsetenv("CACHETRIE_TRACE_OUT");
  EXPECT_FALSE(first.empty());
  EXPECT_TRUE(second.empty()) << "post-mortem dump must be first-wins";
}

}  // namespace
