// metrics_test.cpp — unit tests of the obs/ observability substrate:
// bucket geometry, striped counter/histogram exactness under concurrency,
// snapshot-vs-reset semantics, and the static zero-size guarantee the OFF
// configuration relies on.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "obs/interval.hpp"

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

namespace obs = cachetrie::obs;

namespace {

// --- bucket geometry (compile-time + runtime spot checks) ------------------

// The static_asserts in metrics.hpp already pin the corners; these pin the
// general shape so a bucket-math refactor cannot silently shift boundaries.
static_assert(obs::bucket_index(1) == 1);
static_assert(obs::bucket_index(15) == 15);
static_assert(obs::bucket_index(16) == 16);
static_assert(obs::bucket_index(17) == 16);
static_assert(obs::bucket_index(63) == 17);
static_assert(obs::bucket_index(64) == 18);
static_assert(obs::bucket_lower_bound(17) == 32);
static_assert(obs::bucket_upper_bound(17) == 63);

TEST(MetricsBuckets, UnitBucketsAreExactBelow16) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(obs::bucket_index(v), v);
    EXPECT_EQ(obs::bucket_lower_bound(v), v);
    EXPECT_EQ(obs::bucket_upper_bound(v), v);
  }
}

TEST(MetricsBuckets, Log2BucketsPartitionTheRange) {
  // Every bucket's lower bound maps back into that bucket, every upper
  // bound too, and bucket b+1 starts exactly after bucket b ends.
  for (std::size_t b = 16; b + 1 < obs::kHistBuckets; ++b) {
    EXPECT_EQ(obs::bucket_index(obs::bucket_lower_bound(b)), b);
    EXPECT_EQ(obs::bucket_index(obs::bucket_upper_bound(b)), b);
    EXPECT_EQ(obs::bucket_lower_bound(b + 1),
              obs::bucket_upper_bound(b) + 1);
  }
  EXPECT_EQ(obs::bucket_index(~std::uint64_t{0}), obs::kHistBuckets - 1);
}

// --- OFF configuration: zero-size, constexpr no-op handles -----------------

// The whole point of the Null* trio: a record site in a metrics-off build
// must cost literally nothing. Enforced here statically so a metrics-ON
// test run still guards the OFF contract.
static_assert(std::is_empty_v<obs::NullCounter>);
static_assert(std::is_empty_v<obs::NullHistogram>);
static_assert(std::is_empty_v<obs::NullGauge>);
static_assert(std::is_trivially_destructible_v<obs::NullCounter>);
static_assert(std::is_trivially_destructible_v<obs::NullHistogram>);
static_assert(std::is_trivially_destructible_v<obs::NullGauge>);

// Null handles must be usable in constant expressions — proof that every
// member is a compile-time no-op, not merely cheap.
constexpr std::uint64_t null_counter_probe() {
  obs::NullCounter c{"probe"};
  return c.add(7) + c.add() + c.total();
}
static_assert(null_counter_probe() == 0);

constexpr bool null_hist_gauge_probe() {
  obs::NullHistogram h{"probe"};
  h.record(123);
  obs::NullGauge g{"probe"};
  g.set(5);
  g.add(-5);
  return g.value() == 0;
}
static_assert(null_hist_gauge_probe());

// In an OFF build the public aliases ARE the Null types.
#if !CACHETRIE_METRICS
static_assert(std::is_same_v<obs::Counter, obs::NullCounter>);
static_assert(std::is_same_v<obs::Histogram, obs::NullHistogram>);
static_assert(std::is_same_v<obs::Gauge, obs::NullGauge>);
static_assert(!obs::kMetricsCompiled);
#else
static_assert(obs::kMetricsCompiled);
#endif

// --- live substrate (metrics-on builds only) -------------------------------

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kMetricsCompiled) {
      GTEST_SKIP() << "metrics compiled out (CACHETRIE_METRICS=0)";
    }
    obs::registry().reset();
  }
};

TEST_F(MetricsTest, CounterTotalsAreExactAcrossThreads) {
  obs::Counter c{"test.counter.exact"};
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& th : team) th.join();
  EXPECT_EQ(c.total(), kThreads * kPerThread);
  EXPECT_EQ(obs::registry().snapshot().counter_value("test.counter.exact"),
            kThreads * kPerThread);
}

TEST_F(MetricsTest, CounterAddReturnsPreviousStripeValue) {
  // The 1-in-2^k sampling idiom depends on add() returning the stripe's
  // pre-add value: the very first record on a thread samples.
  obs::Counter c{"test.counter.sampling"};
  EXPECT_EQ(c.add(), 0u);   // stripe was empty
  EXPECT_EQ(c.add(), 1u);   // same thread -> same stripe
  EXPECT_EQ(c.add(3), 2u);
  EXPECT_EQ(c.total(), 5u);
}

TEST_F(MetricsTest, SameNameHandlesShareStorage) {
  obs::Counter a{"test.counter.shared"};
  obs::Counter b{"test.counter.shared"};
  a.add(10);
  b.add(5);
  EXPECT_EQ(a.total(), 15u);
  EXPECT_EQ(b.total(), 15u);
}

TEST_F(MetricsTest, HistogramConcurrentRecordingLosesNothing) {
  obs::Histogram h{"test.hist.concurrent"};
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record((i + static_cast<std::uint64_t>(t)) % 40);  // unit + log2
      }
    });
  }
  for (auto& th : team) th.join();

  const auto snap = obs::registry().snapshot();
  const auto* hist = snap.find_histogram("test.hist.concurrent");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (auto b : hist->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hist->count);
  // Values 0..39 uniformly: mean 19.5, exact because sum is tracked.
  EXPECT_NEAR(hist->mean(), 19.5, 0.01);
  // 16 of 40 values land below 16 -> exact unit-bucket fraction.
  EXPECT_NEAR(hist->fraction_at_most(15), 16.0 / 40.0, 0.01);
}

TEST_F(MetricsTest, SnapshotHistogramMergeIsBucketwiseAddition) {
  obs::Histogram a{"test.hist.merge_a"};
  obs::Histogram b{"test.hist.merge_b"};
  for (std::uint64_t v : {1u, 1u, 20u, 500u}) a.record(v);
  for (std::uint64_t v : {1u, 15u, 20u}) b.record(v);

  auto snap = obs::registry().snapshot();
  const auto* ha = snap.find_histogram("test.hist.merge_a");
  const auto* hb = snap.find_histogram("test.hist.merge_b");
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);

  obs::Snapshot::Histogram merged = *ha;
  merged.merge(*hb);
  EXPECT_EQ(merged.count, 7u);
  EXPECT_EQ(merged.sum, 522u + 36u);
  EXPECT_EQ(merged.buckets[obs::bucket_index(1)], 3u);
  EXPECT_EQ(merged.buckets[obs::bucket_index(15)], 1u);
  EXPECT_EQ(merged.buckets[obs::bucket_index(20)], 2u);
  EXPECT_EQ(merged.buckets[obs::bucket_index(500)], 1u);
}

TEST_F(MetricsTest, QuantileUpperBoundWalksTheCdf) {
  obs::Histogram h{"test.hist.quantile"};
  for (std::uint64_t i = 0; i < 100; ++i) h.record(i < 90 ? 2 : 100);
  const auto snap = obs::registry().snapshot();
  const auto* hist = snap.find_histogram("test.hist.quantile");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->quantile_upper_bound(0.5), 2u);
  // 100 lands in the [64,127] bucket; its upper bound is 127.
  EXPECT_EQ(hist->quantile_upper_bound(0.99), 127u);
}

TEST_F(MetricsTest, QuantileInterpolatesWithinBucket) {
  // quantile_upper_bound snaps to the bucket ceiling — p99 of a
  // distribution topping out at 100 reports 127. The interpolated
  // quantile() must land inside the bucket, not on its edge.
  obs::Histogram h{"test.hist.quantile_interp"};
  for (std::uint64_t i = 0; i < 100; ++i) h.record(i < 90 ? 2 : 100);
  const auto snap = obs::registry().snapshot();
  const auto* hist = snap.find_histogram("test.hist.quantile_interp");
  ASSERT_NE(hist, nullptr);
  // Unit bucket: exact, no interpolation artifacts.
  EXPECT_DOUBLE_EQ(hist->quantile(0.5), 2.0);
  // [64,127] holds ranks 91..100; p99 (rank 99) sits ~90% into the
  // bucket: 64 + 63 * (99 - 90) / 10 = 120.7. Anything in (64, 127)
  // beats the old 127 ceiling; pin the exact interpolation too.
  const double p99 = hist->quantile(0.99);
  EXPECT_GT(p99, 64.0);
  EXPECT_LT(p99, 127.0);
  EXPECT_NEAR(p99, 64.0 + 63.0 * 0.9, 1e-9);
  // p1 of all-identical values stays exact even in a log2 bucket.
  obs::Histogram one{"test.hist.quantile_interp_one"};
  for (int i = 0; i < 50; ++i) one.record(1000);
  const auto snap2 = obs::registry().snapshot();
  const auto* h1 = snap2.find_histogram("test.hist.quantile_interp_one");
  ASSERT_NE(h1, nullptr);
  const double lo = h1->quantile(0.01), hi = h1->quantile(0.999);
  // All mass in [512,1023]: every quantile must stay inside the bucket.
  EXPECT_GE(lo, 512.0);
  EXPECT_LE(hi, 1023.0);
  EXPECT_LE(lo, hi);
}

TEST_F(MetricsTest, GaugeSetAddAndCallbackGauges) {
  obs::Gauge g{"test.gauge.level"};
  g.set(42);
  g.add(-2);
  EXPECT_EQ(g.value(), 40);

  std::atomic<std::int64_t> source{7};
  obs::registry().register_gauge_fn("test.gauge.cb", [&source] {
    return source.load();
  });
  auto snap = obs::registry().snapshot();
  ASSERT_NE(snap.find_gauge("test.gauge.level"), nullptr);
  EXPECT_EQ(snap.find_gauge("test.gauge.level")->value, 40);
  ASSERT_NE(snap.find_gauge("test.gauge.cb"), nullptr);
  EXPECT_EQ(snap.find_gauge("test.gauge.cb")->value, 7);

  // Callback gauges re-sample: registry reset does not zero the source.
  source.store(9);
  obs::registry().reset();
  snap = obs::registry().snapshot();
  EXPECT_EQ(snap.find_gauge("test.gauge.level")->value, 0);
  EXPECT_EQ(snap.find_gauge("test.gauge.cb")->value, 9);
}

TEST_F(MetricsTest, SnapshotIsAPointInTimeResetZeroes) {
  obs::Counter c{"test.counter.reset"};
  obs::Histogram h{"test.hist.reset"};
  c.add(3);
  h.record(5);

  const auto before = obs::registry().snapshot();
  c.add(2);  // after the snapshot — must not appear in `before`
  EXPECT_EQ(before.counter_value("test.counter.reset"), 3u);
  EXPECT_EQ(obs::registry().snapshot().counter_value("test.counter.reset"),
            5u);

  obs::registry().reset();
  const auto after = obs::registry().snapshot();
  EXPECT_EQ(after.counter_value("test.counter.reset"), 0u);
  const auto* hist = after.find_histogram("test.hist.reset");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 0u);
  EXPECT_EQ(hist->sum, 0u);
  // The snapshot taken before the reset is plain data — unaffected.
  EXPECT_EQ(before.counter_value("test.counter.reset"), 3u);
}

TEST_F(MetricsTest, JsonEmitterProducesBalancedNamedOutput) {
  obs::Counter c{"test.json.counter"};
  obs::Histogram h{"test.json.hist"};
  c.add(11);
  h.record(3);
  h.record(300);

  std::ostringstream os;
  obs::registry().snapshot().write_json(os);
  const std::string out = os.str();

  std::int64_t braces = 0, brackets = 0;
  for (char ch : out) {
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(out.find("\"test.json.counter\":11"), std::string::npos);
  EXPECT_NE(out.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(out.find("\"count\":2"), std::string::npos);
  EXPECT_NE(out.find("\"sum\":303"), std::string::npos);
  // 300 lands in [256,511]: sparse bucket pair [256,1].
  EXPECT_NE(out.find("[256,1]"), std::string::npos);
}

// --- interval differ (obs/interval.hpp) ------------------------------------

// Helpers: the differ's advance() takes any Snapshot, so these tests feed
// the live registry and pull through obs::registry().snapshot() — the same
// path the serving layer uses.

TEST_F(MetricsTest, IntervalDifferFirstPullHasZeroInterval) {
  obs::Counter c{"test.iv.first"};
  c.add(7);
  obs::IntervalDiffer differ;
  const auto d = differ.advance(obs::registry().snapshot(), 1'000'000);
  // First pull: no previous timestamp to rate against, but the deltas are
  // "everything so far" — the counter shows up with per_s pinned to 0.
  EXPECT_EQ(d.interval_s, 0.0);
  ASSERT_EQ(d.counters.size(), 1u);
  EXPECT_EQ(d.counters[0].name, "test.iv.first");
  EXPECT_EQ(d.counters[0].delta, 7u);
  EXPECT_EQ(d.counters[0].per_s, 0.0);
}

TEST_F(MetricsTest, IntervalDifferRatesAndOmitsIdleCounters) {
  obs::Counter busy{"test.iv.busy"};
  obs::Counter idle{"test.iv.idle"};
  busy.add(10);
  idle.add(5);
  obs::IntervalDiffer differ;
  (void)differ.advance(obs::registry().snapshot(), 1'000'000);

  busy.add(30);  // idle stays put
  const auto d = differ.advance(obs::registry().snapshot(), 3'000'000);
  EXPECT_DOUBLE_EQ(d.interval_s, 2.0);
  ASSERT_EQ(d.counters.size(), 1u) << "idle counter must be omitted";
  EXPECT_EQ(d.counters[0].name, "test.iv.busy");
  EXPECT_EQ(d.counters[0].delta, 30u);
  EXPECT_DOUBLE_EQ(d.counters[0].per_s, 15.0);
}

TEST_F(MetricsTest, IntervalDifferGaugesReportLevelAndMovement) {
  // The live registry also carries the inventory's gauges, so pick ours
  // out by name — its presence alongside them is part of what's tested.
  const auto find = [](const obs::SnapshotDelta& d)
      -> const obs::SnapshotDelta::GaugeValue* {
    for (const auto& g : d.gauges) {
      if (g.name == "test.iv.gauge") return &g;
    }
    return nullptr;
  };

  obs::Gauge g{"test.iv.gauge"};
  g.set(100);
  obs::IntervalDiffer differ;
  auto d = differ.advance(obs::registry().snapshot(), 1'000'000);
  const auto* gv = find(d);
  ASSERT_NE(gv, nullptr);
  EXPECT_EQ(gv->value, 100);
  EXPECT_EQ(gv->delta, 100);  // vs implicit zero before first pull

  g.add(-40);
  d = differ.advance(obs::registry().snapshot(), 2'000'000);
  gv = find(d);
  // Gauges are levels, not events: reported every pull, even unchanged.
  ASSERT_NE(gv, nullptr);
  EXPECT_EQ(gv->value, 60);
  EXPECT_EQ(gv->delta, -40);

  d = differ.advance(obs::registry().snapshot(), 3'000'000);
  gv = find(d);
  ASSERT_NE(gv, nullptr);
  EXPECT_EQ(gv->value, 60);
  EXPECT_EQ(gv->delta, 0);
}

TEST_F(MetricsTest, IntervalDifferHistogramQuantilesForgetOldLoad) {
  obs::Histogram h{"test.iv.hist"};
  // First era: a thousand fast samples dominate the cumulative quantile.
  for (int i = 0; i < 1000; ++i) h.record(4);
  obs::IntervalDiffer differ;
  (void)differ.advance(obs::registry().snapshot(), 1'000'000);

  // Second era: only slow samples. The *interval* p50 must see just these.
  for (int i = 0; i < 10; ++i) h.record(5000);
  const auto d = differ.advance(obs::registry().snapshot(), 2'000'000);
  ASSERT_EQ(d.histograms.size(), 1u);
  EXPECT_EQ(d.histograms[0].count_delta, 10u);
  EXPECT_GT(d.histograms[0].interval_p50, 1000.0)
      << "interval quantile still remembers the old fast samples";
  // The cumulative p50 barely moved (10 of 1010 samples), and the drift
  // field reports that movement, not the interval's own level.
  EXPECT_LT(d.histograms[0].cum_p50_drift, 100.0);
  EXPECT_GE(d.histograms[0].cum_p50_drift, 0.0);
}

TEST_F(MetricsTest, IntervalDifferOmitsQuietHistograms) {
  obs::Histogram h{"test.iv.quiet"};
  h.record(10);
  obs::IntervalDiffer differ;
  (void)differ.advance(obs::registry().snapshot(), 1'000'000);
  const auto d = differ.advance(obs::registry().snapshot(), 2'000'000);
  EXPECT_TRUE(d.histograms.empty());
}

TEST_F(MetricsTest, IntervalDifferSurvivesRegistryReset) {
  obs::Counter c{"test.iv.rewind"};
  c.add(1000);
  obs::IntervalDiffer differ;
  (void)differ.advance(obs::registry().snapshot(), 1'000'000);

  // A reset between pulls rewinds every cumulative value. The differ must
  // report "everything since the reset", never an underflowed delta.
  obs::registry().reset();
  c.add(3);
  const auto d = differ.advance(obs::registry().snapshot(), 2'000'000);
  ASSERT_EQ(d.counters.size(), 1u);
  EXPECT_EQ(d.counters[0].delta, 3u);
}

TEST_F(MetricsTest, IntervalDeltaJsonIsBalancedAndEscaped) {
  obs::Counter c{"test.iv.json\"quote"};
  obs::Gauge g{"test.iv.json.gauge"};
  obs::Histogram h{"test.iv.json.hist"};
  c.add(2);
  g.set(-5);
  h.record(300);
  obs::IntervalDiffer differ;
  const auto d = differ.advance(obs::registry().snapshot(), 1'000'000);

  std::ostringstream os;
  d.write_json(os);
  const std::string out = os.str();
  std::int64_t braces = 0, brackets = 0;
  for (char ch : out) {
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(out.find("\"interval_s\":"), std::string::npos);
  EXPECT_NE(out.find("test.iv.json\\\"quote"), std::string::npos);
  EXPECT_NE(out.find("\"value\":-5"), std::string::npos);
  EXPECT_NE(out.find("\"count_delta\":1"), std::string::npos);
}

}  // namespace
