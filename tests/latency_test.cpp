// latency_test.cpp — unit tests of the HdrHistogram-lite latency histogram
// (bucket geometry, bounded relative error, interpolated quantiles, merge)
// and of the harness' per-op latency protocol down to the JSON cells the
// perf gate consumes.
#include "obs/latency.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "harness/report.hpp"
#include "harness/runner.hpp"

namespace obs = cachetrie::obs;
namespace harness = cachetrie::harness;
using obs::LatencyHistogram;

namespace {

// --- bucket geometry -------------------------------------------------------

TEST(LatencyBuckets, BucketsPartitionTheRange) {
  // Every bucket's first and last value map back into it, and bucket b+1
  // starts exactly after bucket b ends — no gaps, no overlaps.
  for (std::size_t b = 0; b + 1 < LatencyHistogram::kBuckets; ++b) {
    const std::uint64_t lo = LatencyHistogram::lower_of(b);
    const std::uint64_t w = LatencyHistogram::width_of(b);
    EXPECT_EQ(LatencyHistogram::index_of(lo), b);
    EXPECT_EQ(LatencyHistogram::index_of(lo + w - 1), b);
    EXPECT_EQ(LatencyHistogram::lower_of(b + 1), lo + w);
  }
  EXPECT_EQ(LatencyHistogram::index_of(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyBuckets, RelativeErrorIsBoundedBySixteenth) {
  // The whole point of 16 sub-buckets per power of two: a value's bucket
  // lower bound is within v/16 of v at every magnitude.
  for (std::uint64_t v = 1; v < (1ull << 40); v = v * 3 + 7) {
    const std::size_t b = LatencyHistogram::index_of(v);
    const std::uint64_t lo = LatencyHistogram::lower_of(b);
    ASSERT_LE(lo, v);
    ASSERT_LE(v - lo, v / 16 + 1) << "v=" << v;
  }
}

// --- recording and quantiles -----------------------------------------------

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.max_value(), 31u);
  EXPECT_DOUBLE_EQ(h.mean(), 15.5);
  // Unit buckets: the quantile of the k-th value is the value itself.
  EXPECT_DOUBLE_EQ(h.quantile(1.0 / 32.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 31.0);
}

TEST(LatencyHistogramTest, QuantilesOfUniformRangeAreWithinBucketError) {
  LatencyHistogram h;
  constexpr std::uint64_t kN = 100000;
  for (std::uint64_t v = 1; v <= kN; ++v) h.record(v);
  EXPECT_EQ(h.count(), kN);
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    const double q = h.quantile(p);
    const double exact = p * static_cast<double>(kN);
    EXPECT_NEAR(q, exact, exact / 16.0 + 1.0) << "p=" << p;
  }
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_LE(h.quantile(0.99), h.quantile(0.999));
}

TEST(LatencyHistogramTest, MergeIsLossless) {
  LatencyHistogram a, b, both;
  for (std::uint64_t v = 1; v <= 5000; ++v) {
    (v % 2 ? a : b).record(v * 7);
    both.record(v * 7);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.max_value(), both.max_value());
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  for (double p : {0.1, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(p), both.quantile(p)) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, ResetZeroes) {
  LatencyHistogram h;
  h.record(12345);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

// --- harness protocol ------------------------------------------------------

TEST(MeasureLatency, SummarizesPassesWithOrderedQuantiles) {
  volatile std::uint64_t sink = 0;
  const auto ls = harness::measure_latency(
      [&](std::uint64_t i) {
        // A little per-op work so latencies are nonzero and i-dependent.
        std::uint64_t acc = i;
        for (int r = 0; r < 8; ++r) acc = acc * 6364136223846793005ull + r;
        sink = acc;
      },
      /*ops=*/5000, /*passes=*/3);
  EXPECT_EQ(ls.ops_per_pass, 5000u);
  EXPECT_EQ(ls.passes, 3u);
  EXPECT_GT(ls.p50.mean_ns, 0.0);
  EXPECT_LE(ls.p50.mean_ns, ls.p90.mean_ns);
  EXPECT_LE(ls.p90.mean_ns, ls.p99.mean_ns);
  EXPECT_LE(ls.p99.mean_ns, ls.p999.mean_ns);
  for (const auto* q : {&ls.p50, &ls.p90, &ls.p99, &ls.p999}) {
    EXPECT_GE(q->stddev_ns, 0.0);
    EXPECT_LE(q->min_ns, q->mean_ns);
    EXPECT_GE(q->max_ns, q->mean_ns);
  }
}

TEST(MeasureLatency, ReportCellsCarryStatAndUnitParams) {
  harness::LatencySummary ls;
  ls.p50 = {100.0, 1.0, 99.0, 101.0};
  ls.p90 = {200.0, 2.0, 198.0, 202.0};
  ls.p99 = {300.0, 3.0, 297.0, 303.0};
  ls.p999 = {400.0, 4.0, 396.0, 404.0};
  ls.ops_per_pass = 1234;
  ls.passes = 3;

  harness::BenchReport report{"latency_unit"};
  report.add_latency("cachetrie", {{"op", "lookup_latency"}, {"n", "1234"}},
                     ls);
  std::ostringstream os;
  report.write_json(os);
  const std::string out = os.str();

  for (const char* stat : {"p50", "p90", "p99", "p999"}) {
    EXPECT_NE(out.find("\"stat\":\"" + std::string(stat) + "\""),
              std::string::npos)
        << stat;
  }
  EXPECT_NE(out.find("\"unit\":\"ns\""), std::string::npos);
  EXPECT_NE(out.find("\"mean_ms\":300"), std::string::npos);  // p99 in ns
  EXPECT_NE(out.find("\"ops_per_rep\":1234"), std::string::npos);
  std::int64_t braces = 0, brackets = 0;
  for (char ch : out) {
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
