// remove_if_equals_test — edge cases of the conditional removal protocol.
//
// remove_if_equals(k, expected) must remove iff the key is present AND its
// current value equals the comparand, atomically. The interesting cases are
// the ones a naive lookup-then-remove implementation gets wrong: stale
// comparands, races against plain remove, and probes of keys that were
// never present (including after compression has restructured the path the
// probe walks).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "cachetrie/cache_trie.hpp"

namespace {

using Trie = cachetrie::CacheTrie<std::uint64_t, std::uint64_t>;

TEST(RemoveIfEquals, MismatchedExpectedLeavesKeyUntouched) {
  Trie trie;
  ASSERT_TRUE(trie.insert(7, 42));
  EXPECT_FALSE(trie.remove_if_equals(7, 41));
  EXPECT_FALSE(trie.remove_if_equals(7, 43));
  EXPECT_EQ(trie.lookup(7), std::optional<std::uint64_t>(42));
  EXPECT_TRUE(trie.remove_if_equals(7, 42));
  EXPECT_FALSE(trie.lookup(7).has_value());
  // The key is gone; the old comparand must not remove anything now.
  EXPECT_FALSE(trie.remove_if_equals(7, 42));
  {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
}

TEST(RemoveIfEquals, StaleComparandAfterReplace) {
  Trie trie;
  ASSERT_TRUE(trie.insert(3, 1));
  ASSERT_TRUE(trie.replace(3, 2));
  EXPECT_FALSE(trie.remove_if_equals(3, 1));  // observed before the replace
  EXPECT_TRUE(trie.remove_if_equals(3, 2));
  EXPECT_FALSE(trie.lookup(3).has_value());
}

TEST(RemoveIfEquals, NeverInsertedKeyIsANoOp) {
  Trie trie;
  EXPECT_FALSE(trie.remove_if_equals(123, 0));
  for (std::uint64_t k = 0; k < 32; ++k) trie.insert(k, k);
  EXPECT_FALSE(trie.remove_if_equals(999, 999));
  {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
}

TEST(RemoveIfEquals, NeverInsertedKeyAfterCompression) {
  // Fill a region of the trie, drain it so remove()'s compression collapses
  // the emptied ANodes, then probe keys that never existed: the probe walks
  // the restructured (shortened) path and must still answer false without
  // disturbing anything.
  Trie trie;
  constexpr std::uint64_t kKeys = 512;
  for (std::uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(trie.insert(k, k));
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(trie.remove(k).has_value());
  }
  {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_FALSE(trie.remove_if_equals(k, k)) << "key " << k;
    EXPECT_FALSE(trie.remove_if_equals(k + kKeys, k)) << "key " << k + kKeys;
  }
  {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
}

TEST(RemoveIfEquals, RacingRemoveVsRemoveIfEqualsExactlyOneWins) {
  // For each round, one plain remove races one remove_if_equals with the
  // correct comparand. Exactly one of them may claim the key.
  Trie trie;
  constexpr int kRounds = 2000;
  constexpr std::uint64_t kKey = 5;
  std::atomic<int> round_ready{0};
  std::atomic<int> wins_remove{0};
  std::atomic<int> wins_cond{0};

  for (int r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(trie.insert(kKey, static_cast<std::uint64_t>(r)));
    round_ready.store(0, std::memory_order_release);
    std::thread a([&] {
      round_ready.fetch_add(1, std::memory_order_acq_rel);
      while (round_ready.load(std::memory_order_acquire) < 2) {
      }
      if (trie.remove(kKey).has_value()) {
        wins_remove.fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::thread b([&] {
      round_ready.fetch_add(1, std::memory_order_acq_rel);
      while (round_ready.load(std::memory_order_acquire) < 2) {
      }
      if (trie.remove_if_equals(kKey, static_cast<std::uint64_t>(r))) {
        wins_cond.fetch_add(1, std::memory_order_relaxed);
      }
    });
    a.join();
    b.join();
    ASSERT_FALSE(trie.lookup(kKey).has_value()) << "round " << r;
    ASSERT_EQ(wins_remove.load() + wins_cond.load(), r + 1) << "round " << r;
  }
  {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
}

TEST(RemoveIfEquals, RacingTwoConditionalRemovesExactlyOneWins) {
  Trie trie;
  constexpr int kRounds = 2000;
  constexpr std::uint64_t kKey = 11;
  std::atomic<int> round_ready{0};
  std::atomic<int> wins{0};

  for (int r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(trie.insert(kKey, 77));
    round_ready.store(0, std::memory_order_release);
    auto contender = [&] {
      round_ready.fetch_add(1, std::memory_order_acq_rel);
      while (round_ready.load(std::memory_order_acquire) < 2) {
      }
      if (trie.remove_if_equals(kKey, 77)) {
        wins.fetch_add(1, std::memory_order_relaxed);
      }
    };
    std::thread a(contender);
    std::thread b(contender);
    a.join();
    b.join();
    ASSERT_EQ(wins.load(), r + 1) << "round " << r;
  }
  {
    auto issues = trie.debug_validate();
    EXPECT_TRUE(issues.empty()) << issues.front();
  }
}

}  // namespace
