// ctrie_test.cpp — functional, invariant and concurrency tests for the
// Ctrie baseline (I-node trie with entomb/contract removal).
#include <gtest/gtest.h>

#include <barrier>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ctrie/ctrie.hpp"
#include "util/rng.hpp"

namespace {

using cachetrie::ctrie::Ctrie;

TEST(Ctrie, EmptyLookups) {
  Ctrie<int, int> map;
  EXPECT_FALSE(map.lookup(1).has_value());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.remove(1).has_value());
}

TEST(Ctrie, InsertLookupRemoveRoundTrip) {
  Ctrie<int, std::string> map;
  EXPECT_TRUE(map.insert(1, "one"));
  EXPECT_TRUE(map.insert(2, "two"));
  EXPECT_FALSE(map.insert(1, "uno"));  // replace
  EXPECT_EQ(map.lookup(1).value(), "uno");
  EXPECT_EQ(map.lookup(2).value(), "two");
  auto removed = map.remove(1);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, "uno");
  EXPECT_FALSE(map.contains(1));
  EXPECT_EQ(map.size(), 1u);
}

TEST(Ctrie, PutIfAbsent) {
  Ctrie<int, int> map;
  EXPECT_TRUE(map.put_if_absent(1, 10));
  EXPECT_FALSE(map.put_if_absent(1, 11));
  EXPECT_EQ(map.lookup(1).value(), 10);
}

TEST(Ctrie, PutIfAbsentOnCollisionChain) {
  Ctrie<int, int, cachetrie::util::DegradedHash<0>> map;
  map.insert(1, 10);
  map.insert(2, 20);
  EXPECT_FALSE(map.put_if_absent(1, 99));
  EXPECT_TRUE(map.put_if_absent(3, 30));
  EXPECT_EQ(map.lookup(1).value(), 10);
  EXPECT_EQ(map.lookup(3).value(), 30);
}

TEST(CtrieConcurrent, PutIfAbsentOneWinner) {
  Ctrie<int, int> map;
  constexpr int kThreads = 8;
  constexpr int kKeys = 5000;
  std::atomic<int> wins{0};
  std::barrier start{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      int local = 0;
      for (int i = 0; i < kKeys; ++i) {
        if (map.put_if_absent(i, t)) ++local;
      }
      wins.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
}

TEST(Ctrie, ManyKeys) {
  Ctrie<int, int> map;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(map.insert(i, i * 2));
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    auto v = map.lookup(i);
    ASSERT_TRUE(v.has_value()) << i;
    ASSERT_EQ(*v, i * 2);
  }
  auto issues = map.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(Ctrie, RemoveAllContractsTrie) {
  Ctrie<int, int> map;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) map.insert(i, i);
  for (int i = 0; i < kN; ++i) {
    auto removed = map.remove(i);
    ASSERT_TRUE(removed.has_value()) << i;
  }
  EXPECT_EQ(map.size(), 0u);
  auto issues = map.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
  // After full removal the trie must have contracted: footprint back to a
  // near-empty structure.
  EXPECT_LT(map.footprint_bytes(), 4096u);
}

TEST(Ctrie, MixedChurnMatchesReference) {
  Ctrie<std::uint64_t, std::uint64_t> map;
  std::map<std::uint64_t, std::uint64_t> ref;
  cachetrie::util::XorShift64Star rng{4242};
  for (int step = 0; step < 150000; ++step) {
    const std::uint64_t key = rng.next_below(4000);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const bool was_new = map.insert(key, step);
        ASSERT_EQ(was_new, ref.find(key) == ref.end());
        ref[key] = static_cast<std::uint64_t>(step);
        break;
      }
      case 2: {
        const auto got = map.lookup(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got.has_value(), it != ref.end());
        if (got.has_value()) {
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
      case 3: {
        const auto removed = map.remove(key);
        const auto it = ref.find(key);
        ASSERT_EQ(removed.has_value(), it != ref.end());
        if (it != ref.end()) ref.erase(it);
        break;
      }
    }
  }
  EXPECT_EQ(map.size(), ref.size());
  auto issues = map.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(Ctrie, FullHashCollisionsUseChains) {
  Ctrie<int, int, cachetrie::util::DegradedHash<0>> map;  // all hashes == 0
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(map.insert(i, i + 1));
  EXPECT_EQ(map.size(), 100u);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(map.lookup(i).value(), i + 1);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(map.remove(i).has_value());
  EXPECT_EQ(map.size(), 0u);
}

TEST(Ctrie, DegradedHashDeepPaths) {
  Ctrie<int, int, cachetrie::util::DegradedHash<12>> map;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(map.insert(i, i));
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(map.contains(i));
  for (int i = 0; i < kN; i += 2) ASSERT_TRUE(map.remove(i).has_value());
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(map.contains(i), i % 2 == 1) << i;
  }
  auto issues = map.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CtrieConcurrent, DisjointInserts) {
  Ctrie<int, int> map;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 15000;
  std::barrier start{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(map.insert(t * kPerThread + i, i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (int k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_TRUE(map.contains(k)) << k;
  }
  auto issues = map.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CtrieConcurrent, ContendedInsertRemoveChurn) {
  Ctrie<int, int> map;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1500;
  constexpr int kOps = 40000;
  std::vector<std::vector<bool>> present(kThreads,
                                         std::vector<bool>(kPerThread));
  std::barrier start{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      cachetrie::util::XorShift64Star rng{static_cast<std::uint64_t>(t) + 9};
      auto& mine = present[t];
      for (int op = 0; op < kOps; ++op) {
        const int idx = static_cast<int>(rng.next_below(kPerThread));
        const int key = t * kPerThread + idx;
        if (rng.next_below(2) == 0) {
          ASSERT_EQ(map.insert(key, key), !mine[idx]);
          mine[idx] = true;
        } else {
          ASSERT_EQ(map.remove(key).has_value(), mine[idx]);
          mine[idx] = false;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(map.contains(t * kPerThread + i), present[t][i]);
    }
  }
  auto issues = map.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CtrieConcurrent, RemoveContractionUnderContention) {
  // Heavy simultaneous removals on narrow hash space force entomb/contract
  // races (the clean/cleanParent paths).
  Ctrie<int, int, cachetrie::util::DegradedHash<14>> map;
  constexpr int kThreads = 8;
  constexpr int kKeys = 8000;
  for (int k = 0; k < kKeys; ++k) map.insert(k, k);
  std::atomic<int> removed{0};
  std::barrier start{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      start.arrive_and_wait();
      int local = 0;
      for (int k = 0; k < kKeys; ++k) {
        if (map.remove(k).has_value()) ++local;
      }
      removed.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(removed.load(), kKeys);
  EXPECT_EQ(map.size(), 0u);
  auto issues = map.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

}  // namespace
