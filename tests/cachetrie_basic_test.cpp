// cachetrie_basic_test.cpp — single-threaded functional tests of the
// cache-trie public API: insert/lookup/remove, upsert semantics,
// put_if_absent/replace, traversal, and structural invariants.
#include <gtest/gtest.h>

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/lsan_interface.h>
#endif

#include <map>
#include <string>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "mr/leak.hpp"
#include "util/rng.hpp"

namespace {

using cachetrie::CacheTrie;
using cachetrie::Config;

TEST(CacheTrieBasic, EmptyTrie) {
  CacheTrie<int, int> trie;
  EXPECT_FALSE(trie.lookup(42).has_value());
  EXPECT_FALSE(trie.contains(0));
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.remove(42).has_value());
  EXPECT_TRUE(trie.debug_validate().empty());
}

TEST(CacheTrieBasic, SingleInsertLookup) {
  CacheTrie<int, std::string> trie;
  EXPECT_TRUE(trie.insert(1, "one"));
  auto v = trie.lookup(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  EXPECT_FALSE(trie.lookup(2).has_value());
  EXPECT_EQ(trie.size(), 1u);
}

TEST(CacheTrieBasic, InsertReplacesExisting) {
  CacheTrie<int, int> trie;
  EXPECT_TRUE(trie.insert(7, 70));
  EXPECT_FALSE(trie.insert(7, 71));  // same key: replaced, not new
  EXPECT_EQ(trie.lookup(7).value(), 71);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(CacheTrieBasic, PutIfAbsent) {
  CacheTrie<int, int> trie;
  EXPECT_TRUE(trie.put_if_absent(3, 30));
  EXPECT_FALSE(trie.put_if_absent(3, 31));
  EXPECT_EQ(trie.lookup(3).value(), 30);
}

TEST(CacheTrieBasic, ReplaceOnlyWhenPresent) {
  CacheTrie<int, int> trie;
  EXPECT_FALSE(trie.replace(5, 50));
  EXPECT_FALSE(trie.contains(5));
  trie.insert(5, 50);
  EXPECT_TRUE(trie.replace(5, 51));
  EXPECT_EQ(trie.lookup(5).value(), 51);
}

TEST(CacheTrieBasic, ReplaceIfEquals) {
  CacheTrie<int, int> trie;
  EXPECT_FALSE(trie.replace_if_equals(1, 10, 11));  // absent
  trie.insert(1, 10);
  EXPECT_FALSE(trie.replace_if_equals(1, 99, 11));  // wrong expected value
  EXPECT_EQ(trie.lookup(1).value(), 10);
  EXPECT_TRUE(trie.replace_if_equals(1, 10, 11));
  EXPECT_EQ(trie.lookup(1).value(), 11);
}

TEST(CacheTrieBasic, ReplaceIfEqualsOnCollisionChain) {
  CacheTrie<int, int, cachetrie::util::DegradedHash<0>> trie;  // one chain
  trie.insert(1, 10);
  trie.insert(2, 20);
  EXPECT_TRUE(trie.replace_if_equals(2, 20, 21));
  EXPECT_FALSE(trie.replace_if_equals(2, 20, 22));
  EXPECT_EQ(trie.lookup(2).value(), 21);
  EXPECT_EQ(trie.lookup(1).value(), 10);
}

TEST(CacheTrieBasic, RemoveIfEquals) {
  CacheTrie<int, int> trie;
  EXPECT_FALSE(trie.remove_if_equals(4, 40));  // absent
  trie.insert(4, 40);
  EXPECT_FALSE(trie.remove_if_equals(4, 41));  // wrong value
  EXPECT_TRUE(trie.contains(4));
  EXPECT_TRUE(trie.remove_if_equals(4, 40));
  EXPECT_FALSE(trie.contains(4));
}

TEST(CacheTrieBasic, RemoveIfEqualsOnCollisionChain) {
  CacheTrie<int, int, cachetrie::util::DegradedHash<0>> trie;
  trie.insert(1, 10);
  trie.insert(2, 20);
  trie.insert(3, 30);
  EXPECT_FALSE(trie.remove_if_equals(2, 99));
  EXPECT_TRUE(trie.remove_if_equals(2, 20));
  EXPECT_FALSE(trie.contains(2));
  EXPECT_EQ(trie.size(), 2u);
}

TEST(CacheTrieBasic, GetOrInsertWith) {
  CacheTrie<int, std::string> trie;
  int calls = 0;
  const auto v1 = trie.get_or_insert_with(5, [&] {
    ++calls;
    return std::string{"computed"};
  });
  EXPECT_EQ(v1, "computed");
  EXPECT_EQ(calls, 1);
  const auto v2 = trie.get_or_insert_with(5, [&] {
    ++calls;
    return std::string{"recomputed"};
  });
  EXPECT_EQ(v2, "computed");  // already present: factory not used
  EXPECT_EQ(calls, 1);
}

TEST(CacheTrieBasic, RemoveReturnsValue) {
  CacheTrie<int, int> trie;
  trie.insert(9, 90);
  auto removed = trie.remove(9);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 90);
  EXPECT_FALSE(trie.contains(9));
  EXPECT_FALSE(trie.remove(9).has_value());
}

TEST(CacheTrieBasic, ManyKeysRoundTrip) {
  CacheTrie<int, int> trie;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(trie.insert(i, i * 2));
  }
  EXPECT_EQ(trie.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    auto v = trie.lookup(i);
    ASSERT_TRUE(v.has_value()) << "missing key " << i;
    ASSERT_EQ(*v, i * 2);
  }
  EXPECT_FALSE(trie.lookup(kN).has_value());
  auto issues = trie.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CacheTrieBasic, InsertThenRemoveAll) {
  CacheTrie<int, int> trie;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) trie.insert(i, i);
  for (int i = 0; i < kN; ++i) {
    auto removed = trie.remove(i);
    ASSERT_TRUE(removed.has_value()) << "missing key " << i;
    ASSERT_EQ(*removed, i);
  }
  EXPECT_EQ(trie.size(), 0u);
  auto issues = trie.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CacheTrieBasic, MixedChurnMatchesReferenceMap) {
  CacheTrie<std::uint64_t, std::uint64_t> trie;
  std::map<std::uint64_t, std::uint64_t> ref;
  cachetrie::util::XorShift64Star rng{12345};
  for (int step = 0; step < 200000; ++step) {
    const std::uint64_t key = rng.next_below(5000);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const bool was_new = trie.insert(key, step);
        EXPECT_EQ(was_new, ref.find(key) == ref.end());
        ref[key] = static_cast<std::uint64_t>(step);
        break;
      }
      case 2: {
        const auto got = trie.lookup(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got.has_value(), it != ref.end());
        if (got.has_value()) {
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
      case 3: {
        const auto removed = trie.remove(key);
        const auto it = ref.find(key);
        ASSERT_EQ(removed.has_value(), it != ref.end());
        if (it != ref.end()) {
          ASSERT_EQ(*removed, it->second);
          ref.erase(it);
        }
        break;
      }
    }
  }
  EXPECT_EQ(trie.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto got = trie.lookup(k);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, v);
  }
  auto issues = trie.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CacheTrieBasic, StringKeys) {
  CacheTrie<std::string, int> trie;
  EXPECT_TRUE(trie.insert("alpha", 1));
  EXPECT_TRUE(trie.insert("beta", 2));
  EXPECT_FALSE(trie.insert("alpha", 3));
  EXPECT_EQ(trie.lookup("alpha").value(), 3);
  EXPECT_EQ(trie.lookup("beta").value(), 2);
  EXPECT_FALSE(trie.lookup("gamma").has_value());
}

TEST(CacheTrieBasic, ForEachVisitsAllPairs) {
  CacheTrie<int, int> trie;
  for (int i = 0; i < 1000; ++i) trie.insert(i, i + 1);
  std::map<int, int> seen;
  trie.for_each([&](const int& k, const int& v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(CacheTrieBasic, WithoutCacheVariant) {
  Config cfg;
  cfg.use_cache = false;
  CacheTrie<int, int> trie(cfg);
  for (int i = 0; i < 50000; ++i) trie.insert(i, i);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(trie.contains(i));
  }
  EXPECT_EQ(trie.cache_level(), -1);  // cache never created
}

TEST(CacheTrieBasic, CacheGetsCreatedOnDeepTries) {
  Config cfg;
  cfg.collect_stats = true;
  CacheTrie<int, int> trie(cfg);
  for (int i = 0; i < 200000; ++i) trie.insert(i, i);
  // Lookups drive cache creation and inhabitation.
  for (int i = 0; i < 200000; ++i) {
    ASSERT_TRUE(trie.contains(i));
  }
  EXPECT_GE(trie.cache_level(), 8);
}

TEST(CacheTrieBasic, LeakReclaimerVariantWorks) {
#if defined(__SANITIZE_ADDRESS__)
  // LeakReclaimer leaks by design; don't let LeakSanitizer flag it.
  __lsan_disable();
#endif
  CacheTrie<int, int, cachetrie::util::DefaultHash<int>,
            cachetrie::mr::LeakReclaimer>
      trie;
  for (int i = 0; i < 10000; ++i) trie.insert(i, i);
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(trie.contains(i));
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(trie.remove(i).has_value());
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_GT(cachetrie::mr::LeakReclaimer::leaked_count(), 0u);
#if defined(__SANITIZE_ADDRESS__)
  __lsan_enable();
#endif
}

TEST(CacheTrieBasic, FootprintGrowsWithContent) {
  CacheTrie<int, int> trie;
  const std::size_t empty_fp = trie.footprint_bytes();
  for (int i = 0; i < 10000; ++i) trie.insert(i, i);
  const std::size_t full_fp = trie.footprint_bytes();
  EXPECT_GT(full_fp, empty_fp);
  // At least one SNode per key.
  EXPECT_GE(full_fp, 10000 * sizeof(int) * 2);
}

TEST(CacheTrieBasic, LevelHistogramCountsAllKeys) {
  CacheTrie<int, int> trie;
  for (int i = 0; i < 30000; ++i) trie.insert(i, i);
  const auto hist = trie.level_histogram();
  EXPECT_EQ(hist.total, 30000u);
  std::uint64_t sum = 0;
  for (auto c : hist.counts) sum += c;
  EXPECT_EQ(sum, 30000u);
}

}  // namespace
