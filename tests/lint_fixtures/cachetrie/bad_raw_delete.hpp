// Fixture: raw delete on a protocol node outside a designated destroy
// helper and without a [delete: unpublished] tag is a finding. The rule
// applies because this path contains a protocol-node directory component.
#pragma once

namespace fixture {

struct Node {
  int k;
};

inline void unlink_loser(Node* n) {
  delete n;  // expect: smr.raw-delete
}

inline void destroy_node(Node* n) {
  delete n;  // clean: designated destroy helper
}

inline void cas_loser(Node* n) {
  delete n;  // [delete: unpublished] -- clean: node never published
}

}  // namespace fixture
