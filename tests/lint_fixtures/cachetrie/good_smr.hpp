// Fixture: the blessed SMR shapes -- designated make/destroy helpers,
// retire under a pinned guard, caller-pinned delegation, and a tagged
// loser-path delete. Must pass clean.
#pragma once

namespace fixture {

struct Reclaimer {
  struct Guard {};
  Guard pin();
  template <class T>
  void retire(T* p);
};

struct Node {
  int k;
};

inline Node* make_node(int k) { return new Node{k}; }

inline void destroy_node(Node* n) { delete n; }

// [smr: caller-pinned] -- the guard is held by the public entry point.
inline void retire_chain(Reclaimer& r, Node* n) { r.retire(n); }

inline void insert(Reclaimer& r, Node* old_node, int k) {
  auto g = r.pin();
  Node* fresh = make_node(k);
  r.retire(old_node);
  delete fresh;  // [delete: unpublished] -- lost the CAS, never published
  (void)g;
}

}  // namespace fixture
