// Fixture: protocol nodes are allocated by designated make helpers; a raw
// new elsewhere is a finding.
#pragma once

namespace fixture {

struct Node {
  int k;
};

inline Node* make_node(int k) {
  return new Node{k};  // clean: designated make helper
}

inline Node* insert_path(int k) {
  return new Node{k};  // expect: smr.raw-new
}

}  // namespace fixture
