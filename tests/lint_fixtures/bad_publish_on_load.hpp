// Fixture: a pure load can never be the release side of an edge.
#pragma once

#include <atomic>

#define CACHETRIE_ORDERING_EDGES(X) \
  X(FIX_LOAD, "fixture edge whose publish side is wrongly a load")

namespace fixture {

struct Box {
  std::atomic<int*> slot{nullptr};

  int* not_a_publish() {
    // [publishes: FIX_LOAD]
    // expect: contract.publish-on-load
    return slot.load(std::memory_order_acquire);
  }

  int* observe() {
    // [acquires: FIX_LOAD]
    return slot.load(std::memory_order_acquire);
  }
};

}  // namespace fixture
