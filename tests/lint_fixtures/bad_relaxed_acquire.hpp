// Fixture: a relaxed load cannot be the acquire side of an edge -- it
// synchronizes with nothing.
#pragma once

#include <atomic>

#define CACHETRIE_ORDERING_EDGES(X) \
  X(FIX_RLX, "fixture edge whose acquire side is wrongly relaxed")

namespace fixture {

struct Box {
  std::atomic<int*> slot{nullptr};

  void publish(int* p) {
    // [publishes: FIX_RLX]
    slot.store(p, std::memory_order_release);
  }

  int* observe() {
    // [acquires: FIX_RLX]
    // expect: contract.relaxed-acquire
    return slot.load(std::memory_order_relaxed);
  }
};

}  // namespace fixture
