// Fixture: a declared edge with one publish and one acquire site, bound
// within the annotation window -- must pass clean.
#pragma once

#include <atomic>

#define CACHETRIE_ORDERING_EDGES(X) \
  X(FIX_GOOD, "fixture edge: store(release) publishes, load(acquire) reads")

namespace fixture {

struct Box {
  std::atomic<int*> slot{nullptr};

  void publish(int* p) {
    // [publishes: FIX_GOOD]
    slot.store(p, std::memory_order_release);
  }

  int* observe() {
    // [acquires: FIX_GOOD]
    return slot.load(std::memory_order_acquire);
  }
};

}  // namespace fixture
