// Fixture: retire() is only safe while a reclaimer guard is pinned (or in
// a function carrying the caller-pinned annotation).
#pragma once

namespace fixture {

struct Reclaimer {
  struct Guard {};
  Guard pin();
  template <class T>
  void retire(T* p);
};

struct Node {
  int k;
};

inline void drop_node(Reclaimer& r, Node* n) {
  r.retire(n);  // expect: smr.retire-outside-guard
}

inline void drop_node_guarded(Reclaimer& r, Node* n) {
  auto g = r.pin();
  r.retire(n);  // clean: guard pinned in scope
  (void)g;
}

// [smr: caller-pinned] -- the guard is held by the public entry point.
inline void drop_node_caller_pinned(Reclaimer& r, Node* n) {
  r.retire(n);  // clean: annotation shifts the obligation to the caller
}

}  // namespace fixture
