// Fixture: annotations may only name edges declared in the
// CACHETRIE_ORDERING_EDGES table; this file declares none.
#pragma once

#include <atomic>

namespace fixture {

struct Box {
  std::atomic<int*> slot{nullptr};

  void publish(int* p) {
    // [publishes: NOT_IN_THE_TABLE]
    // expect: contract.unknown-edge
    slot.store(p, std::memory_order_release);
  }
};

}  // namespace fixture
