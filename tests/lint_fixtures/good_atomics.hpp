// Fixture: idiomatic atomics with every order spelled out -- must pass
// clean through all three rule families.
#pragma once

#include <atomic>

namespace fixture {

struct Counter {
  std::atomic<int> v{0};
  std::atomic<int*> slot{nullptr};

  int peek() const { return v.load(std::memory_order_relaxed); }

  void set(int x) { v.store(x, std::memory_order_release); }

  int bump() { return v.fetch_add(1, std::memory_order_acq_rel); }

  bool claim(int& e) {
    return v.compare_exchange_strong(e, 1, std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
  }

  bool claim_loop(int& e) {
    while (!v.compare_exchange_weak(e, e + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
    }
    return true;
  }

  void fence_pair() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
};

}  // namespace fixture
