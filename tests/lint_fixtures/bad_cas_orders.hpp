// Fixture: CAS must spell out BOTH the success and the failure order.
#pragma once

#include <atomic>

namespace fixture {

struct Claim {
  std::atomic<int> v{0};

  bool fully_defaulted(int& e) {
    return v.compare_exchange_strong(e, 1);  // expect: atomics.default-order
  }

  bool success_only(int& e) {
    // Naming just the success order still leaves the failure order
    // implementation-derived.
    return v.compare_exchange_weak(  // expect: atomics.cas-failure-order
        e, 1, std::memory_order_acq_rel);
  }

  bool both_orders(int& e) {
    // Fully spelled out -- clean.
    return v.compare_exchange_strong(e, 1, std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
  }
};

}  // namespace fixture
