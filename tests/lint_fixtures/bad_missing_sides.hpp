// Fixture: every declared edge needs at least one [publishes:] and one
// [acquires:] site. FIX_HALF has only a publish side; FIX_NONE has neither.
//
// expect: contract.missing-acquire
// expect: contract.missing-publish
// expect: contract.missing-acquire
#pragma once

#include <atomic>

#define CACHETRIE_ORDERING_EDGES(X)                            \
  X(FIX_HALF, "fixture edge with only a publish side")         \
  X(FIX_NONE, "fixture edge with no annotated sites at all")

namespace fixture {

struct Box {
  std::atomic<int*> slot{nullptr};

  void publish(int* p) {
    // [publishes: FIX_HALF]
    slot.store(p, std::memory_order_release);
  }
};

}  // namespace fixture
