// Fixture: a function under the no-retire helper contract must never
// retire -- its caller owns reclamation of everything it touches.
#pragma once

namespace fixture {

struct Reclaimer {
  struct Guard {};
  Guard pin();
  template <class T>
  void retire(T* p);
};

struct Node {
  int k;
};

// [helper: no-retire]
inline void compress_path(Reclaimer& r, Node* n) {
  auto g = r.pin();
  r.retire(n);  // expect: smr.helper-retires
  (void)g;
}

}  // namespace fixture
