// Fixture: a [publishes:]/[acquires:] tag must bind to an atomic op or
// fence on the same line or within the next three lines.
#pragma once

namespace fixture {

// [publishes: FIX_ORPHAN]
// expect: contract.orphan-annotation
int nothing_atomic_here();

}  // namespace fixture
