// Fixture: every defaulted memory order on a plain atomic op is a finding.
#pragma once

#include <atomic>

namespace fixture {

struct Flags {
  std::atomic<int> v{0};

  int peek() {
    return v.load();  // expect: atomics.default-order
  }

  void set(int x) {
    v.store(x);  // expect: atomics.default-order
  }

  int bump() {
    return v.fetch_add(1);  // expect: atomics.default-order
  }

  int swap(int x) {
    return v.exchange(x);  // expect: atomics.default-order
  }

  // Explicit order on the same methods is fine -- no finding here.
  int peek_explicit() { return v.load(std::memory_order_relaxed); }
};

}  // namespace fixture
