// cachetrie_property_test.cpp — parameterized property tests: for every
// point of the configuration matrix (cache on/off × compression on/off ×
// singleton collapsing on/off) and several hash-entropy regimes, a random
// operation sequence must behave exactly like a reference std::map, and the
// final structure must satisfy all quiescent invariants.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "cachetrie/cache_trie.hpp"
#include "util/rng.hpp"

namespace {

using cachetrie::CacheTrie;
using cachetrie::Config;

struct MatrixParam {
  bool use_cache;
  bool compress;
  bool compress_singletons;
  int hash_bits;  // 0 = full-entropy DefaultHash
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto& p = info.param;
  std::string s;
  s += p.use_cache ? "cache_" : "nocache_";
  s += p.compress ? "compress_" : "nocompress_";
  s += p.compress_singletons ? "hoist_" : "nohoist_";
  s += p.hash_bits == 0 ? "fullhash" : ("hash" + std::to_string(p.hash_bits));
  s += "_seed" + std::to_string(p.seed);
  return s;
}

class ConfigMatrix : public ::testing::TestWithParam<MatrixParam> {};

template <typename Trie>
void run_oracle_sequence(Trie& trie, std::uint64_t seed, int steps,
                         std::uint64_t key_space) {
  std::map<std::uint64_t, std::uint64_t> ref;
  cachetrie::util::XorShift64Star rng{seed};
  for (int step = 0; step < steps; ++step) {
    const std::uint64_t key = rng.next_below(key_space);
    switch (rng.next_below(6)) {
      case 0:
      case 1: {  // upsert
        ASSERT_EQ(trie.insert(key, step), ref.find(key) == ref.end());
        ref[key] = static_cast<std::uint64_t>(step);
        break;
      }
      case 2: {  // put_if_absent
        const bool inserted = trie.put_if_absent(key, step);
        ASSERT_EQ(inserted, ref.find(key) == ref.end());
        if (inserted) ref[key] = static_cast<std::uint64_t>(step);
        break;
      }
      case 3: {  // replace
        const bool replaced = trie.replace(key, step);
        ASSERT_EQ(replaced, ref.find(key) != ref.end());
        if (replaced) ref[key] = static_cast<std::uint64_t>(step);
        break;
      }
      case 4: {  // lookup
        const auto got = trie.lookup(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got.has_value(), it != ref.end());
        if (got.has_value()) {
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
      case 5: {  // remove
        const auto removed = trie.remove(key);
        const auto it = ref.find(key);
        ASSERT_EQ(removed.has_value(), it != ref.end());
        if (it != ref.end()) {
          ASSERT_EQ(*removed, it->second);
          ref.erase(it);
        }
        break;
      }
    }
  }
  ASSERT_EQ(trie.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const auto got = trie.lookup(k);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, v);
  }
  const auto issues = trie.debug_validate();
  ASSERT_TRUE(issues.empty()) << issues.front();
}

TEST_P(ConfigMatrix, OracleSequence) {
  const auto& p = GetParam();
  Config cfg;
  cfg.use_cache = p.use_cache;
  cfg.compress = p.compress;
  cfg.compress_singletons = p.compress_singletons;
  cfg.max_misses = 32;  // exercise sampling/adjustment aggressively
  constexpr int kSteps = 60000;
  constexpr std::uint64_t kKeySpace = 2500;
  switch (p.hash_bits) {
    case 0: {
      CacheTrie<std::uint64_t, std::uint64_t> trie(cfg);
      run_oracle_sequence(trie, p.seed, kSteps, kKeySpace);
      break;
    }
    case 8: {
      // 8-bit hashes: every key collides heavily; LNode chains everywhere.
      CacheTrie<std::uint64_t, std::uint64_t,
                cachetrie::util::DegradedHash<8>>
          trie(cfg);
      run_oracle_sequence(trie, p.seed, kSteps, kKeySpace);
      break;
    }
    case 16: {
      CacheTrie<std::uint64_t, std::uint64_t,
                cachetrie::util::DegradedHash<16>>
          trie(cfg);
      run_oracle_sequence(trie, p.seed, kSteps, kKeySpace);
      break;
    }
    default:
      FAIL() << "unknown hash_bits";
  }
}

std::vector<MatrixParam> matrix_points() {
  std::vector<MatrixParam> points;
  for (bool cache : {false, true}) {
    for (bool compress : {false, true}) {
      for (bool hoist : {false, true}) {
        if (!compress && hoist) continue;  // hoisting implies compression
        for (int bits : {0, 8, 16}) {
          points.push_back(MatrixParam{cache, compress, hoist, bits, 11});
        }
      }
    }
  }
  // A couple of extra seeds on the full configuration.
  points.push_back(MatrixParam{true, true, true, 0, 22});
  points.push_back(MatrixParam{true, true, true, 8, 33});
  return points;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ConfigMatrix,
                         ::testing::ValuesIn(matrix_points()), param_name);

// Full-hash-collision torture: all keys in one LNode chain, all operations
// must still be exact.
TEST(CollisionProperty, EverythingInOneChain) {
  CacheTrie<std::uint64_t, std::uint64_t, cachetrie::util::DegradedHash<0>>
      trie;
  std::map<std::uint64_t, std::uint64_t> ref;
  cachetrie::util::XorShift64Star rng{5};
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.next_below(60);
    if (rng.next_below(2) == 0) {
      ASSERT_EQ(trie.insert(key, step), ref.find(key) == ref.end());
      ref[key] = static_cast<std::uint64_t>(step);
    } else {
      ASSERT_EQ(trie.remove(key).has_value(), ref.erase(key) == 1);
    }
  }
  ASSERT_EQ(trie.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_EQ(trie.lookup(k).value(), v);
  }
  ASSERT_TRUE(trie.debug_validate().empty());
}

}  // namespace
