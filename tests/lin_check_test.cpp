// lin_check_test — the testkit pointed at the real structures.
//
// For every map in the repo (cache-trie, its no-cache ablation, ctrie,
// chashmap, skip list) this runs >= 10k short multi-threaded histories
// spread over >= 8 chaos seeds, each history perturbed at the structures'
// CAS decision points, and feeds every recorded history through the
// Wing–Gong checker. Any non-linearizable interleaving fails the test and
// prints a reproducible trace (seed + history ordinal + per-key events).
//
// Compiled with CACHETRIE_TESTKIT=1 and labeled `slow` (run `ctest -L fast`
// to skip it during edit-compile loops).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "cachetrie/cache_trie.hpp"
#include "chashmap/chashmap.hpp"
#include "ctrie/ctrie.hpp"
#include "skiplist/skiplist.hpp"
#include "testkit/adapter.hpp"
#include "testkit/chaos.hpp"
#include "testkit/driver.hpp"

namespace tk = cachetrie::testkit;

static_assert(tk::kChaosCompiled,
              "lin_check_test must build with CACHETRIE_TESTKIT=1");

namespace {

constexpr std::uint64_t kSeeds = 8;
constexpr std::uint32_t kHistoriesPerSeed = 1250;  // 8 * 1250 = 10k total

/// Runs the full seed sweep against maps from `make`; fails loudly with the
/// reproduction trace on the first non-linearizable history.
template <typename Factory>
void sweep(Factory&& make, const char* what,
           std::uint64_t key_range = 6) {
  tk::DriverConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 12;
  cfg.key_range = key_range;
  cfg.histories = kHistoriesPerSeed;
  std::uint64_t total = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    cfg.seed = seed;
    auto result = tk::run_histories(make, cfg);
    ASSERT_FALSE(result.violation.has_value())
        << what << " produced a non-linearizable history\n"
        << result.trace;
    total += result.histories_checked;
  }
  EXPECT_GE(total, 10000u) << what;
}

TEST(LinSweep, CacheTrie) {
  using A = tk::MapAdapter<cachetrie::CacheTrie<std::uint64_t, std::uint64_t>>;
  tk::chaos::reset_counters();
  sweep([] { return std::make_unique<A>(); }, "cache-trie");
  // The perturbation actually reached the txn protocol's decision windows.
  EXPECT_GT(tk::chaos::site_hits("cachetrie.txn_announce"), 0u);
  EXPECT_GT(tk::chaos::totals().yields, 0u);
}

TEST(LinSweep, CacheTrieNoCacheAblation) {
  using A = tk::MapAdapter<cachetrie::CacheTrie<std::uint64_t, std::uint64_t>>;
  cachetrie::Config cfg;
  cfg.use_cache = false;
  sweep([cfg] { return std::make_unique<A>(cfg); }, "cache-trie (no cache)");
}

TEST(LinSweep, CacheTrieDeepCollidingPrefix) {
  // All keys share a 14-level hash prefix and diverge only in the top
  // byte: every history walks deep chains of narrow ANodes and the
  // divergence node overflows its 4 slots, so the ENode expansion +
  // freeze protocol runs constantly — under perturbation, with helpers.
  struct DeepPrefixHash {
    std::uint64_t operator()(const std::uint64_t& k) const noexcept {
      return (k << 56) | (0x00FFFFFFFFFFFFFFull >> 8);
    }
  };
  using A = tk::MapAdapter<
      cachetrie::CacheTrie<std::uint64_t, std::uint64_t, DeepPrefixHash>>;
  tk::chaos::reset_counters();
  sweep([] { return std::make_unique<A>(); }, "cache-trie (deep prefix)",
        /*key_range=*/16);
  EXPECT_GT(tk::chaos::site_hits("cachetrie.freeze_slot"), 0u);
  EXPECT_GT(tk::chaos::site_hits("cachetrie.enode_complete"), 0u);
}

TEST(LinSweep, Ctrie) {
  using A =
      tk::MapAdapter<cachetrie::ctrie::Ctrie<std::uint64_t, std::uint64_t>>;
  tk::chaos::reset_counters();
  sweep([] { return std::make_unique<A>(); }, "ctrie");
  EXPECT_GT(tk::chaos::site_hits("ctrie.gcas"), 0u);
}

TEST(LinSweep, Chashmap) {
  using A = tk::MapAdapter<
      cachetrie::chm::ConcurrentHashMap<std::uint64_t, std::uint64_t>>;
  tk::chaos::reset_counters();
  // 4 initial bins with 6 live keys: the incremental transfer (resize)
  // machinery runs in-history, not just at warm-up.
  sweep([] { return std::make_unique<A>(4); }, "chashmap");
  EXPECT_GT(tk::chaos::site_hits("chm.bin_locked"), 0u);
}

TEST(LinSweep, Skiplist) {
  using A = tk::MapAdapter<
      cachetrie::csl::ConcurrentSkipList<std::uint64_t, std::uint64_t>>;
  tk::chaos::reset_counters();
  sweep([] { return std::make_unique<A>(); }, "skip list");
  EXPECT_GT(tk::chaos::site_hits("csl.mark_bottom"), 0u);
}

}  // namespace
