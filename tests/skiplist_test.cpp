// skiplist_test.cpp — functional, ordering and concurrency tests for the
// lock-free skip list baseline.
#include <gtest/gtest.h>

#include <barrier>
#include <map>
#include <thread>
#include <vector>

#include "skiplist/skiplist.hpp"
#include "util/rng.hpp"

namespace {

using cachetrie::csl::ConcurrentSkipList;

TEST(SkipList, EmptyLookups) {
  ConcurrentSkipList<int, int> list;
  EXPECT_FALSE(list.lookup(1).has_value());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.remove(1).has_value());
}

TEST(SkipList, InsertLookupRemove) {
  ConcurrentSkipList<int, int> list;
  EXPECT_TRUE(list.insert(5, 50));
  EXPECT_TRUE(list.insert(3, 30));
  EXPECT_TRUE(list.insert(7, 70));
  EXPECT_FALSE(list.insert(5, 51));  // replace
  EXPECT_EQ(list.lookup(5).value(), 51);
  EXPECT_EQ(list.lookup(3).value(), 30);
  auto removed = list.remove(3);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 30);
  EXPECT_FALSE(list.contains(3));
  EXPECT_EQ(list.size(), 2u);
  auto issues = list.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(SkipList, PutIfAbsent) {
  ConcurrentSkipList<int, int> list;
  EXPECT_TRUE(list.put_if_absent(1, 10));
  EXPECT_FALSE(list.put_if_absent(1, 11));
  EXPECT_EQ(list.lookup(1).value(), 10);
}

TEST(SkipList, ManyKeysSortedTraversal) {
  ConcurrentSkipList<int, int> list;
  constexpr int kN = 50000;
  // Insert in a scrambled order; traversal must come out sorted.
  for (int i = 0; i < kN; ++i) {
    const int key = static_cast<int>((static_cast<std::uint64_t>(i) * 48271) %
                                     kN);
    list.insert(key, key);
  }
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kN));
  int prev = -1;
  list.for_each([&](const int& k, const int&) {
    EXPECT_GT(k, prev);
    prev = k;
  });
  auto issues = list.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(SkipList, RemoveAll) {
  ConcurrentSkipList<int, int> list;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) list.insert(i, i);
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(list.remove(i).has_value()) << i;
  }
  EXPECT_EQ(list.size(), 0u);
  EXPECT_LT(list.footprint_bytes(), 2048u);
}

TEST(SkipList, MixedChurnMatchesReference) {
  ConcurrentSkipList<std::uint64_t, std::uint64_t> list;
  std::map<std::uint64_t, std::uint64_t> ref;
  cachetrie::util::XorShift64Star rng{99};
  for (int step = 0; step < 100000; ++step) {
    const std::uint64_t key = rng.next_below(3000);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        ASSERT_EQ(list.insert(key, step), ref.find(key) == ref.end());
        ref[key] = static_cast<std::uint64_t>(step);
        break;
      }
      case 2: {
        const auto got = list.lookup(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got.has_value(), it != ref.end()) << key;
        if (got.has_value()) {
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
      case 3: {
        ASSERT_EQ(list.remove(key).has_value(), ref.erase(key) == 1);
        break;
      }
    }
  }
  EXPECT_EQ(list.size(), ref.size());
  auto issues = list.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(SkipListConcurrent, DisjointInserts) {
  ConcurrentSkipList<int, int> list;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::barrier start{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(list.insert(t * kPerThread + i, i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (int k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_TRUE(list.contains(k)) << k;
  }
  auto issues = list.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(SkipListConcurrent, ContendedRemoveOneWinner) {
  ConcurrentSkipList<int, int> list;
  constexpr int kThreads = 8;
  constexpr int kKeys = 5000;
  for (int k = 0; k < kKeys; ++k) list.insert(k, k);
  std::atomic<int> removed{0};
  std::barrier start{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      start.arrive_and_wait();
      int local = 0;
      for (int k = 0; k < kKeys; ++k) {
        if (list.remove(k).has_value()) ++local;
      }
      removed.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(removed.load(), kKeys);
  EXPECT_EQ(list.size(), 0u);
  auto issues = list.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(SkipListConcurrent, InsertRemoveChurnWithOwnership) {
  ConcurrentSkipList<int, int> list;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  constexpr int kOps = 30000;
  std::vector<std::vector<bool>> present(kThreads,
                                         std::vector<bool>(kPerThread));
  std::barrier start{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      cachetrie::util::XorShift64Star rng{static_cast<std::uint64_t>(t) + 3};
      auto& mine = present[t];
      for (int op = 0; op < kOps; ++op) {
        const int idx = static_cast<int>(rng.next_below(kPerThread));
        const int key = t * kPerThread + idx;
        if (rng.next_below(2) == 0) {
          ASSERT_EQ(list.insert(key, key), !mine[idx]);
          mine[idx] = true;
        } else {
          ASSERT_EQ(list.remove(key).has_value(), mine[idx]);
          mine[idx] = false;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(list.contains(t * kPerThread + i), present[t][i]);
    }
  }
  auto issues = list.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(SkipListConcurrent, ReadersNeverSeeRemovedLowerHalf) {
  ConcurrentSkipList<int, int> list;
  constexpr int kKeys = 20000;
  for (int k = 0; k < kKeys; ++k) list.insert(k, k);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> anomalies{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      cachetrie::util::XorShift64Star rng{static_cast<std::uint64_t>(r) + 11};
      while (!stop.load(std::memory_order_acquire)) {
        const int k = static_cast<int>(rng.next_below(kKeys / 2));
        if (!list.lookup(k).has_value()) anomalies.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < 10; ++round) {
      for (int k = kKeys / 2; k < kKeys; ++k) list.remove(k);
      for (int k = kKeys / 2; k < kKeys; ++k) list.insert(k, round);
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(anomalies.load(), 0u);
}

}  // namespace
