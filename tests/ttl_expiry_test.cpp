// ttl_expiry_test.cpp — deterministic TTL semantics via the injectable
// clock. Single-threaded on purpose: every assertion here is exact, so the
// lazy-eviction bookkeeping (who counts an expiry, when a corpse is
// physically dropped, what size()/for_each() report) is pinned with no
// tolerance for scheduling. The concurrent side lives in eviction_lin_test
// and eviction_fault_test.
//
// The invariants under test (DESIGN.md §3):
//   * a TTL-expired pair is unobservable (lookup/contains/size/for_each)
//     the instant the clock passes its horizon — before any eviction runs;
//   * an unexpired pair is never evicted by TTL machinery;
//   * a lookup hit refreshes the stamp (LRU/TTL clock restarts);
//   * mutating ops over a corpse behave as if the key were absent, evict
//     the corpse, and count exactly one expiry per corpse;
//   * single-threaded, evictions + expiries + user removes == pairs that
//     vanished, and the exact resident-byte accounting matches a footprint
//     walk at quiescence.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>

#include "cachetrie/evict.hpp"

namespace {

using BoundedTrie =
    cachetrie::evict::BoundedCacheTrie<std::uint64_t, std::uint64_t>;
using BoundedChm =
    cachetrie::evict::BoundedChm<std::uint64_t, std::uint64_t>;

std::atomic<std::uint64_t> g_clock{0};
std::uint64_t test_clock() { return g_clock.load(std::memory_order_relaxed); }

constexpr std::uint64_t kTtl = 100;

cachetrie::evict::BoundedConfig ttl_config() {
  cachetrie::evict::BoundedConfig cfg;
  cfg.ttl_ticks = kTtl;
  cfg.ceiling_bytes = 0;  // TTL only: no pressure machinery in these tests
  cfg.tick = &test_clock;
  return cfg;
}

TEST(TtlExpiry, ExpiredKeysUnobservable) {
  g_clock.store(1, std::memory_order_relaxed);
  BoundedTrie t(ttl_config());
  for (std::uint64_t k = 0; k < 10; ++k) ASSERT_TRUE(t.insert(k, k * 7));

  // Just inside the horizon: everything still visible.
  g_clock.store(1 + kTtl, std::memory_order_relaxed);
  EXPECT_EQ(t.size(), 10u);

  // One tick past: every pair is a corpse — absent from every observer,
  // even though nothing has physically evicted them yet.
  g_clock.store(2 + kTtl, std::memory_order_relaxed);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(t.lookup(k), std::nullopt) << "corpse observable, key " << k;
    EXPECT_FALSE(t.contains(k));
  }
  std::size_t seen = 0;
  t.for_each([&](std::uint64_t, std::uint64_t) { ++seen; });
  EXPECT_EQ(seen, 0u);
  // Lookups are wait-free and must not have evicted anything.
  EXPECT_EQ(t.eviction_counts().ttl_expiries, 0u);
}

TEST(TtlExpiry, UnexpiredNeverEvicted) {
  g_clock.store(1, std::memory_order_relaxed);
  BoundedTrie t(ttl_config());
  for (std::uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(t.insert(k, k));

  // Heavy traffic with the clock inside the horizon: no pair may vanish.
  g_clock.store(kTtl / 2, std::memory_order_relaxed);
  for (std::uint64_t round = 0; round < 4; ++round) {
    for (std::uint64_t k = 0; k < 64; ++k) {
      EXPECT_TRUE(t.lookup(k).has_value()) << "key " << k;
      EXPECT_FALSE(t.insert(k, k + round));  // upsert over a live pair
    }
  }
  EXPECT_EQ(t.size(), 64u);
  const auto c = t.eviction_counts();
  EXPECT_EQ(c.ttl_expiries, 0u);
  EXPECT_EQ(c.lru_evictions, 0u);
  EXPECT_EQ(c.backpressure_scans, 0u);
}

TEST(TtlExpiry, StampRefreshOnHit) {
  g_clock.store(1, std::memory_order_relaxed);
  BoundedTrie t(ttl_config());
  ASSERT_TRUE(t.insert(1, 11));  // will be touched at tick 90
  ASSERT_TRUE(t.insert(2, 22));  // will not be touched again

  g_clock.store(90, std::memory_order_relaxed);
  EXPECT_EQ(t.lookup(1), std::optional<std::uint64_t>(11));  // refresh

  // tick 150: horizon = 50. Key 1's stamp is 90 (refreshed) — alive; key
  // 2's stamp is 1 — a corpse. Without the refresh both would be gone.
  g_clock.store(150, std::memory_order_relaxed);
  EXPECT_EQ(t.lookup(1), std::optional<std::uint64_t>(11));
  EXPECT_EQ(t.lookup(2), std::nullopt);
  EXPECT_EQ(t.size(), 1u);

  // The refresh keeps restarting the clock indefinitely.
  for (std::uint64_t now = 150; now < 1000; now += kTtl - 1) {
    g_clock.store(now, std::memory_order_relaxed);
    EXPECT_TRUE(t.lookup(1).has_value()) << "at tick " << now;
  }
}

TEST(TtlExpiry, MutationsOverCorpsesActAsAbsent) {
  g_clock.store(1, std::memory_order_relaxed);
  BoundedTrie t(ttl_config());
  for (std::uint64_t k = 0; k < 5; ++k) ASSERT_TRUE(t.insert(k, 100 + k));
  g_clock.store(2 + kTtl, std::memory_order_relaxed);  // all corpses

  // remove: nothing to remove, but the corpse is physically evicted.
  EXPECT_EQ(t.remove(0), std::nullopt);
  EXPECT_EQ(t.eviction_counts().ttl_expiries, 1u);

  // remove_if_equals against the (dead) old value: absent.
  EXPECT_FALSE(t.remove_if_equals(1, 101));
  EXPECT_EQ(t.eviction_counts().ttl_expiries, 2u);

  // replace: key absent, so no replacement happens.
  EXPECT_FALSE(t.replace(2, 999));
  EXPECT_EQ(t.lookup(2), std::nullopt);
  EXPECT_EQ(t.eviction_counts().ttl_expiries, 3u);

  // put_if_absent: the slot is free again — insertion succeeds.
  EXPECT_TRUE(t.put_if_absent(3, 333));
  EXPECT_EQ(t.lookup(3), std::optional<std::uint64_t>(333));
  EXPECT_EQ(t.eviction_counts().ttl_expiries, 4u);

  // upsert: reports a fresh insert, not a replacement.
  EXPECT_TRUE(t.insert(4, 444));
  EXPECT_EQ(t.lookup(4), std::optional<std::uint64_t>(444));
  EXPECT_EQ(t.eviction_counts().ttl_expiries, 5u);
}

TEST(TtlExpiry, MetricsEquationSingleThreaded) {
  g_clock.store(1, std::memory_order_relaxed);
  BoundedTrie t(ttl_config());
  constexpr std::uint64_t kN = 200;
  for (std::uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(t.insert(k, k));

  // Expire everything, then re-insert: each upsert evicts one corpse.
  g_clock.store(2 + kTtl, std::memory_order_relaxed);
  for (std::uint64_t k = 0; k < kN; ++k) EXPECT_TRUE(t.insert(k, k * 2));
  EXPECT_EQ(t.eviction_counts().ttl_expiries, kN);
  EXPECT_EQ(t.size(), kN);

  // User removes and forced evictions are counted in their own ledgers.
  std::uint64_t user_removed = 0;
  for (std::uint64_t k = 0; k < kN; k += 4) {
    EXPECT_TRUE(t.remove(k).has_value());
    ++user_removed;
  }
  std::uint64_t forced = 0;
  for (std::uint64_t k = 2; k < kN; k += 4) {
    EXPECT_TRUE(t.evict(k).has_value());
    ++forced;
  }
  const auto c = t.eviction_counts();
  EXPECT_EQ(c.ttl_expiries, kN);
  EXPECT_EQ(c.lru_evictions, forced);
  // Every vanished pair is accounted for exactly once:
  //   inserted distinct - user removes - forced evictions == live size
  // (the kN expiries correspond to the first generation, each of which was
  // replaced by a live re-insert, so they cancel out of the live count).
  EXPECT_EQ(t.size(), kN - user_removed - forced);
}

TEST(TtlExpiry, ResidentBytesMatchFootprintAtQuiescence) {
  g_clock.store(1, std::memory_order_relaxed);
  BoundedTrie t(ttl_config());
  // Churn across generations: insert, expire, overwrite, remove — every
  // accounting choke point (publish, retire, subtree build, chain rebuild,
  // compression) fires at least once.
  for (std::uint64_t gen = 0; gen < 4; ++gen) {
    const std::uint64_t base = g_clock.load(std::memory_order_relaxed);
    for (std::uint64_t k = 0; k < 300; ++k) t.insert(k + gen * 17, k);
    g_clock.store(base + kTtl / 2, std::memory_order_relaxed);
    for (std::uint64_t k = 0; k < 300; k += 3) t.remove(k + gen * 17);
    g_clock.store(base + 2 * kTtl, std::memory_order_relaxed);  // expire rest
    for (std::uint64_t k = 0; k < 300; k += 2) t.insert(k + gen * 17, k);
  }
  // Exact double-entry accounting: published minus retired equals what a
  // footprint walk of the live structure finds (minus the object header,
  // which the walk includes but the ledger does not track).
  EXPECT_EQ(t.resident_bytes(),
            t.footprint_bytes() - sizeof(BoundedTrie::Trie));
  EXPECT_TRUE(t.underlying().debug_validate().empty());
}

// --- the chm baseline wrapper: same semantics where the surface overlaps ---

TEST(TtlExpiryChm, ExpiredKeysUnobservableAndEvictedLazily) {
  g_clock.store(1, std::memory_order_relaxed);
  BoundedChm m(ttl_config());
  for (std::uint64_t k = 0; k < 10; ++k) ASSERT_TRUE(m.insert(k, k * 7));

  g_clock.store(2 + kTtl, std::memory_order_relaxed);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(m.lookup(k), std::nullopt);
  }
  // The wrapper expires only the operation's own key; each remove() of a
  // corpse reports "absent" and counts one expiry.
  EXPECT_EQ(m.remove(0), std::nullopt);
  EXPECT_FALSE(m.remove_if_equals(1, 7));
  EXPECT_EQ(m.eviction_counts().ttl_expiries, 2u);

  // Insert over a corpse: the corpse is dropped first, so this is a fresh
  // insert, and put_if_absent succeeds.
  EXPECT_TRUE(m.insert(2, 999));
  EXPECT_TRUE(m.put_if_absent(3, 888));
  EXPECT_EQ(m.eviction_counts().ttl_expiries, 4u);
  EXPECT_EQ(m.lookup(2), std::optional<std::uint64_t>(999));
  EXPECT_EQ(m.lookup(3), std::optional<std::uint64_t>(888));
}

TEST(TtlExpiryChm, StampRefreshOnHit) {
  g_clock.store(1, std::memory_order_relaxed);
  BoundedChm m(ttl_config());
  ASSERT_TRUE(m.insert(1, 11));
  ASSERT_TRUE(m.insert(2, 22));

  g_clock.store(90, std::memory_order_relaxed);
  EXPECT_EQ(m.lookup(1), std::optional<std::uint64_t>(11));

  g_clock.store(150, std::memory_order_relaxed);
  EXPECT_EQ(m.lookup(1), std::optional<std::uint64_t>(11));
  EXPECT_EQ(m.lookup(2), std::nullopt);
}

TEST(TtlExpiryChm, UnexpiredNeverEvicted) {
  g_clock.store(1, std::memory_order_relaxed);
  BoundedChm m(ttl_config());
  for (std::uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(m.insert(k, k));
  g_clock.store(kTtl / 2, std::memory_order_relaxed);
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_TRUE(m.lookup(k).has_value()) << "key " << k;
  }
  const auto c = m.eviction_counts();
  EXPECT_EQ(c.ttl_expiries, 0u);
  EXPECT_EQ(c.lru_evictions, 0u);
}

}  // namespace
