// chashmap_test.cpp — functional and concurrency tests for the JDK8-style
// concurrent hash map baseline, including resize/transfer races.
#include <gtest/gtest.h>

#include <barrier>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "chashmap/chashmap.hpp"
#include "util/rng.hpp"

namespace {

using cachetrie::chm::ConcurrentHashMap;

TEST(CHashMap, EmptyLookups) {
  ConcurrentHashMap<int, int> map;
  EXPECT_FALSE(map.lookup(1).has_value());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.remove(1).has_value());
}

TEST(CHashMap, BasicRoundTrip) {
  ConcurrentHashMap<int, std::string> map;
  EXPECT_TRUE(map.insert(1, "one"));
  EXPECT_FALSE(map.insert(1, "uno"));
  EXPECT_EQ(map.lookup(1).value(), "uno");
  EXPECT_TRUE(map.put_if_absent(2, "two"));
  EXPECT_FALSE(map.put_if_absent(2, "dos"));
  EXPECT_EQ(map.lookup(2).value(), "two");
  auto removed = map.remove(1);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, "uno");
  EXPECT_EQ(map.size(), 1u);
}

TEST(CHashMap, ResizeGrowsTable) {
  ConcurrentHashMap<int, int> map(16);
  const std::size_t bins0 = map.bin_count();
  for (int i = 0; i < 100000; ++i) ASSERT_TRUE(map.insert(i, i));
  EXPECT_GT(map.bin_count(), bins0);
  for (int i = 0; i < 100000; ++i) {
    auto v = map.lookup(i);
    ASSERT_TRUE(v.has_value()) << i;
    ASSERT_EQ(*v, i);
  }
  EXPECT_EQ(map.size(), 100000u);
}

TEST(CHashMap, MixedChurnMatchesReference) {
  ConcurrentHashMap<std::uint64_t, std::uint64_t> map;
  std::map<std::uint64_t, std::uint64_t> ref;
  cachetrie::util::XorShift64Star rng{777};
  for (int step = 0; step < 150000; ++step) {
    const std::uint64_t key = rng.next_below(4000);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        ASSERT_EQ(map.insert(key, step), ref.find(key) == ref.end());
        ref[key] = static_cast<std::uint64_t>(step);
        break;
      }
      case 2: {
        const auto got = map.lookup(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got.has_value(), it != ref.end());
        if (got.has_value()) {
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
      case 3: {
        const auto removed = map.remove(key);
        ASSERT_EQ(removed.has_value(), ref.erase(key) == 1);
        break;
      }
    }
  }
  EXPECT_EQ(map.size(), ref.size());
}

TEST(CHashMap, ForEachVisitsEverything) {
  ConcurrentHashMap<int, int> map;
  for (int i = 0; i < 5000; ++i) map.insert(i, i + 1);
  std::map<int, int> seen;
  map.for_each([&](const int& k, const int& v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 5000u);
}

TEST(CHashMapConcurrent, DisjointInsertsDuringResizes) {
  ConcurrentHashMap<int, int> map(16);  // tiny: forces many transfers
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::barrier start{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(map.insert(t * kPerThread + i, i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (int k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_TRUE(map.contains(k)) << k;
  }
}

TEST(CHashMapConcurrent, LookupsDuringResizeSeeEverything) {
  ConcurrentHashMap<int, int> map(16);
  constexpr int kStable = 20000;
  for (int i = 0; i < kStable; ++i) map.insert(i, i);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      cachetrie::util::XorShift64Star rng{static_cast<std::uint64_t>(r) + 5};
      while (!stop.load(std::memory_order_acquire)) {
        const int k = static_cast<int>(rng.next_below(kStable));
        if (!map.lookup(k).has_value()) misses.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    // Grow well past several resize boundaries while readers hammer the
    // stable key range.
    for (int i = kStable; i < kStable * 6; ++i) map.insert(i, i);
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(misses.load(), 0u);
}

TEST(CHashMapConcurrent, ChurnWithOwnership) {
  ConcurrentHashMap<int, int> map(16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1500;
  constexpr int kOps = 40000;
  std::vector<std::vector<bool>> present(kThreads,
                                         std::vector<bool>(kPerThread));
  std::barrier start{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      cachetrie::util::XorShift64Star rng{static_cast<std::uint64_t>(t) + 31};
      auto& mine = present[t];
      for (int op = 0; op < kOps; ++op) {
        const int idx = static_cast<int>(rng.next_below(kPerThread));
        const int key = t * kPerThread + idx;
        if (rng.next_below(2) == 0) {
          ASSERT_EQ(map.insert(key, key), !mine[idx]);
          mine[idx] = true;
        } else {
          ASSERT_EQ(map.remove(key).has_value(), mine[idx]);
          mine[idx] = false;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(map.contains(t * kPerThread + i), present[t][i]);
    }
  }
}

}  // namespace
