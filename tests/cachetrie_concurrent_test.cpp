// cachetrie_concurrent_test.cpp — multi-threaded stress tests: lock-free
// insert/lookup/remove under contention, expansion/compression storms, and
// cache coherence under concurrent mutation.
//
// Note: the host may expose a single hardware thread; these tests still
// exercise concurrency through preemptive interleaving, which historically
// catches most lock-free protocol bugs (helping paths, lost-update races).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <set>
#include <thread>
#include <vector>

#include "cachetrie/cache_trie.hpp"
#include "mr/epoch.hpp"
#include "util/hashing.hpp"

namespace {

using cachetrie::CacheTrie;
using cachetrie::Config;

constexpr int kThreads = 8;

template <typename F>
void run_threads(int n, F body) {
  std::barrier start{n};
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      body(t);
    });
  }
  for (auto& th : threads) th.join();
}

TEST(CacheTrieConcurrent, DisjointInsertsAllPresent) {
  CacheTrie<int, int> trie;
  constexpr int kPerThread = 20000;
  run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kPerThread; ++i) {
      const int key = t * kPerThread + i;
      ASSERT_TRUE(trie.insert(key, key * 3));
    }
  });
  EXPECT_EQ(trie.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (int k = 0; k < kThreads * kPerThread; ++k) {
    auto v = trie.lookup(k);
    ASSERT_TRUE(v.has_value()) << "missing key " << k;
    ASSERT_EQ(*v, k * 3);
  }
  auto issues = trie.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CacheTrieConcurrent, ContendedSameKeysInsert) {
  // The paper's Fig. 11 workload: every thread inserts the same keys in the
  // same order. Afterwards each key must exist exactly once with a value
  // some thread wrote.
  CacheTrie<int, int> trie;
  constexpr int kKeys = 20000;
  run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kKeys; ++i) {
      trie.insert(i, t * kKeys + i);
    }
  });
  EXPECT_EQ(trie.size(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    auto v = trie.lookup(i);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v % kKeys, i);  // value encodes (thread, key); key part must match
  }
  auto issues = trie.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CacheTrieConcurrent, PutIfAbsentHasExactlyOneWinnerPerKey) {
  CacheTrie<int, int> trie;
  constexpr int kKeys = 10000;
  std::atomic<int> wins{0};
  run_threads(kThreads, [&](int t) {
    int local_wins = 0;
    for (int i = 0; i < kKeys; ++i) {
      if (trie.put_if_absent(i, t)) ++local_wins;
    }
    wins.fetch_add(local_wins);
  });
  EXPECT_EQ(wins.load(), kKeys);
  // Each value must be the winning thread's id, stable thereafter.
  for (int i = 0; i < kKeys; ++i) {
    auto v = trie.lookup(i);
    ASSERT_TRUE(v.has_value());
    ASSERT_GE(*v, 0);
    ASSERT_LT(*v, kThreads);
  }
}

TEST(CacheTrieConcurrent, ConcurrentInsertAndLookup) {
  CacheTrie<int, int> trie;
  constexpr int kKeys = 30000;
  std::atomic<bool> writer_done{false};
  std::atomic<std::uint64_t> wrong_values{0};
  std::thread writer([&] {
    for (int i = 0; i < kKeys; ++i) trie.insert(i, i + 7);
    writer_done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!writer_done.load(std::memory_order_acquire)) {
        for (int i = 0; i < kKeys; i += 97) {
          auto v = trie.lookup(i);
          // A value, once visible, must be correct.
          if (v.has_value() && *v != i + 7) wrong_values.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(wrong_values.load(), 0u);
  for (int i = 0; i < kKeys; ++i) ASSERT_TRUE(trie.contains(i));
}

TEST(CacheTrieConcurrent, ConcurrentRemoveDisjointRanges) {
  CacheTrie<int, int> trie;
  constexpr int kPerThread = 15000;
  for (int k = 0; k < kThreads * kPerThread; ++k) trie.insert(k, k);
  run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kPerThread; ++i) {
      const int key = t * kPerThread + i;
      auto removed = trie.remove(key);
      ASSERT_TRUE(removed.has_value()) << "key " << key;
      ASSERT_EQ(*removed, key);
    }
  });
  EXPECT_EQ(trie.size(), 0u);
  auto issues = trie.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CacheTrieConcurrent, ContendedRemoveExactlyOneWinner) {
  CacheTrie<int, int> trie;
  constexpr int kKeys = 10000;
  for (int k = 0; k < kKeys; ++k) trie.insert(k, k);
  std::atomic<int> removed_total{0};
  run_threads(kThreads, [&](int) {
    int local = 0;
    for (int k = 0; k < kKeys; ++k) {
      if (trie.remove(k).has_value()) ++local;
    }
    removed_total.fetch_add(local);
  });
  EXPECT_EQ(removed_total.load(), kKeys);
  EXPECT_EQ(trie.size(), 0u);
}

TEST(CacheTrieConcurrent, MixedChurnKeepsPerKeyIntegrity) {
  // Each thread owns a disjoint key range and churns it; at every moment a
  // foreign observer may read. At the end, each key's presence must match
  // the owner's bookkeeping exactly.
  CacheTrie<int, int> trie;
  constexpr int kPerThread = 2000;
  constexpr int kOps = 60000;
  std::vector<std::vector<bool>> present(kThreads,
                                         std::vector<bool>(kPerThread));
  run_threads(kThreads, [&](int t) {
    cachetrie::util::XorShift64Star rng{static_cast<std::uint64_t>(t) + 1};
    auto& mine = present[t];
    for (int op = 0; op < kOps; ++op) {
      const int idx = static_cast<int>(rng.next_below(kPerThread));
      const int key = t * kPerThread + idx;
      if (rng.next_below(2) == 0) {
        const bool was_new = trie.insert(key, key);
        ASSERT_EQ(was_new, !mine[idx]);
        mine[idx] = true;
      } else {
        const bool removed = trie.remove(key).has_value();
        ASSERT_EQ(removed, mine[idx]);
        mine[idx] = false;
      }
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const int key = t * kPerThread + i;
      ASSERT_EQ(trie.contains(key), present[t][i]) << "key " << key;
    }
  }
  auto issues = trie.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CacheTrieConcurrent, SingleKeyLinearizabilitySmoke) {
  // One hot key, many writers alternating insert/remove with tagged values,
  // readers verify they only ever see values some writer actually wrote.
  CacheTrie<int, std::uint64_t> trie;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> anomalies{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 20000; ++i) {
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(w) << 32) | static_cast<std::uint32_t>(i);
        trie.insert(42, tag);
        trie.remove(42);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto v = trie.lookup(42);
        if (v.has_value() && (*v >> 32) >= 4) anomalies.fetch_add(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(anomalies.load(), 0u);
}

TEST(CacheTrieConcurrent, ExpansionStormUnderNarrowHash) {
  // A 16-bit hash crams all keys into few subtrees, forcing constant
  // narrow->wide expansions and deep LNode chains under contention.
  CacheTrie<int, int, cachetrie::util::DegradedHash<16>> trie;
  constexpr int kPerThread = 3000;
  run_threads(kThreads, [&](int t) {
    for (int i = 0; i < kPerThread; ++i) {
      const int key = t * kPerThread + i;
      ASSERT_TRUE(trie.insert(key, key));
    }
  });
  EXPECT_EQ(trie.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (int k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_TRUE(trie.contains(k)) << "key " << k;
  }
  auto issues = trie.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CacheTrieConcurrent, CompressionStormInsertRemoveWaves) {
  Config cfg;
  cfg.compress = true;
  cfg.compress_singletons = true;
  cfg.collect_stats = true;
  CacheTrie<int, int, cachetrie::util::DegradedHash<20>> trie(cfg);
  constexpr int kPerThread = 2000;
  run_threads(kThreads, [&](int t) {
    for (int wave = 0; wave < 5; ++wave) {
      for (int i = 0; i < kPerThread; ++i) {
        trie.insert(t * kPerThread + i, i);
      }
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(trie.remove(t * kPerThread + i).has_value());
      }
    }
  });
  EXPECT_EQ(trie.size(), 0u);
  auto issues = trie.debug_validate();
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST(CacheTrieConcurrent, CacheStaysCoherentUnderChurn) {
  // Lookups warm the cache while writers replace and remove the very nodes
  // the cache points at; stale entries must never produce wrong answers.
  Config cfg;
  cfg.max_misses = 64;  // aggressive sampling/adjustment
  CacheTrie<int, int> trie(cfg);
  constexpr int kKeys = 50000;
  for (int k = 0; k < kKeys; ++k) trie.insert(k, 0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> anomalies{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      cachetrie::util::XorShift64Star rng{static_cast<std::uint64_t>(r) + 77};
      while (!stop.load(std::memory_order_acquire)) {
        const int k = static_cast<int>(rng.next_below(kKeys));
        auto v = trie.lookup(k);
        if (k < kKeys / 2) {
          // Lower half is never removed; it must always be present.
          if (!v.has_value()) anomalies.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < 20; ++round) {
      for (int k = kKeys / 2; k < kKeys; ++k) trie.remove(k);
      for (int k = kKeys / 2; k < kKeys; ++k) trie.insert(k, round);
      for (int k = 0; k < kKeys / 2; ++k) trie.insert(k, round);  // replace
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(anomalies.load(), 0u);
  EXPECT_EQ(trie.size(), static_cast<std::size_t>(kKeys));
}

TEST(CacheTrieConcurrent, ReplaceIfEqualsCountsExactly) {
  // Classic lost-update test: concurrent increments through a CAS loop must
  // not lose a single one.
  CacheTrie<int, int> trie;
  trie.insert(0, 0);
  constexpr int kPerThread = 5000;
  run_threads(kThreads, [&](int) {
    for (int i = 0; i < kPerThread; ++i) {
      while (true) {
        const int cur = trie.lookup(0).value();
        if (trie.replace_if_equals(0, cur, cur + 1)) break;
      }
    }
  });
  EXPECT_EQ(trie.lookup(0).value(), kThreads * kPerThread);
}

TEST(CacheTrieConcurrent, ReclamationActuallyFrees) {
  auto& dom = cachetrie::mr::EpochDomain::instance();
  const auto freed0 = dom.freed_count();
  const auto retired0 = dom.retired_count();
  {
    CacheTrie<int, int> trie;
    run_threads(4, [&](int t) {
      for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 5000; ++i) trie.insert(i, t);
        for (int i = 0; i < 5000; ++i) trie.remove(i);
      }
    });
  }
  EXPECT_GT(dom.retired_count(), retired0);
  dom.drain_for_testing();
  EXPECT_GT(dom.freed_count(), freed0);
  // After a quiescent drain nothing may remain in limbo, process-wide.
  EXPECT_EQ(dom.retired_count(), dom.freed_count());
}

}  // namespace
