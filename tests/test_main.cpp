// test_main.cpp — shared gtest main for the whole suite.
//
// After every test, both reclamation domains are drained (each test joins
// its worker threads, so the process is quiescent at OnTestEnd). This keeps
// retired-but-not-yet-freed nodes from accumulating across tests and from
// being reported as leaks by LeakSanitizer at process exit — EBR frees lag
// retirement by design, they are not leaks.
#include <gtest/gtest.h>

#include "mr/epoch.hpp"
#include "mr/hazard.hpp"

namespace {

class DrainReclamationListener : public ::testing::EmptyTestEventListener {
  void OnTestEnd(const ::testing::TestInfo&) override {
    cachetrie::mr::EpochDomain::instance().drain_for_testing();
    cachetrie::mr::HazardDomain::instance().drain_for_testing();
  }
};

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new DrainReclamationListener);
  return RUN_ALL_TESTS();
}
