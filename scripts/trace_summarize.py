#!/usr/bin/env python3
"""trace_summarize.py — offline digest of cachetrie-trace-v1 JSON dumps.

Usage:
    scripts/trace_summarize.py TRACE_foo.json [TRACE_bar.json ...] [--top 10]

For each file (a Chrome trace-event dump written by obs/trace_export.hpp):

  * header: reason, event count, how many events ever emitted and how many
    scrolled out of the rings before the drain (overwrite loss);
  * per-event-name counts, sorted descending — names not in the known-event
    table (mirroring obs/trace_events.hpp's kEventInfo) are flagged, so a
    renamed or misspelled emitter shows up in the digest instead of silently
    forking the event namespace;
  * inter-event gap statistics per event name (min/mean/max microseconds
    between consecutive occurrences on the global timeline) — a cheap way
    to spot "the epoch stopped flipping for 400 ms";
  * the top-N longest spans ('B'/'E' pairs matched per thread by name,
    e.g. chm.bin_lock waits+holds and ctrie.gcas funnels), with thread id,
    start timestamp and payload args.

Stdlib only; no third-party imports. Exit status: 0 on success, 2 on a
missing/undecodable/foreign-schema file.
"""

import argparse
import json
import sys

SCHEMA = "cachetrie-trace-v1"

# Every event name the flight recorder can emit — keep in lockstep with the
# kEventInfo table in src/obs/trace_events.hpp (same order). An unknown name
# in a dump means an emitter drifted from the table (or the dump predates a
# rename); the digest prints a warning rather than failing, since old traces
# remain worth reading.
KNOWN_EVENTS = frozenset({
    "cachetrie.freeze",
    "cachetrie.expand",
    "cachetrie.compress",
    "cachetrie.txn_commit",
    "cachetrie.cache.install",
    "cachetrie.cache.level_change",
    "cachetrie.evict",
    "cachetrie.expire",
    "cachetrie.ceiling_hit",
    "ctrie.gcas",
    "ctrie.gcas.retry",
    "ctrie.entomb",
    "ctrie.clean",
    "ctrie.clean_parent",
    "chm.bin_lock",
    "chm.resize",
    "chm.transfer.help",
    "chm.transfer.bin",
    "csl.mark_bottom",
    "csl.help_mark",
    "mr.epoch.flip",
    "mr.epoch.fallback_scan",
    "mr.epoch.stall_declare",
    "mr.epoch.stalled_guard_exit",
    "testkit.fault.park",
    "testkit.fault.resume",
    "testkit.fault.kill",
    "testkit.watchdog.violation",
    "testkit.lin_check.fail",
})


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_summarize: cannot load {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    other = doc.get("otherData", {})
    if other.get("schema") != SCHEMA:
        print(
            f"trace_summarize: {path}: schema {other.get('schema')!r}, "
            f"expected {SCHEMA!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return doc


def gap_stats(timestamps):
    """(min, mean, max) of consecutive deltas; None for <2 samples."""
    if len(timestamps) < 2:
        return None
    gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
    return min(gaps), sum(gaps) / len(gaps), max(gaps)


def collect_spans(events):
    """Match 'B'/'E' per (tid, name) with a stack; returns a list of
    (duration_us, name, tid, start_ts, args). Unmatched ends (their 'B'
    scrolled out of the ring) are already demoted to instants by the
    exporter, so leftovers here are spans still open at the drain."""
    stacks = {}
    spans = []
    for ev in events:
        ph = ev.get("ph")
        key = (ev.get("tid"), ev.get("name"))
        if ph == "B":
            stacks.setdefault(key, []).append(ev)
        elif ph == "E":
            stack = stacks.get(key)
            if stack:
                begin = stack.pop()
                spans.append((
                    ev["ts"] - begin["ts"],
                    ev.get("name", "?"),
                    ev.get("tid"),
                    begin["ts"],
                    begin.get("args", {}),
                ))
    open_spans = sum(len(s) for s in stacks.values())
    return spans, open_spans


def summarize(path, top):
    doc = load(path)
    other = doc.get("otherData", {})
    events = sorted(doc.get("traceEvents", []), key=lambda e: e.get("ts", 0))

    print(f"== {path}")
    print(f"  reason: {other.get('reason', '')!r}  events: {len(events)}  "
          f"emitted_total: {other.get('emitted_total', '?')}  "
          f"overwritten: {other.get('overwritten', '?')}")

    by_name = {}
    for ev in events:
        by_name.setdefault(ev.get("name", "?"), []).append(ev.get("ts", 0))

    print("  event counts:")
    unknown = []
    for name, stamps in sorted(by_name.items(),
                               key=lambda kv: (-len(kv[1]), kv[0])):
        tag = "" if name in KNOWN_EVENTS else " [?]"
        line = f"    {name + tag:<34} {len(stamps):>7}"
        stats = gap_stats(stamps)
        if stats is not None:
            lo, mean, hi = stats
            line += (f"   gap us min/mean/max "
                     f"{lo:.1f}/{mean:.1f}/{hi:.1f}")
        print(line)
        if name not in KNOWN_EVENTS:
            unknown.append(name)
    if unknown:
        print(f"  WARNING: {len(unknown)} event name(s) not in the known "
              f"table (trace_events.hpp drift?): {', '.join(sorted(unknown))}")

    spans, open_spans = collect_spans(events)
    if spans:
        spans.sort(key=lambda s: -s[0])
        print(f"  longest spans (top {min(top, len(spans))} of {len(spans)}"
              + (f", {open_spans} still open" if open_spans else "") + "):")
        for dur, name, tid, start, args in spans[:top]:
            atxt = " ".join(f"{k}={v}" for k, v in sorted(args.items()))
            print(f"    {dur:>10.1f} us  {name:<20} tid {tid}  "
                  f"@ {start:.1f} us  [{atxt}]")
    else:
        print("  no completed spans" +
              (f" ({open_spans} still open)" if open_spans else ""))


def main():
    ap = argparse.ArgumentParser(
        description="Summarize cachetrie flight-recorder trace dumps.")
    ap.add_argument("traces", nargs="+", help="TRACE_*.json files")
    ap.add_argument("--top", type=int, default=10,
                    help="how many longest spans to print (default 10)")
    args = ap.parse_args()
    for i, path in enumerate(args.traces):
        if i:
            print()
        summarize(path, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
