#!/usr/bin/env python3
"""trace_summarize.py — offline digest of cachetrie-trace-v1 JSON dumps.

Usage:
    scripts/trace_summarize.py TRACE_foo.json [TRACE_bar.json ...] [--top 10]

For each file (a Chrome trace-event dump written by obs/trace_export.hpp):

  * header: reason, event count, how many events ever emitted and how many
    scrolled out of the rings before the drain (overwrite loss);
  * per-event-name counts, sorted descending — names not in the known-event
    table (mirroring obs/trace_events.hpp's kEventInfo) are flagged, so a
    renamed or misspelled emitter shows up in the digest instead of silently
    forking the event namespace;
  * inter-event gap statistics per event name (min/mean/max microseconds
    between consecutive occurrences on the global timeline) — a cheap way
    to spot "the epoch stopped flipping for 400 ms";
  * the top-N longest spans ('B'/'E' pairs matched per thread by name,
    e.g. chm.bin_lock waits+holds and ctrie.gcas funnels), with thread id,
    start timestamp and payload args;
  * when the dump carries serving-layer events (net.*), a per-connection
    rollup: requests served (net.request spans keyed by a0=conn id) with
    mean/max service time, shed/deadline/backpressure counts, and the
    connection's close reason.

Stdlib only; no third-party imports. Exit status: 0 on success, 2 on a
missing/undecodable/foreign-schema file.
"""

import argparse
import json
import sys

SCHEMA = "cachetrie-trace-v1"

# Every event name the flight recorder can emit — keep in lockstep with the
# kEventInfo table in src/obs/trace_events.hpp (same order). An unknown name
# in a dump means an emitter drifted from the table (or the dump predates a
# rename); the digest prints a warning rather than failing, since old traces
# remain worth reading.
KNOWN_EVENTS = frozenset({
    "cachetrie.freeze",
    "cachetrie.expand",
    "cachetrie.compress",
    "cachetrie.txn_commit",
    "cachetrie.cache.install",
    "cachetrie.cache.level_change",
    "cachetrie.evict",
    "cachetrie.expire",
    "cachetrie.ceiling_hit",
    "ctrie.gcas",
    "ctrie.gcas.retry",
    "ctrie.entomb",
    "ctrie.clean",
    "ctrie.clean_parent",
    "chm.bin_lock",
    "chm.resize",
    "chm.transfer.help",
    "chm.transfer.bin",
    "csl.mark_bottom",
    "csl.help_mark",
    "mr.epoch.flip",
    "mr.epoch.fallback_scan",
    "mr.epoch.stall_declare",
    "mr.epoch.stalled_guard_exit",
    "testkit.fault.park",
    "testkit.fault.resume",
    "testkit.fault.kill",
    "testkit.watchdog.violation",
    "testkit.lin_check.fail",
    "net.accept",
    "net.conn.close",
    "net.request",
    "net.shed",
    "net.deadline_expire",
    "net.backpressure_kill",
    "net.drain",
    "net.shutdown",
    "net.req.parsed",
    "net.req.admitted",
    "net.req.dequeued",
    "net.req.execute",
    "net.req.flushed",
})


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_summarize: cannot load {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    other = doc.get("otherData", {})
    if other.get("schema") != SCHEMA:
        print(
            f"trace_summarize: {path}: schema {other.get('schema')!r}, "
            f"expected {SCHEMA!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return doc


def gap_stats(timestamps):
    """(min, mean, max) of consecutive deltas; None for <2 samples."""
    if len(timestamps) < 2:
        return None
    gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
    return min(gaps), sum(gaps) / len(gaps), max(gaps)


def collect_spans(events):
    """Match 'B'/'E' per (tid, name) with a stack; returns a list of
    (duration_us, name, tid, start_ts, args). Unmatched ends (their 'B'
    scrolled out of the ring) are already demoted to instants by the
    exporter, so leftovers here are spans still open at the drain."""
    stacks = {}
    spans = []
    for ev in events:
        ph = ev.get("ph")
        key = (ev.get("tid"), ev.get("name"))
        if ph == "B":
            stacks.setdefault(key, []).append(ev)
        elif ph == "E":
            stack = stacks.get(key)
            if stack:
                begin = stack.pop()
                spans.append((
                    ev["ts"] - begin["ts"],
                    ev.get("name", "?"),
                    ev.get("tid"),
                    begin["ts"],
                    begin.get("args", {}),
                ))
    open_spans = sum(len(s) for s in stacks.values())
    return spans, open_spans


CLOSE_REASONS = {0: "eof", 1: "error", 2: "proto", 3: "backpressure",
                 4: "shutdown"}

# net.* events carrying a connection id in a0 (net.drain / net.shutdown
# carry a shard index there instead and stay out of the connection view).
CONN_EVENTS = frozenset({
    "net.accept", "net.conn.close", "net.request", "net.shed",
    "net.deadline_expire", "net.backpressure_kill",
})


def connection_view(events, spans, top):
    """Per-connection rollup of the serving layer's trace: requests served
    (matched net.request spans keyed by a0=conn id), sheds, deadline
    expiries, backpressure kills, and how the connection ended. Prints
    nothing when the dump has no net.* connection events."""
    conns = {}

    def row(cid):
        return conns.setdefault(cid, {
            "shard": None, "requests": 0, "dur_sum": 0.0, "dur_max": 0.0,
            "shed": 0, "deadline": 0, "bp_kill": 0, "close": None,
        })

    seen = False
    for ev in events:
        name = ev.get("name")
        if name not in CONN_EVENTS or name == "net.request":
            continue
        args = ev.get("args", {})
        if "a0" not in args:
            continue
        seen = True
        r = row(args["a0"])
        if name == "net.accept":
            r["shard"] = args.get("a1")
        elif name == "net.conn.close":
            r["close"] = CLOSE_REASONS.get(args.get("a1"), args.get("a1"))
        elif name == "net.shed":
            r["shed"] += 1
        elif name == "net.deadline_expire":
            r["deadline"] += 1
        elif name == "net.backpressure_kill":
            r["bp_kill"] += 1
    for dur, name, _tid, _start, args in spans:
        if name != "net.request" or "a0" not in args:
            continue
        seen = True
        r = row(args["a0"])
        r["requests"] += 1
        r["dur_sum"] += dur
        r["dur_max"] = max(r["dur_max"], dur)
    if not seen:
        return

    print(f"  connections (top {min(top, len(conns))} of {len(conns)} "
          f"by requests):")
    ranked = sorted(conns.items(),
                    key=lambda kv: (-kv[1]["requests"], kv[0]))
    for cid, r in ranked[:top]:
        mean = r["dur_sum"] / r["requests"] if r["requests"] else 0.0
        shard = "?" if r["shard"] is None else r["shard"]
        close = r["close"] if r["close"] is not None else "open"
        print(f"    conn {cid:<6} shard {shard:<3} requests {r['requests']:>6}"
              f"  serve us mean/max {mean:.1f}/{r['dur_max']:.1f}"
              f"  shed {r['shed']}  deadline {r['deadline']}"
              f"  bp_kill {r['bp_kill']}  close {close}")


# Request-phase lifecycle stamps (PR-9 block of trace_events.hpp): every
# one carries (a0=conn id, a1=request id), the join key of the phase view.
PHASE_EVENTS = frozenset({
    "net.req.parsed", "net.req.admitted", "net.req.dequeued",
    "net.req.execute", "net.req.flushed",
})


def phase_view(events, spans, top):
    """Tail attribution: for the slowest decile of net.request spans, which
    phase — queue (admitted->dequeued), execute (execute B->E), or flush
    (execute E->flushed) — dominated the request. Stamps join per request
    on (a0=conn id, a1=request id). Prints nothing when the dump carries no
    phase stamps (pre-PR-9 dumps, or non-serving workloads)."""
    stamps = {}
    for ev in events:
        name = ev.get("name")
        if name not in PHASE_EVENTS:
            continue
        args = ev.get("args", {})
        if "a0" not in args or "a1" not in args:
            continue
        rec = stamps.setdefault((args["a0"], args["a1"]), {})
        if name == "net.req.execute":
            rec["exec_b" if ev.get("ph") == "B" else "exec_e"] = ev.get("ts", 0)
        else:
            rec[name.rsplit(".", 1)[-1]] = ev.get("ts", 0)
    if not stamps:
        return

    reqs = []
    for dur, name, _tid, _start, args in spans:
        if name != "net.request" or "a0" not in args or "a1" not in args:
            continue
        reqs.append((dur, (args["a0"], args["a1"])))
    if not reqs:
        return
    reqs.sort(key=lambda s: -s[0])
    slow = reqs[:max(1, len(reqs) // 10)]

    needed = {"admitted", "dequeued", "exec_b", "exec_e", "flushed"}
    rows = []
    dominated = {"queue": 0, "execute": 0, "flush": 0}
    skipped = 0
    for dur, key in slow:
        rec = stamps.get(key)
        if rec is None or not needed <= rec.keys():
            skipped += 1  # some stamps scrolled out of the ring
            continue
        phases = {
            "queue": rec["dequeued"] - rec["admitted"],
            "execute": rec["exec_e"] - rec["exec_b"],
            "flush": rec["flushed"] - rec["exec_e"],
        }
        dom = max(phases, key=phases.get)
        dominated[dom] += 1
        rows.append((dur, key, phases, dom))

    print(f"  tail attribution (slowest decile: {len(slow)} of {len(reqs)} "
          f"net.request spans"
          + (f", {skipped} without full stamps" if skipped else "") + "):")
    if not rows:
        print("    no slow-decile request carries a full stamp set "
              "(ring overwrite?)")
        return
    for ph in ("queue", "execute", "flush"):
        share = 100.0 * dominated[ph] / len(rows)
        print(f"    dominated by {ph:<8} {dominated[ph]:>6}  ({share:.1f}%)")
    for dur, key, phases, dom in rows[:top]:
        print(f"    {dur:>10.1f} us  conn {key[0]} req {key[1]}  "
              f"queue {phases['queue']:.1f}  execute {phases['execute']:.1f}"
              f"  flush {phases['flush']:.1f}  -> {dom}")


def summarize(path, top):
    doc = load(path)
    other = doc.get("otherData", {})
    events = sorted(doc.get("traceEvents", []), key=lambda e: e.get("ts", 0))

    print(f"== {path}")
    print(f"  reason: {other.get('reason', '')!r}  events: {len(events)}  "
          f"emitted_total: {other.get('emitted_total', '?')}  "
          f"overwritten: {other.get('overwritten', '?')}")

    by_name = {}
    for ev in events:
        by_name.setdefault(ev.get("name", "?"), []).append(ev.get("ts", 0))

    print("  event counts:")
    unknown = []
    for name, stamps in sorted(by_name.items(),
                               key=lambda kv: (-len(kv[1]), kv[0])):
        # The exporter demotes an 'E' whose 'B' scrolled out of the ring to
        # an instant named "<name> (unmatched)" — an overwrite artifact of a
        # known event, not namespace drift.
        base = name.removesuffix(" (unmatched)")
        tag = "" if base in KNOWN_EVENTS else " [?]"
        line = f"    {name + tag:<34} {len(stamps):>7}"
        stats = gap_stats(stamps)
        if stats is not None:
            lo, mean, hi = stats
            line += (f"   gap us min/mean/max "
                     f"{lo:.1f}/{mean:.1f}/{hi:.1f}")
        print(line)
        if base not in KNOWN_EVENTS:
            unknown.append(name)
    if unknown:
        print(f"  WARNING: {len(unknown)} event name(s) not in the known "
              f"table (trace_events.hpp drift?): {', '.join(sorted(unknown))}")

    spans, open_spans = collect_spans(events)
    if spans:
        spans.sort(key=lambda s: -s[0])
        print(f"  longest spans (top {min(top, len(spans))} of {len(spans)}"
              + (f", {open_spans} still open" if open_spans else "") + "):")
        for dur, name, tid, start, args in spans[:top]:
            atxt = " ".join(f"{k}={v}" for k, v in sorted(args.items()))
            print(f"    {dur:>10.1f} us  {name:<20} tid {tid}  "
                  f"@ {start:.1f} us  [{atxt}]")
    else:
        print("  no completed spans" +
              (f" ({open_spans} still open)" if open_spans else ""))

    connection_view(events, spans, top)
    phase_view(events, spans, top)
    return len(unknown)


def main():
    ap = argparse.ArgumentParser(
        description="Summarize cachetrie flight-recorder trace dumps.")
    ap.add_argument("traces", nargs="+", help="TRACE_*.json files")
    ap.add_argument("--top", type=int, default=10,
                    help="how many longest spans to print (default 10)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 2 if any event name is missing from the "
                         "known-event table (CI mode: event-table drift "
                         "fails instead of scrolling by as a warning)")
    args = ap.parse_args()
    drifted = 0
    for i, path in enumerate(args.traces):
        if i:
            print()
        drifted += summarize(path, args.top)
    if args.strict and drifted:
        print(f"trace_summarize: --strict: {drifted} unknown event name(s) — "
              f"update KNOWN_EVENTS to match trace_events.hpp",
              file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
