#!/usr/bin/env python3
"""protocol_lint.py -- static analysis of the repo's memory-ordering and
reclamation contracts (stdlib only, like perf_gate.py / trace_summarize.py).

The paper's correctness argument rests on a handful of ordering and
reclamation invariants (freeze-before-copy publication, txn-word CAS edges,
seq_cst fences around cache installs, unlinker-retires-exactly-once). This
pass makes them machine-checked instead of comment-checked. Three rule
families, documented in DESIGN.md section 2f:

  Atomics discipline
    atomics.default-order      atomic .load/.store/.exchange/.fetch_* call
                               without an explicit std::memory_order_* --
                               intentional seq_cst must be spelled out
    atomics.cas-failure-order  compare_exchange_{weak,strong} naming only the
                               success order; the failure order must be
                               explicit too

  Ordering-contract annotations (edge table:
  src/util/ordering_contracts.hpp, X-macro style)
    contract.unknown-edge      a [publishes:]/[acquires:] tag names an edge
                               that the table does not declare
    contract.orphan-annotation a tag with no atomic op / fence on the same
                               line or within the next few lines to bind to
    contract.relaxed-acquire   a memory_order_relaxed load carrying an
                               [acquires:] tag (a relaxed read synchronizes
                               with nothing)
    contract.publish-on-load   a pure load carrying a [publishes:] tag
    contract.missing-publish   a declared edge with no [publishes:] site
    contract.missing-acquire   a declared edge with no [acquires:] site

  SMR discipline
    smr.retire-outside-guard   retire/retire_raw/retire_raw_sized (or a
                               retire_* wrapper) called in a function that
                               neither pins a guard before the call nor is
                               annotated [smr: caller-pinned]
    smr.helper-retires         a function annotated [helper: no-retire]
                               nevertheless retires
    smr.raw-delete             raw `delete` of a protocol node outside the
                               designated make/destroy helpers and without a
                               [delete: unpublished] tag (protocol dirs only)
    smr.raw-new                raw `new` outside the designated make helpers
                               (protocol dirs only)

  Suppression hygiene (warnings; never fail the run)
    suppression.undocumented   scripts/lint_suppressions.txt entry without a
                               justification comment directly above it
    suppression.unused         suppression entry that matched nothing
    tsan-supp.undocumented     scripts/tsan.supp entry without a one-line
                               justification comment directly above it

Annotation grammar (inside any C++ comment):
    [publishes: EDGE_A, EDGE_B]   release side of the named edge(s); binds to
                                  the next atomic op or fence within 3 lines
    [acquires: EDGE_A]            acquire side; same binding rule
    [smr: caller-pinned]          this function retires under the caller's
                                  guard (binds to the enclosing function, or
                                  to one starting within 5 lines below)
    [helper: no-retire]           this function is a helping path and must
                                  never retire (same binding rule)
    [delete: unpublished]         this `delete` destroys a node that was
                                  never published, so no grace period applies

Usage:
    protocol_lint.py [PATHS...]           lint (default: src/ next to repo)
    protocol_lint.py --json [FILE]        also emit lint-findings-v1 JSON;
                                          with no FILE, honors
                                          $CACHETRIE_LINT_OUT (file, or a
                                          directory to hold LINT_findings.json)
                                          and falls back to stdout
    protocol_lint.py --self-test DIR      fixture mode: each file is analyzed
                                          alone, suppressions are ignored and
                                          `// expect: <rule>` comments must
                                          match the findings exactly

Exit status: 0 when there are no unsuppressed error findings (warnings never
fail the run), 1 otherwise, 2 on usage errors.
"""

import fnmatch
import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTS = (".hpp", ".cpp", ".h", ".cc")

ATOMIC_METHODS = {
    "load", "store", "exchange",
    "compare_exchange_weak", "compare_exchange_strong",
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
}
CAS_METHODS = {"compare_exchange_weak", "compare_exchange_strong"}

# Directories whose raw new/delete traffic must flow through make/destroy
# helpers (the protocol node types live here). "net" carries no protocol
# nodes, but the serving layer buys into the same discipline: connection
# and buffer ownership is RAII-only, so any raw new/delete appearing there
# is a bug by construction.
PROTOCOL_NODE_DIRS = {"cachetrie", "ctrie", "chashmap", "skiplist", "net"}

# Enclosing-function names allowed to use raw new/delete on protocol nodes.
DESIGNATED_HELPER_RE = re.compile(
    r"^(~|make$|make_|destroy|free_|delete_|clone)")

CONTROL_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "catch", "return",
}
TYPE_SCOPE_KEYWORDS = {"struct", "class", "union", "enum", "namespace"}

ANNOTATION_RE = re.compile(
    r"\[(publishes|acquires):\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)\s*\]")
FUNC_ANNOTATION_RE = re.compile(r"\[(smr):\s*caller-pinned\s*\]|"
                                r"\[(helper):\s*no-retire\s*\]")
DELETE_ANNOTATION_RE = re.compile(r"\[delete:\s*unpublished\s*\]")
EXPECT_RE = re.compile(r"expect:\s*([a-z0-9.\-]+)")
EDGE_MACRO_RE = re.compile(r"^\s*#\s*define\s+CACHETRIE_ORDERING_EDGES\b")
EDGE_ENTRY_RE = re.compile(r"\bX\(\s*([A-Za-z0-9_]+)\s*,")

MAX_ANNOTATION_BIND_LINES = 3
MAX_FUNC_ANNOTATION_BIND_LINES = 5


class Finding:
    def __init__(self, rule, path, line, message, severity="error"):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.severity = severity
        self.suppressed_by = None

    def as_json(self):
        return {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "suppressed": self.suppressed_by is not None,
        }

    def render(self):
        tag = "warning" if self.severity == "warning" else "error"
        sup = "  [suppressed: {}]".format(self.suppressed_by) \
            if self.suppressed_by else ""
        return "{}:{}: {}: [{}] {}{}".format(
            self.path, self.line, tag, self.rule, self.message, sup)


class Token:
    __slots__ = ("text", "line", "col")

    def __init__(self, text, line, col):
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self):
        return "Token({!r}@{})".format(self.text, self.line)


class Comment:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line


PUNCT3 = ("<=>", "->*", "...", "<<=", ">>=")
PUNCT2 = ("::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
          "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--")
ID_START = re.compile(r"[A-Za-z_]")
ID_CHARS = re.compile(r"[A-Za-z0-9_]*")


def tokenize(text):
    """Returns (tokens, comments). Strings and chars collapse to one token;
    preprocessor logical lines (with continuations) are skipped entirely so
    macro bodies cannot unbalance the scope tree."""
    tokens = []
    comments = []
    i = 0
    n = len(text)
    line = 1
    col = 1
    at_line_start = True

    def advance(k):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = text[i]
        if c == "\n":
            advance(1)
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            advance(1)
            continue
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                if j < 0:
                    j = n
                comments.append(Comment(text[i:j], line))
                advance(j - i)
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                j = n if j < 0 else j + 2
                start_line = line
                body = text[i:j]
                # Multi-line block comments register one Comment per line so
                # annotations bind from the line they are written on.
                for off, part in enumerate(body.split("\n")):
                    comments.append(Comment(part, start_line + off))
                advance(j - i)
                continue
        if c == "#" and at_line_start:
            # Preprocessor logical line (follow backslash continuations).
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    k = n
                    break
                if text[k - 1] == "\\" or (k >= 2 and text[k - 2:k] == "\\\r"):
                    j = k + 1
                    continue
                break
            advance(k - i)
            continue
        at_line_start = False
        if c == '"':
            if tokens and tokens[-1].text == "R":
                # Raw string literal R"delim( ... )delim"
                m = re.match(r'R"([^()\s\\]{0,16})\(', text[i - 1:i + 20])
                if m:
                    delim = ")" + m.group(1) + '"'
                    j = text.find(delim, i)
                    j = n if j < 0 else j + len(delim)
                    tokens[-1] = Token("<str>", tokens[-1].line,
                                       tokens[-1].col)
                    advance(j - i)
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            tokens.append(Token("<str>", line, col))
            advance(min(j + 1, n) - i)
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            tokens.append(Token("<chr>", line, col))
            advance(min(j + 1, n) - i)
            continue
        if ID_START.match(c):
            m = ID_CHARS.match(text, i + 1)
            word = text[i:m.end()]
            tokens.append(Token(word, line, col))
            advance(len(word))
            continue
        if c.isdigit():
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("<num>", line, col))
            advance(j - i)
            continue
        three = text[i:i + 3]
        if three in PUNCT3:
            tokens.append(Token(three, line, col))
            advance(3)
            continue
        two = text[i:i + 2]
        if two in PUNCT2:
            tokens.append(Token(two, line, col))
            advance(2)
            continue
        tokens.append(Token(c, line, col))
        advance(1)
    return tokens, comments


class Scope:
    """One {...} region. kind: 'function' | 'type' | 'control' | 'other'."""
    __slots__ = ("kind", "name", "open_index", "close_index", "parent",
                 "open_line", "header_line", "caller_pinned", "no_retire")

    def __init__(self, kind, name, open_index, open_line, header_line,
                 parent):
        self.kind = kind
        self.name = name
        self.open_index = open_index
        self.close_index = None
        self.open_line = open_line
        self.header_line = header_line
        self.parent = parent
        self.caller_pinned = False
        self.no_retire = False


def classify_scope(tokens, open_idx, boundary_idx):
    """Classifies the scope opened by tokens[open_idx] == '{' using its
    header: the tokens since the last top-level ';', '{' or '}'. Returns
    (kind, name, header_line)."""
    header = tokens[boundary_idx + 1:open_idx]
    if not header:
        return "other", "", tokens[open_idx].line
    header_line = header[0].line
    words = [t.text for t in header]
    # Strip access-specifier prefixes that survive the boundary cut.
    while len(words) >= 2 and words[0] in ("public", "private", "protected") \
            and words[1] == ":":
        words = words[2:]
        header = header[2:]
        if header:
            header_line = header[0].line
    if not words:
        return "other", "", header_line
    for w in words:
        if w in TYPE_SCOPE_KEYWORDS:
            return "type", "", header_line
    if words[0] in CONTROL_KEYWORDS or words[-1] == "else":
        return "control", "", header_line
    if "(" not in words:
        # Braced initializer / requires clause / etc.
        return "other", "", header_line
    paren = words.index("(")
    if paren == 0:
        return "control", "", header_line
    name = words[paren - 1]
    if name in CONTROL_KEYWORDS:
        return "control", "", header_line
    if name == "]":  # lambda introducer [..](..) { }
        return "function", "<lambda>", header_line
    if paren >= 2 and words[paren - 2] == "~":
        name = "~" + name
    return "function", name, header_line


def build_scopes(tokens):
    """Returns (scopes, scope_at_index): a scope tree plus, for every token
    index, the innermost enclosing scope (or None at namespace level --
    namespace scopes are kind 'type')."""
    scopes = []
    scope_at = [None] * len(tokens)
    stack = []
    boundary = -1  # index of last ';' '{' '}' at current nesting
    boundary_stack = []
    for idx, tok in enumerate(tokens):
        scope_at[idx] = stack[-1] if stack else None
        if tok.text == "{":
            kind, name, header_line = classify_scope(tokens, idx, boundary)
            sc = Scope(kind, name, idx, tok.line, header_line,
                       stack[-1] if stack else None)
            scopes.append(sc)
            stack.append(sc)
            boundary_stack.append(boundary)
            boundary = idx
        elif tok.text == "}":
            if stack:
                stack[-1].close_index = idx
                stack.pop()
            boundary = idx
            if boundary_stack:
                boundary_stack.pop()
        elif tok.text == ";":
            boundary = idx
    return scopes, scope_at


def enclosing_function(scope):
    while scope is not None and scope.kind != "function":
        scope = scope.parent
    return scope


def function_chain(scope):
    """All function scopes from innermost outwards (lambdas included)."""
    chain = []
    while scope is not None:
        if scope.kind == "function":
            chain.append(scope)
        scope = scope.parent
    return chain


class AtomicSite:
    __slots__ = ("method", "line", "index", "order_args", "n_args",
                 "is_fence", "line_text")

    def __init__(self, method, line, index, order_args, n_args, is_fence,
                 line_text):
        self.method = method
        self.line = line
        self.index = index
        self.order_args = order_args  # list of memory_order_* spellings
        self.n_args = n_args
        self.is_fence = is_fence
        self.line_text = line_text


def match_call_args(tokens, open_paren_idx):
    """Parses a balanced argument list starting at tokens[open_paren_idx] ==
    '('. Returns (n_args, order_args, close_idx) where order_args collects
    every std::memory_order_* spelling by top-level argument position."""
    depth = 0
    args_present = False
    orders = []
    i = open_paren_idx
    while i < len(tokens):
        t = tokens[i].text
        if t in "([":
            depth += 1
        elif t in ")]":
            depth -= 1
            if depth == 0:
                break
        elif t == "<":
            pass  # comparisons/templates do not affect () balance
        if depth >= 1 and t not in "()":
            args_present = True
        if depth >= 1 and t.startswith("memory_order"):
            orders.append(t)
        i += 1
    n_args = 0
    if args_present:
        n_args = 1
        depth = 0
        for j in range(open_paren_idx, i):
            t = tokens[j].text
            if t in "([":
                depth += 1
            elif t in ")]":
                depth -= 1
            elif t == "," and depth == 1:
                n_args += 1
    return n_args, orders, i


def collect_atomic_sites(tokens, lines):
    sites = []
    for idx, tok in enumerate(tokens):
        if tok.text in ATOMIC_METHODS:
            if idx == 0 or tokens[idx - 1].text not in (".", "->"):
                continue
            j = idx + 1
            if j < len(tokens) and tokens[j].text == "<":  # .load<...>? no,
                continue                                   # not a call form
            if j >= len(tokens) or tokens[j].text != "(":
                continue
            n_args, orders, _ = match_call_args(tokens, j)
            sites.append(AtomicSite(tok.text, tok.line, idx, orders, n_args,
                                    False, lines[tok.line - 1]))
        elif tok.text == "atomic_thread_fence":
            j = idx + 1
            if j >= len(tokens) or tokens[j].text != "(":
                continue
            n_args, orders, _ = match_call_args(tokens, j)
            sites.append(AtomicSite("atomic_thread_fence", tok.line, idx,
                                    orders, n_args, True,
                                    lines[tok.line - 1]))
    return sites


def parse_edge_table(text):
    """Extracts edge names from a CACHETRIE_ORDERING_EDGES X-macro block.
    Returns {name: line}."""
    edges = {}
    lines = text.split("\n")
    i = 0
    while i < len(lines):
        if EDGE_MACRO_RE.search(lines[i]):
            j = i
            while j < len(lines):
                for m in EDGE_ENTRY_RE.finditer(lines[j]):
                    edges.setdefault(m.group(1), j + 1)
                if not lines[j].rstrip().endswith("\\"):
                    break
                j += 1
            i = j
        i += 1
    return edges


class FileAnalysis:
    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.split("\n")
        self.tokens, self.comments = tokenize(text)
        self.scopes, self.scope_at = build_scopes(self.tokens)
        self.sites = collect_atomic_sites(self.tokens, self.lines)
        self.edges = parse_edge_table(text)
        self.findings = []
        # edge name -> counts of bound annotations in this file
        self.publishes = {}
        self.acquires = {}

    def add(self, rule, line, message, severity="error"):
        self.findings.append(
            Finding(rule, self.rel, line, message, severity))

    # --- rule family 1: atomics discipline -------------------------------

    def check_atomics(self):
        for s in self.sites:
            if s.is_fence:
                continue  # the fence's order argument is not defaultable
            if s.method in CAS_METHODS:
                if len(s.order_args) == 0:
                    self.add("atomics.default-order", s.line,
                             ".{}() with defaulted memory order -- spell "
                             "out both the success and failure orders"
                             .format(s.method))
                elif len(s.order_args) == 1:
                    self.add("atomics.cas-failure-order", s.line,
                             ".{}() names only the success order ({}); the "
                             "failure order must be explicit too"
                             .format(s.method, s.order_args[0]))
                continue
            if not s.order_args:
                self.add("atomics.default-order", s.line,
                         ".{}() with defaulted memory order -- name the "
                         "intended std::memory_order_* (seq_cst included)"
                         .format(s.method))

    # --- rule family 2: ordering-contract annotations --------------------

    def check_contracts(self, declared_edges):
        site_by_line = {}
        for s in self.sites:
            site_by_line.setdefault(s.line, s)
        for c in self.comments:
            for m in ANNOTATION_RE.finditer(c.text):
                kind = m.group(1)
                names = [x.strip() for x in m.group(2).split(",")]
                site = None
                for d in range(0, MAX_ANNOTATION_BIND_LINES + 1):
                    site = site_by_line.get(c.line + d)
                    if site is not None:
                        break
                if site is None:
                    self.add("contract.orphan-annotation", c.line,
                             "[{}: {}] does not bind to any atomic "
                             "operation or fence on this line or the next "
                             "{} lines".format(kind, ", ".join(names),
                                               MAX_ANNOTATION_BIND_LINES))
                    continue
                for name in names:
                    if name not in declared_edges:
                        self.add("contract.unknown-edge", c.line,
                                 "[{}: {}] names an edge that "
                                 "src/util/ordering_contracts.hpp does not "
                                 "declare".format(kind, name))
                        continue
                    if kind == "publishes":
                        self.publishes[name] = self.publishes.get(name, 0) + 1
                    else:
                        self.acquires[name] = self.acquires.get(name, 0) + 1
                if kind == "acquires" and not site.is_fence:
                    if site.method == "load" and all(
                            o.endswith("relaxed") for o in site.order_args) \
                            and site.order_args:
                        self.add("contract.relaxed-acquire", site.line,
                                 "a memory_order_relaxed load cannot be the "
                                 "acquire side of edge {} -- it synchronizes "
                                 "with nothing".format(", ".join(names)))
                if kind == "publishes" and not site.is_fence:
                    if site.method == "load":
                        self.add("contract.publish-on-load", site.line,
                                 "a pure load cannot be the release side of "
                                 "edge {}".format(", ".join(names)))

    # --- rule family 3: SMR discipline ------------------------------------

    def bind_function_annotations(self):
        funcs = [s for s in self.scopes if s.kind == "function"]
        for c in self.comments:
            m = FUNC_ANNOTATION_RE.search(c.text)
            if not m:
                continue
            kind = "caller-pinned" if m.group(1) else "no-retire"
            # Prefer the function whose body contains the comment; else the
            # first function whose header starts within the next few lines.
            target = None
            for f in funcs:
                if f.open_line <= c.line and (
                        f.close_index is not None and
                        self.tokens[f.close_index].line >= c.line):
                    if target is None or f.open_line >= target.open_line:
                        target = f
            if target is None:
                best = None
                for f in funcs:
                    if c.line <= f.header_line <= \
                            c.line + MAX_FUNC_ANNOTATION_BIND_LINES:
                        if best is None or f.header_line < best.header_line:
                            best = f
                target = best
            if target is None:
                self.add("contract.orphan-annotation", c.line,
                         "[{}] does not bind to any function".format(
                             "smr: caller-pinned" if kind == "caller-pinned"
                             else "helper: no-retire"))
                continue
            if kind == "caller-pinned":
                target.caller_pinned = True
            else:
                target.no_retire = True

    def is_retire_call(self, idx):
        tok = self.tokens[idx]
        if not tok.text.startswith("retire"):
            return False
        if tok.text == "retire_pulse":
            return False
        j = idx + 1
        if j < len(self.tokens) and self.tokens[j].text == "<":
            # Reclaimer::template retire<T>(p)
            depth = 0
            while j < len(self.tokens):
                t = self.tokens[j].text
                if t == "<":
                    depth += 1
                elif t == ">":
                    depth -= 1
                    if depth == 0:
                        j += 1
                        break
                elif t in (";", "{", "}"):
                    return False
                j += 1
        return j < len(self.tokens) and self.tokens[j].text == "("

    def is_declaration_header(self, idx):
        """True when tokens[idx] names the function being *defined or
        declared* (e.g. `void retire(...)` or `EpochDomain::retire(...) {`)
        rather than called. Heuristic: the matching ')' is followed by
        tokens that open a body / terminate a declaration at class or
        namespace scope."""
        return enclosing_function(self.scope_at[idx]) is None

    def check_smr(self, dir_parts):
        self.bind_function_annotations()
        n = len(self.tokens)
        for idx, tok in enumerate(self.tokens):
            if self.is_retire_call(idx) and not self.is_declaration_header(
                    idx):
                fn = enclosing_function(self.scope_at[idx])
                chain = function_chain(self.scope_at[idx])
                for f in chain:
                    if f.no_retire:
                        self.add("smr.helper-retires", tok.line,
                                 "{}() is annotated [helper: no-retire] but "
                                 "calls {}".format(f.name, tok.text))
                        break
                pinned = any(f.caller_pinned for f in chain)
                if not pinned:
                    for f in chain:
                        lo, hi = f.open_index, idx
                        for j in range(lo, hi):
                            if self.tokens[j].text == "pin" and \
                                    j + 1 < n and \
                                    self.tokens[j + 1].text == "(":
                                pinned = True
                                break
                        if pinned:
                            break
                if not pinned:
                    where = fn.name + "()" if fn else "namespace scope"
                    self.add("smr.retire-outside-guard", tok.line,
                             "{} called in {} with no reclaimer guard "
                             "pinned in scope and no [smr: caller-pinned] "
                             "annotation".format(tok.text, where))
        if not (PROTOCOL_NODE_DIRS & dir_parts):
            return
        delete_ok_lines = set()
        for c in self.comments:
            if DELETE_ANNOTATION_RE.search(c.text):
                for d in range(0, MAX_ANNOTATION_BIND_LINES + 1):
                    delete_ok_lines.add(c.line + d)
        for idx, tok in enumerate(self.tokens):
            prev = self.tokens[idx - 1].text if idx > 0 else ""
            if tok.text == "delete":
                if prev in ("=", "operator"):
                    continue  # deleted member / operator delete definition
                fn = enclosing_function(self.scope_at[idx])
                if fn is None:
                    continue  # default-member or declaration context
                if DESIGNATED_HELPER_RE.search(fn.name):
                    continue
                if tok.line in delete_ok_lines:
                    continue
                self.add("smr.raw-delete", tok.line,
                         "raw delete in {}() -- route through a destroy "
                         "helper or tag the site [delete: unpublished] if "
                         "the node was never published".format(fn.name))
            elif tok.text == "new":
                if prev == "operator":
                    continue  # ::operator new(size) raw storage
                fn = enclosing_function(self.scope_at[idx])
                if fn is None:
                    continue
                if DESIGNATED_HELPER_RE.search(fn.name) or \
                        fn.name == "<lambda>":
                    continue
                # Constructors allocate members; allow Type() ctors whose
                # name matches the enclosing type scope.
                ts = self.scope_at[idx]
                ctor = False
                while ts is not None:
                    if ts.kind == "type":
                        break
                    ts = ts.parent
                if fn and fn.parent is not None and \
                        fn.parent.kind == "type":
                    ctor = True  # member function of a node type: let the
                    # designated-name check above govern; ctors are caught
                    # by name == type which we cannot resolve -- be lenient
                    # only for placement new.
                if idx + 1 < len(self.tokens) and \
                        self.tokens[idx + 1].text == "(":
                    continue  # placement new only appears in make helpers
                del ctor
                self.add("smr.raw-new", tok.line,
                         "raw new in {}() -- protocol nodes are allocated "
                         "by their designated make helpers".format(fn.name))


# --- suppressions ----------------------------------------------------------

class Suppression:
    __slots__ = ("rule", "glob", "content", "line", "documented", "used")

    def __init__(self, rule, glob, content, line, documented):
        self.rule = rule
        self.glob = glob
        self.content = content
        self.line = line
        self.documented = documented
        self.used = False

    def matches(self, finding):
        if self.rule != "*" and finding.rule != self.rule:
            return False
        if not fnmatch.fnmatch(finding.path, self.glob) and \
                self.glob not in finding.path:
            return False
        if self.content:
            try:
                if not re.search(self.content, finding.message):
                    return False
            except re.error:
                return False
        return True

    def spec(self):
        return "{}:{}{}".format(self.rule, self.glob,
                                ":" + self.content if self.content else "")


def load_suppressions(path, findings_out):
    sups = []
    if not os.path.exists(path):
        return sups
    rel = os.path.relpath(path, REPO)
    prev_was_comment = False
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line:
                prev_was_comment = False
                continue
            if line.startswith("#"):
                prev_was_comment = True
                continue
            parts = line.split(":", 2)
            if len(parts) < 2:
                findings_out.append(Finding(
                    "suppression.undocumented", rel, lineno,
                    "malformed suppression (want rule:path-glob[:regex]): "
                    + line, "warning"))
                prev_was_comment = False
                continue
            rule, glob = parts[0].strip(), parts[1].strip()
            content = parts[2].strip() if len(parts) == 3 else ""
            sup = Suppression(rule, glob, content, lineno, prev_was_comment)
            if not prev_was_comment:
                findings_out.append(Finding(
                    "suppression.undocumented", rel, lineno,
                    "suppression '{}' has no justification comment on the "
                    "line(s) above it".format(sup.spec()), "warning"))
            sups.append(sup)
            prev_was_comment = False
    return sups


def audit_tsan_supp(path, findings_out):
    """Every active tsan.supp entry must carry a justification comment
    directly above it (satellite: documented, auditable suppressions)."""
    if not os.path.exists(path):
        return
    rel = os.path.relpath(path, REPO)
    prev_was_comment = False
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line:
                prev_was_comment = False
                continue
            if line.startswith("#"):
                prev_was_comment = True
                continue
            if not prev_was_comment:
                findings_out.append(Finding(
                    "tsan-supp.undocumented", rel, lineno,
                    "TSan suppression '{}' has no one-line justification "
                    "comment directly above it".format(line), "warning"))
            prev_was_comment = False


# --- driving ---------------------------------------------------------------

def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        else:
            for root, dirs, names in os.walk(p):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTS):
                        files.append(os.path.join(root, name))
    return files


def analyze_files(files, pooled=True):
    """Returns (analyses, findings). With pooled=True the edge table and the
    publish/acquire coverage are checked across all files together."""
    analyses = []
    for path in files:
        rel = os.path.relpath(path, REPO)
        if rel.startswith(".."):
            rel = path
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        analyses.append(FileAnalysis(path, rel, text))

    declared = {}
    table_rel = None
    table_lines = {}
    for a in analyses:
        for name, line in a.edges.items():
            declared[name] = True
            if name not in table_lines:
                table_lines[name] = (a.rel, line)
                table_rel = a.rel
    for a in analyses:
        a.check_atomics()
        a.check_contracts(declared)
        dir_parts = set(a.rel.replace("\\", "/").split("/"))
        a.check_smr(dir_parts)

    findings = []
    for a in analyses:
        findings.extend(a.findings)

    if declared and pooled:
        pub = {}
        acq = {}
        for a in analyses:
            for k, v in a.publishes.items():
                pub[k] = pub.get(k, 0) + v
            for k, v in a.acquires.items():
                acq[k] = acq.get(k, 0) + v
        for name in sorted(declared):
            rel, line = table_lines.get(name, (table_rel, 1))
            if pub.get(name, 0) == 0:
                findings.append(Finding(
                    "contract.missing-publish", rel, line,
                    "edge {} is declared but no site carries "
                    "[publishes: {}]".format(name, name)))
            if acq.get(name, 0) == 0:
                findings.append(Finding(
                    "contract.missing-acquire", rel, line,
                    "edge {} is declared but no site carries "
                    "[acquires: {}]".format(name, name)))
        coverage = {name: {"publishes": pub.get(name, 0),
                           "acquires": acq.get(name, 0)}
                    for name in sorted(declared)}
    else:
        coverage = {}
    return analyses, findings, coverage


def self_test(fixture_dir):
    """Each fixture is analyzed alone. `// expect: <rule>` comments state the
    exact multiset of findings the file must produce; files without expect
    comments must come out clean."""
    files = gather_files([fixture_dir])
    if not files:
        print("protocol_lint: no fixtures under", fixture_dir,
              file=sys.stderr)
        return 2
    failures = 0
    total_checks = 0
    for path in files:
        analyses, findings, _ = analyze_files([path], pooled=True)
        a = analyses[0]
        expected = {}
        for c in a.comments:
            for m in EXPECT_RE.finditer(c.text):
                expected[m.group(1)] = expected.get(m.group(1), 0) + 1
        got = {}
        for f in findings:
            if f.severity == "error":
                got[f.rule] = got.get(f.rule, 0) + 1
        total_checks += max(1, sum(expected.values()))
        if got != expected:
            failures += 1
            print("FAIL {}:".format(a.rel))
            print("  expected: {}".format(
                json.dumps(expected, sort_keys=True)))
            print("  got:      {}".format(json.dumps(got, sort_keys=True)))
            for f in findings:
                print("    " + f.render())
        else:
            label = "clean" if not expected else \
                ", ".join("{} x{}".format(k, v)
                          for k, v in sorted(expected.items()))
            print("ok   {} ({})".format(a.rel, label))
    print("self-test: {} fixture file(s), {} failure(s)".format(
        len(files), failures))
    return 1 if failures else 0


def resolve_json_out(arg_path):
    if arg_path:
        return arg_path
    env = os.environ.get("CACHETRIE_LINT_OUT")
    if not env:
        return None
    if os.path.isdir(env):
        return os.path.join(env, "LINT_findings.json")
    return env


def main(argv):
    args = argv[1:]
    json_requested = False
    json_path = None
    self_test_dir = None
    paths = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--json":
            json_requested = True
            if i + 1 < len(args) and not args[i + 1].startswith("-") and \
                    args[i + 1].endswith(".json"):
                json_path = args[i + 1]
                i += 1
        elif a == "--self-test":
            if i + 1 >= len(args):
                print("--self-test needs a fixture directory",
                      file=sys.stderr)
                return 2
            self_test_dir = args[i + 1]
            i += 1
        elif a in ("-h", "--help"):
            print(__doc__)
            return 0
        elif a.startswith("-"):
            print("unknown flag:", a, file=sys.stderr)
            return 2
        else:
            paths.append(a)
        i += 1

    if self_test_dir is not None:
        return self_test(self_test_dir)

    if not paths:
        paths = [os.path.join(REPO, "src")]
    files = gather_files(paths)
    if not files:
        print("protocol_lint: no source files under:", " ".join(paths),
              file=sys.stderr)
        return 2

    analyses, findings, coverage = analyze_files(files, pooled=True)

    audit_tsan_supp(os.path.join(REPO, "scripts", "tsan.supp"), findings)
    sup_path = os.path.join(REPO, "scripts", "lint_suppressions.txt")
    sups = load_suppressions(sup_path, findings)
    for f in findings:
        if f.rule.startswith("suppression.") or \
                f.rule.startswith("tsan-supp."):
            continue
        for s in sups:
            if s.matches(f):
                f.suppressed_by = s.spec()
                s.used = True
                break
    for s in sups:
        if not s.used:
            findings.append(Finding(
                "suppression.unused", os.path.relpath(sup_path, REPO),
                s.line, "suppression '{}' matched nothing -- delete it"
                .format(s.spec()), "warning"))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    active = [f for f in findings
              if f.severity == "error" and f.suppressed_by is None]
    warnings = [f for f in findings if f.severity == "warning"]
    suppressed = [f for f in findings if f.suppressed_by is not None]

    for f in findings:
        print(f.render())
    print("protocol_lint: {} file(s), {} error(s), {} warning(s), {} "
          "suppressed".format(len(files), len(active), len(warnings),
                              len(suppressed)))
    if coverage:
        both = sum(1 for v in coverage.values()
                   if v["publishes"] and v["acquires"])
        print("protocol_lint: {} ordering edge(s) declared, {} with both "
              "sides annotated".format(len(coverage), both))

    if json_requested:
        doc = {
            "schema": "lint-findings-v1",
            "roots": [os.path.relpath(p, REPO) if not os.path.isabs(p)
                      or p.startswith(REPO) else p for p in paths],
            "files_scanned": len(files),
            "findings": [f.as_json() for f in findings],
            "edges": coverage,
            "summary": {
                "errors": len(active),
                "warnings": len(warnings),
                "suppressed": len(suppressed),
            },
        }
        out = resolve_json_out(json_path)
        payload = json.dumps(doc, indent=2, sort_keys=True)
        if out:
            with open(out, "w", encoding="utf-8") as f:
                f.write(payload + "\n")
            print("protocol_lint: wrote", out)
        else:
            print(payload)

    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
