#!/usr/bin/env bash
# check.sh — protocol lint, then build + run the fast test label under
# three toolchains (plain, AddressSanitizer+UBSan, ThreadSanitizer), then
# a perf-smoke regression gate (scripts/perf_gate.py vs the committed
# baseline). Each configuration gets its own build tree so they never
# fight over the CMake cache.
#
#   scripts/check.sh            # all stages (lint, plain, asan, tsan, perf)
#   scripts/check.sh lint       # just one stage (lint|plain|asan|tsan|perf)
#
# The fault label (fault-injection + stall-tolerant reclamation + progress
# watchdog, see tests/*fault*, tests/watchdog_progress_test.cpp) runs in the
# plain and tsan stages. It is skipped under ASan because killed victim
# threads intentionally leak their in-flight allocations (simulated thread
# death never runs cleanup) and LeakSanitizer would report exactly those.
#
# The net label (serving-layer connection-fault battery,
# tests/net_fault_test.cpp) runs in the same two stages for the same
# reasons: killed shard threads leak by design, and its latency/liveness
# assertions need the machine to themselves.
#
# The trace label (flight recorder: tests/trace_test.cpp and the
# chaos-perturbed tests/trace_smoke_test.cpp, which replays the stalled-
# reader fault seed) runs in the same two stages for the same reason, with
# $CACHETRIE_TRACE_OUT pointed into the build tree; the plain stage then
# smoke-runs scripts/trace_summarize.py over whatever TRACE_*.json the
# tests dumped.
#
# The slow label (soak_test, lin_check_test) is excluded here on purpose —
# run `ctest -L slow` in any of the build trees for the long suite.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_stage() {
  local stage="$1"
  shift
  local dir="$repo/build-check-$stage"
  echo "=== [$stage] configure + build ==="
  cmake -B "$dir" -S "$repo" -DCACHETRIE_BUILD_BENCH=OFF \
    -DCACHETRIE_BUILD_EXAMPLES=OFF "$@" >/dev/null
  cmake --build "$dir" -j "$jobs" >/dev/null
  echo "=== [$stage] ctest -L fast ==="
  local -a env_prefix=()
  if [ "$stage" = tsan ]; then
    # The epoch reclaimer's grace-period argument is seq_cst-total-order
    # (Dekker) reasoning that TSan's happens-before model cannot fully
    # express; suppress its quarantined-free paths only (see tsan.supp).
    env_prefix=(env TSAN_OPTIONS="suppressions=$repo/scripts/tsan.supp history_size=7")
  fi
  "${env_prefix[@]}" ctest --test-dir "$dir" -L fast --output-on-failure -j "$jobs"
  if [ "$stage" = plain ] || [ "$stage" = tsan ]; then
    echo "=== [$stage] ctest -L bounded ==="
    # Bounded-memory mode lin-check battery. The plain stage runs the full
    # 8-seed x 1250-history sweep; tsan gets a shorter sweep per seed (the
    # instrumented build is ~20x slower and the schedules it explores are
    # already radically different).
    local -a bounded_env=()
    if [ "$stage" = tsan ]; then
      bounded_env=(env CACHETRIE_BOUNDED_LIN_HISTORIES=150)
    fi
    "${env_prefix[@]}" "${bounded_env[@]}" \
      ctest --test-dir "$dir" -L bounded --output-on-failure -j 1
    echo "=== [$stage] ctest -L fault ==="
    # Liveness windows: the watchdog asserts per-tick progress, so never
    # run fault tests in parallel with each other on a loaded box.
    "${env_prefix[@]}" ctest --test-dir "$dir" -L fault --output-on-failure -j 1
    echo "=== [$stage] ctest -L net ==="
    # Serving-layer fault battery (tests/net_fault_test.cpp): loopback
    # servers with killed/stalled shard threads and latency assertions —
    # same two reasons as fault (leaky victims, liveness windows), so the
    # same stages and the same -j 1.
    "${env_prefix[@]}" ctest --test-dir "$dir" -L net --output-on-failure -j 1
    echo "=== [$stage] ctest -L trace ==="
    local trace_out="$dir/trace-out"
    rm -rf "$trace_out" && mkdir -p "$trace_out"
    "${env_prefix[@]}" env CACHETRIE_TRACE_OUT="$trace_out" \
      ctest --test-dir "$dir" -L trace --output-on-failure -j 1
    if [ "$stage" = plain ]; then
      echo "=== [$stage] trace_summarize smoke (strict) ==="
      # --strict: an event name missing from the summarizer's KNOWN_EVENTS
      # table (drift vs trace_events.hpp) fails the stage instead of
      # scrolling by as a warning.
      python3 "$repo/scripts/trace_summarize.py" --strict --top 5 \
        "$trace_out"/TRACE_*.json
      echo "=== [$stage] fig15 phase-attribution trace smoke ==="
      # Flip benches on in the same tree (cache update; only fig15 and its
      # objects build), run the served-load bench with the flight recorder
      # live, and smoke the summarizer's tail-attribution view over the
      # dump — stdlib only, non-zero exit on a malformed dump, and the
      # view itself must be present.
      cmake -B "$dir" -S "$repo" -DCACHETRIE_BUILD_BENCH=ON >/dev/null
      cmake --build "$dir" -j "$jobs" --target fig15_served_load >/dev/null
      (cd "$dir" && env CACHETRIE_TRACE_ENABLE=1 \
        CACHETRIE_TRACE_OUT="$trace_out" CACHETRIE_TRACE_RING=65536 \
        ./bench/fig15_served_load >/dev/null)
      python3 "$repo/scripts/trace_summarize.py" --strict --top 5 \
        "$trace_out/TRACE_fig15_served_load.json" \
        | tee "$trace_out/fig15_phase_view.txt"
      grep -q "tail attribution" "$trace_out/fig15_phase_view.txt" || {
        echo "FAIL: fig15 dump produced no tail-attribution view" >&2
        exit 1
      }
    fi
  fi
}

# Perf-smoke stage: build the metrics-ON bench tree, run the fixed-size
# canary, and gate the artifact against the committed baseline. Tolerances
# are deliberately generous (+100% and 3 sigma) — the baseline was recorded
# on one container; this catches order-of-magnitude breakage (an accidental
# O(n) scan on the hot path), not single-digit drift.
run_perf() {
  local dir="$repo/build-check-perf"
  echo "=== [perf] configure + build perf_smoke (metrics ON) ==="
  cmake -B "$dir" -S "$repo" -DCACHETRIE_BUILD_TESTS=OFF \
    -DCACHETRIE_BUILD_EXAMPLES=OFF -DCACHETRIE_BUILD_BENCH=ON \
    -DCACHETRIE_METRICS=ON >/dev/null
  cmake --build "$dir" -j "$jobs" --target perf_smoke \
    --target fig14_bounded_churn --target fig15_served_load >/dev/null
  echo "=== [perf] run perf_smoke ==="
  (cd "$dir" && ./bench/perf_smoke)
  echo "=== [perf] gate vs committed baseline ==="
  python3 "$repo/scripts/perf_gate.py" \
    "$repo/bench/BENCH_smoke.baseline.json" "$dir/BENCH_smoke.json" \
    --tolerance 1.0 --min-ms 0.5 --noise-stddevs 3
  # Bounded-mode churn/zipf canary: the binary itself hard-fails if the
  # resident high-water mark escapes the byte ceiling (+ overshoot slack);
  # the gate then watches the footprint/miss-rate/timing cells for drift.
  echo "=== [perf] run fig14_bounded_churn ==="
  (cd "$dir" && ./bench/fig14_bounded_churn)
  echo "=== [perf] gate fig14 vs committed baseline ==="
  python3 "$repo/scripts/perf_gate.py" \
    "$repo/bench/BENCH_fig14_bounded_churn.baseline.json" \
    "$dir/BENCH_fig14_bounded_churn.json" \
    --tolerance 1.0 --min-ms 0.5 --noise-stddevs 3
  # Serving-layer canary: the binary hard-fails on the robustness
  # invariants themselves (shard death, protocol errors, a write-buffer
  # escape); the gate watches the open-loop tail cells for drift. Wider
  # tolerance than the in-process gates — these tails cross the kernel
  # socket path and a 1-core scheduler.
  echo "=== [perf] run fig15_served_load ==="
  (cd "$dir" && ./bench/fig15_served_load)
  echo "=== [perf] gate fig15 vs committed baseline ==="
  python3 "$repo/scripts/perf_gate.py" \
    "$repo/bench/BENCH_fig15_served_load.baseline.json" \
    "$dir/BENCH_fig15_served_load.json" \
    --tolerance 3.0 --min-ms 0.5 --noise-stddevs 4
}

# Lint stage: no build tree needed — runs the static protocol checks
# (scripts/protocol_lint.py) over src/ plus the fixture self-test. First
# in `all` so a contract violation fails in seconds, before any compile.
run_lint() {
  echo "=== [lint] protocol_lint src/ ==="
  python3 "$repo/scripts/protocol_lint.py" "$repo/src"
  echo "=== [lint] protocol_lint --self-test ==="
  python3 "$repo/scripts/protocol_lint.py" \
    --self-test "$repo/tests/lint_fixtures"
}

want="${1:-all}"

case "$want" in
  lint) run_lint ;;
  plain) run_stage plain ;;
  asan) run_stage asan -DCACHETRIE_SANITIZE=ON ;;
  tsan) run_stage tsan -DCACHETRIE_TSAN=ON ;;
  perf) run_perf ;;
  all)
    run_lint
    run_stage plain
    run_stage asan -DCACHETRIE_SANITIZE=ON
    run_stage tsan -DCACHETRIE_TSAN=ON
    run_perf
    ;;
  *)
    echo "usage: $0 [lint|plain|asan|tsan|perf|all]" >&2
    exit 2
    ;;
esac

echo "=== all requested stages passed ==="
