#!/usr/bin/env python3
"""perf_gate.py — diff two cachetrie-bench-v1 JSON artifacts for regressions.

Usage:
    scripts/perf_gate.py OLD.json NEW.json [--tolerance 0.5]
        [--min-ms 0.5] [--noise-stddevs 3.0]

A cell regresses when

    new_mean > old_mean * (1 + tolerance) + noise_stddevs * max(sd_old, sd_new)

i.e. the relative budget AND a statistical-noise allowance must both be
exceeded. Cells where both means are below --min-ms are skipped outright
(sub-millisecond timings on shared CI boxes are noise). Cells whose params
carry a non-timing unit (e.g. "unit": "bytes" footprints) are compared with
the same relative budget but no stddev allowance (they are exact counts) —
EXCEPT latency-percentile cells (params carry a "stat" key, e.g.
stat=p99 unit=ns), which are measured quantities with a cross-pass stddev
and get the same noise allowance as wall-clock timings. Their ns values are
numerically far above --min-ms, so tails are always gated, never skipped.

Cells are matched on (structure, params). Cells present in only one file
are reported but never fail the gate — benchmarks may gain or lose rows
across commits. Exit status: 0 = no regressions, 1 = at least one
regression, 2 = usage/schema error.

Stdlib only; no third-party imports.
"""

import argparse
import json
import sys

SCHEMA = "cachetrie-bench-v1"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_gate: cannot load {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if doc.get("schema") != SCHEMA:
        print(
            f"perf_gate: {path}: schema {doc.get('schema')!r}, "
            f"expected {SCHEMA!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return doc


def index_cells(doc, path):
    cells = {}
    for cell in doc.get("results", []):
        params = cell.get("params", {})
        key = (cell.get("structure", "?"), frozenset(params.items()))
        if key in cells:
            print(f"perf_gate: {path}: duplicate cell {fmt_key(key)}",
                  file=sys.stderr)
            raise SystemExit(2)
        cells[key] = cell
    return cells


def fmt_key(key):
    structure, params = key
    ptxt = " ".join(f"{k}={v}" for k, v in sorted(params))
    return f"{structure} [{ptxt}]"


def has_noise(cell):
    """Measured (noisy) cells: wall-clock timings (no unit) and latency
    percentiles (a "stat" param). Exact counts (bytes, fractions) are
    neither and get no stddev allowance."""
    params = cell.get("params", {})
    return params.get("unit") is None or params.get("stat") is not None


def main():
    ap = argparse.ArgumentParser(
        description="Gate on perf regressions between two bench JSON files.")
    ap.add_argument("old", help="baseline artifact (known-good run)")
    ap.add_argument("new", help="candidate artifact (current run)")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="relative slowdown budget (0.5 = +50%%; container "
                         "runs are noisy, keep this generous)")
    ap.add_argument("--min-ms", type=float, default=0.5,
                    help="skip cells where both means are below this")
    ap.add_argument("--noise-stddevs", type=float, default=3.0,
                    help="additional absolute allowance in units of the "
                         "larger stddev of the two runs")
    args = ap.parse_args()

    old_doc = load(args.old)
    new_doc = load(args.new)
    old_cells = index_cells(old_doc, args.old)
    new_cells = index_cells(new_doc, args.new)

    if old_doc.get("env", {}).get("repro_scale") != \
            new_doc.get("env", {}).get("repro_scale"):
        print("perf_gate: WARNING: repro_scale differs between runs "
              f"({old_doc.get('env', {}).get('repro_scale')} vs "
              f"{new_doc.get('env', {}).get('repro_scale')}); timings are "
              "not comparable unless the bench uses fixed sizes.")

    regressions = []
    improvements = []
    compared = skipped = 0

    for key in sorted(old_cells.keys() & new_cells.keys()):
        old, new = old_cells[key], new_cells[key]
        m0, m1 = old.get("mean_ms", 0.0), new.get("mean_ms", 0.0)
        if m0 < args.min_ms and m1 < args.min_ms:
            skipped += 1
            continue
        compared += 1
        noise = 0.0
        if has_noise(old):
            sd = max(old.get("stddev_ms", 0.0), new.get("stddev_ms", 0.0))
            noise = args.noise_stddevs * sd
        budget = m0 * (1.0 + args.tolerance) + noise
        ratio = m1 / m0 if m0 > 0 else float("inf")
        if m1 > budget:
            regressions.append((key, m0, m1, ratio, budget))
        elif m0 > 0 and m1 < m0 / (1.0 + args.tolerance):
            improvements.append((key, m0, m1, ratio))

    only_old = sorted(old_cells.keys() - new_cells.keys())
    only_new = sorted(new_cells.keys() - old_cells.keys())

    print(f"perf_gate: compared {compared} cells "
          f"({skipped} below {args.min_ms} ms skipped, "
          f"{len(only_old)} only in old, {len(only_new)} only in new)")
    for key in only_old:
        print(f"  note: dropped cell {fmt_key(key)}")
    for key in only_new:
        print(f"  note: new cell {fmt_key(key)}")
    for key, m0, m1, ratio in improvements:
        print(f"  improved: {fmt_key(key)}: {m0:.3f} -> {m1:.3f} ms "
              f"({ratio:.2f}x)")
    for key, m0, m1, ratio, budget in regressions:
        print(f"  REGRESSION: {fmt_key(key)}: {m0:.3f} -> {m1:.3f} ms "
              f"({ratio:.2f}x; budget was {budget:.3f} ms)")

    if regressions:
        print(f"perf_gate: FAIL ({len(regressions)} regression(s))")
        return 1
    print("perf_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
