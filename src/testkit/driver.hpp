// driver.hpp — multi-threaded history generation for the linearizability
// testkit.
//
// run_histories() spins up a fixed worker pool once, then runs many short
// "histories": each history gets a fresh map from the caller's factory, a
// per-history chaos seed (derived from the configured base seed and the
// history ordinal), and a deterministic per-thread workload (ops, keys,
// values all come from SplitMix64 streams seeded by (seed, history,
// thread)). Workers record every operation through the HistoryRecorder;
// between histories the main thread runs the Wing–Gong checker on the
// merged events while the workers idle at a barrier.
//
// Reproducing a failure: the printed trace carries the base seed. Re-run
// the same driver call with that seed and the identical workload + chaos
// decision streams replay; the OS may interleave differently, but a
// protocol bug reachable under that perturbation stream recurs within a
// few histories in practice (and the workload itself is bit-identical, so
// any recurrence produces the same style of trace).
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/trace_export.hpp"
#include "testkit/adapter.hpp"
#include "testkit/chaos.hpp"
#include "testkit/history.hpp"
#include "testkit/lin_check.hpp"
#include "util/rng.hpp"

namespace cachetrie::testkit {

struct DriverConfig {
  std::uint32_t threads = 4;
  std::uint32_t ops_per_thread = 12;
  // Small key/value ranges on purpose: contention is what provokes the
  // multi-CAS protocols, and small value domains let the *_if_equals
  // comparands actually match sometimes.
  std::uint64_t key_range = 6;
  std::uint64_t value_range = 4;
  std::uint32_t histories = 1000;
  std::uint64_t seed = 1;
  bool stop_on_violation = true;
};

struct DriverResult {
  std::uint64_t histories_checked = 0;
  std::uint64_t seed = 0;
  std::optional<Violation> violation;
  std::uint64_t violating_history = 0;
  std::string trace;  // formatted interleaving dump (empty when clean)
};

namespace driver_detail {

constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  return chaos::mix(x);
}

/// One thread's deterministic slice of one history.
template <typename A>
void run_thread_ops(A& map, HistoryRecorder& rec, const DriverConfig& cfg,
                    std::uint64_t history, std::uint32_t tid) {
  util::SplitMix64 rng(mix(cfg.seed ^ (history * 0x9e3779b97f4a7c15ULL) ^
                           (tid * 0xbf58476d1ce4e5b9ULL)));
  for (std::uint32_t i = 0; i < cfg.ops_per_thread; ++i) {
    Event ev;
    ev.thread = tid;
    ev.key = rng.next() % cfg.key_range;
    ev.arg = rng.next() % cfg.value_range;
    ev.expected = rng.next() % cfg.value_range;
    const std::uint64_t roll = rng.next() % 100;
    // Weights (conditional ops fall back to the unconditional form when
    // the structure lacks them): 30 lookup, 20 insert, 20 remove, then a
    // 30-point band split over the conditionals.
    if (roll < 30) {
      ev.op = Op::kLookup;
    } else if (roll < 50) {
      ev.op = Op::kInsert;
    } else if (roll < 70) {
      ev.op = roll < 60 || !A::kHasRemoveIfEquals ? Op::kRemove
                                                  : Op::kRemoveIfEquals;
    } else if (roll < 85) {
      ev.op = A::kHasPutIfAbsent ? Op::kPutIfAbsent : Op::kInsert;
    } else if (roll < 93) {
      ev.op = A::kHasReplace ? Op::kReplace : Op::kInsert;
    } else {
      ev.op = A::kHasReplaceIfEquals ? Op::kReplaceIfEquals : Op::kInsert;
    }
    ev.invoke = rec.ticket();
    switch (ev.op) {
      case Op::kInsert:
        ev.ok = map.insert(ev.key, ev.arg);
        break;
      case Op::kPutIfAbsent:
        if constexpr (A::kHasPutIfAbsent) {
          ev.ok = map.put_if_absent(ev.key, ev.arg);
        }
        break;
      case Op::kReplace:
        if constexpr (A::kHasReplace) {
          ev.ok = map.replace(ev.key, ev.arg);
        }
        break;
      case Op::kReplaceIfEquals:
        if constexpr (A::kHasReplaceIfEquals) {
          ev.ok = map.replace_if_equals(ev.key, ev.expected, ev.arg);
        }
        break;
      case Op::kLookup: {
        const auto r = map.lookup(ev.key);
        ev.has_result = r.has_value();
        if (r) ev.result = *r;
        break;
      }
      case Op::kRemove: {
        const auto r = map.remove(ev.key);
        ev.has_result = r.has_value();
        if (r) ev.result = *r;
        break;
      }
      case Op::kRemoveIfEquals:
        if constexpr (A::kHasRemoveIfEquals) {
          ev.ok = map.remove_if_equals(ev.key, ev.expected);
        }
        break;
    }
    ev.response = rec.ticket();
    rec.append(tid, ev);
  }
}

}  // namespace driver_detail

/// Runs cfg.histories multi-threaded histories against maps produced by
/// `make` (a callable returning something dereferenceable to an adapter,
/// e.g. std::unique_ptr<MapAdapter<...>>), checking each one.
template <typename Factory>
DriverResult run_histories(Factory&& make, const DriverConfig& cfg) {
  using AdapterPtr = std::invoke_result_t<Factory&>;
  using A = std::remove_reference_t<decltype(*std::declval<AdapterPtr&>())>;

  DriverResult out;
  out.seed = cfg.seed;
  HistoryRecorder rec(cfg.threads, cfg.ops_per_thread);
  std::barrier start(cfg.threads + 1);
  std::barrier finish(cfg.threads + 1);
  AdapterPtr map{};
  std::atomic<bool> stop{false};
  chaos::enable(true);

  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (std::uint32_t tid = 0; tid < cfg.threads; ++tid) {
    workers.emplace_back([&, tid] {
      for (std::uint64_t h = 0; h < cfg.histories; ++h) {
        start.arrive_and_wait();
        if (!stop.load(std::memory_order_acquire)) {
          chaos::bind_thread(tid);
          driver_detail::run_thread_ops<A>(*map, rec, cfg, h, tid);
        }
        finish.arrive_and_wait();
      }
    });
  }

  for (std::uint64_t h = 0; h < cfg.histories; ++h) {
    const bool live = !stop.load(std::memory_order_relaxed);
    if (live) {
      // Per-history chaos seed: every history explores a different
      // perturbation stream while staying a pure function of (seed, h).
      chaos::set_global_seed(driver_detail::mix(cfg.seed + h));
      rec.reset();
      map = make();
    }
    start.arrive_and_wait();
    finish.arrive_and_wait();
    if (live) {
      if (auto v = check_history(rec.merged())) {
        out.violation = std::move(v);
        out.violating_history = h;
        out.trace = format_trace(*out.violation, cfg.seed, h);
        // Post-mortem: keep the protocol-event window leading up to the
        // failing history (no-op unless tracing is enabled).
        obs::trace::emit(obs::trace::EventId::kLinCheckFail, cfg.seed, h);
        obs::trace::post_mortem_dump("lin_check_failure");
        if (cfg.stop_on_violation) {
          stop.store(true, std::memory_order_release);
        }
      }
      ++out.histories_checked;
      map = AdapterPtr{};  // destroy before the next history's factory call
    }
  }
  for (auto& t : workers) t.join();
  chaos::enable(false);
  return out;
}

}  // namespace cachetrie::testkit
