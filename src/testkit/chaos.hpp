// chaos.hpp — seeded schedule perturbation for the linearizability testkit.
//
// The multi-CAS protocols in this repo (the cache-trie's two-CAS txn commit
// and freeze/ENode replacement, the ctrie's clean/cleanParent, the
// chashmap's bin transfer, the skip list's mark/unlink) have decision
// windows of a handful of instructions. Plain stress tests almost never
// land a preemption inside them. A chaos point is a marker placed exactly
// inside such a window; in testkit builds it injects a deterministic
// pseudo-random yield or spin so those rare interleavings occur routinely,
// and the whole schedule-perturbation stream is reproducible from a single
// seed.
//
// Build modes
//   * CACHETRIE_TESTKIT off (default, all release/bench builds):
//     chaos_point() is a constexpr no-op — zero code, zero data, zero cost.
//   * CACHETRIE_TESTKIT on (test binaries opt in per-target, or configure
//     with -DCACHETRIE_TESTKIT=ON): each call advances a thread-local
//     xorshift stream exactly once and derives a decision (nothing / yield /
//     bounded spin) from the stream value mixed with the site's name hash.
//
// Determinism: the decision sequence of a thread is a pure function of
// (global seed, bound thread index, call ordinal). It does not depend on
// the OS schedule, so a failing seed replays the same perturbation stream
// even though the actual interleaving the kernel picks may differ run to
// run — in practice a protocol bug reachable under a seed's stream is
// re-reachable within a few histories of the same seed (see
// DESIGN.md "Testing the protocols").
#pragma once

#include <cstdint>

#if defined(CACHETRIE_TESTKIT) && CACHETRIE_TESTKIT
#include <array>
#include <atomic>
#include <thread>

#include "util/thread_id.hpp"
#endif

namespace cachetrie::testkit {

/// Compile-time FNV-1a of a site name. Folding the hash at compile time
/// keeps instrumented builds cheap and gives each site a stable identity
/// for the hit counters.
constexpr std::uint64_t site_hash(const char* s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  while (*s != '\0') {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*s++));
    h *= 0x00000100000001b3ULL;
  }
  return h;
}

namespace chaos {

/// splitmix64 finalizer — shared by seeding and per-call decision mixing.
constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Aggregate perturbation counters, readable from tests.
struct Totals {
  std::uint64_t points = 0;  // chaos points crossed while enabled
  std::uint64_t yields = 0;
  std::uint64_t spins = 0;
};

}  // namespace chaos

#if defined(CACHETRIE_TESTKIT) && CACHETRIE_TESTKIT

inline constexpr bool kChaosCompiled = true;

namespace chaos {
namespace detail {

inline std::atomic<bool> g_enabled{false};
inline std::atomic<std::uint64_t> g_seed{0};

/// Fault-verdict hook, installed by the fault-injection engine
/// (testkit/fault.hpp). Consulted on every chaos crossing while chaos is
/// enabled; receives the site name and its precomputed hash. May throw
/// (fault::ThreadKilled simulates thread death by unwinding), which is why
/// the instrumented point() is not noexcept.
using FaultHook = void (*)(const char* site, std::uint64_t site_hash);
inline std::atomic<FaultHook> g_fault_hook{nullptr};

struct Counters {
  std::atomic<std::uint64_t> points{0};
  std::atomic<std::uint64_t> yields{0};
  std::atomic<std::uint64_t> spins{0};
  // Per-site hit table, indexed by site_hash & 63. Collisions merely merge
  // counters; tests only assert "this site fired at all".
  std::array<std::atomic<std::uint64_t>, 64> by_site{};
};

inline Counters g_counters;

struct ThreadStream {
  std::uint64_t state = 0;
  std::uint64_t index = 0;
  bool bound = false;
};

inline ThreadStream& stream() noexcept {
  thread_local ThreadStream ts;
  return ts;
}

}  // namespace detail

/// Installs the seed every subsequently bound thread stream derives from.
inline void set_global_seed(std::uint64_t seed) noexcept {
  detail::g_seed.store(seed, std::memory_order_relaxed);
}

/// Master switch; chaos points are free-of-side-effects while disabled so
/// unrelated tests in the same binary are not perturbed.
inline void enable(bool on) noexcept {
  // [publishes: TK_CHAOS_ENABLE]
  detail::g_enabled.store(on, std::memory_order_release);
}

inline bool enabled() noexcept {
  // [acquires: TK_CHAOS_ENABLE]
  return detail::g_enabled.load(std::memory_order_acquire);
}

/// Derives this thread's decision stream from (global seed, index). Call
/// once per worker per history with a stable worker index — that is what
/// makes a printed seed replayable regardless of OS thread identity.
inline void bind_thread(std::uint64_t index) noexcept {
  auto& ts = detail::stream();
  ts.state = mix(detail::g_seed.load(std::memory_order_relaxed) ^
                 (0x9e3779b97f4a7c15ULL * (index + 1)));
  if (ts.state == 0) ts.state = 0x853c49e6748fea9bULL;
  ts.index = index;
  ts.bound = true;
}

/// The index this thread was bound with (fault plans filter victims by it).
/// Auto-bound threads report their derived per-process index.
inline std::uint64_t bound_index() noexcept { return detail::stream().index; }

/// Installs (or, with nullptr, removes) the fault-verdict hook.
inline void set_fault_hook(detail::FaultHook hook) noexcept {
  detail::g_fault_hook.store(hook, std::memory_order_release);
}

inline void reset_counters() noexcept {
  detail::g_counters.points.store(0, std::memory_order_relaxed);
  detail::g_counters.yields.store(0, std::memory_order_relaxed);
  detail::g_counters.spins.store(0, std::memory_order_relaxed);
  for (auto& c : detail::g_counters.by_site) {
    c.store(0, std::memory_order_relaxed);
  }
}

inline Totals totals() noexcept {
  return Totals{
      detail::g_counters.points.load(std::memory_order_relaxed),
      detail::g_counters.yields.load(std::memory_order_relaxed),
      detail::g_counters.spins.load(std::memory_order_relaxed),
  };
}

inline std::uint64_t site_hits(const char* site) noexcept {
  return detail::g_counters.by_site[site_hash(site) & 63].load(
      std::memory_order_relaxed);
}

/// The instrumented hook body. Always advances the stream exactly once so
/// a thread's decision sequence is independent of which sites it visits.
/// Not noexcept: the fault hook may simulate thread death by throwing.
inline void point(const char* site) {
  if (!enabled()) return;
  auto& ts = detail::stream();
  if (!ts.bound) {
    // Threads nobody bound (e.g. the test main thread constructing a map)
    // still get a deterministic-per-process stream.
    bind_thread(0x7f7f7f7fULL + util::current_thread_id());
  }
  std::uint64_t x = ts.state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  ts.state = x;
  const std::uint64_t h = site_hash(site);
  const std::uint64_t r = mix(x ^ h);
  detail::g_counters.points.fetch_add(1, std::memory_order_relaxed);
  detail::g_counters.by_site[h & 63].fetch_add(1, std::memory_order_relaxed);
  switch (r & 15u) {
    case 0:
    case 1:  // 2/16: give the slice away — forces a full reschedule
      detail::g_counters.yields.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
      break;
    case 2:
    case 3:
    case 4: {  // 3/16: stretch the window without a syscall
      detail::g_counters.spins.fetch_add(1, std::memory_order_relaxed);
      const std::uint32_t iters = 1 + ((r >> 8) & 127u);
      for (std::uint32_t i = 0; i < iters; ++i) {
        // Opaque to the optimizer so the loop is not folded away.
        asm volatile("" ::: "memory");
      }
      break;
    }
    default:  // 11/16: pass through — most crossings stay cheap
      break;
  }
  if (auto* hook = detail::g_fault_hook.load(std::memory_order_acquire)) {
    hook(site, h);
  }
}

}  // namespace chaos

inline void chaos_point(const char* site) { chaos::point(site); }

#else  // !CACHETRIE_TESTKIT

inline constexpr bool kChaosCompiled = false;

namespace chaos {

// No-op control surface so testkit-aware code compiles in both modes.
inline void set_global_seed(std::uint64_t) noexcept {}
inline void enable(bool) noexcept {}
inline bool enabled() noexcept { return false; }
inline void bind_thread(std::uint64_t) noexcept {}
inline std::uint64_t bound_index() noexcept { return 0; }
inline void reset_counters() noexcept {}
inline Totals totals() noexcept { return {}; }
inline std::uint64_t site_hits(const char*) noexcept { return 0; }

}  // namespace chaos

/// Release builds: an empty constexpr inline the optimizer erases entirely
/// (the acceptance bar: micro_ops throughput unchanged within noise).
inline constexpr void chaos_point(const char*) noexcept {}

#endif  // CACHETRIE_TESTKIT

}  // namespace cachetrie::testkit
