// adapter.hpp — one uniform map façade so a single workload generator and
// checker drive all four structures (and the no-cache ablation).
//
// Every map in this repo speaks insert/lookup/remove over (uint64, uint64);
// the conditional ops (put_if_absent, replace, replace_if_equals,
// remove_if_equals) exist only on some. The adapter surfaces each optional
// op behind a constexpr capability flag, so the workload generator emits
// only ops the structure actually has — no emulation (an emulated op would
// have its own linearization holes and the checker would be testing the
// emulation, not the structure).
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

namespace cachetrie::testkit {

template <typename M>
concept HasPutIfAbsent = requires(M m, std::uint64_t k, std::uint64_t v) {
  { m.put_if_absent(k, v) } -> std::convertible_to<bool>;
};

template <typename M>
concept HasReplace = requires(M m, std::uint64_t k, std::uint64_t v) {
  { m.replace(k, v) } -> std::convertible_to<bool>;
};

template <typename M>
concept HasReplaceIfEquals = requires(M m, std::uint64_t k, std::uint64_t v) {
  { m.replace_if_equals(k, v, v) } -> std::convertible_to<bool>;
};

template <typename M>
concept HasRemoveIfEquals = requires(M m, std::uint64_t k, std::uint64_t v) {
  { m.remove_if_equals(k, v) } -> std::convertible_to<bool>;
};

template <typename M>
class MapAdapter {
 public:
  static constexpr bool kHasPutIfAbsent = HasPutIfAbsent<M>;
  static constexpr bool kHasReplace = HasReplace<M>;
  static constexpr bool kHasReplaceIfEquals = HasReplaceIfEquals<M>;
  static constexpr bool kHasRemoveIfEquals = HasRemoveIfEquals<M>;

  template <typename... Args>
  explicit MapAdapter(Args&&... args) : map_(std::forward<Args>(args)...) {}

  bool insert(std::uint64_t k, std::uint64_t v) { return map_.insert(k, v); }

  std::optional<std::uint64_t> lookup(std::uint64_t k) const {
    return map_.lookup(k);
  }

  std::optional<std::uint64_t> remove(std::uint64_t k) {
    return map_.remove(k);
  }

  bool put_if_absent(std::uint64_t k, std::uint64_t v)
    requires HasPutIfAbsent<M>
  {
    return map_.put_if_absent(k, v);
  }

  bool replace(std::uint64_t k, std::uint64_t v)
    requires HasReplace<M>
  {
    return map_.replace(k, v);
  }

  bool replace_if_equals(std::uint64_t k, std::uint64_t expected,
                         std::uint64_t v)
    requires HasReplaceIfEquals<M>
  {
    return map_.replace_if_equals(k, expected, v);
  }

  bool remove_if_equals(std::uint64_t k, std::uint64_t expected)
    requires HasRemoveIfEquals<M>
  {
    return map_.remove_if_equals(k, expected);
  }

  M& underlying() noexcept { return map_; }
  const M& underlying() const noexcept { return map_; }

 private:
  M map_;
};

/// Deliberately non-linearizable map — the mutation smoke test that proves
/// the checker has teeth. Every mutation is a non-atomic read-modify-write
/// with a forced reschedule inside the window, so two concurrent
/// put_if_absent calls on a key can both report "inserted" and two
/// concurrent removes can both claim the victim. All cells are atomics, so
/// the breakage is purely protocol-level (no UB, no torn reads) — exactly
/// the class of bug a botched CAS protocol would introduce and end-state
/// assertions cannot see.
class BrokenMap {
 public:
  explicit BrokenMap(std::size_t key_space = 1024)
      : size_(key_space), slots_(new Slot[key_space]) {}

  bool insert(std::uint64_t k, std::uint64_t v) {
    Slot& s = at(k);
    const bool was = s.present.load(std::memory_order_relaxed);
    std::this_thread::yield();  // the "lost CAS" stand-in
    s.value.store(v, std::memory_order_relaxed);
    s.present.store(true, std::memory_order_relaxed);
    return !was;
  }

  bool put_if_absent(std::uint64_t k, std::uint64_t v) {
    Slot& s = at(k);
    if (s.present.load(std::memory_order_relaxed)) return false;
    std::this_thread::yield();
    s.value.store(v, std::memory_order_relaxed);
    s.present.store(true, std::memory_order_relaxed);
    return true;
  }

  std::optional<std::uint64_t> lookup(std::uint64_t k) const {
    const Slot& s = at(k);
    if (!s.present.load(std::memory_order_relaxed)) return std::nullopt;
    return s.value.load(std::memory_order_relaxed);
  }

  std::optional<std::uint64_t> remove(std::uint64_t k) {
    Slot& s = at(k);
    if (!s.present.load(std::memory_order_relaxed)) return std::nullopt;
    std::this_thread::yield();
    const std::uint64_t v = s.value.load(std::memory_order_relaxed);
    s.present.store(false, std::memory_order_relaxed);
    return v;
  }

 private:
  struct Slot {
    std::atomic<bool> present{false};
    std::atomic<std::uint64_t> value{0};
  };

  Slot& at(std::uint64_t k) { return slots_[k % size_]; }
  const Slot& at(std::uint64_t k) const { return slots_[k % size_]; }

  std::size_t size_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace cachetrie::testkit
