// history.hpp — per-thread operation-history recording for the
// linearizability testkit.
//
// Each worker thread records one Event per completed map operation into its
// own bounded, preallocated buffer (single-writer, no synchronization on
// the append path). Real-time ordering comes from a global ticket clock:
// an operation takes one ticket immediately before calling into the map
// (invoke) and one immediately after it returns (response). If
// response(A) < invoke(B) then A really did complete before B began, which
// is exactly the precedence relation linearizability must respect; ops
// whose ticket intervals overlap ran concurrently and may be ordered either
// way by the checker.
//
// The ticket counter is the only shared cache line the recorder touches on
// the hot path. That is a deliberate trade: the fetch_add serializes a few
// nanoseconds per op, but yields a total event order consistent with real
// time, which keeps the checker exact (timestamp-based recorders need
// per-op clock error bars). Test workloads are small, so the counter is
// nowhere near contention collapse.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/padded.hpp"

namespace cachetrie::testkit {

/// The map ADT's operation alphabet — the union of what the four
/// structures support; adapters without an op simply never emit it.
enum class Op : std::uint8_t {
  kInsert,           // upsert; ok == key was new
  kPutIfAbsent,      // ok == inserted
  kReplace,          // ok == key was present
  kReplaceIfEquals,  // ok == present && value == expected
  kLookup,           // has_result/result
  kRemove,           // has_result/result
  kRemoveIfEquals,   // ok == present && value == expected
};

constexpr const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kInsert: return "insert";
    case Op::kPutIfAbsent: return "put_if_absent";
    case Op::kReplace: return "replace";
    case Op::kReplaceIfEquals: return "replace_if_equals";
    case Op::kLookup: return "lookup";
    case Op::kRemove: return "remove";
    case Op::kRemoveIfEquals: return "remove_if_equals";
  }
  return "?";
}

/// One completed operation: what was asked, what came back, and the ticket
/// interval it occupied.
struct Event {
  std::uint64_t invoke = 0;    // ticket taken just before the call
  std::uint64_t response = 0;  // ticket taken just after the return
  std::uint64_t key = 0;
  std::uint64_t arg = 0;       // value argument (insert/replace/...)
  std::uint64_t expected = 0;  // comparand of the *_if_equals forms
  std::uint64_t result = 0;    // value returned, valid iff has_result
  std::uint32_t thread = 0;
  Op op = Op::kLookup;
  bool ok = false;          // boolean outcome (was_new / replaced / removed)
  bool has_result = false;  // lookup/remove found a value
};

class HistoryRecorder {
 public:
  /// `capacity` bounds events per thread; appends beyond it are dropped
  /// (and assert in debug builds) rather than reallocating under a
  /// concurrent run.
  HistoryRecorder(std::uint32_t threads, std::size_t capacity)
      : capacity_(capacity), logs_(threads) {
    for (auto& log : logs_) log.value.reserve(capacity);
  }

  /// Draws the next global ticket. Safe from any thread.
  std::uint64_t ticket() noexcept {
    return clock_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Appends to `thread`'s log. Single writer per thread id.
  void append(std::uint32_t thread, const Event& ev) noexcept {
    auto& log = logs_[thread].value;
    assert(log.size() < capacity_ && "history buffer overflow");
    if (log.size() < capacity_) log.push_back(ev);
  }

  /// Merges all per-thread logs, sorted by invoke ticket. Call only when
  /// every recording thread is quiescent (e.g. across a barrier).
  std::vector<Event> merged() const {
    std::vector<Event> all;
    std::size_t total = 0;
    for (const auto& log : logs_) total += log.value.size();
    all.reserve(total);
    for (const auto& log : logs_) {
      all.insert(all.end(), log.value.begin(), log.value.end());
    }
    std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
      return a.invoke < b.invoke;
    });
    return all;
  }

  /// Clears the logs and rewinds the clock for the next history. Same
  /// quiescence requirement as merged().
  void reset() noexcept {
    for (auto& log : logs_) log.value.clear();
    clock_.store(0, std::memory_order_relaxed);
  }

  std::uint32_t threads() const noexcept {
    return static_cast<std::uint32_t>(logs_.size());
  }

 private:
  std::atomic<std::uint64_t> clock_{0};
  std::size_t capacity_;
  // Padded so two threads' vector headers never share a cache line.
  std::vector<util::Padded<std::vector<Event>>> logs_;
};

}  // namespace cachetrie::testkit
