// watchdog.hpp — progress watchdog asserting lock-freedom under injected
// faults.
//
// Lock-freedom's observable signature: while any subset of threads is
// suspended at arbitrary points (here: parked by the fault engine at
// protocol decision points), some surviving thread still completes
// operations. The watchdog samples a caller-maintained completed-op
// counter on a fixed tick; a tick in which the counter did not strictly
// increase — while the workload was supposed to be running — is a
// violation.
//
// Tick sizing: this is a liveness check on a timeshared box, so ticks must
// comfortably exceed one scheduling quantum for every survivor thread.
// On the CI container (single hardware thread) 150–250 ms is the floor;
// anything shorter measures the kernel scheduler, not the structure.
// The monitor itself is a plain std::thread sampling with relaxed loads —
// it never touches structure memory, so it cannot mask or cause races.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

namespace cachetrie::testkit {

/// Process-wide watchdog cells mirrored into the metrics snapshot. Any
/// watchdog instance (tests run several, sequentially) updates the same
/// cells, and one registered callback gauge per cell reports them — same
/// pattern as evict::process_resident_bytes: the registry has no
/// unregister, so the gauges must reference storage that outlives every
/// watchdog. A server soak run reads testkit.watchdog.last_tick_delta as
/// "survivor throughput per tick" straight from the snapshot.
namespace watchdog_cells {
inline std::atomic<std::uint64_t>& last_tick_delta() {
  static std::atomic<std::uint64_t> cell{0};
  return cell;
}
inline std::atomic<std::uint64_t>& total_ticks() {
  static std::atomic<std::uint64_t> cell{0};
  return cell;
}
inline std::atomic<std::uint64_t>& total_violations() {
  static std::atomic<std::uint64_t> cell{0};
  return cell;
}
inline void register_gauges() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& reg = obs::Registry::instance();
    reg.register_gauge_fn("testkit.watchdog.last_tick_delta", [] {
      return static_cast<std::int64_t>(
          last_tick_delta().load(std::memory_order_relaxed));
    });
    reg.register_gauge_fn("testkit.watchdog.ticks", [] {
      return static_cast<std::int64_t>(
          total_ticks().load(std::memory_order_relaxed));
    });
    reg.register_gauge_fn("testkit.watchdog.violations", [] {
      return static_cast<std::int64_t>(
          total_violations().load(std::memory_order_relaxed));
    });
  });
}
}  // namespace watchdog_cells

class ProgressWatchdog {
 public:
  /// `counter` must strictly increase while the workload runs (survivor
  /// threads increment it once per completed operation).
  ProgressWatchdog(const std::atomic<std::uint64_t>& counter,
                   std::chrono::milliseconds tick)
      : counter_(counter), tick_(tick) {
    watchdog_cells::register_gauges();
  }

  ProgressWatchdog(const ProgressWatchdog&) = delete;
  ProgressWatchdog& operator=(const ProgressWatchdog&) = delete;

  ~ProgressWatchdog() { stop(); }

  void start() {
    if (running_.exchange(true, std::memory_order_acq_rel)) return;
    stop_requested_.store(false, std::memory_order_relaxed);
    monitor_ = std::thread([this] { run(); });
  }

  /// Joins the monitor. The partial tick in flight at stop() is discarded —
  /// the workload may already be winding down inside it.
  void stop() {
    if (!running_.exchange(false, std::memory_order_acq_rel)) return;
    // [publishes: TK_WATCHDOG_STOP]
    stop_requested_.store(true, std::memory_order_release);
    if (monitor_.joinable()) monitor_.join();
  }

  /// Completed full ticks observed.
  std::uint64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }
  /// Ticks in which the counter failed to strictly increase.
  std::uint64_t violations() const noexcept {
    return violations_.load(std::memory_order_relaxed);
  }
  /// Smallest per-tick counter delta seen (how close progress came to
  /// stopping); ~0 until the first tick completes.
  std::uint64_t min_delta() const noexcept {
    return min_delta_.load(std::memory_order_relaxed);
  }

 private:
  void run() {
    std::uint64_t last = counter_.load(std::memory_order_relaxed);
    // [acquires: TK_WATCHDOG_STOP]
    while (!stop_requested_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(tick_);
      if (stop_requested_.load(std::memory_order_acquire)) break;
      const std::uint64_t now = counter_.load(std::memory_order_relaxed);
      const std::uint64_t delta = now - last;
      last = now;
      ticks_.fetch_add(1, std::memory_order_relaxed);
      watchdog_cells::last_tick_delta().store(delta,
                                              std::memory_order_relaxed);
      watchdog_cells::total_ticks().fetch_add(1, std::memory_order_relaxed);
      if (delta == 0) {
        violations_.fetch_add(1, std::memory_order_relaxed);
        watchdog_cells::total_violations().fetch_add(
            1, std::memory_order_relaxed);
        // A violation is the moment the timeline matters: record it, then
        // preserve the first one's flight-recorder window (no-op unless
        // tracing is enabled; later violations cannot overwrite it).
        obs::trace::emit(obs::trace::EventId::kWatchdogViolation, now,
                         ticks_.load(std::memory_order_relaxed));
        obs::trace::post_mortem_dump("watchdog_violation");
      }
      std::uint64_t prev = min_delta_.load(std::memory_order_relaxed);
      while (delta < prev && !min_delta_.compare_exchange_weak(
                                 prev, delta, std::memory_order_relaxed,
                                 std::memory_order_relaxed)) {
      }
    }
  }

  const std::atomic<std::uint64_t>& counter_;
  std::chrono::milliseconds tick_;
  std::thread monitor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<std::uint64_t> min_delta_{~0ull};
};

}  // namespace cachetrie::testkit
