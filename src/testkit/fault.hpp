// fault.hpp — seeded fault-injection engine for the testkit.
//
// PR 1's chaos engine perturbs schedules (yields/spins at protocol decision
// points). This layer upgrades those same sites to real fault verdicts so
// tests can prove — not assume — lock-freedom and bounded-garbage
// reclamation under the schedules lock-freedom is supposed to survive:
//
//   * stall(site, duration)  — the crossing thread parks for `duration`
//     (or until release_all(), whichever is first), then resumes. Models a
//     long preemption at the worst instruction.
//   * stall(site, kForever)  — parks until release_all(). Models an
//     unbounded stall; joinable at test teardown.
//   * die(site)              — parks until release_all(), then throws
//     fault::ThreadKilled. Models thread death: the victim executes no
//     further structure code (the unwind only runs Guard destructors, which
//     touch no shared nodes), so the reclaimer's crash-stop assumption
//     holds by construction. Victim thread functions catch ThreadKilled.
//
// Resume fence: every stall wake-up first asks the epoch domain whether a
// fallback sweep declared this thread stalled while it was parked
// (EpochDomain::current_thread_declared_stalled). If so, the victim is NOT
// allowed to resume — memory it may reference has been recycled under the
// crash-stop model — and the stall is converted into a death-unwind. A
// declared victim stays dead.
//
// Plans are replayable: Plan::randomized(seed, ...) derives every spec
// (durations, ordinals, victim assignment) deterministically from the seed
// via the chaos mixer, and Plan::describe() prints the seed plus the specs
// so a failing run can be reproduced exactly.
//
// Build modes mirror chaos.hpp: without CACHETRIE_TESTKIT everything here
// is a no-op stub so fault-aware helpers compile in release builds.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "testkit/chaos.hpp"

#if defined(CACHETRIE_TESTKIT) && CACHETRIE_TESTKIT
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "mr/epoch.hpp"
#include "obs/trace.hpp"
#endif

namespace cachetrie::testkit::fault {

/// Thrown by the engine to simulate thread death (and to enforce the
/// crash-stop model on declared-stalled victims). Victim thread functions
/// catch it at top level; the unwind runs only RAII destructors.
struct ThreadKilled {};

enum class Kind : std::uint8_t { kStall, kDie };

/// Spec.thread value matching every thread.
inline constexpr std::uint64_t kAnyThread = ~0ull;
/// Stall duration meaning "until release_all()".
inline constexpr auto kForever = std::chrono::nanoseconds::max();

/// One injection rule. Matching is per thread: the engine counts each
/// thread's crossings of `site` and fires on crossings
/// [fire_on_hit, fire_on_hit + max_fires).
struct Spec {
  std::uint64_t site = 0;  // site_hash(name)
  Kind kind = Kind::kStall;
  std::chrono::nanoseconds duration{0};
  std::uint64_t thread = kAnyThread;  // chaos::bind_thread index filter
  std::uint32_t fire_on_hit = 1;
  std::uint32_t max_fires = 1;
};

/// A fault plan: an ordered list of specs plus the seed it was derived
/// from. Install with fault::install(plan); deterministic given the seed
/// and the per-thread crossing sequence (pin specs to thread indices for
/// strict replay — verdicts for kAnyThread specs depend on which thread
/// crosses first).
class Plan {
 public:
  explicit Plan(std::uint64_t seed = 0) : seed_(seed) {}

  Plan& stall(const char* site, std::chrono::nanoseconds duration,
              std::uint64_t thread = kAnyThread, std::uint32_t fire_on_hit = 1,
              std::uint32_t max_fires = 1) {
    return add(site, Kind::kStall, duration, thread, fire_on_hit, max_fires);
  }

  Plan& die(const char* site, std::uint64_t thread = kAnyThread,
            std::uint32_t fire_on_hit = 1) {
    return add(site, Kind::kDie, kForever, thread, fire_on_hit, 1);
  }

  /// Derives one finite-stall spec per (site, victim) pair, with duration
  /// in [min_stall, max_stall] and a small randomized crossing ordinal, all
  /// as a pure function of `seed`. Victims are thread indices
  /// 0..n_victims-1 (bind churn workers accordingly).
  static Plan randomized(std::uint64_t seed, const char* const* sites,
                         std::size_t n_sites, std::uint64_t n_victims,
                         std::chrono::nanoseconds min_stall,
                         std::chrono::nanoseconds max_stall) {
    Plan plan(seed);
    std::uint64_t x = chaos::mix(seed ^ 0x9e3779b97f4a7c15ULL);
    const std::uint64_t span = static_cast<std::uint64_t>(
        (max_stall - min_stall).count() + 1);
    for (std::size_t i = 0; i < n_sites; ++i) {
      for (std::uint64_t v = 0; v < n_victims; ++v) {
        x = chaos::mix(x + i * 131 + v * 31 + 1);
        const auto dur =
            min_stall + std::chrono::nanoseconds(
                            static_cast<std::int64_t>(x % span));
        const auto fire_on = static_cast<std::uint32_t>(1 + ((x >> 32) & 3));
        const auto fires = static_cast<std::uint32_t>(1 + ((x >> 40) & 1));
        plan.stall(sites[i], dur, v, fire_on, fires);
      }
    }
    return plan;
  }

  const std::vector<Spec>& specs() const noexcept { return specs_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Human-readable rendering, replay seed first.
  std::string describe() const {
    std::string out = "fault plan seed=" + std::to_string(seed_) + "\n";
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      const Spec& s = specs_[i];
      out += "  [" + std::to_string(i) + "] " + names_[i];
      out += s.kind == Kind::kDie ? " die" : " stall";
      if (s.kind == Kind::kStall) {
        out += s.duration == kForever
                   ? std::string(" forever")
                   : " " + std::to_string(s.duration.count()) + "ns";
      }
      out += s.thread == kAnyThread ? " thread=any"
                                    : " thread=" + std::to_string(s.thread);
      out += " hit=" + std::to_string(s.fire_on_hit) + "x" +
             std::to_string(s.max_fires) + "\n";
    }
    return out;
  }

 private:
  Plan& add(const char* site, Kind kind, std::chrono::nanoseconds duration,
            std::uint64_t thread, std::uint32_t fire_on_hit,
            std::uint32_t max_fires) {
    specs_.push_back(Spec{site_hash(site), kind, duration, thread,
                          fire_on_hit, max_fires});
    names_.emplace_back(site);
    return *this;
  }

  std::uint64_t seed_;
  std::vector<Spec> specs_;
  std::vector<std::string> names_;
};

#if defined(CACHETRIE_TESTKIT) && CACHETRIE_TESTKIT

namespace detail {

struct PlanState {
  std::uint64_t generation = 0;
  std::vector<Spec> specs;
};

// Installed plans are retained for the process lifetime (threads may hold a
// raw pointer across an install), so the atomic swap needs no reclamation.
inline std::vector<std::unique_ptr<PlanState>>& plan_history() {
  static auto* v = new std::vector<std::unique_ptr<PlanState>>();
  return *v;
}
inline std::mutex& plan_mutex() {
  static auto* m = new std::mutex();
  return *m;
}
inline std::atomic<PlanState*> g_plan{nullptr};
inline std::atomic<std::uint64_t> g_generation{0};

// Parking lot. Heap-allocated and never destroyed: a die() victim that is
// never released must not outlive a static condvar's destructor.
struct Parking {
  std::mutex m;
  std::condition_variable cv;
  std::uint64_t release_gen = 0;
};
inline Parking& parking() {
  static auto* p = new Parking();
  return *p;
}

inline std::atomic<std::uint64_t> g_stalls{0};
inline std::atomic<std::uint64_t> g_deaths{0};
inline std::atomic<std::uint64_t> g_parked_now{0};
inline std::atomic<std::uint64_t> g_parked_total{0};

struct ThreadHits {
  std::uint64_t generation = ~0ull;
  std::vector<std::uint32_t> hits;
};
inline ThreadHits& thread_hits() {
  thread_local ThreadHits th;
  return th;
}

/// Park per the spec, then either resume or die. Throws ThreadKilled.
inline void execute(const Spec& spec) {
  auto& pk = parking();
  obs::trace::emit(obs::trace::EventId::kFaultPark, spec.site,
                   static_cast<std::uint64_t>(spec.kind));
  bool deadline_elapsed = false;
  {
    std::unique_lock<std::mutex> lk(pk.m);
    const std::uint64_t gen0 = pk.release_gen;
    g_parked_now.fetch_add(1, std::memory_order_relaxed);
    g_parked_total.fetch_add(1, std::memory_order_relaxed);
    (spec.kind == Kind::kDie ? g_deaths : g_stalls)
        .fetch_add(1, std::memory_order_relaxed);
    auto released = [&] { return pk.release_gen != gen0; };
    if (spec.kind == Kind::kStall && spec.duration != kForever) {
      deadline_elapsed = !pk.cv.wait_for(lk, spec.duration, released);
    } else {
      pk.cv.wait(lk, released);
    }
    g_parked_now.fetch_sub(1, std::memory_order_relaxed);
  }
  (void)deadline_elapsed;
  if (spec.kind == Kind::kDie) {
    obs::trace::emit(obs::trace::EventId::kFaultKill, spec.site);
    throw ThreadKilled{};
  }
  // Resume fence: a victim the reclaimer declared dead while it was parked
  // must not execute another instruction of structure code.
  if (mr::EpochDomain::instance().current_thread_declared_stalled()) {
    obs::trace::emit(obs::trace::EventId::kFaultKill, spec.site, 1);
    throw ThreadKilled{};
  }
  obs::trace::emit(obs::trace::EventId::kFaultResume, spec.site);
}

inline void on_chaos_point(const char* /*site*/, std::uint64_t site_h) {
  // [acquires: TK_FAULT_PLAN]
  PlanState* plan = g_plan.load(std::memory_order_acquire);
  if (plan == nullptr) return;
  ThreadHits& th = thread_hits();
  if (th.generation != plan->generation) {
    th.generation = plan->generation;
    th.hits.assign(plan->specs.size(), 0);
  }
  for (std::size_t i = 0; i < plan->specs.size(); ++i) {
    const Spec& spec = plan->specs[i];
    if (spec.site != site_h) continue;
    if (spec.thread != kAnyThread && spec.thread != chaos::bound_index()) {
      continue;
    }
    const std::uint32_t c = ++th.hits[i];
    if (c < spec.fire_on_hit || c >= spec.fire_on_hit + spec.max_fires) {
      continue;
    }
    execute(spec);
  }
}

}  // namespace detail

/// Installs `plan` as the live fault plan and hooks the chaos engine.
/// Verdicts fire only while chaos is enabled (chaos::enable(true)).
inline void install(const Plan& plan) {
  auto state = std::make_unique<detail::PlanState>();
  state->generation =
      detail::g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  state->specs = plan.specs();
  detail::PlanState* raw = state.get();
  {
    std::lock_guard<std::mutex> lk(detail::plan_mutex());
    detail::plan_history().push_back(std::move(state));
  }
  // [publishes: TK_FAULT_PLAN]
  detail::g_plan.store(raw, std::memory_order_release);
  chaos::set_fault_hook(&detail::on_chaos_point);
}

/// Wakes every parked victim: finite/forever stalls resume (subject to the
/// resume fence); die() victims throw ThreadKilled and become joinable.
inline void release_all() {
  auto& pk = detail::parking();
  {
    std::lock_guard<std::mutex> lk(pk.m);
    ++pk.release_gen;
  }
  pk.cv.notify_all();
}

/// Uninstalls the plan and releases all victims.
inline void clear() {
  detail::g_plan.store(nullptr, std::memory_order_release);
  chaos::set_fault_hook(nullptr);
  release_all();
}

inline std::uint64_t injected_stalls() noexcept {
  return detail::g_stalls.load(std::memory_order_relaxed);
}
inline std::uint64_t injected_deaths() noexcept {
  return detail::g_deaths.load(std::memory_order_relaxed);
}
inline std::uint64_t parked_now() noexcept {
  return detail::g_parked_now.load(std::memory_order_relaxed);
}
inline std::uint64_t parked_total() noexcept {
  return detail::g_parked_total.load(std::memory_order_relaxed);
}
inline void reset_counters() noexcept {
  detail::g_stalls.store(0, std::memory_order_relaxed);
  detail::g_deaths.store(0, std::memory_order_relaxed);
  detail::g_parked_total.store(0, std::memory_order_relaxed);
}

#else  // !CACHETRIE_TESTKIT

inline void install(const Plan&) noexcept {}
inline void release_all() noexcept {}
inline void clear() noexcept {}
inline std::uint64_t injected_stalls() noexcept { return 0; }
inline std::uint64_t injected_deaths() noexcept { return 0; }
inline std::uint64_t parked_now() noexcept { return 0; }
inline std::uint64_t parked_total() noexcept { return 0; }
inline void reset_counters() noexcept {}

#endif  // CACHETRIE_TESTKIT

}  // namespace cachetrie::testkit::fault
