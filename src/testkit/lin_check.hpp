// lin_check.hpp — Wing–Gong linearizability checking for recorded map
// histories.
//
// A history is linearizable iff every operation can be assigned a single
// linearization point inside its [invoke, response] ticket interval such
// that the resulting sequential history is legal for the map ADT. The
// checker searches for such an assignment with the Wing & Gong (1993)
// recursion as refined by Lowe ("Testing for linearizability", 2017):
// repeatedly pick a *minimal* pending operation — one whose invocation
// precedes the response of every other pending operation, so it may
// legally go first — apply it to the model state, and recurse, memoizing
// (linearized-set, model-state) configurations so revisited search states
// prune instead of exploding.
//
// Tractability comes from partitioning: linearizability is compositional
// (Herlihy & Wing, Theorem: a history is linearizable iff its per-object
// subhistories are), and every operation of the map ADT touches exactly one
// key, so each key is an independent object — a single-value register with
// conditional updates. The search therefore runs per key over subhistories
// of tens of events instead of once over thousands, and its state is just
// (bitmask of linearized ops, present?, value), which memoizes densely.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "testkit/history.hpp"

namespace cachetrie::testkit {

/// A non-linearizable per-key subhistory, with enough context to print a
/// human-readable interleaving trace.
struct Violation {
  std::uint64_t key = 0;
  std::string message;
  std::vector<Event> subhistory;  // all events on `key`, invoke order
};

namespace lin_detail {

/// The sequential model of one key: a register that may be absent.
struct RegState {
  bool present = false;
  std::uint64_t value = 0;
};

/// Applies `ev` to `st`, returning false when the recorded outcome is
/// impossible from that state (the op cannot be linearized here).
inline bool apply(const Event& ev, RegState& st) noexcept {
  switch (ev.op) {
    case Op::kInsert:  // upsert; ok must report "was new"
      if (ev.ok != !st.present) return false;
      st.present = true;
      st.value = ev.arg;
      return true;
    case Op::kPutIfAbsent:
      if (ev.ok != !st.present) return false;
      if (ev.ok) {
        st.present = true;
        st.value = ev.arg;
      }
      return true;
    case Op::kReplace:
      if (ev.ok != st.present) return false;
      if (ev.ok) st.value = ev.arg;
      return true;
    case Op::kReplaceIfEquals: {
      const bool can = st.present && st.value == ev.expected;
      if (ev.ok != can) return false;
      if (ev.ok) st.value = ev.arg;
      return true;
    }
    case Op::kLookup:
      if (ev.has_result != st.present) return false;
      if (st.present && ev.result != st.value) return false;
      return true;
    case Op::kRemove:
      if (ev.has_result != st.present) return false;
      if (st.present && ev.result != st.value) return false;
      st.present = false;
      return true;
    case Op::kRemoveIfEquals: {
      const bool can = st.present && st.value == ev.expected;
      if (ev.ok != can) return false;
      if (ev.ok) st.present = false;
      return true;
    }
  }
  return false;
}

/// A search configuration: which ops are linearized plus the model state
/// they produced. Exact equality (no hash shortcuts) — a spurious memo hit
/// could make the checker reject a linearizable history.
struct Config {
  std::vector<std::uint64_t> mask;
  bool present = false;
  std::uint64_t value = 0;

  bool operator==(const Config&) const = default;
};

struct ConfigHash {
  std::size_t operator()(const Config& c) const noexcept {
    std::uint64_t h = c.present ? 0x9e3779b97f4a7c15ULL : 0xbf58476d1ce4e5b9ULL;
    h = chaos_mix(h ^ c.value);
    for (std::uint64_t w : c.mask) h = chaos_mix(h ^ w);
    return static_cast<std::size_t>(h);
  }

  static constexpr std::uint64_t chaos_mix(std::uint64_t x) noexcept {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
};

inline bool bit(const std::vector<std::uint64_t>& mask, std::size_t i) {
  return (mask[i >> 6] >> (i & 63)) & 1;
}

inline void set_bit(std::vector<std::uint64_t>& mask, std::size_t i) {
  mask[i >> 6] |= std::uint64_t{1} << (i & 63);
}

/// Wing–Gong search over one key's subhistory (`evs` in invoke order).
inline bool linearizable_key(const std::vector<Event>& evs) {
  const std::size_t n = evs.size();
  if (n == 0) return true;
  const std::size_t words = (n + 63) / 64;
  std::unordered_set<Config, ConfigHash> seen;

  struct Frame {
    Config config;
    std::size_t linearized;
  };
  std::vector<Frame> stack;
  stack.push_back({Config{std::vector<std::uint64_t>(words, 0), false, 0}, 0});

  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (f.linearized == n) return true;
    if (!seen.insert(f.config).second) continue;  // already explored
    // The frontier: an op may linearize next only if its invocation
    // precedes every pending op's response (otherwise some completed op
    // would be ordered after one that started later than it finished).
    std::uint64_t min_resp = ~std::uint64_t{0};
    for (std::size_t i = 0; i < n; ++i) {
      if (!bit(f.config.mask, i)) min_resp = std::min(min_resp, evs[i].response);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (bit(f.config.mask, i)) continue;
      if (evs[i].invoke > min_resp) break;  // sorted by invoke: none further fit
      RegState st{f.config.present, f.config.value};
      if (!apply(evs[i], st)) continue;
      Config next = f.config;
      set_bit(next.mask, i);
      next.present = st.present;
      next.value = st.value;
      stack.push_back({std::move(next), f.linearized + 1});
    }
  }
  return false;
}

inline std::string format_event(const Event& ev) {
  std::ostringstream os;
  os << "[T" << ev.thread << "] " << ev.invoke << ".." << ev.response << "  "
     << op_name(ev.op) << "(k=" << ev.key;
  switch (ev.op) {
    case Op::kInsert:
    case Op::kPutIfAbsent:
    case Op::kReplace:
      os << ", v=" << ev.arg;
      break;
    case Op::kReplaceIfEquals:
      os << ", expected=" << ev.expected << ", v=" << ev.arg;
      break;
    case Op::kRemoveIfEquals:
      os << ", expected=" << ev.expected;
      break;
    case Op::kLookup:
    case Op::kRemove:
      break;
  }
  os << ") -> ";
  switch (ev.op) {
    case Op::kInsert:
      os << (ev.ok ? "new" : "replaced");
      break;
    case Op::kPutIfAbsent:
      os << (ev.ok ? "inserted" : "exists");
      break;
    case Op::kReplace:
    case Op::kReplaceIfEquals:
      os << (ev.ok ? "replaced" : "no-op");
      break;
    case Op::kRemoveIfEquals:
      os << (ev.ok ? "removed" : "no-op");
      break;
    case Op::kLookup:
    case Op::kRemove:
      if (ev.has_result) {
        os << ev.result;
      } else {
        os << "absent";
      }
      break;
  }
  return os.str();
}

}  // namespace lin_detail

/// Checks a full recorded history. Returns the first per-key violation
/// found, or nullopt when every key's subhistory is linearizable.
inline std::optional<Violation> check_history(const std::vector<Event>& events) {
  std::unordered_map<std::uint64_t, std::vector<Event>> by_key;
  for (const Event& ev : events) by_key[ev.key].push_back(ev);
  for (auto& [key, evs] : by_key) {
    std::sort(evs.begin(), evs.end(), [](const Event& a, const Event& b) {
      return a.invoke < b.invoke;
    });
    if (!lin_detail::linearizable_key(evs)) {
      Violation v;
      v.key = key;
      std::ostringstream os;
      os << "history of key " << key << " (" << evs.size()
         << " ops) is non-linearizable: no order of linearization points "
            "inside the ops' [invoke, response] intervals yields a legal "
            "sequential execution";
      v.message = os.str();
      v.subhistory = evs;
      return v;
    }
  }
  return std::nullopt;
}

/// Renders a violation as a human-readable interleaving trace, headed by
/// everything needed to reproduce it (chaos seed + history ordinal).
inline std::string format_trace(const Violation& v, std::uint64_t seed,
                                std::uint64_t history_index) {
  std::ostringstream os;
  os << "=== non-linearizable history ===\n"
     << "chaos seed: " << seed << "   history #" << history_index
     << "   key: " << v.key << "\n"
     << v.message << "\n"
     << "per-key subhistory (invoke order; intervals overlap where the ops "
        "ran concurrently):\n";
  for (const Event& ev : v.subhistory) {
    os << "  " << lin_detail::format_event(ev) << "\n";
  }
  return os.str();
}

}  // namespace cachetrie::testkit
