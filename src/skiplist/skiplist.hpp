// skiplist.hpp — lock-free concurrent skip list, the ConcurrentSkipListMap
// analogue the cache-trie paper benchmarks against (its worst performer:
// O(log n) pointer hops with poor locality — Figs. 10 and 13).
//
// Algorithm: the Herlihy–Shavit LockFreeSkipList (The Art of Multiprocessor
// Programming, ch. 14; after Fraser 2004): per-level next pointers carry a
// mark bit (tagged pointer); removal marks a node top-down with the bottom
// level last (in the book the bottom-level mark is the linearization
// point; here that moved into the vsync dead bit, see below), and find()
// physically snips marked nodes at every level it traverses. Marking —
// whether by the remover or a helper — always covers every level, bottom
// last, preserving the invariant "bottom-marked implies marked everywhere
// above" (see help_mark for why partial helping is unsound).
//
// Two departures from the book, both forced by manual memory reclamation
// (the book assumes GC):
//   * The bottom-mark winner retires the node only after its own find()
//     pass has unlinked it everywhere, and inserts that link a node re-check
//     their successors' marks afterwards (with seq_cst ordering) and re-run
//     find() if any was marked. Together these form the same
//     "mark-then-clear vs publish-then-check" handshake the cache-trie's
//     cache uses: a marked node can never stay reachable past its grace
//     period.
//   * Values are stored in a std::atomic<V> (V must be trivially copyable)
//     so upserts can update in place, mirroring the JDK's volatile value
//     reference. Because the mark bit and the value live in different
//     words, a per-node `vsync` word serializes in-place writes against
//     logical removal: writers claim it (odd count), removers set a dead
//     bit and wait out any active writer before reading the value they
//     return. Without this handshake a remover can return a value whose
//     upsert then retries and reports "new" — a non-linearizable pair (the
//     testkit's history checker finds this in seconds; see DESIGN.md
//     "Testing the protocols").
//
// Keys must be totally ordered (std::less), like ConcurrentSkipListMap's.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "mr/epoch.hpp"
#include "obs/inventory.hpp"
#include "obs/trace.hpp"
#include "testkit/chaos.hpp"
#include "util/rng.hpp"
#include "util/spinwait.hpp"

namespace cachetrie::csl {

template <typename K, typename V, typename Compare = std::less<K>,
          typename Reclaimer = mr::EpochReclaimer>
class ConcurrentSkipList {
  static_assert(std::is_trivially_copyable_v<V>,
                "skip list values are stored in std::atomic<V>");

 public:
  static constexpr int kMaxLevel = 24;  // supports ~16M keys at p=1/2

 private:
  // vsync bits: bit 63 = logically removed (the removal's linearization
  // point); low bits = writer claim counter, odd while an in-place value
  // update is in flight.
  static constexpr std::uint64_t kDead = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kWriter = 1;

  struct Node {
    K key;
    std::atomic<V> value;
    std::atomic<std::uint64_t> vsync;
    int top_level;  // highest level this node is linked at (0-based)
    bool is_head;

    std::atomic<std::uintptr_t>* next() noexcept {
      return reinterpret_cast<std::atomic<std::uintptr_t>*>(this + 1);
    }
    const std::atomic<std::uintptr_t>* next() const noexcept {
      return reinterpret_cast<const std::atomic<std::uintptr_t>*>(this + 1);
    }

    static std::size_t alloc_size(int top_level) noexcept {
      return sizeof(Node) +
             static_cast<std::size_t>(top_level + 1) *
                 sizeof(std::atomic<std::uintptr_t>);
    }

    static Node* make(const K& key, const V& value, int top_level,
                      bool is_head = false) {
      void* raw = ::operator new(alloc_size(top_level));
      auto* n = new (raw) Node{key, {}, {}, top_level, is_head};
      n->value.store(value, std::memory_order_relaxed);
      for (int i = 0; i <= top_level; ++i) {
        std::construct_at(n->next() + i, std::uintptr_t{0});
      }
      return n;
    }

    static void destroy(Node* n) noexcept {
      n->~Node();
      ::operator delete(n);
    }
    static void destroy_erased(void* n) { destroy(static_cast<Node*>(n)); }
  };

  static Node* ptr_of(std::uintptr_t t) noexcept {
    return reinterpret_cast<Node*>(t & ~std::uintptr_t{1});
  }
  static bool marked(std::uintptr_t t) noexcept { return (t & 1) != 0; }
  static std::uintptr_t pack(Node* p, bool mark) noexcept {
    return reinterpret_cast<std::uintptr_t>(p) | (mark ? 1 : 0);
  }

 public:
  ConcurrentSkipList() {
    head_ = Node::make(K{}, V{}, kMaxLevel - 1, /*is_head=*/true);
  }

  ConcurrentSkipList(const ConcurrentSkipList&) = delete;
  ConcurrentSkipList& operator=(const ConcurrentSkipList&) = delete;

  ~ConcurrentSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = ptr_of(n->next()[0].load(std::memory_order_relaxed));
      Node::destroy(n);
      n = nx;
    }
  }

  /// Inserts or replaces. Returns true iff the key was new.
  bool insert(const K& key, const V& value) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    // Fault site: victim parks inside the guard before touching the list —
    // the stall-tolerant reclaimer's worst case (testkit/fault.hpp).
    testkit::chaos_point("csl.pinned");
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    while (true) {
      if (find(key, preds, succs)) {
        Node* found = succs[0];
        if (!write_in_place(found, value)) {
          // Logically dead: the remover linearized before us. Help the
          // physical marks along so our retry's find() snips the corpse,
          // then insert a fresh node.
          help_mark(found);
          continue;
        }
        return false;
      }
      const int top = random_level();
      Node* n = Node::make(key, value, top);
      n->next()[0].store(pack(succs[0], false), std::memory_order_relaxed);
      for (int lev = 1; lev <= top; ++lev) {
        n->next()[lev].store(pack(succs[lev], false),
                             std::memory_order_relaxed);
      }
      std::uintptr_t expected = pack(succs[0], false);
      testkit::chaos_point("csl.link_bottom");
      if (!head_level_cas(preds[0], 0, expected, pack(n, false))) {
        Node::destroy(n);  // never published
        obs::sites::csl_cas_retry.add();
        continue;
      }
      link_upper_levels(n, top, key, preds, succs);
      return true;
    }
  }

  bool put_if_absent(const K& key, const V& value) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("csl.pinned");
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    while (true) {
      if (find(key, preds, succs)) {
        // [acquires: CSL_VSYNC]
        if (succs[0]->vsync.load(std::memory_order_seq_cst) & kDead) {
          // Found only the corpse of a concurrent removal: from our view
          // the key is absent, so behave like the not-found path would.
          help_mark(succs[0]);
          continue;
        }
        return false;
      }
      const int top = random_level();
      Node* n = Node::make(key, value, top);
      for (int lev = 0; lev <= top; ++lev) {
        n->next()[lev].store(pack(succs[lev], false),
                             std::memory_order_relaxed);
      }
      std::uintptr_t expected = pack(succs[0], false);
      testkit::chaos_point("csl.link_bottom");
      if (!head_level_cas(preds[0], 0, expected, pack(n, false))) {
        Node::destroy(n);
        obs::sites::csl_cas_retry.add();
        continue;
      }
      link_upper_levels(n, top, key, preds, succs);
      return true;
    }
  }

  std::optional<V> lookup(const K& key) const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("csl.pinned");
    // Wait-free traversal (Herlihy–Shavit contains): never snips, never
    // restarts, but also never trusts a marked node — corpses are skipped
    // via their (frozen) forward pointer and never become `pred`, because a
    // marked node's pointers are stale: descending through one can step
    // over nodes inserted after it was unlinked and report a false absent.
    const Node* pred = head_;
    const Node* curr = nullptr;
    for (int lev = kMaxLevel - 1; lev >= 0; --lev) {
      curr = ptr_of(pred->next()[lev].load(std::memory_order_seq_cst));
      while (curr != nullptr) {
        // [acquires: CSL_MARK]
        std::uintptr_t succ_t =
            curr->next()[lev].load(std::memory_order_seq_cst);
        while (marked(succ_t)) {  // skip corpses without adopting them
          curr = ptr_of(succ_t);
          if (curr == nullptr) break;
          succ_t = curr->next()[lev].load(std::memory_order_seq_cst);
        }
        if (curr == nullptr) break;
        if (less_(curr->key, key)) {
          pred = curr;
          curr = ptr_of(succ_t);
        } else {
          break;
        }
      }
    }
    if (curr == nullptr || less_(key, curr->key) || less_(curr->key, key)) {
      return std::nullopt;
    }
    // Unmarked when scanned; the dead bit catches removals whose physical
    // mark hasn't landed yet.
    if (curr->vsync.load(std::memory_order_seq_cst) & kDead) {
      return std::nullopt;
    }
    return curr->value.load(std::memory_order_seq_cst);
  }

  bool contains(const K& key) const { return lookup(key).has_value(); }

  std::optional<V> remove(const K& key) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("csl.pinned");
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    if (!find(key, preds, succs)) return std::nullopt;
    Node* victim = succs[0];
    // Claim the logical removal through vsync: set the dead bit, waiting
    // out any in-flight in-place writer first. Winning this CAS is the
    // linearization point, and it makes the value we read below exact — no
    // writer can start once the dead bit is up, and none was mid-store when
    // it went up.
    std::uint64_t s = victim->vsync.load(std::memory_order_seq_cst);
    util::Backoff backoff;
    while (true) {
      if (s & kDead) return std::nullopt;  // another remover won
      if (s & kWriter) {  // writer active: back off until it releases
        backoff.pause();
        s = victim->vsync.load(std::memory_order_seq_cst);
        continue;
      }
      testkit::chaos_point("csl.mark_bottom");
      // [publishes: CSL_VSYNC]
      if (victim->vsync.compare_exchange_weak(s, s | kDead,
                                              std::memory_order_seq_cst,
                                              std::memory_order_seq_cst)) {
        obs::trace::emit(obs::trace::EventId::kCslMarkBottom, key,
                         victim->top_level);
        break;
      }
    }
    const V out = victim->value.load(std::memory_order_seq_cst);
    // Logically removed but not yet physically marked/unlinked — the window
    // every traversal and racing insert must tolerate.
    testkit::chaos_point("csl.unlink");
    help_mark(victim);
    // Physically unlink everywhere, then retire: after this find() the
    // node is unreachable (inserts that could have re-linked a marked
    // successor re-run find themselves — see link_upper_levels).
    find(key, preds, succs);
    Reclaimer::retire_raw_sized(victim, &Node::destroy_erased,
                                Node::alloc_size(victim->top_level));
    return out;
  }

  std::size_t size() const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    std::size_t n = 0;
    for (Node* curr = ptr_of(head_->next()[0].load(std::memory_order_acquire));
         curr != nullptr;
         curr = ptr_of(curr->next()[0].load(std::memory_order_acquire))) {
      if (!marked(curr->next()[0].load(std::memory_order_acquire))) ++n;
    }
    return n;
  }

  bool empty() const { return size() == 0; }

  template <typename F>
  void for_each(F&& fn) const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    for (Node* curr = ptr_of(head_->next()[0].load(std::memory_order_acquire));
         curr != nullptr;
         curr = ptr_of(curr->next()[0].load(std::memory_order_acquire))) {
      if (!marked(curr->next()[0].load(std::memory_order_acquire))) {
        fn(curr->key, curr->value.load(std::memory_order_acquire));
      }
    }
  }

  std::size_t footprint_bytes() const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    std::size_t bytes = sizeof(*this) + Node::alloc_size(kMaxLevel - 1);
    for (Node* curr = ptr_of(head_->next()[0].load(std::memory_order_acquire));
         curr != nullptr;
         curr = ptr_of(curr->next()[0].load(std::memory_order_acquire))) {
      bytes += Node::alloc_size(curr->top_level);
    }
    return bytes;
  }

  /// Quiescent invariant check: strictly sorted bottom level, no marks, and
  /// every upper-level list is a sublist of the bottom one.
  std::vector<std::string> debug_validate() const {
    std::vector<std::string> issues;
    const Node* prev = nullptr;
    for (const Node* curr =
             ptr_of(head_->next()[0].load(std::memory_order_acquire));
         curr != nullptr;
         curr = ptr_of(curr->next()[0].load(std::memory_order_acquire))) {
      if (marked(curr->next()[0].load(std::memory_order_acquire))) {
        issues.push_back("marked node in quiescent skip list");
      }
      if (prev != nullptr && !less_(prev->key, curr->key)) {
        issues.push_back("bottom level not strictly sorted");
      }
      prev = curr;
    }
    for (int lev = 1; lev < kMaxLevel; ++lev) {
      for (const Node* curr =
               ptr_of(head_->next()[lev].load(std::memory_order_acquire));
           curr != nullptr;
           curr = ptr_of(curr->next()[lev].load(std::memory_order_acquire))) {
        if (curr->top_level < lev) {
          issues.push_back("node linked above its top level");
        }
      }
    }
    return issues;
  }

 private:
  bool head_level_cas(Node* pred, int lev, std::uintptr_t& expected,
                      std::uintptr_t desired) {
    // [publishes: CSL_LINK]
    return pred->next()[lev].compare_exchange_strong(
        expected, desired, std::memory_order_seq_cst,
        std::memory_order_seq_cst);
  }

  /// Serializes an in-place value update against logical removal: claim the
  /// writer bit (odd vsync), store, release. Returns false iff the node is
  /// dead — the remover linearized first and the caller must treat the key
  /// as absent (insert a fresh node instead of resurrecting the corpse).
  static bool write_in_place(Node* n, const V& value) {
    std::uint64_t s = n->vsync.load(std::memory_order_seq_cst);
    util::Backoff backoff;
    while (true) {
      if (s & kDead) return false;
      if (s & kWriter) {  // another writer mid-store: back off until free
        backoff.pause();
        s = n->vsync.load(std::memory_order_seq_cst);
        continue;
      }
      if (n->vsync.compare_exchange_weak(s, s + kWriter,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst)) {
        break;
      }
    }
    n->value.store(value, std::memory_order_seq_cst);
    n->vsync.store(s + 2, std::memory_order_seq_cst);
    return true;
  }

  /// Publishes the physical marks of a logically dead node at EVERY level,
  /// top-down, so find() can snip it wherever it is linked. Idempotent;
  /// called by the dead-bit winner and by any thread that trips over the
  /// corpse. Marking must cover all levels and finish with the bottom:
  /// helping only the bottom level leaves a window where the dead-bit
  /// winner has stalled before its own upper marks, yet the corpse is
  /// already bottom-marked — still reachable through the unmarked upper
  /// levels, where descents adopt it as pred. Its bottom pointer is frozen
  /// by the mark, so snip CASes against it fail forever (find() livelocks)
  /// and lookups descending through it can step past nodes inserted after
  /// the freeze and report a false absent. The top-down order restores the
  /// invariant "bottom-marked implies marked everywhere above".
  static void help_mark(Node* n) {
    obs::sites::csl_help_mark.add();
    obs::trace::emit(obs::trace::EventId::kCslHelpMark,
                     reinterpret_cast<std::uintptr_t>(n), n->top_level);
    for (int lev = n->top_level; lev >= 1; --lev) {
      testkit::chaos_point("csl.mark_upper");
      std::uintptr_t t = n->next()[lev].load(std::memory_order_seq_cst);
      while (!marked(t)) {
        // [publishes: CSL_MARK]
        if (n->next()[lev].compare_exchange_weak(t, t | 1,
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_seq_cst)) {
          break;
        }
      }
    }
    std::uintptr_t t = n->next()[0].load(std::memory_order_seq_cst);
    while (!marked(t)) {
      if (n->next()[0].compare_exchange_weak(t, t | 1,
                                             std::memory_order_seq_cst,
                                             std::memory_order_seq_cst)) {
        break;
      }
    }
  }

  /// Links levels 1..top of a freshly inserted node. The node's own next
  /// pointers are updated with CAS so a concurrent removal's mark is never
  /// overwritten; if the node got marked, linking stops (the remover's find
  /// unlinks whatever was already linked).
  void link_upper_levels(Node* n, int top, const K& key, Node** preds,
                         Node** succs) {
    bool resnip = false;
    for (int lev = 1; lev <= top; ++lev) {
      while (true) {
        std::uintptr_t own = n->next()[lev].load(std::memory_order_seq_cst);
        if (marked(own)) return;  // being removed; abandon the upper levels
        if (ptr_of(own) != succs[lev]) {
          // Align our forward pointer with the current successor first.
          if (!n->next()[lev].compare_exchange_strong(
                  own, pack(succs[lev], false), std::memory_order_seq_cst,
                  std::memory_order_seq_cst)) {
            continue;
          }
        }
        std::uintptr_t expected = pack(succs[lev], false);
        testkit::chaos_point("csl.link_upper");
        if (preds[lev]->next()[lev].compare_exchange_strong(
                expected, pack(n, false), std::memory_order_seq_cst,
                std::memory_order_seq_cst)) {
          // Re-check for the resurrection race: if the successor we just
          // published was marked meanwhile, a remover may already have
          // finished its unlink pass — snip it ourselves via find().
          if (succs[lev] != nullptr &&
              marked(succs[lev]->next()[lev].load(std::memory_order_seq_cst))) {
            resnip = true;
          }
          break;
        }
        // Predecessor changed: recompute the neighborhood.
        obs::sites::csl_cas_retry.add();
        if (find(key, preds, succs)) {
          if (succs[0] != n) return;  // our node vanished (removed)
        } else {
          return;  // removed entirely
        }
      }
    }
    if (resnip) {
      find(key, preds, succs);
    }
  }

  /// Herlihy–Shavit find: locates the neighborhood of `key` on every level,
  /// snipping marked nodes along the way. Returns true iff an unmarked node
  /// with the key sits at the bottom level.
  bool find(const K& key, Node** preds, Node** succs) {
  retry:
    Node* pred = head_;
    for (int lev = kMaxLevel - 1; lev >= 0; --lev) {
      // [acquires: CSL_LINK]
      Node* curr = ptr_of(pred->next()[lev].load(std::memory_order_seq_cst));
      while (true) {
        if (curr == nullptr) break;
        std::uintptr_t succ_t =
            curr->next()[lev].load(std::memory_order_seq_cst);
        while (marked(succ_t)) {
          // curr is logically removed: unlink it at this level.
          std::uintptr_t expected = pack(curr, false);
          if (!pred->next()[lev].compare_exchange_strong(
                  expected, pack(ptr_of(succ_t), false),
                  std::memory_order_seq_cst, std::memory_order_seq_cst)) {
            obs::sites::csl_cas_retry.add();
            goto retry;
          }
          curr = ptr_of(succ_t);
          if (curr == nullptr) break;
          succ_t = curr->next()[lev].load(std::memory_order_seq_cst);
        }
        if (curr == nullptr) break;
        if (less_(curr->key, key)) {
          pred = curr;
          curr = ptr_of(succ_t);
        } else {
          break;
        }
      }
      preds[lev] = pred;
      succs[lev] = curr;
    }
    return succs[0] != nullptr && !less_(key, succs[0]->key) &&
           !less_(succs[0]->key, key);
  }

  /// Geometric level distribution, p = 1/2.
  int random_level() {
    const std::uint64_t r = util::thread_rng().next();
    int lev = 0;
    while (lev < kMaxLevel - 1 && ((r >> lev) & 1) != 0) ++lev;
    return lev;
  }

  Compare less_{};
  Node* head_;
};

}  // namespace cachetrie::csl
