// serve_map.hpp — uniform adapter between the wire protocol and the bounded
// maps (cachetrie/evict.hpp).
//
// The reactor shards are map-agnostic: they hand a parsed RequestFrame to
// ServeMap<Map>::execute and get back (status, value). Both bounded maps —
// BoundedCacheTrie and BoundedChm — expose the same method surface, so one
// template covers the trie and the baseline; the server binary and the
// fault tests instantiate both.
//
// The adapter is also where graceful degradation is sensed: near_ceiling()
// polls the map's resident-vs-ceiling ratio so shards can stamp kFlagDegraded
// on replies while the lazy eviction path works the footprint back down —
// clients see "served, but the cache is under memory pressure" instead of a
// failure, and the BoundedCacheTrie keeps its ceiling the way fig14 proves
// (writers run backpressure scans; no evictor thread exists to fall behind).
#pragma once

#include <cstdint>

#include "net/proto.hpp"

namespace cachetrie::net {

/// Thin non-owning view over a bounded map. `Map` must expose the bounded
/// surface: lookup/insert/remove/remove_if_equals over u64 keys and values,
/// plus near_ceiling()/resident_headroom_bytes().
template <typename Map>
class ServeMap {
 public:
  explicit ServeMap(Map& map) noexcept : map_(&map) {}

  /// Executes one request against the map. Fills `*value_out` for ops that
  /// produce a value (GET, REMOVE return the stored value; PUT and PING echo
  /// the request's). Never throws protocol-level errors — an unknown op is a
  /// kBadRequest reply, not a closed connection.
  proto::Status execute(const proto::RequestFrame& req,
                        std::uint64_t* value_out) {
    switch (static_cast<proto::Op>(req.op)) {
      case proto::Op::kGet: {
        const auto v = map_->lookup(req.key);
        if (!v.has_value()) return proto::Status::kNotFound;
        *value_out = *v;
        return proto::Status::kOk;
      }
      case proto::Op::kPut:
        map_->insert(req.key, req.value);
        *value_out = req.value;
        return proto::Status::kOk;
      case proto::Op::kRemove: {
        const auto v = map_->remove(req.key);
        if (!v.has_value()) return proto::Status::kNotFound;
        *value_out = *v;
        return proto::Status::kOk;
      }
      case proto::Op::kRemoveIfEquals:
        if (!map_->remove_if_equals(req.key, req.value)) {
          return proto::Status::kNotFound;
        }
        *value_out = req.value;
        return proto::Status::kOk;
      case proto::Op::kPing:
        *value_out = req.value;
        return proto::Status::kOk;
      case proto::Op::kStats:
      case proto::Op::kTraceCtl:
        // Introspection ops are intercepted by the shard before execute()
        // (shard.hpp owns the registry differ and the write buffer); one
        // reaching a bare ServeMap is a caller error.
        break;
    }
    return proto::Status::kBadRequest;
  }

  /// Degradation signal: resident bytes within `frac` of the ceiling.
  bool near_ceiling(double frac) const { return map_->near_ceiling(frac); }
  std::uint64_t resident_headroom_bytes() const {
    return map_->resident_headroom_bytes();
  }

 private:
  Map* map_;
};

}  // namespace cachetrie::net
