// socket.hpp — thin RAII + loopback-TCP helpers under the serving layer.
//
// Everything the reactor needs from the kernel surface in one place: an
// owning fd wrapper, nonblocking loopback listeners/connections, and
// errno-tolerant read/write wrappers. TCP on 127.0.0.1 only — the serving
// layer measures the maps under a real socket path (syscalls, kernel
// buffers, EPOLLOUT flow control), not a networking stack's feature grid.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <utility>

namespace cachetrie::net {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() noexcept = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

inline bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Disables Nagle so a request/reply ping-pong is not serialized on delayed
/// ACKs; loopback ignores it mostly, but the knob documents intent.
inline void set_nodelay(int fd) noexcept {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Shrinks kernel buffers — the backpressure tests use this to make "slow
/// client" reproducible without megabytes of traffic (the kernel rounds the
/// value up to its floor, typically a few KiB).
inline void set_buffer_sizes(int fd, int snd_bytes, int rcv_bytes) noexcept {
  if (snd_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &snd_bytes, sizeof(snd_bytes));
  }
  if (rcv_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv_bytes, sizeof(rcv_bytes));
  }
}

/// Nonblocking listener on 127.0.0.1:`port` (0 = kernel-assigned). On
/// success `*bound_port` holds the actual port. Invalid Fd on failure.
inline Fd listen_loopback(std::uint16_t port, std::uint16_t* bound_port,
                          int backlog = 128) noexcept {
  Fd fd{::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0)};
  if (!fd.valid()) return Fd{};
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Fd{};
  }
  if (::listen(fd.get(), backlog) != 0) return Fd{};
  sockaddr_in got{};
  socklen_t len = sizeof(got);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) != 0) {
    return Fd{};
  }
  if (bound_port != nullptr) *bound_port = ntohs(got.sin_port);
  return fd;
}

/// Blocking connect to 127.0.0.1:`port`. The caller decides whether to flip
/// the socket nonblocking afterwards (the pipelined client keeps it
/// blocking: the kernel send buffer IS its flow control). Buffer sizes must
/// be applied before connect to take effect on the window, hence the
/// parameters here (0 = kernel default).
inline Fd connect_loopback(std::uint16_t port, int snd_bytes = 0,
                           int rcv_bytes = 0) noexcept {
  Fd fd{::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0)};
  if (!fd.valid()) return Fd{};
  set_buffer_sizes(fd.get(), snd_bytes, rcv_bytes);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Fd{};
  }
  set_nodelay(fd.get());
  return fd;
}

/// read() that retries EINTR. Returns >0 bytes, 0 on orderly EOF, -1 with
/// errno EAGAIN/EWOULDBLOCK when drained, -2 on a hard error.
inline long read_some(int fd, void* buf, std::size_t cap) noexcept {
  while (true) {
    const ssize_t n = ::read(fd, buf, cap);
    if (n > 0) return static_cast<long>(n);
    if (n == 0) return 0;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return -2;
  }
}

/// send(MSG_NOSIGNAL) that retries EINTR — a reply racing a client death
/// must surface as EPIPE (-2), not a process-killing SIGPIPE. Returns bytes
/// written (possibly short), -1 when the kernel buffer is full, -2 on a
/// hard error.
inline long write_some(int fd, const void* buf, std::size_t len) noexcept {
  while (true) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return -2;
  }
}

/// Writes the whole buffer on a blocking socket; false on any hard error.
inline bool write_all(int fd, const void* buf, std::size_t len) noexcept {
  const unsigned char* p = static_cast<const unsigned char*>(buf);
  while (len > 0) {
    const long n = write_some(fd, p, len);
    if (n == -2 || n == 0) return false;
    if (n < 0) continue;  // blocking socket: EAGAIN only under SO_SNDTIMEO
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace cachetrie::net
