// reactor.hpp — the serving-layer front end: listener + acceptor thread +
// shard-per-core epoll shards (shard.hpp) over one bounded map.
//
// The acceptor owns exactly one decision: which shard adopts a new
// connection. Routing is least-loaded by open-connection count with an
// overload penalty — a shard whose last iteration shed requests advertises
// itself via the NET_SHED_FLAG edge and new connections steer elsewhere,
// which is admission control at connection granularity on top of the
// per-request shedding inside each shard. After adoption a connection never
// migrates: all its state lives in one shard thread, which is what keeps
// the serving layer down to three ordering edges (DESIGN.md §4).
//
// Shutdown is a drain handshake (NET_DRAIN): stop() publishes the stop
// flag, wakes every shard, and joins; each shard finishes its queue,
// flushes write buffers (bounded by drain_timeout_us), closes its
// connections, and publishes its final stats with a release store the
// joiner's acquire load pairs with.
//
// Fault posture: shard and acceptor threads run under chaos stream ids
// (chaos_thread_base + n) so fault plans can target "the shard" the same
// way they target a victim worker; a fault-engine kill unwinds the thread
// via ThreadKilled, the Server counts it, and the remaining shards keep
// serving — connections of the dead shard are closed when the Server is
// destroyed (their fds are owned by the Shard object, not the dead thread).
#pragma once

#include <poll.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/shard.hpp"
#include "net/socket.hpp"
#include "obs/inventory.hpp"
#include "obs/trace.hpp"
#include "testkit/chaos.hpp"
#include "testkit/fault.hpp"

namespace cachetrie::net {

struct ServerConfig {
  std::uint16_t port = 0;  // 0 = kernel-assigned; see Server::port()
  std::size_t shards = 2;
  ShardConfig shard;
  /// Chaos stream ids: acceptor = base, shard i = base + 1 + i. Kept far
  /// from the test's own victim indices (which start at 0).
  std::uint64_t chaos_thread_base = 100;
  bool least_loaded = true;  // false: round-robin (deterministic tests)
  int accept_poll_ms = 20;
  /// When > 0, shrink accepted sockets' kernel buffers — the backpressure
  /// tests use this to make "slow client" cheap to reproduce.
  int conn_sndbuf = 0;
  int conn_rcvbuf = 0;
};

/// Aggregated view over all shards (post-join it is exact; mid-run it is a
/// monitoring snapshot).
struct ServerTotals {
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t backpressure_kills = 0;
  std::uint64_t proto_errors = 0;
  std::uint64_t conns_adopted = 0;
  std::uint64_t conns_closed = 0;
  std::uint64_t degraded_replies = 0;
  std::uint64_t wbuf_hwm_bytes = 0;  // max over shards
  std::uint64_t queue_hwm = 0;       // max over shards
};

template <typename Map>
class Server {
 public:
  Server(Map& map, const ServerConfig& cfg) : cfg_(cfg) {
    listener_ = listen_loopback(cfg.port, &port_);
    if (!listener_.valid()) return;
    for (std::size_t i = 0; i < cfg_.shards; ++i) {
      auto sh = std::make_unique<Shard<Map>>(map, cfg_.shard, i, stop_);
      if (!sh->ok()) return;
      shards_.push_back(std::move(sh));
    }
    ok_ = true;
  }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server() { stop(); }

  bool ok() const noexcept { return ok_; }
  std::uint16_t port() const noexcept { return port_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  const Shard<Map>& shard(std::size_t i) const { return *shards_[i]; }

  /// Spawns the acceptor and one thread per shard. Idempotent-hostile on
  /// purpose: call once.
  bool start() {
    if (!ok_ || started_) return false;
    started_ = true;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard<Map>* sh = shards_[i].get();
      const std::uint64_t stream = cfg_.chaos_thread_base + 1 + i;
      threads_.emplace_back([sh, stream] {
        testkit::chaos::bind_thread(stream);
        try {
          sh->run();
        } catch (const testkit::fault::ThreadKilled&) {
          // The fault engine killed this shard mid-transition. Its fds and
          // stats stay owned by the Shard object; the maps are lock-free,
          // so no shared state is wedged — the other shards keep serving.
        }
      });
    }
    threads_.emplace_back([this] {
      testkit::chaos::bind_thread(cfg_.chaos_thread_base);
      try {
        accept_loop();
      } catch (const testkit::fault::ThreadKilled&) {
      }
    });
    return true;
  }

  /// Drain handshake. Safe to call repeatedly; returns once every thread
  /// is joined.
  void stop() {
    if (!started_) return;
    // Publishes the drain request to the acceptor and every shard loop.
    stop_.store(true, std::memory_order_release);  // [publishes: NET_DRAIN]
    for (auto& sh : shards_) sh->wake();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    started_ = false;
  }

  /// Shards the fault engine killed (their drain never completed).
  std::size_t killed_shards() const {
    std::size_t n = 0;
    for (const auto& sh : shards_) {
      if (!sh->drained()) ++n;
    }
    return n;
  }

  ServerTotals totals() const {
    ServerTotals t;
    for (const auto& sh : shards_) {
      const ShardStats& s = sh->stats();
      t.served += s.served.load(std::memory_order_relaxed);
      t.shed += s.shed.load(std::memory_order_relaxed);
      t.deadline_expired += s.deadline_expired.load(std::memory_order_relaxed);
      t.backpressure_kills +=
          s.backpressure_kills.load(std::memory_order_relaxed);
      t.proto_errors += s.proto_errors.load(std::memory_order_relaxed);
      t.conns_adopted += s.conns_adopted.load(std::memory_order_relaxed);
      t.conns_closed += s.conns_closed.load(std::memory_order_relaxed);
      t.degraded_replies +=
          s.degraded_replies.load(std::memory_order_relaxed);
      const auto wb = s.wbuf_hwm_bytes.load(std::memory_order_relaxed);
      if (wb > t.wbuf_hwm_bytes) t.wbuf_hwm_bytes = wb;
      const auto qh = s.queue_hwm.load(std::memory_order_relaxed);
      if (qh > t.queue_hwm) t.queue_hwm = qh;
    }
    return t;
  }

  /// Merged per-phase latency decomposition over all shards. Exact after
  /// stop() (the shard threads are joined); mid-run it races the shard
  /// threads' plain histograms — call it only post-drain.
  PhaseLatency phase_latency() const {
    PhaseLatency merged;
    for (const auto& sh : shards_) merged.merge(sh->phase_latency());
    return merged;
  }

 private:
  void accept_loop() {
    std::uint64_t next_conn_id = 1;  // 0 is each shard's eventfd sentinel
    std::size_t rr = 0;
    while (!stop_.load(std::memory_order_acquire)) {  // [acquires: NET_DRAIN]
      pollfd pfd{listener_.get(), POLLIN, 0};
      const int pr = ::poll(&pfd, 1, cfg_.accept_poll_ms);
      if (pr <= 0) continue;
      while (true) {
        const int fd = ::accept4(listener_.get(), nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;  // EAGAIN (burst drained) or transient error
        testkit::chaos_point("net.accept");
        set_nodelay(fd);
        if (cfg_.conn_sndbuf > 0 || cfg_.conn_rcvbuf > 0) {
          set_buffer_sizes(fd, cfg_.conn_sndbuf, cfg_.conn_rcvbuf);
        }
        const std::uint64_t id = next_conn_id++;
        const std::size_t target = pick_shard(rr++);
        obs::trace::emit(obs::trace::EventId::kNetAccept, id, target);
        obs::sites::net_accept.add();
        shards_[target]->adopt(fd, id);
      }
    }
  }

  std::size_t pick_shard(std::size_t rr) const {
    if (!cfg_.least_loaded || shards_.size() == 1) {
      return rr % shards_.size();
    }
    // Open connections plus a large penalty for a shard that shed in its
    // last iteration (the NET_SHED_FLAG acquire inside overloaded()).
    std::size_t best = 0;
    std::size_t best_score = SIZE_MAX;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::size_t score =
          shards_[i]->open_conns() + (shards_[i]->overloaded() ? 1u << 16 : 0);
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    return best;
  }

  ServerConfig cfg_;
  Fd listener_;
  std::uint16_t port_ = 0;
  bool ok_ = false;
  bool started_ = false;
  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<Shard<Map>>> shards_;
  std::vector<std::thread> threads_;
};

}  // namespace cachetrie::net
