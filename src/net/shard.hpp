// shard.hpp — one single-threaded epoll shard of the serving layer.
//
// A shard owns an epoll instance, every connection routed to it, and one
// pending-request queue; the maps it serves are the only state it shares
// with other shards (they are lock-free, so sharing them costs no
// cross-shard protocol). Everything else — read buffers, write buffers,
// the queue, the stats — is touched by the shard thread alone, which is why
// the serving layer adds just three edges to ordering_contracts.hpp
// (NET_REPLY_PUBLISH in the client, NET_SHED_FLAG and NET_DRAIN here)
// instead of a lock hierarchy (DESIGN.md §4).
//
// Robustness machinery, in the order a request meets it:
//   * admission control: a parsed request is SHED (kShed reply, request not
//     executed) when the pending queue is at max_inflight or its head has
//     aged past max_queue_age_us — under overload the queue cannot grow
//     without bound, so accepted requests keep a bounded queueing delay and
//     the excess is refused early while the refusal is still cheap;
//   * deadlines: a request whose budget (send_ts_us + deadline_us) expired
//     before execution gets kDeadlineExceeded and is NOT executed — time
//     spent in kernel socket buffers behind a stalled shard counts against
//     the budget (proto.hpp), so a post-stall flood expires instead of
//     executing work nobody is waiting for;
//   * write backpressure: replies buffer in a per-connection wbuf flushed
//     on EPOLLOUT; a client that stops reading accumulates bytes until
//     write_buf_cap and is then disconnected — memory stays bounded and the
//     pathology is *that* client's, not the shard's;
//   * graceful degradation: when the bounded map is near its resident
//     ceiling, replies carry kFlagDegraded while the map's own lazy
//     eviction works the footprint down — load keeps being served;
//   * drain: on stop the shard refuses new work (kShed + kFlagDraining),
//     finishes the queue, flushes write buffers, then closes everything —
//     bounded by drain_timeout_us so a dead client cannot wedge shutdown.
//
// Every lifecycle transition crosses a chaos point (net.* sites below), so
// the PR-2 fault engine can park or kill the shard mid-request, mid-reply,
// mid-drain; net_fault_test drives each path deterministically.
#pragma once

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/proto.hpp"
#include "net/serve_map.hpp"
#include "net/socket.hpp"
#include "obs/interval.hpp"
#include "obs/inventory.hpp"
#include "obs/latency.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "testkit/chaos.hpp"

namespace cachetrie::net {

/// Per-shard robustness knobs. The defaults suit the loopback tests; the
/// server binary and fig15 override them per scenario.
struct ShardConfig {
  std::size_t max_inflight = 256;        // pending-queue admission cap
  std::uint64_t max_queue_age_us = 50'000;   // shed when the head is older
  std::size_t write_buf_cap = 256 * 1024;    // per-conn buffered reply bytes
  std::uint32_t default_deadline_us = 0;     // 0: only request-carried budgets
  double degrade_headroom = 0.9;         // near_ceiling fraction for the flag
  int epoll_wait_ms = 20;                // idle poll period
  std::uint64_t drain_timeout_us = 250'000;  // drain bound after stop
};

/// Why a connection closed (a1 of the net.conn.close trace event).
enum class CloseReason : std::uint8_t {
  kEof = 0,           // orderly client close
  kError = 1,         // hard socket error
  kProtoError = 2,    // bad length prefix or magic
  kBackpressure = 3,  // write buffer exceeded the cap
  kShutdown = 4,      // server drain/shutdown closed it
};

/// Monotonic per-shard totals, relaxed — test assertions and the stats
/// aggregation read them after the NET_DRAIN join edge (or best-effort
/// mid-run, which is all a monitoring poll wants).
struct ShardStats {
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> deadline_expired{0};
  std::atomic<std::uint64_t> backpressure_kills{0};
  std::atomic<std::uint64_t> proto_errors{0};
  std::atomic<std::uint64_t> conns_adopted{0};
  std::atomic<std::uint64_t> conns_closed{0};
  std::atomic<std::uint64_t> degraded_replies{0};
  std::atomic<std::uint64_t> wbuf_hwm_bytes{0};  // max pending reply bytes
  std::atomic<std::uint64_t> queue_hwm{0};       // max pending-queue depth
};

/// Per-shard phase decomposition of served latency (DESIGN.md §4): the
/// three phases partition a request's shard-side lifetime exactly —
/// queue (admission -> dequeued-for-execution), execute (map op or
/// introspection build), flush (reply enqueued -> last byte accepted by
/// the kernel) — and every stamp reuses a clock value the serving path
/// already reads, so queue + execute + flush == total per request by
/// construction (fig15 asserts the histogram-level version of this).
/// Plain histograms: written by the shard thread alone, read after the
/// NET_DRAIN join edge.
struct PhaseLatency {
  obs::LatencyHistogram queue;
  obs::LatencyHistogram execute;
  obs::LatencyHistogram flush;
  obs::LatencyHistogram total;

  void merge(const PhaseLatency& o) noexcept {
    queue.merge(o.queue);
    execute.merge(o.execute);
    flush.merge(o.flush);
    total.merge(o.total);
  }
};

template <typename Map>
class Shard {
 public:
  Shard(Map& map, const ShardConfig& cfg, std::size_t index,
        const std::atomic<bool>& stop)
      : map_(map), cfg_(cfg), index_(index), stop_(stop) {
    epoll_ = Fd{::epoll_create1(EPOLL_CLOEXEC)};
    event_ = Fd{::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)};
    if (!epoll_.valid() || !event_.valid()) return;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;  // conn ids start at 1; 0 is the eventfd
    ok_ = ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, event_.get(), &ev) == 0;
  }

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  bool ok() const noexcept { return ok_; }
  std::size_t index() const noexcept { return index_; }

  /// Hands a freshly accepted connection to this shard. Called from the
  /// acceptor thread; the shard thread registers it at the next wakeup.
  void adopt(int fd, std::uint64_t conn_id) {
    {
      std::lock_guard<std::mutex> lk(inbox_mu_);
      inbox_.emplace_back(fd, conn_id);
    }
    wake();
  }

  /// Pokes the eventfd so a blocked epoll_wait returns promptly (used by
  /// adopt() and by Server::stop()).
  void wake() noexcept {
    const std::uint64_t one = 1;
    (void)!::write(event_.get(), &one, sizeof(one));
  }

  /// Least-loaded routing inputs for the acceptor. `overloaded` is the
  /// NET_SHED_FLAG acquire side: it makes the pressure counters written
  /// before the flag visible to the router.
  bool overloaded() const noexcept {
    return overloaded_.load(std::memory_order_acquire);  // [acquires: NET_SHED_FLAG]
  }
  std::size_t open_conns() const noexcept {
    return open_conns_.load(std::memory_order_relaxed);
  }

  const ShardStats& stats() const noexcept { return stats_; }
  /// Valid to read after drained() observes true (the NET_DRAIN edge) or
  /// after the shard thread is joined; mid-run reads race the shard thread.
  const PhaseLatency& phase_latency() const noexcept { return phase_; }
  bool drained() const noexcept {
    return drained_.load(std::memory_order_acquire);  // [acquires: NET_DRAIN]
  }

  /// Thread body. Returns normally after drain; a fault-engine kill
  /// propagates testkit::fault::ThreadKilled out of a chaos point and is
  /// caught by the server's thread wrapper (reactor.hpp) — connection fds
  /// stay owned by this object and close with it, and the maps stay valid
  /// because every map operation is lock-free.
  void run() {
    testkit::chaos_point("net.shard_start");
    std::uint64_t drain_start_us = 0;
    while (true) {
      const bool stopping =
          stop_.load(std::memory_order_acquire);  // [acquires: NET_DRAIN]
      if (stopping && drain_start_us == 0) {
        drain_start_us = proto::now_us();
        testkit::chaos_point("net.drain");
        obs::trace::emit(obs::trace::EventId::kNetDrain, index_,
                         conns_.size());
      }
      shed_this_iter_ = false;

      epoll_event evs[64];
      const int timeout_ms = stopping ? 1 : cfg_.epoll_wait_ms;
      const int n = ::epoll_wait(epoll_.get(), evs, 64, timeout_ms);
      for (int i = 0; i < n; ++i) {
        if (evs[i].data.u64 == 0) {
          drain_eventfd();
          continue;
        }
        handle_event(evs[i].data.u64, evs[i].events, stopping);
      }
      drain_inbox(stopping);
      process_queue();
      publish_pressure();

      if (stopping && queue_.empty() &&
          (all_flushed() ||
           proto::now_us() - drain_start_us >= cfg_.drain_timeout_us)) {
        break;
      }
    }
    shutdown();
  }

 private:
  /// One served reply awaiting its flush stamp: when the connection's
  /// flushed-byte counter reaches end_offset, this reply's last byte was
  /// accepted by the kernel and the request enters the phase histograms.
  /// All four phases are recorded then, from the stamps carried here, so
  /// the histograms cover one identical population (requests whose reply
  /// actually left) and per request queue + execute + flush == total.
  struct ReplyMark {
    std::uint64_t end_offset = 0;   // absolute reply-stream position
    std::uint64_t request_id = 0;
    std::uint64_t admit_us = 0;
    std::uint64_t exec_begin_us = 0;
    std::uint64_t exec_end_us = 0;
  };

  struct Conn {
    Fd fd;
    std::uint64_t id = 0;
    std::vector<unsigned char> rbuf;
    std::vector<unsigned char> wbuf;
    std::size_t woff = 0;  // flushed prefix of wbuf
    bool want_write = false;
    // Absolute positions in the connection's reply stream — monotone even
    // as wbuf itself is cleared/compacted, so ReplyMark offsets stay valid.
    std::uint64_t enqueued_bytes = 0;
    std::uint64_t flushed_bytes = 0;
    std::deque<ReplyMark> marks;

    std::size_t pending_bytes() const noexcept { return wbuf.size() - woff; }
  };

  struct Pending {
    proto::RequestFrame req;
    std::uint64_t conn_id = 0;
    std::uint64_t admit_us = 0;
    std::uint64_t expiry_us = 0;  // 0 = no deadline
  };

  // --- connection lifecycle -------------------------------------------------

  void drain_eventfd() noexcept {
    std::uint64_t v = 0;
    (void)!::read(event_.get(), &v, sizeof(v));
  }

  void drain_inbox(bool stopping) {
    std::vector<std::pair<int, std::uint64_t>> batch;
    {
      std::lock_guard<std::mutex> lk(inbox_mu_);
      batch.swap(inbox_);
    }
    for (auto& [fd, id] : batch) {
      if (stopping) {  // adopted after stop: refuse, don't register
        ::close(fd);
        continue;
      }
      testkit::chaos_point("net.conn_adopt");
      Conn c;
      c.fd = Fd{fd};
      c.id = id;
      set_nonblocking(fd);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = id;
      if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) continue;
      stats_.conns_adopted.fetch_add(1, std::memory_order_relaxed);
      obs::sites::net_conns_open.add(1);
      conns_.emplace(id, std::move(c));
    }
  }

  void close_conn(std::uint64_t id, CloseReason reason) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    testkit::chaos_point("net.conn_close");
    obs::trace::emit(obs::trace::EventId::kNetConnClose, id,
                     static_cast<std::uint64_t>(reason));
    obs::sites::net_conn_close.add();
    obs::sites::net_conns_open.add(-1);
    stats_.conns_closed.fetch_add(1, std::memory_order_relaxed);
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, it->second.fd.get(), nullptr);
    conns_.erase(it);  // Fd destructor closes
  }

  void handle_event(std::uint64_t id, std::uint32_t events, bool stopping) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      close_conn(id, CloseReason::kError);
      return;
    }
    if ((events & EPOLLOUT) != 0) flush_conn(it->second);
    if ((events & EPOLLIN) != 0) handle_readable(id, stopping);
  }

  // --- read side: bytes -> frames -> admission ------------------------------

  void handle_readable(std::uint64_t id, bool stopping) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    Conn& c = it->second;
    bool peer_gone = false;
    CloseReason close_reason = CloseReason::kEof;
    unsigned char buf[16 * 1024];
    while (true) {
      const long r = read_some(c.fd.get(), buf, sizeof(buf));
      if (r > 0) {
        c.rbuf.insert(c.rbuf.end(), buf, buf + r);
        continue;
      }
      if (r == -1) break;  // drained
      peer_gone = true;
      close_reason = r == 0 ? CloseReason::kEof : CloseReason::kError;
      break;
    }

    // Parse everything buffered — a request the client managed to write
    // before dying still deserves its admission decision.
    std::size_t off = 0;
    while (true) {
      proto::RequestFrame req;
      std::size_t consumed = 0;
      const auto pr = proto::parse_request(c.rbuf.data() + off,
                                           c.rbuf.size() - off, &req,
                                           &consumed);
      if (pr == proto::ParseResult::kNeedMore) break;
      if (pr == proto::ParseResult::kProtocolError) {
        obs::sites::net_proto_error.add();
        stats_.proto_errors.fetch_add(1, std::memory_order_relaxed);
        close_conn(id, CloseReason::kProtoError);
        return;
      }
      off += consumed;
      obs::trace::emit(obs::trace::EventId::kNetReqParsed, id, req.request_id);
      admit(id, req, stopping);
      if (conns_.find(id) == conns_.end()) return;  // admit killed the conn
    }
    c.rbuf.erase(c.rbuf.begin(),
                 c.rbuf.begin() + static_cast<std::ptrdiff_t>(off));
    if (peer_gone) close_conn(id, close_reason);
  }

  void admit(std::uint64_t conn_id, const proto::RequestFrame& req,
             bool stopping) {
    testkit::chaos_point("net.request_admit");
    const std::uint64_t now = proto::now_us();
    if (stopping) {
      shed_reply(conn_id, req, proto::kFlagDraining, now);
      return;
    }
    const bool queue_full = queue_.size() >= cfg_.max_inflight;
    const bool head_stale =
        !queue_.empty() && now - queue_.front().admit_us > cfg_.max_queue_age_us;
    if (queue_full || head_stale) {
      shed_reply(conn_id, req, 0, now);
      return;
    }
    Pending p;
    p.req = req;
    p.conn_id = conn_id;
    p.admit_us = now;
    const std::uint32_t budget =
        req.deadline_us != 0 ? req.deadline_us : cfg_.default_deadline_us;
    if (budget != 0) {
      const std::uint64_t base = req.send_ts_us != 0 ? req.send_ts_us : now;
      p.expiry_us = base + budget;
    }
    queue_.push_back(p);
    obs::trace::emit(obs::trace::EventId::kNetReqAdmitted, conn_id,
                     req.request_id);
    const auto depth = static_cast<std::uint64_t>(queue_.size());
    if (depth > stats_.queue_hwm.load(std::memory_order_relaxed)) {
      stats_.queue_hwm.store(depth, std::memory_order_relaxed);
    }
  }

  void shed_reply(std::uint64_t conn_id, const proto::RequestFrame& req,
                  std::uint16_t extra_flags, std::uint64_t now) {
    testkit::chaos_point("net.shed");
    obs::trace::emit(obs::trace::EventId::kNetShed, conn_id, req.request_id);
    obs::sites::net_shed.add();
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    shed_this_iter_ = true;
    send_reply(conn_id, req, proto::Status::kShed, 0, extra_flags, now, now);
  }

  // --- execution ------------------------------------------------------------

  void process_queue() {
    const bool degraded = map_.near_ceiling(cfg_.degrade_headroom);
    const std::uint16_t base_flags = degraded ? proto::kFlagDegraded : 0;
    while (!queue_.empty()) {
      Pending p = queue_.front();
      queue_.pop_front();
      if (conns_.find(p.conn_id) == conns_.end()) continue;  // conn died
      obs::trace::Span span(obs::trace::EventId::kNetRequestBegin,
                            obs::trace::EventId::kNetRequestEnd, p.conn_id,
                            p.req.request_id);
      const std::uint64_t now = proto::now_us();
      if (p.expiry_us != 0 && now > p.expiry_us) {
        testkit::chaos_point("net.deadline_expire");
        obs::trace::emit(obs::trace::EventId::kNetDeadlineExpire, p.conn_id,
                         p.req.request_id);
        obs::sites::net_deadline_expired.add();
        stats_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        send_reply(p.conn_id, p.req, proto::Status::kDeadlineExceeded, 0,
                   base_flags, p.admit_us, now);
        continue;
      }
      obs::trace::emit(obs::trace::EventId::kNetReqDequeued, p.conn_id,
                       p.req.request_id);
      const auto op = static_cast<proto::Op>(p.req.op);
      if (op == proto::Op::kStats || op == proto::Op::kTraceCtl) {
        execute_introspection(p, op, base_flags, now);
        continue;
      }
      testkit::chaos_point("net.request_execute");
      std::uint64_t value = 0;
      proto::Status st;
      {
        obs::trace::Span exec(obs::trace::EventId::kNetExecuteBegin,
                              obs::trace::EventId::kNetExecuteEnd, p.conn_id,
                              p.req.request_id);
        st = map_.execute(p.req, &value);
      }
      testkit::chaos_point("net.reply_enqueue");
      const std::uint64_t done = proto::now_us();
      record_served(p, now, done, base_flags);
      send_reply(p.conn_id, p.req, st, value, base_flags, p.admit_us, done,
                 /*exec_end_us=*/done, /*exec_begin_us=*/now);
    }
  }

  /// Bookkeeping shared by every served request (data or introspection):
  /// counters plus the queue and execute metric stamps. `exec_begin` is the
  /// dequeue-time clock read and `exec_end` the post-execution one — both
  /// reused by the caller for the reply, so the phase partition is exact.
  /// The PhaseLatency histograms are NOT fed here: they record at flush
  /// time (stamp_flushed), over the flushed-reply population only.
  void record_served(const Pending& p, std::uint64_t exec_begin,
                     std::uint64_t exec_end, std::uint16_t base_flags) {
    obs::sites::net_request_served.add();
    obs::sites::net_queue_delay_us.record(exec_end - p.admit_us);
    obs::sites::net_phase_queue_us.record(exec_begin - p.admit_us);
    obs::sites::net_phase_execute_us.record(exec_end - exec_begin);
    stats_.served.fetch_add(1, std::memory_order_relaxed);
    if (base_flags != 0) {
      obs::sites::net_degraded_replies.add();
      stats_.degraded_replies.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // --- introspection ops (DESIGN.md §4) -------------------------------------

  /// kStats / kTraceCtl, executed in queue order like any data op (they
  /// went through the same admission and deadline gates). kStats serves a
  /// registry snapshot plus this shard's interval delta as the protocol's
  /// one variable-length frame; kTraceCtl flips the flight recorder or
  /// triggers a post-mortem-style dump on demand.
  void execute_introspection(const Pending& p, proto::Op op,
                             std::uint16_t base_flags,
                             std::uint64_t exec_begin) {
    testkit::chaos_point("net.request_execute");
    obs::sites::net_introspect_ops.add();
    if (op == proto::Op::kStats) {
      std::ostringstream os;
      {
        obs::trace::Span exec(obs::trace::EventId::kNetExecuteBegin,
                              obs::trace::EventId::kNetExecuteEnd, p.conn_id,
                              p.req.request_id);
        const obs::Snapshot snap = obs::registry().snapshot();
        os << "{\"shard\":" << index_ << ",\"now_us\":" << exec_begin
           << ",\"snapshot\":";
        snap.write_json(os);
        os << ",\"delta\":";
        differ_.advance(snap, exec_begin).write_json(os);
        os << "}";
      }
      testkit::chaos_point("net.reply_enqueue");
      const std::uint64_t done = proto::now_us();
      record_served(p, exec_begin, done, base_flags);
      send_stats_reply(p, os.str(), base_flags, exec_begin, done);
      return;
    }
    // kTraceCtl: request.value carries the action; the reply's value echoes
    // the resulting recorder state (0/1), or whether a dump file landed.
    proto::Status st = proto::Status::kOk;
    std::uint64_t result = 0;
    {
      obs::trace::Span exec(obs::trace::EventId::kNetExecuteBegin,
                            obs::trace::EventId::kNetExecuteEnd, p.conn_id,
                            p.req.request_id);
      switch (static_cast<proto::TraceCtl>(p.req.value)) {
        case proto::TraceCtl::kDisable:
          obs::trace::enable(false);
          break;
        case proto::TraceCtl::kEnable:
          obs::trace::enable(true);
          result = 1;
          break;
        case proto::TraceCtl::kDump:
          result = obs::trace::dump_to_file("trace_ctl").empty() ? 0 : 1;
          break;
        default:
          st = proto::Status::kBadRequest;
      }
    }
    testkit::chaos_point("net.reply_enqueue");
    const std::uint64_t done = proto::now_us();
    record_served(p, exec_begin, done, base_flags);
    send_reply(p.conn_id, p.req, st, result, base_flags, p.admit_us, done,
               /*exec_end_us=*/done, exec_begin);
  }

  // --- write side: replies, flushing, backpressure --------------------------

  /// `exec_end_us != 0` marks a *served* reply: a ReplyMark completes its
  /// flush/total phase stamps when the kernel accepts its last byte. Shed
  /// and deadline replies pass 0 — they were refused, not served, so they
  /// advance the stream counters without entering the phase histograms.
  void send_reply(std::uint64_t conn_id, const proto::RequestFrame& req,
                  proto::Status st, std::uint64_t value, std::uint16_t flags,
                  std::uint64_t admit_us, std::uint64_t now,
                  std::uint64_t exec_end_us = 0,
                  std::uint64_t exec_begin_us = 0) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    Conn& c = it->second;
    proto::ReplyFrame rep;
    rep.status = static_cast<std::uint8_t>(st);
    rep.op = req.op;
    rep.flags = flags;
    rep.request_id = req.request_id;
    rep.value = value;
    rep.queue_us = static_cast<std::uint32_t>(now - admit_us);
    proto::append_frame(c.wbuf, rep);
    c.enqueued_bytes += proto::kReplyWire;
    if (exec_end_us != 0) {
      c.marks.push_back({c.enqueued_bytes, req.request_id, admit_us,
                         exec_begin_us, exec_end_us});
    }
    finish_reply(conn_id, c);
  }

  /// The stats reply — the protocol's one variable-length frame. An
  /// over-cap payload downgrades to a fixed kBadRequest reply rather than
  /// emitting a frame the parser is contracted to reject.
  void send_stats_reply(const Pending& p, const std::string& json,
                        std::uint16_t flags, std::uint64_t exec_begin,
                        std::uint64_t done) {
    auto it = conns_.find(p.conn_id);
    if (it == conns_.end()) return;
    if (json.size() > proto::kMaxStatsPayload) {
      send_reply(p.conn_id, p.req, proto::Status::kBadRequest, 0, flags,
                 p.admit_us, done, /*exec_end_us=*/done, exec_begin);
      return;
    }
    Conn& c = it->second;
    proto::StatsReplyHeader h;
    h.status = static_cast<std::uint8_t>(proto::Status::kOk);
    h.flags = flags;
    h.request_id = p.req.request_id;
    proto::append_stats_frame(c.wbuf, h, json);
    c.enqueued_bytes +=
        proto::kLenPrefix + sizeof(proto::StatsReplyHeader) + json.size();
    c.marks.push_back(
        {c.enqueued_bytes, p.req.request_id, p.admit_us, exec_begin, done});
    finish_reply(p.conn_id, c);
  }

  /// Common tail of every reply path: flush, then the write-buffer
  /// accounting and backpressure kill. May erase the connection.
  void finish_reply(std::uint64_t conn_id, Conn& c) {
    flush_conn(c);
    // flush_conn never erases, so `c` is still valid here.
    const auto pending = static_cast<std::uint64_t>(c.pending_bytes());
    if (pending > stats_.wbuf_hwm_bytes.load(std::memory_order_relaxed)) {
      stats_.wbuf_hwm_bytes.store(pending, std::memory_order_relaxed);
    }
    if (pending > cfg_.write_buf_cap) {
      testkit::chaos_point("net.backpressure_kill");
      obs::trace::emit(obs::trace::EventId::kNetBackpressureKill, conn_id,
                       pending);
      obs::sites::net_backpressure_kill.add();
      stats_.backpressure_kills.fetch_add(1, std::memory_order_relaxed);
      close_conn(conn_id, CloseReason::kBackpressure);
    }
  }

  /// Writes as much of the pending wbuf as the kernel accepts; arms or
  /// disarms EPOLLOUT to match. Never erases the connection (hard write
  /// errors are left for the EPOLLERR wakeup so callers keep a valid ref).
  void flush_conn(Conn& c) {
    if (c.pending_bytes() == 0) return;
    testkit::chaos_point("net.reply_flush");
    while (c.pending_bytes() > 0) {
      const long w =
          write_some(c.fd.get(), c.wbuf.data() + c.woff, c.pending_bytes());
      if (w > 0) {
        c.woff += static_cast<std::size_t>(w);
        c.flushed_bytes += static_cast<std::uint64_t>(w);
        continue;
      }
      break;  // -1: kernel full (arm EPOLLOUT); -2: EPOLLERR will fire
    }
    stamp_flushed(c);
    if (c.pending_bytes() == 0) {
      c.wbuf.clear();
      c.woff = 0;
      set_want_write(c, false);
    } else {
      if (c.woff > 64 * 1024) {  // compact the flushed prefix
        c.wbuf.erase(c.wbuf.begin(),
                     c.wbuf.begin() + static_cast<std::ptrdiff_t>(c.woff));
        c.woff = 0;
      }
      set_want_write(c, true);
    }
  }

  /// Completes the phase decomposition for every served reply whose last
  /// byte the kernel just accepted: flush = now - exec_end, total =
  /// now - admit, so queue + execute + flush == total per request. One
  /// clock read covers the whole batch — replies flushed together share a
  /// stamp, which is also the truth (they left in one writev-style burst).
  void stamp_flushed(Conn& c) {
    if (c.marks.empty() || c.flushed_bytes < c.marks.front().end_offset) {
      return;
    }
    const std::uint64_t now = proto::now_us();
    while (!c.marks.empty() && c.flushed_bytes >= c.marks.front().end_offset) {
      const ReplyMark& m = c.marks.front();
      obs::trace::emit(obs::trace::EventId::kNetReqFlushed, c.id,
                       m.request_id);
      const std::uint64_t flush_us =
          now >= m.exec_end_us ? now - m.exec_end_us : 0;
      obs::sites::net_phase_flush_us.record(flush_us);
      phase_.queue.record(m.exec_begin_us - m.admit_us);
      phase_.execute.record(m.exec_end_us - m.exec_begin_us);
      phase_.flush.record(flush_us);
      phase_.total.record(now >= m.admit_us ? now - m.admit_us : 0);
      c.marks.pop_front();
    }
  }

  void set_want_write(Conn& c, bool on) {
    if (c.want_write == on) return;
    c.want_write = on;
    epoll_event ev{};
    ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
    ev.data.u64 = c.id;
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
  }

  bool all_flushed() const {
    for (const auto& [id, c] : conns_) {
      (void)id;
      if (c.pending_bytes() != 0) return false;
    }
    return true;
  }

  // --- pressure publication and shutdown ------------------------------------

  void publish_pressure() {
    open_conns_.store(conns_.size(), std::memory_order_relaxed);
    // Relaxed stats above are sequenced before this release store; the
    // acceptor's acquire load pairs with it for least-loaded routing.
    // [publishes: NET_SHED_FLAG]
    overloaded_.store(shed_this_iter_, std::memory_order_release);
  }

  void shutdown() {
    drain_inbox(/*stopping=*/true);  // close anything adopted post-stop
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, c] : conns_) {
      (void)c;
      ids.push_back(id);
    }
    for (const std::uint64_t id : ids) {
      close_conn(id, CloseReason::kShutdown);
    }
    testkit::chaos_point("net.shutdown");
    obs::trace::emit(obs::trace::EventId::kNetShutdown, index_,
                     stats_.served.load(std::memory_order_relaxed));
    open_conns_.store(0, std::memory_order_relaxed);
    // Publishes the final stats to whoever joins the shard thread.
    drained_.store(true, std::memory_order_release);  // [publishes: NET_DRAIN]
  }

  ServeMap<Map> map_;
  ShardConfig cfg_;
  std::size_t index_;
  const std::atomic<bool>& stop_;

  Fd epoll_;
  Fd event_;
  bool ok_ = false;

  std::mutex inbox_mu_;
  std::vector<std::pair<int, std::uint64_t>> inbox_;

  std::unordered_map<std::uint64_t, Conn> conns_;
  std::deque<Pending> queue_;
  bool shed_this_iter_ = false;

  ShardStats stats_;
  PhaseLatency phase_;             // shard-thread-only; read after NET_DRAIN
  obs::IntervalDiffer differ_;     // per-shard kStats pull state
  std::atomic<std::size_t> open_conns_{0};
  std::atomic<bool> overloaded_{false};
  std::atomic<bool> drained_{false};
};

}  // namespace cachetrie::net
