// client.hpp — the serving layer's client library: a pipelined loopback
// connection with deadline stamping and shed-aware retry.
//
// One Client = one TCP connection + one receiver thread. Senders (any
// thread) serialize requests under a small mutex and stamp send_ts_us /
// deadline_us (proto.hpp's deadline time base); the receiver thread parses
// replies and publishes each into a slot table indexed by request id. The
// publication is the NET_REPLY_PUBLISH edge: payload fields are relaxed
// atomic stores sequenced before a release store of the request id into the
// slot's done-word; a waiter's acquire load of the done-word makes the
// payload visible. Slots recycle every kSlots requests — callers keep at
// most kSlots requests in flight (the sync API trivially does; the
// pipelined bench enforces its own window).
//
// Shed handling is where client and server cooperate on overload: a kShed
// reply means "not executed, try later", and call() retries it under
// jittered exponential backoff (retry_backoff_us) up to max_retries — the
// jitter half of the delay decorrelates colliding retries so a shed burst
// does not resynchronize into the next burst.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/proto.hpp"
#include "net/socket.hpp"

namespace cachetrie::net {

/// Deterministic jittered exponential backoff: attempt 0, 1, 2... yield
/// base, 2*base, 4*base... capped at cap_us; half the delay is fixed, half
/// scaled by the caller-supplied jitter word (so tests can pin it). Pure —
/// unit-tested in net_proto_test.
inline std::uint64_t retry_backoff_us(std::size_t attempt,
                                      std::uint64_t base_us,
                                      std::uint64_t cap_us,
                                      std::uint64_t jitter_word) noexcept {
  if (base_us == 0) return 0;
  const std::size_t shift = attempt < 20 ? attempt : 20;
  std::uint64_t full = base_us << shift;
  if (full > cap_us || full < base_us) full = cap_us;  // cap + overflow guard
  const std::uint64_t half = full / 2;
  return half + (half > 0 ? jitter_word % half : 0);
}

struct ClientConfig {
  std::uint32_t deadline_us = 0;  // stamped on every request; 0 = none
  std::uint64_t op_timeout_us = 2'000'000;  // client-side wait bound
  std::size_t max_retries = 6;    // kShed retry attempts in call()
  std::uint64_t retry_base_us = 200;
  std::uint64_t retry_cap_us = 50'000;
  std::uint64_t seed = 0x5eed;    // jitter stream
};

class Client {
 public:
  static constexpr std::size_t kSlotBits = 10;
  static constexpr std::size_t kSlots = 1u << kSlotBits;  // in-flight window

  struct Result {
    proto::Status status = proto::Status::kClosed;
    std::uint64_t value = 0;
    std::uint16_t flags = 0;
    std::uint32_t queue_us = 0;

    bool ok() const noexcept { return status == proto::Status::kOk; }
  };

  explicit Client(std::uint16_t port, ClientConfig cfg = {})
      : cfg_(cfg), rng_(cfg.seed | 1), slots_(kSlots) {
    fd_ = connect_loopback(port);
    if (!fd_.valid()) return;
    receiver_ = std::thread([this] { receive_loop(); });
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  ~Client() { close(); }

  bool ok() const noexcept { return fd_.valid(); }

  /// Severs the connection and joins the receiver. Waiters unblock with
  /// kClosed.
  void close() {
    if (fd_.valid()) {
      ::shutdown(fd_.get(), SHUT_RDWR);
    }
    if (receiver_.joinable()) receiver_.join();
    fd_.reset();
  }

  // --- sync API (retries sheds) --------------------------------------------

  Result get(std::uint64_t key) { return call(proto::Op::kGet, key, 0); }
  Result put(std::uint64_t key, std::uint64_t value) {
    return call(proto::Op::kPut, key, value);
  }
  Result remove(std::uint64_t key) {
    return call(proto::Op::kRemove, key, 0);
  }
  Result remove_if_equals(std::uint64_t key, std::uint64_t expected) {
    return call(proto::Op::kRemoveIfEquals, key, expected);
  }
  Result ping(std::uint64_t token = 0) {
    return call(proto::Op::kPing, 0, token);
  }

  // --- introspection API (DESIGN.md §4) -------------------------------------

  /// A kStats reply: the server-side metrics snapshot plus the serving
  /// shard's interval delta, as the JSON the wire carried.
  struct StatsResult {
    proto::Status status = proto::Status::kClosed;
    std::uint16_t flags = 0;
    std::string json;

    bool ok() const noexcept { return status == proto::Status::kOk; }
  };

  /// Pulls a live stats snapshot. A kStats request rides the same admission
  /// queue as data ops, so it can be shed under overload — retried with the
  /// same jittered backoff as call().
  StatsResult stats() {
    for (std::size_t attempt = 0;; ++attempt) {
      std::uint64_t id = 0;
      if (!send(proto::Op::kStats, 0, 0, &id, cfg_.deadline_us)) {
        return StatsResult{proto::Status::kSendFailed, 0, {}};
      }
      const Result r = wait(id);
      StatsResult out;
      out.status = r.status;
      out.flags = r.flags;
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        auto it = stats_payloads_.find(id);
        if (it != stats_payloads_.end()) {
          out.json = std::move(it->second);
          stats_payloads_.erase(it);
        }
      }
      if (r.status != proto::Status::kShed || attempt >= cfg_.max_retries) {
        return out;
      }
      const std::uint64_t delay = retry_backoff_us(
          attempt, cfg_.retry_base_us, cfg_.retry_cap_us, next_jitter());
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
    }
  }

  /// Flips the server's flight recorder or triggers a dump (proto::TraceCtl).
  /// The reply's value echoes the resulting recorder state (0/1), or for
  /// kDump whether a dump file was written.
  Result trace_ctl(proto::TraceCtl action) {
    return call(proto::Op::kTraceCtl, 0, static_cast<std::uint64_t>(action));
  }

  /// One operation, retried under jittered exponential backoff while the
  /// server sheds it. Every retry is a fresh request id (the shed reply
  /// already consumed the old one).
  Result call(proto::Op op, std::uint64_t key, std::uint64_t value) {
    for (std::size_t attempt = 0;; ++attempt) {
      std::uint64_t id = 0;
      if (!send(op, key, value, &id, cfg_.deadline_us)) {
        return Result{proto::Status::kSendFailed, 0, 0, 0};
      }
      const Result r = wait(id);
      if (r.status != proto::Status::kShed || attempt >= cfg_.max_retries) {
        return r;
      }
      const std::uint64_t delay = retry_backoff_us(
          attempt, cfg_.retry_base_us, cfg_.retry_cap_us, next_jitter());
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
    }
  }

  // --- pipelined API (the bench's open-loop sender) -------------------------

  /// Fire one request without waiting. The caller must keep fewer than
  /// kSlots requests outstanding and eventually wait()/poll() each id.
  bool send(proto::Op op, std::uint64_t key, std::uint64_t value,
            std::uint64_t* id_out, std::uint32_t deadline_us) {
    proto::RequestFrame req;
    req.op = static_cast<std::uint8_t>(op);
    req.key = key;
    req.value = value;
    req.send_ts_us = proto::now_us();
    req.deadline_us = deadline_us;
    std::vector<unsigned char> wire;
    wire.reserve(proto::kRequestWire);
    std::lock_guard<std::mutex> lk(send_mu_);
    req.request_id = next_id_++;
    proto::append_frame(wire, req);
    if (!fd_.valid() || !write_all(fd_.get(), wire.data(), wire.size())) {
      return false;
    }
    *id_out = req.request_id;
    return true;
  }

  /// Non-blocking check: true once the reply for `id` landed.
  bool poll(std::uint64_t id, Result* out) {
    Slot& s = slot(id);
    // [acquires: NET_REPLY_PUBLISH]
    if (s.done.load(std::memory_order_acquire) != id) return false;
    out->status = static_cast<proto::Status>(
        s.status.load(std::memory_order_relaxed));
    out->value = s.value.load(std::memory_order_relaxed);
    out->flags = s.flags.load(std::memory_order_relaxed);
    out->queue_us = s.queue_us.load(std::memory_order_relaxed);
    return true;
  }

  /// Blocks (bounded by op_timeout_us) until the reply for `id` lands.
  Result wait(std::uint64_t id) {
    const std::uint64_t deadline = proto::now_us() + cfg_.op_timeout_us;
    Result r;
    std::size_t spins = 0;
    while (!poll(id, &r)) {
      if (closed_.load(std::memory_order_acquire)) {
        return Result{proto::Status::kClosed, 0, 0, 0};
      }
      if (proto::now_us() > deadline) {
        return Result{proto::Status::kTimeout, 0, 0, 0};
      }
      if (++spins > 64) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    return r;
  }

  /// True once the server (or close()) severed the connection.
  bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> done{0};  // NET_REPLY_PUBLISH done-word
    std::atomic<std::uint8_t> status{0};
    std::atomic<std::uint16_t> flags{0};
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint32_t> queue_us{0};
  };

  Slot& slot(std::uint64_t id) noexcept {
    return slots_[id & (kSlots - 1)];
  }

  std::uint64_t next_jitter() noexcept {  // xorshift64, sender-local
    std::uint64_t x = rng_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng_ = x;
    return x;
  }

  void receive_loop() {
    std::vector<unsigned char> buf;
    unsigned char chunk[16 * 1024];
    bool proto_error = false;
    while (!proto_error) {
      const long r = read_some(fd_.get(), chunk, sizeof(chunk));
      if (r == -1) continue;  // blocking socket: only under SO_RCVTIMEO
      if (r <= 0) break;      // EOF or hard error
      buf.insert(buf.end(), chunk, chunk + r);
      std::size_t off = 0;
      while (true) {
        proto::ReplyFrame rep;
        proto::StatsReplyHeader stats;
        const unsigned char* payload = nullptr;
        bool is_stats = false;
        std::size_t consumed = 0;
        const auto pr = proto::parse_reply_stream(
            buf.data() + off, buf.size() - off, &rep, &stats, &payload,
            &is_stats, &consumed);
        if (pr == proto::ParseResult::kNeedMore) break;
        if (pr == proto::ParseResult::kProtocolError) {
          // Framing is lost — no later byte can be trusted. Sever the
          // connection (waiters unblock with kClosed) instead of scanning
          // a corrupt stream forever.
          ::shutdown(fd_.get(), SHUT_RDWR);
          proto_error = true;
          break;
        }
        off += consumed;
        if (is_stats) {
          // Payload lands in the side table before the done-word release
          // below, so a stats() waiter that observes done also sees it.
          std::lock_guard<std::mutex> lk(stats_mu_);
          stats_payloads_[stats.request_id].assign(
              reinterpret_cast<const char*>(payload), stats.payload_len);
        }
        const std::uint64_t req_id =
            is_stats ? stats.request_id : rep.request_id;
        Slot& s = slot(req_id);
        s.status.store(is_stats ? stats.status : rep.status,
                       std::memory_order_relaxed);
        s.flags.store(is_stats ? stats.flags : rep.flags,
                      std::memory_order_relaxed);
        s.value.store(is_stats ? 0 : rep.value, std::memory_order_relaxed);
        s.queue_us.store(is_stats ? 0 : rep.queue_us,
                         std::memory_order_relaxed);
        // Publishes the relaxed payload stores above to poll()'s acquire.
        // [publishes: NET_REPLY_PUBLISH]
        s.done.store(req_id, std::memory_order_release);
      }
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
    }
    closed_.store(true, std::memory_order_release);
  }

  ClientConfig cfg_;
  Fd fd_;
  std::uint64_t rng_;
  std::mutex send_mu_;
  std::uint64_t next_id_ = 1;
  std::vector<Slot> slots_;
  std::thread receiver_;
  std::atomic<bool> closed_{false};
  // Variable-length stats payloads, keyed by request id: the Slot table
  // carries only fixed fields, so the JSON rides on the side. stats()
  // erases its entry after wait(); an entry whose waiter timed out first
  // lingers until a later stats() reuses the id's slot — bounded by the
  // number of abandoned stats calls, which the sync API keeps at zero.
  std::mutex stats_mu_;
  std::unordered_map<std::uint64_t, std::string> stats_payloads_;
};

}  // namespace cachetrie::net
