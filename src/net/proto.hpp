// proto.hpp — the serving layer's length-prefixed binary wire protocol.
//
// One frame = a u32 byte length followed by a fixed-size body. Requests
// carry (op, key, value, deadline); replies carry (status, value, flags).
// Keys and values are u64, matching the map instantiations every bench in
// this repo serves — the protocol's job is to put the four maps behind real
// sockets, not to be a general serialization format (DESIGN.md §4).
//
// Deadline semantics: `send_ts_us` is the client's steady-clock stamp at
// send time and `deadline_us` the budget measured from it, so a request
// that sat in a kernel socket buffer behind a stalled shard is *already
// expired* when the shard finally parses it — queueing delay counts
// against the budget, the same honesty rule the open-loop load generator
// applies to latency (coordinated omission is measured, not hidden).
// Steady clocks are system-wide on one host, which is the deployment this
// repo measures; a cross-host deployment would re-stamp budgets at ingress
// (see DESIGN.md §4). send_ts_us == 0 means "stamp on admission" and
// deadline_us == 0 means "no deadline".
//
// Byte order is host order (x86-64 little-endian, the only platform this
// repo targets — nodes_layout_test pins the same assumption).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

namespace cachetrie::net::proto {

inline constexpr std::uint32_t kRequestMagic = 0x31525443u;  // "CTR1"
inline constexpr std::uint32_t kReplyMagic = 0x31504443u;    // "CDP1"

enum class Op : std::uint8_t {
  kGet = 1,
  kPut = 2,
  kRemove = 3,
  kRemoveIfEquals = 4,
  kPing = 5,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,        // GET/REMOVE on an absent key (still a served reply)
  kShed = 2,            // admission control refused the request; retryable
  kDeadlineExceeded = 3,  // budget expired before execution; NOT executed
  kBadRequest = 4,      // unknown op — the connection survives

  // Client-side synthetic statuses; never on the wire.
  kTimeout = 240,       // no reply within the client's op timeout
  kClosed = 241,        // connection closed/reset under the operation
  kSendFailed = 242,    // could not write the request
};

/// Reply flags: advisory bits clients use to modulate behaviour.
inline constexpr std::uint16_t kFlagDegraded = 1u << 0;  // map near ceiling
inline constexpr std::uint16_t kFlagDraining = 1u << 1;  // server draining

struct RequestFrame {
  std::uint32_t magic = kRequestMagic;
  std::uint8_t op = 0;
  std::uint8_t reserved8 = 0;
  std::uint16_t reserved16 = 0;
  std::uint64_t request_id = 0;
  std::uint64_t key = 0;
  std::uint64_t value = 0;    // PUT: stored value; REMOVE_IF_EQUALS: expected
  std::uint64_t send_ts_us = 0;
  std::uint32_t deadline_us = 0;
  std::uint32_t reserved32 = 0;
};

struct ReplyFrame {
  std::uint32_t magic = kReplyMagic;
  std::uint8_t status = 0;
  std::uint8_t op = 0;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint64_t value = 0;
  std::uint32_t queue_us = 0;  // admission-to-execution delay, for clients
  std::uint32_t reserved32 = 0;
};

static_assert(sizeof(RequestFrame) == 48 && sizeof(ReplyFrame) == 32,
              "wire frames must be padding-free");
static_assert(std::is_trivially_copyable_v<RequestFrame> &&
              std::is_trivially_copyable_v<ReplyFrame>);

/// Length prefix + largest body this protocol version defines. A length
/// outside [kMinBody, kMaxBody] is a protocol error and closes the
/// connection — a garbage prefix must never make the server buffer "one
/// 4 GiB frame".
inline constexpr std::size_t kLenPrefix = sizeof(std::uint32_t);
inline constexpr std::size_t kMinBody = sizeof(ReplyFrame);
inline constexpr std::size_t kMaxBody = sizeof(RequestFrame);
inline constexpr std::size_t kRequestWire = kLenPrefix + sizeof(RequestFrame);
inline constexpr std::size_t kReplyWire = kLenPrefix + sizeof(ReplyFrame);

/// Microseconds on the host-wide steady clock (the deadline time base).
inline std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

template <typename Frame>
inline void append_frame(std::vector<unsigned char>& out, const Frame& f) {
  const std::uint32_t len = sizeof(Frame);
  const std::size_t base = out.size();
  out.resize(base + kLenPrefix + sizeof(Frame));
  std::memcpy(out.data() + base, &len, kLenPrefix);
  std::memcpy(out.data() + base + kLenPrefix, &f, sizeof(Frame));
}

/// Outcome of pulling one frame out of a byte stream.
enum class ParseResult : std::uint8_t {
  kFrame,       // *out holds a frame; *consumed bytes were eaten
  kNeedMore,    // the buffer holds a partial frame; read more bytes
  kProtocolError,  // bad length or magic — close the connection
};

/// Parses one request frame from `data[0..size)`. On kFrame, `*consumed`
/// is the total wire bytes of the frame (prefix + body).
inline ParseResult parse_request(const unsigned char* data, std::size_t size,
                                 RequestFrame* out,
                                 std::size_t* consumed) noexcept {
  if (size < kLenPrefix) return ParseResult::kNeedMore;
  std::uint32_t len = 0;
  std::memcpy(&len, data, kLenPrefix);
  if (len != sizeof(RequestFrame)) return ParseResult::kProtocolError;
  if (size < kLenPrefix + len) return ParseResult::kNeedMore;
  std::memcpy(out, data + kLenPrefix, sizeof(RequestFrame));
  if (out->magic != kRequestMagic) return ParseResult::kProtocolError;
  *consumed = kLenPrefix + len;
  return ParseResult::kFrame;
}

/// Parses one reply frame (the client side of the same stream discipline).
inline ParseResult parse_reply(const unsigned char* data, std::size_t size,
                               ReplyFrame* out,
                               std::size_t* consumed) noexcept {
  if (size < kLenPrefix) return ParseResult::kNeedMore;
  std::uint32_t len = 0;
  std::memcpy(&len, data, kLenPrefix);
  if (len != sizeof(ReplyFrame)) return ParseResult::kProtocolError;
  if (size < kLenPrefix + len) return ParseResult::kNeedMore;
  std::memcpy(out, data + kLenPrefix, sizeof(ReplyFrame));
  if (out->magic != kReplyMagic) return ParseResult::kProtocolError;
  *consumed = kLenPrefix + len;
  return ParseResult::kFrame;
}

inline const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kShed: return "shed";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kBadRequest: return "bad_request";
    case Status::kTimeout: return "timeout";
    case Status::kClosed: return "closed";
    case Status::kSendFailed: return "send_failed";
  }
  return "unknown";
}

inline const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kGet: return "get";
    case Op::kPut: return "put";
    case Op::kRemove: return "remove";
    case Op::kRemoveIfEquals: return "remove_if_equals";
    case Op::kPing: return "ping";
  }
  return "unknown";
}

}  // namespace cachetrie::net::proto
