// proto.hpp — the serving layer's length-prefixed binary wire protocol.
//
// One frame = a u32 byte length followed by a fixed-size body. Requests
// carry (op, key, value, deadline); replies carry (status, value, flags).
// Keys and values are u64, matching the map instantiations every bench in
// this repo serves — the protocol's job is to put the four maps behind real
// sockets, not to be a general serialization format (DESIGN.md §4).
//
// Deadline semantics: `send_ts_us` is the client's steady-clock stamp at
// send time and `deadline_us` the budget measured from it, so a request
// that sat in a kernel socket buffer behind a stalled shard is *already
// expired* when the shard finally parses it — queueing delay counts
// against the budget, the same honesty rule the open-loop load generator
// applies to latency (coordinated omission is measured, not hidden).
// Steady clocks are system-wide on one host, which is the deployment this
// repo measures; a cross-host deployment would re-stamp budgets at ingress
// (see DESIGN.md §4). send_ts_us == 0 means "stamp on admission" and
// deadline_us == 0 means "no deadline".
//
// Byte order is host order (x86-64 little-endian, the only platform this
// repo targets — nodes_layout_test pins the same assumption).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>
#include <vector>

namespace cachetrie::net::proto {

inline constexpr std::uint32_t kRequestMagic = 0x31525443u;  // "CTR1"
inline constexpr std::uint32_t kReplyMagic = 0x31504443u;    // "CDP1"
inline constexpr std::uint32_t kStatsMagic = 0x32504443u;    // "CDP2"

enum class Op : std::uint8_t {
  kGet = 1,
  kPut = 2,
  kRemove = 3,
  kRemoveIfEquals = 4,
  kPing = 5,

  // Introspection ops (DESIGN.md §4). Requests are ordinary fixed frames;
  // they ride the same admission queue as data ops so a stats poll sees the
  // server exactly as a data request would (it can be shed, it can expire).
  kStats = 6,     // reply is a variable-length StatsReplyHeader + JSON
  kTraceCtl = 7,  // request.value = TraceCtl action; fixed reply
};

/// kTraceCtl actions (carried in RequestFrame::value). The reply's value
/// echoes the resulting recorder state (0/1) for kDisable/kEnable, and
/// 1/0 for kDump depending on whether a dump file was written.
enum class TraceCtl : std::uint64_t {
  kDisable = 0,  // trace::enable(false)
  kEnable = 1,   // trace::enable(true)
  kDump = 2,     // drain rings to TRACE_trace_ctl.json (trace_export.hpp)
};

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,        // GET/REMOVE on an absent key (still a served reply)
  kShed = 2,            // admission control refused the request; retryable
  kDeadlineExceeded = 3,  // budget expired before execution; NOT executed
  kBadRequest = 4,      // unknown op — the connection survives

  // Client-side synthetic statuses; never on the wire.
  kTimeout = 240,       // no reply within the client's op timeout
  kClosed = 241,        // connection closed/reset under the operation
  kSendFailed = 242,    // could not write the request
};

/// Reply flags: advisory bits clients use to modulate behaviour.
inline constexpr std::uint16_t kFlagDegraded = 1u << 0;  // map near ceiling
inline constexpr std::uint16_t kFlagDraining = 1u << 1;  // server draining

struct RequestFrame {
  std::uint32_t magic = kRequestMagic;
  std::uint8_t op = 0;
  std::uint8_t reserved8 = 0;
  std::uint16_t reserved16 = 0;
  std::uint64_t request_id = 0;
  std::uint64_t key = 0;
  std::uint64_t value = 0;    // PUT: stored value; REMOVE_IF_EQUALS: expected
  std::uint64_t send_ts_us = 0;
  std::uint32_t deadline_us = 0;
  std::uint32_t reserved32 = 0;
};

struct ReplyFrame {
  std::uint32_t magic = kReplyMagic;
  std::uint8_t status = 0;
  std::uint8_t op = 0;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint64_t value = 0;
  std::uint32_t queue_us = 0;  // admission-to-execution delay, for clients
  std::uint32_t reserved32 = 0;
};

/// The one variable-length frame in the protocol: the reply to a kStats
/// request. A fixed header (kStatsMagic disambiguates it from ReplyFrame —
/// frames are told apart by magic, not by length) followed by payload_len
/// bytes of UTF-8 JSON: the metrics registry snapshot plus the shard's
/// interval delta (obs/interval.hpp). Capped at kMaxStatsPayload so the
/// no-4-GiB-buffer rule survives the variable-length extension: a length
/// prefix over the cap is rejected before any body byte is buffered.
struct StatsReplyHeader {
  std::uint32_t magic = kStatsMagic;
  std::uint8_t status = 0;
  std::uint8_t op = static_cast<std::uint8_t>(Op::kStats);
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;  // JSON bytes following this header
  std::uint32_t reserved32 = 0;
};

static_assert(sizeof(RequestFrame) == 48 && sizeof(ReplyFrame) == 32 &&
                  sizeof(StatsReplyHeader) == 24,
              "wire frames must be padding-free");
static_assert(std::is_trivially_copyable_v<RequestFrame> &&
              std::is_trivially_copyable_v<ReplyFrame> &&
              std::is_trivially_copyable_v<StatsReplyHeader>);

/// Length prefix + the body bounds this protocol version defines. A length
/// outside the valid range is a protocol error and closes the connection —
/// a garbage prefix must never make the server buffer "one 4 GiB frame".
/// Requests stay fixed-size; the reply stream's upper bound is the stats
/// header plus its payload cap.
inline constexpr std::size_t kLenPrefix = sizeof(std::uint32_t);
inline constexpr std::size_t kMinBody = sizeof(StatsReplyHeader);
inline constexpr std::size_t kMaxBody = sizeof(RequestFrame);
inline constexpr std::size_t kMaxStatsPayload = 1u << 20;  // 1 MiB of JSON
inline constexpr std::size_t kMaxReplyBody =
    sizeof(StatsReplyHeader) + kMaxStatsPayload;
inline constexpr std::size_t kRequestWire = kLenPrefix + sizeof(RequestFrame);
inline constexpr std::size_t kReplyWire = kLenPrefix + sizeof(ReplyFrame);

/// Microseconds on the host-wide steady clock (the deadline time base).
inline std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

template <typename Frame>
inline void append_frame(std::vector<unsigned char>& out, const Frame& f) {
  const std::uint32_t len = sizeof(Frame);
  const std::size_t base = out.size();
  out.resize(base + kLenPrefix + sizeof(Frame));
  std::memcpy(out.data() + base, &len, kLenPrefix);
  std::memcpy(out.data() + base + kLenPrefix, &f, sizeof(Frame));
}

/// Outcome of pulling one frame out of a byte stream.
enum class ParseResult : std::uint8_t {
  kFrame,       // *out holds a frame; *consumed bytes were eaten
  kNeedMore,    // the buffer holds a partial frame; read more bytes
  kProtocolError,  // bad length or magic — close the connection
};

/// Parses one request frame from `data[0..size)`. On kFrame, `*consumed`
/// is the total wire bytes of the frame (prefix + body).
inline ParseResult parse_request(const unsigned char* data, std::size_t size,
                                 RequestFrame* out,
                                 std::size_t* consumed) noexcept {
  if (size < kLenPrefix) return ParseResult::kNeedMore;
  std::uint32_t len = 0;
  std::memcpy(&len, data, kLenPrefix);
  if (len != sizeof(RequestFrame)) return ParseResult::kProtocolError;
  if (size < kLenPrefix + len) return ParseResult::kNeedMore;
  std::memcpy(out, data + kLenPrefix, sizeof(RequestFrame));
  if (out->magic != kRequestMagic) return ParseResult::kProtocolError;
  *consumed = kLenPrefix + len;
  return ParseResult::kFrame;
}

/// Parses one reply frame (the client side of the same stream discipline).
inline ParseResult parse_reply(const unsigned char* data, std::size_t size,
                               ReplyFrame* out,
                               std::size_t* consumed) noexcept {
  if (size < kLenPrefix) return ParseResult::kNeedMore;
  std::uint32_t len = 0;
  std::memcpy(&len, data, kLenPrefix);
  if (len != sizeof(ReplyFrame)) return ParseResult::kProtocolError;
  if (size < kLenPrefix + len) return ParseResult::kNeedMore;
  std::memcpy(out, data + kLenPrefix, sizeof(ReplyFrame));
  if (out->magic != kReplyMagic) return ParseResult::kProtocolError;
  *consumed = kLenPrefix + len;
  return ParseResult::kFrame;
}

/// Serializes one stats reply: length prefix, header, then the JSON bytes.
/// The caller guarantees payload.size() <= kMaxStatsPayload (the shard
/// downgrades an oversized snapshot to a fixed kBadRequest reply instead).
inline void append_stats_frame(std::vector<unsigned char>& out,
                               StatsReplyHeader header,
                               std::string_view payload) {
  header.magic = kStatsMagic;
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t len =
      static_cast<std::uint32_t>(sizeof(StatsReplyHeader) + payload.size());
  const std::size_t base = out.size();
  out.resize(base + kLenPrefix + len);
  std::memcpy(out.data() + base, &len, kLenPrefix);
  std::memcpy(out.data() + base + kLenPrefix, &header,
              sizeof(StatsReplyHeader));
  std::memcpy(out.data() + base + kLenPrefix + sizeof(StatsReplyHeader),
              payload.data(), payload.size());
}

/// Parses one frame off the *reply* stream, which carries two frame kinds:
/// fixed ReplyFrames and variable-length stats replies. Dispatch is by
/// magic (peeked as soon as the first four body bytes arrive, so garbage
/// fails fast); lengths are validated against each kind's contract before
/// any further buffering. On kFrame exactly one of the two outputs is
/// filled: `*is_stats` says which, and for stats frames `*payload_out`
/// points at the JSON bytes inside `data` (valid until the caller consumes
/// the buffer; `stats_out->payload_len` is its length).
inline ParseResult parse_reply_stream(const unsigned char* data,
                                      std::size_t size, ReplyFrame* out,
                                      StatsReplyHeader* stats_out,
                                      const unsigned char** payload_out,
                                      bool* is_stats,
                                      std::size_t* consumed) noexcept {
  if (size < kLenPrefix) return ParseResult::kNeedMore;
  std::uint32_t len = 0;
  std::memcpy(&len, data, kLenPrefix);
  // The oversize cap fires on the prefix alone — before the peer can make
  // us buffer the body it announces.
  if (len < kMinBody || len > kMaxReplyBody) return ParseResult::kProtocolError;
  if (size >= kLenPrefix + sizeof(std::uint32_t)) {
    std::uint32_t magic = 0;
    std::memcpy(&magic, data + kLenPrefix, sizeof(magic));
    if (magic == kReplyMagic) {
      if (len != sizeof(ReplyFrame)) return ParseResult::kProtocolError;
    } else if (magic == kStatsMagic) {
      if (len < sizeof(StatsReplyHeader)) return ParseResult::kProtocolError;
    } else {
      return ParseResult::kProtocolError;
    }
  }
  if (size < kLenPrefix + len) return ParseResult::kNeedMore;
  std::uint32_t magic = 0;
  std::memcpy(&magic, data + kLenPrefix, sizeof(magic));
  if (magic == kReplyMagic) {
    std::memcpy(out, data + kLenPrefix, sizeof(ReplyFrame));
    *is_stats = false;
  } else {
    std::memcpy(stats_out, data + kLenPrefix, sizeof(StatsReplyHeader));
    // A header whose payload_len disagrees with the frame length is a
    // truncated (or padded) frame — reject it rather than mis-split the
    // stream.
    if (sizeof(StatsReplyHeader) + stats_out->payload_len != len) {
      return ParseResult::kProtocolError;
    }
    *payload_out = data + kLenPrefix + sizeof(StatsReplyHeader);
    *is_stats = true;
  }
  *consumed = kLenPrefix + len;
  return ParseResult::kFrame;
}

inline const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kShed: return "shed";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kBadRequest: return "bad_request";
    case Status::kTimeout: return "timeout";
    case Status::kClosed: return "closed";
    case Status::kSendFailed: return "send_failed";
  }
  return "unknown";
}

inline const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kGet: return "get";
    case Op::kPut: return "put";
    case Op::kRemove: return "remove";
    case Op::kRemoveIfEquals: return "remove_if_equals";
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kTraceCtl: return "trace_ctl";
  }
  return "unknown";
}

}  // namespace cachetrie::net::proto
