// ctrie.hpp — the Ctrie baseline: a lock-free concurrent hash trie with
// I-nodes (Prokopec, Bagwell, Odersky, "Lock-Free Resizeable Concurrent
// Tries", LCPC 2011; structure of Prokopec et al., PPoPP 2012, minus the
// snapshot/GCAS machinery, which the cache-trie paper's evaluation never
// exercises).
//
// This is the data structure the cache-trie improves upon: every inner node
// is reached through an indirection node (INode) whose single mutable field
// `main` is the unit of atomic replacement. The INode indirection is what
// doubles the pointer hops per level — the effect Figs. 10/13 of the
// cache-trie paper measure.
//
//   * 32-way branching (5 hash bits per level), bitmap-compressed CNode
//     arrays sized exactly to their population.
//   * Removal entombs single-SNode CNodes into TNodes and contracts paths
//     (clean / cleanParent), keeping the trie compact.
//   * Full-hash collisions go to immutable LNode chains.
//
// Memory reclamation mirrors the cache-trie: operations run under a
// Reclaimer guard and the winner of each replacing CAS retires exactly the
// nodes that became unreachable (the replaced container, never the shared
// branches).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "mr/epoch.hpp"
#include "obs/inventory.hpp"
#include "obs/trace.hpp"
#include "testkit/chaos.hpp"
#include "util/bits.hpp"
#include "util/hashing.hpp"

namespace cachetrie::ctrie {

namespace detail {

enum class Kind : std::uint8_t { kSNode, kINode, kCNode, kTNode, kLNode };

struct Base {
  Kind kind;
};

/// Leaf: immutable key-value pair.
template <typename K, typename V>
struct SNode : Base {
  std::uint64_t hash;
  K key;
  V value;

  static SNode* make(std::uint64_t hash, const K& key, const V& value) {
    return new SNode{{Kind::kSNode}, hash, key, value};
  }
};

/// Tombstone: a CNode that shrank to one SNode is replaced by a TNode so
/// that readers passing through know to contract the path.
template <typename K, typename V>
struct TNode : Base {
  SNode<K, V>* sn;

  static TNode* make(SNode<K, V>* sn) { return new TNode{{Kind::kTNode}, sn}; }
};

/// Collision chain for fully equal 64-bit hashes. Immutable; >= 2 pairs.
template <typename K, typename V>
struct LNode : Base {
  std::uint64_t hash;
  LNode* next;
  K key;
  V value;

  static LNode* make(std::uint64_t hash, const K& key, const V& value,
                     LNode* next) {
    return new LNode{{Kind::kLNode}, hash, next, key, value};
  }
};

/// Indirection node: the only mutable cell of the structure.
struct INode : Base {
  std::atomic<Base*> main;

  static INode* make(Base* main_init) {
    auto* in = new INode{{Kind::kINode}, {}};
    in->main.store(main_init, std::memory_order_relaxed);
    return in;
  }
};

/// Bitmap-compressed inner node: branch i (0..31) is present iff bit i of
/// bmp is set; present branches pack densely into the trailing array.
struct CNode : Base {
  std::uint32_t bmp;
  std::uint32_t len;

  static std::size_t header_size() noexcept {
    return (sizeof(CNode) + alignof(Base*) - 1) & ~(alignof(Base*) - 1);
  }

  Base** array() noexcept {
    return reinterpret_cast<Base**>(reinterpret_cast<char*>(this) +
                                    header_size());
  }
  Base* const* array() const noexcept {
    return reinterpret_cast<Base* const*>(
        reinterpret_cast<const char*>(this) + header_size());
  }

  static std::size_t alloc_size(std::uint32_t len) noexcept {
    return header_size() + len * sizeof(Base*);
  }

  static CNode* make(std::uint32_t bmp, std::uint32_t len) {
    void* raw = ::operator new(alloc_size(len));
    auto* cn = new (raw) CNode{};
    cn->kind = Kind::kCNode;
    cn->bmp = bmp;
    cn->len = len;
    return cn;
  }

  static void destroy(CNode* cn) noexcept { ::operator delete(cn); }

  std::uint32_t pos_of(std::uint32_t flag) const noexcept {
    return static_cast<std::uint32_t>(util::popcount(bmp & (flag - 1)));
  }

  /// Copy with branch at `pos` replaced.
  CNode* updated(std::uint32_t pos, Base* branch) const {
    CNode* cn = make(bmp, len);
    for (std::uint32_t i = 0; i < len; ++i) cn->array()[i] = array()[i];
    cn->array()[pos] = branch;
    return cn;
  }

  /// Copy with a new branch inserted at the position of `flag`.
  CNode* inserted(std::uint32_t pos, std::uint32_t flag, Base* branch) const {
    CNode* cn = make(bmp | flag, len + 1);
    for (std::uint32_t i = 0; i < pos; ++i) cn->array()[i] = array()[i];
    cn->array()[pos] = branch;
    for (std::uint32_t i = pos; i < len; ++i) cn->array()[i + 1] = array()[i];
    return cn;
  }

  /// Copy with the branch at the position of `flag` removed.
  CNode* removed(std::uint32_t pos, std::uint32_t flag) const {
    CNode* cn = make(bmp & ~flag, len - 1);
    for (std::uint32_t i = 0; i < pos; ++i) cn->array()[i] = array()[i];
    for (std::uint32_t i = pos + 1; i < len; ++i) {
      cn->array()[i - 1] = array()[i];
    }
    return cn;
  }
};


}  // namespace detail

template <typename K, typename V, typename Hash = util::DefaultHash<K>,
          typename Reclaimer = mr::EpochReclaimer>
class Ctrie {
  using Base = detail::Base;
  using Kind = detail::Kind;
  using SNodeT = detail::SNode<K, V>;
  using TNodeT = detail::TNode<K, V>;
  using LNodeT = detail::LNode<K, V>;
  using INode = detail::INode;
  using CNode = detail::CNode;

  static constexpr std::uint32_t kW = 5;       // bits per level
  static constexpr std::uint32_t kBranch = 32; // 2^kW

 public:
  Ctrie() { root_ = INode::make(CNode::make(0, 0)); }

  Ctrie(const Ctrie&) = delete;
  Ctrie& operator=(const Ctrie&) = delete;

  ~Ctrie() {
    destroy_main(root_->main.load(std::memory_order_relaxed));
    delete root_;
  }

  /// Inserts or replaces. Returns true iff the key was new.
  bool insert(const K& key, const V& value) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    // Fault site: a victim parked here holds the guard with nothing else
    // done — the stall-tolerant reclaimer's worst case (see testkit/fault.hpp).
    testkit::chaos_point("ctrie.pinned");
    const std::uint64_t h = hasher_(key);
    while (true) {
      const Res r = iinsert(root_, key, value, h, 0, nullptr);
      if (r == Res::kNew) return true;
      if (r == Res::kReplaced) return false;
      assert(r == Res::kRestart);
    }
  }

  /// Inserts only if absent; true iff it inserted (API parity with the
  /// other maps in this repo and with scala TrieMap's putIfAbsent).
  bool put_if_absent(const K& key, const V& value) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("ctrie.pinned");
    const std::uint64_t h = hasher_(key);
    while (true) {
      const Res r =
          iinsert(root_, key, value, h, 0, nullptr, /*only_if_absent=*/true);
      if (r == Res::kNew) return true;
      if (r == Res::kReplaced) return false;  // key existed; untouched
      assert(r == Res::kRestart);
    }
  }

  std::optional<V> lookup(const K& key) const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("ctrie.pinned");
    const std::uint64_t h = hasher_(key);
    while (true) {
      std::optional<V> out;
      const Res r = ilookup(root_, key, h, 0, nullptr, &out);
      if (r == Res::kFound) return out;
      if (r == Res::kNotFound) return std::nullopt;
      assert(r == Res::kRestart);
    }
  }

  bool contains(const K& key) const { return lookup(key).has_value(); }

  std::optional<V> remove(const K& key) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("ctrie.pinned");
    const std::uint64_t h = hasher_(key);
    while (true) {
      std::optional<V> out;
      const Res r = iremove(root_, key, h, 0, nullptr, &out);
      if (r == Res::kFound) return out;
      if (r == Res::kNotFound) return std::nullopt;
      assert(r == Res::kRestart);
    }
  }

  std::size_t size() const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    std::size_t n = 0;
    auto count = [&](const K&, const V&) { ++n; };
    for_each_branch(root_, count);
    return n;
  }

  bool empty() const { return size() == 0; }

  template <typename F>
  void for_each(F&& fn) const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    for_each_branch(root_, fn);
  }

  std::size_t footprint_bytes() const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    return sizeof(*this) + branch_footprint(root_);
  }

  /// Quiescent invariant check (see CacheTrie::debug_validate).
  std::vector<std::string> debug_validate() const {
    std::vector<std::string> issues;
    validate_branch(root_, 0, 0, issues, true);
    return issues;
  }

 private:
  enum class Res : std::uint8_t {
    kNew,
    kReplaced,
    kFound,
    kNotFound,
    kRestart,
  };

  static std::uint32_t flag_of(std::uint64_t h, std::uint32_t lev) noexcept {
    return std::uint32_t{1} << ((h >> lev) & (kBranch - 1));
  }

  // --- lookup ---------------------------------------------------------------

  Res ilookup(INode* i, const K& key, std::uint64_t h, std::uint32_t lev,
              INode* parent, std::optional<V>* out) const {
    // [acquires: CTRIE_GCAS]
    Base* main = i->main.load(std::memory_order_acquire);
    switch (main->kind) {
      case Kind::kCNode: {
        auto* cn = static_cast<CNode*>(main);
        const std::uint32_t flag = flag_of(h, lev);
        if ((cn->bmp & flag) == 0) return Res::kNotFound;
        Base* branch = cn->array()[cn->pos_of(flag)];
        if (branch->kind == Kind::kINode) {
          return ilookup(static_cast<INode*>(branch), key, h, lev + kW, i,
                         out);
        }
        auto* sn = static_cast<SNodeT*>(branch);
        if (sn->hash == h && sn->key == key) {
          *out = sn->value;
          return Res::kFound;
        }
        return Res::kNotFound;
      }
      case Kind::kTNode:
        // A tombed path must be contracted before the search can proceed.
        clean(parent, lev - kW);
        return Res::kRestart;
      case Kind::kLNode: {
        for (auto* l = static_cast<LNodeT*>(main); l != nullptr;
             l = l->next) {
          if (l->hash == h && l->key == key) {
            *out = l->value;
            return Res::kFound;
          }
        }
        return Res::kNotFound;
      }
      default:
        assert(false && "invalid main node");
        return Res::kRestart;
    }
  }

  // --- insert ---------------------------------------------------------------

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  Res iinsert(INode* i, const K& key, const V& value, std::uint64_t h,
              std::uint32_t lev, INode* parent,
              bool only_if_absent = false) {
    Base* main = i->main.load(std::memory_order_acquire);
    switch (main->kind) {
      case Kind::kCNode: {
        auto* cn = static_cast<CNode*>(main);
        const std::uint32_t flag = flag_of(h, lev);
        const std::uint32_t pos = cn->pos_of(flag);
        if ((cn->bmp & flag) == 0) {
          CNode* ncn = cn->inserted(pos, flag, SNodeT::make(h, key, value));
          if (cas_main(i, cn, ncn)) return Res::kNew;
          destroy_cnode_and_fresh(ncn, cn);
          return Res::kRestart;
        }
        Base* branch = cn->array()[pos];
        if (branch->kind == Kind::kINode) {
          return iinsert(static_cast<INode*>(branch), key, value, h,
                         lev + kW, i, only_if_absent);
        }
        auto* sn = static_cast<SNodeT*>(branch);
        if (sn->hash == h && sn->key == key) {
          if (only_if_absent) return Res::kReplaced;  // present: no change
          SNodeT* nsn = SNodeT::make(h, key, value);
          CNode* ncn = cn->updated(pos, nsn);
          if (cas_main(i, cn, ncn)) {
            Reclaimer::template retire<SNodeT>(sn);
            return Res::kReplaced;
          }
          delete nsn;  // [delete: unpublished]
          CNode::destroy(ncn);
          return Res::kRestart;
        }
        // Distinct key: grow a deeper level under a fresh INode. With equal
        // full hashes branch_two builds an LNode chain that *copies* sn's
        // pair (chains have no SNodes), so the original sn is superseded
        // and must be retired; with distinct hashes sn is shared as-is.
        const bool sn_copied = sn->hash == h;
        Base* deeper = branch_two(sn, h, key, value, lev + kW);
        INode* nin = INode::make(deeper);
        CNode* ncn = cn->updated(pos, nin);
        if (cas_main(i, cn, ncn)) {
          if (sn_copied) Reclaimer::template retire<SNodeT>(sn);
          return Res::kNew;
        }
        destroy_branch_shallow(nin, sn);
        CNode::destroy(ncn);
        return Res::kRestart;
      }
      case Kind::kTNode:
        clean(parent, lev - kW);
        return Res::kRestart;
      case Kind::kLNode: {
        auto* ln = static_cast<LNodeT*>(main);
        if (ln->hash != h) {
          // Shares only a prefix with the chain: push the chain one level
          // deeper next to the new key.
          SNodeT* nsn = SNodeT::make(h, key, value);
          Base* grown = branch_lnode_apart(ln, nsn, lev);
          if (cas_main(i, ln, grown)) return Res::kNew;
          destroy_grown_sparing(grown, ln);
          delete nsn;  // [delete: unpublished]
          return Res::kRestart;
        }
        bool found = false;
        for (auto* l = ln; l != nullptr; l = l->next) {
          if (l->key == key) {
            found = true;
            break;
          }
        }
        if (found && only_if_absent) return Res::kReplaced;
        LNodeT* fresh = nullptr;
        for (auto* l = ln; l != nullptr; l = l->next) {
          if (l->key == key) continue;
          fresh = LNodeT::make(l->hash, l->key, l->value, fresh);
        }
        fresh = LNodeT::make(h, key, value, fresh);
        if (cas_main(i, ln, fresh)) {
          retire_chain(ln);
          return found ? Res::kReplaced : Res::kNew;
        }
        destroy_chain(fresh);
        return Res::kRestart;
      }
      default:
        assert(false && "invalid main node");
        return Res::kRestart;
    }
  }

  // --- remove ---------------------------------------------------------------

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  Res iremove(INode* i, const K& key, std::uint64_t h, std::uint32_t lev,
              INode* parent, std::optional<V>* out) {
    Base* main = i->main.load(std::memory_order_acquire);
    switch (main->kind) {
      case Kind::kCNode: {
        auto* cn = static_cast<CNode*>(main);
        const std::uint32_t flag = flag_of(h, lev);
        if ((cn->bmp & flag) == 0) return Res::kNotFound;
        const std::uint32_t pos = cn->pos_of(flag);
        Base* branch = cn->array()[pos];
        Res res;
        if (branch->kind == Kind::kINode) {
          res = iremove(static_cast<INode*>(branch), key, h, lev + kW, i,
                        out);
        } else {
          auto* sn = static_cast<SNodeT*>(branch);
          if (sn->hash != h || !(sn->key == key)) return Res::kNotFound;
          CNode* ncn = cn->removed(pos, flag);
          // When contraction entombs, the surviving branch is *copied* into
          // the tombstone; remember the shared original so the winner can
          // retire it (it stays reachable only through the retired cn).
          SNodeT* survivor = nullptr;
          if (lev > 0 && ncn->len == 1 &&
              ncn->array()[0]->kind == Kind::kSNode) {
            survivor = static_cast<SNodeT*>(ncn->array()[0]);
          }
          Base* contracted = to_contracted(ncn, lev);
          if (cas_main(i, cn, contracted)) {
            *out = sn->value;
            Reclaimer::template retire<SNodeT>(sn);
            if (contracted != ncn && survivor != nullptr) {
              Reclaimer::template retire<SNodeT>(survivor);
            }
            res = Res::kFound;
          } else {
            // to_contracted consumes ncn when it entombs; destroy whichever
            // unpublished object we are left holding.
            if (contracted != ncn) {
              // [delete: unpublished]
              delete static_cast<TNodeT*>(contracted)->sn;
              delete static_cast<TNodeT*>(contracted);
            } else {
              CNode::destroy(ncn);
            }
            return Res::kRestart;
          }
        }
        if (res == Res::kFound && parent != nullptr) {
          // If the removal left a tombstone, contract it into the parent.
          if (i->main.load(std::memory_order_acquire)->kind == Kind::kTNode) {
            clean_parent(parent, i, h, lev - kW);
          }
        }
        return res;
      }
      case Kind::kTNode:
        clean(parent, lev - kW);
        return Res::kRestart;
      case Kind::kLNode: {
        auto* ln = static_cast<LNodeT*>(main);
        if (ln->hash != h) return Res::kNotFound;
        bool found = false;
        std::size_t remaining = 0;
        for (auto* l = ln; l != nullptr; l = l->next) {
          if (l->key == key) {
            found = true;
            *out = l->value;
          } else {
            ++remaining;
          }
        }
        if (!found) return Res::kNotFound;
        Base* replacement;
        if (remaining == 1) {
          // Chain of one pair becomes a tombed SNode so the path contracts.
          SNodeT* only = nullptr;
          for (auto* l = ln; l != nullptr; l = l->next) {
            if (!(l->key == key)) only = SNodeT::make(l->hash, l->key, l->value);
          }
          replacement = TNodeT::make(only);
        } else {
          LNodeT* fresh = nullptr;
          for (auto* l = ln; l != nullptr; l = l->next) {
            if (l->key == key) continue;
            fresh = LNodeT::make(l->hash, l->key, l->value, fresh);
          }
          replacement = fresh;
        }
        if (cas_main(i, ln, replacement)) {
          retire_chain(ln);
          if (replacement->kind == Kind::kTNode && parent != nullptr) {
            clean_parent(parent, i, h, lev - kW);
          }
          return Res::kFound;
        }
        if (replacement->kind == Kind::kTNode) {
          // [delete: unpublished]
          delete static_cast<TNodeT*>(replacement)->sn;
          delete static_cast<TNodeT*>(replacement);
        } else {
          destroy_chain(static_cast<LNodeT*>(replacement));
        }
        out->reset();
        return Res::kRestart;
      }
      default:
        assert(false && "invalid main node");
        return Res::kRestart;
    }
  }

  // --- contraction (clean / cleanParent) -------------------------------------

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  bool cas_main(INode* i, Base* expected, Base* desired) {
    // The GCAS stand-in: every structural replacement funnels through this
    // single INode.main CAS, so one chaos point (and one trace span,
    // covering the CAS plus retiring the loser) covers them all.
    [[maybe_unused]] obs::trace::Span span{
        obs::trace::EventId::kCtrieGcasBegin,
        obs::trace::EventId::kCtrieGcasEnd,
        reinterpret_cast<std::uintptr_t>(i)};
    testkit::chaos_point("ctrie.gcas");
    Base* e = expected;
    // [publishes: CTRIE_GCAS]
    if (i->main.compare_exchange_strong(e, desired,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      if (desired->kind == Kind::kTNode) {
        obs::trace::emit(obs::trace::EventId::kCtrieEntomb,
                         reinterpret_cast<std::uintptr_t>(i));
      }
      retire_main_container(expected);
      return true;
    }
    obs::sites::ctrie_gcas_retry.add();
    obs::trace::emit(obs::trace::EventId::kCtrieGcasRetry,
                     reinterpret_cast<std::uintptr_t>(i));
    return false;
  }

  /// Retires a replaced main node: the container only — branches are shared
  /// with the replacement by construction.
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  void retire_main_container(Base* main) {
    if (main->kind == Kind::kCNode) {
      Reclaimer::retire_raw_sized(
          main, &mr::free_raw_storage,
          CNode::alloc_size(static_cast<CNode*>(main)->len));
    } else if (main->kind == Kind::kTNode) {
      // TNode and its tombed SNode are both superseded (resurrection copies
      // the pair into a fresh SNode).
      auto* tn = static_cast<TNodeT*>(main);
      Reclaimer::template retire<SNodeT>(tn->sn);
      Reclaimer::template retire<TNodeT>(tn);
    }
    // LNode chains are retired by their replacing operation (retire_chain).
  }

  /// A CNode with exactly one SNode branch (below the root) entombs.
  Base* to_contracted(CNode* cn, std::uint32_t lev) const {
    if (lev > 0 && cn->len == 1 && cn->array()[0]->kind == Kind::kSNode) {
      auto* sn = static_cast<SNodeT*>(cn->array()[0]);
      TNodeT* tn = TNodeT::make(SNodeT::make(sn->hash, sn->key, sn->value));
      CNode::destroy(cn);  // never published
      return tn;
    }
    return cn;
  }

  /// Compresses i's CNode: tombed INode children are resurrected to plain
  /// SNode copies and the result is contracted. The set of replaced
  /// branches is recorded *at copy time* — re-reading branch states after
  /// the CAS would race with concurrent entombments (a branch that became
  /// tombed after the copy is still shared by the new CNode and must NOT be
  /// retired; a later clean_parent owns it).
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  void clean(INode* i, std::uint32_t lev) const {
    if (i == nullptr) return;  // tomb directly under the root cannot occur
    Base* main = i->main.load(std::memory_order_acquire);
    if (main->kind != Kind::kCNode) return;
    auto* cn = static_cast<CNode*>(main);

    struct Resurrection {
      INode* in;
      TNodeT* tn;
      SNodeT* copy;  // fresh SNode placed in the new CNode
    };
    std::vector<Resurrection> recs;
    CNode* ncn = CNode::make(cn->bmp, cn->len);
    for (std::uint32_t b = 0; b < cn->len; ++b) {
      Base* branch = cn->array()[b];
      if (branch->kind == Kind::kINode) {
        auto* in = static_cast<INode*>(branch);
        Base* m = in->main.load(std::memory_order_acquire);
        if (m->kind == Kind::kTNode) {
          auto* tn = static_cast<TNodeT*>(m);
          auto* copy = SNodeT::make(tn->sn->hash, tn->sn->key, tn->sn->value);
          ncn->array()[b] = copy;
          recs.push_back(Resurrection{in, tn, copy});
          continue;
        }
      }
      ncn->array()[b] = branch;
    }

    const bool tombs =
        lev > 0 && ncn->len == 1 && ncn->array()[0]->kind == Kind::kSNode;
    if (recs.empty() && !tombs) {
      CNode::destroy(ncn);  // nothing to compress or contract
      return;
    }

    Base* desired = ncn;
    SNodeT* survivor = nullptr;  // the SNode copied into a tombstone
    if (tombs) {
      survivor = static_cast<SNodeT*>(ncn->array()[0]);
      desired = TNodeT::make(
          SNodeT::make(survivor->hash, survivor->key, survivor->value));
      CNode::destroy(ncn);
      ncn = nullptr;
    }

    testkit::chaos_point("ctrie.clean_commit");
    Base* expected = cn;
    if (i->main.compare_exchange_strong(expected, desired,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      for (const auto& r : recs) {
        Reclaimer::template retire<SNodeT>(r.tn->sn);
        Reclaimer::template retire<TNodeT>(r.tn);
        Reclaimer::template retire<INode>(r.in);
      }
      if (survivor != nullptr) {
        // The tombstone holds a copy; dispose of the source: a fresh
        // resurrected copy was never published (delete), a shared original
        // was reachable through cn (retire).
        bool fresh = false;
        for (const auto& r : recs) fresh = fresh || r.copy == survivor;
        if (fresh) {
          delete survivor;  // [delete: unpublished]
        } else {
          Reclaimer::template retire<SNodeT>(survivor);
        }
      }
      Reclaimer::retire_raw_sized(cn, &mr::free_raw_storage,
                                  CNode::alloc_size(cn->len));
      obs::sites::ctrie_clean.add();
      obs::trace::emit(obs::trace::EventId::kCtrieClean,
                       reinterpret_cast<std::uintptr_t>(i), recs.size());
      if (tombs) {
        obs::trace::emit(obs::trace::EventId::kCtrieEntomb,
                         reinterpret_cast<std::uintptr_t>(i));
      }
      return;
    }
    // Lost the race: everything we built is unpublished.
    obs::sites::ctrie_gcas_retry.add();
    obs::trace::emit(obs::trace::EventId::kCtrieGcasRetry,
                     reinterpret_cast<std::uintptr_t>(i));
    // [delete: unpublished]
    for (const auto& r : recs) delete r.copy;
    if (tombs) {
      // [delete: unpublished]
      delete static_cast<TNodeT*>(desired)->sn;
      delete static_cast<TNodeT*>(desired);
      // A fresh `survivor` copy was already deleted via recs above; a
      // shared one stays alive in cn.
    } else {
      CNode::destroy(ncn);
    }
  }

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  void clean_parent(INode* parent, INode* i, std::uint64_t h,
                    std::uint32_t lev) {
    Base* main = parent->main.load(std::memory_order_acquire);
    if (main->kind != Kind::kCNode) return;
    auto* cn = static_cast<CNode*>(main);
    const std::uint32_t flag = flag_of(h, lev);
    if ((cn->bmp & flag) == 0) return;
    const std::uint32_t pos = cn->pos_of(flag);
    if (cn->array()[pos] != i) return;
    Base* imain = i->main.load(std::memory_order_acquire);
    if (imain->kind != Kind::kTNode) return;
    auto* tn = static_cast<TNodeT*>(imain);
    SNodeT* resurrected =
        SNodeT::make(tn->sn->hash, tn->sn->key, tn->sn->value);
    CNode* ncn = cn->updated(pos, resurrected);
    Base* contracted = to_contracted(ncn, lev);
    testkit::chaos_point("ctrie.clean_parent");
    Base* e = cn;
    if (parent->main.compare_exchange_strong(e, contracted,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      Reclaimer::retire_raw_sized(cn, &mr::free_raw_storage,
                                  CNode::alloc_size(cn->len));
      Reclaimer::template retire<SNodeT>(tn->sn);
      Reclaimer::template retire<TNodeT>(tn);
      Reclaimer::template retire<INode>(i);
      if (contracted != ncn) {
        // The tombstone holds yet another copy; the fresh `resurrected`
        // was consumed by to_contracted's container and never published.
        delete resurrected;  // [delete: unpublished]
      }
      obs::sites::ctrie_clean_parent.add();
      obs::trace::emit(obs::trace::EventId::kCtrieCleanParent,
                       reinterpret_cast<std::uintptr_t>(parent), lev);
      if (contracted != ncn) {
        obs::trace::emit(obs::trace::EventId::kCtrieEntomb,
                         reinterpret_cast<std::uintptr_t>(parent));
      }
    } else {
      obs::sites::ctrie_gcas_retry.add();
      obs::trace::emit(obs::trace::EventId::kCtrieGcasRetry,
                       reinterpret_cast<std::uintptr_t>(parent));
      if (contracted != ncn) {
        // [delete: unpublished]
        delete static_cast<TNodeT*>(contracted)->sn;
        delete static_cast<TNodeT*>(contracted);
      } else {
        CNode::destroy(ncn);
      }
      delete resurrected;  // [delete: unpublished]
      clean_parent(parent, i, h, lev);  // retry
    }
  }

  // --- construction helpers ---------------------------------------------------

  /// Two leaves with (possibly) different hashes, branching below lev.
  /// Links the existing sn (branches are shared, not copied).
  Base* branch_two(SNodeT* sn, std::uint64_t h, const K& key, const V& value,
                   std::uint32_t lev) {
    if (sn->hash == h) {
      LNodeT* chain = LNodeT::make(sn->hash, sn->key, sn->value, nullptr);
      return LNodeT::make(h, key, value, chain);
    }
    // NOTE: unlike the cache-trie, Ctrie CNodes link the *existing* SNode.
    const std::uint32_t f1 = flag_of(sn->hash, lev);
    const std::uint32_t f2 = flag_of(h, lev);
    if (f1 != f2) {
      CNode* cn = CNode::make(f1 | f2, 2);
      SNodeT* nsn = SNodeT::make(h, key, value);
      if (f1 < f2) {
        cn->array()[0] = sn;
        cn->array()[1] = nsn;
      } else {
        cn->array()[0] = nsn;
        cn->array()[1] = sn;
      }
      return cn;
    }
    CNode* cn = CNode::make(f1, 1);
    cn->array()[0] = INode::make(branch_two(sn, h, key, value, lev + kW));
    return cn;
  }

  /// A collision chain and a new key that share only a hash prefix.
  Base* branch_lnode_apart(LNodeT* ln, SNodeT* nsn, std::uint32_t lev) {
    const std::uint32_t f1 = flag_of(ln->hash, lev);
    const std::uint32_t f2 = flag_of(nsn->hash, lev);
    if (f1 != f2) {
      CNode* cn = CNode::make(f1 | f2, 2);
      INode* lin = INode::make(ln);
      if (f1 < f2) {
        cn->array()[0] = lin;
        cn->array()[1] = nsn;
      } else {
        cn->array()[0] = nsn;
        cn->array()[1] = lin;
      }
      return cn;
    }
    CNode* cn = CNode::make(f1, 1);
    cn->array()[0] = INode::make(branch_lnode_apart(ln, nsn, lev + kW));
    return cn;
  }

  // --- unpublished-structure teardown -----------------------------------------

  /// Failed insert of a fresh subtree: free everything except the shared sn.
  void destroy_branch_shallow(INode* nin, SNodeT* keep) {
    Base* main = nin->main.load(std::memory_order_relaxed);
    destroy_unpublished_main(main, keep);
    delete nin;
  }

  void destroy_unpublished_main(Base* main, SNodeT* keep) {
    switch (main->kind) {
      case Kind::kLNode:
        destroy_chain(static_cast<LNodeT*>(main));
        return;
      case Kind::kCNode: {
        auto* cn = static_cast<CNode*>(main);
        for (std::uint32_t i = 0; i < cn->len; ++i) {
          Base* branch = cn->array()[i];
          if (branch == keep) continue;
          if (branch->kind == Kind::kSNode) {
            delete static_cast<SNodeT*>(branch);
          } else if (branch->kind == Kind::kINode) {
            destroy_branch_shallow(static_cast<INode*>(branch), keep);
          }
        }
        CNode::destroy(cn);
        return;
      }
      default:
        assert(false);
    }
  }

  /// Failed empty-slot insert: free the fresh CNode and its new SNode; all
  /// other branches are shared with the still-live original.
  void destroy_cnode_and_fresh(CNode* ncn, CNode* original) {
    for (std::uint32_t i = 0; i < ncn->len; ++i) {
      Base* branch = ncn->array()[i];
      bool shared = false;
      for (std::uint32_t j = 0; j < original->len; ++j) {
        if (original->array()[j] == branch) {
          shared = true;
          break;
        }
      }
      if (!shared && branch->kind == Kind::kSNode) {
        delete static_cast<SNodeT*>(branch);
      }
    }
    CNode::destroy(ncn);
  }

  /// Failed lnode split: free the grown structure but spare the chain.
  void destroy_grown_sparing(Base* grown, LNodeT* spare) {
    if (grown->kind == Kind::kCNode) {
      auto* cn = static_cast<CNode*>(grown);
      for (std::uint32_t i = 0; i < cn->len; ++i) {
        Base* branch = cn->array()[i];
        if (branch->kind == Kind::kINode) {
          auto* in = static_cast<INode*>(branch);
          Base* main = in->main.load(std::memory_order_relaxed);
          if (main != spare) destroy_grown_sparing(main, spare);
          delete in;
        }
        // SNode branches here are the caller's nsn, freed by the caller.
      }
      CNode::destroy(cn);
    }
  }

  void destroy_chain(LNodeT* chain) {
    while (chain != nullptr) {
      LNodeT* next = chain->next;
      delete chain;
      chain = next;
    }
  }

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  void retire_chain(LNodeT* chain) {
    while (chain != nullptr) {
      LNodeT* next = chain->next;
      Reclaimer::template retire<LNodeT>(chain);
      chain = next;
    }
  }

  // --- traversal ---------------------------------------------------------------

  template <typename F>
  void for_each_branch(const Base* branch, F& fn) const {
    switch (branch->kind) {
      case Kind::kSNode: {
        auto* sn = static_cast<const SNodeT*>(branch);
        fn(sn->key, sn->value);
        return;
      }
      case Kind::kINode:
        for_each_main(
            static_cast<const INode*>(branch)->main.load(
                std::memory_order_acquire),
            fn);
        return;
      default:
        assert(false);
    }
  }

  template <typename F>
  void for_each_main(const Base* main, F& fn) const {
    switch (main->kind) {
      case Kind::kCNode: {
        auto* cn = static_cast<const CNode*>(main);
        for (std::uint32_t i = 0; i < cn->len; ++i) {
          for_each_branch(cn->array()[i], fn);
        }
        return;
      }
      case Kind::kTNode: {
        auto* sn = static_cast<const TNodeT*>(main)->sn;
        fn(sn->key, sn->value);
        return;
      }
      case Kind::kLNode:
        for (auto* l = static_cast<const LNodeT*>(main); l != nullptr;
             l = l->next) {
          fn(l->key, l->value);
        }
        return;
      default:
        assert(false);
    }
  }

  std::size_t branch_footprint(const Base* branch) const {
    switch (branch->kind) {
      case Kind::kSNode:
        return sizeof(SNodeT);
      case Kind::kINode:
        return sizeof(INode) +
               main_footprint(static_cast<const INode*>(branch)->main.load(
                   std::memory_order_acquire));
      default:
        return 0;
    }
  }

  std::size_t main_footprint(const Base* main) const {
    switch (main->kind) {
      case Kind::kCNode: {
        auto* cn = static_cast<const CNode*>(main);
        std::size_t bytes = CNode::alloc_size(cn->len);
        for (std::uint32_t i = 0; i < cn->len; ++i) {
          bytes += branch_footprint(cn->array()[i]);
        }
        return bytes;
      }
      case Kind::kTNode:
        return sizeof(TNodeT) + sizeof(SNodeT);
      case Kind::kLNode: {
        std::size_t bytes = 0;
        for (auto* l = static_cast<const LNodeT*>(main); l != nullptr;
             l = l->next) {
          bytes += sizeof(LNodeT);
        }
        return bytes;
      }
      default:
        return 0;
    }
  }

  void validate_branch(const Base* branch, std::uint64_t prefix,
                       std::uint32_t lev, std::vector<std::string>& issues,
                       bool is_root) const {
    const std::uint64_t mask = lev == 0 ? 0 : ((std::uint64_t{1} << lev) - 1);
    switch (branch->kind) {
      case Kind::kSNode: {
        auto* sn = static_cast<const SNodeT*>(branch);
        if ((sn->hash & mask) != (prefix & mask)) {
          issues.push_back("ctrie SNode prefix mismatch at level " +
                           std::to_string(lev));
        }
        return;
      }
      case Kind::kINode: {
        const Base* main = static_cast<const INode*>(branch)->main.load(
            std::memory_order_acquire);
        if (main->kind == Kind::kCNode) {
          auto* cn = static_cast<const CNode*>(main);
          if (!is_root && cn->len == 0) {
            issues.push_back("empty non-root CNode (missed contraction)");
          }
          if (!is_root && cn->len == 1 &&
              cn->array()[0]->kind == Kind::kSNode) {
            issues.push_back("single-SNode CNode not entombed at level " +
                             std::to_string(lev));
          }
          if (static_cast<std::uint32_t>(util::popcount(cn->bmp)) != cn->len) {
            issues.push_back("CNode bitmap/population mismatch");
          }
          std::uint32_t pos = 0;
          for (std::uint32_t b = 0; b < kBranch; ++b) {
            if ((cn->bmp & (std::uint32_t{1} << b)) == 0) continue;
            validate_branch(cn->array()[pos],
                            prefix | (static_cast<std::uint64_t>(b) << lev),
                            lev + kW, issues, false);
            ++pos;
          }
        } else if (main->kind == Kind::kTNode) {
          issues.push_back("TNode present in quiescent ctrie");
        } else if (main->kind == Kind::kLNode) {
          std::size_t pairs = 0;
          for (auto* l = static_cast<const LNodeT*>(main); l != nullptr;
               l = l->next) {
            ++pairs;
            if ((l->hash & mask) != (prefix & mask)) {
              issues.push_back("ctrie LNode prefix mismatch");
            }
          }
          if (pairs < 2) issues.push_back("ctrie LNode chain below 2 pairs");
        }
        return;
      }
      default:
        issues.push_back("invalid branch kind");
    }
  }

  void destroy_main(Base* main) {
    switch (main->kind) {
      case Kind::kCNode: {
        auto* cn = static_cast<CNode*>(main);
        for (std::uint32_t i = 0; i < cn->len; ++i) {
          Base* branch = cn->array()[i];
          if (branch->kind == Kind::kSNode) {
            delete static_cast<SNodeT*>(branch);
          } else {
            auto* in = static_cast<INode*>(branch);
            destroy_main(in->main.load(std::memory_order_relaxed));
            delete in;
          }
        }
        CNode::destroy(cn);
        return;
      }
      case Kind::kTNode: {
        auto* tn = static_cast<TNodeT*>(main);
        delete tn->sn;
        delete tn;
        return;
      }
      case Kind::kLNode:
        destroy_chain(static_cast<LNodeT*>(main));
        return;
      default:
        assert(false);
    }
  }

  Hash hasher_{};
  INode* root_;
};

}  // namespace cachetrie::ctrie
