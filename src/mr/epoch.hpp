// epoch.hpp — epoch-based reclamation (EBR), hardened against stalled
// readers.
//
// Classic three-epoch scheme (Fraser 2004, as used by e.g. libcds and
// crossbeam-epoch):
//
//   * A global epoch counter advances when every thread currently inside a
//     read-side critical section has observed the current epoch.
//   * A node retired in epoch `e` may be freed once the global epoch reaches
//     `e + 2`: any reader that could still hold the node pinned an epoch
//     <= e, and two advances prove all such readers have since quiesced.
//   * Retired nodes live in per-thread limbo segments tagged with their
//     retirement epoch; a segment is recycled once it is two epochs old.
//
// Stall tolerance (see DESIGN.md "Reclamation under faults"): plain EBR has
// a well-known robustness hole — one thread preempted, stalled, or killed
// inside a Guard pins the global epoch forever and limbo grows without
// bound even though every structure operation keeps completing. This domain
// closes the hole with three cooperating mechanisms:
//
//   1. *Byte accounting.* Every retirement carries a byte size; the domain
//      tracks the bytes currently in limbo (plus a high-water mark) and a
//      configurable cap (`set_limbo_cap_bytes`, or the
//      CACHETRIE_LIMBO_CAP_BYTES environment variable; default: unlimited,
//      i.e. classic EBR behavior).
//   2. *Epoch-lag detection.* While the cap is exceeded, `fallback_scan()`
//      performs a hazard-style sweep of every pinned thread record (the
//      same snapshot-all-published-slots shape as HazardDomain::scan, with
//      the published *epoch* playing the role of the hazard pointer). A
//      record is "lagging" when it is pinned at an epoch other than the
//      current one — by the advance rule that very record is what is
//      holding the epoch back, so its absolute lag can never exceed one;
//      the sweep therefore counts *how long* the lag persists, CAS-ing a
//      tick into the record's state word each sweep that observes it
//      blocking. The owner's whole-word publish on guard enter/exit resets
//      the ticks, so only a reader stuck inside one continuous guard
//      accumulates them. After `stall_lag_epochs` consecutive ticks —
//      i.e. that many missed grace periods while survivors were actively
//      trying to reclaim — the record is declared stalled: a sticky bit is
//      CAS-ed into its state word and `stalled_records` is bumped.
//   3. *Advancement past stalled records.* `try_advance()` ignores declared
//      records, so the epoch moves again and every survivor's limbo drains
//      through the normal two-epoch grace period. Garbage stays bounded by
//      roughly what all live threads retire in one grace period, instead of
//      growing for as long as the stall lasts.
//
// The safety model for (3) is the crash-stop assumption standard in the
// robust-reclamation literature (Hazard Eras, IBR, NBR): a reader that has
// not exited its guard across `stall_lag_epochs` consecutive over-cap
// reclamation sweeps — i.e. while other threads retired enough garbage to
// blow the cap that many times over, when every operation in this repo
// holds a guard for only one bounded-length op — is
// assumed dead or permanently descheduled and to execute no further
// instructions, so memory it may still reference can be recycled: it will
// never dereference it. A declared reader that *does* resume is a model
// violation; its guard exit is counted in `stalled_guard_exits()` and the
// testkit fault engine (src/testkit/fault.hpp) converts such resumptions
// into a simulated death-unwind so the assumption holds by construction in
// fault tests. Deployments that cannot accept the assumption leave the cap
// unlimited and get classic (unbounded-garbage) EBR.
//
// The domain is a process-wide singleton: thread records are registered
// lazily on first use via a thread-local handle and recycled (never freed)
// when a thread exits, so registration is wait-free after the first pin.
// A thread that exits with non-empty limbo orphans its items; survivors
// free them on later advances. Guards are reentrant — nested pins on one
// thread are counted, and only the outermost pin publishes/retracts the
// epoch.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mr/reclaimer.hpp"
#include "util/padded.hpp"

namespace cachetrie::mr {

class EpochDomain {
 public:
  /// The process-wide domain all EpochReclaimer users share.
  static EpochDomain& instance();

  /// Reads CACHETRIE_LIMBO_CAP_BYTES and CACHETRIE_STALL_LAG_EPOCHS from the
  /// environment (when set) so deployments can tune the stall fallback
  /// without a rebuild.
  EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// RAII read-side critical section. Cheap (two atomic ops on the
  /// outermost level, a counter bump when nested).
  class Guard {
   public:
    explicit Guard(EpochDomain& domain) : domain_(&domain) { domain.enter(); }
    ~Guard() {
      if (domain_ != nullptr) domain_->exit();
    }
    Guard(Guard&& other) noexcept : domain_(other.domain_) {
      other.domain_ = nullptr;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;

   private:
    EpochDomain* domain_;
  };

  Guard pin() { return Guard{*this}; }

  /// Schedule `deleter(p)` once all current readers have quiesced. Must be
  /// called from inside a Guard — the retiring operation is itself a reader
  /// (asserted in debug builds; see the policy contract in reclaimer.hpp).
  /// `bytes` feeds the limbo accounting that backs the stall fallback; pass
  /// the allocation size when known.
  void retire(void* p, Deleter deleter,
              std::size_t bytes = kUnknownRetiredBytes);

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  template <typename T>
  void retire(T* p) {
    retire(static_cast<void*>(p), &delete_as<T>, sizeof(T));
  }

  /// Attempt one epoch advance; returns true on success. Called
  /// automatically every `kAdvanceInterval` retirements. Records declared
  /// stalled by fallback_scan() do not block advancement.
  bool try_advance();

  /// The over-cap degraded path: hazard-style sweep of all pinned records,
  /// ticking each one observed blocking advancement and declaring it
  /// stalled once it has blocked `stall_lag_epochs()` consecutive sweeps,
  /// then forcing one full grace period (two advances) and collecting the
  /// caller's limbo. Returns the number of objects freed from the caller's
  /// limbo. Invoked automatically by retire() while over the cap; public so
  /// tests and operators can force it.
  std::size_t fallback_scan();

  /// Free *everything* still in limbo. Only valid when no thread holds a
  /// guard (e.g. after joining all workers in a test). Returns the number of
  /// objects freed.
  std::size_t drain_for_testing();

  std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }
  std::uint64_t retired_count() const noexcept {
    return retired_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_count() const noexcept {
    return freed_total_.load(std::memory_order_relaxed);
  }

  // --- stall-tolerance counters and knobs ---------------------------------

  /// Bytes currently sitting in limbo (all threads + orphans).
  std::size_t retired_bytes() const noexcept {
    return limbo_bytes_.load(std::memory_order_relaxed);
  }
  /// Highest value retired_bytes() has ever reached.
  std::size_t retired_bytes_high_water() const noexcept {
    return limbo_bytes_hwm_.load(std::memory_order_relaxed);
  }
  /// Records currently declared stalled (pinned + lagging past threshold).
  std::uint64_t stalled_records() const noexcept {
    return stalled_records_.load(std::memory_order_relaxed);
  }
  /// Times the over-cap fallback sweep ran.
  std::uint64_t fallback_scans() const noexcept {
    return fallback_scans_.load(std::memory_order_relaxed);
  }
  /// Guard exits by records that had been declared stalled. Nonzero means a
  /// declared reader ran again: either the testkit's simulated death-unwind
  /// (benign — it touches no shared memory) or a genuine crash-stop model
  /// violation worth investigating.
  std::uint64_t stalled_guard_exits() const noexcept {
    return stalled_guard_exits_.load(std::memory_order_relaxed);
  }

  void set_limbo_cap_bytes(std::size_t cap) noexcept {
    limbo_cap_bytes_.store(cap, std::memory_order_relaxed);
  }
  std::size_t limbo_cap_bytes() const noexcept {
    return limbo_cap_bytes_.load(std::memory_order_relaxed);
  }
  void set_stall_lag_epochs(std::uint64_t lag) noexcept {
    if (lag < 2) lag = 2;
    if (lag > kTickMask) lag = kTickMask;
    stall_lag_epochs_.store(lag, std::memory_order_relaxed);
  }
  std::uint64_t stall_lag_epochs() const noexcept {
    return stall_lag_epochs_.load(std::memory_order_relaxed);
  }

  /// True iff the calling thread's record carries the stalled bit — i.e. a
  /// fallback sweep declared this thread dead while it was parked. The
  /// testkit fault engine consults this on every stall wake-up to turn
  /// resumption of a declared-dead victim into a simulated death-unwind.
  bool current_thread_declared_stalled();

  static constexpr std::size_t kNoLimboCap = static_cast<std::size_t>(-1);
  static constexpr std::uint64_t kDefaultStallLagEpochs = 64;

 private:
  struct Retired {
    void* ptr;
    Deleter deleter;
    std::size_t bytes;
  };

  /// One epoch's worth of one thread's retirements.
  struct Segment {
    std::uint64_t epoch = 0;
    std::size_t bytes = 0;
    std::vector<Retired> items;
  };

  // State word: epoch << 18 | ticks << 2 | stalled << 1 | pinned. Only the
  // owner writes the whole word (publish on outermost enter, zero on
  // outermost exit — which resets the tick field); scanners may only CAS a
  // tick increment or the stalled bit in while the record stays pinned.
  static constexpr std::uint64_t kPinnedBit = 1;
  static constexpr std::uint64_t kStalledBit = 2;
  static constexpr int kTickShift = 2;
  static constexpr std::uint64_t kTickMask = 0xffff;
  static constexpr int kEpochShift = 18;

  /// One record per (recycled) thread slot; lives forever once allocated.
  struct alignas(util::kCacheLineSize) ThreadRecord {
    std::atomic<std::uint64_t> state{0};
    /// Guard nesting depth; only the owning thread touches it.
    std::uint32_t nesting = 0;
    /// Retirements since the last advance attempt.
    std::uint32_t retire_pulse = 0;
    /// Limbo segments in increasing-epoch order; owner-only.
    std::vector<Segment> limbo;
    /// Claimed by a live thread?
    std::atomic<bool> in_use{false};
    ThreadRecord* next = nullptr;
  };

  /// Thread-local handle: claims a record on construction, orphans leftover
  /// limbo items and releases the record on thread exit.
  struct Handle {
    EpochDomain* domain = nullptr;
    ThreadRecord* record = nullptr;
    ~Handle();
  };

  struct Orphan {
    Retired item;
    std::uint64_t epoch;
    Orphan* next;
  };

  void enter();
  void exit();
  ThreadRecord* local_record();
  ThreadRecord* acquire_record();
  std::size_t free_segment(Segment& seg);
  std::size_t collect_local(ThreadRecord& rec, std::uint64_t current);
  void collect_orphans(std::uint64_t current);
  void orphan_all(ThreadRecord& rec);
  void note_limbo_bytes(std::size_t now) noexcept;

  static constexpr std::uint32_t kAdvanceInterval = 64;

  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<ThreadRecord*> records_{nullptr};
  std::atomic<Orphan*> orphans_{nullptr};
  std::atomic<std::uint64_t> retired_total_{0};
  std::atomic<std::uint64_t> freed_total_{0};

  std::atomic<std::size_t> limbo_bytes_{0};
  std::atomic<std::size_t> limbo_bytes_hwm_{0};
  std::atomic<std::size_t> limbo_cap_bytes_{kNoLimboCap};
  std::atomic<std::uint64_t> stall_lag_epochs_{kDefaultStallLagEpochs};
  std::atomic<std::uint64_t> stalled_records_{0};
  std::atomic<std::uint64_t> fallback_scans_{0};
  std::atomic<std::uint64_t> stalled_guard_exits_{0};

  friend struct Handle;
};

/// Policy adapter used as a template argument by the data structures.
struct EpochReclaimer {
  using Guard = EpochDomain::Guard;
  static Guard pin() { return EpochDomain::instance().pin(); }
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  template <typename T>
  static void retire(T* p) {
    EpochDomain::instance().retire(p);
  }
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  static void retire_raw(void* p, Deleter d) {
    EpochDomain::instance().retire(p, d);
  }
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  static void retire_raw_sized(void* p, Deleter d, std::size_t bytes) {
    EpochDomain::instance().retire(p, d, bytes);
  }
};

}  // namespace cachetrie::mr
