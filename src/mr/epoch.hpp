// epoch.hpp — epoch-based reclamation (EBR).
//
// Classic three-epoch scheme (Fraser 2004, as used by e.g. libcds and
// crossbeam-epoch):
//
//   * A global epoch counter advances when every thread currently inside a
//     read-side critical section has observed the current epoch.
//   * A node retired in epoch `e` may be freed once the global epoch reaches
//     `e + 2`: any reader that could still hold the node pinned an epoch
//     <= e, and two advances prove all such readers have since quiesced.
//   * Retired nodes live in per-thread limbo buckets indexed by epoch mod 3;
//     a bucket is recycled the moment its tag is at least three epochs old.
//
// The domain is a process-wide singleton: thread records are registered
// lazily on first use via a thread-local handle and recycled (never freed)
// when a thread exits, so registration is wait-free after the first pin.
// Guards are reentrant — nested pins on one thread are counted, and only the
// outermost pin publishes/retracts the epoch.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mr/reclaimer.hpp"
#include "util/padded.hpp"

namespace cachetrie::mr {

class EpochDomain {
 public:
  /// The process-wide domain all EpochReclaimer users share.
  static EpochDomain& instance();

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// RAII read-side critical section. Cheap (two atomic ops on the
  /// outermost level, a counter bump when nested).
  class Guard {
   public:
    explicit Guard(EpochDomain& domain) : domain_(&domain) { domain.enter(); }
    ~Guard() {
      if (domain_ != nullptr) domain_->exit();
    }
    Guard(Guard&& other) noexcept : domain_(other.domain_) {
      other.domain_ = nullptr;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;

   private:
    EpochDomain* domain_;
  };

  Guard pin() { return Guard{*this}; }

  /// Schedule `deleter(p)` once all current readers have quiesced. Must be
  /// called from inside a Guard (the retiring operation is itself a reader).
  void retire(void* p, Deleter deleter);

  template <typename T>
  void retire(T* p) {
    retire(static_cast<void*>(p), &delete_as<T>);
  }

  /// Attempt one epoch advance; returns true on success. Called
  /// automatically every `kAdvanceInterval` retirements.
  bool try_advance();

  /// Free *everything* still in limbo. Only valid when no thread holds a
  /// guard (e.g. after joining all workers in a test). Returns the number of
  /// objects freed.
  std::size_t drain_for_testing();

  std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }
  std::uint64_t retired_count() const noexcept {
    return retired_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_count() const noexcept {
    return freed_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    void* ptr;
    Deleter deleter;
  };

  /// One record per (recycled) thread slot; lives forever once allocated.
  struct alignas(util::kCacheLineSize) ThreadRecord {
    /// 0 when quiescent, otherwise (epoch << 1) | 1.
    std::atomic<std::uint64_t> state{0};
    /// Guard nesting depth; only the owning thread touches it.
    std::uint32_t nesting = 0;
    /// Retirements since the last advance attempt.
    std::uint32_t retire_pulse = 0;
    /// Limbo buckets, indexed by epoch % 3, tagged with the epoch at which
    /// their current contents were retired.
    std::vector<Retired> limbo[3];
    std::uint64_t limbo_epoch[3] = {0, 0, 0};
    /// Claimed by a live thread?
    std::atomic<bool> in_use{false};
    ThreadRecord* next = nullptr;
  };

  /// Thread-local handle: claims a record on construction, orphans leftover
  /// limbo items and releases the record on thread exit.
  struct Handle {
    EpochDomain* domain = nullptr;
    ThreadRecord* record = nullptr;
    ~Handle();
  };

  struct Orphan {
    Retired item;
    std::uint64_t epoch;
    Orphan* next;
  };

  void enter();
  void exit();
  ThreadRecord* local_record();
  ThreadRecord* acquire_record();
  void free_bucket(ThreadRecord& rec, int idx);
  void collect_local(ThreadRecord& rec, std::uint64_t current);
  void collect_orphans(std::uint64_t current);
  void orphan_all(ThreadRecord& rec);

  static constexpr std::uint32_t kAdvanceInterval = 64;

  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<ThreadRecord*> records_{nullptr};
  std::atomic<Orphan*> orphans_{nullptr};
  std::atomic<std::uint64_t> retired_total_{0};
  std::atomic<std::uint64_t> freed_total_{0};

  friend struct Handle;
};

/// Policy adapter used as a template argument by the data structures.
struct EpochReclaimer {
  using Guard = EpochDomain::Guard;
  static Guard pin() { return EpochDomain::instance().pin(); }
  template <typename T>
  static void retire(T* p) {
    EpochDomain::instance().retire(p);
  }
  static void retire_raw(void* p, Deleter d) {
    EpochDomain::instance().retire(p, d);
  }
};

}  // namespace cachetrie::mr
