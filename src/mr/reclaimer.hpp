// reclaimer.hpp — common vocabulary for safe memory reclamation policies.
//
// The paper's artifact runs on the JVM, where the garbage collector silently
// guarantees that a node a reader still holds is never recycled. A native
// reproduction must provide that guarantee manually; this directory supplies
// three interchangeable policies:
//
//   * mr::EpochReclaimer  — epoch-based reclamation (EBR); the default for
//                           every data structure in this repo. Readers pin a
//                           global epoch for the duration of one operation;
//                           retired nodes are freed two epochs later.
//   * mr::HazardReclaimer — hazard pointers (Michael 2004); per-pointer
//                           protection, used by the chashmap bucket lists and
//                           available for ablation.
//   * mr::LeakReclaimer   — never frees; isolates reclamation overhead in
//                           the ablation benches and simplifies some tests.
//
// A policy P provides:
//   typename P::Guard          RAII critical-section token
//   P::pin() -> Guard          enter a read-side critical section
//   P::retire<T>(T* p)         schedule `delete p` after a grace period
//   P::retire_raw(p, deleter)  same, with an explicit type-erased deleter
//
// All data structures are templated on the policy, so the ablation benches
// can swap reclamation backends without touching algorithm code.
#pragma once

namespace cachetrie::mr {

/// Type-erased deleter invoked once the grace period for a retired object
/// has elapsed. Must not touch any shared structure (it may run long after
/// the owning container died).
using Deleter = void (*)(void*);

/// Canonical deleter for objects allocated with plain `new`.
template <typename T>
void delete_as(void* p) {
  delete static_cast<T*>(p);
}

/// Deleter for raw storage obtained from ::operator new (flexible-array
/// nodes whose members are all trivially destructible).
inline void free_raw_storage(void* p) {
  ::operator delete(p);
}

}  // namespace cachetrie::mr
