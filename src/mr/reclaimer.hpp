// reclaimer.hpp — common vocabulary for safe memory reclamation policies.
//
// The paper's artifact runs on the JVM, where the garbage collector silently
// guarantees that a node a reader still holds is never recycled. A native
// reproduction must provide that guarantee manually; this directory supplies
// three interchangeable policies:
//
//   * mr::EpochReclaimer  — epoch-based reclamation (EBR); the default for
//                           every data structure in this repo. Readers pin a
//                           global epoch for the duration of one operation;
//                           retired nodes are freed two epochs later. Has a
//                           stall-tolerant degraded mode (byte-capped limbo
//                           + hazard-style fallback sweep; see epoch.hpp and
//                           DESIGN.md "Reclamation under faults").
//   * mr::HazardReclaimer — hazard pointers (Michael 2004); per-pointer
//                           protection, used by the chashmap bucket lists and
//                           available for ablation.
//   * mr::LeakReclaimer   — never frees; isolates reclamation overhead in
//                           the ablation benches and simplifies some tests.
//
// A policy P provides:
//   typename P::Guard          RAII critical-section token
//   P::pin() -> Guard          enter a read-side critical section
//   P::retire<T>(T* p)         schedule `delete p` after a grace period
//   P::retire_raw(p, deleter)  same, with an explicit type-erased deleter
//   P::retire_raw_sized(p, deleter, bytes)
//                              same, and report the allocation size so the
//                              reclaimer's garbage accounting (limbo caps,
//                              footprint reporting) is exact. retire<T> does
//                              this automatically with sizeof(T); the _raw
//                              form falls back to kUnknownRetiredBytes.
//
// Contract — retire must be called inside a Guard. The retiring operation
// is itself a reader of the structure it just unlinked from: the guard is
// what proves the unlink happened in a well-defined epoch (or, for hazard
// pointers, that the retiring thread has a registered record). Calling any
// retire variant outside a pin is undefined: with EBR the item would be
// tagged with an epoch no reader handshake protects, so it can be freed
// while a concurrent reader still dereferences it. EpochDomain asserts the
// precondition (guard nesting > 0) in debug builds; release builds do not
// pay for the check.
//
// All data structures are templated on the policy, so the ablation benches
// can swap reclamation backends without touching algorithm code.
#pragma once

#include <cstddef>

namespace cachetrie::mr {

/// Type-erased deleter invoked once the grace period for a retired object
/// has elapsed. Must not touch any shared structure (it may run long after
/// the owning container died).
using Deleter = void (*)(void*);

/// Byte size charged to the limbo accounting when the caller does not know
/// the allocation size (plain retire_raw). One cache line is a deliberate
/// under-estimate-resistant default for the node sizes in this repo.
inline constexpr std::size_t kUnknownRetiredBytes = 64;

/// Canonical deleter for objects allocated with plain `new`.
template <typename T>
void delete_as(void* p) {
  delete static_cast<T*>(p);
}

/// Deleter for raw storage obtained from ::operator new (flexible-array
/// nodes whose members are all trivially destructible).
inline void free_raw_storage(void* p) {
  ::operator delete(p);
}

}  // namespace cachetrie::mr
