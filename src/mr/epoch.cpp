#include "mr/epoch.hpp"

namespace cachetrie::mr {

EpochDomain& EpochDomain::instance() {
  static EpochDomain domain;
  return domain;
}

EpochDomain::ThreadRecord* EpochDomain::acquire_record() {
  // First try to recycle a record left behind by an exited thread.
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    bool expected = false;
    if (!rec->in_use.load(std::memory_order_relaxed) &&
        rec->in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
      return rec;
    }
  }
  // Otherwise push a fresh one. Records are immortal, so traversal by
  // try_advance never races with deallocation.
  auto* rec = new ThreadRecord();
  rec->in_use.store(true, std::memory_order_relaxed);
  ThreadRecord* head = records_.load(std::memory_order_acquire);
  do {
    rec->next = head;
  } while (!records_.compare_exchange_weak(head, rec,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire));
  return rec;
}

EpochDomain::ThreadRecord* EpochDomain::local_record() {
  thread_local Handle handle;
  if (handle.record == nullptr) {
    handle.domain = this;
    handle.record = acquire_record();
  }
  // A single process-wide domain means one handle per thread suffices.
  assert(handle.domain == this &&
         "EpochDomain: multiple domains per thread are not supported");
  return handle.record;
}

EpochDomain::Handle::~Handle() {
  if (record == nullptr) return;
  assert(record->nesting == 0 && "thread exited while holding an EBR guard");
  domain->orphan_all(*record);
  record->in_use.store(false, std::memory_order_release);
}

void EpochDomain::enter() {
  ThreadRecord* rec = local_record();
  if (rec->nesting++ != 0) return;
  // Publish the observed epoch, then verify it did not move; this closes the
  // window where we would announce a stale epoch after an advance.
  std::uint64_t e;
  do {
    e = global_epoch_.load(std::memory_order_acquire);
    rec->state.store((e << 1) | 1, std::memory_order_seq_cst);
  } while (global_epoch_.load(std::memory_order_seq_cst) != e);
}

void EpochDomain::exit() {
  ThreadRecord* rec = local_record();
  assert(rec->nesting > 0);
  if (--rec->nesting != 0) return;
  // Opportunistically recycle limbo buckets that became safe while pinned.
  collect_local(*rec, global_epoch_.load(std::memory_order_acquire));
  rec->state.store(0, std::memory_order_release);
}

void EpochDomain::retire(void* p, Deleter deleter) {
  ThreadRecord* rec = local_record();
  assert(rec->nesting > 0 && "retire() requires an active guard");
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  const int idx = static_cast<int>(e % 3);
  if (rec->limbo_epoch[idx] != e) {
    // Bucket contents are from epoch e-3 or earlier: grace period elapsed.
    free_bucket(*rec, idx);
    rec->limbo_epoch[idx] = e;
  }
  rec->limbo[idx].push_back(Retired{p, deleter});
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (++rec->retire_pulse >= kAdvanceInterval) {
    rec->retire_pulse = 0;
    try_advance();
    collect_local(*rec, global_epoch_.load(std::memory_order_acquire));
  }
}

bool EpochDomain::try_advance() {
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    const std::uint64_t s = rec->state.load(std::memory_order_seq_cst);
    if ((s & 1) != 0 && (s >> 1) != e) return false;  // straggler reader
  }
  const bool advanced = global_epoch_.compare_exchange_strong(
      e, e + 1, std::memory_order_acq_rel, std::memory_order_acquire);
  if (advanced) collect_orphans(e + 1);
  return advanced;
}

void EpochDomain::free_bucket(ThreadRecord& rec, int idx) {
  auto& bucket = rec.limbo[idx];
  if (bucket.empty()) return;
  for (const Retired& r : bucket) r.deleter(r.ptr);
  freed_total_.fetch_add(bucket.size(), std::memory_order_relaxed);
  bucket.clear();
}

void EpochDomain::collect_local(ThreadRecord& rec, std::uint64_t current) {
  for (int idx = 0; idx < 3; ++idx) {
    if (!rec.limbo[idx].empty() && rec.limbo_epoch[idx] + 2 <= current) {
      free_bucket(rec, idx);
    }
  }
}

void EpochDomain::orphan_all(ThreadRecord& rec) {
  for (int idx = 0; idx < 3; ++idx) {
    for (const Retired& r : rec.limbo[idx]) {
      auto* orphan = new Orphan{r, rec.limbo_epoch[idx], nullptr};
      Orphan* head = orphans_.load(std::memory_order_acquire);
      do {
        orphan->next = head;
      } while (!orphans_.compare_exchange_weak(head, orphan,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire));
    }
    rec.limbo[idx].clear();
    rec.limbo_epoch[idx] = 0;
  }
}

void EpochDomain::collect_orphans(std::uint64_t current) {
  // Detach the whole list, free what is safe, push the rest back.
  Orphan* head = orphans_.exchange(nullptr, std::memory_order_acq_rel);
  Orphan* keep = nullptr;
  std::uint64_t freed = 0;
  while (head != nullptr) {
    Orphan* next = head->next;
    if (head->epoch + 2 <= current) {
      head->item.deleter(head->item.ptr);
      delete head;
      ++freed;
    } else {
      head->next = keep;
      keep = head;
    }
    head = next;
  }
  if (freed != 0) freed_total_.fetch_add(freed, std::memory_order_relaxed);
  while (keep != nullptr) {
    Orphan* next = keep->next;
    Orphan* cur_head = orphans_.load(std::memory_order_acquire);
    do {
      keep->next = cur_head;
    } while (!orphans_.compare_exchange_weak(cur_head, keep,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire));
    keep = next;
  }
}

std::size_t EpochDomain::drain_for_testing() {
  std::size_t freed = 0;
  // All threads must be quiescent; free every limbo bucket of every record
  // that is not claimed by the calling thread, then the caller's own, then
  // all orphans.
  ThreadRecord* self = local_record();
  assert(self->nesting == 0 && "drain_for_testing() under an active guard");
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    // Only safe because the caller asserts global quiescence: exited threads
    // already orphaned their items, and `self` is the only live record that
    // may still hold limbo entries. Draining other in-use records would race
    // with their owners, so skip them.
    if (rec != self && rec->in_use.load(std::memory_order_acquire)) continue;
    for (int idx = 0; idx < 3; ++idx) {
      freed += rec->limbo[idx].size();
      free_bucket(*rec, idx);  // free_bucket updates freed_total_
      rec->limbo_epoch[idx] = 0;
    }
  }
  Orphan* head = orphans_.exchange(nullptr, std::memory_order_acq_rel);
  std::uint64_t orphan_freed = 0;
  while (head != nullptr) {
    Orphan* next = head->next;
    head->item.deleter(head->item.ptr);
    delete head;
    ++orphan_freed;
    head = next;
  }
  freed_total_.fetch_add(orphan_freed, std::memory_order_relaxed);
  return freed + orphan_freed;
}

}  // namespace cachetrie::mr
