#include "mr/epoch.hpp"

#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cachetrie::mr {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  return (end == s) ? fallback : static_cast<std::uint64_t>(v);
}

}  // namespace

EpochDomain::EpochDomain() {
  limbo_cap_bytes_.store(
      static_cast<std::size_t>(
          env_u64("CACHETRIE_LIMBO_CAP_BYTES", kNoLimboCap)),
      std::memory_order_relaxed);
  set_stall_lag_epochs(
      env_u64("CACHETRIE_STALL_LAG_EPOCHS", kDefaultStallLagEpochs));
  // Fold this domain's own counters into obs snapshots as callback gauges:
  // the domain stays the single owner of the numbers (no double
  // bookkeeping), and registry.reset() cannot zero them out from under it.
  // The domain is a function-local static, so the callbacks never outlive
  // their source within a snapshot's reach.
  auto& reg = obs::registry();
  auto g = [this](auto member) {
    return [this, member]() {
      return static_cast<std::int64_t>((this->*member)());
    };
  };
  reg.register_gauge_fn("mr.epoch.epoch", g(&EpochDomain::epoch));
  reg.register_gauge_fn("mr.epoch.retired", g(&EpochDomain::retired_count));
  reg.register_gauge_fn("mr.epoch.freed", g(&EpochDomain::freed_count));
  reg.register_gauge_fn("mr.epoch.limbo_bytes",
                        g(&EpochDomain::retired_bytes));
  reg.register_gauge_fn("mr.epoch.limbo_bytes_hwm",
                        g(&EpochDomain::retired_bytes_high_water));
  reg.register_gauge_fn("mr.epoch.stalled_records",
                        g(&EpochDomain::stalled_records));
  reg.register_gauge_fn("mr.epoch.fallback_scans",
                        g(&EpochDomain::fallback_scans));
  reg.register_gauge_fn("mr.epoch.stalled_guard_exits",
                        g(&EpochDomain::stalled_guard_exits));
}

EpochDomain& EpochDomain::instance() {
  static EpochDomain domain;
  return domain;
}

EpochDomain::ThreadRecord* EpochDomain::acquire_record() {
  // First try to recycle a record left behind by an exited thread.
  // [acquires: MR_RECORD_LINK]
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    bool expected = false;
    if (!rec->in_use.load(std::memory_order_relaxed) &&
        rec->in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
      return rec;
    }
  }
  // Otherwise push a fresh one. Records are immortal, so traversal by
  // try_advance never races with deallocation.
  auto* rec = new ThreadRecord();
  rec->in_use.store(true, std::memory_order_relaxed);
  ThreadRecord* head = records_.load(std::memory_order_acquire);
  do {
    rec->next = head;
    // [publishes: MR_RECORD_LINK]
  } while (!records_.compare_exchange_weak(head, rec,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire));
  return rec;
}

EpochDomain::ThreadRecord* EpochDomain::local_record() {
  thread_local Handle handle;
  if (handle.record == nullptr) {
    handle.domain = this;
    handle.record = acquire_record();
  }
  // A single process-wide domain means one handle per thread suffices.
  assert(handle.domain == this &&
         "EpochDomain: multiple domains per thread are not supported");
  return handle.record;
}

EpochDomain::Handle::~Handle() {
  if (record == nullptr) return;
  assert(record->nesting == 0 && "thread exited while holding an EBR guard");
  domain->orphan_all(*record);
  record->in_use.store(false, std::memory_order_release);
}

void EpochDomain::enter() {
  ThreadRecord* rec = local_record();
  if (rec->nesting++ != 0) return;
  // Publish the observed epoch, then verify it did not move; this closes the
  // window where we would announce a stale epoch after an advance.
  std::uint64_t e;
  do {
    // [acquires: EPOCH_FLIP]
    e = global_epoch_.load(std::memory_order_acquire);
    // [publishes: EPOCH_PIN]
    rec->state.store((e << kEpochShift) | kPinnedBit,
                     std::memory_order_seq_cst);
  } while (global_epoch_.load(std::memory_order_seq_cst) != e);
}

void EpochDomain::exit() {
  ThreadRecord* rec = local_record();
  assert(rec->nesting > 0);
  if (--rec->nesting != 0) return;
  // Opportunistically recycle limbo segments that became safe while pinned.
  collect_local(*rec, global_epoch_.load(std::memory_order_acquire));
  // Exchange (not store) so a concurrent fallback_scan declaring us stalled
  // either lands before (we observe the bit here) or fails its CAS.
  const std::uint64_t old = rec->state.exchange(0, std::memory_order_acq_rel);
  if (old & kStalledBit) {
    // A fallback sweep declared this reader dead, yet here it is exiting its
    // guard. Benign when the exit is the testkit's death-unwind (it touches
    // no shared memory on the way out); otherwise a crash-stop model
    // violation — see the header comment.
    stalled_records_.fetch_sub(1, std::memory_order_relaxed);
    stalled_guard_exits_.fetch_add(1, std::memory_order_relaxed);
    obs::trace::emit(obs::trace::EventId::kMrStalledGuardExit,
                     reinterpret_cast<std::uintptr_t>(rec));
  }
}

bool EpochDomain::current_thread_declared_stalled() {
  return (local_record()->state.load(std::memory_order_acquire) &
          kStalledBit) != 0;
}

void EpochDomain::note_limbo_bytes(std::size_t now) noexcept {
  std::size_t hwm = limbo_bytes_hwm_.load(std::memory_order_relaxed);
  while (now > hwm && !limbo_bytes_hwm_.compare_exchange_weak(
                          hwm, now, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {
  }
}

void EpochDomain::retire(void* p, Deleter deleter, std::size_t bytes) {
  ThreadRecord* rec = local_record();
  assert(rec->nesting > 0 &&
         "EpochDomain::retire() outside a Guard — the retiring operation "
         "must itself hold a pin (policy contract in mr/reclaimer.hpp)");
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  if (rec->limbo.empty() || rec->limbo.back().epoch != e) {
    rec->limbo.push_back(Segment{e, 0, {}});
  }
  Segment& seg = rec->limbo.back();
  seg.items.push_back(Retired{p, deleter, bytes});
  seg.bytes += bytes;
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      limbo_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  note_limbo_bytes(now);
  if (++rec->retire_pulse >= kAdvanceInterval) {
    rec->retire_pulse = 0;
    try_advance();
    collect_local(*rec, global_epoch_.load(std::memory_order_acquire));
  }
  if (now > limbo_cap_bytes_.load(std::memory_order_relaxed)) {
    // Over the cap: push the epoch and collect eagerly; when that frees
    // nothing and limbo stays over the cap, a straggler is blocking
    // advancement — run the stall fallback.
    try_advance();
    const std::size_t freed =
        collect_local(*rec, global_epoch_.load(std::memory_order_acquire));
    if (freed == 0 && limbo_bytes_.load(std::memory_order_relaxed) >
                          limbo_cap_bytes_.load(std::memory_order_relaxed)) {
      fallback_scan();
    }
  }
}

bool EpochDomain::try_advance() {
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    // [acquires: EPOCH_PIN]
    const std::uint64_t s = rec->state.load(std::memory_order_seq_cst);
    if ((s & kPinnedBit) != 0 && (s & kStalledBit) == 0 &&
        (s >> kEpochShift) != e) {
      return false;  // straggler reader not (yet) declared stalled
    }
  }
  // [publishes: EPOCH_FLIP]
  const bool advanced = global_epoch_.compare_exchange_strong(
      e, e + 1, std::memory_order_acq_rel, std::memory_order_acquire);
  if (advanced) {
    obs::trace::emit(obs::trace::EventId::kMrEpochFlip, e + 1);
    collect_orphans(e + 1);
  }
  return advanced;
}

std::size_t EpochDomain::fallback_scan() {
  fallback_scans_.fetch_add(1, std::memory_order_relaxed);
  [[maybe_unused]] obs::trace::Span span{
      obs::trace::EventId::kMrFallbackScanBegin,
      obs::trace::EventId::kMrFallbackScanEnd,
      limbo_bytes_.load(std::memory_order_relaxed)};
  // Hazard-style sweep (same shape as HazardDomain::scan_list, with the
  // published epoch playing the role of the hazard pointer). A record
  // pinned at an epoch other than the current one is what is blocking
  // advancement (the advance rule caps absolute lag at one epoch), so the
  // sweep measures *persistence*: tick such a record once per sweep, and
  // declare it stalled after `stall_lag_epochs` consecutive ticks. The
  // owner's whole-word publish on enter/exit resets the tick field, so a
  // slow-but-live reader that keeps completing guards never accumulates
  // ticks — only one stuck inside a single guard does.
  const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  const std::uint64_t lag = stall_lag_epochs();
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    std::uint64_t s = rec->state.load(std::memory_order_seq_cst);
    if ((s & kPinnedBit) != 0 && (s & kStalledBit) == 0 &&
        (s >> kEpochShift) != e) {
      const std::uint64_t ticks = (s >> kTickShift) & kTickMask;
      const std::uint64_t desired = (ticks + 1 >= lag)
                                        ? (s | kStalledBit)
                                        : s + (std::uint64_t{1} << kTickShift);
      // Losing the CAS means the owner exited (tick reset — correct) or a
      // concurrent sweep ticked first (skip one tick — harmless).
      if (rec->state.compare_exchange_strong(s, desired,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed) &&
          (desired & kStalledBit) != 0) {
        stalled_records_.fetch_add(1, std::memory_order_relaxed);
        obs::trace::emit(obs::trace::EventId::kMrStallDeclare,
                         reinterpret_cast<std::uintptr_t>(rec), ticks + 1);
      }
    }
  }
  // One full grace period: two advances. Each can still fail if a live
  // (non-stalled) reader is mid-operation; that only delays collection by
  // one bounded op, not forever.
  try_advance();
  try_advance();
  ThreadRecord* self = local_record();
  return collect_local(*self,
                       global_epoch_.load(std::memory_order_acquire));
}

std::size_t EpochDomain::free_segment(Segment& seg) {
  if (seg.items.empty()) return 0;
  for (const Retired& r : seg.items) r.deleter(r.ptr);
  const std::size_t n = seg.items.size();
  freed_total_.fetch_add(n, std::memory_order_relaxed);
  limbo_bytes_.fetch_sub(seg.bytes, std::memory_order_relaxed);
  seg.items.clear();
  seg.bytes = 0;
  return n;
}

std::size_t EpochDomain::collect_local(ThreadRecord& rec,
                                       std::uint64_t current) {
  std::size_t freed = 0;
  std::size_t keep_from = 0;
  // Segments are in increasing-epoch order; free the safe prefix.
  while (keep_from < rec.limbo.size() &&
         rec.limbo[keep_from].epoch + 2 <= current) {
    freed += free_segment(rec.limbo[keep_from]);
    ++keep_from;
  }
  if (keep_from != 0) {
    rec.limbo.erase(rec.limbo.begin(),
                    rec.limbo.begin() + static_cast<std::ptrdiff_t>(keep_from));
  }
  return freed;
}

void EpochDomain::orphan_all(ThreadRecord& rec) {
  for (Segment& seg : rec.limbo) {
    for (const Retired& r : seg.items) {
      auto* orphan = new Orphan{r, seg.epoch, nullptr};
      Orphan* head = orphans_.load(std::memory_order_acquire);
      do {
        orphan->next = head;
        // [publishes: MR_ORPHANS]
      } while (!orphans_.compare_exchange_weak(head, orphan,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire));
    }
  }
  rec.limbo.clear();
}

void EpochDomain::collect_orphans(std::uint64_t current) {
  // Detach the whole list, free what is safe, push the rest back.
  Orphan* head = orphans_.exchange(nullptr, std::memory_order_acq_rel);
  Orphan* keep = nullptr;
  std::uint64_t freed = 0;
  std::size_t freed_bytes = 0;
  while (head != nullptr) {
    Orphan* next = head->next;
    if (head->epoch + 2 <= current) {
      head->item.deleter(head->item.ptr);
      freed_bytes += head->item.bytes;
      delete head;
      ++freed;
    } else {
      head->next = keep;
      keep = head;
    }
    head = next;
  }
  if (freed != 0) {
    freed_total_.fetch_add(freed, std::memory_order_relaxed);
    limbo_bytes_.fetch_sub(freed_bytes, std::memory_order_relaxed);
  }
  while (keep != nullptr) {
    Orphan* next = keep->next;
    // [acquires: MR_ORPHANS]
    Orphan* cur_head = orphans_.load(std::memory_order_acquire);
    do {
      keep->next = cur_head;
    } while (!orphans_.compare_exchange_weak(cur_head, keep,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire));
    keep = next;
  }
}

std::size_t EpochDomain::drain_for_testing() {
  std::size_t freed = 0;
  // All threads must be quiescent; free every limbo segment of every record
  // that is not claimed by the calling thread, then the caller's own, then
  // all orphans.
  ThreadRecord* self = local_record();
  assert(self->nesting == 0 && "drain_for_testing() under an active guard");
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    // Only safe because the caller asserts global quiescence: exited threads
    // already orphaned their items, and `self` is the only live record that
    // may still hold limbo entries. Draining other in-use records would race
    // with their owners, so skip them.
    if (rec != self && rec->in_use.load(std::memory_order_acquire)) continue;
    for (Segment& seg : rec->limbo) {
      freed += free_segment(seg);  // free_segment updates the counters
    }
    rec->limbo.clear();
  }
  Orphan* head = orphans_.exchange(nullptr, std::memory_order_acq_rel);
  std::uint64_t orphan_freed = 0;
  std::size_t orphan_bytes = 0;
  while (head != nullptr) {
    Orphan* next = head->next;
    head->item.deleter(head->item.ptr);
    orphan_bytes += head->item.bytes;
    delete head;
    ++orphan_freed;
    head = next;
  }
  if (orphan_freed != 0) {
    freed_total_.fetch_add(orphan_freed, std::memory_order_relaxed);
    limbo_bytes_.fetch_sub(orphan_bytes, std::memory_order_relaxed);
  }
  return freed + orphan_freed;
}

}  // namespace cachetrie::mr
