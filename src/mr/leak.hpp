// leak.hpp — the "do nothing" reclamation policy.
//
// Never frees retired nodes. Two uses:
//   * ablation benches isolate the cost of EBR/HP by comparing against this
//     policy (paper substitution note: the JVM's GC amortizes reclamation
//     outside the measured operation, so LeakReclaimer is the closest
//     analogue to what the paper's numbers actually measured);
//   * single-shot tests where process teardown reclaims everything anyway.
#pragma once

#include <atomic>
#include <cstdint>

#include "mr/reclaimer.hpp"

namespace cachetrie::mr {

struct LeakReclaimer {
  struct Guard {};
  static Guard pin() noexcept { return {}; }
  template <typename T>
  static void retire(T*) noexcept {
    leaked_.fetch_add(1, std::memory_order_relaxed);
  }
  static void retire_raw(void*, Deleter) noexcept {
    leaked_.fetch_add(1, std::memory_order_relaxed);
  }
  static void retire_raw_sized(void*, Deleter, std::size_t) noexcept {
    leaked_.fetch_add(1, std::memory_order_relaxed);
  }
  static std::uint64_t leaked_count() noexcept {
    return leaked_.load(std::memory_order_relaxed);
  }

 private:
  static inline std::atomic<std::uint64_t> leaked_{0};
};

}  // namespace cachetrie::mr
