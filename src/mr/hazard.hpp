// hazard.hpp — hazard-pointer reclamation (Michael, "Hazard Pointers: Safe
// Memory Reclamation for Lock-Free Objects", TPDS 2004).
//
// Each thread owns a small fixed set of hazard slots. Before dereferencing a
// shared pointer, a reader publishes it in a slot and re-validates the
// source; a retired node is freed only when no published slot holds it.
//
// Compared to EBR this bounds unreclaimed garbage by O(threads * slots) but
// costs one seq_cst store per protected hop — which is precisely why every
// data structure in this repo defaults to EBR (a trie descent would need a
// store per level). The domain is provided, fully tested, for structures
// with bounded hops per operation; `bench/ablation_cache` quantifies what
// reclamation costs on the write path.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mr/reclaimer.hpp"
#include "util/padded.hpp"

namespace cachetrie::mr {

class HazardDomain {
 public:
  static constexpr int kSlotsPerThread = 8;

  static HazardDomain& instance();

  /// `scan_threshold` = retired-list length that triggers an automatic
  /// scan. 0 means: take CACHETRIE_HP_SCAN_THRESHOLD from the environment,
  /// falling back to kDefaultScanThreshold. Tunable so the stall-fallback
  /// tests can force frequent (or suppress automatic) scans.
  explicit HazardDomain(std::size_t scan_threshold = 0);
  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  /// RAII hazard slot. Acquire with make_hazard(); protects one pointer at a
  /// time. Slots are claimed/released in LIFO order per thread.
  class HazardPtr {
   public:
    HazardPtr(HazardPtr&& other) noexcept
        : slot_(other.slot_), owner_(other.owner_) {
      other.slot_ = nullptr;
      other.owner_ = nullptr;
    }
    HazardPtr(const HazardPtr&) = delete;
    HazardPtr& operator=(const HazardPtr&) = delete;
    HazardPtr& operator=(HazardPtr&&) = delete;
    ~HazardPtr();

    /// Publish-and-validate loop: returns a pointer read from `src` that is
    /// guaranteed protected until reset/destruction.
    template <typename T>
    T* protect(const std::atomic<T*>& src) noexcept {
      T* p = src.load(std::memory_order_acquire);
      while (true) {
        // [publishes: HP_PUBLISH]
        slot_->store(p, std::memory_order_seq_cst);
        T* q = src.load(std::memory_order_seq_cst);
        if (q == p) return p;
        p = q;
      }
    }

    /// Protect an already-loaded pointer; caller must re-validate that the
    /// pointer is still reachable after this returns.
    void set(void* p) noexcept {
      slot_->store(p, std::memory_order_seq_cst);
    }

    void reset() noexcept { slot_->store(nullptr, std::memory_order_release); }

   private:
    friend class HazardDomain;
    HazardPtr(std::atomic<void*>* slot, void* owner) noexcept
        : slot_(slot), owner_(owner) {}
    std::atomic<void*>* slot_;
    void* owner_;  // ThreadRecord*, opaque here
  };

  HazardPtr make_hazard();

  void retire(void* p, Deleter deleter);

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  template <typename T>
  void retire(T* p) {
    retire(static_cast<void*>(p), &delete_as<T>);
  }

  /// Scan all hazard slots and free every retired node not protected.
  /// Returns the number of objects freed. Invoked automatically when a
  /// thread's retired list grows past the scan threshold.
  std::size_t scan();

  /// Free everything still retired. Only valid with no live hazard slots.
  std::size_t drain_for_testing();

  std::uint64_t retired_count() const noexcept {
    return retired_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_count() const noexcept {
    return freed_total_.load(std::memory_order_relaxed);
  }

  void set_scan_threshold(std::size_t n) noexcept {
    scan_threshold_.store(n == 0 ? kDefaultScanThreshold : n,
                          std::memory_order_relaxed);
  }
  std::size_t scan_threshold() const noexcept {
    return scan_threshold_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kDefaultScanThreshold = 128;

 private:
  struct Retired {
    void* ptr;
    Deleter deleter;
  };

  struct alignas(util::kCacheLineSize) ThreadRecord {
    std::atomic<void*> slots[kSlotsPerThread] = {};
    std::uint32_t claimed = 0;  // LIFO watermark, owner-only
    std::vector<Retired> retired;
    std::atomic<bool> in_use{false};
    ThreadRecord* next = nullptr;
  };

  struct Handle {
    HazardDomain* domain = nullptr;
    ThreadRecord* record = nullptr;
    ~Handle();
  };

  ThreadRecord* local_record();
  ThreadRecord* acquire_record();
  void orphan_all(ThreadRecord& rec);
  std::size_t scan_list(std::vector<Retired>& list);

  std::atomic<std::size_t> scan_threshold_{kDefaultScanThreshold};
  std::atomic<ThreadRecord*> records_{nullptr};
  std::atomic<std::uint64_t> retired_total_{0};
  std::atomic<std::uint64_t> freed_total_{0};
  // Orphaned retired items from exited threads (mutex-free: swapped through
  // an atomic pointer to a heap vector).
  std::atomic<std::vector<Retired>*> orphans_{nullptr};

  friend struct Handle;
};

/// Policy adapter. Note: HazardReclaimer's Guard does NOT protect trie
/// descents by itself (hazard pointers protect single hops, via HazardPtr);
/// data structures that traverse unboundedly deep paths must use
/// EpochReclaimer, which is why it is the repo-wide default.
struct HazardReclaimer {
  struct Guard {};
  static Guard pin() { return {}; }
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  template <typename T>
  static void retire(T* p) {
    HazardDomain::instance().retire(p);
  }
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  static void retire_raw(void* p, Deleter d) {
    HazardDomain::instance().retire(p, d);
  }
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  static void retire_raw_sized(void* p, Deleter d, std::size_t) {
    // Hazard garbage is already bounded by O(threads * slots); the byte
    // hint only matters for the epoch domain's limbo cap.
    HazardDomain::instance().retire(p, d);
  }
};

}  // namespace cachetrie::mr
