#include "mr/hazard.hpp"

#include <algorithm>
#include <cstdlib>

namespace cachetrie::mr {

HazardDomain::HazardDomain(std::size_t scan_threshold) {
  if (scan_threshold == 0) {
    if (const char* s = std::getenv("CACHETRIE_HP_SCAN_THRESHOLD")) {
      scan_threshold = static_cast<std::size_t>(std::strtoull(s, nullptr, 10));
    }
  }
  set_scan_threshold(scan_threshold);
}

HazardDomain& HazardDomain::instance() {
  static HazardDomain domain;
  return domain;
}

HazardDomain::ThreadRecord* HazardDomain::acquire_record() {
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    bool expected = false;
    if (!rec->in_use.load(std::memory_order_relaxed) &&
        rec->in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
      return rec;
    }
  }
  auto* rec = new ThreadRecord();
  rec->in_use.store(true, std::memory_order_relaxed);
  ThreadRecord* head = records_.load(std::memory_order_acquire);
  do {
    rec->next = head;
  } while (!records_.compare_exchange_weak(head, rec,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire));
  return rec;
}

HazardDomain::ThreadRecord* HazardDomain::local_record() {
  thread_local Handle handle;
  if (handle.record == nullptr) {
    handle.domain = this;
    handle.record = acquire_record();
  }
  assert(handle.domain == this &&
         "HazardDomain: multiple domains per thread are not supported");
  return handle.record;
}

HazardDomain::Handle::~Handle() {
  if (record == nullptr) return;
  assert(record->claimed == 0 && "thread exited holding a hazard pointer");
  domain->orphan_all(*record);
  record->in_use.store(false, std::memory_order_release);
}

HazardDomain::HazardPtr HazardDomain::make_hazard() {
  ThreadRecord* rec = local_record();
  assert(rec->claimed < kSlotsPerThread && "hazard slots exhausted");
  std::atomic<void*>* slot = &rec->slots[rec->claimed++];
  return HazardPtr{slot, rec};
}

HazardDomain::HazardPtr::~HazardPtr() {
  if (slot_ == nullptr) return;
  slot_->store(nullptr, std::memory_order_release);
  auto* rec = static_cast<ThreadRecord*>(owner_);
  // LIFO discipline: the most recently claimed slot is released first.
  assert(&rec->slots[rec->claimed - 1] == slot_ &&
         "hazard pointers must be released in LIFO order");
  --rec->claimed;
}

void HazardDomain::retire(void* p, Deleter deleter) {
  ThreadRecord* rec = local_record();
  rec->retired.push_back(Retired{p, deleter});
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (rec->retired.size() >= scan_threshold()) {
    scan_list(rec->retired);
  }
}

std::size_t HazardDomain::scan_list(std::vector<Retired>& list) {
  // Snapshot every published hazard.
  std::vector<void*> protected_ptrs;
  protected_ptrs.reserve(64);
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    for (const auto& slot : rec->slots) {
      // [acquires: HP_PUBLISH]
      void* p = slot.load(std::memory_order_seq_cst);
      if (p != nullptr) protected_ptrs.push_back(p);
    }
  }
  std::sort(protected_ptrs.begin(), protected_ptrs.end());

  std::size_t freed = 0;
  std::vector<Retired> keep;
  keep.reserve(list.size());
  for (const Retired& r : list) {
    if (std::binary_search(protected_ptrs.begin(), protected_ptrs.end(),
                           r.ptr)) {
      keep.push_back(r);
    } else {
      r.deleter(r.ptr);
      ++freed;
    }
  }
  list.swap(keep);
  if (freed != 0) freed_total_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

std::size_t HazardDomain::scan() {
  // Also pick up orphans from exited threads.
  std::vector<Retired>* orphans =
      orphans_.exchange(nullptr, std::memory_order_acq_rel);
  ThreadRecord* rec = local_record();
  if (orphans != nullptr) {
    rec->retired.insert(rec->retired.end(), orphans->begin(), orphans->end());
    delete orphans;
  }
  return scan_list(rec->retired);
}

void HazardDomain::orphan_all(ThreadRecord& rec) {
  if (rec.retired.empty()) return;
  auto* mine = new std::vector<Retired>(std::move(rec.retired));
  rec.retired.clear();
  // Merge with any existing orphan batch.
  while (true) {
    std::vector<Retired>* cur = orphans_.load(std::memory_order_acquire);
    if (cur == nullptr) {
      std::vector<Retired>* expected = nullptr;
      if (orphans_.compare_exchange_strong(expected, mine,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        return;
      }
    } else if (orphans_.compare_exchange_strong(cur, nullptr,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
      mine->insert(mine->end(), cur->begin(), cur->end());
      delete cur;
    }
  }
}

std::size_t HazardDomain::drain_for_testing() {
  std::size_t freed = scan();
  // With no live hazards, a second scan frees anything the first pass
  // re-queued; everything must go.
  freed += scan();
  return freed;
}

}  // namespace cachetrie::mr
