// thread_team.hpp — barrier-synchronized thread teams for the parallel
// benchmarks (Figs. 11-13): all threads start their measured section at the
// same instant; the reported time is the makespan from the first thread's
// start to the last thread's finish.
//
// Each worker timestamps its own start and end. (Timing from the
// coordinating thread is wrong on oversubscribed/single-core hosts: a
// worker can run to completion before the coordinator is rescheduled after
// the barrier, yielding a zero measurement.)
#pragma once

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

namespace cachetrie::harness {

/// Runs body(t) on `threads` threads; returns the makespan in milliseconds.
template <typename Body>
double run_team_ms(int threads, Body&& body) {
  using Clock = std::chrono::steady_clock;
  std::atomic<std::int64_t> earliest{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> latest{std::numeric_limits<std::int64_t>::min()};
  std::barrier start{threads};
  std::vector<std::thread> team;
  team.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      start.arrive_and_wait();
      const std::int64_t t0 = Clock::now().time_since_epoch().count();
      body(t);
      const std::int64_t t1 = Clock::now().time_since_epoch().count();
      std::int64_t seen = earliest.load(std::memory_order_relaxed);
      while (t0 < seen && !earliest.compare_exchange_weak(
                              seen, t0, std::memory_order_relaxed,
                              std::memory_order_relaxed)) {
      }
      seen = latest.load(std::memory_order_relaxed);
      while (t1 > seen && !latest.compare_exchange_weak(
                              seen, t1, std::memory_order_relaxed,
                              std::memory_order_relaxed)) {
      }
    });
  }
  for (auto& th : team) th.join();
  const auto ns = latest.load(std::memory_order_relaxed) -
                  earliest.load(std::memory_order_relaxed);
  return static_cast<double>(ns) *
         (1000.0 * static_cast<double>(Clock::period::num) /
          static_cast<double>(Clock::period::den));
}

}  // namespace cachetrie::harness
