// runner.hpp — the measurement protocol of the paper's evaluation (§5),
// transplanted from ScalaMeter to native code:
//
//   1. run the benchmark body repeatedly until the coefficient of variation
//      over a sliding window drops below a threshold (warmup detected), or
//      a warmup budget is exhausted;
//   2. run `reps` measured repetitions;
//   3. report mean and standard deviation.
//
// The JVM original also forks fresh VM processes; a native binary has no
// JIT or GC to isolate, so process forking is intentionally dropped
// (documented in EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cstdlib>
#include <string>

#include "harness/stats.hpp"

namespace cachetrie::harness {

struct MeasureOptions {
  std::size_t min_warmup = 2;
  std::size_t max_warmup = 12;
  double cov_threshold = 0.10;
  std::size_t cov_window = 3;
  std::size_t reps = 5;
};

/// Scale profile: container-friendly sizes by default; REPRO_SCALE=paper
/// selects the paper's exact sizes (needs a real multicore and ~8 GB), and
/// REPRO_SCALE=smoke shrinks everything for CI-style runs.
enum class Scale { kSmoke, kDefault, kPaper };

inline Scale scale_from_env() {
  const char* env = std::getenv("REPRO_SCALE");
  if (env == nullptr) return Scale::kDefault;
  const std::string s{env};
  if (s == "paper") return Scale::kPaper;
  if (s == "smoke") return Scale::kSmoke;
  return Scale::kDefault;
}

/// Human/JSON name of the active scale profile.
inline const char* scale_name() {
  switch (scale_from_env()) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kPaper:
      return "paper";
    default:
      return "default";
  }
}

/// Picks one of three values by the active scale profile.
template <typename T>
T by_scale(T smoke, T dflt, T paper) {
  switch (scale_from_env()) {
    case Scale::kSmoke:
      return smoke;
    case Scale::kPaper:
      return paper;
    default:
      return dflt;
  }
}

/// Milliseconds consumed by fn().
template <typename F>
double time_ms(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Full protocol: `body()` must execute one complete benchmark iteration
/// and return its duration in milliseconds (so it can exclude setup).
template <typename Body>
Summary measure(Body&& body, const MeasureOptions& opts = {}) {
  Summary summary;
  SlidingCov warm{opts.cov_window};
  std::size_t iters = 0;
  while (iters < opts.max_warmup) {
    warm.add(body());
    ++iters;
    if (iters >= opts.min_warmup && warm.full() &&
        warm.cov() < opts.cov_threshold) {
      break;
    }
  }
  summary.warmup_iters = iters;

  RunningStats rs;
  for (std::size_t r = 0; r < opts.reps; ++r) {
    rs.add(body());
  }
  summary.mean_ms = rs.mean();
  summary.stddev_ms = rs.stddev();
  summary.min_ms = rs.min();
  summary.max_ms = rs.max();
  summary.reps = rs.count();
  return summary;
}

}  // namespace cachetrie::harness
