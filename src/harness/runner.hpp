// runner.hpp — the measurement protocol of the paper's evaluation (§5),
// transplanted from ScalaMeter to native code:
//
//   1. run the benchmark body repeatedly until the coefficient of variation
//      over a sliding window drops below a threshold (warmup detected), or
//      a warmup budget is exhausted;
//   2. run `reps` measured repetitions;
//   3. report mean and standard deviation.
//
// The JVM original also forks fresh VM processes; a native binary has no
// JIT or GC to isolate, so process forking is intentionally dropped
// (documented in EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "harness/stats.hpp"
#include "obs/latency.hpp"
#include "obs/tsc.hpp"

namespace cachetrie::harness {

struct MeasureOptions {
  std::size_t min_warmup = 2;
  std::size_t max_warmup = 12;
  double cov_threshold = 0.10;
  std::size_t cov_window = 3;
  std::size_t reps = 5;
};

/// Scale profile: container-friendly sizes by default; REPRO_SCALE=paper
/// selects the paper's exact sizes (needs a real multicore and ~8 GB), and
/// REPRO_SCALE=smoke shrinks everything for CI-style runs.
enum class Scale { kSmoke, kDefault, kPaper };

inline Scale scale_from_env() {
  const char* env = std::getenv("REPRO_SCALE");
  if (env == nullptr) return Scale::kDefault;
  const std::string s{env};
  if (s == "paper") return Scale::kPaper;
  if (s == "smoke") return Scale::kSmoke;
  return Scale::kDefault;
}

/// Human/JSON name of the active scale profile.
inline const char* scale_name() {
  switch (scale_from_env()) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kPaper:
      return "paper";
    default:
      return "default";
  }
}

/// Picks one of three values by the active scale profile.
template <typename T>
T by_scale(T smoke, T dflt, T paper) {
  switch (scale_from_env()) {
    case Scale::kSmoke:
      return smoke;
    case Scale::kPaper:
      return paper;
    default:
      return dflt;
  }
}

/// Milliseconds consumed by fn().
template <typename F>
double time_ms(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Full protocol: `body()` must execute one complete benchmark iteration
/// and return its duration in milliseconds (so it can exclude setup).
template <typename Body>
Summary measure(Body&& body, const MeasureOptions& opts = {}) {
  Summary summary;
  SlidingCov warm{opts.cov_window};
  std::size_t iters = 0;
  while (iters < opts.max_warmup) {
    warm.add(body());
    ++iters;
    if (iters >= opts.min_warmup && warm.full() &&
        warm.cov() < opts.cov_threshold) {
      break;
    }
  }
  summary.warmup_iters = iters;

  RunningStats rs;
  for (std::size_t r = 0; r < opts.reps; ++r) {
    rs.add(body());
  }
  summary.mean_ms = rs.mean();
  summary.stddev_ms = rs.stddev();
  summary.min_ms = rs.min();
  summary.max_ms = rs.max();
  summary.reps = rs.count();
  return summary;
}

/// One latency quantile aggregated across measurement passes. Units are
/// nanoseconds (not ms): per-op latencies live in the 10ns–10µs range and
/// the bench schema's *_ms fields are reused verbatim by add_latency().
struct LatencyQuantile {
  double mean_ns = 0.0;
  double stddev_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
};

/// Tail-latency report for one benchmark cell: p50/p90/p99/p999 of the
/// per-operation latency distribution, each summarized over `passes`
/// independent passes so a stddev is available for noise gating.
struct LatencySummary {
  LatencyQuantile p50;
  LatencyQuantile p90;
  LatencyQuantile p99;
  LatencyQuantile p999;
  std::uint64_t ops_per_pass = 0;
  std::size_t passes = 0;
};

/// Per-operation latency protocol. `per_op(i)` executes the i-th operation;
/// each of `passes` passes times all `ops` operations individually on the
/// TSC clock into a log2-sub-bucketed histogram (≤1/16 relative error),
/// then the per-pass quantiles are combined with Welford so the artifact
/// cells carry a cross-pass stddev. Runs *after* the throughput reps by
/// convention — the structure is warm and the timing cells are unaffected.
template <typename PerOp>
LatencySummary measure_latency(PerOp&& per_op, std::uint64_t ops,
                               std::size_t passes = 3) {
  // Force calibration outside the timed region (first call busy-waits).
  const double ns_per_tick = obs::tsc::calibration().ns_per_tick;
  RunningStats q50, q90, q99, q999;
  for (std::size_t p = 0; p < passes; ++p) {
    obs::LatencyHistogram h;
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::uint64_t t0 = obs::tsc::now();
      per_op(i);
      const std::uint64_t t1 = obs::tsc::now();
      h.record(t1 - t0);
    }
    q50.add(static_cast<double>(h.quantile(0.50)) * ns_per_tick);
    q90.add(static_cast<double>(h.quantile(0.90)) * ns_per_tick);
    q99.add(static_cast<double>(h.quantile(0.99)) * ns_per_tick);
    q999.add(static_cast<double>(h.quantile(0.999)) * ns_per_tick);
  }
  const auto pack = [](const RunningStats& rs) {
    return LatencyQuantile{rs.mean(), rs.stddev(), rs.min(), rs.max()};
  };
  LatencySummary out;
  out.p50 = pack(q50);
  out.p90 = pack(q90);
  out.p99 = pack(q99);
  out.p999 = pack(q999);
  out.ops_per_pass = ops;
  out.passes = passes;
  return out;
}

}  // namespace cachetrie::harness
