// table.hpp — aligned plain-text tables for the figure-reproduction
// binaries, formatted like the paper's reports: one row per x-axis point,
// one column per data structure, with multipliers normalized against a
// chosen baseline column (Fig. 9 normalizes against the skip list; the
// running-time figures read naturally against CHM).
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace cachetrie::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(os, headers_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) rule += "+";
    }
    os << rule << "\n";
    for (const auto& row : rows_) print_row(os, row, widths);
  }

  static std::string fmt(double v, int precision = 2) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
  }

  static std::string fmt_ratio(double v, double baseline) {
    if (baseline == 0.0) return "n/a";
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(2) << (v / baseline) << "x";
    return ss.str();
  }

  static std::string fmt_mean_std(double mean, double std, int precision = 2) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << mean << " ±"
       << std::setprecision(precision) << std;
    return ss.str();
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << " " << cell << std::string(widths[c] - cell.size() + 1, ' ');
      if (c + 1 < widths.size()) os << "|";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cachetrie::harness
