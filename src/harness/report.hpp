// report.hpp — structured benchmark artifacts.
//
// Every bench binary prints its human tables as before, and *additionally*
// serializes the same cells into a JSON artifact ("cachetrie-bench-v1")
// so results are diffable by scripts/perf_gate.py and tables in
// EXPERIMENTS.md can be regenerated instead of hand-transcribed.
//
// Schema (one object per file):
//   {
//     "schema": "cachetrie-bench-v1",
//     "bench": "<binary name>",
//     "env": { "repro_scale", "hardware_threads", "metrics_compiled",
//              "testkit_compiled", "assertions", "compiler", "pointer_bits" },
//     "results": [ { "structure", "params": {k:v strings},
//                    "mean_ms", "stddev_ms", "min_ms", "max_ms",
//                    "reps", "warmup_iters", "ops_per_rep"? } ... ],
//     "metrics": { obs::Snapshot JSON }   // registry state at write()
//   }
//
// The artifact lands in `BENCH_<bench>.json` in the working directory, or
// in $CACHETRIE_BENCH_OUT if that names a directory.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "obs/metrics.hpp"

namespace cachetrie::harness {

/// Ordered key/value parameters identifying one benchmark cell (sizes,
/// thread counts, operation mix, ...). Values are strings so the schema
/// stays uniform; perf_gate.py keys cells on (structure, params).
using BenchParams = std::vector<std::pair<std::string, std::string>>;

class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  /// Adds one measured cell. `ops_per_rep` (0 = unknown) lets consumers
  /// derive throughput without re-parsing params.
  void add(std::string structure, BenchParams params, const Summary& s,
           std::uint64_t ops_per_rep = 0) {
    cells_.push_back(Cell{std::move(structure), std::move(params), s,
                          ops_per_rep});
  }

  /// Adds four percentile cells (p50/p90/p99/p999) for one latency-measured
  /// cell. Values are *nanoseconds* carried in the schema's mean_ms/
  /// stddev_ms/min_ms/max_ms fields; the params gain {"stat":"pXX"} and
  /// {"unit":"ns"} so consumers (perf_gate.py, table generators) can tell
  /// them from wall-clock timing cells.
  void add_latency(const std::string& structure, const BenchParams& params,
                   const LatencySummary& ls) {
    const std::pair<const char*, const LatencyQuantile*> quantiles[] = {
        {"p50", &ls.p50}, {"p90", &ls.p90},
        {"p99", &ls.p99}, {"p999", &ls.p999}};
    for (const auto& [stat, q] : quantiles) {
      BenchParams p = params;
      p.emplace_back("stat", stat);
      p.emplace_back("unit", "ns");
      Summary s;
      s.mean_ms = q->mean_ns;
      s.stddev_ms = q->stddev_ns;
      s.min_ms = q->min_ns;
      s.max_ms = q->max_ns;
      s.reps = ls.passes;
      add(structure, std::move(p), s, ls.ops_per_pass);
    }
  }

  /// `BENCH_<bench>.json`, under $CACHETRIE_BENCH_OUT when set.
  std::string path() const {
    std::string p;
    if (const char* dir = std::getenv("CACHETRIE_BENCH_OUT")) {
      p = dir;
      if (!p.empty() && p.back() != '/') p += '/';
    }
    p += "BENCH_" + bench_ + ".json";
    return p;
  }

  /// Writes the artifact (including a registry snapshot taken now) and
  /// prints where it went. Returns false on I/O failure — benches treat
  /// that as fatal so CI never silently drops an artifact.
  bool write() const {
    const std::string file = path();
    std::ofstream os{file};
    if (!os) {
      std::fprintf(stderr, "bench report: cannot open %s\n", file.c_str());
      return false;
    }
    write_json(os);
    os.flush();
    if (!os) {
      std::fprintf(stderr, "bench report: write to %s failed\n", file.c_str());
      return false;
    }
    std::printf("\nwrote %s (%zu result cells)\n", file.c_str(),
                cells_.size());
    return true;
  }

  void write_json(std::ostream& os) const {
    os << "{\"schema\":\"cachetrie-bench-v1\",\"bench\":\"";
    obs::detail_emit::json_escape(os, bench_);
    os << "\",\"env\":{\"repro_scale\":\"" << scale_name()
       << "\",\"hardware_threads\":" << std::thread::hardware_concurrency()
       << ",\"metrics_compiled\":"
       << (obs::kMetricsCompiled ? "true" : "false")
       << ",\"testkit_compiled\":" << (kTestkitCompiled ? "true" : "false")
       << ",\"assertions\":" << (kAssertionsEnabled ? "true" : "false")
       << ",\"compiler\":\"";
    obs::detail_emit::json_escape(os, compiler_id());
    os << "\",\"pointer_bits\":" << (8 * sizeof(void*))
       << "},\"results\":[";
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      if (i != 0) os << ",";
      const Cell& c = cells_[i];
      os << "{\"structure\":\"";
      obs::detail_emit::json_escape(os, c.structure);
      os << "\",\"params\":{";
      for (std::size_t p = 0; p < c.params.size(); ++p) {
        if (p != 0) os << ",";
        os << "\"";
        obs::detail_emit::json_escape(os, c.params[p].first);
        os << "\":\"";
        obs::detail_emit::json_escape(os, c.params[p].second);
        os << "\"";
      }
      os << "},\"mean_ms\":" << json_double(c.summary.mean_ms)
         << ",\"stddev_ms\":" << json_double(c.summary.stddev_ms)
         << ",\"min_ms\":" << json_double(c.summary.min_ms)
         << ",\"max_ms\":" << json_double(c.summary.max_ms)
         << ",\"reps\":" << c.summary.reps
         << ",\"warmup_iters\":" << c.summary.warmup_iters;
      if (c.ops_per_rep != 0) {
        os << ",\"ops_per_rep\":" << c.ops_per_rep;
      }
      os << "}";
    }
    os << "],\"metrics\":";
    obs::registry().snapshot().write_json(os);
    os << "}";
  }

 private:
  struct Cell {
    std::string structure;
    BenchParams params;
    Summary summary;
    std::uint64_t ops_per_rep;
  };

#if defined(CACHETRIE_TESTKIT) && CACHETRIE_TESTKIT
  static constexpr bool kTestkitCompiled = true;
#else
  static constexpr bool kTestkitCompiled = false;
#endif
#if defined(NDEBUG)
  static constexpr bool kAssertionsEnabled = false;
#else
  static constexpr bool kAssertionsEnabled = true;
#endif

  static const char* compiler_id() {
#if defined(__VERSION__)
    return __VERSION__;
#else
    return "unknown";
#endif
  }

  /// JSON has no inf/nan literals; clamp pathological values to 0.
  static std::string json_double(double v) {
    if (!std::isfinite(v)) return "0";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  std::string bench_;
  std::vector<Cell> cells_;
};

}  // namespace cachetrie::harness
