// stats.hpp — summary statistics for benchmark measurements.
//
// Implements the aggregation side of the paper's methodology (§5): repeated
// measurements, mean and standard deviation, and the coefficient of
// variation that drives warmup detection ("we detect the warmup when the
// coefficient of variance drops below a threshold").
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace cachetrie::harness {

/// Streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// *Sample* variance (Bessel-corrected, n-1 denominator) — the reps are a
  /// sample of the benchmark's run distribution, matching the ScalaMeter
  /// protocol EXPERIMENTS.md specifies. Locked in by
  /// Stats.StddevIsSampleNotPopulation; do not "simplify" to m2_/n.
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }

  /// Coefficient of variation: stddev / mean (0 when undefined).
  double cov() const noexcept {
    return (n_ < 2 || mean_ == 0.0) ? 0.0 : stddev() / mean_;
  }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// CoV over the most recent `window` samples — warmup detection looks at a
/// sliding window so early cold-cache iterations age out.
class SlidingCov {
 public:
  explicit SlidingCov(std::size_t window) : window_(window) {}

  void add(double x) {
    samples_.push_back(x);
    if (samples_.size() > window_) {
      samples_.erase(samples_.begin());
    }
  }

  bool full() const noexcept { return samples_.size() >= window_; }

  double cov() const noexcept {
    if (samples_.size() < 2) return std::numeric_limits<double>::infinity();
    RunningStats rs;
    for (double s : samples_) rs.add(s);
    return rs.cov();
  }

 private:
  std::size_t window_;
  std::vector<double> samples_;
};

/// Final report for one benchmark cell.
struct Summary {
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  std::size_t reps = 0;
  std::size_t warmup_iters = 0;
};

}  // namespace cachetrie::harness
