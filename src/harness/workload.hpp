// workload.hpp — key-set generators for the paper's benchmark workloads.
//
// §5 of the paper defines three write workloads:
//   * single-threaded insert of N distinct keys (Fig. 10);
//   * HIGH contention: every thread inserts the same keys in the same order
//     (Fig. 11: "The threads insert the same set of keys, in the same
//     order, so we expect a high contention");
//   * LOW contention: threads insert disjoint key sets (Fig. 12).
// Lookup workloads (Figs. 10, 13) probe every pre-inserted key once.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace cachetrie::harness {

/// N distinct pseudo-random 64-bit keys (deterministic per seed).
inline std::vector<std::uint64_t> random_keys(std::size_t n,
                                              std::uint64_t seed = 42) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  util::SplitMix64 gen{seed};
  for (std::size_t i = 0; i < n; ++i) keys.push_back(gen.next());
  return keys;
}

/// Sequential keys 0..n-1 shuffled (integer keys, like the paper's boxed
/// Ints/Longs, exercising the hash mixer rather than raw entropy).
inline std::vector<std::uint64_t> shuffled_sequential_keys(
    std::size_t n, std::uint64_t seed = 42) {
  std::vector<std::uint64_t> keys(n);
  std::iota(keys.begin(), keys.end(), 0);
  util::XorShift64Star rng{seed};
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(keys[i - 1], keys[j]);
  }
  return keys;
}

/// HIGH-contention workload: every thread gets the same vector.
struct SharedKeys {
  std::vector<std::uint64_t> keys;

  explicit SharedKeys(std::size_t n, std::uint64_t seed = 42)
      : keys(shuffled_sequential_keys(n, seed)) {}

  const std::vector<std::uint64_t>& for_thread(int) const { return keys; }
  std::size_t total_distinct() const { return keys.size(); }
};

/// LOW-contention workload: thread t owns keys [t*per, (t+1)*per).
struct DisjointKeys {
  std::vector<std::vector<std::uint64_t>> per_thread;

  DisjointKeys(int threads, std::size_t per, std::uint64_t seed = 42) {
    per_thread.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      std::vector<std::uint64_t> keys(per);
      std::iota(keys.begin(), keys.end(),
                static_cast<std::uint64_t>(t) * per);
      util::XorShift64Star rng{seed + static_cast<std::uint64_t>(t)};
      for (std::size_t i = per; i > 1; --i) {
        const std::size_t j = rng.next_below(i);
        std::swap(keys[i - 1], keys[j]);
      }
      per_thread.push_back(std::move(keys));
    }
  }

  const std::vector<std::uint64_t>& for_thread(int t) const {
    return per_thread[static_cast<std::size_t>(t)];
  }
};

}  // namespace cachetrie::harness
