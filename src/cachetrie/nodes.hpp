// nodes.hpp — node types of the cache-trie (paper Fig. 1 and Table 1).
//
// | Name   | Description                                              |
// |--------|----------------------------------------------------------|
// | SNode  | leaf: one key-value pair + txn field                     |
// | ANode  | inner: array of 4 (narrow) or 16 (wide) atomic pointers  |
// | ENode  | announces that an ANode is being expanded (or, in this   |
// |        | implementation, compressed — see `compress` flag)        |
// | LNode  | immutable list node for full 64-bit hash collisions      |
// | FNode  | freeze wrapper: prevents replacing an ANode/LNode entry  |
// | FVNode | sentinel: prevents writing to an empty (null) entry      |
// | FSNode | sentinel stored in SNode.txn: the SNode is frozen        |
// | NoTxn  | sentinel stored in SNode.txn: no transaction in progress |
//
// The Scala original distinguishes node types with runtime class tests; here
// every node starts with a one-byte `Kind` tag. Only SNode and LNode carry
// the key/value types, so the structural nodes (ANode, ENode, FNode and all
// sentinels) are untemplated and shared across instantiations.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>

namespace cachetrie::detail {

enum class Kind : std::uint8_t {
  kSNode,
  kANode,
  kENode,
  kLNode,
  kFNode,
  kFVNode,   // sentinel: frozen null slot
  kFSNode,   // sentinel: frozen SNode (lives in txn)
  kNoTxn,    // sentinel: idle txn
  kPending,  // sentinel: ENode result not yet computed
};

struct NodeBase {
  Kind kind;
};

/// Process-wide sentinel singletons. They are compared by address and never
/// dereferenced beyond the kind tag, so sharing them across tries is safe.
struct Sentinels {
  static NodeBase* fv() noexcept {
    static NodeBase n{Kind::kFVNode};
    return &n;
  }
  static NodeBase* fs() noexcept {
    static NodeBase n{Kind::kFSNode};
    return &n;
  }
  static NodeBase* no_txn() noexcept {
    static NodeBase n{Kind::kNoTxn};
    return &n;
  }
  static NodeBase* pending() noexcept {
    static NodeBase n{Kind::kPending};
    return &n;
  }
};

/// Inner node: a header directly followed by `length` atomic slots (4 for
/// narrow, 16 for wide). Allocated at exact size so the footprint benches
/// reflect the paper's narrow/wide distinction.
struct ANode : NodeBase {
  std::uint32_t length;

  std::atomic<NodeBase*>* slots() noexcept {
    return reinterpret_cast<std::atomic<NodeBase*>*>(this + 1);
  }
  const std::atomic<NodeBase*>* slots() const noexcept {
    return reinterpret_cast<const std::atomic<NodeBase*>*>(this + 1);
  }

  static std::size_t alloc_size(std::uint32_t len) noexcept {
    return sizeof(ANode) + len * sizeof(std::atomic<NodeBase*>);
  }

  static ANode* make(std::uint32_t len) {
    assert(len == 4 || len == 16);
    void* raw = ::operator new(alloc_size(len));
    auto* a = new (raw) ANode{};
    a->kind = Kind::kANode;
    a->length = len;
    for (std::uint32_t i = 0; i < len; ++i) {
      std::construct_at(a->slots() + i, nullptr);
    }
    return a;
  }

  /// Direct deallocation for unpublished nodes; published nodes go through
  /// the reclaimer with mr::free_raw_storage instead.
  static void destroy(ANode* a) noexcept { ::operator delete(a); }
};

static_assert(sizeof(ANode) % alignof(std::atomic<NodeBase*>) == 0,
              "slot array must start aligned right after the ANode header");

/// Freeze wrapper around an ANode or LNode entry (paper §3.3).
struct FNode : NodeBase {
  NodeBase* frozen;

  static FNode* make(NodeBase* wrapped) {
    assert(wrapped->kind == Kind::kANode || wrapped->kind == Kind::kLNode);
    return new FNode{{Kind::kFNode}, wrapped};
  }
};

/// Announcement that `target` (at `parent->slots()[parentpos]`) is being
/// replaced: expanded narrow->wide when `compress` is false, or compressed
/// (freeze + revive-copy, possibly to null) when true. `result` holds the
/// replacement once computed; Sentinels::pending() until then. A null result
/// (empty after compression) is a valid final value, which is why a pending
/// sentinel is needed where the paper could use null.
struct ENode : NodeBase {
  ANode* parent;
  std::uint32_t parentpos;
  ANode* target;
  std::uint64_t hash;
  std::uint32_t level;
  bool compress;
  std::atomic<NodeBase*> result;

  static ENode* make(ANode* parent, std::uint32_t parentpos, ANode* target,
                     std::uint64_t hash, std::uint32_t level, bool compress) {
    auto* e = new ENode{{Kind::kENode}, parent,   parentpos, target,
                        hash,           level,    compress,  {}};
    e->result.store(Sentinels::pending(), std::memory_order_relaxed);
    return e;
  }
};

/// Leaf node: one key-value pair plus the txn field that coordinates every
/// modification of the pair (paper Fig. 1). txn states:
///   NoTxn    — live, no operation in progress
///   FSNode   — frozen by an expansion/compression; never changes again
///   nullptr  — removal announced; helpers commit null into the parent slot
///   other    — replacement node announced (SNode, ANode or LNode); helpers
///              commit it into the parent slot
///
/// `stamp` is the bounded-memory mode's last-use tick (DESIGN.md §3): set at
/// creation, refreshed with a relaxed store on every hit, read with a relaxed
/// load by eviction horizons. It is advisory — no protocol decision creates a
/// happens-before edge through it, so all its accesses stay relaxed. Unbounded
/// tries leave it 0. Copies made by the freeze/expand protocol carry the
/// source stamp so the copy remains the same logical entry.
template <typename K, typename V>
struct SNode : NodeBase {
  std::uint64_t hash;
  K key;
  V value;
  std::atomic<NodeBase*> txn;
  std::atomic<std::uint64_t> stamp;

  static SNode* make(std::uint64_t hash, const K& key, const V& value,
                     std::uint64_t stamp = 0) {
    auto* s = new SNode{{Kind::kSNode}, hash, key, value, {}, {}};
    s->txn.store(Sentinels::no_txn(), std::memory_order_relaxed);
    s->stamp.store(stamp, std::memory_order_relaxed);
    return s;
  }
};

/// Collision list node for keys whose 64-bit hashes are fully equal
/// (paper §3.2, "list nodes"). Chains are immutable: every update builds a
/// fresh chain and swaps it in with one CAS on the parent slot, so LNodes
/// need no txn field. Chains always hold >= 2 pairs (a 1-pair chain is
/// collapsed back into an SNode).
/// `stamp` is the pair's creation (or last rebuild) tick for the bounded
/// mode's TTL horizon. Chains are immutable, so chain hits do not refresh it —
/// a documented approximation: full-hash collisions are vanishingly rare
/// under the universal hash, and a rebuild re-stamps the surviving pairs'
/// creation stamps unchanged.
template <typename K, typename V>
struct LNode : NodeBase {
  std::uint64_t hash;
  LNode* next;
  K key;
  V value;
  std::uint64_t stamp;

  static LNode* make(std::uint64_t hash, const K& key, const V& value,
                     LNode* next, std::uint64_t stamp = 0) {
    return new LNode{{Kind::kLNode}, hash, next, key, value, stamp};
  }
};

}  // namespace cachetrie::detail
