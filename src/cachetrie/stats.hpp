// stats.hpp — optional operation counters (enabled via Config::collect_stats).
#pragma once

#include <atomic>
#include <cstdint>

namespace cachetrie {

/// Relaxed counters; meaningful totals require external quiescence. Tests
/// use them to assert that specific code paths (expansion, compression,
/// cache hits, sampling) actually ran.
struct Stats {
  std::atomic<std::uint64_t> expansions{0};
  std::atomic<std::uint64_t> compressions{0};
  std::atomic<std::uint64_t> cache_installs{0};
  std::atomic<std::uint64_t> cache_level_changes{0};
  std::atomic<std::uint64_t> cache_fast_hits{0};
  std::atomic<std::uint64_t> cache_misses_recorded{0};
  std::atomic<std::uint64_t> sampling_passes{0};
  std::atomic<std::uint64_t> root_restarts{0};

  void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.fetch_add(1, std::memory_order_relaxed);
  }
};

}  // namespace cachetrie
