// config.hpp — tuning knobs of the cache-trie.
//
// Defaults follow the paper; every knob exists so the ablation benches and
// the property tests can move it.
#pragma once

#include <cstdint>

namespace cachetrie {

struct Config {
  /// Master switch for the auxiliary cache (§3.4). Off reproduces the
  /// paper's "w/o cache" variant used throughout the evaluation.
  bool use_cache = true;

  /// remove() compresses ANodes that became empty (§3.7).
  bool compress = true;

  /// Extension beyond the paper: during compression, an ANode left with a
  /// single live SNode collapses to that SNode (hoisted one level up). The
  /// reachability invariant ("the slot path is a prefix of the hash") is
  /// preserved because a shorter path is still a prefix.
  bool compress_singletons = true;

  /// Cache misses a thread accumulates before triggering a depth-sampling
  /// pass (§3.6; "experimentally set to 2048" in the paper).
  std::uint32_t max_misses = 2048;

  /// Number of padded per-thread miss counters (the paper's
  /// THROUGHPUT_FACTOR * #CPU).
  std::uint32_t miss_slots = 16;

  /// The cache is first created when a slow operation encounters a node at
  /// this trie level or deeper (§3.5: "If the cachee level is 12, inhabit
  /// initializes the cache at level 8").
  std::uint32_t cache_init_trigger_level = 12;
  std::uint32_t cache_init_level = 8;

  /// Bounds for the adaptive cache level. The lower bound keeps the cache
  /// from degenerating into a copy of the root; the upper bound caps the
  /// cache array at 2^max_cache_level pointers.
  std::uint32_t min_cache_level = 8;
  std::uint32_t max_cache_level = 24;

  /// Random trie descents per sampling pass (§3.6: "The thread repeats this
  /// several times").
  std::uint32_t sample_size = 192;

  /// Maintain operation counters (expansions, cache hits, ...). Off by
  /// default: benches must not pay for shared-counter traffic.
  bool collect_stats = false;
};

}  // namespace cachetrie
