// config.hpp — tuning knobs of the cache-trie.
//
// Defaults follow the paper; every knob exists so the ablation benches and
// the property tests can move it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cachetrie {

/// Injectable clock for the bounded-memory mode (DESIGN.md §3). Returns the
/// current tick; tests point it at a test-controlled atomic so TTL expiry is
/// deterministic. A plain function pointer keeps Config trivially copyable.
using TickFn = std::uint64_t (*)();

struct Config {
  /// Master switch for the auxiliary cache (§3.4). Off reproduces the
  /// paper's "w/o cache" variant used throughout the evaluation.
  bool use_cache = true;

  /// remove() compresses ANodes that became empty (§3.7).
  bool compress = true;

  /// Extension beyond the paper: during compression, an ANode left with a
  /// single live SNode collapses to that SNode (hoisted one level up). The
  /// reachability invariant ("the slot path is a prefix of the hash") is
  /// preserved because a shorter path is still a prefix.
  bool compress_singletons = true;

  /// Cache misses a thread accumulates before triggering a depth-sampling
  /// pass (§3.6; "experimentally set to 2048" in the paper).
  std::uint32_t max_misses = 2048;

  /// Number of padded per-thread miss counters (the paper's
  /// THROUGHPUT_FACTOR * #CPU).
  std::uint32_t miss_slots = 16;

  /// The cache is first created when a slow operation encounters a node at
  /// this trie level or deeper (§3.5: "If the cachee level is 12, inhabit
  /// initializes the cache at level 8").
  std::uint32_t cache_init_trigger_level = 12;
  std::uint32_t cache_init_level = 8;

  /// Bounds for the adaptive cache level. The lower bound keeps the cache
  /// from degenerating into a copy of the root; the upper bound caps the
  /// cache array at 2^max_cache_level pointers.
  std::uint32_t min_cache_level = 8;
  std::uint32_t max_cache_level = 24;

  /// Random trie descents per sampling pass (§3.6: "The thread repeats this
  /// several times").
  std::uint32_t sample_size = 192;

  /// Maintain operation counters (expansions, cache hits, ...). Off by
  /// default: benches must not pay for shared-counter traffic.
  bool collect_stats = false;

  // --- bounded-memory mode (DESIGN.md §3; evict.hpp wraps these) ------------
  // The mode is active iff ceiling_bytes != 0 or ttl_ticks != 0; otherwise
  // every knob below is inert and the trie pays one predictable branch.

  /// Hard ceiling on the trie's observed resident bytes (0 = unbounded).
  /// Enforced by backpressure eviction scans run by every writer, so a dead
  /// evictor cannot unbound the footprint.
  std::size_t ceiling_bytes = 0;

  /// TTL in ticks (0 = no TTL): a pair whose stamp is older than
  /// `now - ttl_ticks` is semantically absent and lazily evicted.
  std::uint64_t ttl_ticks = 0;

  /// Initial width of the adaptive LRU window: under ceiling pressure,
  /// pairs idle for more than this many ticks are evictable. The window
  /// halves when a backpressure scan frees nothing and relaxes back once
  /// the footprint drops below 3/4 of the ceiling.
  std::uint64_t lru_idle_ticks = 1024;

  /// Hash paths probed per backpressure scan (the lazy clock hand).
  std::uint32_t evict_probes = 8;

  /// Clock for stamps and horizons; nullptr = a per-trie logical tick that
  /// advances once per operation.
  TickFn tick_fn = nullptr;

  /// Optional process-wide resident-bytes cell this trie mirrors its exact
  /// byte accounting into; evict.hpp points it at the cell its registered
  /// callback gauge reads. Must outlive the trie.
  std::atomic<std::int64_t>* resident_gauge = nullptr;
};

}  // namespace cachetrie
