// evict.hpp — the bounded-memory production cache mode (DESIGN.md §3).
//
// BoundedCacheTrie wraps CacheTrie with a hard byte ceiling and/or TTL:
//   * every pair carries a last-use stamp (a relaxed tick from an injectable
//     clock); lookups refresh it, horizons read it;
//   * a pair older than the TTL horizon is semantically absent and lazily
//     evicted by the first writer whose traversal crosses it;
//   * under ceiling pressure every writer runs a short backpressure scan
//     that evicts pairs idle past an adaptive LRU window — no dedicated
//     evictor thread exists to die, so a stalled or killed thread cannot
//     unbound the footprint (eviction_fault_test proves this);
//   * freed bytes flow through the same retire paths as user removes, so
//     the ceiling is enforced as *observed footprint*: exact double-entry
//     accounting at publish/retire choke points, with retire-limbo bytes
//     visible separately via mr.epoch.limbo_bytes.
//
// BoundedChm is the baseline counterpart: the same stamp/TTL/pressure
// surface over chm::ConcurrentHashMap, with a *derived* byte estimate
// (size() * node_bytes() + table bytes) — the trie's exact accounting is
// the headline, the baseline shows what a conventional design can offer.
//
// All stamp/tick/resident words are relaxed-advisory (no protocol decision
// creates a happens-before edge through them); the eviction CASes reuse the
// declared CT_TXN / CT_SLOT_COMMIT edges (ordering_contracts.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <optional>

#include "cachetrie/cache_trie.hpp"
#include "chashmap/chashmap.hpp"
#include "obs/inventory.hpp"
#include "obs/metrics.hpp"
#include "util/hashing.hpp"

namespace cachetrie::evict {

/// Process-wide resident-bytes cell. Every bounded trie mirrors its exact
/// per-trie accounting into this cell (Config::resident_gauge), so one
/// registered callback gauge reports the process's total bounded footprint
/// without per-trie gauge registrations (which could dangle: the registry
/// has no unregister, but this cell outlives every trie).
inline std::atomic<std::int64_t>& process_resident_bytes() {
  static std::atomic<std::int64_t> cell{0};
  return cell;
}

/// Registers the callback gauge once per process (PR-3 machinery: callback
/// gauges fold external state into snapshots at sample time).
inline void register_resident_gauge() {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::Registry::instance().register_gauge_fn(
        "cachetrie.bounded.resident_bytes",
        [] { return process_resident_bytes().load(std::memory_order_relaxed); });
  });
}

/// Env override for the ceiling: CACHETRIE_CACHE_CEILING_BYTES. Returns 0
/// (unbounded) when unset or unparsable — same strtoull contract as the
/// mr/ env knobs.
inline std::size_t env_ceiling_bytes() {
  const char* s = std::getenv("CACHETRIE_CACHE_CEILING_BYTES");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return 0;
  return static_cast<std::size_t>(v);
}

/// Knobs of the bounded mode. `ceiling_bytes == 0` defers to the env
/// override; if that is unset too, no ceiling is enforced (TTL may still
/// be). See Config for the trie-level fields these map onto.
struct BoundedConfig {
  std::size_t ceiling_bytes = 0;      // 0 -> CACHETRIE_CACHE_CEILING_BYTES
  std::uint64_t ttl_ticks = 0;        // 0 -> no TTL
  std::uint64_t lru_idle_ticks = 1024;
  std::uint32_t evict_probes = 8;
  TickFn tick = nullptr;              // nullptr -> per-structure logical tick
  Config trie;                        // remaining cache-trie knobs
};

/// The production cache mode: CacheTrie with lazy lock-free LRU/TTL
/// eviction under a hard byte ceiling. A thin façade — every operation
/// delegates; the eviction machinery lives inside CacheTrie so it can ride
/// the protocol's own txn announce/commit path.
template <typename K, typename V, typename Hash = util::DefaultHash<K>,
          typename Reclaimer = mr::EpochReclaimer>
class BoundedCacheTrie {
 public:
  using Trie = CacheTrie<K, V, Hash, Reclaimer>;
  using EvictionCounts = typename Trie::EvictionCounts;

  explicit BoundedCacheTrie(BoundedConfig cfg = {})
      : trie_(make_trie_config(cfg)) {
    register_resident_gauge();
  }

  bool insert(const K& key, const V& value) {
    return trie_.insert(key, value);
  }
  bool put_if_absent(const K& key, const V& value) {
    return trie_.put_if_absent(key, value);
  }
  bool replace(const K& key, const V& value) {
    return trie_.replace(key, value);
  }
  bool replace_if_equals(const K& key, const V& expected, const V& desired)
    requires std::equality_comparable<V>
  {
    return trie_.replace_if_equals(key, expected, desired);
  }
  std::optional<V> lookup(const K& key) const { return trie_.lookup(key); }
  bool contains(const K& key) const { return trie_.contains(key); }
  std::optional<V> remove(const K& key) { return trie_.remove(key); }
  bool remove_if_equals(const K& key, const V& expected)
    requires std::equality_comparable<V>
  {
    return trie_.remove_if_equals(key, expected);
  }
  /// Forced eviction of one key (linearizable remove counted as an LRU
  /// eviction) — the test battery races this against user operations.
  std::optional<V> evict(const K& key) { return trie_.evict(key); }

  std::size_t size() const { return trie_.size(); }
  bool empty() const { return trie_.empty(); }
  template <typename F>
  void for_each(F&& fn) const {
    trie_.for_each(static_cast<F&&>(fn));
  }

  std::size_t footprint_bytes() const { return trie_.footprint_bytes(); }
  std::size_t resident_bytes() const { return trie_.resident_bytes(); }
  EvictionCounts eviction_counts() const { return trie_.eviction_counts(); }
  std::uint64_t now_tick() const { return trie_.now_tick(); }
  std::size_t ceiling_bytes() const {
    return trie_.config().ceiling_bytes;
  }
  /// Bytes left under the ceiling; SIZE_MAX when unbounded. Advisory (both
  /// inputs are relaxed-published), which is all the callers want — the
  /// serving layer flips a degraded *hint* on replies, it does not gate
  /// admission on an exact byte count.
  std::size_t resident_headroom_bytes() const {
    const std::size_t c = ceiling_bytes();
    if (c == 0) return std::numeric_limits<std::size_t>::max();
    const std::size_t r = resident_bytes();
    return r >= c ? 0 : c - r;
  }
  /// True once resident bytes cross `frac` of the ceiling — the serving
  /// layer's graceful-degradation signal (net/serve_map.hpp).
  bool near_ceiling(double frac = 0.9) const {
    const std::size_t c = ceiling_bytes();
    return c != 0 && static_cast<double>(resident_bytes()) >=
                         frac * static_cast<double>(c);
  }

  /// The wrapped trie, for tests that need debug_validate() etc.
  Trie& underlying() { return trie_; }
  const Trie& underlying() const { return trie_; }

 private:
  static Config make_trie_config(const BoundedConfig& cfg) {
    Config c = cfg.trie;
    c.ceiling_bytes =
        cfg.ceiling_bytes != 0 ? cfg.ceiling_bytes : env_ceiling_bytes();
    c.ttl_ticks = cfg.ttl_ticks;
    c.lru_idle_ticks = cfg.lru_idle_ticks;
    c.evict_probes = cfg.evict_probes;
    c.tick_fn = cfg.tick;
    c.resident_gauge = &process_resident_bytes();
    return c;
  }

  Trie trie_;
};

/// Baseline counterpart: the same bounded-mode surface over the
/// ConcurrentHashMap. Differences (documented in DESIGN.md §3):
///   * byte accounting is a derived estimate, not double-entry exact;
///   * pressure eviction sweeps bins under bin locks (evict_stale), so a
///     writer parked inside a swept bin's lock blocks that bin's eviction —
///     the baseline's known weakness under faults.
template <typename K, typename V, typename Hash = util::DefaultHash<K>,
          typename Reclaimer = mr::EpochReclaimer>
class BoundedChm {
 public:
  using Map = chm::ConcurrentHashMap<K, V, Hash, Reclaimer>;

  struct EvictionCounts {
    std::uint64_t lru_evictions = 0;
    std::uint64_t ttl_expiries = 0;
    std::uint64_t backpressure_scans = 0;
  };

  explicit BoundedChm(BoundedConfig cfg = {})
      : cfg_(cfg),
        ceiling_(cfg.ceiling_bytes != 0 ? cfg.ceiling_bytes
                                        : env_ceiling_bytes()),
        lru_window_(cfg.lru_idle_ticks == 0 ? 1 : cfg.lru_idle_ticks) {
    register_resident_gauge();
  }

  bool insert(const K& key, const V& value) {
    const std::uint64_t now = tick();
    maybe_backpressure(now);
    expire_target(key, now);
    return map_.insert(key, value, now);
  }

  bool put_if_absent(const K& key, const V& value) {
    const std::uint64_t now = tick();
    maybe_backpressure(now);
    expire_target(key, now);
    return map_.put_if_absent(key, value, now);
  }

  std::optional<V> lookup(const K& key) const {
    const std::uint64_t now = tick();
    return map_.lookup_refresh(key, now, ttl_floor(now));
  }

  bool contains(const K& key) const { return lookup(key).has_value(); }

  std::optional<V> remove(const K& key) {
    const std::uint64_t now = tick();
    maybe_backpressure(now);
    // A corpse is semantically absent: evict it, report nothing removed.
    if (expire_target(key, now)) return std::nullopt;
    return map_.remove(key);
  }

  bool remove_if_equals(const K& key, const V& expected)
    requires std::equality_comparable<V>
  {
    const std::uint64_t now = tick();
    maybe_backpressure(now);
    if (expire_target(key, now)) return false;
    return map_.remove_if_equals(key, expected);
  }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Derived footprint estimate (DESIGN.md §3): table bytes plus
  /// size() * node_bytes(), O(1) — maybe_backpressure polls this on every
  /// write, so the exact traversal (footprint_bytes) is out of the
  /// question. The striped size counter makes this approximate under
  /// concurrency — the trie's exact double-entry accounting is the
  /// contrast the fig14 bench draws.
  std::size_t resident_bytes() const {
    return map_.footprint_estimate_bytes();
  }

  EvictionCounts eviction_counts() const {
    return {lru_evictions_.load(std::memory_order_relaxed),
            ttl_expiries_.load(std::memory_order_relaxed),
            backpressure_scans_.load(std::memory_order_relaxed)};
  }

  std::uint64_t now_tick() const {
    return cfg_.tick != nullptr ? cfg_.tick()
                                : op_tick_.load(std::memory_order_relaxed);
  }
  std::size_t ceiling_bytes() const { return ceiling_; }
  /// Same contract as BoundedCacheTrie::resident_headroom_bytes, over the
  /// derived estimate.
  std::size_t resident_headroom_bytes() const {
    if (ceiling_ == 0) return std::numeric_limits<std::size_t>::max();
    const std::size_t r = resident_bytes();
    return r >= ceiling_ ? 0 : ceiling_ - r;
  }
  bool near_ceiling(double frac = 0.9) const {
    return ceiling_ != 0 && static_cast<double>(resident_bytes()) >=
                                frac * static_cast<double>(ceiling_);
  }

  Map& underlying() { return map_; }
  const Map& underlying() const { return map_; }

 private:
  std::uint64_t tick() const {
    return cfg_.tick != nullptr
               ? cfg_.tick()
               : op_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::uint64_t ttl_floor(std::uint64_t now) const {
    return (cfg_.ttl_ticks != 0 && now > cfg_.ttl_ticks)
               ? now - cfg_.ttl_ticks
               : 0;
  }

  /// Lazily unlinks the operation's own key if it expired; true iff it did.
  bool expire_target(const K& key, std::uint64_t now) {
    const std::uint64_t floor = ttl_floor(now);
    if (floor == 0) return false;
    if (map_.remove_if_stale(key, floor)) {
      ttl_expiries_.fetch_add(1, std::memory_order_relaxed);
      obs::sites::cachetrie_evict_ttl.add();
      return true;
    }
    return false;
  }

  /// Writer-run ceiling enforcement, mirroring the trie's dead-evictor-
  /// tolerant design: sweep stale bins while over the ceiling.
  void maybe_backpressure(std::uint64_t now) {
    if (ceiling_ == 0) return;
    if (resident_bytes() <= ceiling_) return;
    backpressure_scans_.fetch_add(1, std::memory_order_relaxed);
    obs::sites::cachetrie_evict_backpressure.add();
    const std::uint64_t w = lru_window_.load(std::memory_order_relaxed);
    const std::uint64_t floor = now > w ? now - w : now;
    const std::size_t evicted = map_.evict_stale(floor, cfg_.evict_probes);
    if (evicted != 0) {
      lru_evictions_.fetch_add(evicted, std::memory_order_relaxed);
      obs::sites::cachetrie_evict_lru.add(evicted);
    } else if (w > 1) {
      // Fruitless scan: tighten the idle window so the next scan can bite.
      lru_window_.store(w / 2, std::memory_order_relaxed);
    }
  }

  BoundedConfig cfg_;
  std::size_t ceiling_ = 0;
  Map map_;
  mutable std::atomic<std::uint64_t> op_tick_{0};
  std::atomic<std::uint64_t> lru_window_{1024};
  mutable std::atomic<std::uint64_t> lru_evictions_{0};
  mutable std::atomic<std::uint64_t> ttl_expiries_{0};
  mutable std::atomic<std::uint64_t> backpressure_scans_{0};
};

}  // namespace cachetrie::evict
