// cache_trie.hpp — the cache-trie: a concurrent lock-free hash trie with
// expected constant-time operations.
//
// Reproduction of: Aleksandar Prokopec, "Cache-Tries: Concurrent Lock-Free
// Hash Tries with Constant-Time Operations", PPoPP 2018.
//
// Structure
//   * The trie proper is a 16-way hash trie with two inner-node sizes —
//     narrow (4 slots) and wide (16 slots). Levels advance by 4 bits of the
//     key hash; this implementation uses 64-bit hashes, so paths are at most
//     16 levels deep, and keys with fully equal hashes fall into immutable
//     LNode collision chains.
//   * Every mutation of a leaf goes through its txn field (two-CAS protocol:
//     announce on txn, commit on the parent slot). This is what lets the
//     auxiliary cache evict automatically: a cached SNode whose txn is not
//     NoTxn, or a cached ANode with a frozen entry, is provably stale
//     (§3.4).
//   * Replacing an inner node (narrow->wide expansion, or compression after
//     removals) freezes it first — every slot is made permanently
//     non-writable — then a fresh copy is built and committed into the
//     parent with a single CAS, coordinated through an ENode announcement so
//     that any thread can finish the job (§3.3).
//   * The cache (§3.4-3.6) is a list of per-level pointer arrays, deepest
//     first. Lookups probe the deepest level first and fall back level by
//     level, then to the root. Slow operations lazily inhabit the cache and
//     count misses; after max_misses misses a thread samples random trie
//     paths, estimates the key-depth distribution, and moves the cache to
//     the most populated pair of adjacent levels.
//
// Progress: lookup is wait-free (it never helps — special nodes carry enough
// state to continue read-only); insert and remove are lock-free.
//
// Memory reclamation: the JVM artifact leans on GC; here every operation
// runs under a Reclaimer guard (EBR by default) and the single thread whose
// CAS unlinked a node retires it. Helpers never retire.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cachetrie/cache.hpp"
#include "cachetrie/config.hpp"
#include "cachetrie/nodes.hpp"
#include "cachetrie/stats.hpp"
#include "mr/epoch.hpp"
#include "obs/inventory.hpp"
#include "obs/trace.hpp"
#include "testkit/chaos.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"
#include "util/thread_id.hpp"

namespace cachetrie {

/// Per-level key counts, used by the appendix "BirthdaySimulations" bench
/// and by the depth-distribution property tests (Theorems 4.1-4.3).
struct LevelHistogram {
  /// counts[d] = number of keys whose SNode sits at depth d (level 4*d).
  std::array<std::uint64_t, 17> counts{};
  std::uint64_t total = 0;

  /// Fraction of keys on the most populated pair of adjacent depths
  /// (Theorem 4.2 predicts >= 0.8745 as n grows).
  double top_pair_share() const noexcept {
    if (total == 0) return 1.0;
    std::uint64_t best = 0;
    for (std::size_t d = 0; d + 1 < counts.size(); ++d) {
      best = std::max(best, counts[d] + counts[d + 1]);
    }
    return static_cast<double>(best) / static_cast<double>(total);
  }
};

template <typename K, typename V, typename Hash = util::DefaultHash<K>,
          typename Reclaimer = mr::EpochReclaimer>
class CacheTrie {
  using NodeBase = detail::NodeBase;
  using Kind = detail::Kind;
  using Sentinels = detail::Sentinels;
  using ANode = detail::ANode;
  using ENode = detail::ENode;
  using FNode = detail::FNode;
  using SNodeT = detail::SNode<K, V>;
  using LNodeT = detail::LNode<K, V>;
  using CacheArray = detail::CacheArray;

 public:
  explicit CacheTrie(Config config = {})
      : config_(config),
        bounded_(config.ceiling_bytes != 0 || config.ttl_ticks != 0),
        lru_window_(config.lru_idle_ticks == 0 ? 1 : config.lru_idle_ticks) {
    root_ = ANode::make(16);
    account(static_cast<std::ptrdiff_t>(ANode::alloc_size(16)));
  }

  CacheTrie(const CacheTrie&) = delete;
  CacheTrie& operator=(const CacheTrie&) = delete;

  ~CacheTrie() {
    destroy_subtree(root_);
    CacheArray* c = cache_head_.load(std::memory_order_relaxed);
    while (c != nullptr) {
      CacheArray* parent = c->parent;
      CacheArray::destroy(c);
      c = parent;
    }
    // Whatever this trie still counted as resident leaves the process-wide
    // gauge with it.
    if (config_.resident_gauge != nullptr) {
      config_.resident_gauge->fetch_sub(
          resident_bytes_.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }

  /// Inserts or replaces the pair. Returns true iff the key was new.
  bool insert(const K& key, const V& value) {
    return mutate(key, value, Mode::kUpsert) == Res::kNew;
  }

  /// Inserts only if the key is absent. Returns true iff it inserted.
  bool put_if_absent(const K& key, const V& value) {
    return mutate(key, value, Mode::kIfAbsent) == Res::kNew;
  }

  /// Replaces the value only if the key is present. Returns true iff it did.
  bool replace(const K& key, const V& value) {
    return mutate(key, value, Mode::kReplaceOnly) == Res::kReplaced;
  }

  /// Compare-and-replace on the value (JDK's 3-argument replace, §3.7):
  /// succeeds only if the key is present and its value equals `expected`.
  bool replace_if_equals(const K& key, const V& expected, const V& desired)
    requires std::equality_comparable<V>
  {
    return mutate(key, desired, Mode::kReplaceIfEquals, &expected) ==
           Res::kReplaced;
  }

  /// Finds the value associated with the key. Wait-free.
  /// Bounded mode: a hit refreshes the pair's stamp (relaxed store — the
  /// stamp is advisory); a TTL-expired pair is reported absent without being
  /// evicted here (lookups stay wait-free; writers do the lazy eviction).
  std::optional<V> lookup(const K& key) const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("cachetrie.pinned");
    const std::uint64_t h = hasher_(key);
    const Horizon hz = make_horizon();
    CacheArray* cache = config_.use_cache
                            ? cache_head_.load(std::memory_order_acquire)
                            : nullptr;
    if (cache == nullptr) {
      const bool sample_depth =
          (obs::sites::cachetrie_lookup_slow.add() & 63u) == 0u;
      return lookup_rec(key, h, 0, root_, kNoCacheLevel, 0, sample_depth, hz);
    }
    const std::int32_t cache_level = static_cast<std::int32_t>(cache->level);
    // Fast path (paper Fig. 6): probe cache levels, deepest first.
    for (CacheArray* c = cache; c != nullptr; c = c->parent) {
      NodeBase* cachee =
          c->entries()[c->index_of(h)].load(std::memory_order_acquire);
      if (cachee == nullptr) continue;
      if (cachee->kind == Kind::kSNode) {
        auto* sn = static_cast<SNodeT*>(cachee);
        if (sn->txn.load(std::memory_order_acquire) == Sentinels::no_txn()) {
          // Live SNode on this key's path: it either is the key, or proves
          // the key absent (no other key shares this hash prefix, else an
          // ANode would occupy the position).
          bump_stat(&Stats::cache_fast_hits);
          // One relaxed RMW on a private stripe; its return value doubles
          // as a ~1/64 sampler for the depth histogram (depth 1: the
          // cached SNode was the only dereference).
          if ((obs::sites::cachetrie_cache_hit.add() & 63u) == 0u) {
            obs::sites::cachetrie_lookup_depth.record(1);
          }
          if (sn->hash == h && sn->key == key) {
            if (bounded_) {
              if (hz.expired(sn->stamp.load(std::memory_order_relaxed))) {
                return std::nullopt;
              }
              sn->stamp.store(hz.now, std::memory_order_relaxed);
            }
            return sn->value;
          }
          return std::nullopt;
        }
        continue;  // stale entry; try a shallower cache level
      }
      if (cachee->kind == Kind::kANode) {
        auto* an = static_cast<ANode*>(cachee);
        NodeBase* entry = an->slots()[slot_index(h, c->level, an->length)]
                              .load(std::memory_order_acquire);
        // If the relevant entry is frozen the ANode may already be detached;
        // fall back. Otherwise the ANode is still reachable (§3.4: a node
        // with any non-frozen entry has a path from the root).
        if (entry == Sentinels::fv()) continue;
        if (entry != nullptr) {
          if (entry->kind == Kind::kFNode) continue;
          if (entry->kind == Kind::kSNode &&
              static_cast<SNodeT*>(entry)->txn.load(
                  std::memory_order_acquire) == Sentinels::fs()) {
            continue;
          }
        }
        bump_stat(&Stats::cache_fast_hits);
        // Same counter as the SNode fast path, so its pre-add value keeps
        // sampling one in 64 hits regardless of which hit kind fires.
        const bool sample_depth =
            (obs::sites::cachetrie_cache_hit.add() & 63u) == 0u;
        return lookup_rec(key, h, c->level, an, cache_level, c->level,
                          sample_depth, hz);
      }
      // Anything else cached is stale; fall through to shallower levels.
    }
    {
      const bool sample_depth =
          (obs::sites::cachetrie_lookup_slow.add() & 63u) == 0u;
      return lookup_rec(key, h, 0, root_, cache_level, 0, sample_depth, hz);
    }
  }

  bool contains(const K& key) const { return lookup(key).has_value(); }

  /// Removes the key. Returns the removed value, if any.
  std::optional<V> remove(const K& key) { return do_remove(key, nullptr); }

  /// Removes the key only if its value equals `expected` (JDK's 2-argument
  /// remove). Returns true iff it removed.
  bool remove_if_equals(const K& key, const V& expected)
    requires std::equality_comparable<V>
  {
    return do_remove(key, &expected).has_value();
  }

  /// Returns the current value, inserting make_value() if the key is
  /// absent (computeIfAbsent). make_value may run and be discarded when a
  /// racing insert wins; it must be side-effect-tolerant.
  template <typename F>
  V get_or_insert_with(const K& key, F&& make_value) {
    while (true) {
      if (auto v = lookup(key)) return *std::move(v);
      if (put_if_absent(key, make_value())) {
        if (auto v = lookup(key)) return *std::move(v);
        // Inserted but already removed by a racer; retry.
      }
    }
  }

  // --- whole-structure operations -----------------------------------------
  //
  // These traverse the live view. They are exact when the trie is quiescent;
  // under concurrent mutation they see some valid mixture of states (they
  // are not linearizable snapshots — the paper lists snapshots as future
  // work).

  /// Number of keys (O(n) traversal). Bounded mode: TTL-expired pairs are
  /// unobservable, so they are not counted even while physically present.
  std::size_t size() const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    const Horizon hz = make_horizon();
    std::size_t n = 0;
    auto count = [&](const K&, const V&, std::uint64_t st) {
      if (bounded_ && hz.expired(st)) return;
      ++n;
    };
    for_each_node(root_, count);
    return n;
  }

  bool empty() const { return size() == 0; }

  /// Applies fn(key, value) to every pair (bounded mode: to every live,
  /// unexpired pair).
  template <typename F>
  void for_each(F&& fn) const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    const Horizon hz = make_horizon();
    auto visit = [&](const K& k, const V& v, std::uint64_t st) {
      if (bounded_ && hz.expired(st)) return;
      fn(k, v);
    };
    for_each_node(root_, visit);
  }

  /// Bytes of heap owned by the trie: nodes, plus the cache arrays when the
  /// cache is enabled. malloc overhead is not modeled (documented in
  /// EXPERIMENTS.md; it shifts all structures equally).
  std::size_t footprint_bytes() const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    std::size_t bytes = sizeof(*this);
    bytes += subtree_footprint(root_);
    for (CacheArray* c = cache_head_.load(std::memory_order_acquire);
         c != nullptr; c = c->parent) {
      bytes += c->footprint_bytes();
    }
    return bytes;
  }

  /// Distribution of keys over trie depths (appendix A.5.1).
  LevelHistogram level_histogram() const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    LevelHistogram hist;
    collect_histogram(root_, 0, hist);
    return hist;
  }

  /// Current deepest cache level, or -1 when no cache exists yet.
  std::int32_t cache_level() const {
    CacheArray* c = cache_head_.load(std::memory_order_acquire);
    return c == nullptr ? -1 : static_cast<std::int32_t>(c->level);
  }

  const Config& config() const noexcept { return config_; }
  const Stats& stats() const noexcept { return stats_; }

  // --- bounded-memory mode (DESIGN.md §3) -----------------------------------

  /// True when this trie enforces a byte ceiling and/or TTL.
  bool bounded() const noexcept { return bounded_; }

  /// Current eviction-clock tick, without advancing the logical clock.
  std::uint64_t now_tick() const noexcept {
    if (!bounded_) return 0;
    return config_.tick_fn != nullptr
               ? config_.tick_fn()
               : op_tick_.load(std::memory_order_relaxed);
  }

  /// Observed resident footprint: bytes published into the trie minus bytes
  /// retired out of it — exact double-entry accounting at the protocol's
  /// publish/retire choke points, excluding bytes parked in reclaimer limbo
  /// (EpochDomain::retired_bytes() tracks those). Always 0 when unbounded.
  std::size_t resident_bytes() const noexcept {
    const std::int64_t b = resident_bytes_.load(std::memory_order_relaxed);
    return b > 0 ? static_cast<std::size_t>(b) : 0;
  }

  struct EvictionCounts {
    std::uint64_t lru_evictions = 0;
    std::uint64_t ttl_expiries = 0;
    std::uint64_t backpressure_scans = 0;
  };

  EvictionCounts eviction_counts() const noexcept {
    return {lru_evictions_.load(std::memory_order_relaxed),
            ttl_expiries_.load(std::memory_order_relaxed),
            backpressure_scans_.load(std::memory_order_relaxed)};
  }

  /// Forcibly removes the pair through the eviction path. The removal is a
  /// linearizable remove — same two-CAS protocol, same linearization point —
  /// but its success is counted as an LRU eviction, not a user remove.
  std::optional<V> evict(const K& key) {
    return do_remove(key, nullptr, /*as_evict=*/true);
  }

  /// Quiescent structural invariant check, used by the test suite. Returns
  /// human-readable descriptions of violations (empty = consistent).
  std::vector<std::string> debug_validate() const {
    std::vector<std::string> issues;
    validate_node(root_, 0, 0, issues);
    return issues;
  }

 private:
  enum class Res : std::uint8_t {
    kNew,       // key inserted
    kReplaced,  // existing pair replaced
    kExists,    // put_if_absent found the key; nothing changed
    kNotFound,  // key absent (replace/remove)
    kRemoved,    // pair removed
    kRestart,    // frozen/stale path; retry from the root
    kRetryLevel, // internal: CAS lost locally; re-read the same slot
  };

  enum class Mode : std::uint8_t {
    kUpsert,
    kIfAbsent,
    kReplaceOnly,
    kReplaceIfEquals,
  };

  static constexpr std::int32_t kNoCacheLevel = -1;

  static std::uint32_t slot_index(std::uint64_t h, std::uint32_t lev,
                                  std::uint32_t len) noexcept {
    return static_cast<std::uint32_t>((h >> lev) & (len - 1));
  }

  void bump_stat(std::atomic<std::uint64_t> Stats::* member) const noexcept {
    if (config_.collect_stats) {
      (stats_.*member).fetch_add(1, std::memory_order_relaxed);
    }
  }

  // --- bounded-memory mode machinery (DESIGN.md §3) -------------------------

  /// Per-operation eviction horizons, computed once at each public entry
  /// point and threaded through the descent. Inert (all zero) when the trie
  /// is unbounded: no stamp is ever below a zero floor, so every check falls
  /// through at the cost of one predictable compare.
  struct Horizon {
    std::uint64_t now = 0;        // current tick; doubles as creation stamp
    std::uint64_t ttl_floor = 0;  // stamp < ttl_floor => semantically absent
    std::uint64_t lru_floor = 0;  // stamp < lru_floor => evictable (pressure)

    bool expired(std::uint64_t stamp) const noexcept {
      return stamp < ttl_floor;
    }
    bool evictable(std::uint64_t stamp) const noexcept {
      return stamp < ttl_floor || stamp < lru_floor;
    }
  };

  /// Computes this operation's horizons, advancing the logical clock by one
  /// tick — unless an injectable clock owns time (then tests drive it).
  Horizon make_horizon() const {
    Horizon hz;
    if (!bounded_) return hz;
    hz.now = config_.tick_fn != nullptr
                 ? config_.tick_fn()
                 : op_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config_.ttl_ticks != 0 && hz.now > config_.ttl_ticks) {
      hz.ttl_floor = hz.now - config_.ttl_ticks;
    }
    return hz;
  }

  /// Exact double-entry byte accounting: every publish-success adds the
  /// bytes it made reachable, every retire subtracts exactly what it hands
  /// the reclaimer. Like the stamp/tick/window words, this sum is advisory —
  /// all accesses relaxed, no ordering contract (ordering_contracts.hpp
  /// documents why).
  void account(std::ptrdiff_t delta) const noexcept {
    if (!bounded_) return;
    resident_bytes_.fetch_add(delta, std::memory_order_relaxed);
    if (config_.resident_gauge != nullptr) {
      config_.resident_gauge->fetch_add(delta, std::memory_order_relaxed);
    }
  }

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  void retire_snode(SNodeT* sn) const {
    account(-static_cast<std::ptrdiff_t>(sizeof(SNodeT)));
    Reclaimer::template retire<SNodeT>(sn);
  }

  void note_eviction(bool expiry, std::uint64_t h, std::uint32_t lev) const {
    if (expiry) {
      ttl_expiries_.fetch_add(1, std::memory_order_relaxed);
      obs::sites::cachetrie_evict_ttl.add();
      obs::trace::emit(obs::trace::EventId::kCachetrieExpire, h, lev);
    } else {
      lru_evictions_.fetch_add(1, std::memory_order_relaxed);
      obs::sites::cachetrie_evict_lru.add();
      obs::trace::emit(obs::trace::EventId::kCachetrieEvict, h, lev);
    }
  }

  /// Lazily evicts `osn` through its txn word — the identical announce/commit
  /// pair the remove path uses, so an eviction linearizes exactly like a
  /// remove of that key. Returns true iff this thread won the announcement
  /// (and is therefore the unique retirer).
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  bool try_evict_snode(std::atomic<NodeBase*>& slot, SNodeT* osn, ANode* cur,
                       ANode* prev, std::uint32_t lev, bool expiry) {
    testkit::chaos_point("cachetrie.evict_announce");
    NodeBase* etxn = Sentinels::no_txn();
    // [publishes: CT_TXN]
    if (!osn->txn.compare_exchange_strong(etxn, nullptr,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      return false;
    }
    testkit::chaos_point("cachetrie.evict_commit");
    NodeBase* eo = osn;
    slot.compare_exchange_strong(eo, nullptr, std::memory_order_acq_rel,
                                 std::memory_order_acquire);
    clear_cache_refs(osn, osn->hash, lev + 4);
    retire_snode(osn);
    note_eviction(expiry, osn->hash, lev);
    maybe_compress(cur, prev, osn->hash, lev);
    return true;
  }

  /// Ceiling enforcement. Every writer passes through here before doing its
  /// own work, so enforcement survives any particular evictor dying: there
  /// is no dedicated eviction thread to lose. Over the ceiling, the op runs
  /// a bounded clock-hand scan against an adaptive idle window; the window
  /// halves whenever a scan frees nothing and relaxes once pressure clears.
  void maybe_backpressure(Horizon& hz) {
    if (config_.ceiling_bytes == 0) return;
    const std::size_t resident = resident_bytes();
    const std::uint64_t w = lru_window_.load(std::memory_order_relaxed);
    if (resident <= config_.ceiling_bytes) {
      if (w < config_.lru_idle_ticks &&
          resident <= config_.ceiling_bytes - config_.ceiling_bytes / 4) {
        lru_window_.store(
            std::min<std::uint64_t>(w * 2, config_.lru_idle_ticks),
            std::memory_order_relaxed);
      }
      return;
    }
    backpressure_scans_.fetch_add(1, std::memory_order_relaxed);
    obs::sites::cachetrie_evict_backpressure.add();
    obs::trace::emit(obs::trace::EventId::kCachetrieCeilingHit, resident,
                     config_.ceiling_bytes);
    hz.lru_floor = hz.now > w ? hz.now - w : hz.now;
    const std::size_t evicted = evict_scan(hz, config_.evict_probes);
    if (evicted == 0 && w > 1) {
      lru_window_.store(w / 2, std::memory_order_relaxed);
    }
  }

  /// The lazy clock hand (after the fwoodruff Lock-Free-Cache design: no
  /// doubly-linked list, no dedicated thread): descend a few pseudo-random
  /// hash paths from a roving cursor and evict any live leaf whose stamp
  /// fell past a horizon. Each probe is an O(1)-expected descent.
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  std::size_t evict_scan(const Horizon& hz, std::uint32_t probes) {
    testkit::chaos_point("cachetrie.evict_scan");
    std::size_t evicted = 0;
    for (std::uint32_t p = 0; p < probes; ++p) {
      const std::uint64_t h =
          util::mix64(evict_cursor_.fetch_add(1, std::memory_order_relaxed));
      ANode* cur = root_;
      ANode* prev = nullptr;
      std::uint32_t lev = 0;
      while (true) {
        auto& slot = cur->slots()[slot_index(h, lev, cur->length)];
        NodeBase* n = slot.load(std::memory_order_acquire);
        if (n == nullptr || n == Sentinels::fv()) break;
        if (n->kind == Kind::kANode) {
          prev = cur;
          cur = static_cast<ANode*>(n);
          lev += 4;
          continue;
        }
        if (n->kind == Kind::kSNode) {
          auto* sn = static_cast<SNodeT*>(n);
          if (sn->txn.load(std::memory_order_acquire) !=
              Sentinels::no_txn()) {
            break;
          }
          const std::uint64_t st = sn->stamp.load(std::memory_order_relaxed);
          if (hz.evictable(st) &&
              try_evict_snode(slot, sn, cur, prev, lev, hz.expired(st))) {
            ++evicted;
          }
          break;
        }
        // Chains and in-flight announcements: skip this probe; chain
        // corpses are pruned by the traversal rebuilds instead.
        break;
      }
    }
    return evicted;
  }

  // --- write-path driver ---------------------------------------------------

  Res mutate(const K& key, const V& value, Mode mode,
             const V* expected = nullptr) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    // Fault site: a victim parked (or killed) here stalls inside a guard
    // with the epoch pinned — the worst case for epoch reclamation.
    testkit::chaos_point("cachetrie.pinned");
    Horizon hz = make_horizon();
    if (bounded_) maybe_backpressure(hz);  // may raise hz.lru_floor
    const std::uint64_t h = hasher_(key);
    if (auto start = cache_start(h); start.node != nullptr) {
      const Res r = insert_rec(key, value, h, start.level, start.node,
                               nullptr, mode, expected, hz);
      if (r != Res::kRestart) return note_mutate_result(r);
    }
    while (true) {
      const Res r =
          insert_rec(key, value, h, 0, root_, nullptr, mode, expected, hz);
      if (r != Res::kRestart) return note_mutate_result(r);
      bump_stat(&Stats::root_restarts);
      obs::sites::cachetrie_root_restart.add();
    }
  }

  /// Counts committed mutation outcomes — linearized before the count, so
  /// after all threads join, insert_new - remove == size() exactly (the
  /// obs_chaos_test invariant).
  static Res note_mutate_result(Res r) noexcept {
    if (r == Res::kNew) {
      obs::sites::cachetrie_insert_new.add();
    } else if (r == Res::kReplaced) {
      obs::sites::cachetrie_replace.add();
    }
    return r;
  }

  struct CacheStart {
    ANode* node = nullptr;
    std::uint32_t level = 0;
  };

  /// Finds a cached ANode to begin a write-path descent. Only ANode cachees
  /// are usable (writes may need the node's parent, which the cache cannot
  /// supply for SNodes). Mirrors the validity checks of the fast lookup.
  CacheStart cache_start(std::uint64_t h) const {
    if (!config_.use_cache) return {};
    for (CacheArray* c = cache_head_.load(std::memory_order_acquire);
         c != nullptr; c = c->parent) {
      NodeBase* cachee =
          c->entries()[c->index_of(h)].load(std::memory_order_acquire);
      if (cachee == nullptr || cachee->kind != Kind::kANode) continue;
      auto* an = static_cast<ANode*>(cachee);
      NodeBase* entry = an->slots()[slot_index(h, c->level, an->length)]
                            .load(std::memory_order_acquire);
      if (entry == Sentinels::fv()) continue;
      if (entry != nullptr) {
        if (entry->kind == Kind::kFNode) continue;
        if (entry->kind == Kind::kSNode &&
            static_cast<SNodeT*>(entry)->txn.load(
                std::memory_order_acquire) == Sentinels::fs()) {
          continue;
        }
      }
      return {an, c->level};
    }
    return {};
  }

  // --- insert (paper Fig. 3) -----------------------------------------------

  Res insert_rec(const K& key, const V& value, std::uint64_t h,
                 std::uint32_t lev, ANode* cur, ANode* prev, Mode mode,
                 const V* expected_value, const Horizon& hz) {
    while (true) {
      auto& slot = cur->slots()[slot_index(h, lev, cur->length)];
      // [acquires: CT_SLOT_COMMIT]
      NodeBase* old = slot.load(std::memory_order_acquire);

      if (old == nullptr) {  // case (1): empty slot
        if (mode == Mode::kReplaceOnly || mode == Mode::kReplaceIfEquals) {
          return Res::kNotFound;
        }
        SNodeT* sn = SNodeT::make(h, key, value, hz.now);
        NodeBase* expected = nullptr;
        // [publishes: CT_SLOT_COMMIT]
        if (slot.compare_exchange_strong(expected, sn,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          account(static_cast<std::ptrdiff_t>(sizeof(SNodeT)));
          maybe_inhabit(sn, h, lev + 4);
          return Res::kNew;
        }
        delete sn;  // [delete: unpublished]
        continue;
      }
      if (old == Sentinels::fv()) return Res::kRestart;  // frozen empty slot

      switch (old->kind) {
        case Kind::kANode: {
          auto* child = static_cast<ANode*>(old);
          maybe_inhabit(child, h, lev + 4);
          return insert_rec(key, value, h, lev + 4, child, cur, mode,
                            expected_value, hz);
        }
        case Kind::kSNode: {
          const Res r = insert_at_snode(key, value, h, lev, cur, prev, slot,
                                        static_cast<SNodeT*>(old), mode,
                                        expected_value, hz);
          if (r != Res::kRetryLevel) return r;
          continue;
        }
        case Kind::kLNode: {
          const Res r = insert_at_lnode(key, value, h, lev, slot,
                                        static_cast<LNodeT*>(old), mode,
                                        expected_value, hz);
          if (r != Res::kRetryLevel) return r;
          continue;
        }
        case Kind::kENode:
          // Help the pending expansion/compression, then re-read the slot.
          complete_enode(static_cast<ENode*>(old));
          continue;
        case Kind::kFNode:
          return Res::kRestart;
        default:
          assert(false && "unexpected node kind in ANode slot");
          return Res::kRestart;
      }
    }
  }

  /// Slot holds an SNode: replace in place (same key), expand a narrow node
  /// (collision in a 4-slot node), or hang a fresh subtree (collision in a
  /// wide node). Paper Fig. 3, lines 11-38.
  /// Value comparison for the compare-and-replace mode; instantiable even
  /// for value types without operator== (the mode is then unreachable).
  static bool value_equals(const V& a, const V& b) {
    if constexpr (std::equality_comparable<V>) {
      return a == b;
    } else {
      (void)a;
      (void)b;
      return false;
    }
  }

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  Res insert_at_snode(const K& key, const V& value, std::uint64_t h,
                      std::uint32_t lev, ANode* cur, ANode* prev,
                      std::atomic<NodeBase*>& slot, SNodeT* osn, Mode mode,
                      const V* expected_value, const Horizon& hz) {
    // [acquires: CT_TXN]
    NodeBase* txn = osn->txn.load(std::memory_order_acquire);
    if (txn == Sentinels::no_txn()) {
      const std::uint64_t ostamp =
          bounded_ ? osn->stamp.load(std::memory_order_relaxed) : 0;
      if (osn->hash == h && osn->key == key) {
        // A TTL-expired pair is semantically absent (DESIGN.md §3): upsert
        // and put_if_absent replace the corpse through the same txn path —
        // the replacement doubles as the lazy eviction — while the replace
        // modes evict it and report the key absent.
        const bool corpse = hz.expired(ostamp);
        if (corpse &&
            (mode == Mode::kReplaceOnly || mode == Mode::kReplaceIfEquals)) {
          try_evict_snode(slot, osn, cur, prev, lev, /*expiry=*/true);
          return Res::kNotFound;
        }
        if (!corpse) {
          if (mode == Mode::kIfAbsent) {
            if (bounded_) {
              osn->stamp.store(hz.now, std::memory_order_relaxed);
            }
            return Res::kExists;
          }
          if (mode == Mode::kReplaceIfEquals &&
              !value_equals(osn->value, *expected_value)) {
            if (bounded_) {
              osn->stamp.store(hz.now, std::memory_order_relaxed);
            }
            return Res::kExists;
          }
        }
        // case (4): same key — two-CAS replacement. The txn CAS both
        // announces the change and invalidates any cache entry.
        SNodeT* sn = SNodeT::make(h, key, value, hz.now);
        testkit::chaos_point("cachetrie.txn_announce");
        NodeBase* expected = Sentinels::no_txn();
        // [publishes: CT_TXN]
        if (osn->txn.compare_exchange_strong(expected, sn,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
          // The window between the txn announcement and the slot commit is
          // where helpers race the winner (§3.3's two-CAS protocol).
          testkit::chaos_point("cachetrie.txn_commit");
          obs::trace::emit(obs::trace::EventId::kCachetrieTxnCommit, h, lev);
          NodeBase* eo = osn;
          slot.compare_exchange_strong(eo, sn, std::memory_order_acq_rel,
                                       std::memory_order_acquire);
          // The only possible slot transition was osn -> sn (helpers commit
          // the announced txn), so osn is out either way; we won the txn and
          // are the unique retirer.
          clear_cache_refs(osn, h, lev + 4);
          account(static_cast<std::ptrdiff_t>(sizeof(SNodeT)));
          retire_snode(osn);
          if (corpse) {
            note_eviction(/*expiry=*/true, h, lev);
            return Res::kNew;  // the replaced pair was semantically absent
          }
          return Res::kReplaced;
        }
        delete sn;  // [delete: unpublished]
        obs::sites::cachetrie_txn_retry.add();
        return Res::kRetryLevel;
      }
      // A stale colliding pair is lazily evicted instead of growing a
      // subtree under a corpse; the caller re-reads the emptied slot.
      if (bounded_ && hz.evictable(ostamp)) {
        try_evict_snode(slot, osn, cur, prev, lev, hz.expired(ostamp));
        return Res::kRetryLevel;
      }
      if (mode == Mode::kReplaceOnly || mode == Mode::kReplaceIfEquals) {
        return Res::kNotFound;
      }
      if (cur->length == 4) {
        // case (3): collision in a narrow node — expand it to a wide one.
        if (prev == nullptr) return Res::kRestart;  // descent began mid-trie
        const std::uint32_t ppos = slot_index(h, lev - 4, prev->length);
        ENode* en =
            ENode::make(prev, ppos, cur, h, lev, /*compress=*/false);
        testkit::chaos_point("cachetrie.expand_announce");
        NodeBase* expected = cur;
        if (prev->slots()[ppos].compare_exchange_strong(
                expected, en, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          account(static_cast<std::ptrdiff_t>(sizeof(ENode)));
          complete_enode(en);
          // [acquires: CT_ENODE_RESULT]
          NodeBase* wide = en->result.load(std::memory_order_acquire);
          assert(wide != nullptr && wide->kind == Kind::kANode);
          return insert_rec(key, value, h, lev, static_cast<ANode*>(wide),
                            prev, mode, expected_value, hz);
        }
        delete en;  // [delete: unpublished]
        // Someone got to prev[ppos] first; help if it is an announcement.
        NodeBase* now =
            prev->slots()[ppos].load(std::memory_order_acquire);
        if (now != nullptr && now->kind == Kind::kENode) {
          complete_enode(static_cast<ENode*>(now));
        }
        return Res::kRestart;
      }
      // case (2): collision in a wide node — build a deeper subtree that
      // holds a fresh copy of osn's pair plus the new pair, and commit it
      // through osn's txn.
      NodeBase* subtree = create_subtree(osn, h, key, value, lev + 4, hz.now);
      // Footprint of the replacement, taken while it is still private; after
      // the txn wins, helpers may commit it and make it concurrently mutable.
      const std::ptrdiff_t sub_bytes =
          bounded_ ? static_cast<std::ptrdiff_t>(subtree_footprint(subtree))
                   : 0;
      testkit::chaos_point("cachetrie.txn_announce");
      NodeBase* expected = Sentinels::no_txn();
      if (osn->txn.compare_exchange_strong(expected, subtree,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        testkit::chaos_point("cachetrie.txn_commit");
        obs::trace::emit(obs::trace::EventId::kCachetrieTxnCommit, h, lev);
        NodeBase* eo = osn;
        slot.compare_exchange_strong(eo, subtree, std::memory_order_acq_rel,
                                     std::memory_order_acquire);
        clear_cache_refs(osn, h, lev + 4);
        account(sub_bytes);
        retire_snode(osn);
        return Res::kNew;
      }
      destroy_subtree_value(subtree);
      obs::sites::cachetrie_txn_retry.add();
      return Res::kRetryLevel;
    }
    if (txn == Sentinels::fs()) return Res::kRestart;  // frozen leaf
    // A transaction is pending on this SNode: help commit it (the announced
    // value may be nullptr — a removal) and retry.
    NodeBase* eo = osn;
    slot.compare_exchange_strong(eo, txn, std::memory_order_acq_rel,
                                 std::memory_order_acquire);
    obs::sites::cachetrie_txn_retry.add();
    return Res::kRetryLevel;
  }

  /// Slot holds a collision chain. Chains are immutable: build the updated
  /// chain (or, when the new hash differs, a subtree that pushes the chain
  /// deeper) and swap it in with one CAS.
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  Res insert_at_lnode(const K& key, const V& value, std::uint64_t h,
                      std::uint32_t lev, std::atomic<NodeBase*>& slot,
                      LNodeT* chain, Mode mode, const V* expected_value,
                      const Horizon& hz) {
    if (chain->hash != h) {
      // The new key only shares a prefix with the chain's hash: grow an
      // inner path below this slot that separates them. The existing chain
      // is reused (it is immutable), so nothing is retired on success; any
      // corpses it holds stay invisible until a same-hash rebuild drops them.
      if (mode == Mode::kReplaceOnly || mode == Mode::kReplaceIfEquals) {
        return Res::kNotFound;
      }
      SNodeT* sn = SNodeT::make(h, key, value, hz.now);
      NodeBase* subtree = branch_apart(chain, chain->hash, sn, lev + 4);
      std::ptrdiff_t delta = 0;
      if (bounded_) {
        // The reused chain is already accounted; only the fresh inner path
        // and the new pair are new bytes.
        delta = static_cast<std::ptrdiff_t>(subtree_footprint(subtree));
        for (LNodeT* l = chain; l != nullptr; l = l->next) {
          delta -= static_cast<std::ptrdiff_t>(sizeof(LNodeT));
        }
      }
      NodeBase* expected = chain;
      if (slot.compare_exchange_strong(expected, subtree,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        account(delta);
        return Res::kNew;
      }
      destroy_subtree_value_sparing(subtree, chain);
      obs::sites::cachetrie_txn_retry.add();
      return Res::kRetryLevel;
    }
    // Same full hash: rebuild the chain with the pair added or replaced.
    // Bounded mode: TTL-expired pairs are semantically absent — invisible to
    // the mode checks, and dropped (counted as expiries) by the rebuild.
    bool found = false;       // a live pair for `key` exists
    bool key_corpse = false;  // an expired pair for `key` exists
    std::size_t live_others = 0;
    std::size_t expired_others = 0;
    for (LNodeT* l = chain; l != nullptr; l = l->next) {
      const bool expired = bounded_ && hz.expired(l->stamp);
      if (l->key == key) {
        if (expired) {
          key_corpse = true;
          continue;
        }
        found = true;
        if (mode == Mode::kReplaceIfEquals &&
            !value_equals(l->value, *expected_value)) {
          return Res::kExists;
        }
      } else if (expired) {
        ++expired_others;
      } else {
        ++live_others;
      }
    }
    if (found && mode == Mode::kIfAbsent) return Res::kExists;
    if (!found && (mode == Mode::kReplaceOnly ||
                   mode == Mode::kReplaceIfEquals)) {
      // A corpse for `key` (if any) stays until a mutating walk rebuilds the
      // chain; it is already unobservable, so reporting absent is correct.
      return Res::kNotFound;
    }
    // Rebuild without `key`'s old pair and without corpses. A chain that
    // would hold a single pair collapses back to an SNode (chain invariant:
    // >= 2 pairs).
    NodeBase* replacement = nullptr;
    LNodeT* fresh = nullptr;
    if (live_others == 0) {
      replacement = SNodeT::make(h, key, value, hz.now);
    } else {
      for (LNodeT* l = chain; l != nullptr; l = l->next) {
        if (l->key == key || (bounded_ && hz.expired(l->stamp))) continue;
        fresh = LNodeT::make(l->hash, l->key, l->value, fresh, l->stamp);
      }
      fresh = LNodeT::make(h, key, value, fresh, hz.now);
      replacement = fresh;
    }
    NodeBase* expected = chain;
    if (slot.compare_exchange_strong(expected, replacement,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      account(static_cast<std::ptrdiff_t>(
          live_others == 0 ? sizeof(SNodeT)
                           : (live_others + 1) * sizeof(LNodeT)));
      for (std::size_t i = 0; i < expired_others; ++i) {
        note_eviction(/*expiry=*/true, h, lev);
      }
      // The old pair for `key`, when expired, is evicted-by-replacement just
      // like the SNode corpse path: count it and report the key as new.
      if (key_corpse) note_eviction(/*expiry=*/true, h, lev);
      retire_chain(chain);
      return found ? Res::kReplaced : Res::kNew;
    }
    if (live_others == 0) {
      delete static_cast<SNodeT*>(replacement);  // [delete: unpublished]
    } else {
      destroy_chain(fresh);
    }
    obs::sites::cachetrie_txn_retry.add();
    return Res::kRetryLevel;
  }

  // --- lookup (paper Fig. 2, with the Fig. 6 cache hooks) -------------------

  std::optional<V> lookup_rec(const K& key, std::uint64_t h,
                              std::uint32_t lev, const ANode* cur,
                              std::int32_t cache_level,
                              std::uint32_t start_lev, bool sample_depth,
                              const Horizon& hz) const {
    // Fig. 6 line 3: passing the cache level on the way down lets the slow
    // path repopulate the cache.
    if (static_cast<std::int32_t>(lev) == cache_level) {
      maybe_inhabit(const_cast<ANode*>(cur), h, lev);
    }
    const auto& slot = cur->slots()[slot_index(h, lev, cur->length)];
    NodeBase* old = slot.load(std::memory_order_acquire);
    if (old == nullptr || old == Sentinels::fv()) return std::nullopt;
    switch (old->kind) {
      case Kind::kANode:
        return lookup_rec(key, h, lev + 4, static_cast<const ANode*>(old),
                          cache_level, start_lev, sample_depth, hz);
      case Kind::kSNode: {
        auto* sn = static_cast<SNodeT*>(old);
        note_leaf_level(sn, lev + 4, cache_level, start_lev, sample_depth);
        if (sn->hash == h && sn->key == key) {
          if (bounded_) {
            if (hz.expired(sn->stamp.load(std::memory_order_relaxed))) {
              return std::nullopt;  // corpse: unobservable, evicted lazily
            }
            sn->stamp.store(hz.now, std::memory_order_relaxed);
          }
          return sn->value;
        }
        return std::nullopt;
      }
      case Kind::kLNode: {
        note_leaf_level(nullptr, lev + 4, cache_level, start_lev,
                        sample_depth);
        for (const LNodeT* l = static_cast<const LNodeT*>(old); l != nullptr;
             l = l->next) {
          if (l->hash == h && l->key == key) {
            if (bounded_ && hz.expired(l->stamp)) return std::nullopt;
            return l->value;
          }
        }
        return std::nullopt;
      }
      case Kind::kENode: {
        // A pending expansion/compression: continue read-only through the
        // still-intact target (linearizes before the replacement commits).
        auto* en = static_cast<ENode*>(old);
        return lookup_rec(key, h, lev + 4, en->target, cache_level,
                          start_lev, sample_depth, hz);
      }
      case Kind::kFNode: {
        NodeBase* frozen = static_cast<FNode*>(old)->frozen;
        if (frozen->kind == Kind::kANode) {
          return lookup_rec(key, h, lev + 4,
                            static_cast<const ANode*>(frozen), cache_level,
                            start_lev, sample_depth, hz);
        }
        for (const LNodeT* l = static_cast<const LNodeT*>(frozen);
             l != nullptr; l = l->next) {
          if (l->hash == h && l->key == key) {
            if (bounded_ && hz.expired(l->stamp)) return std::nullopt;
            return l->value;
          }
        }
        return std::nullopt;
      }
      default:
        assert(false && "unexpected node kind in ANode slot");
        return std::nullopt;
    }
  }

  /// Cache bookkeeping when the slow path reaches a leaf at `leaf_lev`
  /// (Fig. 6 lines 9-13): inhabit the cache when the leaf is exactly at the
  /// cache level (or when a deep leaf justifies creating the cache), and
  /// record a miss when the leaf lies outside the cache's reach — the cache
  /// at level L serves leaves at L (direct) and L+4 (one hop through a
  /// cached ANode).
  void note_leaf_level(SNodeT* sn, std::uint32_t leaf_lev,
                       std::int32_t cache_level,
                       std::uint32_t start_lev, bool sample_depth) const {
    // Dereferences this descent performed: the nodes walked from the level
    // the descent entered at (cached ANode, or the root) down to and
    // including the leaf. Every lookup entry point derives `sample_depth`
    // from its counter's pre-add value the same way the fast SNode path
    // does, so the histogram is a uniform ~1/64 sample of the per-lookup
    // depth distribution — unbiased across fast, one-hop and root-walk
    // descents, and free on the 63-in-64 unsampled hot iterations.
    if (sample_depth) {
      obs::sites::cachetrie_lookup_depth.record((leaf_lev - start_lev) / 4 +
                                                1);
    }
    if (!config_.use_cache) return;
    // SNodes are always inhabited under their *own* hash, not the probing
    // hash: under a narrow parent two bits of the slot index are unpinned,
    // and the canonical index is the one clear_cache_refs() can recompute
    // when the SNode is retired. (ANodes never hang under narrow parents,
    // so for them every probing hash yields the same index.)
    if (cache_level == kNoCacheLevel) {
      // No cache yet: a sufficiently deep leaf triggers creation (Fig. 7).
      if (sn != nullptr && leaf_lev >= config_.cache_init_trigger_level) {
        maybe_inhabit(sn, sn->hash, leaf_lev);
      }
      return;
    }
    if (sn != nullptr &&
        static_cast<std::int32_t>(leaf_lev) == cache_level) {
      maybe_inhabit(sn, sn->hash, leaf_lev);
    }
    const auto ll = static_cast<std::int32_t>(leaf_lev);
    if (ll < cache_level || ll > cache_level + 4) record_cache_miss();
  }

  // --- remove (paper §3.7) ---------------------------------------------------

  /// `as_evict` routes the success to the eviction counters (the removal is
  /// the same linearizable protocol either way); used by evict().
  std::optional<V> do_remove(const K& key, const V* expected,
                             bool as_evict = false) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("cachetrie.pinned");
    const std::uint64_t h = hasher_(key);
    const Horizon hz = make_horizon();
    std::optional<V> out;
    if (auto start = cache_start(h); start.node != nullptr) {
      const Res r = remove_rec(key, h, start.level, start.node, nullptr, &out,
                               expected, hz);
      if (r != Res::kRestart) {
        if (r == Res::kRemoved) {
          if (as_evict) {
            note_eviction(/*expiry=*/false, h, 0);
          } else {
            obs::sites::cachetrie_remove.add();
          }
        }
        return r == Res::kRemoved ? std::move(out) : std::nullopt;
      }
    }
    while (true) {
      const Res r = remove_rec(key, h, 0, root_, nullptr, &out, expected, hz);
      if (r != Res::kRestart) {
        if (r == Res::kRemoved) {
          if (as_evict) {
            note_eviction(/*expiry=*/false, h, 0);
          } else {
            obs::sites::cachetrie_remove.add();
          }
        }
        return r == Res::kRemoved ? std::move(out) : std::nullopt;
      }
      bump_stat(&Stats::root_restarts);
      obs::sites::cachetrie_root_restart.add();
    }
  }

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  Res remove_rec(const K& key, std::uint64_t h, std::uint32_t lev, ANode* cur,
                 ANode* prev, std::optional<V>* out, const V* expected,
                 const Horizon& hz) {
    while (true) {
      auto& slot = cur->slots()[slot_index(h, lev, cur->length)];
      NodeBase* old = slot.load(std::memory_order_acquire);
      if (old == nullptr) return Res::kNotFound;
      if (old == Sentinels::fv()) return Res::kRestart;
      switch (old->kind) {
        case Kind::kANode:
          return remove_rec(key, h, lev + 4, static_cast<ANode*>(old), cur,
                            out, expected, hz);
        case Kind::kSNode: {
          auto* osn = static_cast<SNodeT*>(old);
          NodeBase* txn = osn->txn.load(std::memory_order_acquire);
          if (txn == Sentinels::no_txn()) {
            const std::uint64_t ostamp =
                bounded_ ? osn->stamp.load(std::memory_order_relaxed) : 0;
            if (osn->hash != h || !(osn->key == key)) {
              // Hygiene: a stale pair crossing a remover's path is evicted
              // even though it is not the remover's key.
              if (bounded_ && hz.evictable(ostamp)) {
                try_evict_snode(slot, osn, cur, prev, lev,
                                hz.expired(ostamp));
              }
              return Res::kNotFound;
            }
            if (bounded_ && hz.expired(ostamp)) {
              // The target itself is a corpse: semantically absent — evict
              // it and report NotFound (even for a plain remove).
              try_evict_snode(slot, osn, cur, prev, lev, /*expiry=*/true);
              return Res::kNotFound;
            }
            if (expected != nullptr && !value_equals(osn->value, *expected)) {
              return Res::kNotFound;
            }
            // Announce removal by publishing nullptr in txn (invalidates
            // cache entries), then commit null into the slot.
            testkit::chaos_point("cachetrie.txn_announce");
            NodeBase* etxn = Sentinels::no_txn();
            if (osn->txn.compare_exchange_strong(etxn, nullptr,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
              testkit::chaos_point("cachetrie.txn_commit");
              obs::trace::emit(obs::trace::EventId::kCachetrieTxnCommit, h,
                               lev);
              NodeBase* eo = osn;
              slot.compare_exchange_strong(eo, nullptr,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire);
              *out = osn->value;
              clear_cache_refs(osn, h, lev + 4);
              retire_snode(osn);
              maybe_compress(cur, prev, h, lev);
              return Res::kRemoved;
            }
            obs::sites::cachetrie_txn_retry.add();
            continue;
          }
          if (txn == Sentinels::fs()) return Res::kRestart;
          {  // help commit the pending transaction and retry
            NodeBase* eo = osn;
            slot.compare_exchange_strong(eo, txn, std::memory_order_acq_rel,
                                         std::memory_order_acquire);
            obs::sites::cachetrie_txn_retry.add();
            continue;
          }
        }
        case Kind::kLNode: {
          auto* chain = static_cast<LNodeT*>(old);
          if (chain->hash != h) return Res::kNotFound;
          bool found = false;
          std::size_t live_others = 0;
          std::size_t expired_others = 0;
          for (LNodeT* l = chain; l != nullptr; l = l->next) {
            const bool is_expired = bounded_ && hz.expired(l->stamp);
            if (l->key == key) {
              // A corpse is semantically absent: nothing to remove. It stays
              // until a mutating rebuild of this chain drops it.
              if (is_expired) return Res::kNotFound;
              if (expected != nullptr && !value_equals(l->value, *expected)) {
                return Res::kNotFound;
              }
              found = true;
              *out = l->value;
            } else if (is_expired) {
              ++expired_others;
            } else {
              ++live_others;
            }
          }
          if (!found) return Res::kNotFound;
          // Rebuild without the target and without corpses. Chains never
          // hold < 2 pairs: one live survivor collapses to an SNode, zero
          // (all others expired) empties the slot outright.
          NodeBase* replacement = nullptr;
          if (live_others == 1) {
            for (LNodeT* l = chain; l != nullptr; l = l->next) {
              if (!(l->key == key) && !(bounded_ && hz.expired(l->stamp))) {
                replacement =
                    SNodeT::make(l->hash, l->key, l->value, l->stamp);
              }
            }
          } else if (live_others > 1) {
            LNodeT* fresh = nullptr;
            for (LNodeT* l = chain; l != nullptr; l = l->next) {
              if (l->key == key || (bounded_ && hz.expired(l->stamp))) {
                continue;
              }
              fresh =
                  LNodeT::make(l->hash, l->key, l->value, fresh, l->stamp);
            }
            replacement = fresh;
          }
          NodeBase* echain = chain;
          if (slot.compare_exchange_strong(echain, replacement,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            if (live_others == 1) {
              account(static_cast<std::ptrdiff_t>(sizeof(SNodeT)));
            } else if (live_others > 1) {
              account(static_cast<std::ptrdiff_t>(live_others *
                                                  sizeof(LNodeT)));
            }
            for (std::size_t i = 0; i < expired_others; ++i) {
              note_eviction(/*expiry=*/true, h, lev);
            }
            retire_chain(chain);
            if (replacement == nullptr) maybe_compress(cur, prev, h, lev);
            return Res::kRemoved;
          }
          if (replacement != nullptr) destroy_subtree_value(replacement);
          out->reset();
          obs::sites::cachetrie_txn_retry.add();
          continue;
        }
        case Kind::kENode:
          complete_enode(static_cast<ENode*>(old));
          continue;
        case Kind::kFNode:
          return Res::kRestart;
        default:
          assert(false && "unexpected node kind in ANode slot");
          return Res::kRestart;
      }
    }
  }

  /// After a removal emptied `cur`, announce a compression that replaces it
  /// in `prev` with null (or with a collapsed copy if it was repopulated
  /// concurrently — the freeze-then-copy protocol makes this race benign).
  void maybe_compress(ANode* cur, ANode* prev, std::uint64_t h,
                      std::uint32_t lev) {
    if (!config_.compress || prev == nullptr) return;
    std::uint32_t live = 0;
    bool hoistable_only = true;
    for (std::uint32_t i = 0; i < cur->length; ++i) {
      NodeBase* n = cur->slots()[i].load(std::memory_order_acquire);
      if (n == nullptr) continue;
      if (n == Sentinels::fv() || n->kind == Kind::kFNode ||
          n->kind == Kind::kENode) {
        return;  // another structural operation owns this node
      }
      ++live;
      if (n->kind != Kind::kSNode) hoistable_only = false;
    }
    const bool empty = live == 0;
    const bool singleton =
        config_.compress_singletons && live == 1 && hoistable_only;
    if (!empty && !singleton) return;
    ENode* en = ENode::make(prev, slot_index(h, lev - 4, prev->length), cur,
                            h, lev, /*compress=*/true);
    testkit::chaos_point("cachetrie.compress_announce");
    NodeBase* expected = cur;
    if (prev->slots()[en->parentpos].compare_exchange_strong(
            expected, en, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      account(static_cast<std::ptrdiff_t>(sizeof(ENode)));
      complete_enode(en);
    } else {
      delete en;  // [delete: unpublished]
    }
  }

  // --- freezing and node replacement (paper Fig. 4) --------------------------

  /// Makes every slot of `cur` permanently non-writable: null -> FVNode,
  /// SNode.txn -> FSNode, child ANode/LNode -> FNode wrapper (children are
  /// frozen recursively). Pending txns and nested announcements are
  /// completed along the way. Idempotent; any number of threads may help.
  void freeze(ANode* cur) {
    // Counts freeze passes, helpers included — the helping rate under
    // contention is itself the signal of interest.
    obs::sites::cachetrie_freeze.add();
    obs::trace::emit(obs::trace::EventId::kCachetrieFreeze,
                     reinterpret_cast<std::uintptr_t>(cur), cur->length);
    std::uint32_t i = 0;
    while (i < cur->length) {
      // Freezing races other freezers slot-by-slot and pending txns get
      // committed mid-freeze; perturb every slot visit.
      testkit::chaos_point("cachetrie.freeze_slot");
      auto& slot = cur->slots()[i];
      NodeBase* node = slot.load(std::memory_order_acquire);
      if (node == nullptr) {
        NodeBase* expected = nullptr;
        if (slot.compare_exchange_strong(expected, Sentinels::fv(),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          ++i;
        }
        continue;
      }
      if (node == Sentinels::fv()) {
        ++i;
        continue;
      }
      switch (node->kind) {
        case Kind::kSNode: {
          auto* sn = static_cast<SNodeT*>(node);
          NodeBase* txn = sn->txn.load(std::memory_order_acquire);
          if (txn == Sentinels::no_txn()) {
            NodeBase* expected = Sentinels::no_txn();
            // [publishes: CT_FREEZE]
            if (sn->txn.compare_exchange_strong(expected, Sentinels::fs(),
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
              ++i;
            }
            continue;
          }
          if (txn == Sentinels::fs()) {
            ++i;
            continue;
          }
          // Pending change: commit it (possibly null) and re-examine.
          NodeBase* expected = node;
          slot.compare_exchange_strong(expected, txn,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
          continue;
        }
        case Kind::kANode:
        case Kind::kLNode: {
          FNode* fn = FNode::make(node);
          NodeBase* expected = node;
          if (slot.compare_exchange_strong(expected, fn,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            account(static_cast<std::ptrdiff_t>(sizeof(FNode)));
          } else {
            delete fn;  // [delete: unpublished]
          }
          continue;  // revisit: the kFNode case below recurses
        }
        case Kind::kFNode: {
          NodeBase* frozen = static_cast<FNode*>(node)->frozen;
          if (frozen->kind == Kind::kANode) {
            freeze(static_cast<ANode*>(frozen));
          }
          ++i;
          continue;
        }
        case Kind::kENode:
          complete_enode(static_cast<ENode*>(node));
          continue;
        default:
          assert(false && "unexpected node kind while freezing");
          ++i;
          continue;
      }
    }
  }

  /// Finishes an announced expansion or compression: freeze the target,
  /// build the replacement, publish it in en->result (first builder wins),
  /// and commit it into the parent slot. The unique winner of the parent
  /// CAS retires the announcement and the frozen originals.
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  void complete_enode(ENode* en) {
    testkit::chaos_point("cachetrie.enode_complete");
    freeze(en->target);
    NodeBase* replacement;
    if (en->compress) {
      replacement = revive_copy(en->target);
    } else {
      ANode* wide = ANode::make(16);
      expand_copy(en->target, wide, en->level);
      replacement = wide;
    }
    testkit::chaos_point("cachetrie.enode_publish");
    NodeBase* expected = Sentinels::pending();
    // [publishes: CT_ENODE_RESULT]
    if (!en->result.compare_exchange_strong(expected, replacement,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      destroy_subtree_value(replacement);  // lost the build race
    }
    NodeBase* committed = en->result.load(std::memory_order_acquire);
    // Footprint of the committed replacement, taken before the parent-slot
    // CAS: until the unique winner of that CAS publishes it, the subtree is
    // unreachable for mutation (helpers only return from here after the
    // winner's CAS), so the walk is exact.
    const std::ptrdiff_t committed_bytes =
        bounded_ ? static_cast<std::ptrdiff_t>(subtree_footprint(committed))
                 : 0;
    testkit::chaos_point("cachetrie.enode_commit");
    NodeBase* expected_en = en;
    if (en->parent->slots()[en->parentpos].compare_exchange_strong(
            expected_en, committed, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      account(committed_bytes - static_cast<std::ptrdiff_t>(sizeof(ENode)));
      if (committed != nullptr && committed->kind == Kind::kANode) {
        maybe_inhabit(committed, en->hash, en->level);
      }
      bump_stat(en->compress ? &Stats::compressions : &Stats::expansions);
      if (en->compress) {
        obs::sites::cachetrie_compress.add();
        obs::trace::emit(obs::trace::EventId::kCachetrieCompress, en->hash,
                         en->level);
      } else {
        obs::sites::cachetrie_expand.add();
        obs::trace::emit(obs::trace::EventId::kCachetrieExpand, en->hash,
                         en->level);
      }
      retire_frozen(en->target, en->hash, en->level);
      Reclaimer::template retire<ENode>(en);
    }
  }

  /// Transfers a frozen narrow node's pairs into a fresh wide node (paper's
  /// `copy`). By the structural invariant, a narrow node only ever holds
  /// SNodes (collisions in a narrow node expand it before going deeper), and
  /// distinct 2-bit positions imply distinct 4-bit positions, so the copy is
  /// collision-free.
  void expand_copy(ANode* narrow, ANode* wide, std::uint32_t lev) {
    for (std::uint32_t i = 0; i < narrow->length; ++i) {
      // [acquires: CT_FREEZE]
      NodeBase* node = narrow->slots()[i].load(std::memory_order_acquire);
      if (node == Sentinels::fv()) continue;
      assert(node != nullptr && node->kind == Kind::kSNode &&
             "narrow nodes hold only SNodes");
      auto* sn = static_cast<SNodeT*>(node);
      auto& dst = wide->slots()[slot_index(sn->hash, lev, wide->length)];
      assert(dst.load(std::memory_order_relaxed) == nullptr);
      // The copy carries the source stamp: it is the same logical entry.
      dst.store(SNodeT::make(sn->hash, sn->key, sn->value,
                             sn->stamp.load(std::memory_order_relaxed)),
                std::memory_order_relaxed);
    }
  }

  /// Deep-copies a fully frozen subtree back to life (compression). Returns
  ///   * nullptr            — no live pairs remained (the paper's case);
  ///   * a fresh SNode      — exactly one pair remained and singleton
  ///                          collapsing is enabled (hoists it one level up);
  ///   * a fresh ANode      — otherwise, with children revived recursively.
  NodeBase* revive_copy(ANode* frozen) {
    ANode* fresh = ANode::make(frozen->length);
    std::uint32_t live = 0;
    std::uint32_t last_pos = 0;
    for (std::uint32_t i = 0; i < frozen->length; ++i) {
      NodeBase* node = frozen->slots()[i].load(std::memory_order_acquire);
      if (node == Sentinels::fv()) continue;
      assert(node != nullptr);
      NodeBase* copy = nullptr;
      if (node->kind == Kind::kSNode) {
        auto* sn = static_cast<SNodeT*>(node);
        copy = SNodeT::make(sn->hash, sn->key, sn->value,
                            sn->stamp.load(std::memory_order_relaxed));
      } else if (node->kind == Kind::kFNode) {
        NodeBase* wrapped = static_cast<FNode*>(node)->frozen;
        if (wrapped->kind == Kind::kANode) {
          copy = revive_copy(static_cast<ANode*>(wrapped));
        } else {
          copy = copy_chain(static_cast<LNodeT*>(wrapped));
        }
      } else {
        assert(false && "unexpected node kind in frozen subtree");
      }
      if (copy == nullptr) continue;  // child compressed away entirely
      fresh->slots()[i].store(copy, std::memory_order_relaxed);
      ++live;
      last_pos = i;
    }
    if (live == 0) {
      ANode::destroy(fresh);
      return nullptr;
    }
    if (live == 1 && config_.compress_singletons) {
      NodeBase* only = fresh->slots()[last_pos].load(std::memory_order_relaxed);
      if (only->kind == Kind::kSNode) {
        ANode::destroy(fresh);
        return only;
      }
    }
    return fresh;
  }

  LNodeT* copy_chain(LNodeT* chain) {
    LNodeT* fresh = nullptr;
    for (LNodeT* l = chain; l != nullptr; l = l->next) {
      fresh = LNodeT::make(l->hash, l->key, l->value, fresh, l->stamp);
    }
    return fresh;
  }

  // --- subtree construction for wide-node collisions -------------------------

  /// Builds the replacement for an SNode that collided with a new key inside
  /// a wide node (paper's createANode): a fresh copy of the old pair plus
  /// the new pair, pushed as many levels down as their hashes stay equal.
  /// Equal full hashes produce an LNode chain.
  NodeBase* create_subtree(SNodeT* osn, std::uint64_t h, const K& key,
                           const V& value, std::uint32_t lev,
                           std::uint64_t new_stamp) {
    const std::uint64_t ostamp = osn->stamp.load(std::memory_order_relaxed);
    if (osn->hash == h) {
      LNodeT* chain =
          LNodeT::make(osn->hash, osn->key, osn->value, nullptr, ostamp);
      return LNodeT::make(h, key, value, chain, new_stamp);
    }
    SNodeT* copy = SNodeT::make(osn->hash, osn->key, osn->value, ostamp);
    SNodeT* fresh = SNodeT::make(h, key, value, new_stamp);
    return branch_apart(copy, copy->hash, fresh, lev);
  }

  /// Hangs two nodes with distinct hashes (`a` at hash `ah`, SNode `b`)
  /// under a minimal chain of inner nodes starting at level `lev`. Prefers
  /// a narrow node when 2 bits separate them (the paper's space-saving
  /// trick), a wide node when 4 bits do, and recurses otherwise. `a` may be
  /// an SNode or an existing LNode chain (hash-collision chains being pushed
  /// deeper).
  NodeBase* branch_apart(NodeBase* a, std::uint64_t ah, SNodeT* b,
                         std::uint32_t lev) {
    assert(lev <= 60 && "distinct 64-bit hashes must separate by level 60");
    const std::uint32_t a2 = slot_index(ah, lev, 4);
    const std::uint32_t b2 = slot_index(b->hash, lev, 4);
    if (a2 != b2 && a->kind == Kind::kSNode) {
      // Narrow nodes may hold only SNodes (see expand_copy), so an LNode
      // child always gets a wide parent.
      ANode* an = ANode::make(4);
      an->slots()[a2].store(a, std::memory_order_relaxed);
      an->slots()[b2].store(b, std::memory_order_relaxed);
      return an;
    }
    const std::uint32_t a4 = slot_index(ah, lev, 16);
    const std::uint32_t b4 = slot_index(b->hash, lev, 16);
    ANode* an = ANode::make(16);
    if (a4 != b4) {
      an->slots()[a4].store(a, std::memory_order_relaxed);
      an->slots()[b4].store(b, std::memory_order_relaxed);
    } else {
      an->slots()[a4].store(branch_apart(a, ah, b, lev + 4),
                            std::memory_order_relaxed);
    }
    return an;
  }

  // --- deallocation helpers ---------------------------------------------------

  /// Deep-deletes an unpublished value subtree (lost CAS races, ENode build
  /// races). Never called on anything reachable.
  void destroy_subtree_value(NodeBase* node) {
    if (node == nullptr || node == Sentinels::fv()) return;
    switch (node->kind) {
      case Kind::kSNode:
        delete static_cast<SNodeT*>(node);
        return;
      case Kind::kLNode:
        destroy_chain(static_cast<LNodeT*>(node));
        return;
      case Kind::kANode: {
        auto* an = static_cast<ANode*>(node);
        for (std::uint32_t i = 0; i < an->length; ++i) {
          destroy_subtree_value(
              an->slots()[i].load(std::memory_order_relaxed));
        }
        ANode::destroy(an);
        return;
      }
      default:
        assert(false && "unexpected node kind in unpublished subtree");
    }
  }

  /// Like destroy_subtree_value, but spares `keep` (an existing chain that
  /// was linked, not copied, into the failed subtree).
  void destroy_subtree_value_sparing(NodeBase* node, NodeBase* keep) {
    if (node == nullptr || node == keep) return;
    if (node->kind == Kind::kANode) {
      auto* an = static_cast<ANode*>(node);
      for (std::uint32_t i = 0; i < an->length; ++i) {
        destroy_subtree_value_sparing(
            an->slots()[i].load(std::memory_order_relaxed), keep);
      }
      ANode::destroy(an);
      return;
    }
    destroy_subtree_value(node);
  }

  void destroy_chain(LNodeT* chain) {
    while (chain != nullptr) {
      LNodeT* next = chain->next;
      delete chain;
      chain = next;
    }
  }

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  void retire_chain(LNodeT* chain) {
    while (chain != nullptr) {
      LNodeT* next = chain->next;
      account(-static_cast<std::ptrdiff_t>(sizeof(LNodeT)));
      Reclaimer::template retire<LNodeT>(chain);
      chain = next;
    }
  }

  /// Retires a fully frozen, just-unlinked subtree: the ANodes, their FNode
  /// wrappers, frozen SNodes and LNode chains. Called exactly once, by the
  /// winner of the parent-slot CAS in complete_enode. `prefix` is the
  /// subtree root's path (low `level` bits are significant) — needed to
  /// clear cache entries that may still reference nodes of the subtree.
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  void retire_frozen(ANode* frozen, std::uint64_t prefix,
                     std::uint32_t level) {
    for (std::uint32_t i = 0; i < frozen->length; ++i) {
      NodeBase* node = frozen->slots()[i].load(std::memory_order_acquire);
      if (node == Sentinels::fv()) continue;
      assert(node != nullptr);
      if (node->kind == Kind::kSNode) {
        auto* sn = static_cast<SNodeT*>(node);
        clear_cache_refs(sn, sn->hash, level + 4);
        retire_snode(sn);
      } else if (node->kind == Kind::kFNode) {
        auto* fn = static_cast<FNode*>(node);
        if (fn->frozen->kind == Kind::kANode) {
          // Children of a wide node pin 4 more prefix bits (narrow nodes
          // have no ANode children).
          const std::uint64_t child_prefix =
              (prefix & ((std::uint64_t{1} << level) - 1)) |
              (static_cast<std::uint64_t>(i) << level);
          retire_frozen(static_cast<ANode*>(fn->frozen), child_prefix,
                        level + 4);
        } else {
          retire_chain(static_cast<LNodeT*>(fn->frozen));
        }
        account(-static_cast<std::ptrdiff_t>(sizeof(FNode)));
        Reclaimer::template retire<FNode>(fn);
      } else {
        assert(false && "unexpected node kind in frozen subtree");
      }
    }
    clear_cache_refs(frozen, prefix, level);
    account(-static_cast<std::ptrdiff_t>(ANode::alloc_size(frozen->length)));
    Reclaimer::retire_raw_sized(frozen, &mr::free_raw_storage,
                                ANode::alloc_size(frozen->length));
  }

  /// Destructor-only: deep-deletes the live structure, including remnants of
  /// unfinished announcements (possible if the trie is destroyed right after
  /// a crashed thread... in practice: after quiescence these do not occur,
  /// but handling them keeps the destructor total).
  void destroy_subtree(NodeBase* node) {
    if (node == nullptr || node == Sentinels::fv()) return;
    switch (node->kind) {
      case Kind::kSNode:
        delete static_cast<SNodeT*>(node);
        return;
      case Kind::kLNode:
        destroy_chain(static_cast<LNodeT*>(node));
        return;
      case Kind::kFNode: {
        auto* fn = static_cast<FNode*>(node);
        destroy_subtree(fn->frozen);
        delete fn;
        return;
      }
      case Kind::kENode: {
        auto* en = static_cast<ENode*>(node);
        destroy_subtree(en->target);
        NodeBase* result = en->result.load(std::memory_order_relaxed);
        if (result != Sentinels::pending()) destroy_subtree(result);
        delete en;
        return;
      }
      case Kind::kANode: {
        auto* an = static_cast<ANode*>(node);
        for (std::uint32_t i = 0; i < an->length; ++i) {
          destroy_subtree(an->slots()[i].load(std::memory_order_relaxed));
        }
        ANode::destroy(an);
        return;
      }
      default:
        assert(false && "unexpected node kind during destruction");
    }
  }

  // --- cache maintenance (paper Fig. 7 and Fig. 8) ----------------------------

  /// Writes `nv` into the cache if the cache covers `node_level`, creating
  /// the cache at cache_init_level the first time a node at or below
  /// cache_init_trigger_level shows up (Fig. 7).
  void maybe_inhabit(NodeBase* nv, std::uint64_t h,
                     std::uint32_t node_level) const {
    if (!config_.use_cache) return;
    // [acquires: CT_CACHE_HEAD]
    CacheArray* cache = cache_head_.load(std::memory_order_acquire);
    if (cache == nullptr) {
      if (node_level < config_.cache_init_trigger_level) return;
      CacheArray* fresh = CacheArray::make(config_.cache_init_level,
                                           config_.miss_slots, nullptr);
      CacheArray* expected = nullptr;
      // [publishes: CT_CACHE_HEAD]
      if (cache_head_.compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        account(static_cast<std::ptrdiff_t>(fresh->footprint_bytes()));
        bump_stat(&Stats::cache_installs);
        obs::sites::cachetrie_cache_install.add();
        obs::trace::emit(obs::trace::EventId::kCachetrieCacheInstall,
                         config_.cache_init_level, node_level);
      } else {
        CacheArray::destroy(fresh);
      }
      cache = cache_head_.load(std::memory_order_acquire);
    }
    if (cache->level == node_level) {
      // Store, then re-validate (§3.5's plain WRITE is safe on the JVM
      // because a stale entry pins the dead node in memory and the dead node
      // is recognizably frozen; with manual reclamation a stale entry would
      // dangle once the node is freed). The protocol here pairs with
      // clear_cache_refs(): an unlinker marks the node (txn/freeze), then
      // clears matching cache entries; an inhabiter stores, then re-checks
      // liveness and undoes its own store if the node died. The seq_cst
      // fences make this a store-buffering (Dekker) pair: either the
      // inhabiter sees the mark, or the clearer sees the store — so no
      // resurrection survives the node's grace period.
      auto& entry = cache->entries()[cache->index_of(h)];
      // [publishes: CT_CACHE_INSTALL]
      entry.store(nv, std::memory_order_release);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!cachee_live(nv, h, node_level)) {
        NodeBase* expected = nv;
        entry.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed);
      }
    }
  }

  /// True while the node may still be linked in the trie: a live SNode has
  /// an idle txn, and a live ANode has at least its relevant entry
  /// unfrozen (once an ANode is detached, every entry is frozen).
  bool cachee_live(NodeBase* nv, std::uint64_t h,
                   std::uint32_t node_level) const {
    if (nv->kind == Kind::kSNode) {
      return static_cast<SNodeT*>(nv)->txn.load(std::memory_order_seq_cst) ==
             Sentinels::no_txn();
    }
    if (nv->kind == Kind::kANode) {
      auto* an = static_cast<ANode*>(nv);
      NodeBase* e = an->slots()[slot_index(h, node_level, an->length)].load(
          std::memory_order_seq_cst);
      if (e == Sentinels::fv()) return false;
      if (e != nullptr) {
        if (e->kind == Kind::kFNode) return false;
        if (e->kind == Kind::kSNode &&
            static_cast<SNodeT*>(e)->txn.load(std::memory_order_seq_cst) ==
                Sentinels::fs()) {
          return false;
        }
      }
      return true;
    }
    return false;
  }

  /// Erases cache entries that reference `node` before it is retired. Every
  /// retire site of a cacheable node (SNodes and ANodes) must call this with
  /// the node's path hash (any key hash whose low `level` bits equal the
  /// node's prefix) so that no cache entry outlives the node's grace period.
  void clear_cache_refs(NodeBase* node, std::uint64_t path_hash,
                        std::uint32_t level) const {
    if (!config_.use_cache) return;
    // [acquires: CT_CACHE_INSTALL]
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (CacheArray* c = cache_head_.load(std::memory_order_acquire);
         c != nullptr; c = c->parent) {
      if (c->level != level) continue;
      auto& entry = c->entries()[c->index_of(path_hash)];
      NodeBase* cur = entry.load(std::memory_order_seq_cst);
      if (cur == node) {
        entry.compare_exchange_strong(cur, nullptr,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed);
      }
    }
  }

  /// Counts a miss in this thread's padded slot; at max_misses, samples the
  /// key-depth distribution and adjusts the cache level (Fig. 8).
  void record_cache_miss() const {
    CacheArray* cache = cache_head_.load(std::memory_order_acquire);
    if (cache == nullptr) return;
    bump_stat(&Stats::cache_misses_recorded);
    obs::sites::cachetrie_cache_miss.add();
    auto& counter =
        cache->misses()[util::current_thread_id() % cache->miss_slots].value;
    const std::int64_t count = counter.load(std::memory_order_relaxed);
    if (count >= static_cast<std::int64_t>(config_.max_misses)) {
      counter.store(0, std::memory_order_relaxed);
      sample_and_adjust(cache);
    } else {
      counter.store(count + 1, std::memory_order_relaxed);
    }
  }

  /// Depth sampling (§3.6): descend random hash paths, histogram the leaf
  /// depths, and move the cache to the most populated pair of adjacent
  /// levels. Neither the counting nor the sampling is linearizable — a race
  /// can pick a stale level, which the next pass corrects.
  void sample_and_adjust(CacheArray* head) const {
    bump_stat(&Stats::sampling_passes);
    obs::sites::cachetrie_sampling_pass.add();
    std::array<std::uint32_t, 17> hist{};
    auto& rng = util::thread_rng();
    for (std::uint32_t s = 0; s < config_.sample_size; ++s) {
      const int lev = sample_path_leaf_level(rng.next());
      if (lev >= 0) {
        ++hist[static_cast<std::size_t>(lev) / 4];
        obs::sites::cachetrie_sample_leaf_level.record(
            static_cast<std::uint64_t>(lev) / 4);
      }
    }
    std::size_t best_d = 0;
    std::uint64_t best_count = 0;
    for (std::size_t d = 0; d + 1 < hist.size(); ++d) {
      const std::uint64_t c =
          static_cast<std::uint64_t>(hist[d]) + hist[d + 1];
      if (c > best_count) {
        best_count = c;
        best_d = d;
      }
    }
    if (best_count == 0) return;
    std::uint32_t desired = static_cast<std::uint32_t>(best_d) * 4;
    desired = std::max(desired, config_.min_cache_level);
    desired = std::min(desired, config_.max_cache_level);
    adjust_cache_level(head, desired);
  }

  /// Follows one random hash path; returns the level of the leaf found, or
  /// -1 if the path ends in an empty slot.
  int sample_path_leaf_level(std::uint64_t h) const {
    const ANode* cur = root_;
    std::uint32_t lev = 0;
    while (true) {
      NodeBase* n = cur->slots()[slot_index(h, lev, cur->length)].load(
          std::memory_order_acquire);
      if (n == nullptr || n == Sentinels::fv()) return -1;
      switch (n->kind) {
        case Kind::kANode:
          cur = static_cast<const ANode*>(n);
          lev += 4;
          continue;
        case Kind::kSNode:
        case Kind::kLNode:
          return static_cast<int>(lev) + 4;
        case Kind::kENode:
          cur = static_cast<const ENode*>(n)->target;
          lev += 4;
          continue;
        case Kind::kFNode: {
          NodeBase* frozen = static_cast<const FNode*>(n)->frozen;
          if (frozen->kind == Kind::kANode) {
            cur = static_cast<const ANode*>(frozen);
            lev += 4;
            continue;
          }
          return static_cast<int>(lev) + 4;
        }
        default:
          return -1;
      }
    }
  }

  /// Installs a cache array at `desired`, reusing the ancestor chain. The
  /// chain's levels are strictly decreasing, so growing prepends a deeper
  /// array and shrinking pops (and retires) a prefix.
  // [smr: caller-pinned] -- the guard is held by the public entry point.
  void adjust_cache_level(CacheArray* head, std::uint32_t desired) const {
    if (head->level == desired) return;
    if (desired > head->level) {
      CacheArray* fresh =
          CacheArray::make(desired, config_.miss_slots, head);
      CacheArray* expected = head;
      if (cache_head_.compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        account(static_cast<std::ptrdiff_t>(fresh->footprint_bytes()));
        bump_stat(&Stats::cache_level_changes);
        obs::sites::cachetrie_cache_level_change.add();
        obs::trace::emit(obs::trace::EventId::kCachetrieCacheLevelChange,
                         head->level, desired);
      } else {
        CacheArray::destroy(fresh);
      }
      return;
    }
    CacheArray* anc = head->parent;
    while (anc != nullptr && anc->level > desired) anc = anc->parent;
    CacheArray* fresh = (anc != nullptr && anc->level == desired)
                            ? anc
                            : CacheArray::make(desired, config_.miss_slots,
                                               anc);
    CacheArray* expected = head;
    if (cache_head_.compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      if (fresh != anc) {
        account(static_cast<std::ptrdiff_t>(fresh->footprint_bytes()));
      }
      bump_stat(&Stats::cache_level_changes);
      obs::sites::cachetrie_cache_level_change.add();
      obs::trace::emit(obs::trace::EventId::kCachetrieCacheLevelChange,
                       head->level, desired);
      // Retire the unlinked prefix [head, anc); readers inside guards may
      // still be walking it.
      for (CacheArray* c = head; c != anc;) {
        CacheArray* parent = c->parent;
        account(-static_cast<std::ptrdiff_t>(c->footprint_bytes()));
        Reclaimer::retire_raw_sized(c, &CacheArray::destroy_erased,
                                    c->footprint_bytes());
        c = parent;
      }
    } else if (fresh != anc) {
      CacheArray::destroy(fresh);
    }
  }

  // --- traversals --------------------------------------------------------------

  /// Invokes fn(key, value, stamp) for every pair in the subtree (the public
  /// wrappers adapt the arity and filter corpses in bounded mode).
  template <typename F>
  void for_each_node(const NodeBase* node, F& fn) const {
    if (node == nullptr || node == Sentinels::fv()) return;
    switch (node->kind) {
      case Kind::kSNode: {
        auto* sn = static_cast<const SNodeT*>(node);
        fn(sn->key, sn->value, sn->stamp.load(std::memory_order_relaxed));
        return;
      }
      case Kind::kLNode:
        for (const LNodeT* l = static_cast<const LNodeT*>(node); l != nullptr;
             l = l->next) {
          fn(l->key, l->value, l->stamp);
        }
        return;
      case Kind::kANode: {
        auto* an = static_cast<const ANode*>(node);
        for (std::uint32_t i = 0; i < an->length; ++i) {
          for_each_node(an->slots()[i].load(std::memory_order_acquire), fn);
        }
        return;
      }
      case Kind::kENode:
        for_each_node(static_cast<const ENode*>(node)->target, fn);
        return;
      case Kind::kFNode:
        for_each_node(static_cast<const FNode*>(node)->frozen, fn);
        return;
      default:
        return;
    }
  }

  std::size_t subtree_footprint(const NodeBase* node) const {
    if (node == nullptr || node == Sentinels::fv()) return 0;
    switch (node->kind) {
      case Kind::kSNode:
        return sizeof(SNodeT);
      case Kind::kLNode: {
        std::size_t bytes = 0;
        for (const LNodeT* l = static_cast<const LNodeT*>(node); l != nullptr;
             l = l->next) {
          bytes += sizeof(LNodeT);
        }
        return bytes;
      }
      case Kind::kANode: {
        auto* an = static_cast<const ANode*>(node);
        std::size_t bytes = ANode::alloc_size(an->length);
        for (std::uint32_t i = 0; i < an->length; ++i) {
          bytes += subtree_footprint(
              an->slots()[i].load(std::memory_order_acquire));
        }
        return bytes;
      }
      case Kind::kENode:
        return sizeof(ENode) +
               subtree_footprint(static_cast<const ENode*>(node)->target);
      case Kind::kFNode:
        return sizeof(FNode) +
               subtree_footprint(static_cast<const FNode*>(node)->frozen);
      default:
        return 0;
    }
  }

  void collect_histogram(const NodeBase* node, std::uint32_t lev,
                         LevelHistogram& hist) const {
    if (node == nullptr || node == Sentinels::fv()) return;
    switch (node->kind) {
      case Kind::kSNode:
        ++hist.counts[lev / 4];
        ++hist.total;
        return;
      case Kind::kLNode:
        for (const LNodeT* l = static_cast<const LNodeT*>(node); l != nullptr;
             l = l->next) {
          ++hist.counts[lev / 4];
          ++hist.total;
        }
        return;
      case Kind::kANode: {
        auto* an = static_cast<const ANode*>(node);
        for (std::uint32_t i = 0; i < an->length; ++i) {
          collect_histogram(an->slots()[i].load(std::memory_order_acquire),
                            lev + 4, hist);
        }
        return;
      }
      case Kind::kENode:
        collect_histogram(static_cast<const ENode*>(node)->target, lev,
                          hist);
        return;
      case Kind::kFNode:
        collect_histogram(static_cast<const FNode*>(node)->frozen, lev,
                          hist);
        return;
      default:
        return;
    }
  }

  void validate_node(const NodeBase* node, std::uint64_t prefix,
                     std::uint32_t lev,
                     std::vector<std::string>& issues) const {
    if (node == nullptr) return;
    if (node == Sentinels::fv()) {
      issues.push_back("FVNode present in a quiescent trie at level " +
                       std::to_string(lev));
      return;
    }
    switch (node->kind) {
      case Kind::kSNode: {
        auto* sn = static_cast<const SNodeT*>(node);
        const std::uint64_t mask = lev == 0 ? 0 : ((1ULL << lev) - 1);
        if ((sn->hash & mask) != (prefix & mask)) {
          issues.push_back("SNode hash prefix mismatch at level " +
                           std::to_string(lev));
        }
        if (sn->txn.load(std::memory_order_acquire) != Sentinels::no_txn()) {
          issues.push_back("SNode with non-idle txn in a quiescent trie");
        }
        return;
      }
      case Kind::kLNode: {
        std::size_t pairs = 0;
        const std::uint64_t hash = static_cast<const LNodeT*>(node)->hash;
        for (const LNodeT* l = static_cast<const LNodeT*>(node); l != nullptr;
             l = l->next) {
          ++pairs;
          if (l->hash != hash) {
            issues.push_back("LNode chain with mixed hashes");
          }
        }
        if (pairs < 2) {
          issues.push_back("LNode chain with fewer than 2 pairs");
        }
        const std::uint64_t mask = lev == 0 ? 0 : ((1ULL << lev) - 1);
        if ((hash & mask) != (prefix & mask)) {
          issues.push_back("LNode hash prefix mismatch at level " +
                           std::to_string(lev));
        }
        return;
      }
      case Kind::kANode: {
        auto* an = static_cast<const ANode*>(node);
        if (lev > 0 && an->length != 4 && an->length != 16) {
          issues.push_back("ANode with invalid length");
        }
        for (std::uint32_t i = 0; i < an->length; ++i) {
          const NodeBase* child =
              an->slots()[i].load(std::memory_order_acquire);
          if (child != nullptr && an->length == 4 &&
              child->kind != Kind::kSNode) {
            issues.push_back("narrow ANode holding a non-SNode child");
          }
          // Extend the known prefix with this slot's bits. For narrow nodes
          // only 2 bits are pinned by the slot index.
          const std::uint64_t bits = static_cast<std::uint64_t>(i) << lev;
          validate_node(child, prefix | bits, lev + (an->length == 4 ? 2 : 4),
                        issues);
        }
        return;
      }
      default:
        issues.push_back("special node present in a quiescent trie");
        return;
    }
  }

  Config config_;
  Hash hasher_{};
  ANode* root_;
  mutable std::atomic<CacheArray*> cache_head_{nullptr};
  mutable Stats stats_;

  // --- bounded-memory mode state (DESIGN.md §3). All words are advisory:
  // every access is relaxed, and no protocol decision builds a
  // happens-before edge through them.
  bool bounded_ = false;
  /// Logical eviction clock (one tick per op) when no injectable clock is
  /// configured. Mutable: lookups refresh stamps and advance the clock.
  mutable std::atomic<std::uint64_t> op_tick_{0};
  /// Signed so transient publish/retire interleavings can dip below zero.
  mutable std::atomic<std::int64_t> resident_bytes_{0};
  std::atomic<std::uint64_t> evict_cursor_{0};
  std::atomic<std::uint64_t> lru_window_{1};
  mutable std::atomic<std::uint64_t> lru_evictions_{0};
  mutable std::atomic<std::uint64_t> ttl_expiries_{0};
  mutable std::atomic<std::uint64_t> backpressure_scans_{0};
};

}  // namespace cachetrie

