// cache.hpp — the quiescently consistent cache (paper §3.4-3.6).
//
// The cache is a singly-linked list of per-level arrays, deepest level
// first. An array covering trie level L has 2^L entries, indexed by the low
// L bits of a key's hash; each entry is null or points to a node at level L
// (an ANode, or an SNode whose parent ANode sits at level L-4).
//
// The paper stores a CacheNode header in entry 0 and offsets data entries by
// one; here the header fields live in the struct itself and the entry array
// follows, which keeps indexing branch-free without changing semantics.
//
// Consistency model: entries are written with plain atomic stores (no CAS —
// §3.5: "A CAS is not necessary, since the cache need not be entirely
// consistent"). Correctness never depends on a cache entry being current;
// the fast paths re-validate liveness through the txn/freeze protocol before
// trusting anything they read.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>

#include "cachetrie/nodes.hpp"
#include "util/padded.hpp"

namespace cachetrie::detail {

struct CacheArray {
  std::uint32_t level;       // trie level covered (bits of hash consumed)
  std::uint32_t miss_slots;  // padded per-thread miss counters
  CacheArray* parent;        // next shallower cache level (may be null)

  std::size_t entry_count() const noexcept { return std::size_t{1} << level; }

  util::PaddedCounter* misses() noexcept {
    return reinterpret_cast<util::PaddedCounter*>(
        reinterpret_cast<char*>(this) + misses_offset());
  }

  std::atomic<NodeBase*>* entries() noexcept {
    return reinterpret_cast<std::atomic<NodeBase*>*>(
        reinterpret_cast<char*>(this) + entries_offset(miss_slots));
  }
  const std::atomic<NodeBase*>* entries() const noexcept {
    return reinterpret_cast<const std::atomic<NodeBase*>*>(
        reinterpret_cast<const char*>(this) + entries_offset(miss_slots));
  }

  std::size_t index_of(std::uint64_t hash) const noexcept {
    return hash & (entry_count() - 1);
  }

  static std::size_t misses_offset() noexcept {
    // Counters are cache-line padded; start them on a line boundary.
    return (sizeof(CacheArray) + util::kCacheLineSize - 1) &
           ~(util::kCacheLineSize - 1);
  }
  static std::size_t entries_offset(std::uint32_t miss_slots) noexcept {
    return misses_offset() + miss_slots * sizeof(util::PaddedCounter);
  }
  static std::size_t alloc_size(std::uint32_t level,
                                std::uint32_t miss_slots) noexcept {
    return entries_offset(miss_slots) +
           (std::size_t{1} << level) * sizeof(std::atomic<NodeBase*>);
  }

  static CacheArray* make(std::uint32_t level, std::uint32_t miss_slots,
                          CacheArray* parent) {
    assert(level >= 4 && level <= 30 && level % 4 == 0);
    void* raw = ::operator new(alloc_size(level, miss_slots),
                               std::align_val_t{util::kCacheLineSize});
    auto* c = new (raw) CacheArray{level, miss_slots, parent};
    for (std::uint32_t i = 0; i < miss_slots; ++i) {
      std::construct_at(c->misses() + i);
    }
    const std::size_t n = c->entry_count();
    for (std::size_t i = 0; i < n; ++i) {
      std::construct_at(c->entries() + i, nullptr);
    }
    return c;
  }

  static void destroy(CacheArray* c) noexcept {
    ::operator delete(c, std::align_val_t{util::kCacheLineSize});
  }

  /// Type-erased deleter for reclaimer retirement.
  static void destroy_erased(void* c) {
    destroy(static_cast<CacheArray*>(c));
  }

  std::size_t footprint_bytes() const noexcept {
    return alloc_size(level, miss_slots);
  }
};

}  // namespace cachetrie::detail
