// chashmap.hpp — concurrent closed-addressing hash table, modeled on the
// JDK 8 ConcurrentHashMap redesign (Lea, 2014) that the cache-trie paper
// uses as its baseline ("the most efficient and scalable concurrent
// dictionary that we are aware of").
//
// Faithfully reproduced properties:
//   * wait-free lock-free lookups: readers walk bucket chains with no locks
//     and no helping;
//   * fine-grained writes: an insert into an empty bin is a single CAS; a
//     collision takes a per-bin spinlock (the JDK synchronizes on the bin's
//     first node — same granularity);
//   * cooperative incremental resize: when the load factor is exceeded,
//     writers allocate a double-size table and transfer bins in strides,
//     planting forwarding markers so concurrent operations redirect; any
//     writer arriving during a resize helps finish it;
//   * striped element counters (LongAdder-style) so size bookkeeping does
//     not serialize writers.
//
// Deviations (documented in DESIGN.md): no treeification of long chains
// (the JDK's red-black bins only matter under adversarial hashing, which
// the mix64 finalizer prevents), and value updates replace the node rather
// than writing a volatile field (C++ values are inline, not references).
#pragma once

#include <atomic>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <vector>

#include "mr/epoch.hpp"
#include "obs/inventory.hpp"
#include "obs/trace.hpp"
#include "testkit/chaos.hpp"
#include "util/hashing.hpp"
#include "util/padded.hpp"
#include "util/spinwait.hpp"
#include "util/thread_id.hpp"

namespace cachetrie::chm {

template <typename K, typename V, typename Hash = util::DefaultHash<K>,
          typename Reclaimer = mr::EpochReclaimer>
class ConcurrentHashMap {
  struct Node;

  /// Sentinel planted in a transferred bin; searches restart in next_table.
  /// Recognized by hash == kForwardHash (never produced for real nodes
  /// because insert() forces bit 63 off... see adjust_hash).
  static constexpr std::uint64_t kForwardHash = ~std::uint64_t{0};

  struct Node {
    std::uint64_t hash;
    K key;
    V value;
    std::atomic<Node*> next;
    /// Last-use tick for the bounded-memory wrapper (evict.hpp); advisory,
    /// all accesses relaxed, 0 when the map is used unbounded. Transfer
    /// clones carry the source stamp (same logical entry).
    std::atomic<std::uint64_t> stamp;

    static Node* make(std::uint64_t h, const K& k, const V& v, Node* nxt,
                      std::uint64_t stamp = 0) {
      auto* n = new Node{h, k, v, {}, {}};
      n->next.store(nxt, std::memory_order_relaxed);
      n->stamp.store(stamp, std::memory_order_relaxed);
      return n;
    }
  };

  struct Table {
    std::size_t nbins;
    std::atomic<Table*> next{nullptr};           // set when a resize starts
    std::atomic<void*> marker{nullptr};          // shared ForwardNode
    std::atomic<std::size_t> transfer_index{0};  // next bin range to claim
    std::atomic<std::size_t> transferred{0};     // bins fully moved
    // bins + one spinlock byte per bin follow the header
    std::atomic<Node*>* bins() noexcept {
      return reinterpret_cast<std::atomic<Node*>*>(this + 1);
    }
    std::atomic<std::uint8_t>* locks() noexcept {
      return reinterpret_cast<std::atomic<std::uint8_t>*>(bins() + nbins);
    }

    static std::size_t alloc_size(std::size_t nbins) noexcept {
      return sizeof(Table) + nbins * (sizeof(std::atomic<Node*>) + 1);
    }

    static Table* make(std::size_t nbins) {
      void* raw = ::operator new(alloc_size(nbins));
      auto* t = new (raw) Table{};
      t->nbins = nbins;
      for (std::size_t i = 0; i < nbins; ++i) {
        std::construct_at(t->bins() + i, nullptr);
        std::construct_at(t->locks() + i, std::uint8_t{0});
      }
      return t;
    }

    static void destroy(Table* t) noexcept {
      t->~Table();
      ::operator delete(t);
    }
    static void destroy_erased(void* t) { destroy(static_cast<Table*>(t)); }
  };

  /// The forwarding marker is a Node whose hash is kForwardHash and whose
  /// next points at... nothing; the reader re-reads table_ (which already
  /// points at the newest table by the time forwarding nodes are visible...
  /// no: table_ flips only at the end). Instead the marker carries the next
  /// table through its `fwd` field.
  struct ForwardNode {
    Node node;  // node.hash == kForwardHash; key/value default
    Table* fwd;

    /// Designated allocator (SMR rule: raw `new` of protocol nodes lives
    /// only in make/destroy helpers).
    static ForwardNode* make(Table* next) {
      auto* f = new ForwardNode{};
      f->node.hash = kForwardHash;
      f->fwd = next;
      return f;
    }
  };

 public:
  explicit ConcurrentHashMap(std::size_t initial_bins = 16) {
    std::size_t n = 16;
    while (n < initial_bins) n <<= 1;
    table_.store(Table::make(n), std::memory_order_relaxed);
  }

  ConcurrentHashMap(const ConcurrentHashMap&) = delete;
  ConcurrentHashMap& operator=(const ConcurrentHashMap&) = delete;

  ~ConcurrentHashMap() {
    Table* t = table_.load(std::memory_order_relaxed);
    // A quiescent map has a single table (transfers complete before the
    // table pointer advances past them).
    for (std::size_t i = 0; i < t->nbins; ++i) {
      Node* n = t->bins()[i].load(std::memory_order_relaxed);
      while (n != nullptr) {
        Node* nx = n->next.load(std::memory_order_relaxed);
        // The final table never holds forwarding markers (transfers finish
        // before the table pointer advances); defensive break regardless.
        if (n->hash == kForwardHash) break;
        delete n;
        n = nx;
      }
    }
    Table::destroy(t);
  }

  /// Inserts or replaces; true iff the key was new. `stamp` seeds the new
  /// node's last-use tick (bounded wrapper only; 0 otherwise).
  bool insert(const K& key, const V& value, std::uint64_t stamp = 0) {
    return do_insert(key, value, /*only_if_absent=*/false, stamp);
  }

  bool put_if_absent(const K& key, const V& value, std::uint64_t stamp = 0) {
    return do_insert(key, value, /*only_if_absent=*/true, stamp);
  }

  std::optional<V> lookup(const K& key) const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("chm.pinned");
    const std::uint64_t h = adjust_hash(hasher_(key));
    // [acquires: CHM_TABLE_PUBLISH]
    Table* t = table_.load(std::memory_order_acquire);
    while (true) {
      // [acquires: CHM_BIN_LINK]
      Node* n = t->bins()[h & (t->nbins - 1)].load(std::memory_order_acquire);
      while (n != nullptr) {
        if (n->hash == kForwardHash) {
          t = reinterpret_cast<ForwardNode*>(n)->fwd;
          break;  // retry in the next table
        }
        if (n->hash == h && n->key == key) return n->value;
        n = n->next.load(std::memory_order_acquire);
      }
      if (n == nullptr) return std::nullopt;
    }
  }

  bool contains(const K& key) const { return lookup(key).has_value(); }

  /// Bounded-wrapper lookup: a hit whose stamp is older than `ttl_floor` is
  /// reported absent (the corpse stays until an eviction pass unlinks it);
  /// a live hit refreshes the stamp to `now`. Wait-free, like lookup().
  std::optional<V> lookup_refresh(const K& key, std::uint64_t now,
                                  std::uint64_t ttl_floor) const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("chm.pinned");
    const std::uint64_t h = adjust_hash(hasher_(key));
    // [acquires: CHM_TABLE_PUBLISH]
    Table* t = table_.load(std::memory_order_acquire);
    while (true) {
      // [acquires: CHM_BIN_LINK]
      Node* n = t->bins()[h & (t->nbins - 1)].load(std::memory_order_acquire);
      while (n != nullptr) {
        if (n->hash == kForwardHash) {
          t = reinterpret_cast<ForwardNode*>(n)->fwd;
          break;  // retry in the next table
        }
        if (n->hash == h && n->key == key) {
          if (n->stamp.load(std::memory_order_relaxed) < ttl_floor) {
            return std::nullopt;
          }
          n->stamp.store(now, std::memory_order_relaxed);
          return n->value;
        }
        n = n->next.load(std::memory_order_acquire);
      }
      if (n == nullptr) return std::nullopt;
    }
  }

  /// JDK's 2-argument remove: unlink only while the value equals `expected`.
  /// The bin lock pins the value for the compare (values are inline and
  /// replaced by node swap, so the node seen under the lock cannot change).
  bool remove_if_equals(const K& key, const V& expected)
    requires std::equality_comparable<V>
  {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("chm.pinned");
    const std::uint64_t h = adjust_hash(hasher_(key));
    while (true) {
      Table* t = current_table();
      const std::size_t bi = h & (t->nbins - 1);
      Node* head = t->bins()[bi].load(std::memory_order_acquire);
      if (head == nullptr) return false;
      if (head->hash == kForwardHash) {
        help_transfer(t);
        continue;
      }
      BinLock lock{t, bi};
      head = t->bins()[bi].load(std::memory_order_acquire);
      if (head != nullptr && head->hash == kForwardHash) continue;
      Node* prev = nullptr;
      for (Node* n = head; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        if (n->hash == h && n->key == key) {
          if (!(n->value == expected)) return false;
          Node* nx = n->next.load(std::memory_order_relaxed);
          if (prev == nullptr) {
            t->bins()[bi].store(nx, std::memory_order_release);
          } else {
            prev->next.store(nx, std::memory_order_release);
          }
          Reclaimer::template retire<Node>(n);
          add_count(-1);
          return true;
        }
        prev = n;
      }
      return false;
    }
  }

  /// Bounded-wrapper TTL unlink: removes the key's node only if its stamp
  /// is older than `floor` (the lazy eviction of an expired entry observed
  /// by a traversal). Returns true iff it unlinked.
  bool remove_if_stale(const K& key, std::uint64_t floor) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("chm.pinned");
    const std::uint64_t h = adjust_hash(hasher_(key));
    while (true) {
      Table* t = current_table();
      const std::size_t bi = h & (t->nbins - 1);
      Node* head = t->bins()[bi].load(std::memory_order_acquire);
      if (head == nullptr) return false;
      if (head->hash == kForwardHash) {
        help_transfer(t);
        continue;
      }
      BinLock lock{t, bi};
      head = t->bins()[bi].load(std::memory_order_acquire);
      if (head != nullptr && head->hash == kForwardHash) continue;
      Node* prev = nullptr;
      for (Node* n = head; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        if (n->hash == h && n->key == key) {
          if (n->stamp.load(std::memory_order_relaxed) >= floor) return false;
          Node* nx = n->next.load(std::memory_order_relaxed);
          if (prev == nullptr) {
            t->bins()[bi].store(nx, std::memory_order_release);
          } else {
            prev->next.store(nx, std::memory_order_release);
          }
          Reclaimer::template retire<Node>(n);
          add_count(-1);
          return true;
        }
        prev = n;
      }
      return false;
    }
  }

  /// Bounded-wrapper pressure scan: sweeps up to `max_bins` bins from a
  /// roving cursor, unlinking every node whose stamp is older than `floor`.
  /// Returns the number of nodes removed. Skips forwarded bins (a resize in
  /// flight; the nodes will be seen again in the next table).
  std::size_t evict_stale(std::uint64_t floor, std::size_t max_bins) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("chm.pinned");
    Table* t = current_table();
    std::size_t removed = 0;
    for (std::size_t probe = 0; probe < max_bins; ++probe) {
      const std::size_t bi =
          evict_cursor_.fetch_add(1, std::memory_order_relaxed) &
          (t->nbins - 1);
      Node* head = t->bins()[bi].load(std::memory_order_acquire);
      if (head == nullptr) continue;
      if (head->hash == kForwardHash) continue;
      BinLock lock{t, bi};
      head = t->bins()[bi].load(std::memory_order_acquire);
      if (head != nullptr && head->hash == kForwardHash) continue;
      Node* prev = nullptr;
      Node* n = head;
      while (n != nullptr) {
        Node* nx = n->next.load(std::memory_order_relaxed);
        if (n->stamp.load(std::memory_order_relaxed) < floor) {
          if (prev == nullptr) {
            t->bins()[bi].store(nx, std::memory_order_release);
          } else {
            prev->next.store(nx, std::memory_order_release);
          }
          Reclaimer::template retire<Node>(n);
          add_count(-1);
          ++removed;
        } else {
          prev = n;
        }
        n = nx;
      }
    }
    return removed;
  }

  /// Per-entry heap cost (evict.hpp derives the wrapper's byte estimate as
  /// size() * node_bytes() + table footprint; exact accounting is the
  /// cache-trie's game — the baseline reports an estimate, DESIGN.md §3).
  static constexpr std::size_t node_bytes() noexcept { return sizeof(Node); }

  std::optional<V> remove(const K& key) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    testkit::chaos_point("chm.pinned");
    const std::uint64_t h = adjust_hash(hasher_(key));
    while (true) {
      Table* t = current_table();
      const std::size_t bi = h & (t->nbins - 1);
      Node* head = t->bins()[bi].load(std::memory_order_acquire);
      if (head == nullptr) return std::nullopt;
      if (head->hash == kForwardHash) {
        help_transfer(t);
        continue;
      }
      BinLock lock{t, bi};
      head = t->bins()[bi].load(std::memory_order_acquire);
      if (head != nullptr && head->hash == kForwardHash) continue;
      // Exclusive bin access: unlink in place.
      Node* prev = nullptr;
      for (Node* n = head; n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        if (n->hash == h && n->key == key) {
          Node* nx = n->next.load(std::memory_order_relaxed);
          if (prev == nullptr) {
            t->bins()[bi].store(nx, std::memory_order_release);
          } else {
            prev->next.store(nx, std::memory_order_release);
          }
          std::optional<V> out{n->value};
          Reclaimer::template retire<Node>(n);
          add_count(-1);
          return out;
        }
        prev = n;
      }
      return std::nullopt;
    }
  }

  /// Approximate under concurrency, exact when quiescent.
  std::size_t size() const {
    std::int64_t sum = 0;
    for (const auto& c : counters_) {
      sum += c.value.load(std::memory_order_relaxed);
    }
    return sum < 0 ? 0 : static_cast<std::size_t>(sum);
  }

  bool empty() const { return size() == 0; }

  template <typename F>
  void for_each(F&& fn) const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    Table* t = table_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < t->nbins; ++i) {
      for (Node* n = t->bins()[i].load(std::memory_order_acquire);
           n != nullptr; n = n->next.load(std::memory_order_acquire)) {
        if (n->hash == kForwardHash) break;  // concurrent resize; best effort
        fn(n->key, n->value);
      }
    }
  }

  std::size_t footprint_bytes() const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    Table* t = table_.load(std::memory_order_acquire);
    std::size_t bytes = sizeof(*this) + Table::alloc_size(t->nbins);
    for (std::size_t i = 0; i < t->nbins; ++i) {
      for (Node* n = t->bins()[i].load(std::memory_order_acquire);
           n != nullptr; n = n->next.load(std::memory_order_acquire)) {
        if (n->hash == kForwardHash) break;
        bytes += sizeof(Node);
      }
    }
    return bytes;
  }

  /// O(1) derived footprint: table bytes + size() * node_bytes(). The
  /// striped size counter makes this approximate under concurrency, but it
  /// is cheap enough to evaluate on every operation — the bounded mode's
  /// backpressure check (evict.hpp) polls it per write, where the exact
  /// traversal above would turn each insert into a full-table walk.
  std::size_t footprint_estimate_bytes() const {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    Table* t = table_.load(std::memory_order_acquire);
    return sizeof(*this) + Table::alloc_size(t->nbins) +
           size() * node_bytes();
  }

  /// Number of bins in the current table (tests observe resize growth).
  std::size_t bin_count() const {
    return table_.load(std::memory_order_acquire)->nbins;
  }

 private:
  static constexpr std::size_t kTransferStride = 64;

  /// Real hashes never collide with the forwarding marker.
  static std::uint64_t adjust_hash(std::uint64_t h) noexcept {
    return h == kForwardHash ? h - 1 : h;
  }

  /// RAII per-bin spinlock (granularity of the JDK's per-first-node
  /// synchronization).
  struct BinLock {
    Table* t;
    std::size_t bi;
    // Span covers wait + hold: B fires before the spin, E after the dtor
    // body releases (members destroy after the body runs), so the trace
    // shows both contention and critical-section length per bin.
    [[no_unique_address]] obs::trace::Span trace_span;
    BinLock(Table* table, std::size_t bin)
        : t(table), bi(bin),
          trace_span(obs::trace::EventId::kChmBinLockBegin,
                     obs::trace::EventId::kChmBinLockEnd, bin) {
      testkit::chaos_point("chm.bin_lock");
      util::Backoff backoff;
      auto& lk = t->locks()[bi];
      std::uint8_t expected = 0;
      // [acquires: CHM_BIN_LOCK]
      while (!lk.compare_exchange_weak(expected, 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        expected = 0;
        backoff.pause();
      }
      obs::sites::chm_bin_lock.add();
      // Holding the lock: stretch the critical section so lock-free
      // readers and empty-bin CASers overlap it.
      testkit::chaos_point("chm.bin_locked");
    }
    // [publishes: CHM_BIN_LOCK]
    ~BinLock() { t->locks()[bi].store(0, std::memory_order_release); }
  };

  bool do_insert(const K& key, const V& value, bool only_if_absent,
                 std::uint64_t stamp = 0) {
    [[maybe_unused]] auto guard = Reclaimer::pin();
    // Fault site: stalls a thread inside a guard before it does anything.
    // Note this map is lock-BASED (bin locks): forever-stall plans must
    // not target it — a victim parked while holding a bin lock blocks
    // writers for good (that is the baseline's documented weakness, see
    // DESIGN.md "Reclamation under faults").
    testkit::chaos_point("chm.pinned");
    const std::uint64_t h = adjust_hash(hasher_(key));
    while (true) {
      Table* t = current_table();
      const std::size_t bi = h & (t->nbins - 1);
      auto& bin = t->bins()[bi];
      Node* head = bin.load(std::memory_order_acquire);
      if (head == nullptr) {
        // Lock-free fast path: CAS into the empty bin.
        Node* fresh = Node::make(h, key, value, nullptr, stamp);
        testkit::chaos_point("chm.bin_cas");
        Node* expected = nullptr;
        // [publishes: CHM_BIN_LINK]
        if (bin.compare_exchange_strong(expected, fresh,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          add_count(1);
          maybe_resize(t);
          return true;
        }
        delete fresh;  // [delete: unpublished]
        continue;
      }
      if (head->hash == kForwardHash) {
        help_transfer(t);
        continue;
      }
      bool inserted = false;
      {
        BinLock lock{t, bi};
        head = bin.load(std::memory_order_acquire);
        if (head == nullptr || head->hash == kForwardHash) continue;
        Node* prev = nullptr;
        Node* n = head;
        for (; n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
          if (n->hash == h && n->key == key) break;
          prev = n;
        }
        if (n != nullptr) {
          if (only_if_absent) return false;
          // Replace the node (readers are lock-free; value is inline, so an
          // in-place write would tear).
          Node* fresh = Node::make(
              h, key, value, n->next.load(std::memory_order_relaxed), stamp);
          if (prev == nullptr) {
            bin.store(fresh, std::memory_order_release);
          } else {
            prev->next.store(fresh, std::memory_order_release);
          }
          Reclaimer::template retire<Node>(n);
          return false;
        }
        // Append at the head (cheapest; chain order is irrelevant).
        Node* fresh = Node::make(h, key, value, head, stamp);
        bin.store(fresh, std::memory_order_release);
        inserted = true;
      }
      if (inserted) {
        add_count(1);
        maybe_resize(t);
        return true;
      }
    }
  }

  /// The newest table (follows the resize chain).
  Table* current_table() const {
    Table* t = table_.load(std::memory_order_acquire);
    return t;
  }

  void add_count(std::int64_t d) {
    counters_[util::current_thread_id() % kCounterStripes].value.fetch_add(
        d, std::memory_order_relaxed);
  }

  void maybe_resize(Table* t) {
    // Summing the counter stripes on every insert would serialize writers;
    // sample every 64 inserts per thread (the resize threshold is a soft
    // target — the JDK's baseCount check is similarly approximate).
    thread_local std::uint32_t pulse = 0;
    if ((++pulse & 63u) != 0) return;
    if (size() * 4 < t->nbins * 3) return;  // load factor 0.75
    start_or_help_transfer(t);
  }

  void help_transfer(Table* t) { start_or_help_transfer(t); }

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  void start_or_help_transfer(Table* t) {
    testkit::chaos_point("chm.transfer_help");
    if (table_.load(std::memory_order_acquire) != t) return;  // superseded
    obs::sites::chm_transfer_help.add();
    obs::trace::emit(obs::trace::EventId::kChmTransferHelp, t->nbins);
    Table* next = t->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      Table* fresh = Table::make(t->nbins * 2);
      Table* expected = nullptr;
      if (t->next.compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        // Unique per doubling: this thread initiated the resize.
        obs::sites::chm_resize.add();
        obs::trace::emit(obs::trace::EventId::kChmResize, t->nbins,
                         t->nbins * 2);
      } else {
        Table::destroy(fresh);
      }
      next = t->next.load(std::memory_order_acquire);
    }
    // One shared forwarding marker per transfer (as in the JDK), planted
    // into every transferred bin.
    if (t->marker.load(std::memory_order_acquire) == nullptr) {
      auto* fwd = ForwardNode::make(next);
      void* expected = nullptr;
      // [publishes: CHM_FORWARD]
      if (!t->marker.compare_exchange_strong(expected, fwd,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        delete fwd;  // [delete: unpublished]
      }
    }
    // Claim strides of bins and transfer them.
    while (true) {
      const std::size_t start =
          t->transfer_index.fetch_add(kTransferStride,
                                      std::memory_order_acq_rel);
      if (start >= t->nbins) break;
      const std::size_t end = std::min(start + kTransferStride, t->nbins);
      for (std::size_t i = start; i < end; ++i) transfer_bin(t, next, i);
      if (t->transferred.fetch_add(end - start,
                                   std::memory_order_acq_rel) +
              (end - start) ==
          t->nbins) {
        // Last transferrer publishes the new table and retires the old.
        testkit::chaos_point("chm.table_publish");
        Table* expected = t;
        // [publishes: CHM_TABLE_PUBLISH]
        if (table_.compare_exchange_strong(expected, next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          // Every bin of t now holds the shared forwarding marker; retire
          // it once, together with the table.
          Reclaimer::template retire<ForwardNode>(static_cast<ForwardNode*>(
              t->marker.load(std::memory_order_acquire)));
          Reclaimer::retire_raw_sized(t, &Table::destroy_erased,
                                      Table::alloc_size(t->nbins));
        }
        break;
      }
    }
  }

  // [smr: caller-pinned] -- the guard is held by the public entry point.
  void transfer_bin(Table* t, Table* next, std::size_t bi) {
    obs::sites::chm_transfer_bin.add();
    obs::trace::emit(obs::trace::EventId::kChmTransferBin, bi, t->nbins);
    BinLock lock{t, bi};
    while (true) {
      Node* head = t->bins()[bi].load(std::memory_order_acquire);
      if (head != nullptr && head->hash == kForwardHash) return;  // done
      // Split the chain into low/high halves of the doubled table. The
      // JDK's lastRun optimization: the longest suffix whose nodes all land
      // in the same half is *reused* (its next pointers need no change);
      // only the prefix is cloned, because readers may still be walking the
      // old chain. With random hashes most chains are reused whole.
      Node* last_run = head;
      bool run_bit = false;
      if (head != nullptr) {
        run_bit = (head->hash & t->nbins) != 0;
        for (Node* n = head->next.load(std::memory_order_relaxed);
             n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
          const bool b = (n->hash & t->nbins) != 0;
          if (b != run_bit) {
            run_bit = b;
            last_run = n;
          }
        }
      }
      Node* lo = nullptr;
      Node* hi = nullptr;
      if (head != nullptr) {
        (run_bit ? hi : lo) = last_run;
        for (Node* n = head; n != last_run;
             n = n->next.load(std::memory_order_relaxed)) {
          const std::uint64_t st = n->stamp.load(std::memory_order_relaxed);
          if ((n->hash & t->nbins) == 0) {
            lo = Node::make(n->hash, n->key, n->value, lo, st);
          } else {
            hi = Node::make(n->hash, n->key, n->value, hi, st);
          }
        }
      }
      // The new bins (bi, bi+nbins) stay private until the forwarding
      // marker publishes them — no other old bin maps to this pair.
      auto* fwd =
          // [acquires: CHM_FORWARD]
          static_cast<ForwardNode*>(
              t->marker.load(std::memory_order_acquire));
      assert(fwd != nullptr);
      next->bins()[bi].store(lo, std::memory_order_release);
      next->bins()[bi + t->nbins].store(hi, std::memory_order_release);
      // Plant via CAS on the walked head: the bin lock excludes chain
      // writers, but an empty-bin insert CASes without the lock and could
      // slip in after the walk — a plain exchange would silently drop it.
      testkit::chaos_point("chm.transfer_plant");
      Node* expected = head;
      if (t->bins()[bi].compare_exchange_strong(expected, &fwd->node,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        // Retire only the cloned prefix — the lastRun suffix lives on in
        // the new table.
        for (Node* n = head; n != last_run;) {
          Node* nx = n->next.load(std::memory_order_relaxed);
          Reclaimer::template retire<Node>(n);
          n = nx;
        }
        return;
      }
      // Lost to a concurrent empty-bin insert: undo the clones (they sit
      // ahead of the reused suffix in the fresh chains) and retry. The
      // shared marker is not ours to free.
      next->bins()[bi].store(nullptr, std::memory_order_relaxed);
      next->bins()[bi + t->nbins].store(nullptr, std::memory_order_relaxed);
      while (lo != nullptr && lo != last_run) {
        Node* nx = lo->next.load(std::memory_order_relaxed);
        delete lo;  // [delete: unpublished]
        lo = nx;
      }
      while (hi != nullptr && hi != last_run) {
        Node* nx = hi->next.load(std::memory_order_relaxed);
        delete hi;  // [delete: unpublished]
        hi = nx;
      }
    }
  }

  static constexpr std::size_t kCounterStripes = 16;

  Hash hasher_{};
  std::atomic<Table*> table_{nullptr};
  util::PaddedCounter counters_[kCounterStripes];
  /// Roving bin cursor for evict_stale() (bounded wrapper only).
  std::atomic<std::size_t> evict_cursor_{0};
};

}  // namespace cachetrie::chm
