// spinwait.hpp — polite busy-waiting primitives.
//
// Lock-free algorithms in this repo never *need* to wait, but helpers (e.g.
// the chashmap's per-bin locks and tests' start barriers) benefit from an
// exponential backoff that yields to the OS on oversubscribed machines —
// essential in this container, which exposes a single hardware thread.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace cachetrie::util {

/// Single CPU relax hint.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: nothing cheaper than a compiler barrier.
  asm volatile("" ::: "memory");
#endif
}

/// Exponential backoff: spins with cpu_relax for the first few rounds, then
/// yields the OS slice. Reset between acquisitions.
class Backoff {
 public:
  void pause() noexcept {
    if (round_ < kSpinRounds) {
      for (std::uint32_t i = 0; i < (1u << round_); ++i) cpu_relax();
      ++round_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { round_ = 0; }

 private:
  static constexpr std::uint32_t kSpinRounds = 6;
  std::uint32_t round_ = 0;
};

}  // namespace cachetrie::util
