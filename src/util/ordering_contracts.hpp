// ordering_contracts.hpp — the repo's publication-edge table.
//
// Part of the cache-trie reproduction (Prokopec, PPoPP'18).
//
// Every cross-thread happens-before edge the protocol relies on is declared
// here by name, X-macro style (same idiom as obs/trace_events.hpp). The
// release side of an edge carries a `// [publishes: <EDGE>]` comment on
// the atomic operation that makes the data visible, the acquire side a
// `// [acquires: <EDGE>]` comment on the operation that synchronizes
// with it.
// scripts/protocol_lint.py cross-checks the table against the annotations:
// every declared edge must have at least one site on each side, no
// annotation may name an undeclared edge, and a relaxed load can never be
// an acquire side. The table is the contract; the annotations are the
// evidence. See DESIGN.md §2f.
//
// Naming: CT_* cachetrie, CTRIE_* ctrie, CHM_* chashmap, CSL_* skiplist,
// EPOCH_*/MR_*/HP_* memory reclamation, TRACE_* flight recorder, TK_*
// testkit. The second argument is prose: what data the edge publishes and
// which paper/DESIGN section owns the argument.
//
// The bounded-memory mode (DESIGN.md §3) adds NO edges to this table, by
// design: its eviction CASes are ordinary txn announce/commit steps and
// ride CT_TXN / CT_SLOT_COMMIT unchanged, while the per-leaf stamp word,
// the operation tick, and the resident-bytes ledger are relaxed *advisory*
// state — a torn or stale read can at worst evict the wrong victim or run
// one extra backpressure scan, never violate linearizability or leak a
// node. Advisory words must stay relaxed and unannotated; promoting one to
// an edge here would claim a synchronization role the protocol neither
// needs nor provides.
#pragma once

#include <cstddef>

// clang-format off
#define CACHETRIE_ORDERING_EDGES(X)                                          \
  /* --- cachetrie (paper §3.1-§3.5) --- */                                  \
  X(CT_TXN,           "txn-word CAS announces a replacement SNode; helpers " \
                      "and freezers read it to commit exactly that value")   \
  X(CT_SLOT_COMMIT,   "parent-slot CAS publishes a fully initialized node "  \
                      "(SNode/ANode/LNode/ENode) into the trie")             \
  X(CT_FREEZE,        "freeze CAS publishes fv/fs/FNode markers; copiers "   \
                      "read the frozen array knowing it is immutable")       \
  X(CT_ENODE_RESULT,  "en->result CAS publishes the replacement array "      \
                      "built by the expansion/compression winner")           \
  X(CT_CACHE_HEAD,    "cache_head_ CAS publishes a freshly built "           \
                      "CacheArray and its parent chain")                     \
  X(CT_CACHE_INSTALL, "cache-entry store + seq_cst fence vs "                \
                      "clear_cache_refs' fence + read: the Dekker pair "     \
                      "that stops stale entries resurrecting dead nodes")    \
  /* --- ctrie (Prokopec et al., the GCAS protocol) --- */                   \
  X(CTRIE_GCAS,       "INode main CAS publishes the new CNode/TNode/LNode "  \
                      "generation; every descent reads main with acquire")   \
  /* --- chashmap (lock-striped baseline) --- */                             \
  X(CHM_BIN_LOCK,     "bin unlock store(0, release) publishes the bin "      \
                      "mutation to the next lock winner's acquire CAS")      \
  X(CHM_BIN_LINK,     "lock-free head CAS publishes a fresh Node into an "   \
                      "empty bin for lock-free readers")                     \
  X(CHM_TABLE_PUBLISH,"table_ CAS publishes the resized table after the "    \
                      "transfer completes")                                  \
  X(CHM_FORWARD,      "marker CAS publishes the ForwardNode that redirects " \
                      "readers of transferred bins to the next table")       \
  /* --- skiplist (Herlihy-Shavit, all-seq_cst discipline) --- */            \
  X(CSL_LINK,         "level-0 link CAS publishes the node and its "         \
                      "pre-initialized forward pointers")                    \
  X(CSL_MARK,         "mark CAS publishes the per-level delete bit that "    \
                      "find()/lookup() use to skip corpses")                 \
  X(CSL_VSYNC,        "vsync dead-bit CAS serializes in-place value "        \
                      "updates against logical removal")                     \
  /* --- mr (epoch + hazard reclamation) --- */                              \
  X(EPOCH_PIN,        "seq_cst pin store vs try_advance's seq_cst state "    \
                      "read: the Dekker pair behind grace periods")          \
  X(EPOCH_FLIP,       "global epoch CAS publishes the flip; pins and "       \
                      "retires stamp themselves against it")                 \
  X(MR_RECORD_LINK,   "thread-record push CAS publishes the immortal "       \
                      "record for scanners traversing the registry")         \
  X(MR_ORPHANS,       "orphan-batch CAS publishes limbo lists abandoned "    \
                      "by exited threads to the adopting thread")            \
  X(HP_PUBLISH,       "seq_cst hazard-slot store vs scan's seq_cst slot "    \
                      "read: either scan sees the hazard or the reader "     \
                      "sees the unlink")                                     \
  /* --- obs (flight recorder) --- */                                        \
  X(TRACE_RING_PUBLISH, "ring-registry push CAS publishes a thread's ring "  \
                      "to snapshot/clear/post-mortem iteration")             \
  X(TRACE_SEQLOCK,    "per-slot seqlock: odd/even seq store(release) vs "    \
                      "reader's seq load(acquire) + acquire fence")          \
  /* --- testkit --- */                                                      \
  X(TK_CHAOS_ENABLE,  "chaos enable store publishes schedule-perturbation "  \
                      "config to every chaos_point")                         \
  X(TK_FAULT_PLAN,    "fault-plan store publishes the armed PlanState to "   \
                      "every fault_point")                                   \
  X(TK_WATCHDOG_STOP, "stop store publishes the shutdown request to the "    \
                      "watchdog thread")                                     \
  /* --- net (serving layer, DESIGN.md §4) --- */                            \
  X(NET_REPLY_PUBLISH,"client slot: receiver's done-word store(release) "    \
                      "publishes the reply payload (status/value/flags, "    \
                      "relaxed stores sequenced before it) to the waiter's " \
                      "done-word load(acquire)")                             \
  X(NET_SHED_FLAG,    "shard overload flag store(release) publishes the "    \
                      "relaxed pressure counters behind it to the "          \
                      "acceptor's load(acquire) for least-loaded routing")   \
  X(NET_DRAIN,        "server stop store(release) publishes the drain "      \
                      "request to every shard loop; each shard's drained "   \
                      "store(release) publishes its final stats back to "    \
                      "the joiner")
// clang-format on

namespace cachetrie::util {

/// Edge identifiers, generated from the table. Useful for tooling that
/// wants to reason about edges programmatically; the linter itself parses
/// the X-macro text.
enum class OrderingEdge : unsigned {
#define CACHETRIE_EDGE_ENUM(name, desc) name,
  CACHETRIE_ORDERING_EDGES(CACHETRIE_EDGE_ENUM)
#undef CACHETRIE_EDGE_ENUM
      kCount
};

struct OrderingEdgeInfo {
  const char* name;
  const char* contract;
};

inline constexpr OrderingEdgeInfo kOrderingEdges[] = {
#define CACHETRIE_EDGE_INFO(name, desc) {#name, desc},
    CACHETRIE_ORDERING_EDGES(CACHETRIE_EDGE_INFO)
#undef CACHETRIE_EDGE_INFO
};

inline constexpr std::size_t kOrderingEdgeCount =
    sizeof(kOrderingEdges) / sizeof(kOrderingEdges[0]);

static_assert(kOrderingEdgeCount ==
                  static_cast<std::size_t>(OrderingEdge::kCount),
              "edge table and enum drifted apart");

constexpr const OrderingEdgeInfo& ordering_edge_info(OrderingEdge e) {
  return kOrderingEdges[static_cast<unsigned>(e)];
}

}  // namespace cachetrie::util
