// padded.hpp — false-sharing avoidance.
//
// Used for the cache-trie's per-thread miss counters (paper §3.6: "To
// decrease contention when counting the misses, the subroutine uses the
// misses array") and the harness's per-thread result slots.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>

namespace cachetrie::util {

// Fixed at 64 (true for every x86-64 and most AArch64 parts) rather than
// std::hardware_destructive_interference_size, whose value is flag-dependent
// and therefore unsuitable for anything ABI-adjacent (GCC warns about this).
inline constexpr std::size_t kCacheLineSize = 64;

/// Value padded out to its own cache line.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};
};

/// Atomic counter on its own cache line.
struct alignas(kCacheLineSize) PaddedCounter {
  std::atomic<std::int64_t> value{0};
};

static_assert(sizeof(PaddedCounter) >= kCacheLineSize);

}  // namespace cachetrie::util
