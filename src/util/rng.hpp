// rng.hpp — fast pseudo-random number generation for workload generators and
// the cache-trie's depth-sampling pass (paper §3.6).
//
// Not cryptographic. xoshiro-class quality is sufficient: the sampler only
// needs hash-codes that descend uniformly random trie paths.
#pragma once

#include <cstdint>

#include "util/hashing.hpp"
#include "util/thread_id.hpp"

namespace cachetrie::util {

/// splitmix64 sequence generator — used to seed and to produce key streams.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64_tail(state_);
  }

 private:
  static constexpr std::uint64_t mix64_tail(std::uint64_t x) noexcept {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::uint64_t state_;
};

/// xorshift64* — tiny state, good enough for sampling random trie descents.
class XorShift64Star {
 public:
  constexpr explicit XorShift64Star(std::uint64_t seed) noexcept
      : state_(seed ? seed : 0x853c49e6748fea9bULL) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform value in [0, bound) without modulo bias worth caring about here.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

 private:
  std::uint64_t state_;
};

/// Per-thread RNG, seeded from the dense thread id so two threads never
/// share a stream.
inline XorShift64Star& thread_rng() noexcept {
  thread_local XorShift64Star rng{
      mix64(0x9e3779b97f4a7c15ULL * (current_thread_id() + 1))};
  return rng;
}

}  // namespace cachetrie::util
