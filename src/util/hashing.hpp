// hashing.hpp — hash functions used by all four concurrent maps.
//
// The paper's analysis (Theorems 4.1-4.4) assumes a *universal* hash function:
// each hash bit of distinct keys is independently uniform. std::hash for
// integers is typically the identity, which badly violates that assumption
// (sequential keys would all collide in their low trie slices beyond the first
// few levels... actually the opposite: they'd spread perfectly at low levels
// but correlate adversarially for other key patterns). All maps in this repo
// therefore pass the user hash through a strong 64-bit finalizer by default.
//
// `DegradedHash` deliberately truncates entropy so tests and benches can
// exercise deep, unbalanced tries (the paper's observation that trie depth is
// O(n) for non-uniform hashes).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace cachetrie::util {

/// splitmix64 finalizer (Stafford variant 13). Passes practical avalanche
/// tests; used as the default post-mixer for every key type.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Murmur3 fmix64 — alternative finalizer, used by tests to cross-check that
/// results do not depend on one particular mixer.
constexpr std::uint64_t fmix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// FNV-1a for byte strings (used by the string-key specialization).
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Default hasher: std::hash then a strong finalizer so that all 64 output
/// bits are usable as trie slices (the universality assumption of Thm 4.1).
template <typename K>
struct DefaultHash {
  std::uint64_t operator()(const K& k) const
      noexcept(noexcept(std::hash<K>{}(k))) {
    return mix64(static_cast<std::uint64_t>(std::hash<K>{}(k)));
  }
};

template <>
struct DefaultHash<std::string> {
  std::uint64_t operator()(const std::string& s) const noexcept {
    return mix64(fnv1a(s));
  }
};

template <>
struct DefaultHash<std::string_view> {
  std::uint64_t operator()(std::string_view s) const noexcept {
    return mix64(fnv1a(s));
  }
};

/// Identity hash for integral keys — deliberately non-universal; used by
/// tests that need precise control over trie paths.
struct IdentityHash {
  template <typename K>
  std::uint64_t operator()(const K& k) const noexcept {
    return static_cast<std::uint64_t>(k);
  }
};

/// Keeps only the low `Bits` bits of entropy, replicated upward. With Bits=0
/// every key collides on every level — the degenerate O(n)-depth case the
/// paper mentions in the introduction; small Bits produce deep skewed tries.
template <int Bits>
struct DegradedHash {
  static_assert(Bits >= 0 && Bits <= 64);
  template <typename K>
  std::uint64_t operator()(const K& k) const noexcept {
    if constexpr (Bits == 0) {
      (void)k;
      return 0;
    } else {
      const std::uint64_t mask =
          Bits >= 64 ? ~0ULL : ((1ULL << Bits) - 1);
      return mix64(static_cast<std::uint64_t>(std::hash<K>{}(k))) & mask;
    }
  }
};

}  // namespace cachetrie::util
