// thread_id.hpp — small dense per-thread identifiers.
//
// The cache-trie's miss-counter array and the reclamation domains index
// per-thread slots by a dense id rather than std::thread::id (which is
// opaque and unbounded).
#pragma once

#include <atomic>
#include <cstdint>

namespace cachetrie::util {

/// Monotonically assigned dense thread id (0, 1, 2, ...). Ids are never
/// reused; consumers that need a bounded range take `current_thread_id() %
/// capacity`, which is exactly how the paper's misses array is indexed
/// ("the counter position is computed from the thread ID").
inline std::uint32_t current_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace cachetrie::util
