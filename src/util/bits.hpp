// bits.hpp — small bit-manipulation helpers shared by the tries and the
// benchmark harness.
//
// Part of the cache-trie reproduction (Prokopec, PPoPP'18).
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace cachetrie::util {

/// Number of trailing zero bits; used to recover a cache array's trie level
/// from its length (paper, Fig. 6: `countTrailingZeros(cache.length - 1)`).
template <typename U>
  requires std::is_unsigned_v<U>
constexpr int count_trailing_zeros(U x) noexcept {
  return std::countr_zero(x);
}

/// Population count, used by the Ctrie baseline's bitmap indexing.
template <typename U>
  requires std::is_unsigned_v<U>
constexpr int popcount(U x) noexcept {
  return std::popcount(x);
}

/// Smallest power of two >= x (x must be >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return std::bit_ceil(x);
}

constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) noexcept {
  return 63 - std::countl_zero(x);
}

}  // namespace cachetrie::util
