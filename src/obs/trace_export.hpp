// trace_export.hpp — drains the flight recorder into Chrome trace-event
// JSON, the array-of-events dialect that chrome://tracing and Perfetto's
// legacy importer both load directly (EXPERIMENTS.md shows how).
//
// Shape:
//   { "displayTimeUnit": "ms",
//     "otherData": { "schema": "cachetrie-trace-v1", "reason": ...,
//                    "events": N, "emitted_total": M, "overwritten": K },
//     "traceEvents": [ { "name", "cat", "ph", "ts", "pid", "tid",
//                        "args": {"a0", "a1"} } ... ] }
//
// Timestamps are microseconds relative to the earliest drained event,
// converted from raw ticks with the shared tsc calibration. Span begins
// and ends ('B'/'E') pair up per thread by name; because rings overwrite
// their oldest events, an 'E' whose 'B' scrolled away would corrupt the
// viewer's per-thread stack, so the writer tracks span depth per tid and
// demotes unmatched ends to instants.
//
// dump_to_file() honors $CACHETRIE_TRACE_OUT (directory) and names files
// TRACE_<reason>.json; post_mortem_dump() is the once-per-process variant
// the watchdog/lin-check failure hooks call, so the first failure's
// timeline is preserved and later failures cannot overwrite it.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // detail_emit::json_escape
#include "obs/trace.hpp"

namespace cachetrie::obs::trace {

/// Writes `events` (drained, any order) as Chrome trace JSON.
inline void write_chrome_json(std::ostream& os, std::vector<Event> events,
                              const char* reason) {
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  const double ns_per_tick = tsc::calibration().ns_per_tick;
  const std::uint64_t t0 = events.empty() ? 0 : events.front().ts;
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"schema\":\"cachetrie-trace-v1\",\"reason\":\"";
  detail_emit::json_escape(os, reason == nullptr ? "" : reason);
  os << "\",\"events\":" << events.size()
     << ",\"emitted_total\":" << registry().total_emitted()
     << ",\"overwritten\":" << registry().total_overwritten()
     << ",\"ns_per_tick\":" << ns_per_tick << "},\"traceEvents\":[";
  std::map<std::uint32_t, int> depth;
  bool first = true;
  char buf[32];
  for (const Event& ev : events) {
    const EventInfo& info = event_info(ev.id);
    char ph = info.phase;
    bool unmatched = false;
    if (ph == 'E') {
      int& d = depth[ev.tid];
      if (d == 0) {
        ph = 'i';  // its 'B' was overwritten — demote to an instant
        unmatched = true;
      } else {
        --d;
      }
    } else if (ph == 'B') {
      ++depth[ev.tid];
    }
    if (!first) os << ",";
    first = false;
    const double us =
        static_cast<double>(ev.ts - t0) * ns_per_tick / 1000.0;
    std::snprintf(buf, sizeof buf, "%.3f", us);
    os << "{\"name\":\"" << info.name << (unmatched ? " (unmatched)" : "")
       << "\",\"cat\":\"" << info.category << "\",\"ph\":\"" << ph
       << "\",\"ts\":" << buf << ",\"pid\":1,\"tid\":" << ev.tid;
    if (ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{\"a0\":" << ev.a0 << ",\"a1\":" << ev.a1 << "}}";
  }
  os << "]}";
}

/// `TRACE_<reason>.json`, under $CACHETRIE_TRACE_OUT when set.
inline std::string dump_path(const char* reason) {
  std::string p;
  if (const char* dir = std::getenv("CACHETRIE_TRACE_OUT")) {
    p = dir;
    if (!p.empty() && p.back() != '/') p += '/';
  }
  p += "TRACE_";
  p += (reason == nullptr || *reason == '\0') ? "dump" : reason;
  p += ".json";
  return p;
}

/// Drains every ring and writes the timeline. Returns the path written,
/// or "" on trace-OFF builds / I/O failure. Safe while recording continues.
inline std::string dump_to_file(const char* reason) {
  if (!kTraceCompiled) return {};
  const std::string file = dump_path(reason);
  std::ofstream os{file};
  if (!os) {
    std::fprintf(stderr, "trace: cannot open %s\n", file.c_str());
    return {};
  }
  write_chrome_json(os, registry().drain(), reason);
  os.flush();
  if (!os) {
    std::fprintf(stderr, "trace: write to %s failed\n", file.c_str());
    return {};
  }
  std::fprintf(stderr, "trace: wrote %s\n", file.c_str());
  return file;
}

/// Once-per-process post-mortem dump (first failure wins; later calls are
/// no-ops). No-op when tracing is compiled out or not runtime-enabled, so
/// ordinary fault tests don't spray files.
inline std::string post_mortem_dump(const char* reason) {
  if (!kTraceCompiled || !enabled()) return {};
  static std::atomic<bool> done{false};
  if (done.exchange(true, std::memory_order_acq_rel)) return {};
  return dump_to_file(reason);
}

}  // namespace cachetrie::obs::trace
