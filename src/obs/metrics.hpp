// metrics.hpp — lock-free, compile-time-gated observability substrate.
//
// The paper's central claims are quantitative (expected depth <= log16 n,
// cache hits collapsing lookups to 1-2 dereferences, miss-counter-driven
// cache growth), and the companion analysis report (arXiv:1712.09636)
// derives the distributions the runtime should exhibit. This layer makes
// those internals observable without perturbing them:
//
//   * Counter   — monotone event count, striped over cache-line-padded
//                 slots so concurrent recorders never share a line. A
//                 record is one relaxed fetch_add on a (mostly)
//                 thread-private slot; reads sum the stripes. Totals are
//                 exact after quiescence and monotone at all times (each
//                 stripe is monotone, and repeated relaxed loads of one
//                 atomic respect its modification order).
//   * Histogram — mergeable bucketed distribution: exact unit buckets for
//                 values < 16 (depths, level counts) and log2 buckets
//                 above (latencies, byte sizes). Striped like Counter;
//                 merging is bucket-wise addition, so per-stripe, per-run
//                 and per-machine histograms all combine losslessly.
//   * Gauge     — a settable level, plus registered *callback* gauges that
//                 sample an external source at snapshot time (used to fold
//                 the mr/ epoch-limbo and stall counters into snapshots
//                 without double-bookkeeping).
//   * Registry  — process-wide name -> metric table. Snapshots merge the
//                 stripes into plain structs with JSON and human-table
//                 emitters; reset() zeroes counters/histograms (callback
//                 gauges re-sample, so they are unaffected).
//
// Build modes (mirrors testkit/chaos.hpp):
//   * CACHETRIE_METRICS on (default via CMake option): the above.
//   * CACHETRIE_METRICS off: Counter/Histogram/Gauge alias the Null*
//     handles below — empty, constexpr-constructible types whose members
//     are constexpr no-ops, so every record site compiles to nothing and
//     embedding a handle adds zero bytes ([[no_unique_address]]-friendly).
//     The Null* types are defined unconditionally so the zero-size
//     guarantee is static_assert-enforced even in metrics-on test builds.
//
// Recording is lock-free (wait-free, in fact: one relaxed RMW); only
// registration (cold: first use of a name) and snapshot/reset take the
// registry mutex.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/padded.hpp"

namespace cachetrie::obs {

// --- bucket geometry (unconditional: unit below 16, log2 above) -----------

/// Unit buckets 0..15 hold exact small values (trie depths, dereference
/// counts); bucket 16 + k holds [2^(4+k), 2^(5+k)). The last bucket tops
/// out at 2^64 - 1.
inline constexpr std::size_t kHistBuckets = 76;

constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
  return v < 16 ? static_cast<std::size_t>(v)
                : 11 + static_cast<std::size_t>(std::bit_width(v));
}

constexpr std::uint64_t bucket_lower_bound(std::size_t b) noexcept {
  return b < 16 ? b : (std::uint64_t{1} << (b - 12));
}

constexpr std::uint64_t bucket_upper_bound(std::size_t b) noexcept {
  if (b < 16) return b;
  if (b >= kHistBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << (b - 11)) - 1;
}

static_assert(bucket_index(0) == 0 && bucket_index(15) == 15);
static_assert(bucket_index(16) == 16 && bucket_index(31) == 16);
static_assert(bucket_index(32) == 17);
static_assert(bucket_index(~std::uint64_t{0}) == kHistBuckets - 1);
static_assert(bucket_lower_bound(16) == 16 && bucket_upper_bound(16) == 31);

// --- snapshot (unconditional plain data) -----------------------------------

/// Point-in-time merged view of the registry. Plain values — safe to hold
/// across resets, compare between runs, or serialize.
struct Snapshot {
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    std::int64_t value = 0;
  };
  struct Histogram {
    std::string name;
    std::array<std::uint64_t, kHistBuckets> buckets{};
    std::uint64_t count = 0;  // == sum of buckets
    std::uint64_t sum = 0;

    double mean() const noexcept {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Upper bound of the bucket containing the p-quantile (p in [0,1]).
    std::uint64_t quantile_upper_bound(double p) const noexcept {
      if (count == 0) return 0;
      const double target = p * static_cast<double>(count);
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        cum += buckets[b];
        if (static_cast<double>(cum) >= target && cum > 0) {
          return bucket_upper_bound(b);
        }
      }
      return bucket_upper_bound(kHistBuckets - 1);
    }

    /// p-quantile with linear interpolation inside the landing bucket.
    /// quantile_upper_bound is exact for the unit range but a log2 bucket
    /// spans a 2x range — at high buckets the upper bound alone overstates
    /// a mid-bucket quantile by up to 2x. Assuming in-bucket uniformity
    /// and interpolating bounds the error by the in-bucket mass instead.
    /// Unit buckets still return their exact value.
    double quantile(double p) const noexcept {
      if (count == 0) return 0.0;
      double target = p * static_cast<double>(count);
      if (target > static_cast<double>(count)) {
        target = static_cast<double>(count);
      }
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        if (buckets[b] == 0) continue;
        if (static_cast<double>(cum + buckets[b]) >= target) {
          const std::uint64_t lo = bucket_lower_bound(b);
          const std::uint64_t hi = bucket_upper_bound(b);
          if (hi == lo) return static_cast<double>(lo);  // unit bucket
          double frac = (target - static_cast<double>(cum)) /
                        static_cast<double>(buckets[b]);
          if (frac < 0.0) frac = 0.0;
          return static_cast<double>(lo) +
                 static_cast<double>(hi - lo) * frac;
        }
        cum += buckets[b];
      }
      return static_cast<double>(bucket_upper_bound(kHistBuckets - 1));
    }

    /// Fraction of recorded values <= v (resolution: bucket boundaries;
    /// exact for v < 16 thanks to the unit buckets).
    double fraction_at_most(std::uint64_t v) const noexcept {
      if (count == 0) return 0.0;
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b <= bucket_index(v); ++b) cum += buckets[b];
      return static_cast<double>(cum) / static_cast<double>(count);
    }

    /// Bucket-wise addition — the merge operation that makes per-stripe,
    /// per-thread and per-run histograms combine losslessly.
    void merge(const Histogram& other) noexcept {
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        buckets[b] += other.buckets[b];
      }
      count += other.count;
      sum += other.sum;
    }
  };

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<Histogram> histograms;

  std::uint64_t counter_value(std::string_view name) const noexcept {
    for (const auto& c : counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  }

  const Gauge* find_gauge(std::string_view name) const noexcept {
    for (const auto& g : gauges) {
      if (g.name == name) return &g;
    }
    return nullptr;
  }

  const Histogram* find_histogram(std::string_view name) const noexcept {
    for (const auto& h : histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  }

  // Emitters are defined in json.hpp-free form here to keep this header
  // self-contained; the JSON shape is documented in DESIGN.md §2d.
  void write_json(std::ostream& os) const;
  void print_table(std::ostream& os) const;
};

// --- zero-cost handles (unconditional; the OFF configuration) --------------
//
// These are what Counter/Histogram/Gauge alias when CACHETRIE_METRICS is
// off. Empty, constexpr-constructible, every member a constant no-op: a
// record site compiles to literally nothing, and the types stay visible in
// metrics-on builds so tests can static_assert the guarantee.

struct NullCounter {
  constexpr explicit NullCounter(const char*) noexcept {}
  /// Returns the pre-add per-stripe value (always 0 here) so call sites can
  /// derive a sampling decision that dead-codes away in OFF builds.
  constexpr std::uint64_t add(std::uint64_t = 1) const noexcept { return 0; }
  constexpr std::uint64_t total() const noexcept { return 0; }
};

struct NullHistogram {
  constexpr explicit NullHistogram(const char*) noexcept {}
  constexpr void record(std::uint64_t) const noexcept {}
};

struct NullGauge {
  constexpr explicit NullGauge(const char*) noexcept {}
  constexpr void set(std::int64_t) const noexcept {}
  constexpr void add(std::int64_t) const noexcept {}
  constexpr std::int64_t value() const noexcept { return 0; }
};

static_assert(std::is_empty_v<NullCounter> && std::is_empty_v<NullHistogram> &&
              std::is_empty_v<NullGauge>);

#if defined(CACHETRIE_METRICS) && CACHETRIE_METRICS

inline constexpr bool kMetricsCompiled = true;

namespace detail {

/// Stripe count: power of two, sized like Config::miss_slots (the paper's
/// THROUGHPUT_FACTOR * #CPU miss array, §3.6) — enough that concurrent
/// recorders rarely collide, small enough to sum cheaply.
inline constexpr std::size_t kStripes = 16;

inline std::size_t stripe_index() noexcept {
  // Deliberately NOT util::current_thread_id(): that is a thread_local, and
  // this build forces the global-dynamic TLS model, so every access is a
  // __tls_get_addr call — measured at +25-50% on the cache-hit lookup path.
  // A local's address is a free per-thread discriminator instead: thread
  // stacks sit megabytes apart, so the page number differs across threads,
  // and a thread re-entering the same record site sees the same frame
  // address. The page number is Fibonacci-hashed rather than masked because
  // glibc spaces stacks at multiples of the stack size (8 MiB = 2048 pages,
  // divisible by kStripes) — a plain mask would alias every thread onto one
  // stripe. Occasional intra-thread stripe drift between call sites is
  // harmless — every cell is atomic, so totals stay exact and stripes stay
  // monotone.
  static_assert(std::has_single_bit(kStripes));
  constexpr int kShift = 64 - std::countr_zero(kStripes);
  const int probe = 0;
  const auto page = reinterpret_cast<std::uintptr_t>(&probe) >> 12;
  return static_cast<std::size_t>(
      (page * std::uintptr_t{0x9e3779b97f4a7c15}) >> kShift);
}

struct alignas(util::kCacheLineSize) CounterCell {
  std::atomic<std::uint64_t> v{0};
};

struct CounterCells {
  std::array<CounterCell, kStripes> cells{};

  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto& c : cells) t += c.v.load(std::memory_order_relaxed);
    return t;
  }
  void reset() noexcept {
    for (auto& c : cells) c.v.store(0, std::memory_order_relaxed);
  }
};

struct alignas(util::kCacheLineSize) HistStripe {
  std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  std::atomic<std::uint64_t> sum{0};
};

struct HistCells {
  std::array<HistStripe, kStripes> stripes{};

  void reset() noexcept {
    for (auto& s : stripes) {
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
    }
  }
};

struct GaugeCell {
  std::atomic<std::int64_t> v{0};
};

}  // namespace detail

class Registry;

/// Striped monotone event counter. Handles are one pointer; any number of
/// handles constructed with the same name share storage.
class Counter {
 public:
  explicit Counter(const char* name);

  /// Records n events. Returns the written stripe's *previous* value —
  /// callers use it for cheap 1-in-2^k sampling decisions without a second
  /// atomic (`if ((c.add() & 63) == 0) hist.record(...)`).
  std::uint64_t add(std::uint64_t n = 1) noexcept {
    return cells_->cells[detail::stripe_index()].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept { return cells_->total(); }

 private:
  detail::CounterCells* cells_;
};

/// Striped unit/log2 histogram (see bucket geometry above).
class Histogram {
 public:
  explicit Histogram(const char* name);

  void record(std::uint64_t v) noexcept {
    auto& s = cells_->stripes[detail::stripe_index()];
    s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

 private:
  detail::HistCells* cells_;
};

/// Settable level (single atomic; gauges are read far more than written).
class Gauge {
 public:
  explicit Gauge(const char* name);

  void set(std::int64_t v) noexcept {
    cell_->v.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    cell_->v.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return cell_->v.load(std::memory_order_relaxed);
  }

 private:
  detail::GaugeCell* cell_;
};

/// Process-wide metric table. Leak-free Meyers singleton: constructed on
/// first use (which static-initialization of the inventory handles forces
/// before main), destroyed after every handle (handles are trivially
/// destructible and nothing records during static destruction).
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  detail::CounterCells* counter_cells(const char* name) {
    std::lock_guard<std::mutex> lk{mu_};
    return find_or_create(counters_, name);
  }
  detail::HistCells* hist_cells(const char* name) {
    std::lock_guard<std::mutex> lk{mu_};
    return find_or_create(hists_, name);
  }
  detail::GaugeCell* gauge_cell(const char* name) {
    std::lock_guard<std::mutex> lk{mu_};
    return find_or_create(gauges_, name);
  }

  /// Registers a gauge whose value is sampled by calling `fn` at snapshot
  /// time — how external subsystems (the mr/ epoch domain) fold their own
  /// counters into snapshots without double bookkeeping.
  void register_gauge_fn(std::string name,
                         std::function<std::int64_t()> fn) {
    std::lock_guard<std::mutex> lk{mu_};
    gauge_fns_.emplace_back(std::move(name), std::move(fn));
  }

  Snapshot snapshot() const {
    std::lock_guard<std::mutex> lk{mu_};
    Snapshot s;
    s.counters.reserve(counters_.size());
    for (const auto& [name, cells] : counters_) {
      s.counters.push_back({name, cells->total()});
    }
    for (const auto& [name, cell] : gauges_) {
      s.gauges.push_back({name, cell->v.load(std::memory_order_relaxed)});
    }
    for (const auto& [name, fn] : gauge_fns_) {
      s.gauges.push_back({name, fn()});
    }
    for (const auto& [name, cells] : hists_) {
      Snapshot::Histogram h;
      h.name = name;
      for (const auto& stripe : cells->stripes) {
        for (std::size_t b = 0; b < kHistBuckets; ++b) {
          const std::uint64_t n =
              stripe.buckets[b].load(std::memory_order_relaxed);
          h.buckets[b] += n;
          h.count += n;
        }
        h.sum += stripe.sum.load(std::memory_order_relaxed);
      }
      s.histograms.push_back(std::move(h));
    }
    return s;
  }

  /// Zeroes counters, histograms and settable gauges. Callback gauges
  /// re-sample their source and are unaffected. Totals are exact only
  /// against recordings that completed before the reset (concurrent
  /// recorders may land on either side — same caveat as Stats).
  void reset() {
    std::lock_guard<std::mutex> lk{mu_};
    for (auto& [name, cells] : counters_) cells->reset();
    for (auto& [name, cells] : hists_) cells->reset();
    for (auto& [name, cell] : gauges_) {
      cell->v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  template <typename T>
  static T* find_or_create(
      std::vector<std::pair<std::string, std::unique_ptr<T>>>& table,
      const char* name) {
    for (auto& [n, ptr] : table) {
      if (n == name) return ptr.get();
    }
    table.emplace_back(name, std::make_unique<T>());
    return table.back().second.get();
  }

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<detail::CounterCells>>>
      counters_;
  std::vector<std::pair<std::string, std::unique_ptr<detail::HistCells>>>
      hists_;
  std::vector<std::pair<std::string, std::unique_ptr<detail::GaugeCell>>>
      gauges_;
  std::vector<std::pair<std::string, std::function<std::int64_t()>>>
      gauge_fns_;
};

inline Counter::Counter(const char* name)
    : cells_(Registry::instance().counter_cells(name)) {}
inline Histogram::Histogram(const char* name)
    : cells_(Registry::instance().hist_cells(name)) {}
inline Gauge::Gauge(const char* name)
    : cell_(Registry::instance().gauge_cell(name)) {}

#else  // !CACHETRIE_METRICS

inline constexpr bool kMetricsCompiled = false;

using Counter = NullCounter;
using Histogram = NullHistogram;
using Gauge = NullGauge;

/// No-op control surface so metrics-aware code compiles in both modes.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }
  template <typename F>
  void register_gauge_fn(std::string, F&&) {}
  Snapshot snapshot() const { return {}; }
  void reset() {}
};

#endif  // CACHETRIE_METRICS

/// Shorthand used by instrumentation sites and tests.
inline Registry& registry() { return Registry::instance(); }

// --- snapshot emitters ------------------------------------------------------

namespace detail_emit {

inline void json_escape(std::ostream& os, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(ch >> 4) & 0xf] << hex[ch & 0xf];
        } else {
          os << ch;
        }
    }
  }
}

}  // namespace detail_emit

/// Machine-readable form: counters/gauges as name -> value maps; histograms
/// as sparse [bucket_lower_bound, count] pairs plus count/sum.
inline void Snapshot::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"";
    detail_emit::json_escape(os, counters[i].name);
    os << "\":" << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"";
    detail_emit::json_escape(os, gauges[i].name);
    os << "\":" << gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    if (i != 0) os << ",";
    const auto& h = histograms[i];
    os << "\"";
    detail_emit::json_escape(os, h.name);
    os << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"buckets\":[";
    bool first = true;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "[" << bucket_lower_bound(b) << "," << h.buckets[b] << "]";
    }
    os << "]}";
  }
  os << "}}";
}

/// Human form, aligned like harness::Table's output.
inline void Snapshot::print_table(std::ostream& os) const {
  std::size_t width = 0;
  for (const auto& c : counters) width = std::max(width, c.name.size());
  for (const auto& g : gauges) width = std::max(width, g.name.size());
  for (const auto& h : histograms) width = std::max(width, h.name.size());
  auto pad = [&](const std::string& name) {
    os << "  " << name << std::string(width - name.size() + 2, ' ');
  };
  for (const auto& c : counters) {
    pad(c.name);
    os << c.value << "\n";
  }
  for (const auto& g : gauges) {
    pad(g.name);
    os << g.value << "\n";
  }
  for (const auto& h : histograms) {
    pad(h.name);
    os << "count " << h.count << "  mean " << h.mean() << "  p50~"
       << h.quantile(0.5) << "  p99~" << h.quantile(0.99) << "\n";
  }
}

}  // namespace cachetrie::obs
