// inventory.hpp — the process-wide metric inventory: one named handle per
// instrumentation site, declared in one place so DESIGN.md §2d, the tests
// and the JSON artifacts agree on names.
//
// Handles are namespace-scope `inline` variables: constructed once during
// static initialization (before any structure runs an operation), shared
// across translation units, and — because each handle is a single pointer
// into registry-owned storage (or an empty Null type when CACHETRIE_METRICS
// is off) — free to reference from hot paths.
//
// Naming convention: <layer>.<subsystem>.<event>, all lowercase.
//
// The mr/ epoch-domain counters are intentionally absent here: they remain
// owned by EpochDomain (epoch.cpp registers callback gauges mr.epoch.* so
// snapshots fold them in without double bookkeeping).
#pragma once

#include "obs/metrics.hpp"

namespace cachetrie::obs::sites {

// --- cachetrie: cache behaviour (paper §3.6, analysis report §4) -----------
// hit-rate = hit / (hit + lookup_slow); `hit` counts lookups answered
// through the cache (SNode fast path and ANode-entry path), `lookup_slow`
// counts lookups that fell through to a root descent (no cache, no entry,
// or a frozen/stale cached node).
inline Counter cachetrie_cache_hit{"cachetrie.cache.hit"};
inline Counter cachetrie_lookup_slow{"cachetrie.lookup.slow"};
/// Paper's per-lookup miss-counter increments (decrements are not counted:
/// the signal of interest is how much "miss pressure" the workload exerts).
inline Counter cachetrie_cache_miss{"cachetrie.cache.miss"};
inline Counter cachetrie_cache_install{"cachetrie.cache.install"};
inline Counter cachetrie_cache_level_change{"cachetrie.cache.level_change"};
inline Counter cachetrie_sampling_pass{"cachetrie.cache.sampling_pass"};

// --- cachetrie: structural / protocol events -------------------------------
inline Counter cachetrie_freeze{"cachetrie.freeze"};
inline Counter cachetrie_expand{"cachetrie.expand"};
inline Counter cachetrie_compress{"cachetrie.compress"};
/// Two-CAS txn protocol restarts: a competing announcement or commit forced
/// this thread to retry the level (§3.3).
inline Counter cachetrie_txn_retry{"cachetrie.txn.retry"};
inline Counter cachetrie_root_restart{"cachetrie.root.restart"};

// --- cachetrie: operation outcomes (drive the chaos-test invariant:
// insert_new - remove == size on a fresh trie after quiescence) ------------
inline Counter cachetrie_insert_new{"cachetrie.op.insert_new"};
inline Counter cachetrie_replace{"cachetrie.op.replace"};
inline Counter cachetrie_remove{"cachetrie.op.remove"};

// --- cachetrie: bounded-memory mode (DESIGN.md §3) -------------------------
// Evictions are linearizable removes performed by the eviction machinery
// rather than a user remove(); they are counted here, not in op.remove, so
// the chaos-test invariant above stays exact for unbounded tries and the
// TTL tests can assert evictions + expiries == pairs that vanished.
inline Counter cachetrie_evict_lru{"cachetrie.evict.lru"};
inline Counter cachetrie_evict_ttl{"cachetrie.evict.ttl"};
/// Ceiling backpressure: operations that entered an over-ceiling eviction
/// scan before doing their own work.
inline Counter cachetrie_evict_backpressure{"cachetrie.evict.backpressure"};

// --- cachetrie: distributions ----------------------------------------------
/// Pointer dereferences per lookup (cache hit == 1 for SNode entries, 2 for
/// ANode entries; slow lookups record their true walked depth). Every entry
/// point samples ~1/64 off its own counter's pre-add value, so the
/// histogram is an unbiased sample of the per-lookup depth distribution.
inline Histogram cachetrie_lookup_depth{"cachetrie.lookup.depth"};
/// Leaf levels (in trie levels, i.e. bits/4) seen by the miss-counter
/// sampling passes that drive cache growth.
inline Histogram cachetrie_sample_leaf_level{"cachetrie.sample.leaf_level"};

// --- ctrie ------------------------------------------------------------------
/// GCAS-equivalent root/main-node CAS failures that force a retry.
inline Counter ctrie_gcas_retry{"ctrie.gcas.retry"};
inline Counter ctrie_clean{"ctrie.clean"};
inline Counter ctrie_clean_parent{"ctrie.clean_parent"};

// --- chashmap ---------------------------------------------------------------
inline Counter chm_bin_lock{"chm.bin_lock"};
inline Counter chm_resize{"chm.resize"};
inline Counter chm_transfer_help{"chm.transfer.help"};
inline Counter chm_transfer_bin{"chm.transfer.bin"};

// --- skiplist ---------------------------------------------------------------
/// Cooperative helping: a thread marked an upper-level link on behalf of a
/// logically deleted node it encountered.
inline Counter csl_help_mark{"csl.help_mark"};
inline Counter csl_cas_retry{"csl.cas.retry"};

// --- net: serving layer (DESIGN.md §4) --------------------------------------
// The shed/deadline/backpressure triple is the overload-audit surface: a
// soak run where net.shed stays zero while latency grows means admission
// control is mis-tuned (queueing instead of shedding).
inline Counter net_accept{"net.accept"};
inline Counter net_conn_close{"net.conn.close"};
inline Counter net_request_served{"net.request.served"};
inline Counter net_shed{"net.shed"};
inline Counter net_deadline_expired{"net.deadline_expired"};
inline Counter net_backpressure_kill{"net.backpressure_kill"};
inline Counter net_proto_error{"net.proto_error"};
/// Replies stamped kFlagDegraded (map near its resident ceiling).
inline Counter net_degraded_replies{"net.degraded_replies"};
/// Currently open connections across all shards.
inline Gauge net_conns_open{"net.conns_open"};
/// Admission-to-execution queueing delay of served requests.
inline Histogram net_queue_delay_us{"net.queue_delay_us"};

// --- net: request-phase attribution (DESIGN.md §4). The three phases
// partition a served request's shard-side lifetime exactly: queue
// (admission -> dequeue), execute (map operation), flush (reply bytes
// accepted by the kernel). Coarse log2 buckets — the fine-grained
// per-shard view is the obs::LatencyHistogram set in net/shard.hpp; these
// exist so a kStats poll (and any snapshot) can see the decomposition. ----
inline Histogram net_phase_queue_us{"net.phase.queue_us"};
inline Histogram net_phase_execute_us{"net.phase.execute_us"};
inline Histogram net_phase_flush_us{"net.phase.flush_us"};
/// kStats/kTraceCtl requests served (the introspection surface's own use).
inline Counter net_introspect_ops{"net.introspect.ops"};

}  // namespace cachetrie::obs::sites
