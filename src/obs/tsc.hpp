// tsc.hpp — the shared timestamp clock of the trace and latency layers.
//
// Trace points and per-op latency probes need a timestamp cheap enough to
// take inside a lock-free protocol step. On x86-64 that is rdtsc (~6-20
// cycles, serializing nothing); modern CPUs advertise an *invariant* TSC
// that ticks at a fixed rate regardless of frequency scaling and is
// synchronized across cores by hardware + kernel (TSC_ADJUST), which is
// what makes cross-thread event ordering by timestamp meaningful. On other
// architectures the fallback is steady_clock in nanoseconds — slower, but
// the same monotonicity contract.
//
// Raw ticks are recorded on the hot path; conversion to nanoseconds happens
// at drain/summarize time via a one-shot calibration against steady_clock
// (a few ms of wall time, paid lazily on first use — never on a hot path).
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define CACHETRIE_TSC_RDTSC 1
#else
#define CACHETRIE_TSC_RDTSC 0
#endif

namespace cachetrie::obs::tsc {

/// Raw timestamp in ticks. Monotone non-decreasing per thread; comparable
/// across threads on invariant-TSC hardware (all current x86-64 servers).
inline std::uint64_t now() noexcept {
#if CACHETRIE_TSC_RDTSC
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

struct Calibration {
  double ns_per_tick = 1.0;
};

namespace detail {

inline Calibration calibrate() noexcept {
#if CACHETRIE_TSC_RDTSC
  // Two (steady_clock, tsc) samples a few milliseconds apart; the ratio of
  // the deltas is the tick period. A busy-wait (not sleep) keeps the core
  // at speed and the sample window tight.
  const auto w0 = std::chrono::steady_clock::now();
  const std::uint64_t t0 = now();
  const auto deadline = w0 + std::chrono::milliseconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
  }
  const auto w1 = std::chrono::steady_clock::now();
  const std::uint64_t t1 = now();
  const double dns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(w1 - w0).count());
  const double dticks = static_cast<double>(t1 - t0);
  Calibration c;
  c.ns_per_tick = (dticks > 0.0 && dns > 0.0) ? dns / dticks : 1.0;
  return c;
#else
  return Calibration{};  // ticks already are nanoseconds
#endif
}

}  // namespace detail

/// Process-wide calibration, computed once on first call (~5 ms). Call it
/// once before a measurement loop so the cost never lands inside one.
inline const Calibration& calibration() noexcept {
  static const Calibration c = detail::calibrate();
  return c;
}

/// Tick delta -> nanoseconds under the process calibration.
inline double to_ns(std::uint64_t ticks) noexcept {
  return static_cast<double>(ticks) * calibration().ns_per_tick;
}

}  // namespace cachetrie::obs::tsc
