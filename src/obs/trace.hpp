// trace.hpp — lock-free flight recorder: per-thread bounded ring buffers
// of fixed-size protocol events, drained on demand into a timeline.
//
// PR 3's metrics answer "how many"; this layer answers "in what order and
// how far apart". Each thread owns a power-of-two ring of 40-byte slots;
// recording an event is a handful of relaxed atomic stores into the
// owner's ring — no allocation, no CAS, no shared cache lines. When the
// ring is full the oldest events are overwritten (a flight recorder keeps
// the *latest* window — the one that ends at the crash), and the number of
// events ever emitted is tracked so drains can report how much history
// scrolled away.
//
// Draining may run concurrently with recording (the post-mortem hooks in
// testkit fire mid-chaos). Safety comes from a per-slot sequence lock in
// the single-writer special case: the owner stores seq=0 (in progress),
// publishes the payload, then stores seq=index+1 with release; a drainer
// accepts a slot only when seq reads index+1 both before and after copying
// the payload (with an acquire fence between), so a torn overwrite is
// detected and dropped, never surfaced. Every field is an atomic accessed
// relaxed, which keeps TSan clean — there is no data race to annotate away.
//
// Rings are registered on an immortal lock-free list with in_use recycling,
// the same lifecycle as mr::EpochDomain::ThreadRecord: a thread's first
// event adopts (or allocates) a ring, thread exit releases it for reuse,
// and drains never race deallocation because nothing is ever deallocated.
// The thread id is stored per event, so recycling cannot misattribute old
// events to the ring's next owner.
//
// Build modes mirror obs/metrics.hpp:
//   * CACHETRIE_TRACE on (default via CMake option): the above, behind one
//     relaxed atomic-bool load per trace point (runtime-disabled tracing is
//     a compare + branch; nothing touches TLS or the ring).
//   * CACHETRIE_TRACE off: emit()/Span compile to nothing, Span is the
//     zero-size NullSpan (static_assert-enforced, mirroring NullCounter).
//
// Runtime enablement: trace::enable(true), or CACHETRIE_TRACE_ENABLE=1 in
// the environment. Ring capacity: CACHETRIE_TRACE_RING events per thread
// (default 4096, rounded up to a power of two).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace_events.hpp"
#include "obs/tsc.hpp"

#if defined(CACHETRIE_TRACE) && CACHETRIE_TRACE
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>

#include "util/padded.hpp"
#include "util/thread_id.hpp"
#endif

namespace cachetrie::obs::trace {

/// One drained event, in plain data form. `ts` is raw tsc ticks
/// (tsc::to_ns converts deltas); payload meaning is per-event (see
/// trace_events.hpp comments).
struct Event {
  std::uint64_t ts = 0;
  std::uint32_t tid = 0;
  EventId id = EventId::kNone;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
};

/// Zero-size stand-in for Span in trace-OFF builds; unconditional so the
/// guarantee is static_assert-checkable even in trace-on test builds.
struct NullSpan {
  constexpr NullSpan(EventId, EventId, std::uint64_t = 0,
                     std::uint64_t = 0) noexcept {}
};
static_assert(sizeof(NullSpan) == 1 && alignof(NullSpan) == 1);

#if defined(CACHETRIE_TRACE) && CACHETRIE_TRACE

inline constexpr bool kTraceCompiled = true;

namespace detail {

// Constant-initialized so the disabled-path check in emit() is a plain
// relaxed load with no init guard; EnvInit flips it during static
// initialization when CACHETRIE_TRACE_ENABLE is set (idempotent per TU).
inline std::atomic<bool> g_enabled{false};

struct EnvInit {
  EnvInit() noexcept {
    const char* e = std::getenv("CACHETRIE_TRACE_ENABLE");
    if (e != nullptr && *e != '\0' && *e != '0') {
      g_enabled.store(true, std::memory_order_relaxed);
    }
  }
};
inline EnvInit g_env_init{};

/// Slot seqlock states: 0 = write in progress, i+1 = holds the event with
/// absolute index i. 40 bytes of payload, padded to one cache line so the
/// owner's writes never false-share with a neighbouring slot a drainer is
/// validating.
struct alignas(util::kCacheLineSize) Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> ts{0};
  std::atomic<std::uint64_t> meta{0};  // id | tid << 16
  std::atomic<std::uint64_t> a0{0};
  std::atomic<std::uint64_t> a1{0};
};

struct ThreadRing {
  Slot* slots = nullptr;
  std::uint64_t capacity = 0;            // power of two
  std::atomic<std::uint64_t> head{0};    // next absolute event index
  std::atomic<bool> in_use{false};
  ThreadRing* next = nullptr;
};

}  // namespace detail

/// Process-wide ring registry. Meyers singleton, same lifetime argument as
/// obs::Registry: forced into existence before any event is recorded,
/// destroyed after every recorder (rings themselves are immortal).
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  /// Adopts a recycled ring or allocates a fresh one (the only allocation
  /// in the layer, once per thread lifetime, outside any protocol step).
  detail::ThreadRing* acquire_ring() {
    // [acquires: TRACE_RING_PUBLISH]
    for (detail::ThreadRing* r = rings_.load(std::memory_order_acquire);
         r != nullptr; r = r->next) {
      bool expected = false;
      if (!r->in_use.load(std::memory_order_relaxed) &&
          r->in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        return r;
      }
    }
    auto* r = new detail::ThreadRing();
    r->capacity = capacity_.load(std::memory_order_relaxed);
    r->slots = new detail::Slot[r->capacity];
    r->in_use.store(true, std::memory_order_relaxed);
    detail::ThreadRing* head = rings_.load(std::memory_order_acquire);
    do {
      r->next = head;
    // [publishes: TRACE_RING_PUBLISH]
    } while (!rings_.compare_exchange_weak(head, r,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire));
    return r;
  }

  /// Copies every still-valid event out of every ring. Safe concurrently
  /// with writers: torn slots fail seqlock validation and are skipped.
  /// Events arrive ring-by-ring; sort by ts for a global timeline.
  std::vector<Event> drain() const {
    std::vector<Event> out;
    for (detail::ThreadRing* r = rings_.load(std::memory_order_acquire);
         r != nullptr; r = r->next) {
      const std::uint64_t head = r->head.load(std::memory_order_acquire);
      const std::uint64_t lo = head > r->capacity ? head - r->capacity : 0;
      for (std::uint64_t i = lo; i < head; ++i) {
        const detail::Slot& s = r->slots[i & (r->capacity - 1)];
        // [acquires: TRACE_SEQLOCK]
        if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
        Event ev;
        ev.ts = s.ts.load(std::memory_order_relaxed);
        const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
        ev.a0 = s.a0.load(std::memory_order_relaxed);
        ev.a1 = s.a1.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_relaxed) != i + 1) continue;
        ev.id = static_cast<EventId>(meta & 0xffff);
        ev.tid = static_cast<std::uint32_t>(meta >> 16);
        out.push_back(ev);
      }
    }
    return out;
  }

  /// Events ever emitted across all rings (monotone while rings are live).
  std::uint64_t total_emitted() const noexcept {
    std::uint64_t n = 0;
    for (detail::ThreadRing* r = rings_.load(std::memory_order_acquire);
         r != nullptr; r = r->next) {
      n += r->head.load(std::memory_order_relaxed);
    }
    return n;
  }

  /// Lower bound on events lost to overwrite (per-ring overflow).
  std::uint64_t total_overwritten() const noexcept {
    std::uint64_t n = 0;
    for (detail::ThreadRing* r = rings_.load(std::memory_order_acquire);
         r != nullptr; r = r->next) {
      const std::uint64_t head = r->head.load(std::memory_order_relaxed);
      if (head > r->capacity) n += head - r->capacity;
    }
    return n;
  }

  /// Applies to rings allocated after the call; reset_for_testing()
  /// reshapes existing rings to it. Rounded up to a power of two, min 16.
  void set_ring_capacity_for_testing(std::uint64_t events) {
    capacity_.store(std::bit_ceil(events < 16 ? 16 : events),
                    std::memory_order_relaxed);
  }

  /// Empties every ring (and reallocates to the current capacity). Caller
  /// must guarantee quiescence: no thread may emit or drain concurrently.
  void reset_for_testing() {
    const std::uint64_t cap = capacity_.load(std::memory_order_relaxed);
    for (detail::ThreadRing* r = rings_.load(std::memory_order_acquire);
         r != nullptr; r = r->next) {
      if (r->capacity != cap) {
        delete[] r->slots;
        r->slots = new detail::Slot[cap];
        r->capacity = cap;
      } else {
        for (std::uint64_t i = 0; i < cap; ++i) {
          r->slots[i].seq.store(0, std::memory_order_relaxed);
        }
      }
      r->head.store(0, std::memory_order_relaxed);
    }
  }

 private:
  Registry() {
    std::uint64_t cap = 4096;
    if (const char* e = std::getenv("CACHETRIE_TRACE_RING")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(e, &end, 10);
      if (end != e && v > 0) cap = v;
    }
    capacity_.store(std::bit_ceil(cap < 16 ? 16 : cap),
                    std::memory_order_relaxed);
  }

  std::atomic<detail::ThreadRing*> rings_{nullptr};
  std::atomic<std::uint64_t> capacity_{4096};
};

namespace detail {

struct TlsRef {
  ThreadRing* ring = nullptr;
  std::uint32_t tid = 0;

  ~TlsRef() {
    if (ring != nullptr) ring->in_use.store(false, std::memory_order_release);
  }
};

inline TlsRef& local_ref() {
  thread_local TlsRef ref;
  if (ref.ring == nullptr) {
    ref.ring = Registry::instance().acquire_ring();
    ref.tid = util::current_thread_id();
  }
  return ref;
}

/// The enabled-path tail of emit(): one TLS lookup, five relaxed stores
/// and two fences into the caller's own ring.
inline void emit_slow(EventId id, std::uint64_t a0,
                      std::uint64_t a1) noexcept {
  TlsRef& ref = local_ref();
  ThreadRing* r = ref.ring;
  const std::uint64_t i = r->head.load(std::memory_order_relaxed);
  Slot& s = r->slots[i & (r->capacity - 1)];
  s.seq.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.ts.store(tsc::now(), std::memory_order_relaxed);
  s.meta.store(static_cast<std::uint64_t>(id) |
                   (static_cast<std::uint64_t>(ref.tid) << 16),
               std::memory_order_relaxed);
  s.a0.store(a0, std::memory_order_relaxed);
  s.a1.store(a1, std::memory_order_relaxed);
  // [publishes: TRACE_SEQLOCK]
  s.seq.store(i + 1, std::memory_order_release);
  r->head.store(i + 1, std::memory_order_relaxed);
}

}  // namespace detail

/// Turns recording on/off at runtime (compiled-in but disabled tracing is
/// one relaxed load + branch per trace point).
inline void enable(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Records one event into the calling thread's ring. Never allocates,
/// never blocks, never touches another thread's cache lines.
inline void emit(EventId id, std::uint64_t a0 = 0,
                 std::uint64_t a1 = 0) noexcept {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  detail::emit_slow(id, a0, a1);
}

/// RAII span: begin event at construction, end event at destruction, same
/// payload on both so the exporter/summarizer can pair them.
class Span {
 public:
  Span(EventId begin, EventId end, std::uint64_t a0 = 0,
       std::uint64_t a1 = 0) noexcept
      : end_(end), a0_(a0), a1_(a1) {
    emit(begin, a0, a1);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { emit(end_, a0_, a1_); }

 private:
  EventId end_;
  std::uint64_t a0_, a1_;
};

inline Registry& registry() { return Registry::instance(); }

#else  // !CACHETRIE_TRACE

inline constexpr bool kTraceCompiled = false;

constexpr void enable(bool) noexcept {}
constexpr bool enabled() noexcept { return false; }
constexpr void emit(EventId, std::uint64_t = 0, std::uint64_t = 0) noexcept {}

using Span = NullSpan;

/// No-op control surface so trace-aware code compiles in both modes.
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }
  std::vector<Event> drain() const { return {}; }
  std::uint64_t total_emitted() const noexcept { return 0; }
  std::uint64_t total_overwritten() const noexcept { return 0; }
  void set_ring_capacity_for_testing(std::uint64_t) {}
  void reset_for_testing() {}
};

inline Registry& registry() { return Registry::instance(); }

#endif  // CACHETRIE_TRACE

}  // namespace cachetrie::obs::trace
