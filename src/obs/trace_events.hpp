// trace_events.hpp — the central event inventory of the flight recorder.
//
// Every trace point in the tree names one EventId from this enum; the
// parallel kEventInfo table carries the Chrome-trace name, category and
// phase ('i' = instant, 'B'/'E' = begin/end of a span), so DESIGN.md §2e,
// the exporter, scripts/trace_summarize.py and the tests all agree on the
// spelling. The table is constexpr and unconditional — it costs nothing
// when CACHETRIE_TRACE is off and lets OFF builds still name events in
// (dead-coded) call sites.
//
// Naming convention matches obs/inventory.hpp: <layer>.<subsystem>.<event>.
// B and E entries of one span share a name (Chrome pairs them per thread).
#pragma once

#include <cstddef>
#include <cstdint>

namespace cachetrie::obs::trace {

enum class EventId : std::uint16_t {
  kNone = 0,

  // --- cachetrie: protocol transitions (paper §3.3-§3.6) -------------------
  kCachetrieFreeze,            // one slot frozen during an ENode copy
  kCachetrieExpand,            // ENode committed a narrow->wide expansion
  kCachetrieCompress,          // ENode committed a compression
  kCachetrieTxnCommit,         // two-CAS txn: announcement won, slot committed
  kCachetrieCacheInstall,      // cache array (re)published
  kCachetrieCacheLevelChange,  // sampling pass moved the cached level
  kCachetrieEvict,             // bounded mode: stale pair lazily evicted (LRU)
  kCachetrieExpire,            // bounded mode: TTL-expired pair evicted
  kCachetrieCeilingHit,        // bounded mode: resident bytes over the ceiling
                               // (a0 = resident, a1 = ceiling)

  // --- ctrie ----------------------------------------------------------------
  kCtrieGcasBegin,   // span: main-node CAS funnel (incl. retiring the loser)
  kCtrieGcasEnd,
  kCtrieGcasRetry,   // CAS lost — operation retries
  kCtrieEntomb,      // live SNode entombed into a TNode
  kCtrieClean,       // clean() compressed an INode's main node
  kCtrieCleanParent, // clean_parent() contracted a TNode one level up

  // --- chashmap ---------------------------------------------------------------
  kChmBinLockBegin,  // span: bin-lock wait + hold (payload a0 = bin index)
  kChmBinLockEnd,
  kChmResize,        // resize initiated (new table allocated)
  kChmTransferHelp,  // thread joined an in-progress transfer
  kChmTransferBin,   // one bin migrated to the next table

  // --- skiplist ---------------------------------------------------------------
  kCslMarkBottom,    // bottom-level link marked (logical delete)
  kCslHelpMark,      // helper marked an upper link of a deleted node

  // --- mr: epoch domain -------------------------------------------------------
  kMrEpochFlip,          // global epoch advanced (a0 = new epoch)
  kMrFallbackScanBegin,  // span: over-cap stall sweep (a0 = limbo bytes)
  kMrFallbackScanEnd,
  kMrStallDeclare,       // sweep declared a reader stalled (a0 = record)
  kMrStalledGuardExit,   // a declared-stalled reader exited its guard

  // --- testkit ----------------------------------------------------------------
  kFaultPark,          // fault engine parked a thread (a0 = site hash)
  kFaultResume,        // parked thread resumed (passed the resume fence)
  kFaultKill,          // parked thread unwound as killed (die() or fence)
  kWatchdogViolation,  // a watchdog tick saw zero completed operations
  kLinCheckFail,       // linearizability checker rejected a history

  // --- net: serving layer (DESIGN.md §4). Connection-scoped events carry
  // the connection id in a0 so trace_summarize.py can build the
  // per-connection view. Appended after the PR-6 block — indices of
  // existing events never move. -----------------------------------------
  kNetAccept,            // connection accepted (a0 = conn id, a1 = shard)
  kNetConnClose,         // connection closed (a0 = conn id, a1 = reason)
  kNetRequestBegin,      // span: admission -> reply enqueued
  kNetRequestEnd,        //   (a0 = conn id, a1 = request id)
  kNetShed,              // admission control refused (a0 = conn, a1 = req)
  kNetDeadlineExpire,    // budget ran out pre-execution (a0 = conn, a1 = req)
  kNetBackpressureKill,  // write buffer over cap (a0 = conn, a1 = buffered)
  kNetDrain,             // shard entered drain (a0 = shard, a1 = open conns)
  kNetShutdown,          // shard loop exited (a0 = shard, a1 = served total)

  // --- net: request-phase attribution (PR-9 block, appended after the
  // PR-7 events — indices of existing events never move). One request's
  // lifecycle, every stamp keyed (a0 = conn id, a1 = request id) so
  // scripts/trace_summarize.py can join the stamps per request and report
  // which phase a slow request burned its budget in. ----------------------
  kNetReqParsed,       // frame pulled off the wire, pre-admission
  kNetReqAdmitted,     // admission control accepted it into the queue
  kNetReqDequeued,     // popped for execution (queue-wait phase ends)
  kNetExecuteBegin,    // span: map execution (or introspection-op build)
  kNetExecuteEnd,
  kNetReqFlushed,      // last reply byte accepted by the kernel socket

  kCount
};

struct EventInfo {
  const char* name;      // Chrome-trace "name"
  const char* category;  // Chrome-trace "cat" — the owning layer
  char phase;            // 'i' instant, 'B' span begin, 'E' span end
};

inline constexpr EventInfo kEventInfo[static_cast<std::size_t>(
    EventId::kCount)] = {
    {"none", "none", 'i'},
    {"cachetrie.freeze", "cachetrie", 'i'},
    {"cachetrie.expand", "cachetrie", 'i'},
    {"cachetrie.compress", "cachetrie", 'i'},
    {"cachetrie.txn_commit", "cachetrie", 'i'},
    {"cachetrie.cache.install", "cachetrie", 'i'},
    {"cachetrie.cache.level_change", "cachetrie", 'i'},
    {"cachetrie.evict", "cachetrie", 'i'},
    {"cachetrie.expire", "cachetrie", 'i'},
    {"cachetrie.ceiling_hit", "cachetrie", 'i'},
    {"ctrie.gcas", "ctrie", 'B'},
    {"ctrie.gcas", "ctrie", 'E'},
    {"ctrie.gcas.retry", "ctrie", 'i'},
    {"ctrie.entomb", "ctrie", 'i'},
    {"ctrie.clean", "ctrie", 'i'},
    {"ctrie.clean_parent", "ctrie", 'i'},
    {"chm.bin_lock", "chm", 'B'},
    {"chm.bin_lock", "chm", 'E'},
    {"chm.resize", "chm", 'i'},
    {"chm.transfer.help", "chm", 'i'},
    {"chm.transfer.bin", "chm", 'i'},
    {"csl.mark_bottom", "csl", 'i'},
    {"csl.help_mark", "csl", 'i'},
    {"mr.epoch.flip", "mr", 'i'},
    {"mr.epoch.fallback_scan", "mr", 'B'},
    {"mr.epoch.fallback_scan", "mr", 'E'},
    {"mr.epoch.stall_declare", "mr", 'i'},
    {"mr.epoch.stalled_guard_exit", "mr", 'i'},
    {"testkit.fault.park", "testkit", 'i'},
    {"testkit.fault.resume", "testkit", 'i'},
    {"testkit.fault.kill", "testkit", 'i'},
    {"testkit.watchdog.violation", "testkit", 'i'},
    {"testkit.lin_check.fail", "testkit", 'i'},
    {"net.accept", "net", 'i'},
    {"net.conn.close", "net", 'i'},
    {"net.request", "net", 'B'},
    {"net.request", "net", 'E'},
    {"net.shed", "net", 'i'},
    {"net.deadline_expire", "net", 'i'},
    {"net.backpressure_kill", "net", 'i'},
    {"net.drain", "net", 'i'},
    {"net.shutdown", "net", 'i'},
    {"net.req.parsed", "net", 'i'},
    {"net.req.admitted", "net", 'i'},
    {"net.req.dequeued", "net", 'i'},
    {"net.req.execute", "net", 'B'},
    {"net.req.execute", "net", 'E'},
    {"net.req.flushed", "net", 'i'},
};

constexpr const EventInfo& event_info(EventId id) noexcept {
  const auto i = static_cast<std::size_t>(id);
  return kEventInfo[i < static_cast<std::size_t>(EventId::kCount) ? i : 0];
}

static_assert(event_info(EventId::kMrStallDeclare).phase == 'i');
static_assert(event_info(EventId::kChmBinLockBegin).phase == 'B');
static_assert(event_info(EventId::kChmBinLockEnd).phase == 'E');
static_assert(event_info(EventId::kNetRequestBegin).phase == 'B');
static_assert(event_info(EventId::kNetRequestEnd).phase == 'E');
static_assert(event_info(EventId::kNetShutdown).phase == 'i');
static_assert(event_info(EventId::kNetExecuteBegin).phase == 'B');
static_assert(event_info(EventId::kNetExecuteEnd).phase == 'E');
static_assert(event_info(EventId::kNetReqFlushed).phase == 'i');

}  // namespace cachetrie::obs::trace
