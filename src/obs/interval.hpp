// interval.hpp — pull-based snapshot differ: what changed since the last
// look, as rates and interval distributions.
//
// A cumulative obs::Snapshot answers "how much ever happened"; a monitoring
// poll wants "how much happened *lately* and how fast". Because counters
// are monotone and histogram buckets are monotone per bucket, the delta of
// two snapshots is itself a well-formed snapshot of exactly the interval
// between them: counter deltas divide into rates, and bucket-wise
// subtraction yields the *interval histogram*, whose quantiles describe
// only the requests that landed since the previous pull — the cumulative
// quantile's long memory is gone. That subtraction is the whole trick; the
// rest is bookkeeping (DESIGN.md §2d).
//
// IntervalDiffer is the stateful pull endpoint: each advance() diffs the
// registry's current state against the previous advance() and remembers
// the new state. One differ per puller — the serving layer gives each
// shard its own (a kStats request is served by one shard), and the example
// server's --stats-interval loop owns another; pullers never share a
// differ, so no locking beyond the registry's own snapshot mutex.
//
// A registry reset() between pulls makes cumulative values shrink; the
// differ detects the rewind (cur < prev) per metric and falls back to
// diffing against zero, so a reset shows up as "everything since the
// reset" rather than as underflowed garbage.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace cachetrie::obs {

/// The delta between two registry snapshots. Plain data, like Snapshot;
/// entries with nothing to report (zero counter delta, zero histogram
/// count delta) are omitted so the wire form stays proportional to
/// activity, not to the size of the metric inventory. Gauges are levels,
/// not events — every gauge is reported, with its movement.
struct SnapshotDelta {
  double interval_s = 0.0;  // 0 on the first pull (nothing to rate against)

  struct CounterRate {
    std::string name;
    std::uint64_t delta = 0;
    double per_s = 0.0;  // delta / interval_s; 0 when interval_s == 0
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;  // current level
    std::int64_t delta = 0;  // movement since the previous pull
  };
  struct HistogramDrift {
    std::string name;
    std::uint64_t count_delta = 0;
    double interval_p50 = 0.0;  // quantiles of the interval histogram
    double interval_p99 = 0.0;
    double cum_p50_drift = 0.0;  // cumulative-quantile movement across the
    double cum_p99_drift = 0.0;  // interval (positive = tail got heavier)
  };

  std::vector<CounterRate> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramDrift> histograms;

  /// {"interval_s":..,"counters":{name:{"delta":..,"per_s":..}},
  ///  "gauges":{name:{"value":..,"delta":..}},
  ///  "histograms":{name:{"count_delta":..,"p50":..,"p99":..,
  ///                      "cum_p50_drift":..,"cum_p99_drift":..}}}
  void write_json(std::ostream& os) const {
    os << "{\"interval_s\":" << interval_s << ",\"counters\":{";
    for (std::size_t i = 0; i < counters.size(); ++i) {
      if (i != 0) os << ",";
      os << "\"";
      detail_emit::json_escape(os, counters[i].name);
      os << "\":{\"delta\":" << counters[i].delta << ",\"per_s\":"
         << counters[i].per_s << "}";
    }
    os << "},\"gauges\":{";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      if (i != 0) os << ",";
      os << "\"";
      detail_emit::json_escape(os, gauges[i].name);
      os << "\":{\"value\":" << gauges[i].value << ",\"delta\":"
         << gauges[i].delta << "}";
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
      if (i != 0) os << ",";
      const auto& h = histograms[i];
      os << "\"";
      detail_emit::json_escape(os, h.name);
      os << "\":{\"count_delta\":" << h.count_delta << ",\"p50\":"
         << h.interval_p50 << ",\"p99\":" << h.interval_p99
         << ",\"cum_p50_drift\":" << h.cum_p50_drift << ",\"cum_p99_drift\":"
         << h.cum_p99_drift << "}";
    }
    os << "}}";
  }

  /// Human form for live watching (--stats-interval in the example server).
  void print_table(std::ostream& os) const {
    os << "interval " << interval_s << "s\n";
    for (const auto& c : counters) {
      os << "  " << c.name << "  +" << c.delta << "  (" << c.per_s
         << "/s)\n";
    }
    for (const auto& g : gauges) {
      if (g.delta == 0 && g.value == 0) continue;
      os << "  " << g.name << "  " << g.value
         << (g.delta >= 0 ? "  (+" : "  (") << g.delta << ")\n";
    }
    for (const auto& h : histograms) {
      os << "  " << h.name << "  +" << h.count_delta << "  p50~"
         << h.interval_p50 << "  p99~" << h.interval_p99 << "\n";
    }
  }
};

/// Stateful pull endpoint: advance() diffs `cur` against the previously
/// seen snapshot (empty before the first call) and keeps `cur` as the new
/// base. `now_us` is the caller's clock (proto::now_us() in the serving
/// layer) — passed in rather than sampled here so tests can pin intervals.
class IntervalDiffer {
 public:
  SnapshotDelta advance(Snapshot cur, std::uint64_t now_us) {
    SnapshotDelta d;
    if (has_prev_ && now_us > prev_us_) {
      d.interval_s = static_cast<double>(now_us - prev_us_) / 1e6;
    }

    for (const auto& c : cur.counters) {
      const std::uint64_t before = prev_.counter_value(c.name);
      // Rewind (registry reset between pulls): diff against zero.
      const std::uint64_t delta = c.value >= before ? c.value - before
                                                    : c.value;
      if (delta == 0) continue;
      const double per_s =
          d.interval_s > 0.0 ? static_cast<double>(delta) / d.interval_s
                             : 0.0;
      d.counters.push_back({c.name, delta, per_s});
    }

    for (const auto& g : cur.gauges) {
      const Snapshot::Gauge* before = prev_.find_gauge(g.name);
      const std::int64_t prev_v = before != nullptr ? before->value : 0;
      d.gauges.push_back({g.name, g.value, g.value - prev_v});
    }

    for (const auto& h : cur.histograms) {
      const Snapshot::Histogram* before = prev_.find_histogram(h.name);
      Snapshot::Histogram interval = h;  // interval = cur - prev, bucket-wise
      double prev_p50 = 0.0;
      double prev_p99 = 0.0;
      if (before != nullptr && h.count >= before->count) {
        for (std::size_t b = 0; b < kHistBuckets; ++b) {
          // Per-bucket clamp: concurrent recording means bucket deltas can
          // individually dip negative even when the totals are monotone.
          interval.buckets[b] =
              h.buckets[b] >= before->buckets[b]
                  ? h.buckets[b] - before->buckets[b]
                  : 0;
        }
        interval.count = h.count - before->count;
        interval.sum = h.sum >= before->sum ? h.sum - before->sum : 0;
        prev_p50 = before->quantile(0.50);
        prev_p99 = before->quantile(0.99);
      }
      if (interval.count == 0) continue;
      d.histograms.push_back({h.name, interval.count, interval.quantile(0.50),
                              interval.quantile(0.99),
                              h.quantile(0.50) - prev_p50,
                              h.quantile(0.99) - prev_p99});
    }

    prev_ = std::move(cur);
    prev_us_ = now_us;
    has_prev_ = true;
    return d;
  }

 private:
  Snapshot prev_;
  std::uint64_t prev_us_ = 0;
  bool has_prev_ = false;
};

}  // namespace cachetrie::obs
