// latency.hpp — per-operation latency histogram for tail percentiles.
//
// The obs::Histogram of metrics.hpp is built for concurrent recording of
// small discrete values (depths, level counts): exact below 16, then one
// bucket per power of two — a p99 at 2^17 ns could be anywhere in a 2x
// range. Tail latencies need finer resolution but not concurrency (the
// harness records from the measuring thread): this histogram is the
// classic HdrHistogram-lite layout — exact unit buckets below 32, then 16
// linear sub-buckets per power of two, bounding relative error by 1/16
// (~6%) at every magnitude up to 2^64. Quantiles interpolate linearly
// within the landing bucket, the same fix metrics.hpp's
// Snapshot::Histogram::quantile applies to its coarser geometry.
//
// Plain (non-atomic) counters: one recorder per instance; merge() combines
// per-pass or per-thread instances losslessly (bucket-wise addition).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace cachetrie::obs {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: top 4 value bits after the leading one.
  static constexpr std::size_t kSubBuckets = 16;
  /// Indices 0..31 are exact units; (e-3)*16 + sub for 2^e <= v < 2^(e+1),
  /// e in [5, 63] — 976 buckets, ~8 KB per instance.
  static constexpr std::size_t kBuckets = 976;

  static constexpr std::size_t index_of(std::uint64_t v) noexcept {
    if (v < 32) return static_cast<std::size_t>(v);
    const int e = std::bit_width(v) - 1;
    return static_cast<std::size_t>((e - 3) * 16 +
                                    static_cast<int>((v >> (e - 4)) & 15));
  }

  /// Smallest value mapping to bucket b.
  static constexpr std::uint64_t lower_of(std::size_t b) noexcept {
    if (b < 32) return b;
    const int e = static_cast<int>(b / 16) + 3;
    return (std::uint64_t{16} + b % 16) << (e - 4);
  }

  /// Number of distinct values in bucket b.
  static constexpr std::uint64_t width_of(std::size_t b) noexcept {
    return b < 32 ? 1 : (std::uint64_t{1} << (b / 16 - 1));
  }

  void record(std::uint64_t v) noexcept {
    ++buckets_[index_of(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t max_value() const noexcept { return max_; }

  double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// p-quantile (p in [0,1]) with linear interpolation inside the landing
  /// bucket — exact for values < 32, within bucket-width/count above.
  double quantile(double p) const noexcept {
    if (count_ == 0) return 0.0;
    double target = p * static_cast<double>(count_);
    if (target > static_cast<double>(count_)) {
      target = static_cast<double>(count_);
    }
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      if (static_cast<double>(cum + buckets_[b]) >= target) {
        double frac =
            (target - static_cast<double>(cum)) /
            static_cast<double>(buckets_[b]);
        if (frac < 0.0) frac = 0.0;
        return static_cast<double>(lower_of(b)) +
               static_cast<double>(width_of(b) - 1) * frac;
      }
      cum += buckets_[b];
    }
    return static_cast<double>(max_);
  }

  /// Bucket-wise addition (per-pass / per-thread instances combine
  /// losslessly, like Snapshot::Histogram::merge).
  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      buckets_[b] += other.buckets_[b];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void reset() noexcept { *this = LatencyHistogram{}; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

// The geometry is a smooth continuation of the unit range: 16..31 are both
// "units" and the e=4 sub-bucket row, so index_of(v) == v for all v < 32.
static_assert(LatencyHistogram::index_of(31) == 31);
static_assert(LatencyHistogram::index_of(32) == 32);
static_assert(LatencyHistogram::index_of(63) == 47);
static_assert(LatencyHistogram::lower_of(32) == 32);
static_assert(LatencyHistogram::width_of(32) == 2);
static_assert(LatencyHistogram::index_of(~std::uint64_t{0}) ==
              LatencyHistogram::kBuckets - 1);

}  // namespace cachetrie::obs
