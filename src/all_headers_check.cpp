// Strict-warning compile check: pull every public header into one TU so
// the src/-only warning set (-Wshadow -Wextra-semi -Wnon-virtual-dtor,
// plus -Wthread-safety under clang) sweeps header-only code that the
// compiled mr/ library never instantiates. Test and bench targets keep
// the project-wide -Wall -Wextra only, so gtest/benchmark macros do not
// have to satisfy the stricter set.
#include "cachetrie/cache.hpp"
#include "cachetrie/cache_trie.hpp"
#include "cachetrie/config.hpp"
#include "cachetrie/evict.hpp"
#include "cachetrie/nodes.hpp"
#include "cachetrie/stats.hpp"
#include "chashmap/chashmap.hpp"
#include "ctrie/ctrie.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/thread_team.hpp"
#include "harness/workload.hpp"
#include "mr/epoch.hpp"
#include "mr/hazard.hpp"
#include "mr/leak.hpp"
#include "mr/reclaimer.hpp"
#include "net/client.hpp"
#include "net/proto.hpp"
#include "net/reactor.hpp"
#include "net/serve_map.hpp"
#include "net/shard.hpp"
#include "net/socket.hpp"
#include "obs/inventory.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_events.hpp"
#include "obs/trace_export.hpp"
#include "obs/tsc.hpp"
#include "skiplist/skiplist.hpp"
#include "testkit/adapter.hpp"
#include "testkit/chaos.hpp"
#include "testkit/driver.hpp"
#include "testkit/fault.hpp"
#include "testkit/history.hpp"
#include "testkit/lin_check.hpp"
#include "testkit/watchdog.hpp"
#include "util/bits.hpp"
#include "util/hashing.hpp"
#include "util/ordering_contracts.hpp"
#include "util/padded.hpp"
#include "util/rng.hpp"
#include "util/spinwait.hpp"
#include "util/thread_id.hpp"

#include <string>

namespace {

// Instantiate the main templates so their member functions are actually
// compiled under the strict flags, not just parsed.
template <class Map>
int touch() {
  Map m;
  m.insert(1, 2);
  int out = 0;
  if (auto v = m.lookup(1)) out += *v;
  m.remove(1);
  return out;
}

}  // namespace

// Compile every member of the serving-layer templates under the strict
// flags (nothing is constructed — no sockets open in this check).
template class cachetrie::net::Shard<
    cachetrie::evict::BoundedCacheTrie<std::uint64_t, std::uint64_t>>;
template class cachetrie::net::Server<
    cachetrie::evict::BoundedCacheTrie<std::uint64_t, std::uint64_t>>;
template class cachetrie::net::Shard<
    cachetrie::evict::BoundedChm<std::uint64_t, std::uint64_t>>;
template class cachetrie::net::Server<
    cachetrie::evict::BoundedChm<std::uint64_t, std::uint64_t>>;

int cachetrie_all_headers_check() {
  int out = 0;
  out += touch<cachetrie::CacheTrie<int, int>>();
  out += touch<cachetrie::ctrie::Ctrie<int, int>>();
  out += touch<cachetrie::chm::ConcurrentHashMap<int, int>>();
  out += touch<cachetrie::csl::ConcurrentSkipList<int, int>>();
  (void)cachetrie::util::kOrderingEdgeCount;
  return out;
}
