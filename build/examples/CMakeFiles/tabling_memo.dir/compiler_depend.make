# Empty compiler generated dependencies file for tabling_memo.
# This may be replaced when dependencies are built.
