file(REMOVE_RECURSE
  "CMakeFiles/tabling_memo.dir/tabling_memo.cpp.o"
  "CMakeFiles/tabling_memo.dir/tabling_memo.cpp.o.d"
  "tabling_memo"
  "tabling_memo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabling_memo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
