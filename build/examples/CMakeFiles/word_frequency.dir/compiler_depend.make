# Empty compiler generated dependencies file for word_frequency.
# This may be replaced when dependencies are built.
