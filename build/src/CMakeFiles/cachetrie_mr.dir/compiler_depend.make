# Empty compiler generated dependencies file for cachetrie_mr.
# This may be replaced when dependencies are built.
