file(REMOVE_RECURSE
  "libcachetrie_mr.a"
)
