file(REMOVE_RECURSE
  "CMakeFiles/cachetrie_mr.dir/mr/epoch.cpp.o"
  "CMakeFiles/cachetrie_mr.dir/mr/epoch.cpp.o.d"
  "CMakeFiles/cachetrie_mr.dir/mr/hazard.cpp.o"
  "CMakeFiles/cachetrie_mr.dir/mr/hazard.cpp.o.d"
  "libcachetrie_mr.a"
  "libcachetrie_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachetrie_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
