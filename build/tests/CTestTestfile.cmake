# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/epoch_test[1]_include.cmake")
include("/root/repo/build/tests/hazard_test[1]_include.cmake")
include("/root/repo/build/tests/cachetrie_basic_test[1]_include.cmake")
include("/root/repo/build/tests/cachetrie_concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/ctrie_test[1]_include.cmake")
include("/root/repo/build/tests/chashmap_test[1]_include.cmake")
include("/root/repo/build/tests/skiplist_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/depth_distribution_test[1]_include.cmake")
include("/root/repo/build/tests/cachetrie_property_test[1]_include.cmake")
include("/root/repo/build/tests/reclamation_discipline_test[1]_include.cmake")
include("/root/repo/build/tests/cache_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/nodes_layout_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
