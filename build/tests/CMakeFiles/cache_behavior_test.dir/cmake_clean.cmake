file(REMOVE_RECURSE
  "CMakeFiles/cache_behavior_test.dir/cache_behavior_test.cpp.o"
  "CMakeFiles/cache_behavior_test.dir/cache_behavior_test.cpp.o.d"
  "CMakeFiles/cache_behavior_test.dir/test_main.cpp.o"
  "CMakeFiles/cache_behavior_test.dir/test_main.cpp.o.d"
  "cache_behavior_test"
  "cache_behavior_test.pdb"
  "cache_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
