# Empty dependencies file for cache_behavior_test.
# This may be replaced when dependencies are built.
