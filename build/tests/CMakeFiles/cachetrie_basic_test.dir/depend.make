# Empty dependencies file for cachetrie_basic_test.
# This may be replaced when dependencies are built.
