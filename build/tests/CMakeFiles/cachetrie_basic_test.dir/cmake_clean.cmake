file(REMOVE_RECURSE
  "CMakeFiles/cachetrie_basic_test.dir/cachetrie_basic_test.cpp.o"
  "CMakeFiles/cachetrie_basic_test.dir/cachetrie_basic_test.cpp.o.d"
  "CMakeFiles/cachetrie_basic_test.dir/test_main.cpp.o"
  "CMakeFiles/cachetrie_basic_test.dir/test_main.cpp.o.d"
  "cachetrie_basic_test"
  "cachetrie_basic_test.pdb"
  "cachetrie_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachetrie_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
