# Empty dependencies file for chashmap_test.
# This may be replaced when dependencies are built.
