file(REMOVE_RECURSE
  "CMakeFiles/chashmap_test.dir/chashmap_test.cpp.o"
  "CMakeFiles/chashmap_test.dir/chashmap_test.cpp.o.d"
  "CMakeFiles/chashmap_test.dir/test_main.cpp.o"
  "CMakeFiles/chashmap_test.dir/test_main.cpp.o.d"
  "chashmap_test"
  "chashmap_test.pdb"
  "chashmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chashmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
