file(REMOVE_RECURSE
  "CMakeFiles/nodes_layout_test.dir/nodes_layout_test.cpp.o"
  "CMakeFiles/nodes_layout_test.dir/nodes_layout_test.cpp.o.d"
  "CMakeFiles/nodes_layout_test.dir/test_main.cpp.o"
  "CMakeFiles/nodes_layout_test.dir/test_main.cpp.o.d"
  "nodes_layout_test"
  "nodes_layout_test.pdb"
  "nodes_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodes_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
