# Empty compiler generated dependencies file for nodes_layout_test.
# This may be replaced when dependencies are built.
