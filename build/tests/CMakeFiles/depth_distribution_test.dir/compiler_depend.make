# Empty compiler generated dependencies file for depth_distribution_test.
# This may be replaced when dependencies are built.
