file(REMOVE_RECURSE
  "CMakeFiles/depth_distribution_test.dir/depth_distribution_test.cpp.o"
  "CMakeFiles/depth_distribution_test.dir/depth_distribution_test.cpp.o.d"
  "CMakeFiles/depth_distribution_test.dir/test_main.cpp.o"
  "CMakeFiles/depth_distribution_test.dir/test_main.cpp.o.d"
  "depth_distribution_test"
  "depth_distribution_test.pdb"
  "depth_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depth_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
