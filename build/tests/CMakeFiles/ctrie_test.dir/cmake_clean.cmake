file(REMOVE_RECURSE
  "CMakeFiles/ctrie_test.dir/ctrie_test.cpp.o"
  "CMakeFiles/ctrie_test.dir/ctrie_test.cpp.o.d"
  "CMakeFiles/ctrie_test.dir/test_main.cpp.o"
  "CMakeFiles/ctrie_test.dir/test_main.cpp.o.d"
  "ctrie_test"
  "ctrie_test.pdb"
  "ctrie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
