# Empty dependencies file for reclamation_discipline_test.
# This may be replaced when dependencies are built.
