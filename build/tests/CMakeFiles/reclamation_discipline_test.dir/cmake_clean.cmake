file(REMOVE_RECURSE
  "CMakeFiles/reclamation_discipline_test.dir/reclamation_discipline_test.cpp.o"
  "CMakeFiles/reclamation_discipline_test.dir/reclamation_discipline_test.cpp.o.d"
  "CMakeFiles/reclamation_discipline_test.dir/test_main.cpp.o"
  "CMakeFiles/reclamation_discipline_test.dir/test_main.cpp.o.d"
  "reclamation_discipline_test"
  "reclamation_discipline_test.pdb"
  "reclamation_discipline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclamation_discipline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
