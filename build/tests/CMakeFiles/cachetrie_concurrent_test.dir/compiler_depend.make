# Empty compiler generated dependencies file for cachetrie_concurrent_test.
# This may be replaced when dependencies are built.
