file(REMOVE_RECURSE
  "CMakeFiles/cachetrie_concurrent_test.dir/cachetrie_concurrent_test.cpp.o"
  "CMakeFiles/cachetrie_concurrent_test.dir/cachetrie_concurrent_test.cpp.o.d"
  "CMakeFiles/cachetrie_concurrent_test.dir/test_main.cpp.o"
  "CMakeFiles/cachetrie_concurrent_test.dir/test_main.cpp.o.d"
  "cachetrie_concurrent_test"
  "cachetrie_concurrent_test.pdb"
  "cachetrie_concurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachetrie_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
