file(REMOVE_RECURSE
  "CMakeFiles/cachetrie_property_test.dir/cachetrie_property_test.cpp.o"
  "CMakeFiles/cachetrie_property_test.dir/cachetrie_property_test.cpp.o.d"
  "CMakeFiles/cachetrie_property_test.dir/test_main.cpp.o"
  "CMakeFiles/cachetrie_property_test.dir/test_main.cpp.o.d"
  "cachetrie_property_test"
  "cachetrie_property_test.pdb"
  "cachetrie_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachetrie_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
