# Empty compiler generated dependencies file for cachetrie_property_test.
# This may be replaced when dependencies are built.
