file(REMOVE_RECURSE
  "../bench/fig12_insert_low_contention"
  "../bench/fig12_insert_low_contention.pdb"
  "CMakeFiles/fig12_insert_low_contention.dir/fig12_insert_low_contention.cpp.o"
  "CMakeFiles/fig12_insert_low_contention.dir/fig12_insert_low_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_insert_low_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
