# Empty compiler generated dependencies file for fig12_insert_low_contention.
# This may be replaced when dependencies are built.
