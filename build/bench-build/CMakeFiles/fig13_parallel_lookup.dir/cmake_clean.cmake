file(REMOVE_RECURSE
  "../bench/fig13_parallel_lookup"
  "../bench/fig13_parallel_lookup.pdb"
  "CMakeFiles/fig13_parallel_lookup.dir/fig13_parallel_lookup.cpp.o"
  "CMakeFiles/fig13_parallel_lookup.dir/fig13_parallel_lookup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_parallel_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
