# Empty dependencies file for fig13_parallel_lookup.
# This may be replaced when dependencies are built.
